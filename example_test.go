package pmtest_test

import (
	"bytes"
	"fmt"

	"pmtest"
)

// Example reproduces the paper's Fig. 7 walkthrough through the public
// API: A is flushed and fenced, B is only written — isPersist(B) fails,
// isOrderedBefore(A, B) passes.
func Example() {
	sess := pmtest.Init(pmtest.Config{}) // PMTest_INIT
	th := sess.ThreadInit()              // PMTest_THREAD_INIT
	th.Start()                           // PMTest_START

	th.Write(0x10, 64)
	th.Flush(0x10, 64)
	th.Fence()
	th.Write(0x50, 64)

	th.IsPersist(0x50, 64)
	th.IsOrderedBefore(0x10, 64, 0x50, 64)

	th.SendTrace() // PMTest_SEND_TRACE
	reports := sess.Exit()
	fmt.Printf("%d FAIL, %d WARN\n", reports[0].Fails(), reports[0].Warns())
	fmt.Println(reports[0].Diags[0].Code)
	// Output:
	// 1 FAIL, 0 WARN
	// not-persisted
}

// ExampleSession_SharedRanges shows the inter-thread sharing analyzer
// (§7.4 extension): two trackers write the same range.
func ExampleSession_SharedRanges() {
	sess := pmtest.Init(pmtest.Config{DetectSharing: true})
	a := sess.ThreadInit()
	b := sess.ThreadInit()
	a.Start()
	b.Start()
	a.Write(0x1000, 64)
	a.SendTrace()
	b.Write(0x1020, 64)
	b.SendTrace()
	for _, s := range sess.SharedRanges() {
		fmt.Println(s)
	}
	sess.Exit()
	// Output:
	// [0x1020,0x1040) written by threads [0 1]
}

// ExampleThread_TxCheckerStart shows the high-level transaction checkers
// catching a write that was never backed up with TxAdd (paper Fig. 1b).
func ExampleThread_TxCheckerStart() {
	sess := pmtest.Init(pmtest.Config{})
	th := sess.ThreadInit()
	th.Start()

	th.TxCheckerStart() // TX_CHECKER_START
	th.TxBegin()
	th.TxAdd(0x100, 64) // backed up
	th.Write(0x100, 64)
	th.Write(0x200, 8) // missing TX_ADD!
	th.Flush(0x100, 64)
	th.Flush(0x200, 8)
	th.Fence()
	th.TxEnd()
	th.TxCheckerEnd() // TX_CHECKER_END

	th.SendTrace()
	reports := sess.Exit()
	for _, d := range reports[0].Diags {
		fmt.Println(d.Code)
	}
	// Output:
	// missing-backup
}

// ExampleCheckRecorded shows offline checking: record a section, replay
// it later under the HOPS model.
func ExampleCheckRecorded() {
	var buf bytes.Buffer
	sess := pmtest.Init(pmtest.Config{RecordTo: &buf})
	th := sess.ThreadInit()
	th.Start()
	th.Write(0xA0, 8)
	th.OFence()
	th.Write(0xB0, 8)
	th.DFence()
	th.IsOrderedBefore(0xA0, 8, 0xB0, 8)
	th.SendTrace()
	sess.Exit()

	reports, err := pmtest.CheckRecorded(&buf, pmtest.HOPS, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replayed under HOPS: %d FAIL\n", reports[0].Fails())
	// Output:
	// replayed under HOPS: 0 FAIL
}
