package pmtest_test

import (
	"bytes"
	"testing"

	"pmtest"
)

// TestOfflineRecordAndRecheck: record a session's trace sections, then
// re-check them offline — same verdicts. Then re-check the x86 trace
// under HOPS rules, where the clwb is (correctly) flagged as unnecessary.
func TestOfflineRecordAndRecheck(t *testing.T) {
	var buf bytes.Buffer
	sess := pmtest.Init(pmtest.Config{RecordTo: &buf})
	th := sess.ThreadInit()
	th.Start()
	// Section 1: clean.
	th.Write(0x10, 64)
	th.Flush(0x10, 64)
	th.Fence()
	th.IsPersist(0x10, 64)
	th.SendTrace()
	// Section 2: buggy.
	th.Write(0x50, 64)
	th.IsPersist(0x50, 64)
	th.SendTrace()
	online := sess.Exit()
	if len(online) != 2 || online[0].Fails() != 0 || online[1].Fails() != 1 {
		t.Fatalf("online verdicts wrong: %s", pmtest.Summarize(online))
	}

	recorded := buf.Bytes()
	offline, err := pmtest.CheckRecorded(bytes.NewReader(recorded), pmtest.X86, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(offline) != 2 {
		t.Fatalf("offline sections = %d", len(offline))
	}
	for i := range offline {
		if offline[i].Fails() != online[i].Fails() || offline[i].Warns() != online[i].Warns() {
			t.Fatalf("offline verdict differs at section %d:\nonline  %s\noffline %s",
				i, online[i].Summary(), offline[i].Summary())
		}
	}

	// Same recording, different model: HOPS flags the explicit writeback
	// as unnecessary and the fence does drain, so section 2 still fails
	// isPersist while section 1 gains a WARN.
	hops, err := pmtest.CheckRecorded(bytes.NewReader(recorded), pmtest.HOPS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pmtest.CountCode(hops, pmtest.CodeUnnecessaryWriteback) == 0 {
		t.Fatalf("HOPS recheck should warn about the clwb: %s", pmtest.Summarize(hops))
	}
	if pmtest.CountCode(hops, pmtest.CodeNotPersisted) == 0 {
		t.Fatalf("HOPS recheck should still fail section 2: %s", pmtest.Summarize(hops))
	}
}

func TestCheckRecordedGarbage(t *testing.T) {
	if _, err := pmtest.CheckRecorded(bytes.NewReader([]byte("garbage!")), pmtest.X86, 1); err == nil {
		t.Fatal("garbage input must error")
	}
}
