module pmtest

go 1.22
