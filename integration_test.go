package pmtest_test

// Cross-package integration tests: the full pipeline the paper deploys —
// instrumented substrate → per-thread tracker → (kernel FIFO) → checking
// engine — driven end to end.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"pmtest"
	"pmtest/internal/kfifo"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
	"pmtest/internal/pmfs"
	"pmtest/internal/trace"
	"pmtest/internal/whisper"
)

// TestUserSpaceStackCleanAndBuggy drives a pmdk workload through the
// public API exactly as the paper's Fig. 9a user-space deployment.
func TestUserSpaceStackCleanAndBuggy(t *testing.T) {
	run := func(bugs whisper.BugSet) []pmtest.Report {
		sess := pmtest.Init(pmtest.Config{CaptureSites: true, Workers: 2})
		th := sess.ThreadInit()
		dev := pmem.New(1<<24, th)
		s, err := whisper.NewCTree(dev, bugs)
		if err != nil {
			t.Fatal(err)
		}
		s.SetCheckers(true)
		th.Start()
		for i := uint64(0); i < 50; i++ {
			if err := s.Insert(i*3, []byte("integration")); err != nil {
				t.Fatal(err)
			}
			th.SendTrace()
		}
		return sess.Exit()
	}
	for _, r := range run(nil) {
		if !r.Clean() {
			t.Fatalf("clean stack flagged: %s", r.Summary())
		}
	}
	reports := run(whisper.BugSet{whisper.BugCTreeSkipParentLog: true})
	if pmtest.CountCode(reports, pmtest.CodeMissingBackup) == 0 {
		t.Fatal("buggy stack not flagged end to end")
	}
	// Diagnostics must carry real source sites from the workload code.
	found := false
	for _, r := range reports {
		for _, d := range r.Diags {
			if d.Code == pmtest.CodeMissingBackup && strings.Contains(d.Site, "whisper/ctree.go") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("missing-backup diagnostic does not point at workload source")
	}
}

// TestKernelStackThroughFIFO is the paper's Fig. 9b deployment: the FS
// produces trace sections into the kernel FIFO; a user-space pump feeds
// the engine. The buggy journal commit must be flagged across that
// boundary.
func TestKernelStackThroughFIFO(t *testing.T) {
	run := func(bugs pmfs.Bugs) []pmtest.Report {
		sess := pmtest.Init(pmtest.Config{})
		builder := trace.NewBuilder(0, false)
		fifo := kfifo.New(64)

		sink := builderSink{builder}
		dev := pmem.New(1<<24, sink)
		fs, err := pmfs.Mkfs(dev, 32, 64)
		if err != nil {
			t.Fatal(err)
		}
		fs.SetBugs(bugs)
		fs.SetAnnotations(true)
		fs.SetSectionHook(func() {
			if builder.Len() > 0 {
				fifo.Push(builder.Take())
			}
		})

		th := sess.ThreadInit()
		th.Start()
		var pump sync.WaitGroup
		pump.Add(1)
		go func() {
			defer pump.Done()
			for {
				tr := fifo.Pop()
				if tr == nil {
					return
				}
				for _, op := range tr.Ops {
					th.Record(op, 0)
				}
				th.SendTrace()
			}
		}()

		ino, err := fs.CreateFile("f")
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 5; i++ {
			if err := fs.WriteFile(ino, i*256, make([]byte, 256)); err != nil {
				t.Fatal(err)
			}
		}
		fifo.Close()
		pump.Wait()
		return sess.Exit()
	}
	for _, r := range run(pmfs.Bugs{}) {
		if !r.Clean() {
			t.Fatalf("clean kernel stack flagged: %s", r.Summary())
		}
	}
	reports := run(pmfs.Bugs{DoubleFlushCommit: true})
	if pmtest.CountCode(reports, pmtest.CodeDuplicateWriteback) == 0 {
		t.Fatal("journal.c:632 bug not flagged through the FIFO")
	}
}

type builderSink struct{ b *trace.Builder }

func (s builderSink) Record(op trace.Op, skip int) { s.b.Record(op, skip+1) }

// TestNestedTxSemanticsDiscovery reproduces the paper's §7.1 experiment:
// wrapping the INNER transaction in checkers reports incomplete-tx
// (updates are not durable at the inner TX_END), while wrapping the
// OUTER transaction passes — revealing PMDK's outermost-commit semantics.
func TestNestedTxSemanticsDiscovery(t *testing.T) {
	runNested := func(wrapInner bool) []pmtest.Report {
		sess := pmtest.Init(pmtest.Config{})
		th := sess.ThreadInit()
		dev := pmem.New(1<<22, th)
		pool, err := pmdk.Create(dev, 4096)
		if err != nil {
			t.Fatal(err)
		}
		off, err := pool.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		th.Start()
		if !wrapInner {
			th.TxCheckerStart()
		}
		err = pool.Tx(func(outer *pmdk.Tx) error {
			if wrapInner {
				th.TxCheckerStart()
			}
			if err := pool.Tx(func(inner *pmdk.Tx) error {
				inner.Add(off, 8)
				inner.Set64(off, 1234)
				return nil
			}); err != nil {
				return err
			}
			if wrapInner {
				th.TxCheckerEnd()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !wrapInner {
			th.TxCheckerEnd()
		}
		th.SendTrace()
		return sess.Exit()
	}
	inner := runNested(true)
	if pmtest.CountCode(inner, pmtest.CodeIncompleteTx) == 0 {
		t.Fatalf("inner-wrapped nested tx should report incomplete-tx (§7.1): %s",
			pmtest.Summarize(inner))
	}
	outer := runNested(false)
	for _, r := range outer {
		if r.Fails() != 0 {
			t.Fatalf("outer-wrapped nested tx should pass (§7.1): %s", r.Summary())
		}
	}
}

// TestMultiThreadedWorkloadWithPerThreadTrackers mirrors §6.2.3: several
// program threads, each with its own tracker, feeding one engine.
func TestMultiThreadedWorkloadWithPerThreadTrackers(t *testing.T) {
	sess := pmtest.Init(pmtest.Config{Workers: 2})
	const threads = 4
	var wg sync.WaitGroup
	for c := 0; c < threads; c++ {
		th := sess.ThreadInit()
		wg.Add(1)
		go func(id int, th *pmtest.Thread) {
			defer wg.Done()
			dev := pmem.New(1<<22, th)
			s, err := whisper.NewHashmapLL(dev, 512, 64, nil)
			if err != nil {
				t.Error(err)
				return
			}
			s.SetCheckers(true)
			th.Start()
			for i := uint64(0); i < 30; i++ {
				if err := s.Insert(i, []byte(fmt.Sprintf("t%d-%d", id, i))); err != nil {
					t.Error(err)
					return
				}
				th.SendTrace()
			}
		}(c, th)
	}
	wg.Wait()
	reports := sess.Exit()
	if len(reports) != threads*30 {
		t.Fatalf("reports = %d, want %d", len(reports), threads*30)
	}
	for _, r := range reports {
		if !r.Clean() {
			t.Fatalf("clean multithreaded run flagged: %s", r.Summary())
		}
	}
}
