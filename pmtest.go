// Package pmtest is a fast and flexible testing framework for persistent
// memory (PM) programs, reproducing "PMTest: A Fast and Flexible Testing
// Framework for Persistent Memory Programs" (ASPLOS 2019).
//
// Programs (or the instrumented PM libraries they use) record their PM
// operations — writes, cache writebacks, fences — into a per-thread
// tracker, and annotate their code with assertion-like checkers:
//
//   - IsPersist asserts a persistent object has been persisted since its
//     last update.
//   - IsOrderedBefore asserts one persist is strictly ordered before
//     another.
//   - TxCheckerStart / TxCheckerEnd wrap a transaction and automatically
//     verify that every modified object was logged before modification and
//     persisted by commit.
//
// A decoupled checking engine consumes completed trace sections on worker
// goroutines, deducing for every write the epoch interval in which it may
// persist; checkers are validated against those intervals instead of
// enumerating all legal reorderings, which is what makes PMTest fast.
//
// The package mirrors the paper's C interface (Table 2):
//
//	PMTest_INIT            → Init
//	PMTest_EXIT            → (*Session).Exit
//	PMTest_THREAD_INIT     → (*Session).ThreadInit
//	PMTest_START / END     → (*Thread).Start / End
//	PMTest_EXCLUDE/INCLUDE → (*Thread).Exclude / Include
//	PMTest_REG_VAR et al.  → (*Session).RegVar / UnregVar / GetVar
//	PMTest_SEND_TRACE      → (*Thread).SendTrace
//	PMTest_GET_RESULT      → (*Session).GetResult
//	isPersist              → (*Thread).IsPersist
//	isOrderedBefore        → (*Thread).IsOrderedBefore
//	TX_CHECKER_START / END → (*Thread).TxCheckerStart / TxCheckerEnd
package pmtest

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/dist"
	"pmtest/internal/flight"
	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// Re-exported result types, so users never import internal packages.
type (
	// Report is the checking result for one trace section.
	Report = core.Report
	// Diagnostic is a single FAIL/WARN/INFO finding.
	Diagnostic = core.Diagnostic
	// Severity distinguishes FAIL (crash-consistency bug) from WARN
	// (performance bug).
	Severity = core.Severity
	// Code names the class of a finding.
	Code = core.Code
	// RuleSet is a pluggable persistency model.
	RuleSet = core.RuleSet
)

// Severity and code constants re-exported from the engine.
const (
	SeverityInfo = core.SeverityInfo
	SeverityWarn = core.SeverityWarn
	SeverityFail = core.SeverityFail

	CodeNotPersisted         = core.CodeNotPersisted
	CodeOrderViolation       = core.CodeOrderViolation
	CodeMissingBackup        = core.CodeMissingBackup
	CodeIncompleteTx         = core.CodeIncompleteTx
	CodeDuplicateWriteback   = core.CodeDuplicateWriteback
	CodeUnnecessaryWriteback = core.CodeUnnecessaryWriteback
	CodeDuplicateLog         = core.CodeDuplicateLog
	CodeUnbalancedTx         = core.CodeUnbalancedTx
)

// Built-in persistency models.
var (
	// X86 is the strict x86 model: clwb + sfence (paper §4.4).
	X86 RuleSet = core.X86{}
	// ARM is the ARMv8.2 model (DC CVAP + DSB, paper §2.1); interval
	// semantics coincide with X86.
	ARM RuleSet = core.ARM{}
	// HOPS is the relaxed ofence/dfence model (paper §5.2).
	HOPS RuleSet = core.HOPS{}
	// Epoch is an illustrative epoch-persistency model (extension).
	Epoch RuleSet = core.Epoch{}
)

// Config configures a testing session.
type Config struct {
	// Model selects the persistency model; defaults to X86.
	Model RuleSet
	// Workers sets the number of checking worker goroutines; defaults
	// to 1, the paper's default (§6.1).
	Workers int
	// Shards partitions each worker's shadow memory into address stripes
	// checked concurrently, with fences broadcast as epoch barriers.
	// Reports are byte-identical to the serial checker. <= 1 (the
	// default) keeps the single-state path.
	Shards int
	// EpochGC retires shadow-memory segments whose intervals closed more
	// than a lag of epochs ago, bounding checker memory over long
	// streaming runs. Composes with Shards; works on the serial path too.
	EpochGC bool
	// TrackOnly records and ships traces but skips checker validation;
	// used to measure framework overhead in isolation (Fig. 10b).
	TrackOnly bool
	// CaptureSites records file:line for each op so diagnostics can point
	// at source. Costs one runtime.Caller per op; on for tests and
	// debugging, off for the tightest benchmark loops.
	CaptureSites bool
	// StaticExcludes are address ranges excluded from checking in every
	// trace section — typically library metadata such as undo-log areas
	// (PMTest_EXCLUDE applied session-wide).
	StaticExcludes []Var
	// RecordTo, when non-nil, additionally serializes every submitted
	// trace section to the writer (binary format of CheckRecorded), so a
	// run can be re-checked offline — possibly under a different
	// persistency model — without re-executing the program.
	RecordTo io.Writer
	// DetectSharing enables the inter-thread sharing analyzer (the
	// paper's §7.4 future work): PM ranges written by more than one
	// thread — where per-thread checking is incomplete — are reported by
	// (*Session).SharedRanges.
	DetectSharing bool
	// Metrics, when non-nil, receives full observability instrumentation:
	// engine lifecycle counters and latency histograms, session tracking
	// counters (sections shipped, ops recorded, bytes encoded) and a ring
	// of recent trace events. Snapshot it with (*Session).Stats, or mount
	// obs.Handler(cfg.Metrics) to scrape it over HTTP. When nil (the
	// default), no timestamps are taken and the hot path is unchanged.
	Metrics *obs.Metrics
	// Observer, when non-nil, additionally receives raw per-trace
	// lifecycle events (TraceSubmitted / TraceDequeued / TraceChecked) —
	// the pluggable hook for custom collectors. It may be combined with
	// Metrics; both then see every event.
	Observer obs.Observer
	// Flight, when non-nil, records a span timeline of the run: one span
	// per trace section, per library transaction (TxBegin/TxEnd pairs),
	// per engine check, and one checker child span per diagnostic,
	// parented under the transaction whose op range contains it. Browse
	// live via flight.Handler, or export with flight.WriteChrome. When
	// nil the tracking hot path gains only a nil check per op.
	Flight *flight.Recorder
	// Logger, when non-nil, receives structured leveled log records from
	// the session and its engine. Every record carries the session ID;
	// engine records add trace_id/span_id, correlating log lines with
	// flight spans. When nil nothing is logged and nothing is paid.
	Logger *slog.Logger
	// Remote, when non-nil, streams trace sections to pmtestd checker
	// nodes instead of a local engine. Decoupled checking makes the two
	// paths equivalent: a section is a self-contained unit of work, so
	// the reports are byte-identical to a local run — including across
	// node failures, which the client absorbs with retries, failover and
	// (by default) local fallback. Degradation is visible in Stats as
	// the dist_* counters.
	Remote *RemoteConfig
}

// RemoteConfig selects and tunes the distributed checking tier.
type RemoteConfig struct {
	// Nodes are the pmtestd node addresses (host:port). Sessions shard
	// across them by session-id hash and fail over around the ring.
	Nodes []string
	// RPCTimeout is the per-RPC deadline (default 5s).
	RPCTimeout time.Duration
	// Attempts bounds tries of one RPC against one node before failing
	// over (default 3).
	Attempts int
	// BufferLimit caps the bytes of unacknowledged sections buffered
	// client-side (default 16MB). At the cap SendTrace blocks
	// (backpressure) unless DropOnOverflow is set.
	BufferLimit int64
	// DropOnOverflow drops sections instead of blocking at the buffer
	// cap; drops are counted in Stats (dist_sections_dropped).
	DropOnOverflow bool
	// HealthInterval enables background node health probing (0 = off).
	HealthInterval time.Duration
	// DisableFallback turns off the local in-process check of sections
	// no node accepts; such sections are then dropped with a deferred
	// session error.
	DisableFallback bool
}

// Stats is the observability snapshot returned by (*Session).Stats.
type Stats = obs.Snapshot

// SharedRange is a PM range written by two or more threads; re-exported
// from the engine.
type SharedRange = core.SharedRange

// backend is the checking surface a session drives: the local
// core.Engine or a dist.Session streaming to pmtestd nodes. Both assign
// trace IDs in submit order and return reports sorted by them, which is
// what keeps the two paths report-identical.
type backend interface {
	Submit(*trace.Trace)
	Wait() []core.Report
	Close() []core.Report
	QueueDepths() []int
}

// Session owns a checking engine and the variable-name registry. Create
// one per program under test with Init; release it with Exit.
type Session struct {
	cfg     Config
	id      uint64
	sid     string // "pmtest-<id>": the correlation name (see SID)
	engine  backend
	coord   *dist.Coordinator // non-nil only for remote sessions
	sharing *core.SharingAnalyzer
	metrics *obs.Metrics // nil when observability is off
	logger  *slog.Logger // nil when logging is off; carries the session ID
	// recording mirrors cfg.RecordTo != nil so the SendTrace fast path
	// can skip the session lock entirely; it flips off permanently after
	// an encode failure.
	recording atomic.Bool

	mu         sync.Mutex
	vars       map[string]Var
	nextThread int
	err        error // first deferred error (e.g. RecordTo encode failure)
}

// Var is a named persistent object registered with PMTest_REG_VAR so its
// persistency can be checked outside its lexical scope (paper §4.2).
type Var struct {
	Addr uint64
	Size uint64
}

// sessionIDs hands out process-unique session identifiers for log
// correlation.
var sessionIDs atomic.Uint64

// Init creates a session and starts its checking engine (PMTest_INIT).
func Init(cfg Config) *Session {
	if cfg.Model == nil {
		cfg.Model = X86
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	id := sessionIDs.Add(1)
	var logger *slog.Logger
	if cfg.Logger != nil {
		logger = cfg.Logger.With("session", id)
	}
	excludes := make([]core.Range, len(cfg.StaticExcludes))
	for i, v := range cfg.StaticExcludes {
		excludes[i] = core.Range{Addr: v.Addr, Size: v.Size}
	}
	// Fan lifecycle events out to the metrics registry and any custom
	// observer; Multi returns nil when neither is set, preserving the
	// engine's uninstrumented fast path.
	var observers []obs.Observer
	if cfg.Metrics != nil {
		observers = append(observers, cfg.Metrics)
	}
	if cfg.Observer != nil {
		observers = append(observers, cfg.Observer)
	}
	if cfg.Flight != nil {
		observers = append(observers, flight.EngineObserver(cfg.Flight))
	}
	if cfg.Metrics != nil && cfg.RecordTo != nil {
		cfg.RecordTo = &countingWriter{w: cfg.RecordTo, n: &cfg.Metrics.BytesEncoded}
	}
	s := &Session{
		cfg:     cfg,
		id:      id,
		sid:     fmt.Sprintf("pmtest-%d", id),
		metrics: cfg.Metrics,
		logger:  logger,
		vars:    make(map[string]Var),
	}
	if r := cfg.Remote; r != nil {
		coord, err := dist.NewCoordinator(dist.Options{
			Nodes:           r.Nodes,
			RPCTimeout:      r.RPCTimeout,
			Attempts:        r.Attempts,
			BufferLimit:     r.BufferLimit,
			DropOnOverflow:  r.DropOnOverflow,
			HealthInterval:  r.HealthInterval,
			DisableFallback: r.DisableFallback,
			TrackOnly:       cfg.TrackOnly,
			Excludes:        excludes,
			Metrics:         cfg.Metrics,
			Flight:          cfg.Flight,
			Logger:          logger,
		})
		if err != nil {
			// A misconfigured remote tier must not kill the program under
			// test: fall back to a local engine and surface the problem as
			// a deferred error (Err/Stats).
			s.err = fmt.Errorf("pmtest: remote checking unavailable: %w", err)
			if logger != nil {
				logger.Error("remote checking unavailable; using local engine", "err", err)
			}
		} else {
			s.coord = coord
			s.engine = coord.OpenSession(s.sid, cfg.Model)
		}
	}
	if s.engine == nil {
		eng := core.NewEngine(core.Options{
			Rules:          cfg.Model,
			Workers:        cfg.Workers,
			Check:          core.Config{Shards: cfg.Shards, EpochGC: cfg.EpochGC},
			TrackOnly:      cfg.TrackOnly,
			StaticExcludes: excludes,
			Observer:       obs.Multi(observers...),
			Logger:         logger,
		})
		s.engine = eng
		if cfg.Metrics != nil {
			cfg.Metrics.SetStripeDepthFn(eng.StripeDepths)
		}
	}
	s.recording.Store(cfg.RecordTo != nil)
	if cfg.Metrics != nil {
		cfg.Metrics.SetQueueDepthFn(s.engine.QueueDepths)
		cfg.Metrics.SetResourceFn(core.ResourceStats)
	}
	if logger != nil {
		logger.Info("pmtest session started",
			"model", fmt.Sprintf("%T", cfg.Model), "workers", cfg.Workers,
			"shards", cfg.Shards, "epoch_gc", cfg.EpochGC,
			"track_only", cfg.TrackOnly, "recording", cfg.RecordTo != nil)
	}
	if cfg.DetectSharing {
		s.sharing = core.NewSharingAnalyzer(excludes)
		s.sharing.SetMetrics(cfg.Metrics)
	}
	return s
}

// countingWriter counts bytes written through it into an obs.Counter.
type countingWriter struct {
	w io.Writer
	n *obs.Counter
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}

// ID returns the session's process-unique identifier — the "session"
// attribute on every log record the session and its engine emit.
func (s *Session) ID() uint64 { return s.id }

// SID returns the session's correlation name, "pmtest-<id>": the
// session ID a remote checking session registers on pmtestd nodes and
// the "session" attribute stamped on the session's flight spans. A
// fleet-wide span search for this name (attr session=<sid> on the
// client, attr remote_session_id=<sid> on nodes) finds everything the
// session caused; `pmtrace -remote -session <sid>` stitches it into
// one timeline.
func (s *Session) SID() string { return s.sid }

// Exit drains outstanding traces, stops the engine and returns all
// reports (PMTest_EXIT). Deferred session errors — such as a RecordTo
// encode failure — do not abort the run; retrieve them afterwards with
// Err or from the Stats snapshot.
func (s *Session) Exit() []Report {
	reports := s.engine.Close()
	if s.coord != nil {
		s.coord.Close()
	}
	if s.logger != nil {
		fails, warns := 0, 0
		for _, r := range reports {
			fails += r.Fails()
			warns += r.Warns()
		}
		s.logger.Info("pmtest session exited",
			"traces", len(reports), "fails", fails, "warns", warns)
	}
	return reports
}

// GetResult blocks until every trace sent so far has been checked and
// returns the reports accumulated so far (PMTest_GET_RESULT).
func (s *Session) GetResult() []Report { return s.engine.Wait() }

// Err returns the first deferred session error — a failure serializing
// a trace to Config.RecordTo, or a remote-checking degradation (refused
// or dropped section) — or nil. Such errors disable or degrade the
// failing feature but never crash the program under test.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		if de, ok := s.engine.(interface{ Err() error }); ok {
			s.err = de.Err()
		}
	}
	return s.err
}

// RemoteNode returns the address of the pmtestd node currently holding
// this session's checking engine. It is "" for local sessions, before
// the first remote section lands, and after a full degradation to
// local fallback.
func (s *Session) RemoteNode() string {
	if d, ok := s.engine.(*dist.Session); ok {
		return d.Node()
	}
	return ""
}

// Stats returns a point-in-time observability snapshot: trace/op
// counters, check-latency and queue-wait histograms, per-worker load,
// diagnostic tallies and recent trace events. Counters are non-zero only
// when Config.Metrics was installed; the engine's live queue depths and
// any deferred session error are included regardless.
func (s *Session) Stats() Stats {
	snap := s.metrics.Snapshot() // nil-safe: zero snapshot when off
	if snap.QueueDepths == nil {
		snap.QueueDepths = s.engine.QueueDepths()
	}
	if err := s.Err(); err != nil {
		snap.Err = err.Error()
	}
	return snap
}

// SharedRanges returns the PM ranges written by more than one thread —
// the spots where per-thread crash-consistency checking is incomplete
// (§7.4). It returns nil unless Config.DetectSharing was set.
func (s *Session) SharedRanges() []SharedRange {
	if s.sharing == nil {
		return nil
	}
	return s.sharing.Shared()
}

// ThreadInit creates the per-thread tracker (PMTest_THREAD_INIT). Each
// goroutine of the program under test owns one Thread; Thread is not safe
// for concurrent use.
func (s *Session) ThreadInit() *Thread {
	s.mu.Lock()
	id := s.nextThread
	s.nextThread++
	s.mu.Unlock()
	return &Thread{
		sess:    s,
		builder: trace.NewBuilder(id, s.cfg.CaptureSites),
		fl:      s.cfg.Flight,
	}
}

// RegVar registers a named persistent object (PMTest_REG_VAR).
func (s *Session) RegVar(name string, addr, size uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vars[name] = Var{Addr: addr, Size: size}
}

// UnregVar removes a registered name (PMTest_UNREG_VAR).
func (s *Session) UnregVar(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.vars, name)
}

// GetVar looks up a registered name (PMTest_GET_VAR).
func (s *Session) GetVar(name string) (Var, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vars[name]
	return v, ok
}

// Thread is the per-thread tracker: it records PM operations and checkers
// in program order and ships completed sections to the engine. It
// implements the trace.Sink interface used by the instrumented substrates
// (PM device, pmdk, mnemosyne, pmfs).
type Thread struct {
	sess    *Session
	builder *trace.Builder
	enabled bool

	// Flight-recorder state (nil/empty when no recorder is attached).
	// secSpan covers the section being built; openTx tracks live
	// transactions; txRanges accumulates the op ranges of transactions
	// closed in this section, attached to the trace at SendTrace.
	fl       *flight.Recorder
	secSpan  *flight.Span
	openTx   []openTx
	txRanges []trace.SpanRange
}

// openTx is a transaction span still awaiting its TxEnd, with the op
// index of its TxBegin in the current section.
type openTx struct {
	span  *flight.Span
	begin int
}

// Start enables tracking (PMTest_START). Operations recorded while
// tracking is disabled are dropped.
func (t *Thread) Start() { t.enabled = true }

// End disables tracking (PMTest_END).
func (t *Thread) End() { t.enabled = false }

// Enabled reports whether tracking is active.
func (t *Thread) Enabled() bool { return t.enabled }

// Record implements trace.Sink; instrumented libraries call it for every
// PM operation they execute.
func (t *Thread) Record(op trace.Op, callerSkip int) {
	if !t.enabled {
		return
	}
	// +1 accounts for this method's own frame, preserving the Sink
	// contract that callerSkip=0 attributes our immediate caller.
	t.builder.Record(op, callerSkip+1)
	if t.fl != nil {
		t.flightOp(op.Kind)
	}
}

// record is the internal entry point for the methods below: two wrapper
// frames (record itself and the public method) separate the user call
// site from builder.Record.
func (t *Thread) record(op trace.Op) {
	if !t.enabled {
		return
	}
	t.builder.Record(op, 2)
	if t.fl != nil {
		t.flightOp(op.Kind)
	}
}

// flightOp maintains the section and transaction spans as operations are
// recorded: the section span opens lazily at the first op, TxBegin opens
// a child transaction span, TxEnd closes it and remembers the op range
// it covered so checker findings can later be parented under it.
func (t *Thread) flightOp(k trace.Kind) {
	if t.secSpan == nil {
		// The session attribute is the precomputed correlation name, so
		// a fleet span search can find a session's client-side spans by
		// the same key nodes index under remote_session_id.
		t.secSpan = t.fl.Start(flight.CatSession, "section", 0).
			SetTID(t.builder.Thread()).
			SetStr("session", t.sess.sid)
	}
	switch k {
	case trace.KindTxBegin:
		sp := t.fl.Start(flight.CatTx, "tx", t.secSpan.ID).
			SetTID(t.builder.Thread()).
			SetStr("session", t.sess.sid)
		t.openTx = append(t.openTx, openTx{span: sp, begin: t.builder.Len() - 1})
	case trace.KindTxEnd:
		if n := len(t.openTx); n > 0 {
			ot := t.openTx[n-1]
			t.openTx = t.openTx[:n-1]
			end := t.builder.Len() - 1
			t.txRanges = append(t.txRanges,
				trace.SpanRange{Begin: ot.begin, End: end, SpanID: ot.span.ID})
			ot.span.SetInt("begin_op", int64(ot.begin)).
				SetInt("end_op", int64(end)).
				Finish()
		}
	}
}

// Pending returns the number of operations buffered in the current
// section.
func (t *Thread) Pending() int { return t.builder.Len() }

// SendTrace ships the current section to the checking engine and starts a
// new one (PMTest_SEND_TRACE). Sections are checked independently and
// concurrently with continued execution (§4.4).
func (t *Thread) SendTrace() {
	if t.builder.Len() == 0 {
		return
	}
	tr := t.builder.Take()
	if t.secSpan != nil {
		// A transaction still open at the section cut covers the tail of
		// this section and (if it ever ends) the head of the next one:
		// record the partial range and restart it at op 0.
		for i := range t.openTx {
			t.txRanges = append(t.txRanges, trace.SpanRange{
				Begin: t.openTx[i].begin, End: len(tr.Ops) - 1,
				SpanID: t.openTx[i].span.ID,
			})
			t.openTx[i].begin = 0
		}
		tr.SpanID = t.secSpan.ID
		if len(t.txRanges) > 0 {
			// The engine owns the trace once sent; hand it a fresh copy
			// and keep the scratch slice for the next section.
			tr.TxSpans = append([]trace.SpanRange(nil), t.txRanges...)
			t.txRanges = t.txRanges[:0]
		}
		t.secSpan.SetInt("ops", int64(len(tr.Ops))).Finish()
		t.secSpan = nil
	}
	if m := t.sess.metrics; m != nil {
		m.SectionsShipped.Add(1)
		m.OpsRecorded.Add(uint64(len(tr.Ops)))
	}
	if t.sess.sharing != nil {
		t.sess.sharing.Feed(tr)
	}
	if t.sess.recording.Load() {
		t.sess.mu.Lock()
		if w := t.sess.cfg.RecordTo; w != nil {
			if err := trace.Encode(w, tr); err != nil {
				// A recording failure must not crash the program under
				// test: store it as a deferred session error (see
				// Err/Stats), stop recording, and keep checking — the
				// engine still gets every trace.
				if t.sess.err == nil {
					t.sess.err = fmt.Errorf("pmtest: trace recording failed: %w", err)
				}
				t.sess.cfg.RecordTo = nil
				t.sess.recording.Store(false)
				if m := t.sess.metrics; m != nil {
					m.EncodeErrors.Add(1)
				}
				if lg := t.sess.logger; lg != nil {
					lg.Error("trace recording failed; recording disabled",
						"thread", t.builder.Thread(), "span_id", tr.SpanID, "err", err)
				}
			}
		}
		t.sess.mu.Unlock()
	}
	t.sess.engine.Submit(tr)
}

// --- Low-level PM operations (emitted by instrumented code) ---------------

// Write records a store to PM at [addr, addr+size).
func (t *Thread) Write(addr, size uint64) {
	t.record(trace.Op{Kind: trace.KindWrite, Addr: addr, Size: size})
}

// WriteNT records a non-temporal store (cache-bypassing; persists at the
// next fence without an explicit writeback).
func (t *Thread) WriteNT(addr, size uint64) {
	t.record(trace.Op{Kind: trace.KindWriteNT, Addr: addr, Size: size})
}

// Flush records a clwb-style cache writeback of [addr, addr+size).
func (t *Thread) Flush(addr, size uint64) {
	t.record(trace.Op{Kind: trace.KindFlush, Addr: addr, Size: size})
}

// Fence records an sfence: completes prior writebacks and opens a new
// epoch.
func (t *Thread) Fence() { t.record(trace.Op{Kind: trace.KindFence}) }

// OFence records a HOPS ordering fence.
func (t *Thread) OFence() { t.record(trace.Op{Kind: trace.KindOFence}) }

// DFence records a HOPS durability fence.
func (t *Thread) DFence() { t.record(trace.Op{Kind: trace.KindDFence}) }

// --- Transaction events ----------------------------------------------------

// TxBegin records a transaction begin (e.g. PMDK TX_BEGIN).
func (t *Thread) TxBegin() { t.record(trace.Op{Kind: trace.KindTxBegin}) }

// TxEnd records a transaction end (e.g. PMDK TX_END).
func (t *Thread) TxEnd() { t.record(trace.Op{Kind: trace.KindTxEnd}) }

// TxAdd records an undo-log backup of [addr, addr+size) (PMDK TX_ADD).
func (t *Thread) TxAdd(addr, size uint64) {
	t.record(trace.Op{Kind: trace.KindTxAdd, Addr: addr, Size: size})
}

// --- Checkers (paper Table 2) ----------------------------------------------

// IsPersist asserts that [addr, addr+size) has been persisted since its
// last update.
func (t *Thread) IsPersist(addr, size uint64) {
	t.record(trace.Op{Kind: trace.KindIsPersist, Addr: addr, Size: size})
}

// IsPersistVar asserts persistence of a variable registered with RegVar.
// It returns an error if the name is unknown.
func (t *Thread) IsPersistVar(name string) error {
	v, ok := t.sess.GetVar(name)
	if !ok {
		return fmt.Errorf("pmtest: no registered variable %q", name)
	}
	t.record(trace.Op{Kind: trace.KindIsPersist, Addr: v.Addr, Size: v.Size})
	return nil
}

// IsOrderedBefore asserts every persist of [a, a+sa) is strictly ordered
// before any persist of [b, b+sb).
func (t *Thread) IsOrderedBefore(a, sa, b, sb uint64) {
	t.record(trace.Op{Kind: trace.KindIsOrderedBefore, Addr: a, Size: sa, Addr2: b, Size2: sb})
}

// TxCheckerStart opens a transaction-checker scope: subsequent writes must
// be preceded by TxAdd backups (TX_CHECKER_START, §5.1.1).
func (t *Thread) TxCheckerStart() {
	t.record(trace.Op{Kind: trace.KindTxCheckerStart})
}

// TxCheckerEnd closes the scope and verifies every object modified inside
// it has persisted (TX_CHECKER_END, §5.1.1).
func (t *Thread) TxCheckerEnd() {
	t.record(trace.Op{Kind: trace.KindTxCheckerEnd})
}

// Exclude removes [addr, addr+size) from the testing scope
// (PMTest_EXCLUDE): automatic transaction checks and performance warnings
// skip it.
func (t *Thread) Exclude(addr, size uint64) {
	t.record(trace.Op{Kind: trace.KindExclude, Addr: addr, Size: size})
}

// Include restores an excluded range to the testing scope
// (PMTest_INCLUDE).
func (t *Thread) Include(addr, size uint64) {
	t.record(trace.Op{Kind: trace.KindInclude, Addr: addr, Size: size})
}

// CheckRecorded replays serialized trace sections (written via
// Config.RecordTo) through a fresh checking engine under the given model
// and returns the reports. Offline checking is a natural consequence of
// the paper's decoupled design: a trace is a self-contained unit of
// checking work, so it can be validated after the fact — even under a
// different persistency model than the one it ran on.
func CheckRecorded(r io.Reader, model RuleSet, workers int) ([]Report, error) {
	traces, err := trace.DecodeAll(r)
	if err != nil {
		return nil, err
	}
	if model == nil {
		model = X86
	}
	e := core.NewEngine(core.Options{Rules: model, Workers: workers})
	for _, t := range traces {
		t.ID = 0 // reassigned by Submit
		e.Submit(t)
	}
	return e.Close(), nil
}

// Summarize renders reports as the engine's textual output.
func Summarize(reports []Report) string { return core.Summarize(reports) }

// CountCode tallies findings with the given code across reports.
func CountCode(reports []Report, c Code) int { return core.CountCode(reports, c) }
