package pmtest_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pmtest"
	"pmtest/internal/obs"
)

// runInstrumented drives a small session with full observability on and
// returns it plus its metrics registry (session left open for Stats).
func runInstrumented(t *testing.T, cfg pmtest.Config) (*pmtest.Session, *obs.Metrics) {
	t.Helper()
	m := obs.NewMetrics(32)
	cfg.Metrics = m
	sess := pmtest.Init(cfg)
	th := sess.ThreadInit()
	th.Start()
	for i := 0; i < 20; i++ {
		addr := uint64(0x1000 + i*128)
		th.Write(addr, 64)
		th.Flush(addr, 64)
		th.Fence()
		th.IsPersist(addr, 64)
		th.SendTrace()
	}
	// One buggy section: unflushed write + isPersist → FAIL.
	th.Write(0x9000, 64)
	th.IsPersist(0x9000, 64)
	th.SendTrace()
	sess.GetResult()
	return sess, m
}

// TestSessionStats: after an instrumented run, Stats must return
// non-zero trace, op and latency counters — the acceptance bar of the
// observability layer.
func TestSessionStats(t *testing.T) {
	sess, m := runInstrumented(t, pmtest.Config{Workers: 2})
	defer sess.Exit()
	s := sess.Stats()
	if s.TracesSubmitted != 21 || s.TracesChecked != 21 {
		t.Fatalf("trace counters = %d/%d, want 21/21", s.TracesSubmitted, s.TracesChecked)
	}
	if s.SectionsShipped != 21 || s.OpsRecorded != 82 {
		t.Fatalf("session counters = %d sections / %d ops, want 21/82", s.SectionsShipped, s.OpsRecorded)
	}
	if s.OpsChecked != 82 || s.OpsPerSec <= 0 {
		t.Fatalf("ops checked = %d (%.0f/s), want 82 at non-zero rate", s.OpsChecked, s.OpsPerSec)
	}
	if s.CheckDur.Count != 21 || s.CheckDur.P99 <= 0 || s.QueueWait.Count != 21 {
		t.Fatalf("latency histograms empty: check=%d wait=%d", s.CheckDur.Count, s.QueueWait.Count)
	}
	if s.DiagsBySeverity["FAIL"] != 1 || s.DiagsByCode["not-persisted"] != 1 {
		t.Fatalf("diag tallies wrong: %v / %v", s.DiagsBySeverity, s.DiagsByCode)
	}
	if len(s.QueueDepths) != 2 {
		t.Fatalf("queue depths = %v, want 2 workers", s.QueueDepths)
	}
	if len(s.RecentTraces) == 0 {
		t.Fatal("recent trace ring empty")
	}
	// The registry snapshot and the session snapshot agree.
	if got := m.Snapshot().TracesChecked; got != s.TracesChecked {
		t.Fatalf("registry sees %d checked, session sees %d", got, s.TracesChecked)
	}
}

// TestSessionStatsWithoutMetrics: Stats is nil-safe when observability
// is off — zero counters, but live queue depths still reported.
func TestSessionStatsWithoutMetrics(t *testing.T) {
	sess := pmtest.Init(pmtest.Config{Workers: 3})
	defer sess.Exit()
	s := sess.Stats()
	if s.TracesChecked != 0 || s.OpsChecked != 0 {
		t.Fatalf("uninstrumented Stats non-zero: %+v", s)
	}
	if len(s.QueueDepths) != 3 {
		t.Fatalf("queue depths = %v, want 3 workers", s.QueueDepths)
	}
}

// TestSessionObserverPluggable: a custom Observer receives lifecycle
// events alongside the Metrics registry.
func TestSessionObserverPluggable(t *testing.T) {
	var mu sync.Mutex
	var submitted, checked int
	sess := pmtest.Init(pmtest.Config{Observer: funcObserver{
		onSubmit: func() { mu.Lock(); submitted++; mu.Unlock() },
		onCheck:  func() { mu.Lock(); checked++; mu.Unlock() },
	}})
	th := sess.ThreadInit()
	th.Start()
	th.Write(0x10, 64)
	th.SendTrace()
	sess.Exit()
	if submitted != 1 || checked != 1 {
		t.Fatalf("observer saw %d submitted / %d checked, want 1/1", submitted, checked)
	}
}

type funcObserver struct {
	onSubmit func()
	onCheck  func()
}

func (f funcObserver) TraceSubmitted(_, _, _ int)              { f.onSubmit() }
func (f funcObserver) TraceDequeued(_, _ int, _ time.Duration) {}
func (f funcObserver) TraceChecked(obs.TraceEvent)             { f.onCheck() }

// failingWriter errors after limit bytes, simulating a full disk under
// Config.RecordTo.
type failingWriter struct {
	n     int
	limit int
}

var errDiskFull = errors.New("disk full")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n+len(p) > f.limit {
		return 0, errDiskFull
	}
	f.n += len(p)
	return len(p), nil
}

// TestSendTraceEncodeErrorStored: a RecordTo failure must not panic; it
// is stored as a session error retrievable from Err and Stats, recording
// stops, and checking continues.
func TestSendTraceEncodeErrorStored(t *testing.T) {
	// The limit admits the first encoded section (one buffered Write of
	// ~130 bytes) and rejects the second.
	m := obs.NewMetrics(8)
	sess := pmtest.Init(pmtest.Config{
		RecordTo: &failingWriter{limit: 200},
		Metrics:  m,
	})
	th := sess.ThreadInit()
	th.Start()
	for i := 0; i < 5; i++ {
		addr := uint64(0x100 + i*64)
		th.Write(addr, 64)
		th.Flush(addr, 64)
		th.Fence()
		th.SendTrace() // must not panic once the writer starts failing
	}
	reports := sess.Exit()
	if len(reports) != 5 {
		t.Fatalf("checking stopped after encode error: %d reports, want 5", len(reports))
	}
	err := sess.Err()
	if err == nil || !errors.Is(err, errDiskFull) {
		t.Fatalf("Err() = %v, want wrapped errDiskFull", err)
	}
	s := sess.Stats()
	if s.EncodeErrors != 1 {
		t.Fatalf("encode errors = %d, want exactly 1 (recording disabled after first)", s.EncodeErrors)
	}
	if !strings.Contains(s.Err, "disk full") {
		t.Fatalf("Stats.Err = %q, want the stored error", s.Err)
	}
	if s.BytesEncoded == 0 || s.BytesEncoded > 200 {
		t.Fatalf("bytes encoded = %d, want (0,200]", s.BytesEncoded)
	}
}

// TestSendTraceRecordsBytes: successful recording reports encoded bytes
// matching the buffer.
func TestSendTraceRecordsBytes(t *testing.T) {
	var buf bytes.Buffer
	m := obs.NewMetrics(8)
	sess := pmtest.Init(pmtest.Config{RecordTo: &buf, Metrics: m})
	th := sess.ThreadInit()
	th.Start()
	th.Write(0x10, 64)
	th.Flush(0x10, 64)
	th.Fence()
	th.SendTrace()
	sess.Exit()
	if got := sess.Stats().BytesEncoded; got != uint64(buf.Len()) {
		t.Fatalf("bytes encoded = %d, buffer holds %d", got, buf.Len())
	}
	if sess.Err() != nil {
		t.Fatalf("unexpected session error: %v", sess.Err())
	}
}

// TestCheckRecordedDefaultWorkers: CheckRecorded must work with
// workers <= 0 (defaulted to 1) rather than relying on callers to pass a
// sane count.
func TestCheckRecordedDefaultWorkers(t *testing.T) {
	var buf bytes.Buffer
	sess := pmtest.Init(pmtest.Config{RecordTo: &buf})
	th := sess.ThreadInit()
	th.Start()
	th.Write(0x10, 64)
	th.IsPersist(0x10, 64) // FAIL: never flushed
	th.SendTrace()
	sess.Exit()

	for _, workers := range []int{0, -3} {
		reports, err := pmtest.CheckRecorded(bytes.NewReader(buf.Bytes()), pmtest.X86, workers)
		if err != nil {
			t.Fatalf("CheckRecorded(workers=%d): %v", workers, err)
		}
		if len(reports) != 1 || reports[0].Fails() != 1 {
			t.Fatalf("CheckRecorded(workers=%d) = %+v, want one FAIL", workers, reports)
		}
	}
}

// TestSharingAnalyzerSessionMetrics: DetectSharing feeds the sharing
// counters of the session registry.
func TestSharingAnalyzerSessionMetrics(t *testing.T) {
	m := obs.NewMetrics(8)
	sess := pmtest.Init(pmtest.Config{DetectSharing: true, Metrics: m})
	for i := 0; i < 2; i++ {
		th := sess.ThreadInit()
		th.Start()
		th.Write(0x100, 64) // same range from both threads
		th.Flush(0x100, 64)
		th.Fence()
		th.SendTrace()
	}
	sess.Exit()
	s := sess.Stats()
	if s.SharingTracesFed != 2 || s.SharingWritesTracked != 2 {
		t.Fatalf("sharing counters = %d/%d, want 2/2", s.SharingTracesFed, s.SharingWritesTracked)
	}
	if shared := sess.SharedRanges(); len(shared) != 1 {
		t.Fatalf("shared ranges = %+v, want 1", shared)
	}
}
