package pmtest_test

// Golden test for the flight recorder's end-to-end causal chain: a
// deliberately buggy PMDK run (the undo-log entry's writeback is
// skipped, so the log cannot be proven durable before the data write)
// must export a Chrome trace whose checker FAIL span is parented under
// the transaction span that contains the guilty operation, which in
// turn is parented under the section span — with the persist-interval
// diagnostic riding along as an annotation. The structural summary is
// pinned as a literal; timestamps are excluded, everything else (span
// topology, op indices, codes) is deterministic for a fixed insert.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pmtest"
	"pmtest/internal/flight"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
	"pmtest/internal/whisper"
)

func TestFlightGoldenBuggyPMDK(t *testing.T) {
	rec := flight.NewRecorder(64)
	sess := pmtest.Init(pmtest.Config{Flight: rec})
	th := sess.ThreadInit()
	th.Start()
	dev := pmem.New(1<<24, th)
	s, err := whisper.NewCTree(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Pool().SetBugs(pmdk.Bugs{SkipLogEntryFlush: true})
	s.Pool().SetAnnotations(true)
	s.SetCheckers(true)
	if err := s.Insert(1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	th.SendTrace()
	sess.Exit()

	var buf strings.Builder
	if err := flight.WriteChrome(&buf, rec); err != nil {
		t.Fatal(err)
	}
	tr, err := flight.ReadChrome(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	byID := map[float64]flight.ChromeEvent{}
	var checker, tx, section flight.ChromeEvent
	for _, e := range tr.TraceEvents {
		byID[e.Args["span_id"].(float64)] = e
		switch e.Cat {
		case "checker":
			checker = e
		case "tx":
			tx = e
		case "session":
			section = e
		}
	}

	// The causal chain: checker FAIL → tx → section.
	if checker.Name != "order-violation" || checker.Args["error"] != true {
		t.Fatalf("checker span = %+v, want order-violation FAIL", checker)
	}
	parentTx, ok := byID[checker.Args["parent_span_id"].(float64)]
	if !ok || parentTx.Cat != "tx" {
		t.Fatalf("checker parent = %+v, want the tx span", parentTx)
	}
	if grand, _ := byID[parentTx.Args["parent_span_id"].(float64)]; grand.Cat != "session" {
		t.Fatalf("tx parent = %+v, want the section span", grand)
	}
	// The guilty op index falls inside the tx's recorded op range.
	opIdx := checker.Args["op_index"].(float64)
	if lo, hi := tx.Args["begin_op"].(float64), tx.Args["end_op"].(float64); opIdx < lo || opIdx > hi {
		t.Fatalf("op_index %v outside tx range [%v,%v]", opIdx, lo, hi)
	}
	// The persist-interval diagnostic is carried on the span.
	if msg, _ := checker.Args["message"].(string); !strings.Contains(msg, "persist intervals overlap") {
		t.Fatalf("checker message = %q, want persist-interval overlap text", msg)
	}
	_ = section

	// Pin the normalized structure (spans sorted by category/name;
	// parents named by category; timestamps excluded).
	name := func(id any) string {
		if id == nil {
			return "root"
		}
		return byID[id.(float64)].Cat
	}
	var lines []string
	for _, e := range tr.TraceEvents {
		l := fmt.Sprintf("%s/%s parent=%s", e.Cat, e.Name, name(e.Args["parent_span_id"]))
		for _, k := range []string{"ops", "tracked_ops", "fails", "begin_op", "end_op", "op_index", "severity", "error"} {
			if v, ok := e.Args[k]; ok {
				l += fmt.Sprintf(" %s=%v", k, v)
			}
		}
		lines = append(lines, l)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n")
	const golden = `checker/order-violation parent=tx op_index=40 severity=FAIL error=true
engine/check parent=session ops=58 tracked_ops=52 fails=1 error=true
session/section parent=root ops=58
tx/tx parent=session begin_op=20 end_op=44`
	if got != golden {
		t.Fatalf("flight structure drifted:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestFlightCleanRunNoCheckerSpans is the negative control: the same
// workload without the injected bug produces section, tx and engine
// spans but no checker spans and no errors.
func TestFlightCleanRunNoCheckerSpans(t *testing.T) {
	rec := flight.NewRecorder(64)
	sess := pmtest.Init(pmtest.Config{Flight: rec})
	th := sess.ThreadInit()
	th.Start()
	dev := pmem.New(1<<24, th)
	s, err := whisper.NewCTree(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Pool().SetAnnotations(true)
	s.SetCheckers(true)
	if err := s.Insert(1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	th.SendTrace()
	reports := sess.Exit()
	for _, r := range reports {
		if !r.Clean() {
			t.Fatalf("clean run flagged: %s", r.Summary())
		}
	}
	if n := rec.Len(flight.CatChecker); n != 0 {
		t.Fatalf("clean run produced %d checker spans", n)
	}
	for _, cat := range []flight.Category{flight.CatSession, flight.CatTx, flight.CatEngine} {
		if rec.Len(cat) == 0 {
			t.Fatalf("clean run missing %s spans", cat)
		}
	}
	if errSpans := rec.Search(flight.Filter{ErrOnly: true}); len(errSpans) != 0 {
		t.Fatalf("clean run has error spans: %+v", errSpans)
	}
}
