package pmtest

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pmtest/internal/dist"
	"pmtest/internal/obs"
)

// remoteNodeAddr hosts one checker node over loopback HTTP.
func remoteNodeAddr(t *testing.T) string {
	t.Helper()
	node := dist.NewNode(dist.NodeConfig{Metrics: obs.NewMetrics(8)})
	srv := httptest.NewServer(node)
	t.Cleanup(func() {
		srv.Close()
		node.Close()
	})
	return strings.TrimPrefix(srv.URL, "http://")
}

// recordTwoSections drives the same workload as TestSessionEndToEndX86
// through an already-initialized session.
func recordTwoSections(sess *Session) []Report {
	th := sess.ThreadInit()
	th.Start()
	th.Write(0x10, 64)
	th.Flush(0x10, 64)
	th.Fence()
	th.IsPersist(0x10, 64)
	th.SendTrace()
	th.Write(0x90, 64)
	th.IsPersist(0x90, 64)
	th.SendTrace()
	return sess.Exit()
}

// TestRemoteConfigEndToEnd: the same instrumentation calls produce the
// same reports whether Config.Remote routes checking to a node or the
// default in-process engine runs.
func TestRemoteConfigEndToEnd(t *testing.T) {
	local := recordTwoSections(Init(Config{}))

	m := obs.NewMetrics(8)
	sess := Init(Config{
		Remote:  &RemoteConfig{Nodes: []string{remoteNodeAddr(t)}},
		Metrics: m,
	})
	remote := recordTwoSections(sess)

	if len(remote) != len(local) {
		t.Fatalf("remote run: %d reports, local: %d", len(remote), len(local))
	}
	for i := range local {
		if remote[i].Summary() != local[i].Summary() {
			t.Fatalf("report %d diverged:\nlocal:  %s\nremote: %s", i, local[i].Summary(), remote[i].Summary())
		}
	}
	if !remote[0].Clean() || remote[1].Fails() != 1 || !remote[1].HasCode(CodeNotPersisted) {
		t.Fatalf("remote reports lost the diagnostic: %s / %s", remote[0].Summary(), remote[1].Summary())
	}
	snap := m.Snapshot()
	if snap.DistSectionsSent != 2 {
		t.Fatalf("dist sections sent = %d, want 2", snap.DistSectionsSent)
	}
}

// TestRemoteConfigUnreachableDegrades: a fleet that never answers still
// yields complete reports via the local fallback, and the degradation
// is visible in both the deferred error-free path (fallback counters)
// and the session's metrics.
func TestRemoteConfigUnreachableDegrades(t *testing.T) {
	m := obs.NewMetrics(8)
	sess := Init(Config{
		Remote: &RemoteConfig{
			Nodes:      []string{"127.0.0.1:1"}, // reserved port: connection refused
			RPCTimeout: 200 * time.Millisecond,
			Attempts:   1,
		},
		Metrics: m,
	})
	reports := recordTwoSections(sess)

	if len(reports) != 2 {
		t.Fatalf("got %d reports from a dead fleet, want 2 via local fallback", len(reports))
	}
	if !reports[0].Clean() || reports[1].Fails() != 1 {
		t.Fatalf("fallback reports wrong: %s / %s", reports[0].Summary(), reports[1].Summary())
	}
	snap := m.Snapshot()
	if snap.DistFallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2", snap.DistFallbacks)
	}
}

// TestRemoteConfigInvalidFallsBackLocal: a Remote config that cannot
// even build a coordinator (no nodes) falls back to the in-process
// engine and surfaces a deferred error instead of panicking or
// silently dropping work.
func TestRemoteConfigInvalidFallsBackLocal(t *testing.T) {
	sess := Init(Config{Remote: &RemoteConfig{}})
	reports := recordTwoSections(sess)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2 from the local fallback engine", len(reports))
	}
	if sess.Err() == nil {
		t.Fatal("invalid remote config left no deferred error")
	}
}
