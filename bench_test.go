package pmtest_test

// Benchmarks regenerating every figure and table of the paper's
// evaluation (§6), plus ablations of PMTest's design choices. Run with
//
//	go test -bench=. -benchmem
//
// or a single artifact, e.g. -bench=BenchmarkFig10a. The cmd/repro tool
// prints the same data as formatted tables with slowdown columns.

import (
	"fmt"
	"testing"

	pmtestpkg "pmtest"
	"pmtest/internal/core"
	"pmtest/internal/harness"
	"pmtest/internal/interval"
	"pmtest/internal/mnemosyne"
	"pmtest/internal/obs"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
	tracepkg "pmtest/internal/trace"
	"pmtest/internal/whisper"
)

// benchN is the insertions per iteration for microbenchmarks: small
// enough for testing.B calibration, large enough to amortize setup.
const benchN = 2000

func runMicro(b *testing.B, store string, txSize uint64, tool harness.Tool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := harness.MicroBench(store, txSize, benchN, tool, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Fails > 0 {
			b.Fatalf("clean workload reported %d FAILs", res.Fails)
		}
	}
	b.ReportMetric(float64(benchN)*float64(b.N)/b.Elapsed().Seconds(), "inserts/s")
}

// BenchmarkFig10a: the five microbenchmarks across transaction sizes
// under no tool, PMTest and Pmemcheck — the slowdown comparison of
// Fig. 10a. Compare "none" vs "PMTest" vs "Pmemcheck" times per
// sub-benchmark to obtain the figure's y-axis.
func BenchmarkFig10a(b *testing.B) {
	tools := []struct {
		name string
		tool harness.Tool
	}{
		{"none", harness.ToolNone},
		{"PMTest", harness.ToolPMTest},
		{"Pmemcheck", harness.ToolPmemcheck},
	}
	for _, store := range harness.MicroStores {
		for _, size := range []uint64{64, 256, 1024, 4096} {
			for _, tl := range tools {
				b.Run(fmt.Sprintf("%s/tx%d/%s", store, size, tl.name), func(b *testing.B) {
					runMicro(b, store, size, tl.tool)
				})
			}
		}
	}
}

// BenchmarkFig10b: PMTest tracking-only vs full checking — the overhead
// breakdown of Fig. 10b (framework = track-only − none; checker = full −
// track-only).
func BenchmarkFig10b(b *testing.B) {
	for _, store := range harness.MicroStores {
		for _, size := range []uint64{64, 1024, 4096} {
			b.Run(fmt.Sprintf("%s/tx%d/framework", store, size), func(b *testing.B) {
				runMicro(b, store, size, harness.ToolPMTestTrack)
			})
			b.Run(fmt.Sprintf("%s/tx%d/full", store, size), func(b *testing.B) {
				runMicro(b, store, size, harness.ToolPMTest)
			})
		}
	}
}

// BenchmarkFig11: the real workloads of Table 4 under no tool and PMTest
// — Fig. 11's slowdown bars.
func BenchmarkFig11(b *testing.B) {
	const nOps = 4000
	for _, wl := range harness.RealWorkloads {
		for _, tl := range []struct {
			name string
			tool harness.Tool
		}{{"none", harness.ToolNone}, {"PMTest", harness.ToolPMTest}} {
			b.Run(fmt.Sprintf("%s/%s", wl, tl.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := harness.RealBench(wl, nOps, tl.tool)
					if err != nil {
						b.Fatal(err)
					}
					if res.Fails > 0 {
						b.Fatalf("clean workload reported %d FAILs", res.Fails)
					}
				}
			})
		}
	}
}

// BenchmarkFig12: Memcached with scaled server threads and PMTest
// workers — Fig. 12a (threads), 12b (workers) and 12c (both).
func BenchmarkFig12(b *testing.B) {
	const opsPerClient = 1500
	run := func(b *testing.B, threads, workers int) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.ScaleBench("memslap", threads, workers, opsPerClient); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, th := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("12a/threads%d-workers1", th), func(b *testing.B) { run(b, th, 1) })
	}
	for _, wk := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("12b/threads4-workers%d", wk), func(b *testing.B) { run(b, 4, wk) })
	}
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("12c/threads%d-workers%d", k, k), func(b *testing.B) { run(b, k, k) })
	}
}

// BenchmarkTable5: the cost of one full synthetic-bug sweep — Table 5's
// detection run (time dominated by the 42 instrumented workload runs).
func BenchmarkTable5(b *testing.B) {
	// Import cycle note: bugdb depends only on internal packages; the
	// sweep itself is executed via cmd/bughunt or the bugdb tests. Here
	// we benchmark the engine-side cost of a representative buggy trace.
	ops := buggyTxTrace(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CheckTrace(core.X86{}, &tracepkg.Trace{Ops: ops})
	}
}

// buggyTxTrace builds a transaction trace with a missing TX_ADD.
func buggyTxTrace(writes int) []tracepkg.Op {
	ops := []tracepkg.Op{{Kind: tracepkg.KindTxCheckerStart}, {Kind: tracepkg.KindTxBegin}}
	for i := 0; i < writes; i++ {
		addr := uint64(0x1000 + i*64)
		if i%2 == 0 {
			ops = append(ops, tracepkg.Op{Kind: tracepkg.KindTxAdd, Addr: addr, Size: 64})
		}
		ops = append(ops, tracepkg.Op{Kind: tracepkg.KindWrite, Addr: addr, Size: 64})
		ops = append(ops, tracepkg.Op{Kind: tracepkg.KindFlush, Addr: addr, Size: 64})
	}
	ops = append(ops, tracepkg.Op{Kind: tracepkg.KindFence},
		tracepkg.Op{Kind: tracepkg.KindTxEnd}, tracepkg.Op{Kind: tracepkg.KindTxCheckerEnd})
	return ops
}

// --- Ablations of PMTest's design choices (DESIGN.md §6) --------------------

// BenchmarkAblationDecoupled vs Inline: checking on worker goroutines
// (the paper's Fig. 8 pipeline) vs synchronously on the program thread.
func BenchmarkAblationDecoupled(b *testing.B) {
	b.Run("decoupled", func(b *testing.B) { runMicro(b, "ctree", 512, harness.ToolPMTest) })
	b.Run("inline", func(b *testing.B) { runMicro(b, "ctree", 512, harness.ToolPMTestInline) })
}

// BenchmarkAblationSectioning: per-transaction trace sections vs one
// monolithic end-of-run trace (PMTest_SEND_TRACE granularity, §4.2).
func BenchmarkAblationSectioning(b *testing.B) {
	b.Run("per-tx-sections", func(b *testing.B) { runMicro(b, "ctree", 512, harness.ToolPMTest) })
	b.Run("monolithic", func(b *testing.B) { runMicro(b, "ctree", 512, harness.ToolPMTestMonolithic) })
}

// BenchmarkAblationGranularity: coarse range tracking (PMTest) vs
// byte-granular tracking (pmemcheck's model).
func BenchmarkAblationGranularity(b *testing.B) {
	b.Run("range-granular", func(b *testing.B) { runMicro(b, "hashmap-ll", 2048, harness.ToolPMTest) })
	b.Run("byte-granular", func(b *testing.B) { runMicro(b, "hashmap-ll", 2048, harness.ToolPmemcheck) })
}

// BenchmarkAblationShadow: the interval-tree shadow memory vs a flat
// per-byte map for identical operation streams (§4.4's O(log n) claim).
func BenchmarkAblationShadow(b *testing.B) {
	const ranges = 4096
	b.Run("interval-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := interval.New[int]()
			for j := 0; j < ranges; j++ {
				lo := uint64(j%1024) * 256
				tr.Set(lo, lo+256, j)
			}
			tr.Visit(0, 1024*256, func(interval.Seg[int]) bool { return true })
		}
	})
	b.Run("byte-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := make(map[uint64]int)
			for j := 0; j < ranges; j++ {
				lo := uint64(j%1024) * 256
				for a := lo; a < lo+256; a++ {
					m[a] = j
				}
			}
			n := 0
			for range m {
				n++
			}
		}
	})
}

// BenchmarkEngineThroughput: raw checking-engine throughput on a
// realistic transaction trace (ops/s of the core contribution).
func BenchmarkEngineThroughput(b *testing.B) {
	ops := cleanTxTrace(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.CheckTrace(core.X86{}, &tracepkg.Trace{Ops: ops})
		if !r.Clean() {
			b.Fatal("clean trace flagged")
		}
	}
	b.ReportMetric(float64(len(ops))*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

func cleanTxTrace(writes int) []tracepkg.Op {
	ops := []tracepkg.Op{{Kind: tracepkg.KindTxCheckerStart}, {Kind: tracepkg.KindTxBegin}}
	for i := 0; i < writes; i++ {
		addr := uint64(0x1000 + i*64)
		ops = append(ops,
			tracepkg.Op{Kind: tracepkg.KindTxAdd, Addr: addr, Size: 64},
			tracepkg.Op{Kind: tracepkg.KindWrite, Addr: addr, Size: 64},
			tracepkg.Op{Kind: tracepkg.KindFlush, Addr: addr, Size: 64})
	}
	ops = append(ops, tracepkg.Op{Kind: tracepkg.KindFence},
		tracepkg.Op{Kind: tracepkg.KindTxEnd}, tracepkg.Op{Kind: tracepkg.KindTxCheckerEnd})
	return ops
}

// BenchmarkWorkerScaling: engine throughput with 1, 2 and 4 checking
// workers fed from one producer (the master/worker pipeline of Fig. 8).
func BenchmarkWorkerScaling(b *testing.B) {
	ops := cleanTxTrace(128)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			e := core.NewEngine(core.Options{Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Submit(&tracepkg.Trace{Ops: ops})
			}
			e.Wait()
			b.StopTimer()
			e.Close()
		})
	}
}

// BenchmarkObserverOverhead: engine Submit→check pipeline with no
// observer vs a full obs.Metrics registry. The no-observer variant must
// stay within noise of the seed (the engine takes no timestamps on that
// path); the metrics variant bounds the cost of turning observability on.
func BenchmarkObserverOverhead(b *testing.B) {
	ops := cleanTxTrace(128)
	run := func(b *testing.B, o obs.Observer) {
		e := core.NewEngine(core.Options{Workers: 2, Observer: o})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Submit(&tracepkg.Trace{Ops: ops})
		}
		e.Wait()
		b.StopTimer()
		e.Close()
	}
	b.Run("no-observer", func(b *testing.B) { run(b, nil) })
	b.Run("metrics", func(b *testing.B) { run(b, obs.NewMetrics(64)) })
}

// BenchmarkVacation: the STAMP-style multi-table reservation workload
// (an additional WHISPER benchmark) with and without PMTest.
func BenchmarkVacation(b *testing.B) {
	run := func(b *testing.B, checked bool) {
		for i := 0; i < b.N; i++ {
			var sess *pmtestpkg.Session
			var sink tracepkg.Sink
			if checked {
				sess = pmtestpkg.Init(pmtestpkg.Config{})
				th := sess.ThreadInit()
				th.Start()
				sink = th
			}
			dev := pmem.New(1<<24, sink)
			v, err := whisper.NewVacation(dev, 64, 32, 8)
			if err != nil {
				b.Fatal(err)
			}
			v.SetCheckers(checked)
			for j := uint64(0); j < 1000; j++ {
				if err := v.MakeReservation(j%32, int(j%3), j%64); err != nil &&
					err != whisper.ErrSoldOut {
					b.Fatal(err)
				}
			}
			if sess != nil {
				reports := sess.Exit()
				for _, r := range reports {
					if r.Fails() > 0 {
						b.Fatal("clean vacation flagged")
					}
				}
			}
		}
	}
	b.Run("none", func(b *testing.B) { run(b, false) })
	b.Run("PMTest", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLogging: undo logging (pmdk) vs redo logging
// (mnemosyne) for the same durable-update pattern — the two library
// disciplines of paper Fig. 2 have different persist-ordering costs.
func BenchmarkAblationLogging(b *testing.B) {
	const writes = 500
	b.Run("undo-pmdk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := pmem.New(1<<24, nil)
			p, err := pmdk.Create(dev, 0)
			if err != nil {
				b.Fatal(err)
			}
			off, _ := p.Alloc(64 * writes)
			for j := uint64(0); j < writes; j++ {
				err := p.Tx(func(tx *pmdk.Tx) error {
					tx.Add(off+j*64, 8)
					tx.Set64(off+j*64, j)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("redo-mnemosyne", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := pmem.New(1<<24, nil)
			r, err := mnemosyne.Create(dev, 1<<16)
			if err != nil {
				b.Fatal(err)
			}
			off := r.DataOff()
			for j := uint64(0); j < writes; j++ {
				err := r.Durable(func(w *mnemosyne.TxWriter) error {
					return w.Write64(off+j*64, j)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
