// Command crashmc runs a fault-injection campaign with crash-recovery
// ground truth: it perturbs the primitive stream of each workload
// (dropped writebacks, dropped/weakened fences, torn stores, delayed
// writebacks, spurious evictions), checks that the engine flags every
// bug-class fault, hunts the reachable crash states for one whose
// recovery fails, and delta-debugs each confirmed finding to a minimal
// reproducer. Everything is reproducible from -seed.
//
// Usage:
//
//	go run ./cmd/crashmc                          # full suite, defaults
//	go run ./cmd/crashmc -seed 7 -budget 16       # wider exploration
//	go run ./cmd/crashmc -workload echo,pmfs      # subset of targets
//	go run ./cmd/crashmc -classes drop-flush      # one fault class
//	go run ./cmd/crashmc -static-rank internal/pmfs,internal/whisper
//	                                              # pmlint findings order the classes
//	go run ./cmd/crashmc -json                    # machine-readable result
//	go run ./cmd/crashmc -strict                  # exit 1 on soundness violations
//	go run ./cmd/crashmc -bench out.json          # write campaign throughput
//	go run ./cmd/crashmc -obs-listen :8081        # live observability endpoint (pmtop-pollable)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"pmtest/internal/faultinject"
	"pmtest/internal/flight"
	"pmtest/internal/lint"
	"pmtest/internal/obs"
	"pmtest/internal/obsserve"
)

var (
	flagSeed       = flag.Int64("seed", 1, "campaign seed; same seed, same results, bit for bit")
	flagBudget     = flag.Int("budget", 8, "max schedules per (workload, fault class); site counts at or below it are explored exhaustively")
	flagOps        = flag.Int("ops", 3, "workload operations per schedule")
	flagWorkload   = flag.String("workload", "", "comma-separated workloads (default: all; see -list)")
	flagClasses    = flag.String("classes", "", "comma-separated fault classes (default: all)")
	flagRank       = flag.String("static-rank", "", "comma-separated package dirs to lint; pmlint's findings rank the fault classes so statically suspicious ones spend the budget first")
	flagStateLimit = flag.Int("state-limit", 64, "exhaustively enumerate crash states when 2^dirty fits this limit")
	flagSamples    = flag.Int("samples", 12, "sampled crash states per fault beyond the enumeration limit")
	flagTear       = flag.Bool("tear", true, "let sampled crash states tear lines at 8-byte granularity")
	flagDeadline   = flag.Duration("deadline", 0, "campaign deadline (0 = none); on expiry partial results are reported")
	flagJSON       = flag.Bool("json", false, "emit the full result as JSON")
	flagStrict     = flag.Bool("strict", false, "exit non-zero on soundness violations")
	flagList       = flag.Bool("list", false, "list workloads and fault classes, then exit")
	flagBench      = flag.String("bench", "", "write campaign throughput JSON to this file")
	flagFlight     = flag.String("flight-out", "", "write the campaign's span timeline (one span per schedule) as Chrome trace-event JSON to this file")
	flagObs        = flag.String("obs-listen", "", "serve the live observability endpoint (versioned snapshot at /obs/v1/snapshot, span browse at /flight) at this address, e.g. :8081")
	flagPProf      = flag.Bool("pprof", false, "additionally mount net/http/pprof under /debug/pprof/ on the -obs-listen address")
	flagV          = flag.Bool("v", false, "print every schedule outcome")
	logOpts        obs.LogOptions
)

func init() { logOpts.RegisterFlags(flag.CommandLine) }

func main() {
	flag.Parse()
	if *flagList {
		fmt.Println("workloads: ", strings.Join(faultinject.TargetNames(), ", "))
		var classes []string
		for _, c := range faultinject.AllClasses() {
			classes = append(classes, c.String())
		}
		fmt.Println("classes:   ", strings.Join(classes, ", "))
		return
	}

	targets, err := pickTargets(*flagWorkload)
	if err != nil {
		fatal(err)
	}
	classes, err := pickClasses(*flagClasses)
	if err != nil {
		fatal(err)
	}
	rank, err := staticRank(*flagRank)
	if err != nil {
		fatal(err)
	}

	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	metrics := obs.NewMetrics(1)
	var rec *flight.Recorder
	if *flagFlight != "" || *flagObs != "" {
		rec = flight.NewRecorder(4096)
	}
	var srv *obsserve.Server
	if *flagObs != "" {
		srv, err = obsserve.Start(obsserve.Config{
			Addr: *flagObs, Source: "crashmc", Metrics: metrics,
			Flight: rec, PProf: *flagPProf, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s/\n", srv.Addr())
	}
	cfg := faultinject.Config{
		Seed: *flagSeed, Budget: *flagBudget, Ops: *flagOps,
		StateLimit: *flagStateLimit, Samples: *flagSamples,
		TearLines: *flagTear, Deadline: *flagDeadline,
		Classes: classes, Rank: rank, Metrics: metrics, Flight: rec,
		Logger: logger,
	}
	start := time.Now()
	res, err := faultinject.Run(cfg, targets)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *flagBench != "" {
		if err := writeBench(*flagBench, res, elapsed); err != nil {
			fatal(err)
		}
	}

	if *flagFlight != "" {
		if err := writeFlight(*flagFlight, rec); err != nil {
			fatal(err)
		}
	}

	if *flagJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		printHuman(res, elapsed)
	}

	if bad := res.Soundness(); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "\nsoundness violations:\n")
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		if *flagStrict {
			os.Exit(1)
		}
	}
}

func pickTargets(spec string) ([]faultinject.Target, error) {
	if spec == "" {
		return faultinject.Targets(), nil
	}
	var out []faultinject.Target
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		tgt, ok := faultinject.TargetByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (known: %s)",
				name, strings.Join(faultinject.TargetNames(), ", "))
		}
		out = append(out, tgt)
	}
	return out, nil
}

// staticRank lints the given package dirs with the interprocedural
// analyzer and folds the per-rule finding counts into a class rank.
func staticRank(spec string) (*faultinject.StaticRank, error) {
	if spec == "" {
		return nil, nil
	}
	byRule := map[string]int{}
	total := 0
	for _, dir := range strings.Split(spec, ",") {
		dir = strings.TrimSpace(dir)
		census, err := lint.Census(dir, false)
		if err != nil {
			return nil, fmt.Errorf("static-rank %s: %w", dir, err)
		}
		for rule, n := range census.ByRule {
			byRule[rule] += n
			total += n
		}
	}
	fmt.Fprintf(os.Stderr, "static rank: %d findings across %s\n", total, spec)
	return faultinject.RankFromFindings(byRule), nil
}

func pickClasses(spec string) ([]faultinject.Class, error) {
	if spec == "" {
		return nil, nil
	}
	var out []faultinject.Class
	for _, name := range strings.Split(spec, ",") {
		c, err := faultinject.ParseClass(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func printHuman(res *faultinject.Result, elapsed time.Duration) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tclass\tschedules\tinjected\tflagged\tdemonstrated")
	for _, tr := range res.Targets {
		if tr.Err != "" {
			fmt.Fprintf(w, "%s\t(error: %s)\n", tr.Workload, tr.Err)
			continue
		}
		for _, s := range tr.Summaries {
			mark := ""
			if !s.Bug {
				mark = " (legal)"
			}
			fmt.Fprintf(w, "%s\t%s%s\t%d\t%d\t%d\t%d\n",
				tr.Workload, s.Class, mark, s.Schedules, s.Injected, s.Flagged, s.Demonstrated)
		}
	}
	w.Flush()

	if *flagV {
		fmt.Println()
		for _, tr := range res.Targets {
			for _, o := range tr.Outcomes {
				fmt.Printf("  %s/%s@%d: injected=%v flagged=%v demonstrated=%v states=%d/%d codes=%v\n",
					tr.Workload, o.Class, o.Site, o.Injected, o.Flagged, o.Demonstrated,
					o.StatesExplored, o.StatesPossible, o.Codes)
			}
		}
	}

	fmt.Printf("\n%d/%d schedules, %d faults injected, %d crash states explored (of %d reachable), %d recovery failures, discovery AUC %.3f, %v\n",
		res.SchedulesRun, res.SchedulesPlanned, res.FaultsInjected,
		res.StatesExplored, res.StatesPossible, res.RecoveryFailures,
		res.DiscoveryAUC, elapsed.Round(time.Millisecond))
	if res.DeadlineExpired {
		fmt.Println("DEADLINE EXPIRED — results above are partial")
	}
	if len(res.Repros) > 0 {
		fmt.Printf("\n%d minimized reproducers:\n", len(res.Repros))
		for _, r := range res.Repros {
			fmt.Printf("  %s\n", r)
		}
	}
}

// benchOut is the BENCH_robustness.json shape: campaign throughput.
type benchOut struct {
	Seed             int64   `json:"seed"`
	SchedulesRun     int     `json:"schedules_run"`
	FaultsInjected   uint64  `json:"faults_injected"`
	StatesExplored   uint64  `json:"states_explored"`
	RecoveryFailures uint64  `json:"recovery_failures"`
	Repros           int     `json:"repros"`
	ElapsedSec       float64 `json:"elapsed_sec"`
	FaultsPerSec     float64 `json:"faults_per_sec"`
	StatesPerSec     float64 `json:"states_per_sec"`
	SchedulesPerSec  float64 `json:"schedules_per_sec"`
}

func writeBench(path string, res *faultinject.Result, elapsed time.Duration) error {
	sec := elapsed.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	b := benchOut{
		Seed: res.Seed, SchedulesRun: res.SchedulesRun,
		FaultsInjected: res.FaultsInjected, StatesExplored: res.StatesExplored,
		RecoveryFailures: res.RecoveryFailures, Repros: len(res.Repros),
		ElapsedSec:      sec,
		FaultsPerSec:    float64(res.FaultsInjected) / sec,
		StatesPerSec:    float64(res.StatesExplored) / sec,
		SchedulesPerSec: float64(res.SchedulesRun) / sec,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeFlight(path string, rec *flight.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := flight.WriteChrome(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashmc:", err)
	os.Exit(1)
}
