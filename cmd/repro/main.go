// Command repro regenerates the paper's evaluation tables and figures
// (PMTest, ASPLOS 2019, §6). Each flag reproduces one artifact; -all runs
// everything. Absolute numbers differ from the paper (software PM
// simulator vs NVDIMM testbed); the shapes are the reproduction target —
// see EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/repro -all
//	go run ./cmd/repro -fig10a -n 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"pmtest/internal/bugdb"
	"pmtest/internal/flight"
	"pmtest/internal/harness"
	"pmtest/internal/obs"
	"pmtest/internal/obsserve"
)

var (
	flagAll    = flag.Bool("all", false, "run every experiment")
	fig10a     = flag.Bool("fig10a", false, "Fig. 10a: PMTest vs Pmemcheck slowdown across transaction sizes")
	fig10b     = flag.Bool("fig10b", false, "Fig. 10b: PMTest overhead breakdown (framework vs checkers)")
	fig11      = flag.Bool("fig11", false, "Fig. 11: real-workload slowdown under PMTest")
	fig12      = flag.Bool("fig12", false, "Fig. 12: scalability with Memcached threads and PMTest workers")
	table4     = flag.Bool("table4", false, "Table 4: real workloads and clients")
	table5     = flag.Bool("table5", false, "Table 5: synthetic bug detection sweep")
	table6     = flag.Bool("table6", false, "Table 6: known and new real-world bugs")
	flagYat    = flag.Bool("yat", false, "Yat state-space estimate (§2.2 motivation)")
	flagHost   = flag.Bool("host", false, "print host configuration (Table 3 analog)")
	flagN      = flag.Int("n", 10000, "insertions per microbenchmark point (paper: 100k)")
	flagNReal  = flag.Int("nreal", 20000, "operations per real workload")
	flagSizes  = flag.String("sizes", "64,128,256,512,1024,2048,4096", "transaction sizes for Fig. 10")
	flagStores = flag.String("stores", "", "comma-separated store subset (default: all five)")
	flagCSV    = flag.String("csv", "", "path prefix for machine-readable CSV output (writes <prefix>-fig10a.csv and <prefix>-fig11.csv)")
	flagStats  = flag.Bool("stats", false, "print an observability snapshot (throughput, check-latency quantiles, diag histogram) after the run")
	flagObs    = flag.String("obs-listen", "", "serve the live observability endpoint (Prometheus text + JSON at /, versioned snapshot at /obs/v1/snapshot, span browse at /flight) at this address, e.g. :8081")
	flagPProf  = flag.Bool("pprof", false, "additionally mount net/http/pprof under /debug/pprof/ on the -obs-listen address")
	flagFlight = flag.String("flight-out", "", "write the run's span timeline as Chrome trace-event JSON (Perfetto-loadable; browse with 'pmtrace timeline') to this file")
	logOpts    obs.LogOptions
)

func init() { logOpts.RegisterFlags(flag.CommandLine) }

// csvOut opens a CSV file for one figure when -csv is set; the returned
// emit function is a no-op otherwise.
func csvOut(figure, header string) (emit func(format string, args ...any), done func()) {
	if *flagCSV == "" {
		return func(string, ...any) {}, func() {}
	}
	f, err := os.Create(*flagCSV + "-" + figure + ".csv")
	if err != nil {
		die(err)
	}
	fmt.Fprintln(f, header)
	return func(format string, args ...any) {
			fmt.Fprintf(f, format+"\n", args...)
		}, func() {
			f.Close()
			fmt.Printf("(csv written to %s-%s.csv)\n", *flagCSV, figure)
		}
}

func main() {
	flag.Parse()
	any := false
	for _, f := range []*bool{fig10a, fig10b, fig11, fig12, table4, table5, table6, flagYat, flagHost} {
		if *f {
			any = true
		}
	}
	if *flagAll || !any {
		*fig10a, *fig10b, *fig11, *fig12 = true, true, true, true
		*table4, *table5, *table6, *flagYat, *flagHost = true, true, true, true, true
	}
	logger, err := logOpts.Logger(os.Stderr)
	die(err)
	harness.LogWith(logger)
	var metrics *obs.Metrics
	if *flagStats || *flagObs != "" {
		metrics = obs.NewMetrics(256)
		harness.ObserveWith(metrics)
	}
	var rec *flight.Recorder
	if *flagFlight != "" || *flagObs != "" {
		rec = flight.NewRecorder(1024)
		harness.FlightWith(rec)
		// The bug catalog checks sections synchronously (no engine), so it
		// has its own observer seam; point it at the same recorder so the
		// Table 5/6 sweeps produce checker spans too.
		bugdb.ObserveChecks(flight.EngineObserver(rec))
	}
	var srv *obsserve.Server
	if *flagObs != "" {
		srv, err = obsserve.Start(obsserve.Config{
			Addr: *flagObs, Source: "repro", Metrics: metrics,
			Flight: rec, PProf: *flagPProf, Logger: logger,
		})
		die(err)
		fmt.Printf("observability endpoint on http://%s/ (versioned snapshot at /obs/v1/snapshot; span browse at /flight)\n", srv.Addr())
	}
	if *flagHost {
		printHost()
	}
	if *table4 {
		printTable4()
	}
	if *fig10a {
		runFig10a()
	}
	if *fig10b {
		runFig10b()
	}
	if *fig11 {
		runFig11()
	}
	if *fig12 {
		runFig12()
	}
	if *table5 {
		runTable5()
	}
	if *table6 {
		runTable6()
	}
	if *flagYat {
		runYat()
	}
	if *flagStats {
		fmt.Print(metrics.Snapshot().Format())
	}
	if *flagFlight != "" {
		f, err := os.Create(*flagFlight)
		die(err)
		if err := flight.WriteChrome(f, rec); err != nil {
			f.Close()
			die(err)
		}
		die(f.Close())
		fmt.Printf("(flight timeline written to %s — load in Perfetto or run 'pmtrace timeline %s')\n",
			*flagFlight, *flagFlight)
	}
	// The run is over: shut the endpoint down cleanly rather than letting
	// process exit tear down the listener mid-request. Nil-safe.
	srv.Close()
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printHost() {
	fmt.Println("== Host configuration (Table 3 analog) ==")
	w := tab()
	fmt.Fprintf(w, "Go\t%s\n", runtime.Version())
	fmt.Fprintf(w, "OS/Arch\t%s/%s\n", runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(w, "CPUs\t%d\n", runtime.NumCPU())
	fmt.Fprintf(w, "PM\tsimulated device (internal/pmem), %d-byte cache lines\n", 64)
	w.Flush()
	fmt.Println()
}

func printTable4() {
	fmt.Println("== Table 4: real workloads ==")
	w := tab()
	fmt.Fprintln(w, "Workload\tLibrary\tClient")
	fmt.Fprintln(w, "Memcached\tMnemosyne\tMemslap (5% set), YCSB (50% update, zipfian)")
	fmt.Fprintln(w, "Redis\tPMDK\tredis-cli LRU test")
	fmt.Fprintln(w, "PMFS\tlow-level primitives\tFilebench, OLTP-complex")
	w.Flush()
	fmt.Println()
}

func parseSizes() []uint64 {
	var sizes []uint64
	var v uint64
	s := *flagSizes
	for len(s) > 0 {
		v = 0
		i := 0
		for i < len(s) && s[i] != ',' {
			v = v*10 + uint64(s[i]-'0')
			i++
		}
		sizes = append(sizes, v)
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return sizes
}

func selectedStores() []string {
	if *flagStores == "" {
		return harness.MicroStores
	}
	var out []string
	s := *flagStores
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func runFig10a() {
	fmt.Printf("== Fig. 10a: slowdown vs transaction size (%d insertions/point) ==\n", *flagN)
	fmt.Println("   (paper: PMTest 5.2–8.9x faster than Pmemcheck, 7.1x average;")
	fmt.Println("    PMTest overhead decreases as transaction size grows)")
	w := tab()
	emit, done := csvOut("fig10a", "store,txsize,native_ns,pmtest_ns,pmemcheck_ns,pmtest_x,pmemcheck_x")
	fmt.Fprintln(w, "store\ttxsize\tnative\tPMTest\tPmemcheck\tPMTest x\tPmemcheck x\tratio")
	sumRatio, points := 0.0, 0
	for _, store := range selectedStores() {
		for _, size := range parseSizes() {
			base, err := harness.MicroBench(store, size, *flagN, harness.ToolNone, 1)
			die(err)
			pm, err := harness.MicroBench(store, size, *flagN, harness.ToolPMTest, 1)
			die(err)
			pc, err := harness.MicroBench(store, size, *flagN, harness.ToolPmemcheck, 1)
			die(err)
			ratio := float64(pc.Elapsed) / float64(pm.Elapsed)
			sumRatio += ratio
			points++
			fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%.2f\t%.2f\t%.1fx\n",
				harness.StoreDisplayName(store), size,
				base.Elapsed.Round(10_000), pm.Elapsed.Round(10_000), pc.Elapsed.Round(10_000),
				harness.Slowdown(pm, base), harness.Slowdown(pc, base), ratio)
			emit("%s,%d,%d,%d,%d,%.3f,%.3f", store, size,
				base.Elapsed.Nanoseconds(), pm.Elapsed.Nanoseconds(), pc.Elapsed.Nanoseconds(),
				harness.Slowdown(pm, base), harness.Slowdown(pc, base))
		}
	}
	w.Flush()
	done()
	fmt.Printf("average PMTest-vs-Pmemcheck speedup: %.1fx (paper: 7.1x)\n\n", sumRatio/float64(points))
}

func runFig10b() {
	fmt.Printf("== Fig. 10b: PMTest overhead breakdown (%d insertions/point) ==\n", *flagN)
	fmt.Println("   (paper: checking contributes 18.9%–37.8% of total overhead)")
	w := tab()
	fmt.Fprintln(w, "store\ttxsize\tframework x\tchecker x\tchecker share")
	for _, store := range selectedStores() {
		for _, size := range []uint64{64, 512, 4096} {
			base, err := harness.MicroBench(store, size, *flagN, harness.ToolNone, 1)
			die(err)
			track, err := harness.MicroBench(store, size, *flagN, harness.ToolPMTestTrack, 1)
			die(err)
			full, err := harness.MicroBench(store, size, *flagN, harness.ToolPMTest, 1)
			die(err)
			fw := harness.Slowdown(track, base) - 1
			ck := harness.Slowdown(full, base) - harness.Slowdown(track, base)
			if ck < 0 {
				ck = 0
			}
			share := 0.0
			if fw+ck > 0 {
				share = ck / (fw + ck) * 100
			}
			fmt.Fprintf(w, "%s\t%d\t+%.2f\t+%.2f\t%.1f%%\n",
				harness.StoreDisplayName(store), size, fw, ck, share)
		}
	}
	w.Flush()
	fmt.Println()
}

func runFig11() {
	fmt.Printf("== Fig. 11: real workloads (%d ops each) ==\n", *flagNReal)
	fmt.Println("   (paper: 1.33–1.98x slowdown, 1.69x average; Pmemcheck 22.3x on Redis)")
	w := tab()
	emit, done := csvOut("fig11", "workload,native_ns,pmtest_ns,slowdown")
	fmt.Fprintln(w, "workload\tnative\tPMTest\tslowdown")
	sum, n := 0.0, 0
	for _, wl := range harness.RealWorkloads {
		base, err := harness.RealBench(wl, *flagNReal, harness.ToolNone)
		die(err)
		pm, err := harness.RealBench(wl, *flagNReal, harness.ToolPMTest)
		die(err)
		sd := float64(pm.Elapsed) / float64(base.Elapsed)
		sum += sd
		n++
		fmt.Fprintf(w, "%s\t%v\t%v\t%.2fx\n", wl,
			base.Elapsed.Round(10_000), pm.Elapsed.Round(10_000), sd)
		emit("%s,%d,%d,%.3f", wl, base.Elapsed.Nanoseconds(), pm.Elapsed.Nanoseconds(), sd)
	}
	w.Flush()
	done()
	// The paper also measures Pmemcheck on Redis for contrast.
	base, err := harness.RealBench("redis+lru", *flagNReal, harness.ToolNone)
	die(err)
	pc, err := harness.RealBench("redis+lru", *flagNReal, harness.ToolPmemcheck)
	die(err)
	fmt.Printf("average PMTest slowdown: %.2fx (paper: 1.69x)\n", sum/float64(n))
	fmt.Printf("Pmemcheck on redis+lru: %.1fx (paper: 22.3x)\n\n",
		float64(pc.Elapsed)/float64(base.Elapsed))
}

func runFig12() {
	ops := *flagNReal / 2
	fmt.Printf("== Fig. 12: Memcached scalability (%d ops/client) ==\n", ops)
	fmt.Println("   (paper: slowdown grows with threads at 1 worker, shrinks with more")
	fmt.Println("    workers, and stays roughly flat scaling both together)")
	for _, client := range []string{"memslap", "ycsb"} {
		w := tab()
		fmt.Fprintf(w, "client=%s\tthreads\tworkers\tslowdown\n", client)
		// Fig. 12a: threads scale, single worker.
		for _, th := range []int{1, 2, 4} {
			r, err := harness.ScaleBench(client, th, 1, ops)
			die(err)
			fmt.Fprintf(w, "12a\t%d\t1\t%.2fx\n", th, r.Slowdown)
		}
		// Fig. 12b: workers scale, four threads.
		for _, wk := range []int{1, 2, 4} {
			r, err := harness.ScaleBench(client, 4, wk, ops)
			die(err)
			fmt.Fprintf(w, "12b\t4\t%d\t%.2fx\n", wk, r.Slowdown)
		}
		// Fig. 12c: both scale together.
		for _, k := range []int{1, 2, 4} {
			r, err := harness.ScaleBench(client, k, k, ops)
			die(err)
			fmt.Fprintf(w, "12c\t%d\t%d\t%.2fx\n", k, k, r.Slowdown)
		}
		w.Flush()
		fmt.Println()
	}
}

func runTable5() {
	fmt.Println("== Table 5: synthetic bug sweep ==")
	bugs := bugdb.ByOrigin(bugdb.Catalog(), bugdb.OriginSynthetic)
	w := tab()
	fmt.Fprintln(w, "category\tcases\tdetected")
	cats := []bugdb.Category{
		bugdb.CatOrdering, bugdb.CatWriteback, bugdb.CatPerfWriteback,
		bugdb.CatBackup, bugdb.CatCompletion, bugdb.CatPerfLog,
	}
	total, detected := 0, 0
	for _, cat := range cats {
		cases := bugdb.ByCategory(bugs, cat)
		det := 0
		for _, b := range cases {
			reports, err := b.Execute()
			die(err)
			if b.Detected(reports) {
				det++
			}
		}
		total += len(cases)
		detected += det
		fmt.Fprintf(w, "%s\t%d\t%d\n", cat, len(cases), det)
	}
	w.Flush()
	fmt.Printf("total: %d/%d synthetic bugs detected (paper: all of 42)\n\n", detected, total)
}

func runTable6() {
	fmt.Println("== Table 6: known and new real-world bugs ==")
	w := tab()
	fmt.Fprintln(w, "origin\tbug\tpaper ref\tdetected as\tresult")
	for _, origin := range []bugdb.Origin{bugdb.OriginKnown, bugdb.OriginNew} {
		for _, b := range bugdb.ByOrigin(bugdb.Catalog(), origin) {
			reports, err := b.Execute()
			die(err)
			verdict := "MISSED"
			if b.Detected(reports) {
				verdict = "detected"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", origin, b.ID, b.PaperRef, b.Expect, verdict)
		}
	}
	w.Flush()
	fmt.Println()
}

func runYat() {
	fmt.Println("== Yat state-space estimate (§2.2 motivation) ==")
	fmt.Println("   (paper: >5 years for a PMFS trace of ~100k PM operations)")
	w := tab()
	fmt.Fprintln(w, "trace\tops\tcrash states\tat 1M states/s")
	// Fence-dense library traces: transactional protocols fence every few
	// writes, so each crash point has a small window.
	for _, n := range []int{10, 100, 1000} {
		est, err := harness.EstimateYat("ctree", n, 128)
		die(err)
		years := est.StateSpace / 1e6 / (3600 * 24 * 365)
		fmt.Fprintf(w, "C-Tree (%d tx, fence-dense)\t%d\t%.3g\t%.3g years\n",
			est.Inserts, est.TraceOps, est.StateSpace, years)
	}
	// Fence-sparse traces are where exhaustive testing explodes: PMFS-style
	// code batches many line writes between fences (the paper's >5 years).
	for _, window := range []int{16, 32, 48} {
		space, ops := harness.SparseFenceStateSpace(100_000, window)
		years := space / 1e6 / (3600 * 24 * 365)
		fmt.Fprintf(w, "synthetic (fence every %d writes)\t%d\t%.3g\t%.3g years\n",
			window, ops, space, years)
	}
	w.Flush()
	fmt.Println()
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
