// Command pmtestd is the distributed checking tier's node and test
// client. `pmtestd serve` hosts core-engine checking sessions behind
// the HTTP section protocol (internal/dist); programs under test reach
// it through pmtest.Config.Remote. `pmtestd stream` drives a
// deterministic recorded workload through the remote tier — or, with no
// -nodes, through a local engine — and writes a normalized report dump,
// so a remote run (including one with a node killed mid-stream) can be
// diffed byte-for-byte against a local run.
//
// Usage:
//
//	pmtestd serve -listen :9321 -obs-listen :8081
//	pmtestd stream -nodes 127.0.0.1:9321,127.0.0.1:9322 -store ctree \
//	    -sections 120 -out remote.txt -snapshot snap.json
//	pmtestd stream -store ctree -sections 120 -out local.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pmtest"
	"pmtest/internal/dist"
	"pmtest/internal/flight"
	"pmtest/internal/harness"
	"pmtest/internal/obs"
	"pmtest/internal/obsserve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "stream":
		stream(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pmtestd serve|stream [flags]  (-h on a subcommand for its flags)")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmtestd:", err)
	os.Exit(1)
}

// serve runs one checker node until SIGINT/SIGTERM.
func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":9321", "section protocol listen address")
	obsListen := fs.String("obs-listen", "", "observability endpoint address (/metrics, /obs/v1/snapshot, /flight)")
	workers := fs.Int("workers", 1, "checking workers per hosted session")
	shards := fs.Int("shards", 1, "address stripes per checking worker (sharded checking; 1 = serial)")
	epochGC := fs.Bool("epoch-gc", false, "retire long-closed shadow segments (bounds memory on streaming runs)")
	maxSessions := fs.Int("max-sessions", 256, "max concurrently hosted sessions")
	sessionTTL := fs.Duration("session-ttl", 5*time.Minute, "reap sessions idle longer than this")
	pprof := fs.Bool("pprof", false, "mount net/http/pprof on the -obs-listen address")
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	fs.Parse(args)

	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	metrics := obs.NewMetrics(64)
	rec := flight.NewRecorder(2048)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	addr := ln.Addr().String()

	if *obsListen != "" {
		srv, err := obsserve.Start(obsserve.Config{
			Addr: *obsListen, Source: addr, Role: "pmtestd",
			Metrics: metrics, Flight: rec, PProf: *pprof, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s/\n", srv.Addr())
	}

	node := dist.NewNode(dist.NodeConfig{
		Metrics: metrics, Flight: rec, Logger: logger,
		MaxSessions: *maxSessions, SessionTTL: *sessionTTL, Workers: *workers,
		Shards: *shards, EpochGC: *epochGC,
	})
	httpSrv := &http.Server{Handler: node}
	fmt.Printf("pmtestd serving on %s (pid %d)\n", addr, os.Getpid())

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != http.ErrServerClosed {
			fatal(err)
		}
	case s := <-sig:
		if logger != nil {
			logger.Info("pmtestd shutting down", "signal", s.String(), "sessions", node.Sessions())
		}
		httpSrv.Close()
		node.Close()
	}
}

// stream replays a recorded micro-store workload through the checking
// tier and writes artifacts for equivalence comparison.
func stream(args []string) {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	nodes := fs.String("nodes", "", "comma-separated pmtestd addresses; empty checks with a local engine")
	store := fs.String("store", "ctree", "micro store to record (see pmbench)")
	sections := fs.Int("sections", 60, "trace sections to stream")
	txSize := fs.Uint64("tx", 256, "bytes touched per transaction")
	interval := fs.Duration("interval", 0, "pause between sections (gives a chaos script time to kill a node mid-stream)")
	out := fs.String("out", "", "write the normalized report dump here (for diffing remote vs local)")
	snapshot := fs.String("snapshot", "", "write the final client obs snapshot JSON here")
	activeNodeFile := fs.String("active-node-file", "", "after the first ack, write the session's active node address here")
	sessionFile := fs.String("session-file", "", "write the session id here before streaming (feeds pmtop spans / pmtrace -remote)")
	expectFailovers := fs.Uint64("expect-failovers", 0, "exit 1 unless the run recorded at least this many failovers")
	rpcTimeout := fs.Duration("rpc-timeout", 5*time.Second, "per-RPC deadline")
	obsListen := fs.String("obs-listen", "", "observability endpoint for the streaming client itself")
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	fs.Parse(args)

	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	metrics := obs.NewMetrics(64)
	rec := flight.NewRecorder(2048)
	if *obsListen != "" {
		srv, err := obsserve.Start(obsserve.Config{
			Addr: *obsListen, Source: "pmtestd-stream", Role: "workload",
			Metrics: metrics, Flight: rec, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
	}

	recorded, err := harness.RecordMicroSections(*store, *txSize, *sections)
	if err != nil {
		fatal(err)
	}

	cfg := pmtest.Config{Model: pmtest.X86, Metrics: metrics, Flight: rec, Logger: logger}
	if *nodes != "" {
		cfg.Remote = &pmtest.RemoteConfig{
			Nodes:      strings.Split(*nodes, ","),
			RPCTimeout: *rpcTimeout,
		}
	}
	sess := pmtest.Init(cfg)
	if *sessionFile != "" {
		if err := os.WriteFile(*sessionFile, []byte(sess.SID()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	th := sess.ThreadInit()
	th.Start()
	for i, ops := range recorded {
		for _, op := range ops {
			th.Record(op, 0)
		}
		th.SendTrace()
		if i == 0 && *activeNodeFile != "" {
			// Drain the first section so the session has landed somewhere,
			// then tell the chaos script which node to kill.
			sess.GetResult()
			if err := os.WriteFile(*activeNodeFile, []byte(sess.RemoteNode()+"\n"), 0o644); err != nil {
				fatal(err)
			}
		}
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}
	reports := sess.Exit()
	snap := sess.Stats()

	if *out != "" {
		if err := os.WriteFile(*out, []byte(harness.DumpReports(reports)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *snapshot != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*snapshot, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	fails, warns := 0, 0
	for _, r := range reports {
		fails += r.Fails()
		warns += r.Warns()
	}
	fmt.Printf("streamed %d sections (%s): %d reports, %d fails, %d warns\n",
		len(recorded), routeName(*nodes), len(reports), fails, warns)
	fmt.Printf("dist: sent=%d retries=%d failovers=%d breaker_opens=%d fallbacks=%d dropped=%d buffered_peak=%d\n",
		snap.DistSectionsSent, snap.DistRetries, snap.DistFailovers,
		snap.DistBreakerOpens, snap.DistFallbacks, snap.DistSectionsDropped, snap.DistBufferedPeak)
	if err := sess.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "deferred session error:", err)
	}

	if len(reports) != len(recorded) {
		fmt.Fprintf(os.Stderr, "pmtestd: %d sections streamed but %d reports returned\n", len(recorded), len(reports))
		os.Exit(1)
	}
	if snap.DistFailovers < *expectFailovers {
		fmt.Fprintf(os.Stderr, "pmtestd: expected >= %d failovers, run recorded %d\n", *expectFailovers, snap.DistFailovers)
		os.Exit(1)
	}
}

func routeName(nodes string) string {
	if nodes == "" {
		return "local engine"
	}
	return "remote via " + nodes
}
