package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"pmtest/internal/flight/search"
	"pmtest/internal/obs"
)

// runSpans is the `pmtop spans` subcommand: a live fleet-wide span
// search. Every refresh fans the query out to each node's
// /flight/v1/search endpoint and renders the merged newest-first view;
// -once prints the merged result as JSON for scripts and CI.
func runSpans(args []string) int {
	fs := flag.NewFlagSet("pmtop spans", flag.ExitOnError)
	once := fs.Bool("once", false, "run one merged query, print it as JSON, exit")
	interval := fs.Duration("interval", 2*time.Second, "refresh period of the live view")
	timeout := fs.Duration("timeout", search.DefaultTimeout, "per-node query timeout")
	category := fs.String("category", "", "only spans of one category (session|tx|checker|engine|campaign|rpc)")
	name := fs.String("name", "", "only spans whose name contains this substring")
	errOnly := fs.Bool("err", false, "only failed spans")
	minDur := fs.Duration("min-dur", 0, "only spans at least this long")
	last := fs.Duration("last", 0, "only spans started within this window before now")
	attr := fs.String("attr", "", "only spans carrying attribute key=value (empty value: any value of key)")
	limit := fs.Int("limit", 40, "merged result size cap")
	var lo obs.LogOptions
	lo.RegisterFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pmtop spans [flags] node [node...]\n\n"+
			"Fans a span query out to each node's /flight/v1/search and renders\n"+
			"the merged newest-first view. Down nodes mark the result partial.\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	nodes := fs.Args()
	if len(nodes) == 0 {
		fs.Usage()
		return 1
	}
	logger, err := lo.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
		return 1
	}
	p := search.Params{
		Category: *category,
		Name:     *name,
		ErrOnly:  *errOnly,
		MinDur:   *minDur,
		Limit:    *limit,
	}
	if *attr != "" {
		k, v, _ := strings.Cut(*attr, "=")
		if k == "" {
			fmt.Fprintf(os.Stderr, "pmtop: -attr wants key=value, got %q\n", *attr)
			return 1
		}
		p.AttrKey, p.AttrVal = k, v
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt := search.Options{Timeout: *timeout}

	query := func() (search.Result, error) {
		q := p
		if *last > 0 {
			q.Since = time.Now().Add(-*last)
		}
		return search.Search(ctx, nodes, q, opt)
	}

	if *once {
		res, err := query()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
			return 1
		}
		for _, s := range res.Sources {
			if s.Err != "" {
				logger.Warn("span search node failed", "node", s.Source, "err", s.Err)
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
		if allFailed(res.Sources) {
			fmt.Fprintf(os.Stderr, "pmtop: no node responded\n")
			return 1
		}
		return 0
	}

	for {
		res, err := query()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
			return 1
		}
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Print(renderSpans(res, nodes))
		select {
		case <-ctx.Done():
			fmt.Println()
			return 0
		case <-time.After(*interval):
		}
	}
}

func allFailed(sources []search.SourceStatus) bool {
	for _, s := range sources {
		if s.Err == "" {
			return false
		}
	}
	return true
}

// renderSpans draws the merged span table, newest first, with the
// per-node provenance footer.
func renderSpans(res search.Result, nodes []string) string {
	var b strings.Builder
	up := 0
	for _, s := range res.Sources {
		if s.Err == "" {
			up++
		}
	}
	status := "complete"
	if res.Partial {
		status = "PARTIAL"
	}
	fmt.Fprintf(&b, "pmtop spans — %d/%d nodes up — %s — %d spans — %s\n\n",
		up, len(nodes), status, len(res.Spans), time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "%-15s %10s %-8s %-16s %-22s %s\n",
		"START", "DUR", "CAT", "NAME", "SOURCE", "ATTRS")
	for _, s := range res.Spans {
		mark := " "
		if s.Err {
			mark = "!"
		}
		fmt.Fprintf(&b, "%-15s %10s %-8s %-16s %-22s%s %s\n",
			s.Start.Format("15:04:05.000"), time.Duration(s.DurNS).Round(time.Microsecond),
			clip(s.Category, 8), clip(s.Name, 16), clip(s.Source, 22), mark, clip(attrLine(s.Attrs), 60))
	}
	for _, src := range res.Sources {
		if src.Err != "" {
			fmt.Fprintf(&b, "\n%-22s DOWN: %s", clip(src.Source, 22), src.Err)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// attrLine renders a span's attribute map compactly and stably.
func attrLine(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, attrs[k])
	}
	return b.String()
}
