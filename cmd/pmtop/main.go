// Command pmtop is the fleet dashboard of the observability plane: it
// polls the /obs/v1/snapshot endpoint of every named node concurrently,
// merges the results bucket-exactly, and renders a live terminal view —
// or, with -once, prints the merged document as JSON for scripts and CI.
//
// Usage:
//
//	pmtop [flags] node [node...]
//	pmtop spans [flags] node [node...]
//
// Each node is a host:port (the -obs-listen address of a repro, crashmc
// or bughunt run) or a full http(s) URL. Nodes that are down or slow
// only mark the merged snapshot partial; the dashboard keeps rendering
// from whoever answered.
//
// The spans subcommand searches the fleet's flight recorders instead of
// its metrics: the same node list, fanned out to /flight/v1/search with
// the filters given as flags, merged newest-first (see runSpans).
//
// Exit status in -once mode: 0 when at least one node responded, 1 when
// every node failed (or on usage errors).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"pmtest/internal/obs"
	"pmtest/internal/obs/collect"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 && os.Args[1] == "spans" {
		return runSpans(os.Args[2:])
	}
	fs := flag.NewFlagSet("pmtop", flag.ExitOnError)
	once := fs.Bool("once", false, "collect one merged snapshot, print it as JSON, exit")
	interval := fs.Duration("interval", 2*time.Second, "refresh period of the live view")
	timeout := fs.Duration("timeout", collect.DefaultTimeout, "per-node poll timeout")
	var lo obs.LogOptions
	lo.RegisterFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pmtop [flags] node [node...]\n"+
			"       pmtop spans [flags] node [node...]\n\n"+
			"Polls each node's /obs/v1/snapshot and renders the merged fleet view;\n"+
			"the spans subcommand searches the fleet's flight recorders instead.\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	nodes := fs.Args()
	if len(nodes) == 0 {
		fs.Usage()
		return 1
	}
	logger, err := lo.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt := collect.Options{Timeout: *timeout}

	if *once {
		merged, err := collect.Collect(ctx, nodes, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
			return 1
		}
		for _, s := range merged.Sources {
			if s.Err != "" {
				logger.Warn("snapshot poll failed", "node", s.Source, "err", s.Err)
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(merged)
		if failedAll(merged) {
			fmt.Fprintf(os.Stderr, "pmtop: no node responded\n")
			return 1
		}
		return 0
	}

	// Live mode: redraw on every tick until interrupted. The first pass
	// runs immediately so the dashboard is never blank for an interval.
	for {
		merged, err := collect.Collect(ctx, nodes, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmtop: %v\n", err)
			return 1
		}
		// ANSI home + clear-to-end keeps the redraw flicker-free without
		// dropping scrollback the way a full clear would.
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Print(render(merged, nodes))
		select {
		case <-ctx.Done():
			fmt.Println()
			return 0
		case <-time.After(*interval):
		}
	}
}

// failedAll reports whether no polled node produced a snapshot.
func failedAll(m obs.MergedSnapshot) bool {
	for _, s := range m.Sources {
		if s.Err == "" {
			return false
		}
	}
	return true
}

// render draws the fleet view: headline totals, latency quantiles, the
// per-source table (including failed nodes and their errors), and the
// flight-recorder span summary.
func render(m obs.MergedSnapshot, nodes []string) string {
	var b strings.Builder
	up := 0
	for _, s := range m.Sources {
		if s.Err == "" {
			up++
		}
	}
	status := "complete"
	if m.Partial {
		status = "PARTIAL"
	}
	fmt.Fprintf(&b, "pmtop — %d/%d nodes up — %s — schema v%d — %s\n\n",
		up, len(nodes), status, m.SchemaVersion, time.Now().Format("15:04:05"))

	s := m.Metrics
	fmt.Fprintf(&b, "fleet    %.0f ops/s, traces checked %d, ops checked %d\n",
		s.OpsPerSec, s.TracesChecked, s.OpsChecked)
	fmt.Fprintf(&b, "diags    FAIL %d, WARN %d, INFO %d\n",
		s.DiagsBySeverity["FAIL"], s.DiagsBySeverity["WARN"], s.DiagsBySeverity["INFO"])
	fmt.Fprintf(&b, "latency  check p50 %v / p99 %v, queue wait p50 %v / p99 %v\n",
		s.CheckDur.P50, s.CheckDur.P99, s.QueueWait.P50, s.QueueWait.P99)
	fmt.Fprintf(&b, "runtime  %d goroutines, heap %s, GC pause p99 %v (%d cycles)\n",
		m.Runtime.Goroutines, fmtBytes(m.Runtime.HeapBytes), m.Runtime.GCPause.P99, m.Runtime.GCCycles)
	if r := s.Resources; r.StatePoolGets > 0 {
		fmt.Fprintf(&b, "checker  state pool %.1f%% hit (%d gets), shadow intervals live %d / max %d\n",
			100*r.StatePoolHitRate, r.StatePoolGets, r.ShadowIntervalsLive, r.ShadowIntervalsMax)
	}
	if s.DistSectionsSent > 0 || s.DistRetries > 0 || s.DistFailovers > 0 || s.DistFallbacks > 0 {
		fmt.Fprintf(&b, "dist     %d sections sent, %d retries, %d failovers, %d fallbacks, %d dropped, rtt p50 %v p99 %v\n",
			s.DistSectionsSent, s.DistRetries, s.DistFailovers, s.DistFallbacks,
			s.DistSectionsDropped, s.DistRTT.P50, s.DistRTT.P99)
	}

	fmt.Fprintf(&b, "\n%-28s %-9s %-10s %12s %10s %8s %10s  %s\n",
		"SOURCE", "ROLE", "UPTIME", "TRACES", "OPS/S", "FAILS", "HEAP", "STATUS")
	for _, src := range m.Sources {
		role := src.Role
		if role == "" {
			role = "-"
		}
		if src.Err != "" {
			fmt.Fprintf(&b, "%-28s %-9s %-10s %12s %10s %8s %10s  DOWN: %s\n",
				clip(src.Source, 28), clip(role, 9), "-", "-", "-", "-", "-", src.Err)
			continue
		}
		fmt.Fprintf(&b, "%-28s %-9s %-10s %12d %10.0f %8d %10s  ok\n",
			clip(src.Source, 28), clip(role, 9), src.Uptime.Round(time.Second),
			src.TracesChecked, src.OpsPerSec, src.Fails, fmtBytes(src.HeapBytes))
	}

	if m.Flight != nil && len(m.Flight.Categories) > 0 {
		cats := append([]obs.FlightCategorySummary(nil), m.Flight.Categories...)
		sort.Slice(cats, func(i, j int) bool { return cats[i].Category < cats[j].Category })
		fmt.Fprintf(&b, "\nflight   ")
		for i, c := range cats {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s %d spans (%d err, max %v", c.Category, c.Spans, c.Errs, c.MaxDur.Round(time.Microsecond))
			// Nodes that predate the duration histogram contribute a zero
			// Dur; only a populated merge has quantiles worth printing.
			if c.Dur.Count > 0 {
				fmt.Fprintf(&b, ", p99 %v", c.Dur.P99.Round(time.Microsecond))
			}
			b.WriteByte(')')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
