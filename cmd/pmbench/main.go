// Command pmbench is the deterministic benchmark runner and
// perf-regression gate. `pmbench run` (the default) executes a fixed
// suite — WHISPER micro stores under full PMTest checking, the
// synchronous CheckTrace hot path, the engine Submit→Wait pipeline with
// p50/p99 check latency, the trace wire codec, and a bounded crashmc
// campaign — for a named op budget and writes a schema-versioned JSON
// result. `pmbench compare` diffs two such files and exits non-zero
// when any metric regresses beyond tolerance; CI runs it against the
// checked-in BENCH_pmbench.json on every push.
//
// Usage:
//
//	go run ./cmd/pmbench -count 3 -budget small           # run, write BENCH_pmbench.json
//	go run ./cmd/pmbench run -budget medium -o new.json   # explicit run subcommand
//	go run ./cmd/pmbench compare -tolerance 30% old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmtest/internal/harness"
	"pmtest/internal/obs"
	"pmtest/internal/perf"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "compare":
			os.Exit(runCompare(args[1:]))
		case "run":
			args = args[1:]
		}
	}
	os.Exit(runSuite(args))
}

func runSuite(args []string) int {
	fs := flag.NewFlagSet("pmbench run", flag.ExitOnError)
	budget := fs.String("budget", "small", "suite budget: tiny, small, medium, large")
	count := fs.Int("count", 1, "run the suite this many times and keep the best value per metric")
	seed := fs.Int64("seed", 1, "seed for the bounded fault-injection campaign entry")
	out := fs.String("o", "BENCH_pmbench.json", "output file ('-' for stdout)")
	quiet := fs.Bool("q", false, "suppress per-entry progress on stderr")
	var logOpts obs.LogOptions
	logOpts.RegisterFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "pmbench run: unexpected arguments %v\n", fs.Args())
		return 2
	}
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		return 2
	}
	// The micro entries run through the harness; at the default "warn"
	// level this costs nothing, and -log-level debug traces every session
	// the suite creates.
	harness.LogWith(logger)

	b, ok := perf.Budgets(*budget)
	if !ok {
		fmt.Fprintf(os.Stderr, "pmbench: unknown budget %q (want tiny, small, medium, or large)\n", *budget)
		return 2
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	res, err := perf.Run(b, *count, *seed, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		return 1
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := res.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		return 1
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d metrics (budget %s, count %d) to %s\n",
			len(res.Metrics), b.Name, *count, *out)
	}
	return 0
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("pmbench compare", flag.ExitOnError)
	tol := fs.String("tolerance", "10%", "regression gate floor, e.g. 30% or 0.3; per-metric tolerances can only widen it")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: pmbench compare [-tolerance 30%] baseline.json new.json")
		return 2
	}
	flagTol, err := parseTolerance(*tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbench compare:", err)
		return 2
	}

	base, err := perf.ReadResult(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbench compare:", err)
		return 1
	}
	cur, err := perf.ReadResult(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbench compare:", err)
		return 1
	}
	deltas, err := perf.Compare(base, cur, flagTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbench compare:", err)
		return 1
	}
	perf.WriteReport(os.Stdout, deltas)
	if perf.Regressions(deltas) > 0 {
		return 1
	}
	return 0
}

// parseTolerance accepts "30%" or a bare fraction like "0.3".
func parseTolerance(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v > 10 {
		return 0, fmt.Errorf("tolerance %q out of range", s)
	}
	return v, nil
}
