// Command pmlint statically checks PM programs written against the
// pmtest/pmem APIs for the paper's crash-consistency and performance bug
// classes — before any trace is recorded. It parses Go source (stdlib
// go/ast only, no build or type-check step) and analyzes each package
// interprocedurally: a call graph over the linted files, a fixed-point
// persist-effect summary per function, and rules that see call sites
// expanded with their callees' effects. Each finding names the dynamic
// diagnostic code and bugdb catalog category that would confirm it at
// runtime.
//
// Usage:
//
//	go run ./cmd/pmlint ./...                   # whole module
//	go run ./cmd/pmlint internal/whisper        # one directory
//	go run ./cmd/pmlint -format json file.go    # machine-readable output
//	go run ./cmd/pmlint -format sarif -o out.sarif ./...
//	go run ./cmd/pmlint -rules                  # list the rules
//
// Directories named testdata, hidden directories and _test.go files are
// skipped (pass -tests to include test files). Suppress a finding with a
// "//pmlint:ignore <rules> <reason>" comment on the offending line, the
// line above, or before the enclosing function declaration. With
// -strict-ignores, a directive that suppresses nothing is itself a
// finding — CI runs in this mode so fixed bugs shed their annotations.
//
// Exit status: 0 when clean, 1 when findings remain, 2 on usage or parse
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"pmtest/internal/lint"
)

var (
	flagJSON   = flag.Bool("json", false, "emit findings as a JSON array (alias for -format json)")
	flagFormat = flag.String("format", "text", "output format: text, json or sarif")
	flagOut    = flag.String("o", "", "write output to this file instead of stdout")
	flagTests  = flag.Bool("tests", false, "also lint _test.go files")
	flagRule   = flag.String("rule", "", "comma-separated rule names to run (default: all)")
	flagRules  = flag.Bool("rules", false, "print the rule catalog and exit")
	flagStrict = flag.Bool("strict-ignores", false, "report //pmlint:ignore directives that suppress nothing")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pmlint: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	flag.Parse()
	if *flagRules {
		printRules()
		return
	}
	format := *flagFormat
	if *flagJSON {
		format = "json"
	}
	if format != "text" && format != "json" && format != "sarif" {
		fatalf("unknown -format %q (want text, json or sarif)", format)
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	opt := lint.Options{StrictIgnores: *flagStrict}

	dirs, singles := expandArgs(args)
	var findings []lint.Finding
	for _, d := range dirs {
		found, err := lint.LintDirOpt(d, *flagTests, opt)
		if err != nil {
			fatalf("%s: %v", d, err)
		}
		findings = append(findings, found...)
	}
	if len(singles) > 0 {
		fset := token.NewFileSet()
		for _, path := range singles {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				fatalf("%v", err)
			}
			findings = append(findings, lint.LintFilesOpt(fset, []*ast.File{f}, opt)...)
		}
	}
	findings = filterRules(findings)

	out := os.Stdout
	if *flagOut != "" {
		f, err := os.Create(*flagOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}

	switch format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatalf("%v", err)
		}
	case "sarif":
		if err := lint.WriteSARIF(out, findings); err != nil {
			fatalf("%v", err)
		}
	default:
		fmt.Fprint(out, lint.Render(findings))
		if len(findings) > 0 {
			fails, warns := 0, 0
			for _, f := range findings {
				if f.Severity == "WARN" {
					warns++
				} else {
					fails++
				}
			}
			fmt.Fprintf(out, "pmlint: %d finding(s): %d FAIL, %d WARN\n", len(findings), fails, warns)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func printRules() {
	for _, r := range lint.Rules() {
		fmt.Printf("%-14s %s\n    %s\n    dynamic: %s   bugdb: %s\n",
			r.Name, r.Severity, r.Doc, r.Dynamic, r.BugDB)
	}
}

func filterRules(in []lint.Finding) []lint.Finding {
	if *flagRule == "" {
		return in
	}
	want := map[string]bool{}
	known := map[string]bool{}
	for _, n := range lint.RuleNames() {
		known[n] = true
	}
	for _, r := range strings.Split(*flagRule, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !known[r] {
			fatalf("unknown rule %q (see -rules)", r)
		}
		want[r] = true
	}
	var out []lint.Finding
	for _, f := range in {
		if want[f.Rule] {
			out = append(out, f)
		}
	}
	return out
}

// expandArgs resolves package-pattern arguments to directories to lint
// plus individual files. "dir/..." walks recursively; testdata, hidden
// and underscore-prefixed directories are skipped, mirroring go tooling.
func expandArgs(args []string) (dirs, files []string) {
	seen := map[string]bool{}
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] && hasGoFiles(d) {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, a := range args {
		switch {
		case strings.HasSuffix(a, "/...") || a == "...":
			root := strings.TrimSuffix(a, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				addDir(path)
				return nil
			})
			if err != nil {
				fatalf("%v", err)
			}
		case strings.HasSuffix(a, ".go"):
			files = append(files, a)
		default:
			st, err := os.Stat(a)
			if err != nil {
				fatalf("%v", err)
			}
			if !st.IsDir() {
				fatalf("%s: not a directory or .go file", a)
			}
			addDir(a)
		}
	}
	return dirs, files
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
