// Command bughunt runs the executable bug catalog (paper §6.3, Tables 5
// and 6): every synthetic, known and new bug is injected into its
// workload, run under full PMTest instrumentation, and checked for
// detection.
//
// Usage:
//
//	go run ./cmd/bughunt            # whole catalog
//	go run ./cmd/bughunt -real      # only Table 6 (known + new)
//	go run ./cmd/bughunt -v         # print each finding
//	go run ./cmd/bughunt -lint      # add the static (pmlint) verdict column
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"pmtest/internal/bugdb"
	"pmtest/internal/lint"
)

var (
	flagReal = flag.Bool("real", false, "run only the Table 6 known/new bugs")
	flagCat  = flag.String("category", "", "run only one Table 5 category")
	flagV    = flag.Bool("v", false, "print the diagnostics each bug produced")
	flagLint = flag.Bool("lint", false, "also print whether the bug's class is caught statically by pmlint")
)

func main() {
	flag.Parse()
	bugs := bugdb.Catalog()
	if *flagReal {
		bugs = append(bugdb.ByOrigin(bugs, bugdb.OriginKnown),
			bugdb.ByOrigin(bugs, bugdb.OriginNew)...)
	}
	if *flagCat != "" {
		bugs = bugdb.ByCategory(bugs, bugdb.Category(*flagCat))
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "bug\tworkload\tcategory\torigin\texpected\tresult"
	if *flagLint {
		header += "\tstatic"
	}
	fmt.Fprintln(w, header)
	// The static verdict is per bug class, not per injected instance:
	// SelfCheck lints the class's canonical known-bad fragment, so one
	// probe per rule is cached across the catalog.
	lintVerdict := map[string]string{}
	staticVerdict := func(rule string) string {
		if rule == "" {
			return "—" // class needs runtime state; no static rule
		}
		if v, ok := lintVerdict[rule]; ok {
			return v
		}
		v := rule + ":missed"
		if lint.SelfCheck(rule) {
			v = rule + ":flagged"
		}
		lintVerdict[rule] = v
		return v
	}
	detected := 0
	for _, b := range bugs {
		reports, err := b.Execute()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bughunt: %s: %v\n", b.ID, err)
			os.Exit(1)
		}
		verdict := "MISSED"
		if b.Detected(reports) {
			verdict = "detected"
			detected++
		}
		row := fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%s",
			b.ID, b.Workload, b.Category, b.Origin, b.Expect, verdict)
		if *flagLint {
			row += "\t" + staticVerdict(b.LintRule)
		}
		fmt.Fprintln(w, row)
		if *flagV {
			for _, r := range reports {
				if !r.Clean() {
					fmt.Fprintf(w, "\t%s\n", r.Summary())
				}
			}
		}
	}
	w.Flush()
	fmt.Printf("\n%d/%d bugs detected\n", detected, len(bugs))
	if detected != len(bugs) {
		os.Exit(1)
	}
}
