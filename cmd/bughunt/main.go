// Command bughunt runs the executable bug catalog (paper §6.3, Tables 5
// and 6): every synthetic, known and new bug is injected into its
// workload, run under full PMTest instrumentation, and checked for
// detection.
//
// Usage:
//
//	go run ./cmd/bughunt            # whole catalog
//	go run ./cmd/bughunt -real      # only Table 6 (known + new)
//	go run ./cmd/bughunt -v         # print each finding
//	go run ./cmd/bughunt -lint      # add the static (pmlint) verdict column
//	go run ./cmd/bughunt -obs-listen :8081  # live observability endpoint (pmtop-pollable)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"pmtest/internal/bugdb"
	"pmtest/internal/flight"
	"pmtest/internal/lint"
	"pmtest/internal/obs"
	"pmtest/internal/obsserve"
)

var (
	flagReal  = flag.Bool("real", false, "run only the Table 6 known/new bugs")
	flagCat   = flag.String("category", "", "run only one Table 5 category")
	flagV     = flag.Bool("v", false, "print the diagnostics each bug produced")
	flagLint  = flag.Bool("lint", false, "also print whether the bug's class is caught statically by pmlint")
	flagObs   = flag.String("obs-listen", "", "serve the live observability endpoint (versioned snapshot at /obs/v1/snapshot, span browse at /flight) at this address, e.g. :8081")
	flagPProf = flag.Bool("pprof", false, "additionally mount net/http/pprof under /debug/pprof/ on the -obs-listen address")
	logOpts   obs.LogOptions
)

func init() { logOpts.RegisterFlags(flag.CommandLine) }

func main() {
	flag.Parse()
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bughunt:", err)
		os.Exit(1)
	}
	var srv *obsserve.Server
	if *flagObs != "" {
		// The catalog checks synchronously through bugdb's observer seam:
		// feed the same metrics registry and flight recorder the engine
		// would, so the endpoint serves real counters and spans.
		metrics := obs.NewMetrics(256)
		rec := flight.NewRecorder(1024)
		bugdb.ObserveChecks(obs.Multi(metrics, flight.EngineObserver(rec)))
		srv, err = obsserve.Start(obsserve.Config{
			Addr: *flagObs, Source: "bughunt", Metrics: metrics,
			Flight: rec, PProf: *flagPProf, Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bughunt:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s/\n", srv.Addr())
	}
	bugs := bugdb.Catalog()
	if *flagReal {
		bugs = append(bugdb.ByOrigin(bugs, bugdb.OriginKnown),
			bugdb.ByOrigin(bugs, bugdb.OriginNew)...)
	}
	if *flagCat != "" {
		bugs = bugdb.ByCategory(bugs, bugdb.Category(*flagCat))
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "bug\tworkload\tcategory\torigin\texpected\tresult"
	if *flagLint {
		header += "\tstatic"
	}
	fmt.Fprintln(w, header)
	// The static verdict is per bug class, not per injected instance:
	// SelfCheck runs the full interprocedural analysis — call graph,
	// summaries, call-site expansion — on the class's canonical known-bad
	// program, whose bug is split across a call boundary precisely so the
	// verdict exercises cross-function reasoning rather than a
	// single-function CFG. One probe per rule is cached across the
	// catalog.
	lintVerdict := map[string]string{}
	staticVerdict := func(rule string) string {
		if rule == "" {
			return "—" // class needs runtime state; no static rule
		}
		if v, ok := lintVerdict[rule]; ok {
			return v
		}
		v := rule + ":missed"
		if lint.SelfCheck(rule) {
			v = rule + ":flagged"
		}
		lintVerdict[rule] = v
		return v
	}
	detected := 0
	for _, b := range bugs {
		reports, err := b.Execute()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bughunt: %s: %v\n", b.ID, err)
			os.Exit(1)
		}
		verdict := "MISSED"
		if b.Detected(reports) {
			verdict = "detected"
			detected++
		}
		row := fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%s",
			b.ID, b.Workload, b.Category, b.Origin, b.Expect, verdict)
		if *flagLint {
			row += "\t" + staticVerdict(b.LintRule)
		}
		fmt.Fprintln(w, row)
		if *flagV {
			for _, r := range reports {
				if !r.Clean() {
					fmt.Fprintf(w, "\t%s\n", r.Summary())
				}
			}
		}
	}
	w.Flush()
	fmt.Printf("\n%d/%d bugs detected\n", detected, len(bugs))
	if detected != len(bugs) {
		os.Exit(1)
	}
}
