// Command pmtrace dumps an annotated PM-operation trace with the persist
// intervals the checking engine deduces — a textual version of the
// paper's Fig. 7 walkthrough. It ships with the Fig. 4 and Fig. 7 traces
// built in and can visualize any of the microbenchmarks' first
// transactions.
//
// Usage:
//
//	go run ./cmd/pmtrace            # the paper's Fig. 7 trace
//	go run ./cmd/pmtrace -fig4      # the paper's Fig. 4 trace
//	go run ./cmd/pmtrace -store btree
//	go run ./cmd/pmtrace timeline flight.json   # text gantt of a -flight-out export
//	go run ./cmd/pmtrace -remote -session pmtest-1 -nodes host:8081,host:8082
//
// -remote stitches a cross-node session timeline: it fetches the
// client's spans and every node-side span the session caused (joined by
// the correlation IDs the wire protocol propagates) from the listed
// -obs-listen endpoints and prints one causally-ordered timeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"pmtest/internal/core"
	"pmtest/internal/flight"
	"pmtest/internal/flight/search"
	"pmtest/internal/obs"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
	"pmtest/internal/whisper"
)

var (
	flagFig4   = flag.Bool("fig4", false, "dump the paper's Fig. 4 trace")
	flagStore  = flag.String("store", "", "dump the first transaction of a workload (ctree|btree|rbtree|hashmap-tx|hashmap-ll|echo|vacation)")
	flagModel  = flag.String("model", "x86", "persistency model (x86|arm|hops|epoch)")
	flagRecord = flag.String("record", "", "write the selected trace to a file (binary format) instead of dumping it")
	flagCheck  = flag.String("check", "", "load a recorded trace file and dump/check it offline")
	flagStats  = flag.Bool("stats", false, "run the selected trace(s) through the checking engine and print an observability snapshot")
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		runTimeline(os.Args[2:])
		return
	}
	if hasFlag(os.Args[1:], "remote") {
		os.Exit(runRemote(os.Args[1:]))
	}
	flag.Parse()
	rules, ok := core.Models()[*flagModel]
	if !ok {
		fmt.Fprintf(os.Stderr, "pmtrace: unknown model %q\n", *flagModel)
		os.Exit(1)
	}
	var ops []trace.Op
	switch {
	case *flagCheck != "":
		f, err := os.Open(*flagCheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		traces, err := trace.DecodeAll(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		for _, tr := range traces {
			dump(rules, tr.Ops)
			fmt.Println()
		}
		if *flagStats {
			printStats(rules, traces)
		}
		return
	case *flagStore != "":
		ops = storeTrace(*flagStore)
	case *flagFig4:
		ops = fig4()
	default:
		ops = fig7()
	}
	if *flagRecord != "" {
		f, err := os.Create(*flagRecord)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Encode(f, &trace.Trace{Ops: ops}); err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d ops to %s\n", len(ops), *flagRecord)
		return
	}
	dump(rules, ops)
	if *flagStats {
		printStats(rules, []*trace.Trace{{Ops: ops}})
	}
}

// hasFlag reports whether args carries the named flag (with or without
// a value), so -remote can switch to its own flag set before the global
// one parses.
func hasFlag(args []string, name string) bool {
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			continue
		}
		a = strings.TrimLeft(a, "-")
		if a == name || strings.HasPrefix(a, name+"=") {
			return true
		}
	}
	return false
}

// runRemote is the cross-node session timeline: fetch the client's
// spans and the node-side spans its sections caused from every listed
// obs endpoint, stitch them by the propagated correlation IDs, and
// print one causally-ordered timeline. Optionally it also fans a
// report lookup out to the checker nodes' section-protocol addresses.
func runRemote(args []string) int {
	fs := flag.NewFlagSet("pmtrace -remote", flag.ExitOnError)
	fs.Bool("remote", true, "stitch a cross-node session timeline (this mode)")
	session := fs.String("session", "", "session id to stitch (see pmtest SID / pmtestd stream -session-file)")
	nodes := fs.String("nodes", "", "comma-separated -obs-listen endpoints to search (client and checker nodes)")
	reportNodes := fs.String("report-nodes", "", "comma-separated checker section-protocol addresses for a merged report lookup (optional)")
	timeout := fs.Duration("timeout", search.DefaultTimeout, "per-node query timeout")
	normalize := fs.Bool("normalize", false, "stable labels instead of addresses/durations (golden-comparable output)")
	var lo obs.LogOptions
	lo.RegisterFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pmtrace -remote -session SID -nodes host:port,host:port [-report-nodes host:port,...]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *session == "" || *nodes == "" {
		fs.Usage()
		return 2
	}
	logger, err := lo.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		return 1
	}
	ctx := context.Background()
	opt := search.Options{Timeout: *timeout}
	nodeList := splitList(*nodes)

	res, err := search.SessionSpans(ctx, nodeList, *session, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		return 1
	}
	for _, s := range res.Sources {
		if s.Err != "" {
			logger.Warn("span fetch failed", "node", s.Source, "err", s.Err)
		}
	}
	if res.Partial {
		fmt.Fprintln(os.Stderr, "pmtrace: warning: partial result (some nodes unreachable); timeline may have gaps")
	}
	tl := search.Stitch(*session, res.Spans)
	search.WriteTimeline(os.Stdout, tl, *normalize)

	if *reportNodes != "" {
		reps, err := search.Reports(ctx, splitList(*reportNodes), *session, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			return 1
		}
		fmt.Printf("\nreports: %d held by fleet", len(reps.Reports))
		if reps.Partial {
			fmt.Print(" (partial)")
		}
		fmt.Println()
		for _, r := range reps.Reports {
			fmt.Printf("  section %d: ops=%d tracked=%d fails=%d warns=%d\n",
				r.TraceID, r.Ops, r.TrackedOps, r.Fails(), r.Warns())
		}
	}
	return 0
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runTimeline renders a flight-recorder export (Chrome trace-event JSON
// written by repro/crashmc -flight-out) as a text gantt: one bar per
// span, errors marked with "!".
func runTimeline(args []string) {
	fs := flag.NewFlagSet("pmtrace timeline", flag.ExitOnError)
	width := fs.Int("width", 60, "gantt bar area width in columns")
	category := fs.String("category", "", "only spans of one category (session|tx|checker|engine|campaign)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pmtrace timeline [-width N] [-category C] <flight.json>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := flight.ReadChrome(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	if err := flight.WriteTimeline(os.Stdout, tr, *width, *category); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
}

// printStats replays the traces through a fully instrumented checking
// engine and prints the observability snapshot — a one-shot view of the
// same numbers obs.Handler serves over HTTP.
func printStats(rules core.RuleSet, traces []*trace.Trace) {
	m := obs.NewMetrics(len(traces))
	e := core.NewEngine(core.Options{Rules: rules, Observer: m})
	for _, tr := range traces {
		e.Submit(tr)
	}
	e.Close()
	fmt.Println()
	fmt.Print(m.Snapshot().Format())
}

func fig7() []trace.Op {
	return []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x10, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x10, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindWrite, Addr: 0x50, Size: 64},
		{Kind: trace.KindIsPersist, Addr: 0x50, Size: 64},
		{Kind: trace.KindIsOrderedBefore, Addr: 0x10, Size: 64, Addr2: 0x50, Size2: 64},
	}
}

func fig4() []trace.Op {
	return []trace.Op{
		{Kind: trace.KindFence},
		{Kind: trace.KindWrite, Addr: 0xA0, Size: 8},
		{Kind: trace.KindFlush, Addr: 0xA0, Size: 8},
		{Kind: trace.KindWrite, Addr: 0xB0, Size: 8},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsOrderedBefore, Addr: 0xA0, Size: 8, Addr2: 0xB0, Size2: 8},
		{Kind: trace.KindIsPersist, Addr: 0xB0, Size: 8},
	}
}

type recorder struct{ ops []trace.Op }

func (r *recorder) Record(op trace.Op, _ int) { r.ops = append(r.ops, op) }

func storeTrace(name string) []trace.Op {
	rec := &recorder{}
	dev := pmem.New(1<<24, rec)
	var s whisper.Store
	var err error
	switch name {
	case "ctree":
		s, err = whisper.NewCTree(dev, nil)
	case "btree":
		s, err = whisper.NewBTree(dev, nil)
	case "rbtree":
		s, err = whisper.NewRBTree(dev, nil)
	case "hashmap-tx":
		s, err = whisper.NewHashmapTX(dev, 64, nil)
	case "hashmap-ll":
		s, err = whisper.NewHashmapLL(dev, 256, 128, nil)
	case "echo":
		e, err2 := whisper.NewEcho(dev, 1<<16, nil)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		e.SetCheckers(true)
		rec.ops = rec.ops[:0]
		if err2 := e.Set(42, []byte("hello persistent world")); err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		return rec.ops
	case "vacation":
		v, err2 := whisper.NewVacation(dev, 16, 8, 4)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		v.SetCheckers(true)
		rec.ops = rec.ops[:0]
		if err2 := v.MakeReservation(1, 0, 2); err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		return rec.ops
	default:
		fmt.Fprintf(os.Stderr, "pmtrace: unknown store %q\n", name)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	if c, ok := s.(whisper.Checkered); ok {
		c.SetCheckers(true)
	}
	rec.ops = rec.ops[:0]
	if err := s.Insert(42, []byte("hello persistent world")); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	return rec.ops
}

// dump walks the trace one op at a time, printing the op, any diagnostics
// it raised and the shadow-memory persist intervals after it — the
// paper's Fig. 7 table.
func dump(rules core.RuleSet, ops []trace.Op) {
	fmt.Printf("model: %s\n\n", rules.Name())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "#\top\tshadow memory after op (range: PI / FI)")
	// One full-trace report, with diagnostics anchored to their ops.
	full := core.CheckTrace(rules, &trace.Trace{Ops: ops})
	byOp := map[int][]core.Diagnostic{}
	for _, d := range full.Diags {
		byOp[d.OpIndex] = append(byOp[d.OpIndex], d)
	}
	// Re-run the prefix for each step to show evolving state.
	for i := range ops {
		st := core.NewState()
		for j := 0; j <= i; j++ {
			rules.Apply(st, ops[j])
		}
		diags := byOp[i]
		shadow := ""
		for _, e := range st.Shadow() {
			if !e.HasPI && !e.HasFI {
				continue
			}
			shadow += fmt.Sprintf("[0x%x,0x%x): ", e.Lo, e.Hi)
			if e.HasPI {
				shadow += "PI" + e.PI.String()
			}
			if e.HasFI {
				shadow += " FI" + e.FI.String()
			}
			shadow += "  "
		}
		fmt.Fprintf(w, "%d\t%s\t%s\n", i, ops[i].String(), shadow)
		for _, d := range diags {
			fmt.Fprintf(w, "\t  → %s\t\n", d.String())
		}
	}
	w.Flush()
}
