// Command pmtrace dumps an annotated PM-operation trace with the persist
// intervals the checking engine deduces — a textual version of the
// paper's Fig. 7 walkthrough. It ships with the Fig. 4 and Fig. 7 traces
// built in and can visualize any of the microbenchmarks' first
// transactions.
//
// Usage:
//
//	go run ./cmd/pmtrace            # the paper's Fig. 7 trace
//	go run ./cmd/pmtrace -fig4      # the paper's Fig. 4 trace
//	go run ./cmd/pmtrace -store btree
//	go run ./cmd/pmtrace timeline flight.json   # text gantt of a -flight-out export
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"pmtest/internal/core"
	"pmtest/internal/flight"
	"pmtest/internal/obs"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
	"pmtest/internal/whisper"
)

var (
	flagFig4   = flag.Bool("fig4", false, "dump the paper's Fig. 4 trace")
	flagStore  = flag.String("store", "", "dump the first transaction of a workload (ctree|btree|rbtree|hashmap-tx|hashmap-ll|echo|vacation)")
	flagModel  = flag.String("model", "x86", "persistency model (x86|arm|hops|epoch)")
	flagRecord = flag.String("record", "", "write the selected trace to a file (binary format) instead of dumping it")
	flagCheck  = flag.String("check", "", "load a recorded trace file and dump/check it offline")
	flagStats  = flag.Bool("stats", false, "run the selected trace(s) through the checking engine and print an observability snapshot")
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		runTimeline(os.Args[2:])
		return
	}
	flag.Parse()
	rules, ok := core.Models()[*flagModel]
	if !ok {
		fmt.Fprintf(os.Stderr, "pmtrace: unknown model %q\n", *flagModel)
		os.Exit(1)
	}
	var ops []trace.Op
	switch {
	case *flagCheck != "":
		f, err := os.Open(*flagCheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		traces, err := trace.DecodeAll(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		for _, tr := range traces {
			dump(rules, tr.Ops)
			fmt.Println()
		}
		if *flagStats {
			printStats(rules, traces)
		}
		return
	case *flagStore != "":
		ops = storeTrace(*flagStore)
	case *flagFig4:
		ops = fig4()
	default:
		ops = fig7()
	}
	if *flagRecord != "" {
		f, err := os.Create(*flagRecord)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Encode(f, &trace.Trace{Ops: ops}); err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d ops to %s\n", len(ops), *flagRecord)
		return
	}
	dump(rules, ops)
	if *flagStats {
		printStats(rules, []*trace.Trace{{Ops: ops}})
	}
}

// runTimeline renders a flight-recorder export (Chrome trace-event JSON
// written by repro/crashmc -flight-out) as a text gantt: one bar per
// span, errors marked with "!".
func runTimeline(args []string) {
	fs := flag.NewFlagSet("pmtrace timeline", flag.ExitOnError)
	width := fs.Int("width", 60, "gantt bar area width in columns")
	category := fs.String("category", "", "only spans of one category (session|tx|checker|engine|campaign)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pmtrace timeline [-width N] [-category C] <flight.json>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := flight.ReadChrome(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	if err := flight.WriteTimeline(os.Stdout, tr, *width, *category); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
}

// printStats replays the traces through a fully instrumented checking
// engine and prints the observability snapshot — a one-shot view of the
// same numbers obs.Handler serves over HTTP.
func printStats(rules core.RuleSet, traces []*trace.Trace) {
	m := obs.NewMetrics(len(traces))
	e := core.NewEngine(core.Options{Rules: rules, Observer: m})
	for _, tr := range traces {
		e.Submit(tr)
	}
	e.Close()
	fmt.Println()
	fmt.Print(m.Snapshot().Format())
}

func fig7() []trace.Op {
	return []trace.Op{
		{Kind: trace.KindWrite, Addr: 0x10, Size: 64},
		{Kind: trace.KindFlush, Addr: 0x10, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindWrite, Addr: 0x50, Size: 64},
		{Kind: trace.KindIsPersist, Addr: 0x50, Size: 64},
		{Kind: trace.KindIsOrderedBefore, Addr: 0x10, Size: 64, Addr2: 0x50, Size2: 64},
	}
}

func fig4() []trace.Op {
	return []trace.Op{
		{Kind: trace.KindFence},
		{Kind: trace.KindWrite, Addr: 0xA0, Size: 8},
		{Kind: trace.KindFlush, Addr: 0xA0, Size: 8},
		{Kind: trace.KindWrite, Addr: 0xB0, Size: 8},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsOrderedBefore, Addr: 0xA0, Size: 8, Addr2: 0xB0, Size2: 8},
		{Kind: trace.KindIsPersist, Addr: 0xB0, Size: 8},
	}
}

type recorder struct{ ops []trace.Op }

func (r *recorder) Record(op trace.Op, _ int) { r.ops = append(r.ops, op) }

func storeTrace(name string) []trace.Op {
	rec := &recorder{}
	dev := pmem.New(1<<24, rec)
	var s whisper.Store
	var err error
	switch name {
	case "ctree":
		s, err = whisper.NewCTree(dev, nil)
	case "btree":
		s, err = whisper.NewBTree(dev, nil)
	case "rbtree":
		s, err = whisper.NewRBTree(dev, nil)
	case "hashmap-tx":
		s, err = whisper.NewHashmapTX(dev, 64, nil)
	case "hashmap-ll":
		s, err = whisper.NewHashmapLL(dev, 256, 128, nil)
	case "echo":
		e, err2 := whisper.NewEcho(dev, 1<<16, nil)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		e.SetCheckers(true)
		rec.ops = rec.ops[:0]
		if err2 := e.Set(42, []byte("hello persistent world")); err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		return rec.ops
	case "vacation":
		v, err2 := whisper.NewVacation(dev, 16, 8, 4)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		v.SetCheckers(true)
		rec.ops = rec.ops[:0]
		if err2 := v.MakeReservation(1, 0, 2); err2 != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err2)
			os.Exit(1)
		}
		return rec.ops
	default:
		fmt.Fprintf(os.Stderr, "pmtrace: unknown store %q\n", name)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	if c, ok := s.(whisper.Checkered); ok {
		c.SetCheckers(true)
	}
	rec.ops = rec.ops[:0]
	if err := s.Insert(42, []byte("hello persistent world")); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	return rec.ops
}

// dump walks the trace one op at a time, printing the op, any diagnostics
// it raised and the shadow-memory persist intervals after it — the
// paper's Fig. 7 table.
func dump(rules core.RuleSet, ops []trace.Op) {
	fmt.Printf("model: %s\n\n", rules.Name())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "#\top\tshadow memory after op (range: PI / FI)")
	// One full-trace report, with diagnostics anchored to their ops.
	full := core.CheckTrace(rules, &trace.Trace{Ops: ops})
	byOp := map[int][]core.Diagnostic{}
	for _, d := range full.Diags {
		byOp[d.OpIndex] = append(byOp[d.OpIndex], d)
	}
	// Re-run the prefix for each step to show evolving state.
	for i := range ops {
		st := core.NewState()
		for j := 0; j <= i; j++ {
			rules.Apply(st, ops[j])
		}
		diags := byOp[i]
		shadow := ""
		for _, e := range st.Shadow() {
			if !e.HasPI && !e.HasFI {
				continue
			}
			shadow += fmt.Sprintf("[0x%x,0x%x): ", e.Lo, e.Hi)
			if e.HasPI {
				shadow += "PI" + e.PI.String()
			}
			if e.HasFI {
				shadow += " FI" + e.FI.String()
			}
			shadow += "  "
		}
		fmt.Fprintf(w, "%d\t%s\t%s\n", i, ops[i].String(), shadow)
		for _, d := range diags {
			fmt.Fprintf(w, "\t  → %s\t\n", d.String())
		}
	}
	w.Flush()
}
