// Sharing demonstrates the inter-thread sharing analyzer — the extension
// built on the paper's §7.4 observation that PMTest checks each thread's
// persist ordering independently and therefore assumes threads do not
// write the same persistent data. When that assumption breaks, the
// analyzer pinpoints exactly which PM ranges are shared, telling the
// developer where per-thread verdicts are incomplete.
//
// Run with: go run ./examples/sharing
package main

import (
	"fmt"
	"sync"

	"pmtest"
	"pmtest/internal/pmem"
)

func main() {
	sess := pmtest.Init(pmtest.Config{DetectSharing: true, Workers: 2})
	dev := pmem.New(1<<16, nil) // threads attach their own trackers below

	// Two worker threads, properly sharded: each owns half the device.
	// A "global statistics counter" at 0x8000 is the (buggy) exception —
	// both threads update it.
	const statsCounter = 0x8000
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		th := sess.ThreadInit()
		wg.Add(1)
		go func(id int, th *pmtest.Thread) {
			defer wg.Done()
			th.Start()
			base := uint64(id) * 0x4000
			for i := uint64(0); i < 16; i++ {
				slot := base + i*64
				th.Write(slot, 8)
				th.Flush(slot, 8)
				th.Fence()
				th.IsPersist(slot, 8)
				// The shared counter, updated without cross-thread
				// ordering — invisible to per-thread checking.
				th.Write(statsCounter, 8)
				th.Flush(statsCounter, 8)
				th.Fence()
				th.SendTrace()
			}
		}(id, th)
	}
	wg.Wait()
	_ = dev

	reports := sess.GetResult()
	fails := 0
	for _, r := range reports {
		fails += r.Fails()
	}
	fmt.Printf("per-thread checking: %d sections, %d FAILs (everything looks fine!)\n",
		len(reports), fails)

	shared := sess.SharedRanges()
	fmt.Printf("sharing analyzer: %d shared range(s)\n", len(shared))
	for _, s := range shared {
		fmt.Printf("  %s — per-thread verdicts are incomplete here\n", s)
	}
	sess.Exit()
	fmt.Println()
	fmt.Println("Expected: zero per-thread FAILs, but the analyzer flags the")
	fmt.Println("statistics counter at 0x8000 as written by both threads.")
}
