// Undolog reproduces paper Fig. 1a: a crash-consistent array update
// using the backup-slot (undo) idiom on low-level primitives, in both the
// buggy form (missing persist_barriers) and the fixed form. PMTest flags
// the buggy version; crash-state sampling on the simulated device then
// demonstrates the bug is real by finding a crash state whose recovery is
// inconsistent.
//
// Run with: go run ./examples/undolog
package main

import (
	"fmt"
	"math/rand"

	"pmtest"
	"pmtest/internal/pmem"
)

// Layout (line-separated so persists are independent):
//
//	0x000 array[0..7] (8 × 8 bytes, one line)
//	0x040 backup.val
//	0x080 backup.idx
//	0x0C0 backup.valid
const (
	offArray  = 0x000
	offBkVal  = 0x040
	offBkIdx  = 0x080
	offBValid = 0x0C0
)

// arrayUpdate is Fig. 1a's ArrayUpdate. With buggy=true it issues exactly
// the two persist_barriers of the figure — missing the one after the
// backup creation and the one after the in-place update.
//
//pmlint:ignore missedflush the buggy=true paths omit barriers on purpose; PMTest flags them dynamically
func arrayUpdate(dev *pmem.Device, th *pmtest.Thread, idx uint64, newVal uint64, buggy bool) {
	old := dev.Load64(offArray + idx*8)
	dev.Store64(offBkVal, old) // backup.val = array[index]
	dev.Store64(offBkIdx, idx) //
	if !buggy {                // (i) the barrier the buggy version omits
		dev.CLWB(offBkVal, 8)
		dev.CLWB(offBkIdx, 8)
		dev.SFence()
	}
	dev.Store64(offBValid, 1) // backup.valid = true
	dev.PersistBarrier(offBValid, 8)
	if th != nil {
		// The programmer's intent, as checkers: the backup content must
		// persist strictly before the valid flag.
		th.IsOrderedBefore(offBkVal, 0x80, offBValid, 8)
	}
	dev.Store64(offArray+idx*8, newVal) // array[index] = new_val
	if !buggy {                         // (ii) the other missing barrier
		dev.PersistBarrier(offArray+idx*8, 8)
	}
	dev.Store64(offBValid, 0) // backup.valid = false
	dev.PersistBarrier(offBValid, 8)
	if th != nil {
		th.IsPersist(offArray+idx*8, 8)
	}
}

// recover applies the backup if it is valid (the recovery procedure).
func recover_(dev *pmem.Device) {
	if dev.Load64(offBValid) == 1 {
		idx := dev.Load64(offBkIdx)
		dev.Store64(offArray+idx*8, dev.Load64(offBkVal))
		dev.PersistBarrier(offArray+idx*8, 8)
		dev.Store64(offBValid, 0)
		dev.PersistBarrier(offBValid, 8)
	}
}

//pmlint:ignore missedflush,doubleflush the crash-sampling loop replays the buggy sequence verbatim and crashes mid-update
func runVariant(name string, buggy bool) {
	sess := pmtest.Init(pmtest.Config{CaptureSites: true})
	th := sess.ThreadInit()
	dev := pmem.New(4096, th)

	// Initialize the array durably before testing starts.
	for i := uint64(0); i < 8; i++ {
		dev.Store64(offArray+i*8, 100+i)
	}
	dev.PersistBarrier(offArray, 64)

	th.Start()
	arrayUpdate(dev, th, 3, 999, buggy)
	th.SendTrace()
	reports := sess.Exit()

	fmt.Printf("--- %s ---\n", name)
	fmt.Print(pmtest.Summarize(reports))

	// Ground truth: sample crash states mid-update and check recovery.
	broken := 0
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		d2 := pmem.New(4096, nil)
		for i := uint64(0); i < 8; i++ {
			d2.Store64(offArray+i*8, 100+i)
		}
		d2.PersistBarrier(offArray, 64)
		// Run the update but crash before it completes: replicate the
		// sequence up to the in-place store.
		old := d2.Load64(offArray + 3*8)
		d2.Store64(offBkVal, old)
		d2.Store64(offBkIdx, 3)
		if !buggy {
			d2.CLWB(offBkVal, 8)
			d2.CLWB(offBkIdx, 8)
			d2.SFence()
		}
		d2.Store64(offBValid, 1)
		d2.PersistBarrier(offBValid, 8)
		d2.Store64(offArray+3*8, 999)
		img := d2.SampleCrash(rng, pmem.CrashOptions{})
		d3 := pmem.FromImage(img, nil)
		recover_(d3)
		got := d3.Load64(offArray + 3*8)
		if got != 103 && got != 999 {
			broken++
		}
	}
	fmt.Printf("crash sampling: %d/400 crash states recovered to a corrupt value\n\n", broken)
}

func main() {
	fmt.Println("Paper Fig. 1a: crash-consistent array update with undo backup")
	fmt.Println()
	runVariant("buggy (missing persist_barriers)", true)
	runVariant("fixed", false)
	fmt.Println("Expected: the buggy variant FAILs isOrderedBefore and corrupts")
	fmt.Println("some crash states; the fixed variant is clean on both counts.")
}
