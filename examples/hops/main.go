// Hops demonstrates PMTest's flexibility across persistency models
// (paper §5.2, Fig. 3): the same two checkers validate a program written
// against the HOPS ofence/dfence primitives instead of x86 clwb/sfence.
//
// Run with: go run ./examples/hops
package main

import (
	"fmt"

	"pmtest"
)

func run(name string, model pmtest.RuleSet, program func(th *pmtest.Thread)) {
	sess := pmtest.Init(pmtest.Config{Model: model, CaptureSites: true})
	th := sess.ThreadInit()
	th.Start()
	program(th)
	th.SendTrace()
	fmt.Printf("--- %s ---\n", name)
	fmt.Print(pmtest.Summarize(sess.Exit()))
	fmt.Println()
}

func main() {
	fmt.Println("Paper Fig. 3: the same checkers under two persistency models")
	fmt.Println()

	// Fig. 3a: x86 — clwb + sfence enforce order and durability.
	run("x86 (Fig. 3a)", pmtest.X86, func(th *pmtest.Thread) {
		th.Write(0xA0, 8)
		th.Flush(0xA0, 8)
		th.Fence()
		th.Write(0xB0, 8)
		th.Flush(0xB0, 8)
		th.Fence()
		th.IsOrderedBefore(0xA0, 8, 0xB0, 8)
		th.IsPersist(0xA0, 8)
		th.IsPersist(0xB0, 8)
	})

	// Fig. 3b: HOPS — the light ofence orders, the heavy dfence drains.
	run("HOPS (Fig. 3b)", pmtest.HOPS, func(th *pmtest.Thread) {
		th.Write(0xA0, 8)
		th.OFence()
		th.Write(0xB0, 8)
		th.DFence()
		th.IsOrderedBefore(0xA0, 8, 0xB0, 8)
		th.IsPersist(0xA0, 8)
		th.IsPersist(0xB0, 8)
	})

	// A buggy HOPS program: without the ofence the two writes share an
	// epoch and are unordered.
	run("HOPS, missing ofence (buggy)", pmtest.HOPS, func(th *pmtest.Thread) {
		th.Write(0xA0, 8)
		th.Write(0xB0, 8)
		th.DFence()
		th.IsOrderedBefore(0xA0, 8, 0xB0, 8)
	})

	// The epoch-persistency extension: barriers both order and drain.
	run("epoch model (extension)", pmtest.Epoch, func(th *pmtest.Thread) {
		th.Write(0xA0, 8) //pmlint:ignore missedflush epoch-model barriers drain; no explicit writeback exists
		th.Fence()
		th.Write(0xB0, 8) //pmlint:ignore missedflush epoch-model barriers drain; no explicit writeback exists
		th.Fence()
		th.IsOrderedBefore(0xA0, 8, 0xB0, 8)
		th.IsPersist(0xA0, 8)
		th.IsPersist(0xB0, 8)
	})

	fmt.Println("Expected: both correct programs pass under their models; the")
	fmt.Println("HOPS program without ofence FAILs the ordering checker.")
}
