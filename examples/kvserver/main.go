// Kvserver runs the Memcached analog behind a real TCP front-end with
// PMTest checking every persistent operation — the paper's §6.2.2 setup
// (server + load-generating client) end to end: a memslap-style client
// drives the server over the socket, each completed store operation
// becomes a trace section, and the engine validates all of them while
// the server keeps serving.
//
// Run with: go run ./examples/kvserver
package main

import (
	"fmt"
	"math/rand"

	"pmtest"
	"pmtest/internal/pmem"
	"pmtest/internal/whisper"
)

func main() {
	// PMTest session; one tracker for the single server shard.
	sess := pmtest.Init(pmtest.Config{Workers: 2})
	th := sess.ThreadInit()
	th.Start()

	dev := pmem.New(whisper.MemcachedShardSpace(4096, 256), th)
	store, err := whisper.NewMemcached([]*pmem.Device{dev}, 4096, 256)
	if err != nil {
		panic(err)
	}
	store.SetCheckers(true)
	store.SetSectionHook(0, th.SendTrace)

	srv, err := whisper.NewKVServer(store, "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Printf("kv server listening on %s\n", srv.Addr())

	// A memslap-style client over the wire: 5% sets, 95% gets.
	client, err := whisper.DialKV(srv.Addr())
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	val := make([]byte, 128)
	rng.Read(val)
	sets, gets, hits := 0, 0, 0
	for _, op := range whisper.MemslapOps(2000, 500, 128, 1) {
		if op.IsSet {
			if err := client.Set(op.Key, val[:op.Size]); err != nil {
				panic(err)
			}
			sets++
		} else {
			_, ok, err := client.Get(op.Key)
			if err != nil {
				panic(err)
			}
			gets++
			if ok {
				hits++
			}
		}
	}
	client.Close()
	srv.Close()

	reports := sess.Exit()
	fails, warns := 0, 0
	for _, r := range reports {
		fails += r.Fails()
		warns += r.Warns()
	}
	fmt.Printf("client: %d sets, %d gets (%d hits)\n", sets, gets, hits)
	fmt.Printf("PMTest: %d trace sections checked, %d FAIL, %d WARN\n",
		len(reports), fails, warns)
	fmt.Println("Expected: zero FAILs and WARNs — the Mnemosyne-backed store is")
	fmt.Println("crash consistent, verified live while serving TCP clients.")
}
