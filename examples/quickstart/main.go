// Quickstart: annotate a tiny persistent-memory program with PMTest
// checkers and let the engine validate the trace — the worked example of
// the paper's Fig. 4/7.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"pmtest"
)

func main() {
	// PMTest_INIT: one session per program under test. CaptureSites makes
	// diagnostics point at the offending source line.
	sess := pmtest.Init(pmtest.Config{CaptureSites: true})
	th := sess.ThreadInit() // PMTest_THREAD_INIT
	th.Start()              // PMTest_START

	// The trace of paper Fig. 7: A is written, written back and fenced;
	// B is written but never written back.
	th.Write(0x10, 64) // write A
	th.Flush(0x10, 64) // clwb A
	th.Fence()         // sfence — A's persist interval closes here
	th.Write(0x50, 64) //pmlint:ignore missedflush the demo bug: B is written but never written back

	// The two low-level checkers of Table 2.
	th.IsPersist(0x50, 64)                 // FAIL: B may never persist
	th.IsOrderedBefore(0x10, 64, 0x50, 64) // pass: A persists before B

	th.SendTrace() // PMTest_SEND_TRACE: ship the section to the engine
	reports := sess.Exit()

	fmt.Println("PMTest quickstart — paper Fig. 7 trace")
	fmt.Println(pmtest.Summarize(reports))
	fmt.Println("Expected: one FAIL (isPersist on B), isOrderedBefore passes.")
}
