// Fsjournal tests a kernel-module-style crash-consistent file system the
// way the paper tests PMFS (§4.5, Fig. 9b): the FS runs with tracking
// enabled, each operation's trace section is pushed through a simulated
// kernel FIFO to the user-space checking engine, and the engine reports
// the journal-commit performance bug PMTest found in the real PMFS
// (journal.c:632, Fig. 13a / Table 6 Bug 1).
//
// Run with: go run ./examples/fsjournal
package main

import (
	"fmt"
	"sync"

	"pmtest"
	"pmtest/internal/kfifo"
	"pmtest/internal/pmem"
	"pmtest/internal/pmfs"
	"pmtest/internal/trace"
)

// shuttle owns the kernel-side trace builder and the FIFO.
type shuttle struct {
	builder *trace.Builder
	fifo    *kfifo.FIFO
}

func (s *shuttle) Record(op trace.Op, skip int) { s.builder.Record(op, skip+1) }

func (s *shuttle) cut() {
	if s.builder.Len() > 0 {
		s.fifo.Push(s.builder.Take())
	}
}

func run(name string, bugs pmfs.Bugs) {
	sess := pmtest.Init(pmtest.Config{CaptureSites: true})

	// Kernel side: the FS records ops into a builder; at each operation
	// boundary the section is pushed into the 1024-entry kernel FIFO.
	sh := &shuttle{builder: trace.NewBuilder(0, true), fifo: kfifo.New(kfifo.DefaultCapacity)}
	dev := pmem.New(1<<24, sh)
	fs, err := pmfs.Mkfs(dev, 64, 128)
	if err != nil {
		panic(err)
	}
	fs.SetBugs(bugs)
	fs.SetAnnotations(true)
	fs.SetSectionHook(sh.cut)

	// User side: a pump drains the FIFO into the checking engine — the
	// /proc/PMTest reader of paper Fig. 9b.
	th := sess.ThreadInit()
	th.Start()
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		for {
			tr := sh.fifo.Pop()
			if tr == nil {
				return
			}
			for _, op := range tr.Ops {
				th.Record(op, 0)
			}
			th.SendTrace()
		}
	}()

	// Workload: create a file and write a few records, like the OLTP
	// client of Table 4.
	ino, err := fs.CreateFile("table00")
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 1024)
	for i := uint64(0); i < 6; i++ {
		if err := fs.WriteFile(ino, i*512, buf); err != nil {
			panic(err)
		}
	}
	if err := fs.Fsync(ino); err != nil {
		panic(err)
	}

	sh.cut()
	sh.fifo.Close()
	pump.Wait()
	reports := sess.Exit()

	fmt.Printf("--- %s ---\n", name)
	fmt.Printf("FIFO high-water mark: %d entries\n", sh.fifo.MaxDepth())
	fmt.Print(pmtest.Summarize(reports))
	fmt.Println()
}

func main() {
	fmt.Println("Testing a PMFS-like kernel module through the kernel FIFO")
	fmt.Println()
	run("fixed journal commit", pmfs.Bugs{})
	run("journal.c:632 bug (Fig. 13a)", pmfs.Bugs{DoubleFlushCommit: true})
	fmt.Println("Expected: the fixed FS is clean; the buggy commit WARNs about a")
	fmt.Println("duplicate writeback of the already-flushed journal entries.")
}
