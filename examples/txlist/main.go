// Txlist reproduces paper Fig. 1b: appending to a persistent linked list
// inside a PMDK-style transaction, where the programmer backs up the list
// head but forgets to back up the length field. Wrapping the transaction
// in the high-level checkers (TX_CHECKER_START/END) detects the missing
// TX_ADD automatically.
//
// Run with: go run ./examples/txlist
package main

import (
	"fmt"

	"pmtest"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
)

// List root object layout: head pointer (8) + length (8).
const (
	relHead = 0
	relLen  = 8
)

// node layout: value (8) + next (8).
const (
	nodeVal  = 0
	nodeNext = 8
	nodeSize = 16
)

// appendList is Fig. 1b's appendList. With buggy=true, list.length is
// incremented without TX_ADD — the figure's bug.
func appendList(pool *pmdk.Pool, root uint64, val uint64, buggy bool) error {
	return pool.Tx(func(tx *pmdk.Tx) error { // TX_BEGIN
		node, err := tx.Alloc(nodeSize) // makeNode(new_val)
		if err != nil {
			return err
		}
		tx.Set64(node+nodeVal, val)
		tx.Set64(node+nodeNext, tx.Get64(root+relHead))

		tx.Add(root+relHead, 8) // TX_ADD(list.head)
		tx.Set64(root+relHead, node)

		if !buggy {
			tx.Add(root+relLen, 8) // the TX_ADD the buggy version forgets
		}
		tx.Set64(root+relLen, tx.Get64(root+relLen)+1) // list.length++
		return nil
	}) // TX_END
}

func runVariant(name string, buggy bool) {
	sess := pmtest.Init(pmtest.Config{CaptureSites: true})
	th := sess.ThreadInit()
	dev := pmem.New(1<<20, th)
	pool, err := pmdk.Create(dev, 4096)
	if err != nil {
		panic(err)
	}
	root, err := pool.Root(16)
	if err != nil {
		panic(err)
	}

	th.Start()
	th.TxCheckerStart() // TX_CHECK_START() of paper Fig. 5b
	if err := appendList(pool, root, 42, buggy); err != nil {
		panic(err)
	}
	th.TxCheckerEnd() // TX_CHECK_END(): injects isPersist for all updates
	th.SendTrace()
	reports := sess.Exit()

	fmt.Printf("--- %s ---\n", name)
	fmt.Print(pmtest.Summarize(reports))
	fmt.Println()
}

func main() {
	fmt.Println("Paper Fig. 1b: transactional linked-list append")
	fmt.Println()
	runVariant("buggy (length not TX_ADDed)", true)
	runVariant("fixed", false)
	fmt.Println("Expected: the buggy variant FAILs missing-backup (and the")
	fmt.Println("unlogged length is never flushed, so incomplete-tx fires too);")
	fmt.Println("the fixed variant is clean.")
}
