package pmtest

import (
	"strings"
	"sync"
	"testing"

	"pmtest/internal/pmem"
)

func TestSessionEndToEndX86(t *testing.T) {
	sess := Init(Config{CaptureSites: true})
	th := sess.ThreadInit()
	th.Start()

	// Correct section: persist A, then write and persist B.
	th.Write(0x10, 64)
	th.Flush(0x10, 64)
	th.Fence()
	th.Write(0x50, 64)
	th.Flush(0x50, 64)
	th.Fence()
	th.IsOrderedBefore(0x10, 64, 0x50, 64)
	th.IsPersist(0x10, 64)
	th.IsPersist(0x50, 64)
	th.SendTrace()

	// Buggy section: B never flushed.
	th.Write(0x90, 64)
	th.IsPersist(0x90, 64)
	th.SendTrace()

	reports := sess.Exit()
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if !reports[0].Clean() {
		t.Fatalf("first section should pass: %s", reports[0].Summary())
	}
	if reports[1].Fails() != 1 || !reports[1].HasCode(CodeNotPersisted) {
		t.Fatalf("second section should fail: %s", reports[1].Summary())
	}
}

func TestSiteAttributionDirectCalls(t *testing.T) {
	sess := Init(Config{CaptureSites: true})
	th := sess.ThreadInit()
	th.Start()
	th.Write(0x10, 8) // this line must be attributed
	th.IsPersist(0x10, 8)
	th.SendTrace()
	reports := sess.Exit()
	if len(reports) != 1 || len(reports[0].Diags) != 1 {
		t.Fatalf("want one diagnostic, got %v", Summarize(reports))
	}
	d := reports[0].Diags[0]
	if !strings.Contains(d.Site, "pmtest_test.go") {
		t.Errorf("checker site = %q, want this test file", d.Site)
	}
	if !strings.Contains(d.Related, "pmtest_test.go") {
		t.Errorf("write site = %q, want this test file", d.Related)
	}
}

func TestSiteAttributionThroughDevice(t *testing.T) {
	sess := Init(Config{CaptureSites: true})
	th := sess.ThreadInit()
	th.Start()
	dev := pmem.New(4096, th)
	dev.Store(0x10, []byte{1, 2, 3}) // must be attributed to this line
	th.IsPersist(0x10, 3)
	th.SendTrace()
	reports := sess.Exit()
	if len(reports) != 1 || len(reports[0].Diags) != 1 {
		t.Fatalf("want one diagnostic, got %v", Summarize(reports))
	}
	d := reports[0].Diags[0]
	if !strings.Contains(d.Related, "pmtest_test.go") {
		t.Errorf("device store attributed to %q, want this test file", d.Related)
	}
}

func TestStartEndGateTracking(t *testing.T) {
	sess := Init(Config{})
	th := sess.ThreadInit()
	th.Write(0x10, 8) // dropped: tracking not started
	if th.Pending() != 0 {
		t.Fatal("ops recorded before Start")
	}
	th.Start()
	th.Write(0x10, 8)
	th.End()
	th.Write(0x20, 8) // dropped again
	if th.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", th.Pending())
	}
	th.Start()
	th.IsPersist(0x10, 8)
	th.SendTrace()
	reports := sess.Exit()
	if len(reports) != 1 || reports[0].Fails() != 1 {
		t.Fatalf("unexpected reports: %v", Summarize(reports))
	}
}

func TestVarRegistry(t *testing.T) {
	sess := Init(Config{})
	defer sess.Exit()
	sess.RegVar("list.head", 0x100, 8)
	v, ok := sess.GetVar("list.head")
	if !ok || v.Addr != 0x100 || v.Size != 8 {
		t.Fatalf("GetVar = %+v, %v", v, ok)
	}
	th := sess.ThreadInit()
	th.Start()
	th.Write(0x100, 8)
	if err := th.IsPersistVar("list.head"); err != nil {
		t.Fatal(err)
	}
	th.SendTrace()
	reports := sess.GetResult()
	if len(reports) != 1 || reports[0].Fails() != 1 {
		t.Fatalf("IsPersistVar should have failed: %v", Summarize(reports))
	}
	sess.UnregVar("list.head")
	if err := th.IsPersistVar("list.head"); err == nil {
		t.Fatal("IsPersistVar after UnregVar should error")
	}
}

func TestHOPSModelSession(t *testing.T) {
	sess := Init(Config{Model: HOPS})
	th := sess.ThreadInit()
	th.Start()
	th.Write(0xA0, 8)
	th.OFence()
	th.Write(0xB0, 8)
	th.DFence()
	th.IsOrderedBefore(0xA0, 8, 0xB0, 8)
	th.IsPersist(0xA0, 8)
	th.IsPersist(0xB0, 8)
	th.SendTrace()
	reports := sess.Exit()
	if len(reports) != 1 || !reports[0].Clean() {
		t.Fatalf("HOPS session should pass: %v", Summarize(reports))
	}
}

func TestTxCheckersThroughSession(t *testing.T) {
	sess := Init(Config{})
	th := sess.ThreadInit()
	th.Start()
	th.TxCheckerStart()
	th.TxBegin()
	th.TxAdd(0x100, 64)
	th.Write(0x100, 64)
	th.Write(0x200, 8) // missing TX_ADD
	th.Flush(0x100, 64)
	th.Flush(0x200, 8)
	th.Fence()
	th.TxEnd()
	th.TxCheckerEnd()
	th.SendTrace()
	reports := sess.Exit()
	if CountCode(reports, CodeMissingBackup) != 1 {
		t.Fatalf("want missing-backup: %v", Summarize(reports))
	}
}

func TestExcludeIncludeThroughSession(t *testing.T) {
	sess := Init(Config{})
	th := sess.ThreadInit()
	th.Start()
	th.Exclude(0x200, 8)
	th.TxCheckerStart()
	th.TxBegin()
	th.Write(0x200, 8)
	th.TxEnd()
	th.TxCheckerEnd()
	th.SendTrace()
	reports := sess.Exit()
	if n := len(MergeDiags(reports)); n != 0 {
		t.Fatalf("excluded writes must not be reported: %v", Summarize(reports))
	}
}

// MergeDiags is a test helper using the public CountCode-style API.
func MergeDiags(reports []Report) []Diagnostic {
	var out []Diagnostic
	for _, r := range reports {
		out = append(out, r.Diags...)
	}
	return out
}

func TestMultipleThreads(t *testing.T) {
	sess := Init(Config{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th := sess.ThreadInit()
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			th.Start()
			for j := 0; j < 10; j++ {
				th.Write(0x10, 8)
				th.Flush(0x10, 8)
				th.Fence()
				th.IsPersist(0x10, 8)
				th.SendTrace()
			}
		}(th)
	}
	wg.Wait()
	reports := sess.Exit()
	if len(reports) != 40 {
		t.Fatalf("reports = %d, want 40", len(reports))
	}
	for _, r := range reports {
		if !r.Clean() {
			t.Fatalf("unexpected finding: %s", r.Summary())
		}
	}
}

func TestSendTraceEmptyIsNoOp(t *testing.T) {
	sess := Init(Config{})
	th := sess.ThreadInit()
	th.Start()
	th.SendTrace() // nothing recorded
	reports := sess.Exit()
	if len(reports) != 0 {
		t.Fatalf("empty SendTrace must not submit: %d reports", len(reports))
	}
}

// TestSharingDetectionAcrossThreads: the §7.4 extension — two program
// threads writing the same PM range are surfaced, sharded threads are
// not.
func TestSharingDetectionAcrossThreads(t *testing.T) {
	sess := Init(Config{DetectSharing: true})
	th0 := sess.ThreadInit()
	th1 := sess.ThreadInit()
	th0.Start()
	th1.Start()
	// Disjoint writes: no sharing.
	th0.Write(0x000, 64)
	th0.SendTrace()
	th1.Write(0x100, 64)
	th1.SendTrace()
	if got := sess.SharedRanges(); got != nil {
		t.Fatalf("disjoint writes flagged: %v", got)
	}
	// Overlapping writes: flagged.
	th0.Write(0x200, 64)
	th0.SendTrace()
	th1.Write(0x220, 64)
	th1.SendTrace()
	got := sess.SharedRanges()
	if len(got) != 1 || got[0].Addr != 0x220 || got[0].Size != 32 {
		t.Fatalf("SharedRanges = %v", got)
	}
	sess.Exit()
}

func TestSharingDisabledReturnsNil(t *testing.T) {
	sess := Init(Config{})
	th := sess.ThreadInit()
	th.Start()
	th.Write(0x10, 8)
	th.SendTrace()
	if sess.SharedRanges() != nil {
		t.Fatal("SharedRanges without DetectSharing must be nil")
	}
	sess.Exit()
}
