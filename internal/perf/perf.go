// Package perf is the deterministic benchmark harness behind cmd/pmbench
// and the CI perf-regression gate. Unlike `go test -bench`, which
// auto-calibrates iteration counts, every suite entry runs a fixed op
// budget chosen by name ("small", "medium", "large"), so two runs of the
// same budget measure exactly the same work and their JSON results are
// directly comparable.
//
// A Result is a flat list of named metrics. Each metric carries its
// direction (whether lower or higher is better) and a per-metric noise
// tolerance, so Compare can gate on regressions without a config file:
// allocation counts are near-deterministic and tolerate little, wall
// -clock throughput on shared CI runners tolerates more.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SchemaVersion identifies the BENCH_pmbench.json layout. Compare
// refuses to diff results with mismatched schemas rather than silently
// comparing renamed metrics.
const SchemaVersion = 1

// Direction says which way a metric improves.
type Direction string

const (
	// LowerIsBetter marks costs: ns/op, B/op, allocs/op, latency.
	LowerIsBetter Direction = "lower"
	// HigherIsBetter marks throughputs: inserts/sec, traces/sec.
	HigherIsBetter Direction = "higher"
)

// Default per-metric tolerances, as fractions. Allocation counts only
// move when code changes (modulo a GC clearing a sync.Pool mid-run);
// timing on shared runners is noisy.
const (
	TolAllocs  = 0.10
	TolTiming  = 0.35
	TolLatency = 0.50
)

// Metric is one measured quantity.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Better is the improvement direction, used by Compare.
	Better Direction `json:"better"`
	// Tolerance is the metric's own noise allowance (fraction); Compare
	// gates on max(Tolerance, its -tolerance flag).
	Tolerance float64 `json:"tolerance"`
}

// Result is one pmbench run: the whole suite at one budget.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Budget        string `json:"budget"`
	Count         int    `json:"count"`
	Seed          int64  `json:"seed"`
	GoVersion     string `json:"go_version,omitempty"`
	// GeneratedAt is informational only; Compare ignores it.
	GeneratedAt string   `json:"generated_at,omitempty"`
	Metrics     []Metric `json:"metrics"`
}

// Get returns the named metric.
func (r *Result) Get(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// add appends a metric, keeping the list sorted by name so the JSON
// diffs cleanly between runs.
func (r *Result) add(m Metric) {
	r.Metrics = append(r.Metrics, m)
	sort.Slice(r.Metrics, func(i, j int) bool { return r.Metrics[i].Name < r.Metrics[j].Name })
}

// merge folds another run of the same suite into r, keeping the best
// value per metric (min for costs, max for throughputs) — the same
// noise-rejection `go test -bench -count N` users apply with benchstat,
// built in because the CI gate consumes a single number.
func (r *Result) merge(other Result) {
	for _, m := range other.Metrics {
		cur, ok := r.Get(m.Name)
		if !ok {
			r.add(m)
			continue
		}
		better := m.Value < cur.Value
		if m.Better == HigherIsBetter {
			better = m.Value > cur.Value
		}
		if better {
			for i := range r.Metrics {
				if r.Metrics[i].Name == m.Name {
					r.Metrics[i].Value = m.Value
				}
			}
		}
	}
}

// WriteJSON writes the result with stable formatting.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadResult loads a pmbench JSON file and validates its schema.
func ReadResult(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Result
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema_version %d, this pmbench speaks %d",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}
