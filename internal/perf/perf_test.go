package perf

import (
	"bytes"
	"strings"
	"testing"
)

func baseResult() *Result {
	r := &Result{SchemaVersion: SchemaVersion, Budget: "small"}
	r.add(Metric{Name: "check/allocs_per_trace", Value: 100, Unit: "allocs/op",
		Better: LowerIsBetter, Tolerance: TolAllocs})
	r.add(Metric{Name: "engine/traces_per_sec", Value: 1000, Unit: "traces/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	r.add(Metric{Name: "encode/allocs_per_trace", Value: 0, Unit: "allocs/op",
		Better: LowerIsBetter, Tolerance: TolAllocs})
	return r
}

func clone(r *Result) *Result {
	c := &Result{SchemaVersion: r.SchemaVersion, Budget: r.Budget}
	c.Metrics = append([]Metric(nil), r.Metrics...)
	return c
}

func setValue(r *Result, name string, v float64) {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			r.Metrics[i].Value = v
			return
		}
	}
	panic("no metric " + name)
}

// TestCompareFlagsInjectedRegression is the gate's core contract: a
// lower-is-better metric that grows beyond tolerance, or a
// higher-is-better metric that shrinks beyond it, must be reported as a
// regression — and in-tolerance noise must not.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	base := baseResult()

	cur := clone(base)
	setValue(cur, "check/allocs_per_trace", 200) // +100%, tol 30%
	deltas, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(deltas); got != 1 {
		t.Fatalf("injected alloc regression: %d regressions, want 1\n%v", got, deltas)
	}

	cur = clone(base)
	setValue(cur, "engine/traces_per_sec", 500) // -50%, tol 35%
	deltas, err = Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(deltas); got != 1 {
		t.Fatalf("injected throughput regression: %d regressions, want 1\n%v", got, deltas)
	}

	cur = clone(base)
	setValue(cur, "check/allocs_per_trace", 105) // +5%: inside every tolerance
	setValue(cur, "engine/traces_per_sec", 900)  // -10%
	setValue(cur, "encode/allocs_per_trace", 2)  // zero baseline, small absolute drift
	deltas, err = Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(deltas); got != 0 {
		t.Fatalf("in-tolerance noise flagged: %d regressions\n%v", got, deltas)
	}
}

// TestCompareToleranceFloor: the flag is a floor over per-metric
// tolerance, never a cap.
func TestCompareToleranceFloor(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	setValue(cur, "check/allocs_per_trace", 130) // +30%: over TolAllocs, under flag 50%
	deltas, err := Compare(base, cur, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(deltas); got != 0 {
		t.Fatalf("flag floor not applied: %d regressions\n%v", got, deltas)
	}
}

// TestCompareMissingMetric: a baseline metric that vanishes from the new
// run gates, so renames force a conscious baseline refresh.
func TestCompareMissingMetric(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.Metrics = cur.Metrics[:len(cur.Metrics)-1]
	missing := base.Metrics[len(base.Metrics)-1].Name
	deltas, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deltas {
		if d.Name == missing && d.MissingNew && d.Regressed {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing metric %q not flagged\n%v", missing, deltas)
	}
}

// TestCompareRejectsMismatches: schema and budget mismatches are errors,
// not silent comparisons.
func TestCompareRejectsMismatches(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(base, cur, 0.3); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
	cur = clone(base)
	cur.Budget = "large"
	if _, err := Compare(base, cur, 0.3); err == nil {
		t.Fatal("budget mismatch not rejected")
	}
}

// TestMergeKeepsBest: count>1 passes keep the min of costs and the max
// of throughputs.
func TestMergeKeepsBest(t *testing.T) {
	r := baseResult()
	pass2 := clone(r)
	setValue(pass2, "check/allocs_per_trace", 90)
	setValue(pass2, "engine/traces_per_sec", 1200)
	r.merge(*pass2)
	if m, _ := r.Get("check/allocs_per_trace"); m.Value != 90 {
		t.Errorf("cost metric: kept %v, want min 90", m.Value)
	}
	if m, _ := r.Get("engine/traces_per_sec"); m.Value != 1200 {
		t.Errorf("throughput metric: kept %v, want max 1200", m.Value)
	}
}

// TestMeasureCountsAllocs sanity-checks the fixed-iteration measurer
// against a function with a known allocation profile.
func TestMeasureCountsAllocs(t *testing.T) {
	var sink []byte
	s := measure(100, func() { sink = make([]byte, 4096) })
	_ = sink
	if s.AllocsPerOp < 0.9 || s.AllocsPerOp > 8 {
		t.Errorf("AllocsPerOp = %v, want ~1", s.AllocsPerOp)
	}
	if s.BytesPerOp < 4096 {
		t.Errorf("BytesPerOp = %v, want >= 4096", s.BytesPerOp)
	}
	if s.NsPerOp <= 0 {
		t.Errorf("NsPerOp = %v, want > 0", s.NsPerOp)
	}
}

// TestSuiteTinyRoundTrip runs the real suite at the test budget and
// round-trips the result through JSON: every expected metric present,
// self-comparison clean.
func TestSuiteTinyRoundTrip(t *testing.T) {
	b, ok := Budgets("tiny")
	if !ok {
		t.Fatal("tiny budget missing")
	}
	res, err := Run(b, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"micro/ctree/tx64/inserts_per_sec",
		"micro/ctree/tx64/allocs_per_insert",
		"check/traces_per_sec",
		"check/allocs_per_trace",
		"engine/traces_per_sec",
		"engine/check_p50_ns",
		"engine/check_p99_ns",
		"encode/ns_per_trace",
		"encode/allocs_per_trace",
		"decode/ns_per_trace",
		"crashmc/schedules_per_sec",
	} {
		if _, ok := res.Get(want); !ok {
			t.Errorf("suite result missing metric %q", want)
		}
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version": 1`) {
		t.Errorf("JSON missing schema_version:\n%s", buf.String())
	}

	deltas, err := Compare(res, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(deltas); got != 0 {
		t.Errorf("self-comparison regressed: %d\n%v", got, deltas)
	}
}

// TestBudgetsKnown: every published budget resolves and CI's budget is
// among them.
func TestBudgetsKnown(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "large"} {
		if _, ok := Budgets(name); !ok {
			t.Errorf("budget %q missing", name)
		}
	}
	if _, ok := Budgets("nope"); ok {
		t.Error("unknown budget resolved")
	}
}
