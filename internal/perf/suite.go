package perf

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/dist"
	"pmtest/internal/faultinject"
	"pmtest/internal/flight"
	"pmtest/internal/flight/search"
	"pmtest/internal/harness"
	"pmtest/internal/lint"
	"pmtest/internal/obs"
	"pmtest/internal/obs/collect"
	"pmtest/internal/obsserve"
	"pmtest/internal/trace"
)

// Budget fixes how much work each suite entry does, so two runs of the
// same budget are directly comparable. "small" is the CI gate; "medium"
// and "large" are for local before/after measurement.
type Budget struct {
	Name string
	// Micro-suite shape: each store × tx size runs Inserts insertions
	// end-to-end under full PMTest checking.
	Stores  []string
	TxSizes []uint64
	Inserts int
	// CheckSections is how many recorded sections feed the engine and
	// direct-check entries.
	CheckSections int
	// CheckIters is the fixed iteration count for the direct
	// CheckTrace and codec entries.
	CheckIters int
	// Campaign bounds the crashmc entry.
	CampaignTargets int
	CampaignBudget  int
	CampaignOps     int
	// DistSections is how many recorded sections stream through the
	// loopback distributed-checking entries (healthy and degraded).
	DistSections int
	// Huge-trace shape: HugeOps total ops streamed through the sharded
	// checker in HugeSection-op sections, over a rotating window of
	// HugeWindow objects (0 skips the entry).
	HugeOps     int
	HugeWindow  int
	HugeSection int
}

// Budgets returns the named budget, or false.
func Budgets(name string) (Budget, bool) {
	switch name {
	case "tiny": // test-sized; not meant for checked-in baselines
		return Budget{Name: "tiny", Stores: []string{"ctree"}, TxSizes: []uint64{64},
			Inserts: 60, CheckSections: 40, CheckIters: 5,
			CampaignTargets: 1, CampaignBudget: 1, CampaignOps: 2,
			DistSections: 12,
			HugeOps:      20_000, HugeWindow: 64, HugeSection: 4_000}, true
	case "small": // the CI gate: ~seconds per pass
		return Budget{Name: "small", Stores: []string{"ctree", "hashmap-ll"}, TxSizes: []uint64{64, 256},
			Inserts: 400, CheckSections: 300, CheckIters: 20,
			CampaignTargets: 2, CampaignBudget: 2, CampaignOps: 2,
			DistSections: 80,
			HugeOps:      2_000_000, HugeWindow: 256, HugeSection: 65_536}, true
	case "medium":
		return Budget{Name: "medium", Stores: []string{"ctree", "btree", "hashmap-ll"},
			TxSizes: []uint64{64, 256, 1024},
			Inserts: 2000, CheckSections: 1000, CheckIters: 50,
			CampaignTargets: 3, CampaignBudget: 4, CampaignOps: 3,
			DistSections: 300,
			HugeOps:      4_000_000, HugeWindow: 256, HugeSection: 65_536}, true
	case "large":
		return Budget{Name: "large", Stores: harness.MicroStores, TxSizes: []uint64{64, 256, 1024, 4096},
			Inserts: 8000, CheckSections: 4000, CheckIters: 100,
			CampaignTargets: 5, CampaignBudget: 8, CampaignOps: 3,
			DistSections: 800,
			HugeOps:      10_000_000, HugeWindow: 512, HugeSection: 131_072}, true
	}
	return Budget{}, false
}

// Run executes the whole suite count times and returns the merged
// (best-of) result. progress, when non-nil, receives one line per suite
// entry.
func Run(b Budget, count int, seed int64, progress io.Writer) (*Result, error) {
	if count < 1 {
		count = 1
	}
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	res := &Result{SchemaVersion: SchemaVersion, Budget: b.Name, Count: count,
		Seed: seed, GoVersion: runtime.Version()}
	for pass := 0; pass < count; pass++ {
		logf("pass %d/%d", pass+1, count)
		one := &Result{SchemaVersion: SchemaVersion, Budget: b.Name}
		if err := runOnce(b, seed, one, logf); err != nil {
			return nil, err
		}
		res.merge(*one)
	}
	return res, nil
}

func runOnce(b Budget, seed int64, res *Result, logf func(string, ...any)) error {
	if err := runMicro(b, res, logf); err != nil {
		return err
	}
	if err := runCheckAndEngine(b, res, logf); err != nil {
		return err
	}
	if err := runHugeTrace(b, res, logf); err != nil {
		return err
	}
	if err := runCodec(b, res, logf); err != nil {
		return err
	}
	if err := runObsPlane(b, res, logf); err != nil {
		return err
	}
	if err := runSearchFanout(b, res, logf); err != nil {
		return err
	}
	if err := runLint(res, logf); err != nil {
		return err
	}
	if err := runDist(b, res, logf); err != nil {
		return err
	}
	return runCampaign(b, seed, res, logf)
}

// startDistNode hosts one checker node on a loopback listener, exactly
// as `pmtestd serve` does, and returns its dialable address.
func startDistNode() (string, func(), error) {
	node := dist.NewNode(dist.NodeConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: node}
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		node.Close()
	}
	return ln.Addr().String(), shutdown, nil
}

// runDist measures the distributed checking tier over loopback HTTP:
// section throughput and RTT against a healthy node, then the same
// stream with the active node killed mid-run — so the price of a
// failover (re-open, backlog replay, breaker bookkeeping) is gated like
// any other perf number.
func runDist(b Budget, res *Result, logf func(string, ...any)) error {
	if b.DistSections == 0 {
		return nil
	}
	sections, err := harness.RecordMicroSections(b.Stores[0], 256, b.DistSections)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	n := float64(len(sections))
	stream := func(s *dist.Session, secs [][]trace.Op) {
		for _, ops := range secs {
			s.Submit(&trace.Trace{Ops: ops})
		}
	}
	opts := func(m *obs.Metrics, nodes ...string) dist.Options {
		return dist.Options{Nodes: nodes, Metrics: m,
			Backoff: dist.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond}}
	}

	// Healthy: one node absorbs the whole stream.
	addr, shutdown, err := startDistNode()
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	m := obs.NewMetrics(0)
	c, err := dist.NewCoordinator(opts(m, addr))
	if err != nil {
		shutdown()
		return fmt.Errorf("dist: %w", err)
	}
	var elapsed time.Duration
	measure(1, func() {
		sess := c.OpenSession("pmbench-healthy", core.X86{})
		start := time.Now()
		stream(sess, sections)
		reports := sess.Close()
		elapsed = time.Since(start)
		if len(reports) != len(sections) {
			panic(fmt.Sprintf("dist healthy: %d reports for %d sections", len(reports), len(sections)))
		}
	})
	c.Close()
	shutdown()
	snap := m.Snapshot()
	res.add(Metric{Name: "dist/healthy_sections_per_sec",
		Value: n / elapsed.Seconds(), Unit: "sections/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "dist/healthy_rtt_p50_ns",
		Value: float64(snap.DistRTT.P50), Unit: "ns",
		Better: LowerIsBetter, Tolerance: TolLatency})
	logf("  dist healthy: %.0f sections/s, rtt p50 %v p99 %v",
		n/elapsed.Seconds(), snap.DistRTT.P50, snap.DistRTT.P99)

	// Degraded: two nodes, the active one killed a quarter through.
	addrA, downA, err := startDistNode()
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	addrB, downB, err := startDistNode()
	if err != nil {
		downA()
		return fmt.Errorf("dist: %w", err)
	}
	dm := obs.NewMetrics(0)
	dc, err := dist.NewCoordinator(opts(dm, addrA, addrB))
	if err != nil {
		downA()
		downB()
		return fmt.Errorf("dist: %w", err)
	}
	cut := len(sections) / 4
	var degElapsed time.Duration
	measure(1, func() {
		sess := dc.OpenSession("pmbench-degraded", core.X86{})
		start := time.Now()
		stream(sess, sections[:cut])
		sess.Wait()
		if sess.Node() == addrA {
			downA()
		} else {
			downB()
		}
		stream(sess, sections[cut:])
		reports := sess.Close()
		degElapsed = time.Since(start)
		if len(reports) != len(sections) {
			panic(fmt.Sprintf("dist degraded: %d reports for %d sections", len(reports), len(sections)))
		}
	})
	dc.Close()
	downA()
	downB()
	dsnap := dm.Snapshot()
	if dsnap.DistFailovers < 1 {
		return fmt.Errorf("dist degraded: killed the active node but recorded no failover")
	}
	res.add(Metric{Name: "dist/degraded_sections_per_sec",
		Value: n / degElapsed.Seconds(), Unit: "sections/s",
		Better: HigherIsBetter, Tolerance: TolLatency})
	logf("  dist degraded: %.0f sections/s (%d retries, %d failovers)",
		n/degElapsed.Seconds(), dsnap.DistRetries, dsnap.DistFailovers)
	return nil
}

// runLint measures the interprocedural analyzer over the repo's own
// source tree — the same packages CI lints — so a slowdown in parsing,
// call-graph construction, or the summary fixpoint gates like any other
// perf regression. The tree is a fixed workload independent of the
// budget, so a single wall-time metric with timing tolerance suffices.
func runLint(res *Result, logf func(string, ...any)) error {
	root, err := moduleRoot()
	if err != nil {
		return fmt.Errorf("pmlint_tree: %w", err)
	}
	dirs, err := goDirs(root)
	if err != nil {
		return fmt.Errorf("pmlint_tree: %w", err)
	}
	findings := 0
	s := measure(3, func() {
		findings = 0
		for _, d := range dirs {
			found, err := lint.LintDirOpt(d, false, lint.Options{})
			if err != nil {
				panic(fmt.Sprintf("pmlint_tree: %s: %v", d, err))
			}
			findings += len(found)
		}
	})
	res.add(Metric{Name: "pmlint_tree/ms_per_pass", Value: s.NsPerOp / 1e6, Unit: "ms/pass",
		Better: LowerIsBetter, Tolerance: TolTiming})
	logf("  pmlint_tree: %d dirs, %d findings, %.0f ms/pass", len(dirs), findings, s.NsPerOp/1e6)
	return nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so the suite lints the same tree no matter which subdirectory
// pmbench runs from.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// goDirs collects every directory under root holding non-test Go files,
// skipping testdata, hidden and underscore-prefixed directories — the
// same set `pmlint ./...` lints.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// runObsPlane measures the observability plane itself: building one
// node's versioned snapshot document from a warmed registry, and one
// pmtop-style fan-out collection over three live local endpoints. Both
// sit on monitoring paths (a scrape per poll interval), so they are
// gated like any other metric — a snapshot build that starts allocating
// per bucket or a collection that serializes node polls shows up here.
func runObsPlane(b Budget, res *Result, logf func(string, ...any)) error {
	m := obs.NewMetrics(64)
	for i := 0; i < 512; i++ {
		m.TraceSubmitted(i, i%4, 16)
		m.TraceDequeued(i, i%2, time.Duration(i)*time.Microsecond)
		m.TraceChecked(obs.TraceEvent{TraceID: i, Thread: i % 4, Worker: i % 2,
			Ops: 16, CheckDur: time.Duration(i) * 100 * time.Nanosecond})
	}
	src := &obs.SnapshotSource{Source: "pmbench", Metrics: m}
	sb := measure(b.CheckIters*10, func() { _ = src.Capture() })
	res.add(Metric{Name: "snapshot_build/ns_per_snapshot", Value: sb.NsPerOp, Unit: "ns/op",
		Better: LowerIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "snapshot_build/allocs_per_snapshot", Value: sb.AllocsPerOp, Unit: "allocs/op",
		Better: LowerIsBetter, Tolerance: TolAllocs})

	var servers []*obsserve.Server
	var nodes []string
	for i := 0; i < 3; i++ {
		srv, err := obsserve.Start(obsserve.Config{Addr: "127.0.0.1:0", Metrics: m})
		if err != nil {
			return fmt.Errorf("obs plane: %w", err)
		}
		servers = append(servers, srv)
		nodes = append(nodes, srv.Addr())
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	client := &http.Client{}
	cf := measure(b.CheckIters, func() {
		merged, err := collect.Collect(context.Background(), nodes,
			collect.Options{Client: client})
		if err != nil {
			panic(err)
		}
		if merged.Partial {
			panic("obs plane: local collection came back partial")
		}
	})
	res.add(Metric{Name: "collect_fanout/ns_per_collect", Value: cf.NsPerOp, Unit: "ns/op",
		Better: LowerIsBetter, Tolerance: TolLatency})
	logf("  obs: snapshot %.0f ns (%.1f allocs), collect(3 nodes) %.0f ns",
		sb.NsPerOp, sb.AllocsPerOp, cf.NsPerOp)
	return nil
}

// runSearchFanout measures the fleet span-search read path: one merged
// two-node query through the fan-out searcher over live loopback
// endpoints — HTTP round trips, span JSON decode, and the newest-first
// cross-node merge. This is what every pmtop spans refresh costs, so
// its p50/p99 gate like any other monitoring-path latency.
func runSearchFanout(b Budget, res *Result, logf func(string, ...any)) error {
	if b.CheckIters == 0 {
		return nil
	}
	var servers []*obsserve.Server
	var nodes []string
	for i := 0; i < 2; i++ {
		rec := flight.NewRecorder(1024)
		for j := 0; j < 512; j++ {
			rec.Start(flight.CatRPC, "handle-section", 0).
				SetStr("remote_session_id", fmt.Sprintf("pmtest-%d", j%8)).
				SetInt("seq", int64(j)).
				Finish()
		}
		srv, err := obsserve.Start(obsserve.Config{Addr: "127.0.0.1:0",
			Metrics: obs.NewMetrics(0), Flight: rec})
		if err != nil {
			return fmt.Errorf("search fanout: %w", err)
		}
		servers = append(servers, srv)
		nodes = append(nodes, srv.Addr())
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	client := &http.Client{}
	params := search.Params{Category: "rpc", AttrKey: "remote_session_id",
		AttrVal: "pmtest-3", Limit: 200}
	var h obs.Histogram
	measure(b.CheckIters*5, func() {
		start := time.Now()
		r, err := search.Search(context.Background(), nodes, params,
			search.Options{Client: client})
		if err != nil {
			panic(err)
		}
		if r.Partial {
			panic("search fanout: local query came back partial")
		}
		h.Observe(time.Since(start))
	})
	snap := h.Snapshot()
	res.add(Metric{Name: "search_fanout/p50_ns", Value: float64(snap.P50), Unit: "ns",
		Better: LowerIsBetter, Tolerance: TolLatency})
	res.add(Metric{Name: "search_fanout/p99_ns", Value: float64(snap.P99), Unit: "ns",
		Better: LowerIsBetter, Tolerance: TolLatency})
	logf("  search_fanout: merged query(2 nodes) p50 %v p99 %v", snap.P50, snap.P99)
	return nil
}

// runMicro measures the whisper micro stores end-to-end under full
// PMTest checking: wall-clock insert throughput plus the allocator cost
// of the whole tool stack per insert.
func runMicro(b Budget, res *Result, logf func(string, ...any)) error {
	for _, store := range b.Stores {
		for _, tx := range b.TxSizes {
			var mr harness.MicroResult
			var err error
			s := measure(1, func() {
				mr, err = harness.MicroBench(store, tx, b.Inserts, harness.ToolPMTest, 1)
			})
			if err != nil {
				return fmt.Errorf("micro %s/tx%d: %w", store, tx, err)
			}
			if mr.Fails > 0 {
				return fmt.Errorf("micro %s/tx%d: %d FAILs on a clean workload", store, tx, mr.Fails)
			}
			n := float64(b.Inserts)
			prefix := fmt.Sprintf("micro/%s/tx%d/", store, tx)
			res.add(Metric{Name: prefix + "inserts_per_sec",
				Value: n / mr.Elapsed.Seconds(), Unit: "inserts/s",
				Better: HigherIsBetter, Tolerance: TolTiming})
			res.add(Metric{Name: prefix + "allocs_per_insert",
				Value: s.AllocsPerOp / n, Unit: "allocs/op",
				Better: LowerIsBetter, Tolerance: TolAllocs})
			res.add(Metric{Name: prefix + "b_per_insert",
				Value: s.BytesPerOp / n, Unit: "B/op",
				Better: LowerIsBetter, Tolerance: TolTiming})
			logf("  %s: %.0f inserts/s, %.0f allocs/insert",
				prefix, n/mr.Elapsed.Seconds(), s.AllocsPerOp/n)
		}
	}
	return nil
}

// runCheckAndEngine records one store's sections once, then measures
// (a) the synchronous CheckTrace hot path and (b) the full engine
// Submit→Wait pipeline with the observability registry attached, which
// yields the p50/p99 per-trace check latency.
func runCheckAndEngine(b Budget, res *Result, logf func(string, ...any)) error {
	sections, err := harness.RecordMicroSections(b.Stores[0], 256, b.CheckSections)
	if err != nil {
		return err
	}
	traces := make([]*trace.Trace, len(sections))
	totalOps := 0
	for i, ops := range sections {
		traces[i] = &trace.Trace{Ops: ops}
		totalOps += len(ops)
	}

	s := measure(b.CheckIters, func() {
		for _, tr := range traces {
			core.CheckTrace(core.X86{}, tr)
		}
	})
	n := float64(len(traces))
	res.add(Metric{Name: "check/traces_per_sec",
		Value: n / (s.NsPerOp / 1e9), Unit: "traces/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "check/allocs_per_trace",
		Value: s.AllocsPerOp / n, Unit: "allocs/op",
		Better: LowerIsBetter, Tolerance: TolAllocs})
	res.add(Metric{Name: "check/ns_per_op",
		Value: s.NsPerOp / float64(totalOps), Unit: "ns/op",
		Better: LowerIsBetter, Tolerance: TolTiming})
	logf("  check: %.0f traces/s, %.1f allocs/trace", n/(s.NsPerOp/1e9), s.AllocsPerOp/n)

	m := obs.NewMetrics(0)
	var elapsed time.Duration
	measure(1, func() {
		eng := core.NewEngine(core.Options{Workers: 2, Observer: m})
		start := time.Now()
		for _, tr := range traces {
			eng.Submit(tr)
		}
		eng.Wait()
		elapsed = time.Since(start)
		eng.Close()
	})
	snap := m.Snapshot()
	res.add(Metric{Name: "engine/traces_per_sec",
		Value: n / elapsed.Seconds(), Unit: "traces/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "engine/check_p50_ns",
		Value: float64(snap.CheckDur.P50), Unit: "ns",
		Better: LowerIsBetter, Tolerance: TolLatency})
	res.add(Metric{Name: "engine/check_p99_ns",
		Value: float64(snap.CheckDur.P99), Unit: "ns",
		Better: LowerIsBetter, Tolerance: TolLatency})
	logf("  engine: %.0f traces/s, p50 %v, p99 %v",
		n/elapsed.Seconds(), snap.CheckDur.P50, snap.CheckDur.P99)

	// Same engine pipeline with the flight recorder observing: the
	// compare gate pins the recorder's overhead on the checking path
	// (span pooling should keep it within tolerance of engine/*).
	rec := flight.NewRecorder(256)
	fo := flight.EngineObserver(rec)
	var flElapsed time.Duration
	fl := measure(1, func() {
		eng := core.NewEngine(core.Options{Workers: 2, Observer: fo})
		start := time.Now()
		for _, tr := range traces {
			eng.Submit(tr)
		}
		eng.Wait()
		flElapsed = time.Since(start)
		eng.Close()
	})
	res.add(Metric{Name: "flight_on/traces_per_sec",
		Value: n / flElapsed.Seconds(), Unit: "traces/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "flight_on/allocs_per_trace",
		Value: fl.AllocsPerOp / n, Unit: "allocs/op",
		Better: LowerIsBetter, Tolerance: TolAllocs})
	logf("  flight_on: %.0f traces/s, %.1f allocs/trace",
		n/flElapsed.Seconds(), fl.AllocsPerOp/n)
	return nil
}

// runCodec measures trace wire encode and decode on a representative
// recorded section.
func runCodec(b Budget, res *Result, logf func(string, ...any)) error {
	sections, err := harness.RecordMicroSections(b.Stores[0], 256, 8)
	if err != nil {
		return err
	}
	tr := &trace.Trace{Ops: sections[len(sections)-1]}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		return err
	}
	wire := buf.Bytes()

	iters := b.CheckIters * 50
	enc := measure(iters, func() {
		if err := trace.Encode(io.Discard, tr); err != nil {
			panic(err)
		}
	})
	res.add(Metric{Name: "encode/ns_per_trace", Value: enc.NsPerOp, Unit: "ns/op",
		Better: LowerIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "encode/allocs_per_trace", Value: enc.AllocsPerOp, Unit: "allocs/op",
		Better: LowerIsBetter, Tolerance: TolAllocs})

	dec := measure(iters, func() {
		if _, err := trace.Decode(bytes.NewReader(wire)); err != nil {
			panic(err)
		}
	})
	res.add(Metric{Name: "decode/ns_per_trace", Value: dec.NsPerOp, Unit: "ns/op",
		Better: LowerIsBetter, Tolerance: TolTiming})
	logf("  codec: encode %.0f ns (%.1f allocs), decode %.0f ns",
		enc.NsPerOp, enc.AllocsPerOp, dec.NsPerOp)
	return nil
}

// runCampaign runs a bounded crashmc fault-injection campaign — the
// heaviest consumer of the checking engine — and reports schedule and
// crash-state throughput.
func runCampaign(b Budget, seed int64, res *Result, logf func(string, ...any)) error {
	cfg := faultinject.Defaults()
	cfg.Seed = seed
	cfg.Budget = b.CampaignBudget
	cfg.Ops = b.CampaignOps
	targets := faultinject.Targets()
	if len(targets) > b.CampaignTargets {
		targets = targets[:b.CampaignTargets]
	}
	var cr *faultinject.Result
	var err error
	s := measure(1, func() {
		cr, err = faultinject.Run(cfg, targets)
	})
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	sec := s.Elapsed.Seconds()
	res.add(Metric{Name: "crashmc/schedules_per_sec",
		Value: float64(cr.SchedulesRun) / sec, Unit: "schedules/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "crashmc/states_per_sec",
		Value: float64(cr.StatesExplored) / sec, Unit: "states/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	logf("  crashmc: %d schedules, %d states in %v", cr.SchedulesRun, cr.StatesExplored, s.Elapsed)
	return nil
}
