package perf

import (
	"fmt"
	"runtime"

	"pmtest/internal/core"
	"pmtest/internal/trace"
)

// hugeTraceGen streams a synthetic long-running workload in sections
// without ever materializing the whole trace: a rotating window of
// Window 64-byte objects, each in its own 4 KiB chunk so address
// striping distributes them, written and flushed every round and closed
// by one fence. The window then advances, so the live working set stays
// at Window objects while the address footprint — and an unbounded
// checker's shadow memory — grows with the run. The ops buffer is
// reused across sections; callers must finish checking a section before
// asking for the next.
type hugeTraceGen struct {
	window  int
	section int
	round   int // next round index, carried across sections
	ops     []trace.Op
	tr      trace.Trace
}

// next fills the reused section trace with roughly g.section ops (whole
// rounds only) and returns it along with the number of ops generated.
func (g *hugeTraceGen) next() (*trace.Trace, int) {
	g.ops = g.ops[:0]
	for len(g.ops)+2*g.window+1 <= g.section {
		base := uint64(g.round) * uint64(g.window) * 4096
		for w := 0; w < g.window; w++ {
			a := base + uint64(w)*4096
			g.ops = append(g.ops,
				trace.Op{Kind: trace.KindWrite, Addr: a, Size: 64},
				trace.Op{Kind: trace.KindFlush, Addr: a, Size: 64})
		}
		g.ops = append(g.ops, trace.Op{Kind: trace.KindFence})
		g.round++
	}
	g.tr.Ops = g.ops
	return &g.tr, len(g.ops)
}

// runHugeTrace measures the sharded streaming checker on a trace too
// large to check as one unit: b.HugeOps ops streamed through a
// persistent checker in b.HugeSection-op sections, with epoch GC
// keeping shadow memory near the window size. Three stripe counts are
// measured — 1 (the serial baseline), 4 (the CI-gated configuration)
// and NumCPU — plus the GC'd peak interval count, which is gated
// LowerIsBetter so a GC regression that lets shadow memory grow with
// the trace again fails the compare step.
func runHugeTrace(b Budget, res *Result, logf func(string, ...any)) error {
	if b.HugeOps == 0 {
		return nil
	}
	shardCounts := []int{1, 4, runtime.NumCPU()}
	opsPerSec := make([]float64, len(shardCounts))
	var peak int
	for i, shards := range shardCounts {
		c := core.NewShardedChecker(core.X86{}, core.Config{Shards: shards, EpochGC: true})
		gen := &hugeTraceGen{window: b.HugeWindow, section: b.HugeSection}
		done := 0
		var maxPeak int
		// measure's warm-up call streams the whole budget once (priming
		// stripe lists and tree freelists); the closure resets the stream
		// so the timed run repeats identical work.
		s := measure(1, func() {
			done, gen.round, maxPeak = 0, 0, 0
			for done < b.HugeOps {
				tr, n := gen.next()
				rep, stats := c.Check(tr, nil)
				if !rep.Clean() {
					panic(fmt.Sprintf("huge-trace: clean streaming section flagged at %d ops", done))
				}
				if shards > 1 && !stats.Sharded {
					panic("huge-trace: striped section fell back to serial")
				}
				if stats.PeakIntervals > maxPeak {
					maxPeak = stats.PeakIntervals
				}
				done += n
			}
		})
		c.Close()
		opsPerSec[i] = float64(done) / s.Elapsed.Seconds()
		if shards == runtime.NumCPU() {
			peak = maxPeak
		}
		logf("  huge_trace: shards=%d %.2fM ops/s (peak %d intervals)",
			shards, opsPerSec[i]/1e6, maxPeak)
	}
	res.add(Metric{Name: "huge_trace/ops_per_sec_shards1",
		Value: opsPerSec[0], Unit: "ops/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	res.add(Metric{Name: "huge_trace/ops_per_sec_shards4",
		Value: opsPerSec[1], Unit: "ops/s",
		Better: HigherIsBetter, Tolerance: TolTiming})
	// The speedup ratio divides out machine speed, but still moves with
	// scheduler noise and core count, so it gets the widest tolerance.
	res.add(Metric{Name: "huge_trace/speedup_numcpu",
		Value: opsPerSec[2] / opsPerSec[0], Unit: "x",
		Better: HigherIsBetter, Tolerance: TolLatency})
	// Peak live shadow intervals with GC on: per-section working set plus
	// the GC lag, independent of total trace length. Gated upward.
	res.add(Metric{Name: "huge_trace/peak_intervals",
		Value: float64(peak), Unit: "intervals",
		Better: LowerIsBetter, Tolerance: TolTiming})
	return nil
}
