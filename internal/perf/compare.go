package perf

import (
	"fmt"
	"io"
	"math"
)

// Delta is one metric's old-vs-new comparison.
type Delta struct {
	Name     string
	Old, New float64
	Unit     string
	Better   Direction
	// Pct is the signed relative change, positive when the value grew.
	Pct float64
	// Tol is the gate actually applied: max(baseline metric tolerance,
	// the compare-wide tolerance flag).
	Tol       float64
	Regressed bool
	// MissingNew marks a baseline metric absent from the new run — a
	// renamed or dropped benchmark, treated as a regression so the
	// baseline gets consciously regenerated.
	MissingNew bool
	// NewMetric marks a metric absent from the baseline; informational.
	NewMetric bool
}

func (d Delta) String() string {
	switch {
	case d.MissingNew:
		return fmt.Sprintf("%-44s MISSING from new run (baseline %.4g %s)", d.Name, d.Old, d.Unit)
	case d.NewMetric:
		return fmt.Sprintf("%-44s new metric: %.4g %s", d.Name, d.New, d.Unit)
	}
	verdict := "ok"
	if d.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%-44s %12.4g -> %12.4g %-10s %+7.1f%% (tol %.0f%%, %s is better) %s",
		d.Name, d.Old, d.New, d.Unit, d.Pct*100, d.Tol*100, d.Better, verdict)
}

// Compare diffs a new run against a baseline. A metric regresses when it
// moves against its direction by more than max(flagTol, its baseline
// tolerance). Schema mismatches are errors, not comparisons.
func Compare(base, cur *Result, flagTol float64) ([]Delta, error) {
	if base.SchemaVersion != cur.SchemaVersion {
		return nil, fmt.Errorf("schema mismatch: baseline v%d vs new v%d",
			base.SchemaVersion, cur.SchemaVersion)
	}
	if base.Budget != cur.Budget {
		return nil, fmt.Errorf("budget mismatch: baseline %q vs new %q — results are not comparable",
			base.Budget, cur.Budget)
	}
	var deltas []Delta
	for _, bm := range base.Metrics {
		d := Delta{Name: bm.Name, Old: bm.Value, Unit: bm.Unit, Better: bm.Better,
			Tol: math.Max(flagTol, bm.Tolerance)}
		cm, ok := cur.Get(bm.Name)
		if !ok {
			d.MissingNew, d.Regressed = true, true
			deltas = append(deltas, d)
			continue
		}
		d.New = cm.Value
		if bm.Value != 0 {
			d.Pct = (cm.Value - bm.Value) / bm.Value
		} else if cm.Value != 0 {
			d.Pct = math.Inf(1)
		}
		switch bm.Better {
		case HigherIsBetter:
			d.Regressed = d.Pct < -d.Tol
		default: // lower is better; also the safe reading of an unknown direction
			d.Regressed = d.Pct > d.Tol
		}
		// A zero-baseline cost metric (e.g. 0 allocs/op) has no relative
		// scale; allow an absolute slack of one tolerance-unit-per-op
		// before flagging, so a GC-cleared pool does not fail CI.
		if bm.Value == 0 && bm.Better != HigherIsBetter {
			d.Regressed = cm.Value > 64
		}
		deltas = append(deltas, d)
	}
	for _, cm := range cur.Metrics {
		if _, ok := base.Get(cm.Name); !ok {
			deltas = append(deltas, Delta{Name: cm.Name, New: cm.Value, Unit: cm.Unit,
				Better: cm.Better, NewMetric: true})
		}
	}
	return deltas, nil
}

// Regressions counts gating deltas.
func Regressions(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

// WriteReport renders the comparison table.
func WriteReport(w io.Writer, deltas []Delta) {
	for _, d := range deltas {
		fmt.Fprintln(w, d.String())
	}
	if n := Regressions(deltas); n > 0 {
		fmt.Fprintf(w, "\n%d metric(s) regressed beyond tolerance\n", n)
	} else {
		fmt.Fprintf(w, "\nno regressions beyond tolerance\n")
	}
}
