package perf

import (
	"runtime"
	"time"
)

// Sample is one fixed-iteration measurement in `go test -bench` units.
type Sample struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	Elapsed     time.Duration
}

// measure runs f iters times and reports per-iteration cost. One
// warm-up run primes pools and lazily-built state (mirroring
// testing.AllocsPerRun), and a GC before the timed loop keeps earlier
// garbage from being collected on our clock.
func measure(iters int, f func()) Sample {
	f()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return Sample{
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		Elapsed:     elapsed,
	}
}
