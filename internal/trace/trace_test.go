package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindWrite:           "write",
		KindFlush:           "clwb",
		KindFence:           "sfence",
		KindOFence:          "ofence",
		KindDFence:          "dfence",
		KindIsPersist:       "isPersist",
		KindIsOrderedBefore: "isOrderedBefore",
		Kind(200):           "Kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsChecker(t *testing.T) {
	for _, k := range []Kind{KindIsPersist, KindIsOrderedBefore, KindTxCheckerStart,
		KindTxCheckerEnd, KindExclude, KindInclude} {
		if !k.IsChecker() {
			t.Errorf("%v should be a checker", k)
		}
	}
	for _, k := range []Kind{KindWrite, KindFlush, KindFence, KindTxBegin, KindTxAdd} {
		if k.IsChecker() {
			t.Errorf("%v should not be a checker", k)
		}
	}
}

func TestOpString(t *testing.T) {
	op := Op{Kind: KindWrite, Addr: 0x10, Size: 64, File: "foo.go", Line: 12}
	if got := op.String(); got != "write(0x10,64) @foo.go:12" {
		t.Errorf("String = %q", got)
	}
	if got := (Op{Kind: KindFence}).String(); got != "sfence" {
		t.Errorf("fence String = %q", got)
	}
	ob := Op{Kind: KindIsOrderedBefore, Addr: 1, Size: 2, Addr2: 3, Size2: 4}
	if got := ob.String(); got != "isOrderedBefore(0x1,2,0x3,4)" {
		t.Errorf("orderedBefore String = %q", got)
	}
}

func TestOpSiteUnknown(t *testing.T) {
	if got := (Op{}).Site(); got != "?" {
		t.Errorf("Site = %q, want ?", got)
	}
}

func TestBuilderTakeResets(t *testing.T) {
	b := NewBuilder(7, false)
	b.Record(Op{Kind: KindWrite, Addr: 1, Size: 1}, 0)
	b.Record(Op{Kind: KindFence}, 0)
	tr := b.Take()
	if tr.Thread != 7 || len(tr.Ops) != 2 {
		t.Fatalf("Take = %+v", tr)
	}
	if b.Len() != 0 {
		t.Fatalf("builder not reset: %d", b.Len())
	}
	b.Record(Op{Kind: KindWrite}, 0)
	if len(tr.Ops) != 2 {
		t.Fatal("new records leaked into taken trace")
	}
}

func TestBuilderCapturesSite(t *testing.T) {
	b := NewBuilder(0, true)
	b.Record(Op{Kind: KindWrite, Addr: 1, Size: 1}, 0) // captured here
	tr := b.Take()
	if !strings.Contains(tr.Ops[0].File, "trace_test.go") {
		t.Errorf("captured file = %q, want trace_test.go", tr.Ops[0].File)
	}
	if tr.Ops[0].Line == 0 {
		t.Error("line not captured")
	}
}

func TestBuilderPresetSiteKept(t *testing.T) {
	b := NewBuilder(0, true)
	b.Record(Op{Kind: KindWrite, File: "app.c", Line: 9}, 0)
	if op := b.Take().Ops[0]; op.File != "app.c" || op.Line != 9 {
		t.Errorf("preset site overwritten: %+v", op)
	}
}

func TestMultiSinkFanout(t *testing.T) {
	var a, b Builder
	m := MultiSink{&a, &b}
	m.Record(Op{Kind: KindWrite, Addr: 5, Size: 1}, 0)
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fanout lens = %d, %d", a.Len(), b.Len())
	}
}

func TestDiscard(t *testing.T) {
	Discard.Record(Op{Kind: KindWrite}, 0) // must not panic
}

func TestTraceString(t *testing.T) {
	tr := &Trace{ID: 3, Thread: 1, Ops: []Op{{Kind: KindWrite, Addr: 0x10, Size: 8}}}
	s := tr.String()
	if !strings.Contains(s, "trace 3") || !strings.Contains(s, "write(0x10,8)") {
		t.Errorf("Trace.String = %q", s)
	}
}

func TestTrimPath(t *testing.T) {
	cases := map[string]string{
		"/a/b/c/d.go": "c/d.go",
		"x/y.go":      "x/y.go",
		"y.go":        "y.go",
	}
	for in, want := range cases {
		if got := trimPath(in); got != want {
			t.Errorf("trimPath(%q) = %q, want %q", in, got, want)
		}
	}
}
