// Package trace defines the persistent-memory operation trace that flows
// from an instrumented crash-consistent program to the PMTest checking
// engine (paper §4.3).
//
// A trace is an ordered sequence of operations. Each operation carries the
// metadata the paper requires: kind, address, size, and the source location
// of the call site, so FAIL/WARN diagnostics can point at the offending
// line. Checkers are recorded inline in the trace in program order,
// exactly like PM operations.
package trace

import (
	"fmt"
	"runtime"
	"strings"
)

// Kind identifies a traced PM operation or checker.
type Kind uint8

// Operation kinds. The first group are hardware-level PM operations; the
// second are library-level transaction events; the third are the checkers
// of paper Table 2.
const (
	KindInvalid Kind = iota

	// Hardware-level operations.
	KindWrite   // store to PM
	KindWriteNT // non-temporal store (bypasses cache; still needs a fence)
	KindFlush   // clwb-style writeback of an address range
	KindFence   // sfence: orders and completes prior flushes (x86)
	KindOFence  // HOPS ofence: orders persists without forcing writeback
	KindDFence  // HOPS dfence: orders and drains all pending persists

	// Library-level transaction events.
	KindTxBegin // transaction begin (e.g. PMDK TX_BEGIN)
	KindTxEnd   // transaction end (e.g. PMDK TX_END)
	KindTxAdd   // undo-log backup of a range (e.g. PMDK TX_ADD)

	// Checkers (paper Table 2).
	KindIsPersist       // isPersist(addr, size)
	KindIsOrderedBefore // isOrderedBefore(addrA, sizeA, addrB, sizeB)
	KindTxCheckerStart  // TX_CHECKER_START
	KindTxCheckerEnd    // TX_CHECKER_END
	KindExclude         // PMTest_EXCLUDE: remove object from testing scope
	KindInclude         // PMTest_INCLUDE: add object back to testing scope

	kindMax
)

var kindNames = [...]string{
	KindInvalid:         "invalid",
	KindWrite:           "write",
	KindWriteNT:         "writeNT",
	KindFlush:           "clwb",
	KindFence:           "sfence",
	KindOFence:          "ofence",
	KindDFence:          "dfence",
	KindTxBegin:         "txBegin",
	KindTxEnd:           "txEnd",
	KindTxAdd:           "txAdd",
	KindIsPersist:       "isPersist",
	KindIsOrderedBefore: "isOrderedBefore",
	KindTxCheckerStart:  "txCheckerStart",
	KindTxCheckerEnd:    "txCheckerEnd",
	KindExclude:         "exclude",
	KindInclude:         "include",
}

// String returns the mnemonic used in trace dumps and diagnostics.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsChecker reports whether the kind is a checker rather than a PM or
// transaction operation.
func (k Kind) IsChecker() bool {
	switch k {
	case KindIsPersist, KindIsOrderedBefore, KindTxCheckerStart,
		KindTxCheckerEnd, KindExclude, KindInclude:
		return true
	}
	return false
}

// Op is a single trace entry. Addresses are offsets into the simulated
// persistent memory device. Addr2/Size2 are used only by
// isOrderedBefore, which relates two ranges.
type Op struct {
	Kind  Kind
	Addr  uint64
	Size  uint64
	Addr2 uint64
	Size2 uint64

	// File and Line locate the call site of the operation in the program
	// under test; diagnostics are reported "@file:line" (paper §4.1).
	File string
	Line int
}

// Site formats the source location, or "?" when it was not captured.
func (o Op) Site() string {
	if o.File == "" {
		return "?"
	}
	return fmt.Sprintf("%s:%d", o.File, o.Line)
}

// String renders the op like the paper's trace listings, e.g.
// "write(0x10,64) @foo.go:12".
func (o Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", o.Kind)
	switch o.Kind {
	case KindFence, KindOFence, KindDFence, KindTxBegin, KindTxEnd,
		KindTxCheckerStart, KindTxCheckerEnd:
	case KindIsOrderedBefore:
		fmt.Fprintf(&b, "(0x%x,%d,0x%x,%d)", o.Addr, o.Size, o.Addr2, o.Size2)
	default:
		fmt.Fprintf(&b, "(0x%x,%d)", o.Addr, o.Size)
	}
	if o.File != "" {
		fmt.Fprintf(&b, " @%s", o.Site())
	}
	return b.String()
}

// SpanRange ties a flight-recorder span to the op range it covers: the
// transaction spans a section carries use it so checker findings (which
// are anchored at op indices) can be parented under the transaction that
// contains them. Begin and End are inclusive op indices.
type SpanRange struct {
	Begin  int    `json:"begin"`
	End    int    `json:"end"`
	SpanID uint64 `json:"span_id"`
}

// Contains reports whether op index i falls inside the range.
func (r SpanRange) Contains(i int) bool { return i >= r.Begin && i <= r.End }

// Trace is one unit of checking work: the operations recorded between two
// PMTest_SEND_TRACE calls on one thread. Traces are independent — each
// gets its own shadow memory in the engine (paper §4.4).
type Trace struct {
	// ID is a monotonically increasing per-session identifier, assigned
	// when the trace is sent to the engine.
	ID int
	// Thread is the program thread that produced the trace.
	Thread int
	Ops    []Op

	// SpanID and TxSpans are the section's flight-recorder identity —
	// the span covering the whole section and the transaction spans with
	// the op ranges they cover. They ride along to the engine in memory
	// only (the wire codec does not serialize them) and are zero/nil
	// when no recorder is attached.
	SpanID  uint64
	TxSpans []SpanRange

	// RemoteSession and RemoteSpan are the originating client's
	// correlation identity, set node-side by the distributed checking
	// tier from the section request's session parameter and span header
	// before the trace is submitted to the hosted engine. Like SpanID
	// they are in-memory only — the wire codec never serializes them —
	// and zero for traces recorded in-process.
	RemoteSession string
	RemoteSpan    uint64
}

// String renders a compact multi-line dump of the trace.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d (thread %d, %d ops)\n", t.ID, t.Thread, len(t.Ops))
	for i, op := range t.Ops {
		fmt.Fprintf(&b, "  %4d: %s\n", i, op.String())
	}
	return b.String()
}

// Sink receives traced operations. The PMTest per-thread tracker is a
// Sink; so are the baseline checkers (pmemcheck processes ops inline).
// Instrumented substrates (the PM device, pmdk, mnemosyne, pmfs) emit
// their operations into whatever Sink is attached.
type Sink interface {
	// Record adds one operation. callerSkip counts stack frames between
	// Record's caller and the application call site to attribute
	// (0 = the immediate caller is the site).
	Record(op Op, callerSkip int)
}

// Discard is a Sink that drops everything: the "no testing tool" baseline
// configuration of the paper's benchmarks.
var Discard Sink = discard{}

type discard struct{}

func (discard) Record(Op, int) {}

// MultiSink fans one operation stream out to several sinks.
type MultiSink []Sink

// Record implements Sink.
func (m MultiSink) Record(op Op, callerSkip int) {
	for _, s := range m {
		s.Record(op, callerSkip+1)
	}
}

// Builder accumulates operations for one thread. It is not safe for
// concurrent use; each program thread owns one Builder
// (PMTest_THREAD_INIT in the paper).
type Builder struct {
	thread  int
	ops     []Op
	skip    int  // extra runtime.Caller frames to skip for location capture
	capture bool // whether to capture file:line (costs a runtime.Caller)
	// sizeHint is the largest section shipped so far; each new section's
	// op slice is preallocated to it, so a steady stream of same-shaped
	// sections (one per transaction, §4.2) costs one batch allocation per
	// section instead of the append grow ramp.
	sizeHint int
}

// NewBuilder returns a Builder for the given program thread id.
// If captureSite is true, each recorded op captures the caller's
// file:line; turning it off removes the runtime.Caller cost and is used by
// the framework-overhead benchmarks (Fig. 10b separates this cost).
func NewBuilder(thread int, captureSite bool) *Builder {
	return &Builder{thread: thread, capture: captureSite}
}

// SetCallerSkip adjusts how many additional stack frames Record skips when
// capturing the call site. Library wrappers (e.g. the pmdk shim) bump this
// so diagnostics point at application code rather than the wrapper.
func (b *Builder) SetCallerSkip(n int) { b.skip = n }

// Len returns the number of buffered operations.
func (b *Builder) Len() int { return len(b.ops) }

// Thread returns the owning thread id.
func (b *Builder) Thread() int { return b.thread }

// Record appends op, capturing the call site if enabled and not already
// set. It follows the Sink convention: callerSkip = 0 attributes Record's
// immediate caller; each wrapper frame in between adds one.
func (b *Builder) Record(op Op, callerSkip int) {
	if b.capture && op.File == "" {
		if _, file, line, ok := runtime.Caller(1 + callerSkip + b.skip); ok {
			op.File = trimPath(file)
			op.Line = line
		}
	}
	if b.ops == nil && b.sizeHint > 0 {
		b.ops = make([]Op, 0, b.sizeHint)
	}
	b.ops = append(b.ops, op)
}

// Take returns the buffered operations as a Trace and resets the builder
// for the next section (PMTest_SEND_TRACE starts a new trace).
func (b *Builder) Take() *Trace {
	t := &Trace{Thread: b.thread, Ops: b.ops}
	if n := len(b.ops); n > b.sizeHint {
		b.sizeHint = n
	}
	// Hand off the backing array and start fresh — the engine owns the
	// trace once sent; the next section preallocates from sizeHint.
	b.ops = nil
	return t
}

// trimPath shortens an absolute source path to its last two components,
// which keeps diagnostics readable ("pmdk/tx.go:57").
func trimPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return p
	}
	j := strings.LastIndexByte(p[:i], '/')
	if j < 0 {
		return p
	}
	return p[j+1:]
}
