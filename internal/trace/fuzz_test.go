package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the decoder, and anything
// it accepts must re-encode and re-decode to the same trace. The
// tight-limit pass additionally proves hostile input cannot buy a large
// allocation: whatever the length prefix claims, decoding under small
// limits either succeeds within them or returns a typed *LimitError.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	Encode(&seed, &Trace{ID: 1, Thread: 2, Ops: []Op{
		{Kind: KindWrite, Addr: 0x10, Size: 64, File: "a.go", Line: 3},
		{Kind: KindFence},
	}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 84, 77, 80})
	// A well-formed header whose op count claims 2^40 ops: the classic
	// corrupt-length-prefix OOM attempt.
	var huge bytes.Buffer
	binary.Write(&huge, binary.LittleEndian, uint32(encMagic))
	binary.Write(&huge, binary.LittleEndian, uint64(7)) // id
	binary.Write(&huge, binary.LittleEndian, uint64(0)) // thread
	binary.Write(&huge, binary.LittleEndian, uint64(1)<<40)
	f.Add(huge.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Hostile-input pass: tiny limits must hold whatever the bytes say.
		lim := Limits{MaxOps: 8, MaxBytes: 1024}
		if tr, err := DecodeLimited(bytes.NewReader(data), lim); err == nil {
			if len(tr.Ops) > lim.MaxOps {
				t.Fatalf("decode under MaxOps=%d returned %d ops", lim.MaxOps, len(tr.Ops))
			}
		} else {
			var le *LimitError
			if errors.As(err, &le) && le.What == "ops" && le.Got <= uint64(lim.MaxOps) {
				t.Fatalf("limit error for %d ops under MaxOps=%d", le.Got, lim.MaxOps)
			}
		}
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(tr2.Ops) != len(tr.Ops) || tr2.ID != tr.ID {
			t.Fatal("round trip after decode not stable")
		}
	})
}
