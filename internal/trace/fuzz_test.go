package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the decoder, and anything
// it accepts must re-encode and re-decode to the same trace.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	Encode(&seed, &Trace{ID: 1, Thread: 2, Ops: []Op{
		{Kind: KindWrite, Addr: 0x10, Size: 64, File: "a.go", Line: 3},
		{Kind: KindFence},
	}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 84, 77, 80})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(tr2.Ops) != len(tr.Ops) || tr2.ID != tr.ID {
			t.Fatal("round trip after decode not stable")
		}
	})
}
