// Excluded under -race: the race runtime perturbs sync.Pool retention,
// making allocation counts meaningless.

//go:build !race

package trace

import (
	"io"
	"testing"
)

// TestEncodeAllocCeiling pins allocs per serialized section: Encode
// builds the frame in a pooled buffer and issues one Write, so steady
// state is allocation-free (the pre-pool baseline paid a bufio.Writer
// plus escape-analysis scratch per call).
func TestEncodeAllocCeiling(t *testing.T) {
	tr := sampleTrace()
	const ceiling = 2.0
	allocs := testing.AllocsPerRun(100, func() {
		if err := Encode(io.Discard, tr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > ceiling {
		t.Fatalf("Encode: %.1f allocs/op, ceiling %v", allocs, ceiling)
	}
}

// TestBuilderSectionBatching: after one section has been shipped, the
// next same-shaped section costs a single batched op-slice allocation
// instead of the append grow ramp.
func TestBuilderSectionBatching(t *testing.T) {
	b := NewBuilder(0, false)
	record := func(n int) {
		for i := 0; i < n; i++ {
			b.Record(Op{Kind: KindWrite, Addr: uint64(i) * 64, Size: 64}, 0)
		}
	}
	record(100)
	if got := b.Take(); len(got.Ops) != 100 {
		t.Fatalf("first section: %d ops", len(got.Ops))
	}
	allocs := testing.AllocsPerRun(20, func() {
		record(100)
		if got := b.Take(); len(got.Ops) != 100 {
			t.Fatal("short section")
		}
	})
	// One allocation for the op slice, one for the Trace header.
	if allocs > 2 {
		t.Fatalf("steady-state section: %.1f allocs, want <= 2", allocs)
	}
}
