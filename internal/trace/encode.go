package trace

// Binary trace serialization. PMTest's decoupling means a trace is a
// self-contained unit of checking work; serializing it makes the
// decoupling span processes and time — record a production run online,
// replay it through the checking engine (or cmd/pmtrace) offline. The
// format is a simple length-prefixed little-endian encoding with a magic
// header and per-op source-site strings.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// encMagic identifies a serialized trace stream ("PMTR", version 1 in
// the low byte).
const encMagic = 0x504D5401

// ErrBadTrace is returned when decoding malformed data.
var ErrBadTrace = errors.New("trace: malformed serialized trace")

// maxDecodeOps bounds decoding so corrupt headers cannot trigger huge
// allocations.
const maxDecodeOps = 64 << 20

// Encode writes the trace to w in the binary format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := put32(encMagic); err != nil {
		return err
	}
	if err := put64(uint64(t.ID)); err != nil {
		return err
	}
	if err := put64(uint64(t.Thread)); err != nil {
		return err
	}
	if err := put64(uint64(len(t.Ops))); err != nil {
		return err
	}
	for _, op := range t.Ops {
		if err := bw.WriteByte(byte(op.Kind)); err != nil {
			return err
		}
		for _, v := range [...]uint64{op.Addr, op.Size, op.Addr2, op.Size2} {
			if err := put64(v); err != nil {
				return err
			}
		}
		if err := put32(uint32(op.Line)); err != nil {
			return err
		}
		if len(op.File) > 0xFFFF {
			return fmt.Errorf("trace: file name too long (%d bytes)", len(op.File))
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(op.File)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := bw.WriteString(op.File); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads one trace in the Encode format.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != encMagic {
		return nil, ErrBadTrace
	}
	id, err := get64()
	if err != nil {
		return nil, ErrBadTrace
	}
	thread, err := get64()
	if err != nil {
		return nil, ErrBadTrace
	}
	n, err := get64()
	if err != nil {
		return nil, ErrBadTrace
	}
	if n > maxDecodeOps {
		return nil, fmt.Errorf("trace: op count %d exceeds limit", n)
	}
	t := &Trace{ID: int(id), Thread: int(thread), Ops: make([]Op, 0, n)}
	for i := uint64(0); i < n; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, ErrBadTrace
		}
		if Kind(kind) >= kindMax || Kind(kind) == KindInvalid {
			return nil, fmt.Errorf("trace: invalid op kind %d at op %d", kind, i)
		}
		var vals [4]uint64
		for j := range vals {
			if vals[j], err = get64(); err != nil {
				return nil, ErrBadTrace
			}
		}
		line, err := get32()
		if err != nil {
			return nil, ErrBadTrace
		}
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return nil, ErrBadTrace
		}
		fileLen := binary.LittleEndian.Uint16(scratch[:2])
		var file string
		if fileLen > 0 {
			buf := make([]byte, fileLen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, ErrBadTrace
			}
			file = string(buf)
		}
		t.Ops = append(t.Ops, Op{
			Kind: Kind(kind),
			Addr: vals[0], Size: vals[1], Addr2: vals[2], Size2: vals[3],
			File: file, Line: int(line),
		})
	}
	return t, nil
}

// EncodeAll writes several traces back to back.
func EncodeAll(w io.Writer, traces []*Trace) error {
	for _, t := range traces {
		if err := Encode(w, t); err != nil {
			return err
		}
	}
	return nil
}

// DecodeAll reads traces until EOF.
func DecodeAll(r io.Reader) ([]*Trace, error) {
	br := bufio.NewReader(r)
	var out []*Trace
	for {
		if _, err := br.Peek(1); err == io.EOF {
			return out, nil
		}
		t, err := Decode(br)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
