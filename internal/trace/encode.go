package trace

// Binary trace serialization. PMTest's decoupling means a trace is a
// self-contained unit of checking work; serializing it makes the
// decoupling span processes and time — record a production run online,
// replay it through the checking engine (or cmd/pmtrace) offline. The
// format is a simple length-prefixed little-endian encoding with a magic
// header and per-op source-site strings.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// encMagic identifies a serialized trace stream ("PMTR", version 1 in
// the low byte).
const encMagic = 0x504D5401

// ErrBadTrace is returned when decoding malformed data.
var ErrBadTrace = errors.New("trace: malformed serialized trace")

// Limits bounds what one decoded trace section may cost. A network-facing
// decoder (the pmtestd checking service) must not be OOM-able by a single
// corrupt or hostile length prefix, so both the op count and the total
// wire bytes a section may occupy are capped. The zero value of either
// field means "use the default".
type Limits struct {
	// MaxOps caps the number of operations in one section.
	MaxOps int
	// MaxBytes caps the total wire size of one section (fixed-width op
	// fields plus file-name strings).
	MaxBytes int64
}

// DefaultLimits is what Decode/DecodeAll enforce: generous enough for
// any section the harness produces (the monolithic-trace ablation ships
// hundreds of thousands of ops), far below "allocate the machine away".
var DefaultLimits = Limits{MaxOps: 16 << 20, MaxBytes: 1 << 30}

// WithDefaults fills zero fields from DefaultLimits.
func (l Limits) WithDefaults() Limits {
	if l.MaxOps <= 0 {
		l.MaxOps = DefaultLimits.MaxOps
	}
	if l.MaxBytes <= 0 {
		l.MaxBytes = DefaultLimits.MaxBytes
	}
	return l
}

// LimitError reports a section that exceeds a decode limit. It is a
// typed refusal — the input may be well-formed, merely bigger than the
// receiver is willing to materialize — so servers can map it to a
// permanent "refused" response instead of a retryable decode failure.
type LimitError struct {
	What string // "ops" or "bytes"
	Got  uint64 // claimed or accumulated size
	Max  uint64 // the configured cap
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("trace: section %s %d exceeds limit %d", e.What, e.Got, e.Max)
}

// allocChunkOps caps the op capacity reserved up front from a wire
// length prefix. Anything the prefix claims beyond this must be backed
// by actual input bytes before more memory is committed, so a corrupt
// prefix costs at most one chunk, not prefix*sizeof(Op).
const allocChunkOps = 4096

// opWireSize is the fixed per-op wire size: kind byte, four 64-bit
// fields, the 32-bit line and the 16-bit file-length prefix.
const opWireSize = 1 + 4*8 + 4 + 2

// encBufPool recycles encode buffers. Serialization happens once per
// shipped section on the program thread (Config.RecordTo), so building
// the whole frame in a reused buffer and issuing a single Write keeps
// recording allocation-free at steady state.
var encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Encode writes the trace to w in the binary format.
func Encode(w io.Writer, t *Trace) error {
	bp := encBufPool.Get().(*[]byte)
	defer encBufPool.Put(bp)
	b := (*bp)[:0]
	if need := 4 + 3*8 + len(t.Ops)*opWireSize; cap(b) < need {
		b = make([]byte, 0, need)
	}
	b = binary.LittleEndian.AppendUint32(b, encMagic)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.ID))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.Thread))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(t.Ops)))
	for _, op := range t.Ops {
		if len(op.File) > 0xFFFF {
			return fmt.Errorf("trace: file name too long (%d bytes)", len(op.File))
		}
		b = append(b, byte(op.Kind))
		b = binary.LittleEndian.AppendUint64(b, op.Addr)
		b = binary.LittleEndian.AppendUint64(b, op.Size)
		b = binary.LittleEndian.AppendUint64(b, op.Addr2)
		b = binary.LittleEndian.AppendUint64(b, op.Size2)
		b = binary.LittleEndian.AppendUint32(b, uint32(op.Line))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(op.File)))
		b = append(b, op.File...)
	}
	*bp = b
	_, err := w.Write(b)
	return err
}

// Decode reads one trace in the Encode format under DefaultLimits.
func Decode(r io.Reader) (*Trace, error) {
	return DecodeLimited(r, DefaultLimits)
}

// DecodeLimited reads one trace in the Encode format, refusing sections
// that exceed the given limits with a *LimitError. Allocation is capped
// independently of the wire length prefix: capacity is committed in
// chunks as real input bytes arrive, so a corrupt or hostile prefix
// cannot trigger a huge up-front allocation.
func DecodeLimited(r io.Reader, lim Limits) (*Trace, error) {
	lim = lim.WithDefaults()
	br := bufio.NewReader(r)
	var scratch [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != encMagic {
		return nil, ErrBadTrace
	}
	id, err := get64()
	if err != nil {
		return nil, ErrBadTrace
	}
	thread, err := get64()
	if err != nil {
		return nil, ErrBadTrace
	}
	n, err := get64()
	if err != nil {
		return nil, ErrBadTrace
	}
	if n > uint64(lim.MaxOps) {
		return nil, &LimitError{What: "ops", Got: n, Max: uint64(lim.MaxOps)}
	}
	if wire := n * opWireSize; wire > uint64(lim.MaxBytes) {
		return nil, &LimitError{What: "bytes", Got: wire, Max: uint64(lim.MaxBytes)}
	}
	// Reserve at most one chunk up front; beyond that, append grows the
	// slice only as decoded ops are actually backed by input bytes.
	cap0 := n
	if cap0 > allocChunkOps {
		cap0 = allocChunkOps
	}
	wireBytes := int64(4 + 3*8)
	t := &Trace{ID: int(id), Thread: int(thread), Ops: make([]Op, 0, cap0)}
	for i := uint64(0); i < n; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, ErrBadTrace
		}
		if Kind(kind) >= kindMax || Kind(kind) == KindInvalid {
			return nil, fmt.Errorf("trace: invalid op kind %d at op %d", kind, i)
		}
		var vals [4]uint64
		for j := range vals {
			if vals[j], err = get64(); err != nil {
				return nil, ErrBadTrace
			}
		}
		line, err := get32()
		if err != nil {
			return nil, ErrBadTrace
		}
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return nil, ErrBadTrace
		}
		fileLen := binary.LittleEndian.Uint16(scratch[:2])
		if wireBytes += opWireSize + int64(fileLen); wireBytes > lim.MaxBytes {
			return nil, &LimitError{What: "bytes", Got: uint64(wireBytes), Max: uint64(lim.MaxBytes)}
		}
		var file string
		if fileLen > 0 {
			buf := make([]byte, fileLen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, ErrBadTrace
			}
			file = string(buf)
		}
		t.Ops = append(t.Ops, Op{
			Kind: Kind(kind),
			Addr: vals[0], Size: vals[1], Addr2: vals[2], Size2: vals[3],
			File: file, Line: int(line),
		})
	}
	return t, nil
}

// EncodeAll writes several traces back to back.
func EncodeAll(w io.Writer, traces []*Trace) error {
	for _, t := range traces {
		if err := Encode(w, t); err != nil {
			return err
		}
	}
	return nil
}

// DecodeAll reads traces until EOF under DefaultLimits.
func DecodeAll(r io.Reader) ([]*Trace, error) {
	return DecodeAllLimited(r, DefaultLimits)
}

// DecodeAllLimited reads traces until EOF, enforcing the per-section
// limits on every section.
func DecodeAllLimited(r io.Reader, lim Limits) ([]*Trace, error) {
	br := bufio.NewReader(r)
	var out []*Trace
	for {
		if _, err := br.Peek(1); err == io.EOF {
			return out, nil
		}
		t, err := DecodeLimited(br, lim)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
