package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		ID: 7, Thread: 3,
		Ops: []Op{
			{Kind: KindWrite, Addr: 0x10, Size: 64, File: "app.go", Line: 12},
			{Kind: KindFlush, Addr: 0x10, Size: 64},
			{Kind: KindFence},
			{Kind: KindIsOrderedBefore, Addr: 1, Size: 2, Addr2: 3, Size2: 4,
				File: "checker.go", Line: 99},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleTrace()
	if err := Encode(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	var buf bytes.Buffer
	t1, t2 := sampleTrace(), sampleTrace()
	t2.ID = 8
	if err := EncodeAll(&buf, []*Trace{t1, t2}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 7 || got[1].ID != 8 {
		t.Fatalf("DecodeAll = %v", got)
	}
}

func TestDecodeEmpty(t *testing.T) {
	got, err := DecodeAll(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("DecodeAll(empty) = %v, %v", got, err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	Encode(&buf, sampleTrace())
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) - 3} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecodeInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	tr := sampleTrace()
	Encode(&buf, tr)
	b := buf.Bytes()
	// The first op kind byte sits right after the 28-byte header.
	b[28] = 200
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("invalid kind not rejected")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{ID: rng.Intn(1 << 20), Thread: rng.Intn(64)}
		kinds := []Kind{KindWrite, KindWriteNT, KindFlush, KindFence, KindOFence,
			KindDFence, KindTxBegin, KindTxEnd, KindTxAdd, KindIsPersist,
			KindIsOrderedBefore, KindTxCheckerStart, KindTxCheckerEnd,
			KindExclude, KindInclude}
		for i := 0; i < int(n); i++ {
			op := Op{
				Kind: kinds[rng.Intn(len(kinds))],
				Addr: rng.Uint64(), Size: rng.Uint64(),
				Addr2: rng.Uint64(), Size2: rng.Uint64(),
				Line: rng.Intn(1 << 16),
			}
			if rng.Intn(2) == 0 {
				op.File = "some/file.go"
			}
			tr.Ops = append(tr.Ops, op)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(got.Ops) == 0 && len(tr.Ops) == 0 {
			return got.ID == tr.ID && got.Thread == tr.Thread
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
