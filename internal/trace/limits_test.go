package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
)

// header builds a valid stream header claiming n ops.
func header(n uint64) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(encMagic))
	binary.Write(&b, binary.LittleEndian, uint64(1)) // id
	binary.Write(&b, binary.LittleEndian, uint64(0)) // thread
	binary.Write(&b, binary.LittleEndian, n)
	return b.Bytes()
}

// TestDecodeRefusesHugeOpCount: a corrupt length prefix claiming more
// ops than the limit is refused with a typed *LimitError before any
// per-op allocation happens.
func TestDecodeRefusesHugeOpCount(t *testing.T) {
	_, err := DecodeLimited(bytes.NewReader(header(1<<40)), Limits{MaxOps: 1 << 10})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.What != "ops" || le.Got != 1<<40 || le.Max != 1<<10 {
		t.Fatalf("unexpected limit error: %+v", le)
	}
	if le.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestDecodeRefusesHugeByteBudget: even under the default op cap, a
// section whose fixed-width wire size alone exceeds MaxBytes is refused
// from the header.
func TestDecodeRefusesHugeByteBudget(t *testing.T) {
	_, err := DecodeLimited(bytes.NewReader(header(1<<20)), Limits{MaxBytes: 1 << 16})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "bytes" {
		t.Fatalf("want bytes *LimitError, got %v", err)
	}
}

// TestDecodeByteLimitCountsFileStrings: the byte budget covers the
// variable-length site strings, not just the fixed op fields.
func TestDecodeByteLimitCountsFileStrings(t *testing.T) {
	long := string(bytes.Repeat([]byte{'f'}, 60000))
	var buf bytes.Buffer
	if err := Encode(&buf, &Trace{Ops: []Op{
		{Kind: KindWrite, Addr: 1, Size: 8, File: long, Line: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLimited(bytes.NewReader(buf.Bytes()), Limits{MaxBytes: 4096}); err == nil {
		t.Fatal("60000-byte site string decoded under a 4096-byte budget")
	} else {
		var le *LimitError
		if !errors.As(err, &le) || le.What != "bytes" {
			t.Fatalf("want bytes *LimitError, got %v", err)
		}
	}
	// The same section decodes fine under the defaults.
	tr, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops[0].File != long {
		t.Fatal("site string corrupted by limited decode path")
	}
}

// TestDecodeHostilePrefixAllocation: a stream that claims 2^40 ops but
// carries none must not cost anywhere near 2^40 op slots — the decoder
// commits capacity chunk-wise as real bytes arrive.
func TestDecodeHostilePrefixAllocation(t *testing.T) {
	data := header(1 << 40)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := Decode(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated hostile stream decoded successfully")
	}
	// 2^40 claimed ops would need tens of TB; a chunk is ~4096*56 bytes.
	// Allow generous slack for test-harness noise.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Fatalf("hostile prefix cost %d bytes of allocation", grew)
	}
}

// TestDecodeAllLimited: the streaming variant enforces the same caps on
// every section.
func TestDecodeAllLimited(t *testing.T) {
	var buf bytes.Buffer
	ok := &Trace{Ops: []Op{{Kind: KindFence}}}
	if err := EncodeAll(&buf, []*Trace{ok, ok}); err != nil {
		t.Fatal(err)
	}
	buf.Write(header(1 << 30)) // third section: hostile
	out, err := DecodeAllLimited(&buf, Limits{MaxOps: 16})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("want the 2 good sections back, got %d", len(out))
	}
}

// TestDecodeLimitedRoundTrip: limits that fit the data are invisible.
func TestDecodeLimitedRoundTrip(t *testing.T) {
	in := &Trace{ID: 9, Thread: 3, Ops: []Op{
		{Kind: KindWrite, Addr: 0x40, Size: 64, File: "x.go", Line: 12},
		{Kind: KindFlush, Addr: 0x40, Size: 64},
		{Kind: KindFence},
	}}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeLimited(&buf, Limits{MaxOps: 3, MaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ops) != 3 || out.Ops[0].File != "x.go" || out.ID != 9 {
		t.Fatalf("round trip mangled: %+v", out)
	}
}
