package mnemosyne

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

const devSize = 1 << 22

func newRegion(t testing.TB, sink trace.Sink) *Region {
	t.Helper()
	dev := pmem.New(devSize, sink)
	r, err := Create(dev, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDurableCommitApplies(t *testing.T) {
	r := newRegion(t, nil)
	off := r.DataOff()
	err := r.Durable(func(w *TxWriter) error {
		return w.Write64(off, 777)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Device().Load64(off); got != 777 {
		t.Fatalf("value = %d, want 777", got)
	}
	// Durable against any crash: the image alone must recover to 777.
	p2, _, err := Open(pmem.FromImage(r.Device().Image(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Device().Load64(off); got != 777 {
		t.Fatalf("durable value = %d, want 777", got)
	}
}

func TestAbortDiscards(t *testing.T) {
	r := newRegion(t, nil)
	off := r.DataOff()
	r.Durable(func(w *TxWriter) error { return w.Write64(off, 1) })
	err := r.Durable(func(w *TxWriter) error {
		if err := w.Write64(off, 2); err != nil {
			return err
		}
		return errors.New("abort")
	})
	if err == nil {
		t.Fatal("expected abort error")
	}
	if got := r.Device().Load64(off); got != 1 {
		t.Fatalf("aborted write applied: %d", got)
	}
}

func TestNoNesting(t *testing.T) {
	r := newRegion(t, nil)
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.Begin(); !errors.Is(err, ErrNested) {
		t.Fatalf("nested Begin: %v", err)
	}
	r.Abort()
}

func TestLogFull(t *testing.T) {
	dev := pmem.New(devSize, nil)
	r, err := Create(dev, 128)
	if err != nil {
		t.Fatal(err)
	}
	r.Begin()
	defer r.Abort()
	big := make([]byte, 256)
	if err := r.LogAppend(r.DataOff(), big); !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestOpenRequiresMagic(t *testing.T) {
	if _, _, err := Open(pmem.New(devSize, nil)); !errors.Is(err, ErrNotARegion) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryReplaysSealedLog(t *testing.T) {
	// Crash after seal but before in-place apply: recovery must replay.
	r := newRegion(t, nil)
	off := r.DataOff()
	r.Begin()
	var b [8]byte
	b[0] = 99
	r.LogAppend(off, b[:])
	r.LogFlush()
	// Manually seal (as Commit would) and crash before applying.
	r.dev.Store64(offLogLen, 1)
	r.dev.PersistBarrier(offLogLen, 8)
	r.dev.Store64(offSealed, 1)
	r.dev.PersistBarrier(offSealed, 8)
	img := r.Device().Image()
	r2, info, err := Open(pmem.FromImage(img, nil))
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 1 {
		t.Fatalf("Replayed = %d, want 1", info.Replayed)
	}
	if got := r2.Device().Load8(off); got != 99 {
		t.Fatalf("replayed value = %d, want 99", got)
	}
}

func TestRecoveryDiscardsUnsealedLog(t *testing.T) {
	r := newRegion(t, nil)
	off := r.DataOff()
	r.Begin()
	var b [8]byte
	b[0] = 55
	r.LogAppend(off, b[:])
	r.LogFlush()
	// Publish count but never seal: tx did not commit.
	r.dev.Store64(offLogLen, 1)
	r.dev.PersistBarrier(offLogLen, 8)
	img := r.Device().Image()
	r2, info, err := Open(pmem.FromImage(img, nil))
	if err != nil {
		t.Fatal(err)
	}
	if info.Discarded != 1 || info.Replayed != 0 {
		t.Fatalf("info = %+v, want 1 discarded", info)
	}
	if got := r2.Device().Load8(off); got != 0 {
		t.Fatalf("discarded tx applied: %d", got)
	}
}

func TestCommittedSurvivesRandomCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := newRegion(t, nil)
	off := r.DataOff()
	r.Durable(func(w *TxWriter) error { return w.Write64(off, 4242) })
	for i := 0; i < 30; i++ {
		img := r.Device().SampleCrash(rng, pmem.CrashOptions{})
		r2, _, err := Open(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if got := r2.Device().Load64(off); got != 4242 {
			t.Fatalf("sample %d: committed value lost (%d)", i, got)
		}
	}
}

func TestGroundTruthSkipApplyFlushLosesData(t *testing.T) {
	// Truncating the log before the in-place updates are durable loses a
	// committed transaction in some crash state.
	rng := rand.New(rand.NewSource(6))
	broken := false
	for i := 0; i < 60 && !broken; i++ {
		r := newRegion(t, nil)
		r.SetBugs(Bugs{SkipApplyFlush: true})
		off := r.DataOff()
		r.Durable(func(w *TxWriter) error { return w.Write64(off, 31337) })
		img := r.Device().SampleCrash(rng, pmem.CrashOptions{})
		r2, _, err := Open(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if r2.Device().Load64(off) != 31337 {
			broken = true
		}
	}
	if !broken {
		t.Fatal("SkipApplyFlush never lost data — ground truth broken")
	}
}

// --- Engine integration -----------------------------------------------------

type recorder struct{ ops *[]trace.Op }

func (r recorder) Record(op trace.Op, _ int) { *r.ops = append(*r.ops, op) }

func runTx(t *testing.T, bugs Bugs) core.Report {
	t.Helper()
	var ops []trace.Op
	r := newRegion(t, recorder{&ops})
	r.SetBugs(bugs)
	r.SetAnnotations(true)
	off := r.DataOff()
	ops = ops[:0]
	if err := r.Durable(func(w *TxWriter) error { return w.Write64(off, 1) }); err != nil {
		t.Fatal(err)
	}
	return core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
}

func TestEngineCleanCommit(t *testing.T) {
	if r := runTx(t, Bugs{}); !r.Clean() {
		t.Fatalf("clean commit flagged: %s", r.Summary())
	}
}

func TestEngineSkipLogFlush(t *testing.T) {
	r := runTx(t, Bugs{SkipLogFlush: true})
	if !r.HasCode(core.CodeOrderViolation) {
		t.Fatalf("unflushed entries before seal must FAIL: %s", r.Summary())
	}
}

func TestEngineSkipSealFence(t *testing.T) {
	r := runTx(t, Bugs{SkipSealFence: true})
	if !r.HasCode(core.CodeNotPersisted) {
		t.Fatalf("unfenced seal must FAIL isPersist: %s", r.Summary())
	}
}

func TestEngineSkipApplyFlush(t *testing.T) {
	r := runTx(t, Bugs{SkipApplyFlush: true})
	if !r.HasCode(core.CodeNotPersisted) {
		t.Fatalf("unflushed in-place updates must FAIL: %s", r.Summary())
	}
}

func TestEngineDoubleApplyFlush(t *testing.T) {
	r := runTx(t, Bugs{DoubleApplyFlush: true})
	if !r.HasCode(core.CodeDuplicateWriteback) {
		t.Fatalf("double apply flush must WARN: %s", r.Summary())
	}
}

func TestQuickDurableMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRegion(t, nil)
		base := r.DataOff()
		model := map[uint64]uint64{}
		for i := 0; i < 15; i++ {
			slot := base + uint64(rng.Intn(8))*64
			val := rng.Uint64()
			abort := rng.Intn(4) == 0
			r.Durable(func(w *TxWriter) error {
				if err := w.Write64(slot, val); err != nil {
					return err
				}
				if abort {
					return errors.New("abort")
				}
				return nil
			})
			if !abort {
				model[slot] = val
			}
		}
		// Durable view must match the model after reopening from image.
		r2, _, err := Open(pmem.FromImage(r.Device().Image(), nil))
		if err != nil {
			return false
		}
		for slot, val := range model {
			if r2.Device().Load64(slot) != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
