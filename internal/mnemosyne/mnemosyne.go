// Package mnemosyne is a Mnemosyne-like lightweight persistent memory
// library built on the simulated PM device, substituting for the real
// Mnemosyne the paper evaluates under Memcached (§6.2.2, Fig. 2a).
//
// Unlike pmdk's undo logging, durable transactions here use a REDO log:
// every write inside a transaction is appended to a persistent log
// (LogAppend), the log is made durable (LogFlush), a commit record seals
// it, and only then are the writes applied in place. Recovery replays a
// sealed log forward; an unsealed log is discarded. The two libraries
// therefore impose different persist-ordering obligations — exactly the
// diversity of CCS stacks PMTest's flexibility argument rests on (Fig. 2).
package mnemosyne

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// Region layout:
//
//	0    magic
//	8    log head: number of valid entries
//	16   log sealed flag (commit record)
//	64   log area (LogSize bytes)
//	...  data area
const (
	offMagic   = 0
	offLogLen  = 8
	offSealed  = 16
	offLogArea = 64

	magic = 0x4D4E454D4F53594E // "MNEMOSYN"

	entryHeader = 16 // target offset + size
)

// DefaultLogSize is the default redo-log area size.
const DefaultLogSize = 1 << 20

// Bugs are fault-injection switches for the synthetic bug catalog.
type Bugs struct {
	// SkipLogFlush omits the per-entry writeback in LogAppend (ordering
	// bug: the seal may persist before the entries it covers, so recovery
	// can replay garbage).
	SkipLogFlush bool
	// SkipSealFence omits the fence after the commit record (completion
	// bug: the transaction may not be durable when Commit returns).
	SkipSealFence bool
	// SkipApplyFlush omits the writeback of in-place updates before the
	// log is truncated (ordering bug: the truncation can persist while the
	// updates do not, losing a committed transaction).
	SkipApplyFlush bool
	// DoubleApplyFlush flushes the same in-place update twice
	// (performance bug: duplicate writeback).
	DoubleApplyFlush bool
}

// Region is a persistent region with durable-transaction support. Not
// safe for concurrent use; Memcached shards regions per thread.
type Region struct {
	dev      *pmem.Device
	logSize  uint64
	dataOff  uint64
	bugs     Bugs
	annotate bool

	inTx    bool
	tail    uint64 // append offset in the log area
	count   uint64 // entries in the current transaction
	pending []entry
}

type entry struct {
	pos  uint64 // entry position in the log
	off  uint64 // target offset
	size uint64
}

// ErrNotARegion is returned by Open on an unformatted device.
var ErrNotARegion = errors.New("mnemosyne: device does not contain a region")

// DataStart returns the first data offset for the given log size.
func DataStart(logSize uint64) uint64 {
	return (offLogArea + logSize + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
}

// Create formats a region. logSize <= 0 selects DefaultLogSize.
func Create(dev *pmem.Device, logSize uint64) (*Region, error) {
	if logSize == 0 {
		logSize = DefaultLogSize
	}
	if dev.Size() < DataStart(logSize)+pmem.LineSize {
		return nil, fmt.Errorf("mnemosyne: device too small for log size %d", logSize)
	}
	r := &Region{dev: dev, logSize: logSize, dataOff: DataStart(logSize)}
	dev.Store64(offLogLen, 0)
	dev.Store64(offSealed, 0)
	// The log size lives next to the sealed word so Open can find it.
	dev.Store64(offSealed+8, logSize)
	dev.PersistBarrier(offLogLen, 24)
	dev.Store64(offMagic, magic)
	dev.PersistBarrier(offMagic, 8)
	return r, nil
}

// Open attaches to a region, replaying a sealed log or discarding an
// unsealed one.
func Open(dev *pmem.Device) (*Region, *RecoveryInfo, error) {
	if dev.Load64(offMagic) != magic {
		return nil, nil, ErrNotARegion
	}
	logSize := dev.Load64(offSealed + 8)
	if logSize == 0 || DataStart(logSize) > dev.Size() {
		return nil, nil, fmt.Errorf("mnemosyne: corrupt header (log size %d)", logSize)
	}
	r := &Region{dev: dev, logSize: logSize, dataOff: DataStart(logSize)}
	info := r.recover()
	return r, info, nil
}

// RecoveryInfo reports what recovery did.
type RecoveryInfo struct {
	// Replayed is the number of redo entries applied (sealed log).
	Replayed int
	// Discarded is the number of entries dropped (unsealed log).
	Discarded int
}

func (r *Region) recover() *RecoveryInfo {
	info := &RecoveryInfo{}
	count := r.dev.Load64(offLogLen)
	sealed := r.dev.Load64(offSealed)
	if count == 0 {
		return info
	}
	if sealed != 1 {
		// Unsealed: the transaction never committed; discard.
		info.Discarded = int(count)
	} else {
		pos := uint64(offLogArea)
		for i := uint64(0); i < count; i++ {
			off := r.dev.Load64(pos)
			size := r.dev.Load64(pos + 8)
			data := r.dev.LoadBytes(pos+entryHeader, size)
			r.dev.Store(off, data)
			r.dev.CLWB(off, size)
			pos += align8(entryHeader + size)
			info.Replayed++
		}
		r.dev.SFence()
	}
	r.dev.Store64(offSealed, 0)
	r.dev.PersistBarrier(offSealed, 8)
	r.dev.Store64(offLogLen, 0)
	r.dev.PersistBarrier(offLogLen, 8)
	return info
}

// SetBugs installs fault-injection switches.
func (r *Region) SetBugs(b Bugs) { r.bugs = b }

// SetAnnotations enables the library-developer checkers (paper §7.2).
func (r *Region) SetAnnotations(on bool) { r.annotate = on }

// Device returns the underlying device.
func (r *Region) Device() *pmem.Device { return r.dev }

// DataOff returns the first usable data offset.
func (r *Region) DataOff() uint64 { return r.dataOff }

// MetaRange returns the metadata range (header + redo log) for PMTest
// exclusion.
func (r *Region) MetaRange() (addr, size uint64) { return 0, r.dataOff }

// ErrLogFull is returned when the redo log cannot hold another entry.
var ErrLogFull = errors.New("mnemosyne: redo log full")

// ErrNested is returned by Begin when a transaction is already open
// (Mnemosyne durable transactions do not nest).
var ErrNested = errors.New("mnemosyne: transactions do not nest")

// Begin opens a durable transaction.
func (r *Region) Begin() error {
	if r.inTx {
		return ErrNested
	}
	r.inTx = true
	r.tail = offLogArea
	r.count = 0
	r.pending = r.pending[:0]
	metaAddr, metaSize := r.MetaRange()
	r.dev.RecordOp(trace.Op{Kind: trace.KindExclude, Addr: metaAddr, Size: metaSize}, 1)
	r.dev.RecordOp(trace.Op{Kind: trace.KindTxBegin}, 1)
	return nil
}

// LogAppend records a transactional write of data at off: the new value
// goes to the redo log now and in place at commit (Fig. 2a's
// log_append).
//
//pmlint:ignore crossflush the fence is LogFlush/Commit's job (split-phase protocol); SkipLogFlush is an injected bug
func (r *Region) LogAppend(off uint64, data []byte) error {
	if !r.inTx {
		return errors.New("mnemosyne: LogAppend outside transaction")
	}
	size := uint64(len(data))
	need := align8(entryHeader + size)
	if r.tail+need > offLogArea+r.logSize {
		return ErrLogFull
	}
	buf := make([]byte, entryHeader+size)
	binary.LittleEndian.PutUint64(buf[0:8], off)
	binary.LittleEndian.PutUint64(buf[8:16], size)
	copy(buf[entryHeader:], data)
	r.dev.StoreSkip(r.tail, buf, 1)
	if !r.bugs.SkipLogFlush {
		r.dev.CLWBSkip(r.tail, uint64(len(buf)), 1)
	}
	r.pending = append(r.pending, entry{pos: r.tail, off: off, size: size})
	r.tail += need
	r.count++
	return nil
}

// LogFlush makes all appended entries durable (Fig. 2a's log_flush).
func (r *Region) LogFlush() {
	r.dev.SFenceSkip(1)
}

// Commit seals the log, making the transaction durable, then applies the
// writes in place. Ordering obligations:
//
//  1. entries durable (LogFlush) before the seal,
//  2. seal durable (fence) before Commit returns,
//  3. in-place writes flushed afterwards so the log can be truncated.
//
//pmlint:ignore missedflush,doubleflush,checkermisuse SkipApplyFlush/DoubleApplyFlush are injected bugs; the matching TxBegin lives in Begin
func (r *Region) Commit() error {
	if !r.inTx {
		return errors.New("mnemosyne: Commit outside transaction")
	}
	r.LogFlush()
	// Publish entry count + seal.
	r.dev.Store64(offLogLen, r.count)
	r.dev.CLWBSkip(offLogLen, 8, 1)
	r.dev.SFenceSkip(1)
	r.dev.Store64(offSealed, 1)
	r.dev.CLWBSkip(offSealed, 8, 1)
	if !r.bugs.SkipSealFence {
		r.dev.SFenceSkip(1)
	}
	if r.annotate {
		// Every log entry written this transaction must persist strictly
		// before the seal, and the seal must be durable when Commit
		// reports success.
		r.dev.RecordOp(trace.Op{
			Kind: trace.KindIsOrderedBefore,
			Addr: offLogArea, Size: r.tail - offLogArea,
			Addr2: offSealed, Size2: 8,
		}, 1)
		r.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist, Addr: offSealed, Size: 8}, 1)
	}
	// Apply in place and truncate the log.
	for _, e := range r.pending {
		data := r.dev.LoadBytes(e.pos+entryHeader, e.size)
		r.dev.StoreSkip(e.off, data, 1)
		if !r.bugs.SkipApplyFlush {
			r.dev.CLWBSkip(e.off, e.size, 1)
			if r.bugs.DoubleApplyFlush {
				r.dev.CLWBSkip(e.off, e.size, 1)
			}
		}
	}
	r.dev.SFenceSkip(1)
	if r.annotate {
		for _, e := range r.pending {
			r.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist, Addr: e.off, Size: e.size}, 1)
		}
	}
	r.dev.Store64(offSealed, 0)
	r.dev.CLWBSkip(offSealed, 8, 1)
	r.dev.SFenceSkip(1)
	r.dev.Store64(offLogLen, 0)
	r.dev.CLWBSkip(offLogLen, 8, 1)
	r.dev.SFenceSkip(1)
	r.dev.RecordOp(trace.Op{Kind: trace.KindTxEnd}, 1)
	r.inTx = false
	return nil
}

// Abort drops the transaction: nothing was applied in place, so only the
// volatile bookkeeping resets.
func (r *Region) Abort() {
	if !r.inTx {
		return
	}
	r.pending = r.pending[:0]
	r.count = 0
	r.tail = offLogArea
	r.inTx = false
	r.dev.RecordOp(trace.Op{Kind: trace.KindTxEnd}, 1)
}

// Durable runs fn as one durable transaction: writes issued through the
// TxWriter all take effect atomically.
func (r *Region) Durable(fn func(w *TxWriter) error) error {
	if err := r.Begin(); err != nil {
		return err
	}
	w := &TxWriter{r: r}
	if err := fn(w); err != nil {
		r.Abort()
		return err
	}
	return r.Commit()
}

// TxWriter issues transactional writes inside Durable.
type TxWriter struct{ r *Region }

// Write records a transactional write of data at off.
func (w *TxWriter) Write(off uint64, data []byte) error {
	return w.r.LogAppend(off, data)
}

// Write64 records a transactional 8-byte write.
func (w *TxWriter) Write64(off uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return w.r.LogAppend(off, b[:])
}

// Read64 reads the current durable+applied value (transaction-local reads
// of pending writes are not supported; Memcached reads before writing).
func (w *TxWriter) Read64(off uint64) uint64 { return w.r.dev.Load64(off) }

func align8(v uint64) uint64 { return (v + 7) &^ 7 }
