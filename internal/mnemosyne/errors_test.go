package mnemosyne

import (
	"strings"
	"testing"

	"pmtest/internal/pmem"
)

// Error-path coverage for the transaction state machine.

func TestLogAppendOutsideTx(t *testing.T) {
	r := newRegion(t, nil)
	if err := r.LogAppend(r.DataOff(), []byte{1}); err == nil ||
		!strings.Contains(err.Error(), "outside transaction") {
		t.Fatalf("err = %v", err)
	}
}

func TestCommitOutsideTx(t *testing.T) {
	r := newRegion(t, nil)
	if err := r.Commit(); err == nil ||
		!strings.Contains(err.Error(), "outside transaction") {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortOutsideTxIsNoOp(t *testing.T) {
	r := newRegion(t, nil)
	r.Abort() // must not panic
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	r.Abort()
	if err := r.Begin(); err != nil {
		t.Fatalf("Begin after Abort: %v", err)
	}
	r.Abort()
}

func TestDurableBeginFailurePropagates(t *testing.T) {
	r := newRegion(t, nil)
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	// Durable inside an open transaction must fail (no nesting).
	if err := r.Durable(func(w *TxWriter) error { return nil }); err != ErrNested {
		t.Fatalf("err = %v, want ErrNested", err)
	}
}

func TestCreateTooSmall(t *testing.T) {
	if _, err := Create(pmem.New(128, nil), 1<<16); err == nil {
		t.Fatal("expected device-too-small error")
	}
}

func TestOpenCorruptHeader(t *testing.T) {
	dev := pmem.New(1<<20, nil)
	// Valid magic but zero log size.
	dev.Store64(offMagic, magic)
	dev.PersistBarrier(offMagic, 8)
	if _, _, err := Open(dev); err == nil {
		t.Fatal("expected corrupt-header error")
	}
}
