// Package obsserve is the one shared lifecycle for the -obs-listen
// endpoint: every CLI that serves live observability (repro, crashmc,
// bughunt) mounts the same routes the same way instead of keeping its
// own http.Server copy.
//
// Routes:
//
//	/                 Prometheus text (?format=json for the full snapshot)
//	/obs/v1/snapshot  versioned NodeSnapshot document (pmtop's input)
//	/flight           flight-recorder span browse
//	/flight/v1/search span search with time window (fleet fan-out input)
//	/debug/pprof/*    opt-in Go profiling (Config.PProf)
//
// Start returns immediately with the server listening; Close shuts it
// down gracefully with a bounded drain so in-flight scrapes finish.
package obsserve

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"pmtest/internal/flight"
	"pmtest/internal/obs"
)

// Config assembles one observability endpoint.
type Config struct {
	// Addr is the listen address (":8081", "127.0.0.1:0").
	Addr string
	// Source is the node identity stamped into served snapshots;
	// defaults to the bound listen address.
	Source string
	// Role labels the process kind ("pmtestd", "workload") in served
	// snapshots; fleet views group nodes by it. Optional.
	Role string
	// Metrics backs / and /obs/v1/snapshot. May be nil (zero snapshot).
	Metrics *obs.Metrics
	// StatsFn, when set, overrides Metrics.Snapshot for the snapshot
	// document (see obs.SnapshotSource.StatsFn).
	StatsFn func() obs.Snapshot
	// Flight, when non-nil, backs /flight and the snapshot's span
	// summary section.
	Flight *flight.Recorder
	// PProf additionally mounts net/http/pprof under /debug/pprof/ —
	// opt-in because profiling endpoints on a production port are a
	// choice, not a default.
	PProf bool
	// Logger receives lifecycle records (serving, shutdown, errors);
	// nil logs nothing.
	Logger *slog.Logger
	// ShutdownTimeout bounds Close's graceful drain (default 2s).
	ShutdownTimeout time.Duration
}

// Server is a running observability endpoint.
type Server struct {
	srv     *http.Server
	addr    string
	logger  *slog.Logger
	timeout time.Duration
}

// Start binds the listener, mounts the routes and serves in the
// background. It returns once the address is bound, so callers can
// print or scrape it immediately.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obsserve: listen %s: %w", cfg.Addr, err)
	}
	addr := ln.Addr().String()
	source := cfg.Source
	if source == "" {
		source = addr
	}
	src := &obs.SnapshotSource{Source: source, Role: cfg.Role, Metrics: cfg.Metrics, StatsFn: cfg.StatsFn}
	if cfg.Flight != nil {
		rec := cfg.Flight
		src.FlightFn = func() *obs.FlightSummary { return flight.Summarize(rec) }
	}

	mux := http.NewServeMux()
	// The metrics handler answers / and /metrics only — a bare catch-all
	// would 200 every unknown path (and mask the pprof opt-in gate).
	metricsHandler := obs.Handler(cfg.Metrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" && r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		metricsHandler.ServeHTTP(w, r)
	})
	mux.Handle("/obs/v1/snapshot", obs.SnapshotHandler(src))
	if cfg.Flight != nil {
		mux.Handle("/flight", flight.Handler(cfg.Flight))
		mux.Handle(flight.SearchPath, flight.SearchHandler(cfg.Flight))
	}
	if cfg.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	s := &Server{
		srv:     &http.Server{Handler: mux},
		addr:    addr,
		logger:  cfg.Logger,
		timeout: cfg.ShutdownTimeout,
	}
	if s.timeout <= 0 {
		s.timeout = 2 * time.Second
	}
	if s.logger != nil {
		s.logger.Info("observability endpoint serving",
			"addr", addr, "pprof", cfg.PProf, "flight", cfg.Flight != nil)
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if s.logger != nil {
				s.logger.Error("observability endpoint failed", "addr", addr, "err", err)
			}
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr }

// Close shuts the endpoint down gracefully, bounded by the configured
// drain timeout; errors are logged, never fatal — the run's results
// matter more than a clean socket teardown.
func (s *Server) Close() {
	if s == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil && s.logger != nil {
		s.logger.Error("observability endpoint shutdown", "addr", s.addr, "err", err)
	}
	if s.logger != nil {
		s.logger.Info("observability endpoint stopped", "addr", s.addr)
	}
}
