package obsserve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"pmtest/internal/flight"
	"pmtest/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServerRoutes(t *testing.T) {
	m := obs.NewMetrics(8)
	m.TracesChecked.Add(5)
	rec := flight.NewRecorder(16)
	rec.Start(flight.CatSession, "section", 0).Finish()

	srv, err := Start(Config{Addr: "127.0.0.1:0", Source: "test-node", Metrics: m, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, _ := get(t, base+"/"); code != 200 {
		t.Errorf("/ = %d", code)
	}
	code, body := get(t, base+"/obs/v1/snapshot")
	if code != 200 {
		t.Fatalf("/obs/v1/snapshot = %d", code)
	}
	var snap obs.NodeSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.SchemaVersion != obs.SnapshotSchemaVersion || snap.Source != "test-node" {
		t.Errorf("snapshot header = %+v", snap)
	}
	if snap.Metrics.TracesChecked != 5 {
		t.Errorf("snapshot metrics = %d traces, want 5", snap.Metrics.TracesChecked)
	}
	if snap.Flight == nil || len(snap.Flight.Categories) == 0 {
		t.Errorf("snapshot flight summary missing: %+v", snap.Flight)
	}
	if code, _ := get(t, base+"/flight"); code != 200 {
		t.Errorf("/flight = %d", code)
	}
	// pprof is opt-in: without Config.PProf the routes must not exist.
	if code, _ := get(t, base+"/debug/pprof/"); code == 200 {
		t.Error("/debug/pprof/ served without -pprof")
	}
}

func TestServerPProfOptIn(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0", PProf: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d with PProf on", code)
	}
}

func TestServerCloseIdempotentAndNilSafe(t *testing.T) {
	var nilSrv *Server
	nilSrv.Close() // must not panic

	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := http.Get("http://" + srv.Addr() + "/"); err == nil {
		t.Error("server still serving after Close")
	}
}
