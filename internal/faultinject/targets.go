package faultinject

import (
	"bytes"
	"fmt"

	"pmtest/internal/pmem"
	"pmtest/internal/pmfs"
	"pmtest/internal/whisper"
)

// Stepper drives one campaign workload run: Do performs operation i
// under full checker annotation, and Verify replays recovery against a
// crash image — the campaign's ground truth.
type Stepper interface {
	// Do performs operation i. Operations are deterministic functions of
	// i, so Verify can recompute what each one wrote.
	Do(i int) error
	// Verify opens the crash image through the workload's own recovery
	// path and checks that every operation in [0, completed) — which
	// returned success before the crash — is intact: its key readable
	// with exactly the written value. Any mismatch (missing, stale, or
	// torn) is a recovery failure.
	Verify(img []byte, completed int) error
}

// Target is one campaign workload: a fresh device of DevSize bytes plus
// a constructor that formats it and returns the stepper. Construction
// runs before the fault hook attaches, so setup is never perturbed.
type Target struct {
	Name    string
	DevSize uint64
	New     func(dev *pmem.Device) (Stepper, error)
}

// stepKey and stepVal are the deterministic operation payloads. Keys are
// distinct (no updates), so "present with exactly this value" is
// well-defined; values are 24 bytes so every operation issues tearable
// (>8-byte) stores.
func stepKey(i int) uint64 { return uint64(i)*17 + 3 }

func stepVal(i int) []byte {
	v := make([]byte, 24)
	for j := range v {
		v[j] = byte(i*31 + j*7 + 0x41)
	}
	return v
}

// storeStepper adapts a whisper.Store-shaped workload.
type storeStepper struct {
	insert func(key uint64, val []byte) error
	open   func(dev *pmem.Device) (func(key uint64) ([]byte, bool), error)
}

func (s *storeStepper) Do(i int) error { return s.insert(stepKey(i), stepVal(i)) }

func (s *storeStepper) Verify(img []byte, completed int) error {
	get, err := s.open(pmem.FromImage(img, nil))
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	for i := 0; i < completed; i++ {
		v, ok := get(stepKey(i))
		if !ok {
			return fmt.Errorf("op %d: key %d lost", i, stepKey(i))
		}
		if !bytes.Equal(v, stepVal(i)) {
			return fmt.Errorf("op %d: key %d corrupt (got %x)", i, stepKey(i), v)
		}
	}
	return nil
}

func storeTarget(name string, devSize uint64,
	mk func(dev *pmem.Device) (whisper.Store, error),
	reopen func(dev *pmem.Device) (whisper.Store, error)) Target {
	return Target{Name: name, DevSize: devSize,
		New: func(dev *pmem.Device) (Stepper, error) {
			s, err := mk(dev)
			if err != nil {
				return nil, err
			}
			if c, ok := s.(whisper.Checkered); ok {
				c.SetCheckers(true)
			}
			return &storeStepper{
				insert: s.Insert,
				open: func(dev *pmem.Device) (func(uint64) ([]byte, bool), error) {
					r, err := reopen(dev)
					if err != nil {
						return nil, err
					}
					return r.Get, nil
				},
			}, nil
		}}
}

// pmdkDev is the device size for pmdk-pooled targets: the pool's default
// undo log occupies the first MiB, the heap lives above it.
const pmdkDev = 1 << 21

// Targets returns the campaign workload suite: the pmdk-backed WHISPER
// stores, the low-level hashmap, the Echo WAL store, the Redis cache, and
// the journaling file system.
func Targets() []Target {
	return []Target{
		storeTarget("ctree", pmdkDev,
			func(dev *pmem.Device) (whisper.Store, error) {
				c, err := whisper.NewCTree(dev, nil)
				if err != nil {
					return nil, err
				}
				c.Pool().SetAnnotations(true)
				return c, nil
			},
			func(dev *pmem.Device) (whisper.Store, error) { return whisper.OpenCTree(dev) }),
		storeTarget("btree", pmdkDev,
			func(dev *pmem.Device) (whisper.Store, error) {
				b, err := whisper.NewBTree(dev, nil)
				if err != nil {
					return nil, err
				}
				b.Pool().SetAnnotations(true)
				return b, nil
			},
			func(dev *pmem.Device) (whisper.Store, error) { return whisper.OpenBTree(dev) }),
		storeTarget("rbtree", pmdkDev,
			func(dev *pmem.Device) (whisper.Store, error) {
				r, err := whisper.NewRBTree(dev, nil)
				if err != nil {
					return nil, err
				}
				r.Pool().SetAnnotations(true)
				return r, nil
			},
			func(dev *pmem.Device) (whisper.Store, error) { return whisper.OpenRBTree(dev) }),
		storeTarget("hashmap-tx", pmdkDev,
			func(dev *pmem.Device) (whisper.Store, error) {
				h, err := whisper.NewHashmapTX(dev, 16, nil)
				if err != nil {
					return nil, err
				}
				h.Pool().SetAnnotations(true)
				return h, nil
			},
			func(dev *pmem.Device) (whisper.Store, error) { return whisper.OpenHashmapTX(dev) }),
		storeTarget("hashmap-ll", 1<<18,
			func(dev *pmem.Device) (whisper.Store, error) {
				return whisper.NewHashmapLL(dev, 16, 64, nil)
			},
			func(dev *pmem.Device) (whisper.Store, error) { return whisper.OpenHashmapLL(dev) }),
		echoTarget(),
		redisTarget(),
		pmfsTarget(),
	}
}

// TargetByName resolves one suite entry.
func TargetByName(name string) (Target, bool) {
	for _, t := range Targets() {
		if t.Name == name {
			return t, true
		}
	}
	return Target{}, false
}

// TargetNames lists the suite in order.
func TargetNames() []string {
	all := Targets()
	names := make([]string, len(all))
	for i, t := range all {
		names[i] = t.Name
	}
	return names
}

func echoTarget() Target {
	return Target{Name: "echo", DevSize: 1 << 18,
		New: func(dev *pmem.Device) (Stepper, error) {
			e, err := whisper.NewEcho(dev, 1<<15, nil)
			if err != nil {
				return nil, err
			}
			e.SetCheckers(true)
			return &storeStepper{
				insert: e.Set,
				open: func(dev *pmem.Device) (func(uint64) ([]byte, bool), error) {
					r, err := whisper.OpenEcho(dev)
					if err != nil {
						return nil, err
					}
					return r.Get, nil
				},
			}, nil
		}}
}

func redisTarget() Target {
	const capacity = 64
	return Target{Name: "redis", DevSize: pmdkDev,
		New: func(dev *pmem.Device) (Stepper, error) {
			r, err := whisper.NewRedis(dev, 16, capacity)
			if err != nil {
				return nil, err
			}
			r.Pool().SetAnnotations(true)
			r.SetCheckers(true)
			return &storeStepper{
				insert: r.Set,
				open: func(dev *pmem.Device) (func(uint64) ([]byte, bool), error) {
					rr, err := whisper.OpenRedis(dev, capacity)
					if err != nil {
						return nil, err
					}
					return rr.Get, nil
				},
			}, nil
		}}
}

// pmfsStepper appends fixed-size records to one file: operation i writes
// record i at offset i*recSize, then fsyncs (which also emits the
// isPersist annotations over the file's data blocks).
type pmfsStepper struct {
	fs  *pmfs.FS
	ino uint64
}

const pmfsRec = 128

func pmfsRecord(i int) []byte {
	b := make([]byte, pmfsRec)
	for j := range b {
		b[j] = byte(i*13 + j*3 + 1)
	}
	return b
}

func (p *pmfsStepper) Do(i int) error {
	if err := p.fs.WriteFile(p.ino, uint64(i)*pmfsRec, pmfsRecord(i)); err != nil {
		return err
	}
	return p.fs.Fsync(p.ino)
}

func (p *pmfsStepper) Verify(img []byte, completed int) error {
	fs, _, err := pmfs.Mount(pmem.FromImage(img, nil))
	if err != nil {
		return fmt.Errorf("mount: %w", err)
	}
	ino, err := fs.Lookup("data")
	if err != nil {
		return fmt.Errorf("lookup: %w", err)
	}
	buf := make([]byte, pmfsRec)
	for i := 0; i < completed; i++ {
		n, err := fs.ReadFile(ino, uint64(i)*pmfsRec, buf)
		if err != nil || n != pmfsRec {
			return fmt.Errorf("op %d: read failed (%d bytes, %v)", i, n, err)
		}
		if !bytes.Equal(buf, pmfsRecord(i)) {
			return fmt.Errorf("op %d: record corrupt", i)
		}
	}
	return nil
}

func pmfsTarget() Target {
	return Target{Name: "pmfs", DevSize: 1 << 17,
		New: func(dev *pmem.Device) (Stepper, error) {
			fs, err := pmfs.Mkfs(dev, 16, 32)
			if err != nil {
				return nil, err
			}
			fs.SetAnnotations(true)
			ino, err := fs.CreateFile("data")
			if err != nil {
				return nil, err
			}
			return &pmfsStepper{fs: fs, ino: ino}, nil
		}}
}
