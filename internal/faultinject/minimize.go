package faultinject

import "pmtest/internal/trace"

// Minimize delta-debugs ops down to a 1-minimal subsequence that still
// satisfies pred (Zeller & Hildebrandt's ddmin). If pred does not hold on
// the full input, ops is returned unchanged. The result is deterministic:
// same input, same predicate, same minimized trace.
func Minimize(ops []trace.Op, pred func([]trace.Op) bool) []trace.Op {
	if len(ops) == 0 || !pred(ops) {
		return ops
	}
	cur := append([]trace.Op(nil), ops...)
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			// Try the complement of [start, end).
			cand := make([]trace.Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && pred(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}
