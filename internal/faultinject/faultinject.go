// Package faultinject perturbs the primitive stream of a running PM
// program to answer the question the bug catalog (internal/bugdb) cannot:
// does the checking engine flag *machine-level* persistency faults — a
// writeback that silently never happened, a fence that did not drain, a
// store torn across a power cut — and is every flag backed by ground
// truth, a concrete crash state whose recovery actually fails?
//
// The layer attaches to the simulated device through the pmem.FaultHook
// seam, so a suppressed primitive changes neither device state nor the
// trace: the engine judges exactly the execution whose crash states the
// device can materialize. A campaign (campaign.go) then explores fault
// schedules — exhaustively when the site count is small, seeded-random
// beyond — and for each injected fault cross-checks the engine's verdict
// against recovery of enumerated/sampled crash states, delta-debugging
// every confirmed finding to a minimal reproducer (minimize.go) recorded
// in the bug catalog as a bugdb.Repro.
//
// Everything is reproducible from a single int64 seed: the same seed
// replays the same schedules, the same crash states, and the same
// minimized traces, bit for bit.
package faultinject

import (
	"fmt"
	"math/rand"

	"pmtest/internal/pmem"
)

// Class is a fault taxonomy entry: one way the path from store buffer to
// persistence domain can misbehave. All classes except Evict model bugs
// (the engine must flag them and a failing crash state must exist); Evict
// models *legal* hardware behaviour — a clean program must stay clean
// under it and recover from every crash state.
type Class int

// The fault taxonomy.
const (
	// DropFlush silently discards one clwb: its line never becomes
	// flush-pending, so no later fence persists it.
	DropFlush Class = iota
	// DropFence silently discards one sfence: lines flushed before it
	// stay volatile past the supposed ordering point.
	DropFence
	// WeakenFence keeps the target sfence but discards every clwb in the
	// window it guards — the fence drains nothing, modelling a fence that
	// lost its preceding writebacks.
	WeakenFence
	// TornStore splits a store wider than 8 bytes at the x86 atomicity
	// boundary: the first 8 bytes land now, the tail only after the next
	// fence — so a crash at the ordering point observes a torn value.
	TornStore
	// DelayFlush defers one clwb until after the next fence: the line is
	// eventually written back, but on the wrong side of the ordering
	// point that was supposed to cover it.
	DelayFlush
	// Evict spontaneously evicts one random dirty line before a store —
	// always-legal hardware behaviour used as the adversarial control:
	// it must produce neither diagnostics nor recovery failures.
	Evict

	numClasses
)

var classNames = [numClasses]string{
	"drop-flush", "drop-fence", "weaken-fence",
	"torn-store", "delay-flush", "evict",
}

// String returns the hyphenated taxonomy name.
func (c Class) String() string {
	if c >= 0 && c < numClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass maps a taxonomy name back to its Class.
func ParseClass(s string) (Class, error) {
	for c, name := range classNames {
		if s == name {
			return Class(c), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault class %q", s)
}

// IsBug reports whether the class models a bug (engine must flag it)
// rather than legal hardware behaviour.
func (c Class) IsBug() bool { return c != Evict }

// AllClasses returns the full taxonomy in declaration order.
func AllClasses() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Census counts the injectable sites one workload run exposes. It is
// taken by a dry run (site -1) and drives schedule exploration: class X
// has Sites(X) distinct places a fault can land.
type Census struct {
	Stores    int `json:"stores"`
	BigStores int `json:"big_stores"` // stores wider than 8 bytes (tearable)
	Flushes   int `json:"flushes"`
	Fences    int `json:"fences"`
}

// Sites returns how many injection sites the census exposes for a class.
func (c Census) Sites(class Class) int {
	switch class {
	case DropFlush, DelayFlush:
		return c.Flushes
	case DropFence, WeakenFence:
		return c.Fences
	case TornStore:
		return c.BigStores
	case Evict:
		return c.Stores
	}
	return 0
}

// Injector implements pmem.FaultHook: it counts primitive occurrences
// and, when the occurrence index for its class reaches the target site,
// injects exactly one fault. Site -1 never injects (census-only). The
// injector is deterministic: the same (class, site, rng seed) against the
// same workload perturbs the same primitive.
type Injector struct {
	dev   *pmem.Device
	class Class
	site  int
	rng   *rand.Rand

	census   Census
	injected bool

	// passthru marks primitives the injector itself re-issues from
	// AfterFence; they must bypass both counting and injection.
	passthru bool

	// Deferred effects released after the next *executed* fence.
	tailAddr             uint64
	tailData             []byte
	flushAddr, flushSize uint64
	hasTail, hasFlush    bool
}

// NewInjector builds an injector for one (class, site) schedule. rng is
// consulted only by classes with a random choice (Evict picks the line);
// it may be nil for a census-only injector.
func NewInjector(dev *pmem.Device, class Class, site int, rng *rand.Rand) *Injector {
	return &Injector{dev: dev, class: class, site: site, rng: rng}
}

// NewCensus builds a counting-only hook: attach it, run the workload
// once, and read Census().
func NewCensus(dev *pmem.Device) *Injector {
	return &Injector{dev: dev, site: -1}
}

// Census returns the occurrence counts observed so far.
func (in *Injector) Census() Census { return in.census }

// Injected reports whether the fault has fired.
func (in *Injector) Injected() bool { return in.injected }

// BeforeStore implements pmem.FaultHook.
func (in *Injector) BeforeStore(addr uint64, data []byte) int {
	if in.passthru {
		return len(data)
	}
	storeSite, bigSite := in.census.Stores, in.census.BigStores
	in.census.Stores++
	if len(data) > 8 {
		in.census.BigStores++
	}
	if in.site < 0 || in.injected {
		return len(data)
	}
	switch in.class {
	case TornStore:
		if len(data) > 8 && bigSite == in.site {
			in.injected = true
			in.tailAddr = addr + 8
			in.tailData = append([]byte(nil), data[8:]...)
			in.hasTail = true
			return 8
		}
	case Evict:
		if storeSite == in.site {
			if bases := in.dev.DirtyBases(); len(bases) > 0 {
				in.injected = true
				in.dev.EvictLine(bases[in.rng.Intn(len(bases))])
			}
		}
	}
	return len(data)
}

// BeforeFlush implements pmem.FaultHook.
func (in *Injector) BeforeFlush(addr, size uint64) bool {
	if in.passthru {
		return true
	}
	site := in.census.Flushes
	in.census.Flushes++
	if in.site < 0 {
		return true
	}
	switch in.class {
	case DropFlush:
		if site == in.site && !in.injected {
			in.injected = true
			return false
		}
	case DelayFlush:
		if site == in.site && !in.injected {
			in.injected = true
			in.flushAddr, in.flushSize, in.hasFlush = addr, size, true
			return false
		}
	case WeakenFence:
		// Drop every writeback in the window the target fence guards;
		// injected only records that at least one was actually dropped.
		if in.census.Fences == in.site {
			in.injected = true
			return false
		}
	}
	return true
}

// BeforeFence implements pmem.FaultHook.
func (in *Injector) BeforeFence() bool {
	if in.passthru {
		return true
	}
	site := in.census.Fences
	in.census.Fences++
	if in.site < 0 {
		return true
	}
	if in.class == DropFence && site == in.site && !in.injected {
		in.injected = true
		return false
	}
	return true
}

// AfterFence implements pmem.FaultHook: it releases deferred effects on
// the far side of the ordering point. The re-issued primitives are real —
// they mutate the device and appear in the trace — which is exactly what
// makes the fault both flaggable by the engine and demonstrable as a
// failing crash state.
func (in *Injector) AfterFence() {
	if in.passthru || (!in.hasTail && !in.hasFlush) {
		return
	}
	in.passthru = true
	if in.hasTail {
		in.hasTail = false
		in.dev.Store(in.tailAddr, in.tailData) // the torn tail lands after the fence uncovered on purpose — that IS the injected fault
	}
	if in.hasFlush {
		in.hasFlush = false
		in.dev.CLWB(in.flushAddr, in.flushSize) // the delayed writeback deliberately misses its ordering point — that IS the injected fault
	}
	in.passthru = false
}
