package faultinject

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"time"

	"pmtest/internal/bugdb"
	"pmtest/internal/core"
	"pmtest/internal/flight"
	"pmtest/internal/obs"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// Config parameterizes a campaign. The zero value is unusable; use
// Defaults() or fill every field. Everything that influences results is
// derived from Seed, so two runs with equal Configs produce bit-for-bit
// identical Results (Deadline excepted: an expired deadline truncates the
// schedule list at a wall-clock-dependent point).
type Config struct {
	// Seed drives schedule exploration, evicted-line choice, and crash
	// sampling.
	Seed int64
	// Budget caps schedules per (target, class); site counts at or below
	// it are explored exhaustively.
	Budget int
	// Ops is how many workload operations each schedule runs (the fault
	// lands somewhere within them; later sites never fire).
	Ops int
	// StateLimit bounds exhaustive crash-state enumeration: when the
	// faulted run's 2^dirty state space fits, every state is validated
	// and the search is complete; beyond it the campaign falls back to
	// Samples seeded samples plus the two extreme states.
	StateLimit int
	// Samples is the fallback sample count per faulted run.
	Samples int
	// TearLines lets sampled crash states tear lines at 8-byte
	// granularity (CrashOptions.TearLines).
	TearLines bool
	// Deadline bounds the whole campaign; zero means none. On expiry the
	// campaign stops between schedules and returns partial results with
	// DeadlineExpired set.
	Deadline time.Duration
	// Classes selects the fault classes; nil means the full taxonomy.
	Classes []Class
	// Rank, when non-nil, reorders the selected classes so statically
	// suspicious ones (RankFromFindings over pmlint's census) spend the
	// schedule budget first. Result.DiscoveryAUC measures the effect.
	Rank *StaticRank
	// Rules is the checking rule set; nil means core.X86.
	Rules core.RuleSet
	// Metrics, when non-nil, receives campaign counters.
	Metrics *obs.Metrics
	// Flight, when non-nil, records one campaign span per schedule with
	// fault-site and crash-state annotations (failed = recovery broke).
	Flight *flight.Recorder
	// Logger, when non-nil, receives structured campaign records: start
	// and completion at Info, workload failures, soundness-relevant
	// findings and deadline expiry at Warn, per-schedule outcomes at
	// Debug. Records carry the schedule's flight span_id for correlation.
	Logger *slog.Logger
}

// Defaults returns a small, CI-friendly configuration.
func Defaults() Config {
	return Config{Budget: 8, Ops: 3, StateLimit: 64, Samples: 12, TearLines: true}
}

// Outcome records one schedule's verdicts: what the engine said about the
// faulted section, and what crash-state ground truth said about it.
type Outcome struct {
	Class string `json:"class"`
	Site  int    `json:"site"`
	// OpIndex is the workload operation during which the fault fired
	// (-1 when it never did).
	OpIndex  int  `json:"op_index"`
	Injected bool `json:"injected"`
	// Flagged is true when the checking engine reported at least one
	// FAIL diagnostic for the faulted section.
	Flagged bool     `json:"flagged"`
	Codes   []string `json:"codes,omitempty"`
	// Demonstrated is true when a concrete crash state failed recovery.
	Demonstrated bool   `json:"demonstrated"`
	ImageHash    string `json:"image_hash,omitempty"`
	RecoveryErr  string `json:"recovery_err,omitempty"`
	// StatesExplored of StatesPossible crash states were validated
	// (possible is clamped at 2^62).
	StatesExplored uint64 `json:"states_explored"`
	StatesPossible uint64 `json:"states_possible"`
	// Complete is true when the whole state space was enumerated.
	Complete bool `json:"complete"`
	// MinOps/OrigOps report trace minimization (0/0 when not flagged).
	MinOps  int    `json:"min_ops,omitempty"`
	OrigOps int    `json:"orig_ops,omitempty"`
	ReproID string `json:"repro_id,omitempty"`
	// Err records a program-visible failure of the workload itself.
	Err string `json:"err,omitempty"`
}

// ClassSummary aggregates one class's outcomes for one target.
type ClassSummary struct {
	Class        string `json:"class"`
	Bug          bool   `json:"bug"`
	Schedules    int    `json:"schedules"`
	Injected     int    `json:"injected"`
	Flagged      int    `json:"flagged"`
	Demonstrated int    `json:"demonstrated"`
}

// TargetResult is one workload's campaign slice.
type TargetResult struct {
	Workload  string         `json:"workload"`
	Census    Census         `json:"census"`
	Outcomes  []Outcome      `json:"outcomes"`
	Summaries []ClassSummary `json:"summaries"`
	Err       string         `json:"err,omitempty"`
}

// Result is the full campaign outcome. It contains no wall-clock data,
// so marshaling it is bit-for-bit reproducible from the seed.
type Result struct {
	Seed       int64    `json:"seed"`
	Budget     int      `json:"budget"`
	Ops        int      `json:"ops"`
	StateLimit int      `json:"state_limit"`
	Samples    int      `json:"samples"`
	TearLines  bool     `json:"tear_lines"`
	Classes    []string `json:"classes"`

	Targets []TargetResult `json:"targets"`
	Repros  []bugdb.Repro  `json:"repros,omitempty"`

	// DiscoveryAUC is the bugs-found-per-schedule-prefix metric: the mean,
	// over schedules in run order, of the fraction of demonstrated
	// (workload, class) bugs already discovered. Higher means the
	// exploration order front-loaded the bugs (see StaticRank).
	DiscoveryAUC float64 `json:"discovery_auc"`

	SchedulesPlanned int    `json:"schedules_planned"`
	SchedulesRun     int    `json:"schedules_run"`
	FaultsInjected   uint64 `json:"faults_injected"`
	StatesExplored   uint64 `json:"states_explored"`
	StatesPossible   uint64 `json:"states_possible"`
	RecoveryFailures uint64 `json:"recovery_failures"`
	DeadlineExpired  bool   `json:"deadline_expired,omitempty"`
}

// Soundness checks the campaign's core claim and returns every
// violation. Per fault class, aggregated across targets: a bug class
// that was injected must be flagged by the engine AND demonstrated by a
// failing crash state at least once, and the legal class (evict) must
// never be flagged or demonstrated anywhere. Aggregation is deliberate:
// individual workloads can be structurally immune to a class (pmfs
// closes every persist window with two consecutive fences, so dropping
// one is always masked; line-granular writebacks rescue torn tails that
// share a line with later-flushed metadata), and a conservative flag
// without a failing state on such a target is correct engine behaviour,
// not a soundness hole.
func (r *Result) Soundness() []string {
	agg := map[string]*ClassSummary{}
	var order []string
	for _, tr := range r.Targets {
		for _, s := range tr.Summaries {
			a := agg[s.Class]
			if a == nil {
				a = &ClassSummary{Class: s.Class, Bug: s.Bug}
				agg[s.Class] = a
				order = append(order, s.Class)
			}
			a.Schedules += s.Schedules
			a.Injected += s.Injected
			a.Flagged += s.Flagged
			a.Demonstrated += s.Demonstrated
		}
	}
	var bad []string
	for _, cl := range order {
		s := agg[cl]
		switch {
		case s.Bug && s.Injected > 0 && s.Flagged == 0:
			bad = append(bad, fmt.Sprintf("%s: injected %d times, never flagged",
				s.Class, s.Injected))
		case s.Bug && s.Injected > 0 && s.Demonstrated == 0:
			bad = append(bad, fmt.Sprintf("%s: flagged but no failing crash state found",
				s.Class))
		case !s.Bug && s.Flagged > 0:
			bad = append(bad, fmt.Sprintf("%s: legal fault flagged %d times (false positive)",
				s.Class, s.Flagged))
		case !s.Bug && s.Demonstrated > 0:
			bad = append(bad, fmt.Sprintf("%s: legal fault broke recovery %d times",
				s.Class, s.Demonstrated))
		}
	}
	return bad
}

// campaign carries the per-run state shared by the helpers.
type campaign struct {
	cfg    Config
	rules  core.RuleSet
	res    *Result
	repros bugdb.ReproDB
	start  time.Time
}

func (c *campaign) expired() bool {
	return c.cfg.Deadline > 0 && time.Since(c.start) >= c.cfg.Deadline
}

// Run executes the campaign over targets and returns the (possibly
// partial) result. It never returns an error for workload-level
// failures — those are recorded in the result — only for an unusable
// configuration.
func Run(cfg Config, targets []Target) (*Result, error) {
	if cfg.Budget <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("faultinject: budget (%d) and ops (%d) must be positive",
			cfg.Budget, cfg.Ops)
	}
	if cfg.StateLimit <= 0 {
		cfg.StateLimit = 64
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 12
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = AllClasses()
	}
	classes = cfg.Rank.Order(classes)
	rules := cfg.Rules
	if rules == nil {
		rules = core.X86{}
	}
	c := &campaign{cfg: cfg, rules: rules, start: time.Now()}
	c.res = &Result{
		Seed: cfg.Seed, Budget: cfg.Budget, Ops: cfg.Ops,
		StateLimit: cfg.StateLimit, Samples: cfg.Samples, TearLines: cfg.TearLines,
	}
	for _, cl := range classes {
		c.res.Classes = append(c.res.Classes, cl.String())
	}
	if lg := cfg.Logger; lg != nil {
		lg.Info("campaign started",
			"seed", cfg.Seed, "budget", cfg.Budget, "ops", cfg.Ops,
			"targets", len(targets), "classes", len(classes))
	}

	for _, tgt := range targets {
		if c.res.DeadlineExpired {
			break
		}
		tr := TargetResult{Workload: tgt.Name}
		census, err := c.takeCensus(tgt)
		if err != nil {
			tr.Err = err.Error()
			if lg := cfg.Logger; lg != nil {
				lg.Error("workload census failed", "workload", tgt.Name, "err", err)
			}
			c.res.Targets = append(c.res.Targets, tr)
			continue
		}
		tr.Census = census
		for _, class := range classes {
			rng := rand.New(rand.NewSource(subSeed(cfg.Seed, tgt.Name, class.String(), "explore")))
			scheds := Explore(class, census.Sites(class), cfg.Budget, rng)
			c.res.SchedulesPlanned += len(scheds)
			for _, sc := range scheds {
				if c.expired() {
					c.res.DeadlineExpired = true
					if cfg.Metrics != nil {
						cfg.Metrics.CampaignDeadlineHits.Add(1)
					}
					if lg := cfg.Logger; lg != nil {
						lg.Warn("campaign deadline expired; results are partial",
							"deadline", cfg.Deadline, "schedules_run", c.res.SchedulesRun)
					}
					break
				}
				// One campaign span per schedule; nil-safe throughout, so
				// an unset recorder costs only the call.
				sp := c.cfg.Flight.Start(flight.CatCampaign, "schedule", 0)
				out := c.runSchedule(tgt, sc)
				c.logOutcome(tgt.Name, sp, out)
				sp.SetStr("workload", tgt.Name).
					SetStr("class", out.Class).
					SetInt("site", int64(out.Site)).
					SetInt("op_index", int64(out.OpIndex)).
					SetInt("injected", int64(b2u(out.Injected))).
					SetInt("flagged", int64(b2u(out.Flagged))).
					SetInt("states_explored", int64(out.StatesExplored)).
					SetInt("states_possible", int64(out.StatesPossible)).
					SetErr(out.Demonstrated)
				if out.ImageHash != "" {
					sp.SetStr("image_hash", out.ImageHash)
				}
				if out.RecoveryErr != "" {
					sp.SetStr("recovery_err", out.RecoveryErr)
				}
				sp.Finish()
				tr.Outcomes = append(tr.Outcomes, out)
				c.res.SchedulesRun++
			}
			if c.res.DeadlineExpired {
				break
			}
		}
		tr.Summaries = summarize(tr.Outcomes)
		c.res.Targets = append(c.res.Targets, tr)
	}
	c.res.Repros = c.repros.All()
	c.res.DiscoveryAUC = discoveryAUC(c.res.Targets)
	if lg := cfg.Logger; lg != nil {
		lg.Info("campaign finished",
			"schedules_run", c.res.SchedulesRun, "planned", c.res.SchedulesPlanned,
			"faults_injected", c.res.FaultsInjected,
			"states_explored", c.res.StatesExplored,
			"recovery_failures", c.res.RecoveryFailures,
			"repros", len(c.res.Repros), "partial", c.res.DeadlineExpired)
	}
	return c.res, nil
}

// logOutcome emits the per-schedule log record: demonstrated recovery
// failures at Warn (they are the campaign's findings), everything else
// at Debug, both carrying the schedule's flight span_id so a log line
// leads straight to its span in /flight.
func (c *campaign) logOutcome(workload string, sp *flight.Span, out Outcome) {
	lg := c.cfg.Logger
	if lg == nil {
		return
	}
	level := slog.LevelDebug
	msg := "schedule checked"
	if out.Demonstrated {
		level, msg = slog.LevelWarn, "recovery failure demonstrated"
	}
	if !lg.Enabled(context.Background(), level) {
		return
	}
	var spanID uint64
	if sp != nil {
		spanID = sp.ID
	}
	attrs := []any{
		"workload", workload, "class", out.Class, "site", out.Site,
		"injected", out.Injected, "flagged", out.Flagged,
		"states_explored", out.StatesExplored,
	}
	if spanID != 0 {
		attrs = append(attrs, "span_id", spanID)
	}
	if out.RecoveryErr != "" {
		attrs = append(attrs, "recovery_err", out.RecoveryErr)
	}
	lg.Log(context.Background(), level, msg, attrs...)
}

// takeCensus dry-runs the target to count injectable sites.
func (c *campaign) takeCensus(tgt Target) (Census, error) {
	dev := pmem.New(tgt.DevSize, nil)
	st, err := tgt.New(dev)
	if err != nil {
		return Census{}, fmt.Errorf("construct: %w", err)
	}
	hook := NewCensus(dev)
	dev.SetFaultHook(hook)
	for i := 0; i < c.cfg.Ops; i++ {
		if err := st.Do(i); err != nil {
			return Census{}, fmt.Errorf("census op %d: %w", i, err)
		}
	}
	return hook.Census(), nil
}

// recorder buffers the current trace section.
type recorder struct{ ops []trace.Op }

func (r *recorder) Record(op trace.Op, _ int) { r.ops = append(r.ops, op) }

// runSchedule executes one (target, class, site) plan: run the workload
// with the fault armed, stop at the faulted section, judge it with the
// engine, then search crash states for a failing recovery and minimize
// the evidence.
func (c *campaign) runSchedule(tgt Target, sc Schedule) Outcome {
	out := Outcome{Class: sc.Class.String(), Site: sc.Site, OpIndex: -1}
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.CampaignSchedules.Add(1)
	}
	rec := &recorder{}
	dev := pmem.New(tgt.DevSize, rec)
	st, err := tgt.New(dev)
	if err != nil {
		out.Err = fmt.Sprintf("construct: %v", err)
		return out
	}
	inj := NewInjector(dev, sc.Class, sc.Site,
		rand.New(rand.NewSource(subSeed(c.cfg.Seed, tgt.Name, sc.Class.String(), "inject", fmt.Sprint(sc.Site)))))
	dev.SetFaultHook(inj)

	completed := 0
	var section []trace.Op
	for i := 0; i < c.cfg.Ops; i++ {
		rec.ops = rec.ops[:0]
		err := st.Do(i)
		if err != nil {
			out.Err = fmt.Sprintf("op %d: %v", i, err)
			if inj.Injected() {
				out.OpIndex = i
				section = append([]trace.Op(nil), rec.ops...)
			}
			break
		}
		completed = i + 1
		if inj.Injected() {
			out.OpIndex = i
			section = append([]trace.Op(nil), rec.ops...)
			break
		}
	}
	out.Injected = inj.Injected()
	dev.SetFaultHook(nil)

	if out.Injected && c.cfg.Metrics != nil {
		c.cfg.Metrics.FaultsInjected.Add(1)
	}
	c.res.FaultsInjected += b2u(out.Injected)

	// Engine verdict on the faulted section.
	if len(section) > 0 {
		rep := core.CheckTrace(c.rules, &trace.Trace{Ops: section})
		out.Flagged = rep.Fails() > 0
		out.Codes = failCodes(rep)
	}

	// Ground truth: search the reachable crash states for one whose
	// recovery fails. For the legal class the search is the control — it
	// validates that every explored state recovers.
	if out.Injected {
		c.crashSearch(dev, st, completed, sc.Class.IsBug(), &out)
	}

	// Minimize the evidence and record the reproducer when the finding
	// is confirmed from both sides.
	if out.Flagged && len(out.Codes) > 0 {
		code := core.Code(out.Codes[0])
		minOps := Minimize(section, func(ops []trace.Op) bool {
			return core.CheckTrace(c.rules, &trace.Trace{Ops: ops}).HasCode(code)
		})
		out.MinOps, out.OrigOps = len(minOps), len(section)
		if out.Demonstrated {
			r := bugdb.Repro{
				ID:       fmt.Sprintf("campaign/%s/%s@%d", tgt.Name, sc.Class, sc.Site),
				Workload: tgt.Name, FaultClass: sc.Class.String(),
				Seed: c.cfg.Seed, Site: sc.Site, Code: code,
				Ops: minOps, OrigOps: len(section),
				ImageHash: out.ImageHash, StatesExplored: out.StatesExplored,
			}
			c.repros.Add(r)
			out.ReproID = r.ID
		}
	}
	return out
}

// crashSearch validates crash states of the faulted run against the
// stepper's recovery ground truth, filling the state-space accounting
// and the first failure into out. stopOnFail stops at the first failing
// state (bug classes); the legal class explores its full budget so every
// state is checked clean.
func (c *campaign) crashSearch(dev *pmem.Device, st Stepper, completed int, stopOnFail bool, out *Outcome) {
	validate := func(img []byte) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("recovery panicked: %v", r)
			}
		}()
		return st.Verify(img, completed)
	}

	dirty := dev.DirtyLines()
	if dirty >= 62 {
		out.StatesPossible = 1 << 62
	} else {
		out.StatesPossible = 1 << dirty
	}

	try := func(img []byte) bool { // returns true to keep searching
		out.StatesExplored++
		if err := validate(img); err != nil {
			if !out.Demonstrated {
				sum := sha256.Sum256(img)
				out.Demonstrated = true
				out.ImageHash = hex.EncodeToString(sum[:8])
				out.RecoveryErr = err.Error()
			}
			return !stopOnFail
		}
		return true
	}

	if out.StatesPossible <= uint64(c.cfg.StateLimit) {
		// Exhaustive: the enumeration covers the whole space, extremes
		// (mask 0 = nothing more persists, all-ones = everything does)
		// included, so explored never exceeds possible.
		complete := dev.EnumerateCrashStates(c.cfg.StateLimit, try)
		// The space was fully visited unless a failure stopped the
		// enumeration early.
		out.Complete = complete && !(out.Demonstrated && stopOnFail)
	} else {
		// Bounded: the no-more-persistence extreme first (it kills most
		// durability faults immediately), then seeded samples, then the
		// everything-persisted extreme (DrainAll mutates the device,
		// which is done with its run).
		more := try(dev.Image())
		if more {
			rng := rand.New(rand.NewSource(subSeed(c.cfg.Seed, "crash", fmt.Sprint(out.Class), fmt.Sprint(out.Site))))
			opt := pmem.CrashOptions{TearLines: c.cfg.TearLines}
			for i := 0; i < c.cfg.Samples; i++ {
				if !try(dev.SampleCrash(rng, opt)) {
					more = false
					break
				}
			}
		}
		if more || !stopOnFail {
			dev.DrainAll()
			try(dev.Image())
		}
	}

	c.res.StatesExplored += out.StatesExplored
	c.res.StatesPossible += out.StatesPossible
	c.res.RecoveryFailures += b2u(out.Demonstrated)
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.CrashStatesExplored.Add(out.StatesExplored)
		c.cfg.Metrics.CrashStatesPossible.Add(out.StatesPossible)
		if out.Demonstrated {
			c.cfg.Metrics.RecoveryFailures.Add(1)
		}
	}
}

func summarize(outcomes []Outcome) []ClassSummary {
	byClass := map[string]*ClassSummary{}
	var order []string
	for _, o := range outcomes {
		s := byClass[o.Class]
		if s == nil {
			cl, _ := ParseClass(o.Class)
			s = &ClassSummary{Class: o.Class, Bug: cl.IsBug()}
			byClass[o.Class] = s
			order = append(order, o.Class)
		}
		s.Schedules++
		s.Injected += int(b2u(o.Injected))
		s.Flagged += int(b2u(o.Flagged))
		s.Demonstrated += int(b2u(o.Demonstrated))
	}
	out := make([]ClassSummary, 0, len(order))
	for _, cl := range order {
		out = append(out, *byClass[cl])
	}
	return out
}

func failCodes(rep core.Report) []string {
	seen := map[string]bool{}
	var codes []string
	for _, d := range rep.Diags {
		if d.Severity == core.SeverityFail && !seen[string(d.Code)] {
			seen[string(d.Code)] = true
			codes = append(codes, string(d.Code))
		}
	}
	sort.Strings(codes)
	return codes
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
