package faultinject

import (
	"math/rand"
	"testing"

	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

type opsSink struct{ ops []trace.Op }

func (s *opsSink) Record(op trace.Op, _ int) { s.ops = append(s.ops, op) }

func TestClassRoundTrip(t *testing.T) {
	for _, c := range AllClasses() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("no-such-class"); err == nil {
		t.Error("ParseClass accepted garbage")
	}
	if Evict.IsBug() {
		t.Error("evict must not be a bug class")
	}
	for _, c := range []Class{DropFlush, DropFence, WeakenFence, TornStore, DelayFlush} {
		if !c.IsBug() {
			t.Errorf("%s must be a bug class", c)
		}
	}
}

func TestCensusMatchesDeviceStats(t *testing.T) {
	dev := pmem.New(1<<12, nil)
	hook := NewCensus(dev)
	dev.SetFaultHook(hook)
	buf := make([]byte, 24)
	for i := 0; i < 5; i++ {
		dev.Store(uint64(i)*64, buf)    // big store
		dev.Store64(uint64(i)*64+32, 7) // 8-byte store
		dev.CLWB(uint64(i)*64, 64)
		dev.SFence()
	}
	c := hook.Census()
	stores, flushes, fences := dev.Stats()
	if uint64(c.Stores) != stores || uint64(c.Flushes) != flushes || uint64(c.Fences) != fences {
		t.Fatalf("census %+v disagrees with device stats %d/%d/%d", c, stores, flushes, fences)
	}
	if c.BigStores != 5 {
		t.Fatalf("big stores = %d, want 5", c.BigStores)
	}
	if c.Sites(TornStore) != 5 || c.Sites(DropFlush) != 5 || c.Sites(DropFence) != 5 || c.Sites(Evict) != 10 {
		t.Fatalf("site counts wrong: %+v", c)
	}
}

// TestInjectorTargetsExactSite verifies that each class perturbs exactly
// the site-th occurrence of its primitive and nothing else.
func TestInjectorTargetsExactSite(t *testing.T) {
	run := func(class Class, site int) (*pmem.Device, *Injector, *opsSink) {
		sink := &opsSink{}
		dev := pmem.New(1<<12, sink)
		inj := NewInjector(dev, class, site, rand.New(rand.NewSource(9)))
		dev.SetFaultHook(inj)
		buf := make([]byte, 16)
		for i := 0; i < 3; i++ {
			dev.Store(uint64(i)*64, buf)
			dev.CLWB(uint64(i)*64, 16)
			dev.SFence()
		}
		return dev, inj, sink
	}

	// drop-flush site 1: exactly one clwb disappears from the trace.
	_, inj, sink := run(DropFlush, 1)
	if !inj.Injected() {
		t.Fatal("drop-flush not injected")
	}
	if n := countKind(sink.ops, trace.KindFlush); n != 2 {
		t.Fatalf("drop-flush: %d flush ops, want 2", n)
	}

	// drop-fence site 2: the last fence disappears, leaving its window
	// dirty.
	dev, inj, sink := run(DropFence, 2)
	if !inj.Injected() {
		t.Fatal("drop-fence not injected")
	}
	if n := countKind(sink.ops, trace.KindFence); n != 2 {
		t.Fatalf("drop-fence: %d fence ops, want 2", n)
	}
	if dev.DirtyLines() != 1 {
		t.Fatalf("dropped final fence left %d dirty lines, want 1", dev.DirtyLines())
	}

	// torn-store site 1: store 1 is recorded as its 8-byte prefix and a
	// deferred 8-byte tail lands after the next fence.
	dev, inj, sink = run(TornStore, 1)
	if !inj.Injected() {
		t.Fatal("torn-store not injected")
	}
	var sizes []uint64
	for _, op := range sink.ops {
		if op.Kind == trace.KindWrite {
			sizes = append(sizes, op.Size)
		}
	}
	// stores: full(16), torn prefix(8), tail(8) after fence, full(16)
	want := []uint64{16, 8, 8, 16}
	if len(sizes) != len(want) {
		t.Fatalf("torn-store writes %v, want sizes %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("torn-store writes %v, want sizes %v", sizes, want)
		}
	}
	// The tail re-issue leaves its line dirty again (nothing flushes it).
	if dev.DirtyLines() != 1 {
		t.Fatalf("torn tail rescued: %d dirty lines, want 1", dev.DirtyLines())
	}

	// delay-flush site 0: the flush re-appears after the fence, so the
	// line misses the ordering point.
	dev, inj, sink = run(DelayFlush, 0)
	if !inj.Injected() {
		t.Fatal("delay-flush not injected")
	}
	idxFlush, idxFence := -1, -1
	for i, op := range sink.ops {
		if op.Kind == trace.KindFlush && idxFlush < 0 {
			idxFlush = i
		}
		if op.Kind == trace.KindFence && idxFence < 0 {
			idxFence = i
		}
	}
	if idxFlush < idxFence {
		t.Fatalf("delayed flush at %d not after fence at %d", idxFlush, idxFence)
	}
	// The flush is deferred, not dropped: all three still appear (the
	// next op's fence then legitimately drains the late line).
	if n := countKind(sink.ops, trace.KindFlush); n != 3 {
		t.Fatalf("delay-flush: %d flush ops, want 3", n)
	}
	_ = dev

	// weaken-fence site 1: every flush in fence 1's window dropped, the
	// fence itself survives.
	dev, inj, sink = run(WeakenFence, 1)
	if !inj.Injected() {
		t.Fatal("weaken-fence not injected")
	}
	if n := countKind(sink.ops, trace.KindFence); n != 3 {
		t.Fatalf("weaken-fence: %d fences, want 3 (fence must survive)", n)
	}
	if n := countKind(sink.ops, trace.KindFlush); n != 2 {
		t.Fatalf("weaken-fence: %d flushes, want 2", n)
	}
	if dev.DirtyLines() != 1 {
		t.Fatalf("weakened window drained: %d dirty, want 1", dev.DirtyLines())
	}

	// evict: at store site 1 the line of store 0 is still dirty, so it
	// is made durable early — no trace op, nothing lost.
	sink = &opsSink{}
	dev = pmem.New(1<<12, sink)
	inj = NewInjector(dev, Evict, 1, rand.New(rand.NewSource(9)))
	dev.SetFaultHook(inj)
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = 0xAB
	}
	dev.Store(0, buf)
	dev.Store(64, buf)
	if !inj.Injected() {
		t.Fatal("evict not injected")
	}
	if len(sink.ops) != 2 {
		t.Fatalf("evict perturbed the trace: %d ops, want 2", len(sink.ops))
	}
	if dev.DirtyLines() != 1 {
		t.Fatalf("evict: %d dirty lines, want 1 (line 0 evicted, line 64 dirty)", dev.DirtyLines())
	}
	if img := dev.Image(); img[0] != 0xAB || img[15] != 0xAB || img[64] != 0 {
		t.Fatalf("eviction durability wrong: img[0]=%#x img[64]=%#x", img[0], img[64])
	}
}

func countKind(ops []trace.Op, k trace.Kind) int {
	n := 0
	for _, op := range ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

func TestExplore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Exhaustive at or below budget.
	s := Explore(DropFlush, 4, 8, rng)
	if len(s) != 4 {
		t.Fatalf("exhaustive explore returned %d schedules, want 4", len(s))
	}
	for i, sc := range s {
		if sc.Site != i || sc.Class != DropFlush {
			t.Fatalf("schedule %d = %+v", i, sc)
		}
	}
	// Random distinct beyond budget, deterministic per seed.
	a := Explore(DropFence, 100, 6, rand.New(rand.NewSource(7)))
	b := Explore(DropFence, 100, 6, rand.New(rand.NewSource(7)))
	if len(a) != 6 {
		t.Fatalf("budgeted explore returned %d schedules, want 6", len(a))
	}
	seen := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("explore not deterministic: %+v vs %+v", a, b)
		}
		if seen[a[i].Site] {
			t.Fatalf("duplicate site %d in %+v", a[i].Site, a)
		}
		seen[a[i].Site] = true
		if i > 0 && a[i].Site < a[i-1].Site {
			t.Fatalf("sites not sorted: %+v", a)
		}
	}
	if Explore(DropFlush, 0, 8, rng) != nil {
		t.Fatal("explore of zero sites must be empty")
	}
}

func TestSubSeedStable(t *testing.T) {
	a := subSeed(42, "ctree", "drop-flush")
	b := subSeed(42, "ctree", "drop-flush")
	c := subSeed(42, "ctree", "drop-fence")
	d := subSeed(43, "ctree", "drop-flush")
	if a != b {
		t.Fatal("subSeed not stable")
	}
	if a == c || a == d {
		t.Fatal("subSeed collisions across parts/seeds")
	}
}
