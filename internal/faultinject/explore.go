package faultinject

import (
	"hash/fnv"
	"math/rand"
	"sort"
)

// Schedule is one fault-injection plan: inject class at the site-th
// occurrence of its primitive.
type Schedule struct {
	Class Class
	Site  int
}

// Explore picks the schedules to run for one class. When the census
// exposes at most budget sites the exploration is exhaustive (every site
// is tried, so the campaign's per-class verdict is complete); beyond
// that, budget distinct sites are drawn from the seeded rng. The result
// is sorted by site either way, so schedule order — and therefore every
// downstream artifact — depends only on the seed.
func Explore(class Class, sites, budget int, rng *rand.Rand) []Schedule {
	if sites <= 0 {
		return nil
	}
	picked := make([]int, 0, sites)
	if budget <= 0 || sites <= budget {
		for i := 0; i < sites; i++ {
			picked = append(picked, i)
		}
	} else {
		picked = append(picked, rng.Perm(sites)[:budget]...)
		sort.Ints(picked)
	}
	out := make([]Schedule, len(picked))
	for i, s := range picked {
		out[i] = Schedule{Class: class, Site: s}
	}
	return out
}

// subSeed derives a stable per-purpose seed from the campaign seed, so
// each (target, class, schedule) consumes an independent random stream
// and adding a schedule never shifts another's randomness.
func subSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}
