package faultinject

import (
	"testing"

	"pmtest/internal/core"
	"pmtest/internal/trace"
)

func TestMinimizeToKnownCore(t *testing.T) {
	// A not-persisted bug buried in unrelated, correctly-persisted
	// traffic: the minimal reproducer is just the unflushed write and
	// the checker that catches it.
	var ops []trace.Op
	for i := 0; i < 6; i++ {
		a := uint64(i) * 64
		ops = append(ops,
			trace.Op{Kind: trace.KindWrite, Addr: a, Size: 8},
			trace.Op{Kind: trace.KindFlush, Addr: a, Size: 8},
			trace.Op{Kind: trace.KindFence},
			trace.Op{Kind: trace.KindIsPersist, Addr: a, Size: 8})
	}
	ops = append(ops,
		trace.Op{Kind: trace.KindWrite, Addr: 0x1000, Size: 8},
		trace.Op{Kind: trace.KindIsPersist, Addr: 0x1000, Size: 8})

	pred := func(o []trace.Op) bool {
		return core.CheckTrace(core.X86{}, &trace.Trace{Ops: o}).HasCode(core.CodeNotPersisted)
	}
	min := Minimize(ops, pred)
	if len(min) != 2 {
		t.Fatalf("minimized to %d ops, want 2:\n%v", len(min), (&trace.Trace{Ops: min}).String())
	}
	if min[0].Addr != 0x1000 || min[1].Kind != trace.KindIsPersist {
		t.Fatalf("wrong core: %v", min)
	}
	if !pred(min) {
		t.Fatal("minimized trace no longer reproduces")
	}

	// Determinism: same input, same output.
	again := Minimize(ops, pred)
	if len(again) != len(min) || again[0] != min[0] || again[1] != min[1] {
		t.Fatalf("minimization not deterministic: %v vs %v", again, min)
	}
}

func TestMinimizePredFalseReturnsInput(t *testing.T) {
	ops := []trace.Op{{Kind: trace.KindWrite, Addr: 0, Size: 8}}
	got := Minimize(ops, func([]trace.Op) bool { return false })
	if len(got) != 1 {
		t.Fatalf("pred-false input mangled: %v", got)
	}
	if got := Minimize(nil, func([]trace.Op) bool { return true }); len(got) != 0 {
		t.Fatalf("empty input mangled: %v", got)
	}
}

// TestMinimizeSurvivesCheckerPanic: ddmin explores op subsequences that
// can be malformed for the rules; the engine's panic recovery turns
// those into checker-panic diagnostics instead of killing minimization.
func TestMinimizeSurvivesCheckerPanic(t *testing.T) {
	ops := []trace.Op{
		{Kind: trace.KindWrite, Addr: ^uint64(0) - 4, Size: 8}, // overflowing range
		{Kind: trace.KindWrite, Addr: 0x40, Size: 8},
		{Kind: trace.KindIsPersist, Addr: 0x40, Size: 8},
	}
	pred := func(o []trace.Op) bool {
		return core.CheckTrace(core.X86{}, &trace.Trace{Ops: o}).HasCode(core.CodeNotPersisted)
	}
	if !pred(ops) {
		t.Skip("input does not reproduce on this rule set")
	}
	min := Minimize(ops, pred)
	if !pred(min) || len(min) > 2 {
		t.Fatalf("minimization failed: %v", min)
	}
}
