package faultinject

import (
	"reflect"
	"testing"
)

func TestRankFromFindings(t *testing.T) {
	r := RankFromFindings(map[string]int{
		"missedflush":  2,
		"crossflush":   1,
		"missedfence":  4,
		"txnolog":      1,
		"staleignore":  9, // unmapped: hygiene, not a machine fault
		"no-such-rule": 9,
	})
	want := map[Class]float64{
		DropFlush: 3, Evict: 3,
		DropFence: 4, WeakenFence: 4,
		TornStore: 1,
	}
	if !reflect.DeepEqual(r.Weight, want) {
		t.Fatalf("weights = %v, want %v", r.Weight, want)
	}
}

func TestRankOrder(t *testing.T) {
	all := AllClasses()
	r := RankFromFindings(map[string]int{"missedfence": 3, "doubleflush": 1})
	got := r.Order(all)
	// Fence faults (weight 3) first, then DelayFlush (1), then the
	// zero-weight classes in declaration order.
	want := []Class{DropFence, WeakenFence, DelayFlush, DropFlush, TornStore, Evict}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(all, AllClasses()) {
		t.Fatal("Order mutated its input")
	}

	// Nil and empty ranks preserve the input order.
	var nilRank *StaticRank
	if got := nilRank.Order(all); !reflect.DeepEqual(got, all) {
		t.Fatalf("nil rank reordered: %v", got)
	}
	if got := (&StaticRank{}).Order(all); !reflect.DeepEqual(got, all) {
		t.Fatalf("empty rank reordered: %v", got)
	}
}

func TestDiscoveryAUC(t *testing.T) {
	mk := func(class string, demo ...bool) []Outcome {
		out := make([]Outcome, len(demo))
		for i, d := range demo {
			out[i] = Outcome{Class: class, Demonstrated: d}
		}
		return out
	}

	// One bug found on the first of four schedules: fractions 1,1,1,1.
	early := []TargetResult{{Workload: "w", Outcomes: mk("drop-flush", true, false, false, false)}}
	if got := discoveryAUC(early); got != 1.0 {
		t.Fatalf("early AUC = %v, want 1.0", got)
	}
	// Same bug found only on the last schedule: fractions 0,0,0,1.
	late := []TargetResult{{Workload: "w", Outcomes: mk("drop-flush", false, false, false, true)}}
	if got := discoveryAUC(late); got != 0.25 {
		t.Fatalf("late AUC = %v, want 0.25", got)
	}
	// Re-demonstrating the same (workload, class) is not a new bug.
	repeat := []TargetResult{{Workload: "w", Outcomes: mk("drop-flush", true, true)}}
	if got := discoveryAUC(repeat); got != 1.0 {
		t.Fatalf("repeat AUC = %v, want 1.0", got)
	}
	// Two bugs across targets, found at steps 1 and 3 of 4: 1/2, 1/2, 1, 1.
	two := []TargetResult{
		{Workload: "a", Outcomes: mk("drop-flush", true, false)},
		{Workload: "b", Outcomes: mk("drop-flush", true, false)},
	}
	if got := discoveryAUC(two); got != 0.75 {
		t.Fatalf("two-bug AUC = %v, want 0.75", got)
	}
	// No schedules, or no demonstrated bugs: 0 by definition.
	if got := discoveryAUC(nil); got != 0 {
		t.Fatalf("empty AUC = %v, want 0", got)
	}
	none := []TargetResult{{Workload: "w", Outcomes: mk("drop-flush", false, false)}}
	if got := discoveryAUC(none); got != 0 {
		t.Fatalf("no-bug AUC = %v, want 0", got)
	}
}

// TestCampaignRankReorders: a ranked campaign records its classes in
// rank order and remains seed-reproducible schedule for schedule.
func TestCampaignRankReorders(t *testing.T) {
	tgt, ok := TargetByName("echo")
	if !ok {
		t.Fatal("target echo missing")
	}
	cfg := Defaults()
	cfg.Seed = 7
	cfg.Ops = 2
	cfg.Budget = 2
	cfg.Rank = RankFromFindings(map[string]int{"missedfence": 5, "missedflush": 1})
	res, err := Run(cfg, []Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"drop-fence", "weaken-fence", "drop-flush", "evict", "torn-store", "delay-flush"}
	if !reflect.DeepEqual(res.Classes, want) {
		t.Fatalf("ranked classes = %v, want %v", res.Classes, want)
	}
	if len(res.Targets) != 1 || len(res.Targets[0].Outcomes) == 0 {
		t.Fatal("ranked campaign produced no outcomes")
	}
	// Outcomes must follow the ranked class order.
	idx := map[string]int{}
	for i, cl := range want {
		idx[cl] = i
	}
	last := -1
	for _, o := range res.Targets[0].Outcomes {
		if idx[o.Class] < last {
			t.Fatalf("outcome for %s ran before a lower-ranked class finished", o.Class)
		}
		last = idx[o.Class]
	}
	if res.DiscoveryAUC < 0 || res.DiscoveryAUC > 1 {
		t.Fatalf("DiscoveryAUC = %v out of [0,1]", res.DiscoveryAUC)
	}

	res2, err := Run(cfg, []Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if res.DiscoveryAUC != res2.DiscoveryAUC {
		t.Fatalf("DiscoveryAUC not reproducible: %v vs %v", res.DiscoveryAUC, res2.DiscoveryAUC)
	}
}
