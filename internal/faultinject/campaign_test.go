package faultinject

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/obs"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// TestTargetsBaselineClean: without injection, every suite workload runs
// with zero FAIL diagnostics per section and survives a clean-shutdown
// crash with all operations recoverable. This is the control the
// campaign's verdicts rest on.
func TestTargetsBaselineClean(t *testing.T) {
	const ops = 3
	for _, tgt := range Targets() {
		t.Run(tgt.Name, func(t *testing.T) {
			rec := &recorder{}
			dev := pmem.New(tgt.DevSize, rec)
			st, err := tgt.New(dev)
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			for i := 0; i < ops; i++ {
				rec.ops = rec.ops[:0]
				if err := st.Do(i); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				rep := core.CheckTrace(core.X86{}, &trace.Trace{Ops: rec.ops})
				if rep.Fails() > 0 {
					t.Fatalf("baseline op %d not clean:\n%s", i, rep.Summary())
				}
			}
			dev.DrainAll()
			if err := st.Verify(dev.Image(), ops); err != nil {
				t.Fatalf("baseline recovery failed: %v", err)
			}
		})
	}
}

// TestCampaignSoundness is the headline check: on a fixed seed, every
// bug class that injects is flagged by the engine AND demonstrated by a
// concrete failing crash state, the legal class produces neither flags
// nor failures, and every recorded reproducer replays to the same
// verdict.
func TestCampaignSoundness(t *testing.T) {
	cfg := Defaults()
	cfg.Seed = 42
	var targets []Target
	for _, name := range []string{"echo", "hashmap-ll"} {
		tgt, ok := TargetByName(name)
		if !ok {
			t.Fatalf("target %s missing", name)
		}
		targets = append(targets, tgt)
	}
	m := obs.NewMetrics(1)
	cfg.Metrics = m
	res, err := Run(cfg, targets)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.Soundness(); len(bad) != 0 {
		t.Fatalf("soundness violations: %v", bad)
	}
	if res.FaultsInjected == 0 || res.RecoveryFailures == 0 {
		t.Fatalf("campaign did nothing: %d injected, %d recovery failures",
			res.FaultsInjected, res.RecoveryFailures)
	}
	if res.SchedulesRun != res.SchedulesPlanned {
		t.Fatalf("ran %d of %d schedules without a deadline", res.SchedulesRun, res.SchedulesPlanned)
	}
	if len(res.Repros) == 0 {
		t.Fatal("no reproducers recorded")
	}
	for _, r := range res.Repros {
		if !r.Reproduces(nil) {
			t.Errorf("repro %s does not replay to %s", r.ID, r.Code)
		}
		if len(r.Ops) >= r.OrigOps && r.OrigOps > 2 {
			t.Errorf("repro %s not minimized: %d of %d ops", r.ID, len(r.Ops), r.OrigOps)
		}
		if r.ImageHash == "" || r.Seed != cfg.Seed {
			t.Errorf("repro %s missing evidence fields: %+v", r.ID, r)
		}
	}
	// Campaign accounting flows into the observability registry.
	s := m.Snapshot()
	if s.CampaignSchedules != uint64(res.SchedulesRun) ||
		s.FaultsInjected != res.FaultsInjected ||
		s.CrashStatesExplored != res.StatesExplored ||
		s.RecoveryFailures != res.RecoveryFailures {
		t.Fatalf("metrics disagree with result: %+v vs %+v", s, res)
	}
}

// TestCampaignSeedReproducible: the whole result marshals bit-for-bit
// identically across two runs with the same seed, and differs for a
// different seed.
func TestCampaignSeedReproducible(t *testing.T) {
	tgt, _ := TargetByName("echo")
	cfg := Defaults()
	cfg.Seed = 7
	run := func(c Config) []byte {
		res, err := Run(c, []Target{tgt})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(cfg), run(cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different results")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	if bytes.Equal(a, run(cfg2)) {
		t.Fatal("different seed produced identical results (seed unused?)")
	}
}

// TestCampaignDeadline: an immediately-expired deadline yields a
// structured partial result, not a crash.
func TestCampaignDeadline(t *testing.T) {
	tgt, _ := TargetByName("echo")
	cfg := Defaults()
	cfg.Seed = 1
	cfg.Deadline = time.Nanosecond
	m := obs.NewMetrics(1)
	cfg.Metrics = m
	res, err := Run(cfg, []Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineExpired {
		t.Fatal("deadline did not expire")
	}
	if res.SchedulesRun >= res.SchedulesPlanned {
		t.Fatalf("deadline did not truncate: ran %d of %d", res.SchedulesRun, res.SchedulesPlanned)
	}
	if len(res.Targets) == 0 {
		t.Fatal("partial result lost its target slice")
	}
	if m.Snapshot().CampaignDeadlineHits != 1 {
		t.Fatalf("deadline hit not counted: %d", m.Snapshot().CampaignDeadlineHits)
	}
}

func TestCampaignRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTargetByName(t *testing.T) {
	names := TargetNames()
	if len(names) != 8 {
		t.Fatalf("suite has %d targets, want 8: %v", len(names), names)
	}
	for _, n := range names {
		if _, ok := TargetByName(n); !ok {
			t.Fatalf("TargetByName(%q) failed", n)
		}
	}
	if _, ok := TargetByName("nope"); ok {
		t.Fatal("TargetByName accepted garbage")
	}
}
