package faultinject

import "sort"

// Static-guided exploration (WITCHER's thesis applied to scheduling):
// pmlint's interprocedural findings say which persistency obligations the
// program already gets wrong on some path, and those are exactly the
// mechanisms a machine-level fault is most likely to turn into a
// demonstrable recovery failure. A StaticRank turns per-rule finding
// counts into per-class weights and reorders the campaign's class
// iteration so the statically suspicious classes spend the schedule
// budget first. The payoff is measured, not assumed: Result.DiscoveryAUC
// is the bugs-found-per-schedule-prefix metric, and a rank is worth
// shipping only if it raises it.

// StaticRank weights fault classes by static suspicion. The zero value
// and nil are both valid (no reordering).
type StaticRank struct {
	Weight map[Class]float64 `json:"weight"`
}

// ruleClasses maps each pmlint rule to the fault classes its findings
// implicate. Writeback bugs (a store some path never flushes) are the
// ones a dropped flush — or a legal eviction — turns into data loss;
// ordering bugs pair with the fence faults; redundant-writeback findings
// mark code whose flush discipline is loose enough that a delayed flush
// slips an ordering point; unlogged tx writes are where a torn store
// defeats recovery's undo log. checkermisuse is annotation hygiene with
// no machine-level counterpart, so it carries no weight.
var ruleClasses = map[string][]Class{
	"missedflush":    {DropFlush, Evict},
	"crossflush":     {DropFlush, Evict},
	"recoveryread":   {DropFlush, Evict},
	"missedfence":    {DropFence, WeakenFence},
	"doubleflush":    {DelayFlush},
	"redundantflush": {DelayFlush},
	"txnolog":        {TornStore},
}

// RankFromFindings builds a rank from per-rule finding counts — the
// shape of lint's CensusResult.ByRule. Rules the mapping does not know
// (including staleignore) contribute nothing.
func RankFromFindings(byRule map[string]int) *StaticRank {
	r := &StaticRank{Weight: map[Class]float64{}}
	for rule, n := range byRule {
		for _, cl := range ruleClasses[rule] {
			r.Weight[cl] += float64(n)
		}
	}
	return r
}

// Order returns classes sorted by descending weight. Ties — and a nil or
// empty rank — preserve the input order, so the declaration-order
// taxonomy remains the baseline. The input slice is not mutated.
func (r *StaticRank) Order(classes []Class) []Class {
	out := append([]Class(nil), classes...)
	if r == nil || len(r.Weight) == 0 {
		return out
	}
	sort.SliceStable(out, func(i, j int) bool {
		return r.Weight[out[i]] > r.Weight[out[j]]
	})
	return out
}

// discoveryAUC computes the bugs-found-per-schedule-prefix metric over
// the campaign's outcomes in the order they ran. A "bug" is a distinct
// (workload, class) pair demonstrated by a failing crash state; after
// each schedule the fraction of all such bugs discovered so far is
// taken, and the metric is the mean of those fractions. 1.0 means every
// bug fell out of the very first schedules; a campaign that finds its
// bugs only at the end scores near 0. Deterministic given the outcomes.
func discoveryAUC(targets []TargetResult) float64 {
	type bug struct{ workload, class string }
	total := map[bug]bool{}
	type step struct {
		b    bug
		demo bool
	}
	var steps []step
	for _, tr := range targets {
		for _, o := range tr.Outcomes {
			b := bug{tr.Workload, o.Class}
			steps = append(steps, step{b, o.Demonstrated})
			if o.Demonstrated {
				total[b] = true
			}
		}
	}
	if len(steps) == 0 || len(total) == 0 {
		return 0
	}
	found := map[bug]bool{}
	sum := 0.0
	for _, s := range steps {
		if s.demo {
			found[s.b] = true
		}
		sum += float64(len(found)) / float64(len(total))
	}
	return sum / float64(len(steps))
}
