package dist

import (
	"testing"
	"time"
)

// TestBackoffDelay: the exponential schedule doubles from Base, caps at
// Max, and jitter only ever shortens a delay (never lengthens past the
// deterministic envelope).
func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5}
	noJitter := func() float64 { return 0 }
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 10 * time.Millisecond},
		{1, 20 * time.Millisecond},
		{2, 40 * time.Millisecond},
		{3, 80 * time.Millisecond},
		{4, 80 * time.Millisecond}, // capped
		{9, 80 * time.Millisecond},
	}
	for _, c := range cases {
		if got := b.Delay(c.attempt, noJitter); got != c.want {
			t.Errorf("Delay(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
}

// TestBackoffJitterBounds: for any rnd in [0,1), the delay stays within
// [d*(1-Jitter), d] and never collapses below the 1ms floor.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 40 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for _, r := range []float64{0, 0.25, 0.5, 0.9999} {
		rnd := func() float64 { return r }
		got := b.Delay(0, rnd)
		if got > 40*time.Millisecond || got < 20*time.Millisecond {
			t.Errorf("Delay(0) with rnd=%v = %v, want within [20ms, 40ms]", r, got)
		}
	}
	tiny := Backoff{Base: time.Microsecond, Max: time.Microsecond, Jitter: 0.5}
	if got := tiny.Delay(0, func() float64 { return 0.9 }); got < time.Millisecond {
		t.Errorf("delay floor violated: %v", got)
	}
}

// TestBackoffDefaults: the zero value is usable.
func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.Delay(0, nil); got != 25*time.Millisecond {
		t.Errorf("zero-value Delay(0) = %v, want 25ms", got)
	}
	if got := b.Delay(20, nil); got != time.Second {
		t.Errorf("zero-value Delay(20) = %v, want the 1s cap", got)
	}
}
