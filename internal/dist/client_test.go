package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// funcTransport adapts closures to the Transport interface, so each
// test scripts node behavior without a network.
type funcTransport struct {
	openFn    func(node string, req OpenRequest) (OpenResponse, error)
	sectionFn func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error)
	closeFn   func(node, sid string) error
	healthFn  func(node string) error
}

func (f *funcTransport) Open(_ context.Context, node string, req OpenRequest) (OpenResponse, error) {
	if f.openFn == nil {
		return OpenResponse{Session: req.Session, NextSeq: req.StartSeq}, nil
	}
	return f.openFn(node, req)
}

// Section drops the correlation span ID: these tests script delivery
// and failure behavior, which is independent of span propagation (the
// loopback correlation test covers the header end-to-end).
func (f *funcTransport) Section(_ context.Context, node, sid string, seq uint64, payload []byte, crc uint32, _ uint64) (core.Report, error) {
	return f.sectionFn(node, sid, seq, payload, crc)
}

func (f *funcTransport) CloseSession(_ context.Context, node, sid string) error {
	if f.closeFn == nil {
		return nil
	}
	return f.closeFn(node, sid)
}

func (f *funcTransport) Health(_ context.Context, node string) error {
	if f.healthFn == nil {
		return nil
	}
	return f.healthFn(node)
}

// testCoordinator builds a coordinator with a fake clock, recorded
// sleeps, and fresh metrics.
func testCoordinator(t *testing.T, nodes []string, tr Transport, mod func(*Options)) (*Coordinator, *obs.Metrics, *[]time.Duration) {
	t.Helper()
	var (
		mu     sync.Mutex
		sleeps []time.Duration
	)
	clock := newFakeClock()
	opts := Options{
		Nodes:     nodes,
		Transport: tr,
		Metrics:   obs.NewMetrics(8),
		Backoff:   Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.0001},
		now:       clock.now,
		sleep: func(d time.Duration) {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
		},
	}
	if mod != nil {
		mod(&opts)
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, opts.Metrics, &sleeps
}

func testTrace(i int) *trace.Trace {
	addr := uint64(0x1000 + i*64)
	return &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindWrite, Addr: addr, Size: 64},
		{Kind: trace.KindFlush, Addr: addr, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsPersist, Addr: addr, Size: 64},
	}}
}

func ackReport(seq uint64) core.Report { return core.Report{TraceID: int(seq), Ops: 4, TrackedOps: 3} }

// TestRetryThenSuccess: transient section failures retry with backoff
// on the same node and the section is acked exactly once.
func TestRetryThenSuccess(t *testing.T) {
	var calls int
	tr := &funcTransport{
		sectionFn: func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
			calls++
			if calls <= 2 {
				return core.Report{}, errors.New("connection reset")
			}
			return ackReport(seq), nil
		},
	}
	c, m, sleeps := testCoordinator(t, []string{"a:1"}, tr, nil)
	s := c.OpenSession("retry", core.X86{})
	s.Submit(testTrace(0))
	reports := s.Close()

	if len(reports) != 1 || reports[0].TraceID != 0 {
		t.Fatalf("reports = %+v, want one with TraceID 0", reports)
	}
	snap := m.Snapshot()
	if snap.DistRetries != 2 || snap.DistRPCErrors != 2 || snap.DistSectionsSent != 1 {
		t.Fatalf("retries=%d rpc_errors=%d sent=%d, want 2/2/1",
			snap.DistRetries, snap.DistRPCErrors, snap.DistSectionsSent)
	}
	if snap.DistFailovers != 0 || snap.DistFallbacks != 0 {
		t.Fatalf("unexpected failovers=%d fallbacks=%d", snap.DistFailovers, snap.DistFallbacks)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("recorded %d backoff sleeps, want 2", len(*sleeps))
	}
	// First retry waits ~Base, second ~2*Base (minus bounded jitter).
	if (*sleeps)[0] > 10*time.Millisecond || (*sleeps)[0] < 5*time.Millisecond ||
		(*sleeps)[1] > 20*time.Millisecond || (*sleeps)[1] <= (*sleeps)[0] {
		t.Fatalf("backoff sleeps %v not exponential from 10ms", *sleeps)
	}
}

// TestFailoverReplaysUnacked: when the session's node dies mid-stream,
// the client re-opens on the next node with StartSeq at the head of the
// unacknowledged buffer and replays everything from there.
func TestFailoverReplaysUnacked(t *testing.T) {
	var (
		mu        sync.Mutex
		opens     = map[string][]uint64{} // node → StartSeqs
		dead      string
		secByNode = map[string][]uint64{}
	)
	tr := &funcTransport{}
	tr.openFn = func(node string, req OpenRequest) (OpenResponse, error) {
		mu.Lock()
		defer mu.Unlock()
		if node == dead {
			return OpenResponse{}, errors.New("connection refused")
		}
		opens[node] = append(opens[node], req.StartSeq)
		return OpenResponse{Session: req.Session, NextSeq: req.StartSeq}, nil
	}
	tr.sectionFn = func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
		mu.Lock()
		defer mu.Unlock()
		if node == dead {
			return core.Report{}, errors.New("connection refused")
		}
		secByNode[node] = append(secByNode[node], seq)
		return ackReport(seq), nil
	}

	c, m, _ := testCoordinator(t, []string{"a:1", "b:1"}, tr, nil)
	s := c.OpenSession("failover", core.X86{})
	// Land the first two sections, then kill the home node.
	s.Submit(testTrace(0))
	s.Submit(testTrace(1))
	s.Wait()
	home := s.Node()
	mu.Lock()
	dead = home
	mu.Unlock()
	for i := 2; i < 5; i++ {
		s.Submit(testTrace(i))
	}
	reports := s.Close()

	if len(reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(reports))
	}
	for i, r := range reports {
		if r.TraceID != i {
			t.Fatalf("report %d has TraceID %d", i, r.TraceID)
		}
	}
	snap := m.Snapshot()
	if snap.DistFailovers != 1 {
		t.Fatalf("failovers = %d, want 1", snap.DistFailovers)
	}
	var other string
	for _, n := range []string{"a:1", "b:1"} {
		if n != home {
			other = n
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if got := opens[other]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("failover opens on %s = %v, want [2]", other, got)
	}
	if got := secByNode[other]; len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("replayed sections on %s = %v, want [2 3 4]", other, got)
	}
	if s.Node() != other {
		t.Fatalf("session node = %q, want %q after failover", s.Node(), other)
	}
}

// TestSessionLostReopensSameNode: a 404 (node restarted, TTL reap)
// re-opens the session on the same node with the replay window at the
// failed seq — no failover is counted.
func TestSessionLostReopens(t *testing.T) {
	var (
		mu    sync.Mutex
		opens []uint64
		lost  = true
	)
	tr := &funcTransport{}
	tr.openFn = func(node string, req OpenRequest) (OpenResponse, error) {
		mu.Lock()
		defer mu.Unlock()
		opens = append(opens, req.StartSeq)
		return OpenResponse{Session: req.Session, NextSeq: req.StartSeq}, nil
	}
	tr.sectionFn = func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
		mu.Lock()
		defer mu.Unlock()
		if seq == 1 && lost {
			lost = false
			return core.Report{}, &RPCError{Status: http.StatusNotFound, Msg: "unknown session"}
		}
		return ackReport(seq), nil
	}
	c, m, _ := testCoordinator(t, []string{"a:1"}, tr, nil)
	s := c.OpenSession("lost", core.X86{})
	s.Submit(testTrace(0))
	s.Submit(testTrace(1))
	reports := s.Close()

	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(opens) != 2 || opens[0] != 0 || opens[1] != 1 {
		t.Fatalf("opens = %v, want [0 1]", opens)
	}
	snap := m.Snapshot()
	if snap.DistFailovers != 0 {
		t.Fatalf("failovers = %d, want 0 for a same-node reopen", snap.DistFailovers)
	}
}

// TestRefusedSectionFallsBackLocal: a permanent 4xx on one section is
// not retried; the section is checked in-process so the report stream
// stays complete, and the refusal surfaces as a deferred error.
func TestRefusedSectionFallsBackLocal(t *testing.T) {
	tr := &funcTransport{
		sectionFn: func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
			if seq == 0 {
				return core.Report{}, &RPCError{Status: http.StatusBadRequest, Msg: "undecodable"}
			}
			return ackReport(seq), nil
		},
	}
	c, m, _ := testCoordinator(t, []string{"a:1"}, tr, nil)
	s := c.OpenSession("refused", core.X86{})
	s.Submit(testTrace(0))
	s.Submit(testTrace(1))
	reports := s.Close()

	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	// The fallback actually checked the ops (4 of them), proving it ran
	// the real checker rather than synthesizing an empty report.
	if reports[0].Ops != 4 || reports[0].TraceID != 0 {
		t.Fatalf("fallback report = %+v, want a real 4-op check with TraceID 0", reports[0])
	}
	snap := m.Snapshot()
	if snap.DistFallbacks != 1 || snap.DistSectionsSent != 1 {
		t.Fatalf("fallbacks=%d sent=%d, want 1/1", snap.DistFallbacks, snap.DistSectionsSent)
	}
	if s.Err() == nil {
		t.Fatal("refused section left no deferred error")
	}
}

// TestAllNodesDownDegradesToLocal: with the whole fleet unreachable,
// every section still gets a report via the local fallback engine, the
// breakers open, and Wait never hangs.
func TestAllNodesDownDegradesToLocal(t *testing.T) {
	tr := &funcTransport{
		openFn: func(node string, req OpenRequest) (OpenResponse, error) {
			return OpenResponse{}, errors.New("no route to host")
		},
		sectionFn: func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
			return core.Report{}, errors.New("no route to host")
		},
	}
	c, m, _ := testCoordinator(t, []string{"a:1", "b:1"}, tr, nil)
	s := c.OpenSession("dark-fleet", core.X86{})
	const n = 6
	for i := 0; i < n; i++ {
		s.Submit(testTrace(i))
	}
	reports := s.Close()

	if len(reports) != n {
		t.Fatalf("got %d reports, want %d", len(reports), n)
	}
	for i, r := range reports {
		if r.TraceID != i || r.Ops != 4 {
			t.Fatalf("report %d = %+v, want a real local check", i, r)
		}
	}
	snap := m.Snapshot()
	if snap.DistFallbacks != n {
		t.Fatalf("fallbacks = %d, want %d", snap.DistFallbacks, n)
	}
	if snap.DistBreakerOpens == 0 {
		t.Fatal("breakers never opened against a dark fleet")
	}
	for _, st := range c.BreakerStates() {
		if st != "open" {
			t.Fatalf("breaker states = %v, want all open", c.BreakerStates())
		}
	}
}

// TestDisableFallbackDropsAndErrs: with fallback off, undeliverable
// sections are dropped (counted) and surface a deferred error — but
// Wait still returns instead of hanging.
func TestDisableFallbackDropsAndErrs(t *testing.T) {
	tr := &funcTransport{
		openFn: func(node string, req OpenRequest) (OpenResponse, error) {
			return OpenResponse{}, errors.New("down")
		},
		sectionFn: func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
			return core.Report{}, errors.New("down")
		},
	}
	c, m, _ := testCoordinator(t, []string{"a:1"}, tr, func(o *Options) { o.DisableFallback = true })
	s := c.OpenSession("strict", core.X86{})
	s.Submit(testTrace(0))
	s.Submit(testTrace(1))
	reports := s.Close()

	if len(reports) != 0 {
		t.Fatalf("got %d reports with fallback disabled and fleet down, want 0", len(reports))
	}
	if s.Err() == nil {
		t.Fatal("dropped sections left no deferred error")
	}
	if snap := m.Snapshot(); snap.DistSectionsDropped != 2 {
		t.Fatalf("dropped = %d, want 2", snap.DistSectionsDropped)
	}
}

// TestBufferCapAndBackpressure: with the transport gated shut, the
// unacknowledged buffer never exceeds its cap — Submit blocks — and
// everything completes once the gate opens.
func TestBufferCapAndBackpressure(t *testing.T) {
	var sz int64
	{
		var buf bytes.Buffer
		if err := trace.Encode(&buf, testTrace(0)); err != nil {
			t.Fatal(err)
		}
		sz = int64(buf.Len())
	}
	gate := make(chan struct{})
	tr := &funcTransport{
		sectionFn: func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
			<-gate
			return ackReport(seq), nil
		},
	}
	limit := 2*sz + sz/2 // room for two buffered sections
	c, m, _ := testCoordinator(t, []string{"a:1"}, tr, func(o *Options) { o.BufferLimit = limit })
	s := c.OpenSession("pressure", core.X86{})

	const n = 6
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			s.Submit(testTrace(i))
		}
	}()
	select {
	case <-done:
		t.Fatal("6 submits fit a 2-section buffer without blocking")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	<-done
	reports := s.Close()

	if len(reports) != n {
		t.Fatalf("got %d reports, want %d", len(reports), n)
	}
	snap := m.Snapshot()
	if snap.DistBufferedPeak > limit {
		t.Fatalf("buffered peak %d exceeded the %d cap", snap.DistBufferedPeak, limit)
	}
	if snap.DistBufferedBytes != 0 {
		t.Fatalf("buffered bytes = %d after drain, want 0", snap.DistBufferedBytes)
	}
	if snap.DistSectionsDropped != 0 {
		t.Fatalf("dropped = %d under backpressure mode, want 0", snap.DistSectionsDropped)
	}
}

// TestDropOnOverflow: same gated transport, but overflow drops instead
// of blocking; drops are counted and the cap still holds.
func TestDropOnOverflow(t *testing.T) {
	gate := make(chan struct{})
	tr := &funcTransport{
		sectionFn: func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
			<-gate
			return ackReport(seq), nil
		},
	}
	var sz int64
	{
		var buf bytes.Buffer
		trace.Encode(&buf, testTrace(0))
		sz = int64(buf.Len())
	}
	limit := 2*sz + sz/2
	c, m, _ := testCoordinator(t, []string{"a:1"}, tr, func(o *Options) {
		o.BufferLimit = limit
		o.DropOnOverflow = true
	})
	s := c.OpenSession("overflow", core.X86{})
	const n = 6
	for i := 0; i < n; i++ {
		s.Submit(testTrace(i)) // never blocks
	}
	close(gate)
	reports := s.Close()

	snap := m.Snapshot()
	if snap.DistSectionsDropped == 0 {
		t.Fatal("no drops counted though the buffer overflowed")
	}
	if snap.DistBufferedPeak > limit {
		t.Fatalf("buffered peak %d exceeded the %d cap", snap.DistBufferedPeak, limit)
	}
	if len(reports)+int(snap.DistSectionsDropped) != n {
		t.Fatalf("%d reports + %d drops != %d submits", len(reports), snap.DistSectionsDropped, n)
	}
	// Report IDs keep their submit-order seqs, so the surviving reports
	// are still unambiguous despite the gaps.
	seen := map[int]bool{}
	for _, r := range reports {
		if r.TraceID < 0 || r.TraceID >= n || seen[r.TraceID] {
			t.Fatalf("bad or duplicate TraceID %d", r.TraceID)
		}
		seen[r.TraceID] = true
	}
}

// TestBreakerSkipsDeadNodeAcrossSessions: once a node's breaker opens,
// a new session homed on it routes around without burning retries.
func TestBreakerSkipsDeadNode(t *testing.T) {
	var (
		mu       sync.Mutex
		attempts = map[string]int{}
	)
	tr := &funcTransport{}
	tr.openFn = func(node string, req OpenRequest) (OpenResponse, error) {
		mu.Lock()
		attempts[node]++
		mu.Unlock()
		if node == "a:1" {
			return OpenResponse{}, errors.New("down")
		}
		return OpenResponse{Session: req.Session, NextSeq: req.StartSeq}, nil
	}
	tr.sectionFn = func(node, sid string, seq uint64, payload []byte, crc uint32) (core.Report, error) {
		if node == "a:1" {
			return core.Report{}, errors.New("down")
		}
		return ackReport(seq), nil
	}
	c, _, _ := testCoordinator(t, []string{"a:1", "b:1"}, tr, func(o *Options) { o.BreakerThreshold = 1 })
	// Enough sessions that at least one hashes onto the dead node.
	for i := 0; i < 4; i++ {
		s := c.OpenSession(fmt.Sprintf("sess-%d", i), core.X86{})
		s.Submit(testTrace(i))
		if reports := s.Close(); len(reports) != 1 {
			t.Fatalf("session %d: %d reports, want 1", i, len(reports))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts["a:1"] > 1 {
		t.Fatalf("dead node dialed %d times; breaker should have short-circuited after 1", attempts["a:1"])
	}
}
