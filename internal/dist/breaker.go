package dist

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker lifecycle.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-node circuit breaker: threshold consecutive failures
// open it, the cooldown elapsing lets exactly one probe through
// (half-open), and that probe's outcome closes or re-opens it. The
// clock is injected so tests never sleep.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	onOpen    func() // counted into obs; called outside critical decisions

	state    breakerState
	fails    int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, onOpen func()) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now, onOpen: onOpen}
}

// Allow reports whether a request may be sent. While open it returns
// false until the cooldown elapses, then flips to half-open and admits
// a single probe; further callers are refused until that probe reports.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false
	default: // open
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	}
}

// Success records a completed request, closing the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.mu.Unlock()
}

// Failure records a failed request: it re-opens a half-open breaker
// immediately and opens a closed one at the failure threshold.
func (b *breaker) Failure() {
	b.mu.Lock()
	opened := false
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		opened = true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			opened = true
		}
	}
	cb := b.onOpen
	b.mu.Unlock()
	if opened && cb != nil {
		cb()
	}
}

// State names the current state ("closed", "open", "half-open").
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
