// Package dist is the distributed checking tier: trace sections recorded
// by a program under test stream over HTTP to checker nodes (cmd/pmtestd)
// that host core-engine sessions, so checking capacity scales past one
// process. Decoupled checking makes this safe: a section is a
// self-contained unit of work, so any node — or a fresh node after a
// failover — produces the same report for the same bytes.
//
// The robustness layer is the point of the package: per-RPC deadlines,
// capped exponential backoff with jitter, per-node circuit breakers,
// failover that replays buffered unacknowledged sections on a healthy
// node, and (by default) graceful degradation to a local in-process
// check when every node is down. Every degradation step is observable
// through obs counters (dist_retries, dist_failovers, dist_fallbacks,
// dist_buffered_bytes, ...).
package dist

import (
	"fmt"
	"net/http"

	"pmtest/internal/core"
)

// ProtocolVersion stamps OpenRequest so a node refuses a client speaking
// a different section protocol instead of misinterpreting it.
const ProtocolVersion = 1

// HTTP routes a checker node serves.
const (
	PathOpen    = "/v1/open"
	PathSection = "/v1/section"
	PathClose   = "/v1/close"
	PathHealth  = "/healthz"
	// PathReports is the coordinator read path: GET ?session=<sid>
	// returns every report the node holds for that session (empty list
	// for sessions it never hosted), so a fan-out query across the fleet
	// reassembles a session's reports wherever failovers scattered them.
	PathReports = "/reports/v1/query"
)

// Section request headers. The section body is one trace.Encode'd
// section; the CRC is crc32.ChecksumIEEE over exactly those bytes.
// headerSpan carries the client's originating section span ID for
// cross-node timeline correlation; it is optional in both directions —
// old clients omit it, old nodes ignore it — so the protocol version
// does not bump.
const (
	headerSeq  = "X-Pmtest-Seq"
	headerCRC  = "X-Pmtest-Crc32"
	headerSpan = "X-Pmtest-Span"
)

// OpenRequest establishes (or idempotently re-establishes) a checking
// session on a node. StartSeq is the sequence number of the first
// section this node will receive — 0 for a fresh session, the head of
// the client's unacknowledged buffer after a failover.
type OpenRequest struct {
	Version   int          `json:"version"`
	Session   string       `json:"session"`
	Model     string       `json:"model"`
	TrackOnly bool         `json:"track_only,omitempty"`
	Excludes  []core.Range `json:"excludes,omitempty"`
	StartSeq  uint64       `json:"start_seq"`
}

// OpenResponse acknowledges a session. NextSeq is the sequence number
// the node expects next — equal to StartSeq on a fresh open, further
// along when the open was an idempotent replay.
type OpenResponse struct {
	Session string `json:"session"`
	NextSeq uint64 `json:"next_seq"`
}

// CloseResponse reports how many sections the node checked for the
// session being torn down.
type CloseResponse struct {
	Session  string `json:"session"`
	Sections uint64 `json:"sections"`
}

// ReportsResponse is the PathReports document: the reports a node holds
// for one session, in section order. StartSeq is the seq of the first
// report (the node's replay-window base), so a coordinator merging
// responses from several nodes can place each slice on the session's
// global sequence axis.
type ReportsResponse struct {
	Session  string        `json:"session"`
	StartSeq uint64        `json:"start_seq"`
	Reports  []core.Report `json:"reports"`
}

// RPCError is a non-2xx response from a node, preserving the status so
// the client can classify it (retryable, session-lost, refused).
type RPCError struct {
	Status int
	Msg    string
}

func (e *RPCError) Error() string {
	return fmt.Sprintf("dist: node returned %d: %s", e.Status, e.Msg)
}

// errClass buckets an RPC failure for the retry ladder.
type errClass int

const (
	// classRetryable: transient — network failure, timeout, 5xx, or a
	// CRC mismatch (422, the bytes can be resent intact).
	classRetryable errClass = iota
	// classSessionLost: the node does not know the session (404) or its
	// sequence accounting diverged (409) — re-open with StartSeq at the
	// head of the unacknowledged buffer, on this node or another.
	classSessionLost
	// classRefused: the node understood the request and rejected it
	// permanently (bad protocol version, unknown model, undecodable
	// section) — retrying the same bytes cannot succeed.
	classRefused
)

// classify maps an error from a Transport call to its retry class.
// Anything that is not a typed RPCError is a transport-level failure
// (dial, deadline, connection reset) and therefore retryable.
func classify(err error) errClass {
	re, ok := err.(*RPCError)
	if !ok {
		return classRetryable
	}
	switch {
	case re.Status == http.StatusNotFound, re.Status == http.StatusConflict:
		return classSessionLost
	case re.Status == http.StatusUnprocessableEntity, re.Status >= 500:
		return classRetryable
	default:
		return classRefused
	}
}

// rulesByName maps the wire model names (RuleSet.Name) back to rule
// sets, node-side.
func rulesByName(name string) (core.RuleSet, bool) {
	switch name {
	case "x86", "":
		return core.X86{}, true
	case "arm":
		return core.ARM{}, true
	case "hops":
		return core.HOPS{}, true
	case "epoch":
		return core.Epoch{}, true
	}
	return nil, false
}
