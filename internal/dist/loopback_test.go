package dist

import (
	"bytes"
	"context"
	"hash/crc32"
	"net/http/httptest"
	"strings"
	"testing"

	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// startTestNode hosts a real Node behind an httptest server and returns
// its dialable host:port.
func startTestNode(t *testing.T) (string, *httptest.Server, *Node) {
	t.Helper()
	node := NewNode(NodeConfig{Metrics: obs.NewMetrics(8)})
	srv := httptest.NewServer(node)
	t.Cleanup(func() {
		srv.Close()
		node.Close()
	})
	return strings.TrimPrefix(srv.URL, "http://"), srv, node
}

func encodeSection(t *testing.T, tr *trace.Trace) ([]byte, uint32) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), crc32.ChecksumIEEE(buf.Bytes())
}

// TestNodeProtocol exercises the section protocol against a real node
// over real HTTP: idempotent duplicate delivery, sequence-gap and CRC
// rejection, unknown sessions, and version refusal.
func TestNodeProtocol(t *testing.T) {
	addr, _, _ := startTestNode(t)
	ht := &HTTPTransport{}
	ctx := context.Background()

	or, err := ht.Open(ctx, addr, OpenRequest{Version: ProtocolVersion, Session: "s", Model: "x86"})
	if err != nil {
		t.Fatal(err)
	}
	if or.NextSeq != 0 {
		t.Fatalf("fresh open NextSeq = %d, want 0", or.NextSeq)
	}

	sec0 := testTrace(0)
	sec0.ID = 0
	payload, crc := encodeSection(t, sec0)
	rep, err := ht.Section(ctx, addr, "s", 0, payload, crc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != 0 || rep.Ops != 4 {
		t.Fatalf("section 0 report = %+v", rep)
	}

	// Idempotent redelivery (a retry whose first attempt actually landed)
	// returns the cached report, not a double-check or an error.
	rep2, err := ht.Section(ctx, addr, "s", 0, payload, crc, 0)
	if err != nil {
		t.Fatalf("duplicate section: %v", err)
	}
	if rep2.TraceID != rep.TraceID || rep2.Ops != rep.Ops || rep2.TrackedOps != rep.TrackedOps {
		t.Fatalf("duplicate report %+v != original %+v", rep2, rep)
	}

	// A sequence gap means sections were lost between client and node:
	// the node must refuse (409) so the client re-opens and replays.
	if _, err := ht.Section(ctx, addr, "s", 2, payload, crc, 0); classify(err) != classSessionLost {
		t.Fatalf("seq gap: err = %v, want a session-lost class", err)
	}
	// Corrupt payload: retryable, the client resends the same bytes.
	if _, err := ht.Section(ctx, addr, "s", 1, payload, crc+1, 0); classify(err) != classRetryable {
		t.Fatalf("bad CRC: err = %v, want a retryable class", err)
	}
	if _, err := ht.Section(ctx, addr, "nope", 0, payload, crc, 0); classify(err) != classSessionLost {
		t.Fatalf("unknown session: err = %v, want a session-lost class", err)
	}
	if _, err := ht.Open(ctx, addr, OpenRequest{Version: 99, Session: "v", Model: "x86"}); classify(err) != classRefused {
		t.Fatalf("bad version: err = %v, want a refused class", err)
	}
	if err := ht.Health(ctx, addr); err != nil {
		t.Fatalf("health: %v", err)
	}

	if err := ht.CloseSession(ctx, addr, "s"); err != nil {
		t.Fatalf("close: %v", err)
	}
}
