package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/flight"
	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// NodeConfig configures a checker node.
type NodeConfig struct {
	// Metrics receives engine lifecycle events for every hosted session
	// (scraped via the node's -obs-listen endpoint). Optional.
	Metrics *obs.Metrics
	// Flight records engine check spans for hosted sessions. Optional.
	Flight *flight.Recorder
	// Logger receives session lifecycle records. Optional.
	Logger *slog.Logger
	// Limits bounds each decoded section (trace.DefaultLimits when
	// zero) — a corrupt or hostile length prefix is refused, not
	// allocated.
	Limits trace.Limits
	// MaxSessions bounds concurrently hosted sessions (default 256);
	// opens beyond it are refused with 503 (retryable client-side).
	MaxSessions int
	// SessionTTL reaps sessions idle longer than this (default 5m), so
	// clients that failed over away do not pin engines forever.
	SessionTTL time.Duration
	// Workers is the per-session engine worker count (default 1).
	Workers int
	// Shards enables sharded (address-striped) checking inside each
	// hosted session's engine workers; <= 1 keeps the serial path.
	// Reports stay byte-identical either way.
	Shards int
	// EpochGC enables epoch-based retirement of closed shadow-memory
	// segments in hosted engines, bounding node memory when clients
	// stream very long runs.
	EpochGC bool

	now func() time.Time // test hook
}

// Node hosts core-engine checking sessions behind the HTTP section
// protocol. One Node serves many sessions; cmd/pmtestd runs one Node
// per process.
type Node struct {
	cfg NodeConfig

	mu        sync.Mutex
	sessions  map[string]*nodeSession
	lastSweep time.Time
	closed    bool
}

// nodeSession is one hosted checking session: a dedicated engine plus
// the sequence bookkeeping that makes section delivery idempotent.
type nodeSession struct {
	mu     sync.Mutex
	engine *core.Engine
	// base is the seq of the first section this engine saw; the
	// engine's trace IDs are seq-base.
	base uint64
	// applied is the next seq expected. seq < applied replays the
	// cached report; seq > applied is a gap (409).
	applied  uint64
	reports  []core.Report // engine reports, refreshed after each check
	lastUsed time.Time
}

// NewNode returns a node ready to mount: its ServeHTTP handles the
// /v1/* section protocol and /healthz.
func NewNode(cfg NodeConfig) *Node {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 5 * time.Minute
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Node{cfg: cfg, sessions: make(map[string]*nodeSession), lastSweep: cfg.now()}
}

// Sessions returns the number of currently hosted sessions.
func (n *Node) Sessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.sessions)
}

// Close tears down every hosted session and stops accepting new ones.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	sessions := n.sessions
	n.sessions = make(map[string]*nodeSession)
	n.mu.Unlock()
	for _, s := range sessions {
		s.engine.Close()
	}
}

func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == PathHealth:
		io.WriteString(w, "ok\n")
	case r.URL.Path == PathOpen && r.Method == http.MethodPost:
		n.handleOpen(w, r)
	case r.URL.Path == PathSection && r.Method == http.MethodPost:
		n.handleSection(w, r)
	case r.URL.Path == PathClose && r.Method == http.MethodPost:
		n.handleClose(w, r)
	case r.URL.Path == PathReports && r.Method == http.MethodGet:
		n.handleReports(w, r)
	default:
		http.NotFound(w, r)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

func (n *Node) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad open request: %v", err)
		return
	}
	if req.Version != ProtocolVersion {
		httpError(w, http.StatusBadRequest, "protocol version %d, node speaks %d", req.Version, ProtocolVersion)
		return
	}
	if req.Session == "" {
		httpError(w, http.StatusBadRequest, "empty session id")
		return
	}
	rules, ok := rulesByName(req.Model)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown model %q", req.Model)
		return
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "node shutting down")
		return
	}
	n.sweepLocked()
	sess := n.sessions[req.Session]
	if sess != nil && sess.base != req.StartSeq {
		// A re-open at a different start point supersedes the old
		// incarnation (the client failed over away and came back with a
		// new replay window); the old engine's reports are already held
		// client-side or will be re-checked.
		delete(n.sessions, req.Session)
		go sess.engine.Close()
		sess = nil
	}
	if sess == nil {
		if len(n.sessions) >= n.cfg.MaxSessions {
			n.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "session limit %d reached", n.cfg.MaxSessions)
			return
		}
		excludes := append([]core.Range(nil), req.Excludes...)
		var observers []obs.Observer
		if n.cfg.Metrics != nil {
			observers = append(observers, n.cfg.Metrics)
		}
		if n.cfg.Flight != nil {
			observers = append(observers, flight.EngineObserver(n.cfg.Flight))
		}
		sess = &nodeSession{
			engine: core.NewEngine(core.Options{
				Rules:          rules,
				Workers:        n.cfg.Workers,
				Check:          core.Config{Shards: n.cfg.Shards, EpochGC: n.cfg.EpochGC},
				TrackOnly:      req.TrackOnly,
				StaticExcludes: excludes,
				Observer:       obs.Multi(observers...),
				Logger:         n.cfg.Logger,
			}),
			base:    req.StartSeq,
			applied: req.StartSeq,
		}
		n.sessions[req.Session] = sess
		if lg := n.cfg.Logger; lg != nil {
			lg.Info("dist session opened", "session", req.Session,
				"model", req.Model, "start_seq", req.StartSeq)
		}
	}
	sess.mu.Lock()
	sess.lastUsed = n.cfg.now()
	next := sess.applied
	sess.mu.Unlock()
	n.mu.Unlock()

	writeJSON(w, OpenResponse{Session: req.Session, NextSeq: next})
}

func (n *Node) handleSection(w http.ResponseWriter, r *http.Request) {
	sid := r.URL.Query().Get("session")
	seq, err := strconv.ParseUint(r.Header.Get(headerSeq), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad %s: %v", headerSeq, err)
		return
	}
	// The originating client section span, for cross-node correlation.
	// The header is optional (old clients omit it) and advisory — a
	// malformed value degrades to "uncorrelated", never an error.
	remoteSpan, _ := strconv.ParseUint(r.Header.Get(headerSpan), 10, 64)
	var rpcSpan *flight.Span
	if fl := n.cfg.Flight; fl != nil {
		rpcSpan = fl.Start(flight.CatRPC, "handle-section", 0).
			SetStr("remote_session_id", sid).
			SetInt("seq", int64(seq))
		if remoteSpan != 0 {
			rpcSpan.SetInt("remote_span_id", int64(remoteSpan))
		}
		defer rpcSpan.Finish()
	}
	wantCRC, err := strconv.ParseUint(r.Header.Get(headerCRC), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad %s: %v", headerCRC, err)
		return
	}
	lim := n.cfg.Limits.WithDefaults()
	body, err := io.ReadAll(io.LimitReader(r.Body, lim.MaxBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading section: %v", err)
		return
	}
	if int64(len(body)) > lim.MaxBytes {
		httpError(w, http.StatusBadRequest, "section exceeds %d-byte limit", lim.MaxBytes)
		return
	}
	if got := crc32.ChecksumIEEE(body); got != uint32(wantCRC) {
		// The frame was damaged in flight; the client still holds the
		// original bytes, so this is retryable (422), not refused.
		httpError(w, http.StatusUnprocessableEntity, "section crc %08x, frame claims %08x", got, wantCRC)
		return
	}

	n.mu.Lock()
	sess := n.sessions[sid]
	n.mu.Unlock()
	if sess == nil {
		rpcSpan.SetErr(true)
		httpError(w, http.StatusNotFound, "unknown session %q", sid)
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.lastUsed = n.cfg.now()
	switch {
	case seq < sess.base:
		// Acknowledged before this engine's replay window — the client
		// already holds that report and never legitimately re-asks.
		rpcSpan.SetErr(true)
		httpError(w, http.StatusConflict, "seq %d precedes session base %d", seq, sess.base)
		return
	case seq > sess.applied:
		rpcSpan.SetErr(true)
		httpError(w, http.StatusConflict, "seq %d leaves a gap (next expected %d)", seq, sess.applied)
		return
	case seq == sess.applied:
		tr, err := trace.DecodeLimited(bytes.NewReader(body), n.cfg.Limits)
		if err != nil {
			rpcSpan.SetErr(true)
			httpError(w, http.StatusBadRequest, "undecodable section: %v", err)
			return
		}
		// Stamp the client's correlation identity on the trace before it
		// reaches the engine: the observer seam copies it onto the
		// node-side engine/stripe/checker spans and log records. The
		// node's own rpc span becomes the section's local parent, so the
		// node timeline stays a well-formed tree (rpc → check → stripes)
		// while remote_span_id points back across the process boundary.
		tr.RemoteSession = sid
		tr.RemoteSpan = remoteSpan
		if rpcSpan != nil {
			tr.SpanID = rpcSpan.ID
		}
		if lg := n.cfg.Logger; lg != nil {
			lg.Debug("dist section received", "session", sid, "seq", seq,
				"remote_session_id", sid, "remote_span_id", remoteSpan, "bytes", len(body))
		}
		sess.engine.Submit(tr)
		sess.reports = sess.engine.Wait()
		sess.applied++
	default:
		// Duplicate delivery (seq < applied) replays the cached report:
		// idempotent after a lost ack. Tagged so a span search can count
		// redeliveries per session.
		rpcSpan.SetInt("replay", 1)
	}
	rep := sess.reports[seq-sess.base]
	rep.TraceID = int(seq)
	writeJSON(w, rep)
}

// handleReports serves the coordinator read path: every report this
// node holds for one session. A session this node never hosted (or
// already reaped) answers an empty list, not an error — the fan-out
// querier treats "no data here" as a normal outcome, reserving error
// rows for nodes that are actually unreachable.
func (n *Node) handleReports(w http.ResponseWriter, r *http.Request) {
	sid := r.URL.Query().Get("session")
	if sid == "" {
		httpError(w, http.StatusBadRequest, "missing session parameter")
		return
	}
	n.mu.Lock()
	sess := n.sessions[sid]
	n.mu.Unlock()
	out := ReportsResponse{Session: sid, Reports: []core.Report{}}
	if sess != nil {
		sess.mu.Lock()
		out.StartSeq = sess.base
		out.Reports = make([]core.Report, len(sess.reports))
		for i, rep := range sess.reports {
			rep.TraceID = int(sess.base) + i
			out.Reports[i] = rep
		}
		sess.mu.Unlock()
	}
	writeJSON(w, out)
}

func (n *Node) handleClose(w http.ResponseWriter, r *http.Request) {
	sid := r.URL.Query().Get("session")
	n.mu.Lock()
	sess := n.sessions[sid]
	delete(n.sessions, sid)
	n.mu.Unlock()
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session %q", sid)
		return
	}
	sess.mu.Lock()
	count := sess.applied - sess.base
	sess.mu.Unlock()
	sess.engine.Close()
	if lg := n.cfg.Logger; lg != nil {
		lg.Info("dist session closed", "session", sid, "sections", count)
	}
	writeJSON(w, CloseResponse{Session: sid, Sections: count})
}

// sweepLocked reaps idle sessions; callers hold n.mu. Sweeps run at
// most every SessionTTL/2 so the common path stays O(1).
func (n *Node) sweepLocked() {
	now := n.cfg.now()
	if now.Sub(n.lastSweep) < n.cfg.SessionTTL/2 {
		return
	}
	n.lastSweep = now
	for sid, s := range n.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		s.mu.Unlock()
		if idle > n.cfg.SessionTTL {
			delete(n.sessions, sid)
			go s.engine.Close()
			if lg := n.cfg.Logger; lg != nil {
				lg.Warn("dist session reaped", "session", sid, "idle", idle)
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
