package dist

import "time"

// Backoff computes capped exponential retry delays with jitter. The
// zero value uses the defaults below. Delay is pure — the caller
// supplies the random source — so tests are deterministic.
type Backoff struct {
	// Base is the delay before the first retry (default 25ms).
	Base time.Duration
	// Max caps the exponential growth (default 1s).
	Max time.Duration
	// Jitter is the fraction of the computed delay randomized away,
	// in [0, 1] (default 0.5): the returned delay is uniform in
	// [d*(1-Jitter), d]. Jitter desynchronizes clients hammering a
	// recovering node.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Jitter <= 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// Delay returns the wait before retry number attempt (0-based: the
// delay between the first failure and the second try). rnd supplies a
// uniform value in [0, 1).
func (b Backoff) Delay(attempt int, rnd func() float64) time.Duration {
	b = b.withDefaults()
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if rnd != nil {
		d = d - time.Duration(b.Jitter*rnd()*float64(d))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
