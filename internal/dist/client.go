package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/flight"
	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// Transport is the RPC surface between a client and one checker node,
// abstracted so unit tests inject failures without a network. The
// production implementation is HTTPTransport.
type Transport interface {
	Open(ctx context.Context, node string, req OpenRequest) (OpenResponse, error)
	// Section delivers one encoded section and returns its report — the
	// acknowledgement carries the result, so "acked" and "checked" are
	// the same event. span is the client's originating section span ID
	// for cross-node correlation (0 when no flight recorder is
	// attached); transports propagate it as an optional header.
	Section(ctx context.Context, node, session string, seq uint64, payload []byte, crc uint32, span uint64) (core.Report, error)
	CloseSession(ctx context.Context, node, session string) error
	Health(ctx context.Context, node string) error
}

// HTTPTransport speaks the /v1/* section protocol to pmtestd nodes.
type HTTPTransport struct {
	// Client defaults to a dedicated http.Client; per-RPC deadlines come
	// from the caller's context, so no Timeout is set here.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// do issues the request and decodes a JSON 2xx body into out (when
// non-nil); non-2xx becomes a typed *RPCError.
func (t *HTTPTransport) do(req *http.Request, out any) error {
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &RPCError{Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (t *HTTPTransport) Open(ctx context.Context, node string, req OpenRequest) (OpenResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return OpenResponse{}, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+node+PathOpen, bytes.NewReader(body))
	if err != nil {
		return OpenResponse{}, err
	}
	hr.Header.Set("Content-Type", "application/json")
	var out OpenResponse
	return out, t.do(hr, &out)
}

func (t *HTTPTransport) Section(ctx context.Context, node, session string, seq uint64, payload []byte, crc uint32, span uint64) (core.Report, error) {
	u := "http://" + node + PathSection + "?session=" + url.QueryEscape(session)
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(payload))
	if err != nil {
		return core.Report{}, err
	}
	hr.Header.Set(headerSeq, strconv.FormatUint(seq, 10))
	hr.Header.Set(headerCRC, strconv.FormatUint(uint64(crc), 10))
	if span != 0 {
		hr.Header.Set(headerSpan, strconv.FormatUint(span, 10))
	}
	hr.Header.Set("Content-Type", "application/octet-stream")
	var rep core.Report
	return rep, t.do(hr, &rep)
}

func (t *HTTPTransport) CloseSession(ctx context.Context, node, session string) error {
	u := "http://" + node + PathClose + "?session=" + url.QueryEscape(session)
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	return t.do(hr, nil)
}

func (t *HTTPTransport) Health(ctx context.Context, node string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+node+PathHealth, nil)
	if err != nil {
		return err
	}
	return t.do(hr, nil)
}

// Options configures a Coordinator.
type Options struct {
	// Nodes are the checker node addresses (host:port). Sessions shard
	// across them by session-id hash; failover walks the ring.
	Nodes []string
	// Transport defaults to an HTTPTransport.
	Transport Transport
	// RPCTimeout is the per-RPC deadline (default 5s).
	RPCTimeout time.Duration
	// Attempts bounds tries of one RPC against one node before failing
	// over (default 3); retries wait Backoff delays.
	Attempts int
	// Backoff shapes the retry delays (zero value = defaults).
	Backoff Backoff
	// BufferLimit caps the unacknowledged section bytes a session
	// buffers (default 16MB). At the cap Submit blocks (backpressure)
	// unless DropOnOverflow is set.
	BufferLimit int64
	// DropOnOverflow drops new sections (counted in
	// dist_sections_dropped) instead of blocking when the buffer is
	// full — for callers that must never stall the program under test.
	DropOnOverflow bool
	// BreakerThreshold is the consecutive-failure count that opens a
	// node's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses a node before
	// admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// HealthInterval enables background node health probes (0 = none);
	// probes feed the breakers, re-closing them when a node recovers.
	HealthInterval time.Duration
	// DisableFallback turns off the last rung of the degradation
	// ladder: with it set, a section that no node accepts is dropped
	// (and the session carries a deferred error) instead of being
	// checked by a local in-process engine.
	DisableFallback bool
	// TrackOnly and Excludes mirror the engine options of the sessions
	// opened through this coordinator.
	TrackOnly bool
	Excludes  []core.Range

	// Metrics receives the dist_* robustness counters. Optional.
	Metrics *obs.Metrics
	// Flight records rpc/failover spans (flight.CatRPC). Optional.
	Flight *flight.Recorder
	// Logger receives retry/failover/fallback records. Optional.
	Logger *slog.Logger

	// Test hooks: injected clock and sleep. Nil means real time.
	now   func() time.Time
	sleep func(time.Duration)
}

// Coordinator owns the node ring, the per-node circuit breakers, and
// the optional health prober; sessions are opened through it.
type Coordinator struct {
	opts     Options
	tr       Transport
	breakers []*breaker
	stop     chan struct{}
	stopOnce sync.Once
}

// NewCoordinator validates the options and starts the health prober
// (when configured).
func NewCoordinator(opts Options) (*Coordinator, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("dist: no checker nodes configured")
	}
	if opts.Transport == nil {
		opts.Transport = &HTTPTransport{}
	}
	if opts.RPCTimeout <= 0 {
		opts.RPCTimeout = 5 * time.Second
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.BufferLimit <= 0 {
		opts.BufferLimit = 16 << 20
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	if opts.sleep == nil {
		opts.sleep = time.Sleep
	}
	c := &Coordinator{opts: opts, tr: opts.Transport, stop: make(chan struct{})}
	onOpen := func() {
		if m := opts.Metrics; m != nil {
			m.DistBreakerOpens.Add(1)
		}
	}
	for range opts.Nodes {
		c.breakers = append(c.breakers, newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.now, onOpen))
	}
	if opts.HealthInterval > 0 {
		go c.probe()
	}
	return c, nil
}

// Close stops the health prober. Open sessions keep working; close
// them individually.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// probe feeds the breakers from periodic health checks, so a recovered
// node rejoins the ring without waiting for live traffic to find it.
func (c *Coordinator) probe() {
	tick := time.NewTicker(c.opts.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for i, node := range c.opts.Nodes {
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.RPCTimeout)
			err := c.tr.Health(ctx, node)
			cancel()
			if err != nil {
				c.breakers[i].Failure()
			} else {
				c.breakers[i].Success()
			}
		}
	}
}

// BreakerStates reports each node's breaker state, index-aligned with
// Options.Nodes.
func (c *Coordinator) BreakerStates() []string {
	out := make([]string, len(c.breakers))
	for i, b := range c.breakers {
		out[i] = b.State()
	}
	return out
}

// homeNode shards a session onto the ring by stable hash.
func (c *Coordinator) homeNode(sid string) int {
	h := fnv.New32a()
	io.WriteString(h, sid)
	return int(h.Sum32()) % len(c.opts.Nodes)
}

// pendingSection is one buffered, unacknowledged section: the wire
// payload for delivery, the decoded trace for local fallback, and the
// client section span ID (captured at Submit, since the trace may be
// mutated concurrently) propagated for cross-node correlation.
type pendingSection struct {
	seq     uint64
	payload []byte
	crc     uint32
	spanID  uint64
	tr      *trace.Trace
}

// Session is a remote checking session: Submit buffers and streams
// sections to the session's current node, Wait/Close return reports
// byte-identical to a local engine's. It satisfies the same
// Submit/Wait/Close/QueueDepths surface as core.Engine.
type Session struct {
	c     *Coordinator
	sid   string
	rules core.RuleSet
	rng   *rand.Rand

	mu   sync.Mutex
	cond *sync.Cond
	// pending[0] is in flight (or next to go); the rest is backlog.
	// After a failover the whole slice replays on the new node.
	pending      []*pendingSection
	pendingBytes int64
	nextSeq      uint64
	reports      map[uint64]core.Report
	nodeIdx      int
	opened       bool
	closed       bool
	err          error
	done         chan struct{}
}

// OpenSession starts a checking session under the given model. The
// remote side is established lazily by the first section, so a dead
// home node costs a failover, not an open error.
func (c *Coordinator) OpenSession(sid string, rules core.RuleSet) *Session {
	if rules == nil {
		rules = core.X86{}
	}
	h := fnv.New64a()
	io.WriteString(h, sid)
	s := &Session{
		c:       c,
		sid:     sid,
		rules:   rules,
		rng:     rand.New(rand.NewSource(int64(h.Sum64()))),
		reports: make(map[uint64]core.Report),
		nodeIdx: c.homeNode(sid),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

// Node returns the address of the node currently holding the session's
// remote engine, or "" before the first section lands (or after a full
// degradation to local checking).
func (s *Session) Node() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.opened {
		return ""
	}
	return s.c.opts.Nodes[s.nodeIdx]
}

// Submit buffers one section for remote checking. It blocks when the
// unacknowledged buffer is at Options.BufferLimit (backpressure) unless
// the coordinator drops on overflow. Like core.Engine, Submit after
// Close panics.
func (s *Session) Submit(t *trace.Trace) {
	var buf bytes.Buffer
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("dist: Submit after Close")
	}
	t.ID = int(s.nextSeq)
	if err := trace.Encode(&buf, t); err != nil {
		// Encoding only fails on a hostile in-memory trace; keep the
		// session alive and surface it as a deferred error.
		if s.err == nil {
			s.err = fmt.Errorf("dist: encoding section %d: %w", s.nextSeq, err)
		}
		s.nextSeq++
		s.mu.Unlock()
		return
	}
	payload := buf.Bytes()
	sz := int64(len(payload))
	m := s.c.opts.Metrics
	if sz > s.c.opts.BufferLimit {
		// A section bigger than the whole buffer can never be enqueued
		// within the cap. Preserve report order by draining the backlog,
		// then either drop it or check it in-process.
		seq := s.nextSeq
		s.nextSeq++
		if s.c.opts.DropOnOverflow {
			s.mu.Unlock()
			if m != nil {
				m.DistSectionsDropped.Add(1)
			}
			return
		}
		for len(s.pending) > 0 {
			s.cond.Wait()
		}
		rep := s.checkLocal(&pendingSection{seq: seq, tr: t})
		s.reports[seq] = rep
		s.mu.Unlock()
		if m != nil {
			m.DistFallbacks.Add(1)
		}
		return
	}
	for s.pendingBytes+sz > s.c.opts.BufferLimit && len(s.pending) > 0 {
		if s.c.opts.DropOnOverflow {
			s.nextSeq++ // the seq is consumed so reports stay index-aligned
			s.mu.Unlock()
			if m != nil {
				m.DistSectionsDropped.Add(1)
			}
			return
		}
		s.cond.Wait()
	}
	p := &pendingSection{seq: s.nextSeq, payload: payload, crc: crc32.ChecksumIEEE(payload), spanID: t.SpanID, tr: t}
	s.nextSeq++
	s.pending = append(s.pending, p)
	s.pendingBytes += sz
	buffered := s.pendingBytes
	s.cond.Broadcast()
	s.mu.Unlock()
	if m != nil {
		m.DistBufferedBytes.Add(sz)
		m.DistBufferedPeak.SetMax(buffered)
	}
}

// Wait blocks until every submitted section has a report and returns
// them in section order — byte-identical to what a local engine would
// report for the same sections.
func (s *Session) Wait() []core.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) > 0 {
		s.cond.Wait()
	}
	out := make([]core.Report, 0, len(s.reports))
	for _, r := range s.reports {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TraceID < out[j].TraceID })
	return out
}

// Err returns the session's first deferred error (a refused section, a
// dropped-with-fallback-disabled section, an encode failure), or nil.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// QueueDepths reports the unacknowledged section backlog as a
// single-queue depth, mirroring core.Engine's shape.
func (s *Session) QueueDepths() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []int{len(s.pending)}
}

// Close drains the session, tears down the remote side (best effort)
// and returns the final reports.
func (s *Session) Close() []core.Report {
	reports := s.Wait()
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	opened, idx := s.opened, s.nodeIdx
	s.cond.Broadcast()
	s.mu.Unlock()
	if alreadyClosed {
		return reports
	}
	<-s.done
	if opened {
		ctx, cancel := context.WithTimeout(context.Background(), s.c.opts.RPCTimeout)
		s.c.tr.CloseSession(ctx, s.c.opts.Nodes[idx], s.sid)
		cancel()
	}
	return reports
}

// pump is the session's single sender goroutine: it delivers the head
// of the pending buffer through the degradation ladder, records the
// acked report, and pops. One section is in flight at a time, so the
// pending buffer is exactly the replay window a failover needs.
func (s *Session) pump() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		p := s.pending[0]
		s.mu.Unlock()

		rep, ok := s.deliver(p)

		s.mu.Lock()
		if ok {
			s.reports[p.seq] = rep
		}
		s.pending = s.pending[1:]
		s.pendingBytes -= int64(len(p.payload))
		s.cond.Broadcast()
		s.mu.Unlock()
		if m := s.c.opts.Metrics; m != nil {
			m.DistBufferedBytes.Add(-int64(len(p.payload)))
		}
	}
}

// deliver pushes one section down the degradation ladder: the current
// node with retries, then failover around the ring, then the local
// fallback engine. It returns ok=false only when fallback is disabled
// and no node accepted the section.
func (s *Session) deliver(p *pendingSection) (core.Report, bool) {
	c := s.c
	var span *flight.Span
	if fl := c.opts.Flight; fl != nil {
		// Parent under the client's section span and carry its ID as an
		// attribute, so a timeline stitcher can join this delivery
		// attempt to the section it shipped.
		span = fl.Start(flight.CatRPC, "section", p.spanID).
			SetInt("seq", int64(p.seq)).SetStr("session", s.sid)
		if p.spanID != 0 {
			span.SetInt("span", int64(p.spanID))
		}
	}
	finish := func(route string, err error) {
		if span != nil {
			span.SetStr("route", route)
			if err != nil {
				span.SetErr(true).SetStr("err", err.Error())
			}
			span.Finish()
		}
	}

	// The step budget allows one same-node reopen after a lost session
	// plus a full failover lap around the ring before degrading.
	var lastErr error
ring:
	for step := 0; step < 2*len(c.opts.Nodes)+1; step++ {
		s.mu.Lock()
		idx := s.nodeIdx
		opened := s.opened
		s.mu.Unlock()
		node := c.opts.Nodes[idx]
		br := c.breakers[idx]
		if !br.Allow() {
			s.failover(idx, nil)
			continue
		}
		if !opened {
			if err := s.open(idx, p.seq); err != nil {
				br.Failure()
				lastErr = err
				if classify(err) == classRefused {
					// The node rejected the session itself (model,
					// protocol); no other node will differ.
					break ring
				}
				s.failover(idx, err)
				continue
			}
			br.Success()
		}
		rep, err := s.sendSection(idx, p, br)
		if err == nil {
			if m := c.opts.Metrics; m != nil {
				m.DistSectionsSent.Add(1)
			}
			finish("node:"+node, nil)
			return rep, true
		}
		lastErr = err
		switch classify(err) {
		case classSessionLost:
			// The node forgot us (restart, TTL reap): re-open on the
			// same node with the replay window starting here.
			s.mu.Lock()
			s.opened = false
			s.mu.Unlock()
			if c.opts.Logger != nil {
				c.opts.Logger.Warn("dist session lost; reopening", "session", s.sid,
					"node", node, "seq", p.seq, "err", err)
			}
		case classRefused:
			// This section can never be accepted (undecodable on the
			// node). Local fallback still checks it.
			if s.setErr(fmt.Errorf("dist: section %d refused by %s: %w", p.seq, node, err)) && c.opts.Logger != nil {
				c.opts.Logger.Error("dist section refused", "session", s.sid,
					"node", node, "seq", p.seq, "err", err)
			}
			break ring
		default:
			s.failover(idx, err)
		}
	}

	if !c.opts.DisableFallback {
		if m := c.opts.Metrics; m != nil {
			m.DistFallbacks.Add(1)
		}
		if c.opts.Logger != nil {
			c.opts.Logger.Warn("dist degraded to local check", "session", s.sid,
				"seq", p.seq, "err", lastErr)
		}
		finish("local-fallback", lastErr)
		return s.checkLocal(p), true
	}
	s.setErr(fmt.Errorf("dist: section %d undeliverable, fallback disabled: %w", p.seq, lastErr))
	if m := c.opts.Metrics; m != nil {
		m.DistSectionsDropped.Add(1)
	}
	finish("dropped", lastErr)
	return core.Report{}, false
}

// open (re-)establishes the remote session on node idx with the replay
// window starting at startSeq.
func (s *Session) open(idx int, startSeq uint64) error {
	c := s.c
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.RPCTimeout)
	defer cancel()
	_, err := c.tr.Open(ctx, c.opts.Nodes[idx], OpenRequest{
		Version:   ProtocolVersion,
		Session:   s.sid,
		Model:     s.rules.Name(),
		TrackOnly: c.opts.TrackOnly,
		Excludes:  c.opts.Excludes,
		StartSeq:  startSeq,
	})
	if err != nil {
		if m := c.opts.Metrics; m != nil {
			m.DistRPCErrors.Add(1)
		}
		return err
	}
	s.mu.Lock()
	s.opened = true
	s.mu.Unlock()
	return nil
}

// sendSection tries one section against one node, up to Attempts times
// with backoff, feeding the node's breaker. Non-retryable errors
// return immediately for the caller to classify.
func (s *Session) sendSection(idx int, p *pendingSection, br *breaker) (core.Report, error) {
	c := s.c
	node := c.opts.Nodes[idx]
	m := c.opts.Metrics
	var lastErr error
	for attempt := 0; attempt < c.opts.Attempts; attempt++ {
		if attempt > 0 {
			if m != nil {
				m.DistRetries.Add(1)
			}
			c.opts.sleep(c.opts.Backoff.Delay(attempt-1, s.rng.Float64))
		}
		start := c.opts.now()
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.RPCTimeout)
		rep, err := c.tr.Section(ctx, node, s.sid, p.seq, p.payload, p.crc, p.spanID)
		cancel()
		if err == nil {
			br.Success()
			if m != nil {
				m.DistRTT.Observe(c.opts.now().Sub(start))
			}
			return rep, nil
		}
		if m != nil {
			m.DistRPCErrors.Add(1)
		}
		br.Failure()
		lastErr = err
		if classify(err) != classRetryable {
			return core.Report{}, err
		}
	}
	return core.Report{}, lastErr
}

// failover abandons the current node: the session re-opens on the next
// ring slot when deliver loops. Only counted (and span-recorded) when
// a live session was actually lost, not when sharding merely skips an
// open breaker.
func (s *Session) failover(fromIdx int, cause error) {
	c := s.c
	s.mu.Lock()
	hadSession := s.opened
	s.opened = false
	s.nodeIdx = (fromIdx + 1) % len(c.opts.Nodes)
	to := c.opts.Nodes[s.nodeIdx]
	s.mu.Unlock()
	if !hadSession {
		return
	}
	if m := c.opts.Metrics; m != nil {
		m.DistFailovers.Add(1)
	}
	if fl := c.opts.Flight; fl != nil {
		sp := fl.Start(flight.CatRPC, "failover", 0).
			SetStr("session", s.sid).SetStr("from", c.opts.Nodes[fromIdx]).SetStr("to", to)
		if cause != nil {
			sp.SetErr(true).SetStr("err", cause.Error())
		}
		sp.Finish()
	}
	if c.opts.Logger != nil {
		c.opts.Logger.Warn("dist failover", "session", s.sid,
			"from", c.opts.Nodes[fromIdx], "to", to, "err", cause)
	}
}

// checkLocal is the ladder's last rung: check the section in-process,
// exactly as a one-shot engine would, so Wait never hangs on a dead
// fleet and the reports stay complete and identical.
func (s *Session) checkLocal(p *pendingSection) core.Report {
	if s.c.opts.TrackOnly {
		n := 0
		for _, op := range p.tr.Ops {
			if !op.Kind.IsChecker() {
				n++
			}
		}
		return core.Report{TraceID: int(p.seq), Thread: p.tr.Thread, Ops: len(p.tr.Ops), TrackedOps: n}
	}
	rep := core.CheckTraceExcluding(s.rules, p.tr, s.c.opts.Excludes)
	rep.TraceID = int(p.seq)
	return rep
}

// setErr records the first deferred error; reports whether this call
// stored it.
func (s *Session) setErr(err error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return false
	}
	s.err = err
	return true
}
