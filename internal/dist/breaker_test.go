package dist

import (
	"testing"
	"time"
)

// fakeClock is an injectable clock for breaker tests; no test sleeps.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

// TestBreakerLifecycle drives the closed → open → half-open → closed /
// re-open transitions event by event with an injected clock.
func TestBreakerLifecycle(t *testing.T) {
	type step struct {
		event     string // "fail", "success", "advance"
		adv       time.Duration
		wantAllow bool
		wantState string
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"opens at threshold", []step{
			{event: "fail", wantAllow: true, wantState: "closed"},
			{event: "fail", wantAllow: true, wantState: "closed"},
			{event: "fail", wantAllow: false, wantState: "open"},
		}},
		{"success resets the count", []step{
			{event: "fail", wantAllow: true, wantState: "closed"},
			{event: "fail", wantAllow: true, wantState: "closed"},
			{event: "success", wantAllow: true, wantState: "closed"},
			{event: "fail", wantAllow: true, wantState: "closed"},
			{event: "fail", wantAllow: true, wantState: "closed"},
			{event: "fail", wantAllow: false, wantState: "open"},
		}},
		{"cooldown admits one probe, success closes", []step{
			{event: "fail"}, {event: "fail"}, {event: "fail", wantAllow: false, wantState: "open"},
			{event: "advance", adv: time.Second, wantAllow: false, wantState: "open"},
			{event: "advance", adv: time.Second, wantAllow: true, wantState: "half-open"},
			{event: "success", wantAllow: true, wantState: "closed"},
		}},
		{"half-open probe failure re-opens", []step{
			{event: "fail"}, {event: "fail"}, {event: "fail", wantAllow: false, wantState: "open"},
			{event: "advance", adv: 2 * time.Second, wantAllow: true, wantState: "half-open"},
			{event: "fail", wantAllow: false, wantState: "open"},
			// The re-open restarts the cooldown from the probe failure.
			{event: "advance", adv: time.Second, wantAllow: false, wantState: "open"},
			{event: "advance", adv: time.Second, wantAllow: true, wantState: "half-open"},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			clock := newFakeClock()
			opens := 0
			b := newBreaker(3, 2*time.Second, clock.now, func() { opens++ })
			for i, st := range c.steps {
				switch st.event {
				case "fail":
					b.Failure()
				case "success":
					b.Success()
				case "advance":
					clock.advance(st.adv)
				}
				if st.wantState == "" {
					continue
				}
				if got := b.Allow(); got != st.wantAllow {
					t.Fatalf("step %d (%s): Allow() = %v, want %v", i, st.event, got, st.wantAllow)
				}
				if got := b.State(); got != st.wantState {
					t.Fatalf("step %d (%s): State() = %q, want %q", i, st.event, got, st.wantState)
				}
			}
		})
	}
}

// TestBreakerHalfOpenSingleProbe: only the caller that flipped the
// breaker to half-open gets through; concurrent callers are refused
// until the probe reports.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(1, time.Second, clock.now, nil)
	b.Failure()
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.Allow() {
		t.Fatal("second caller admitted during a half-open probe")
	}
	b.Success()
	if !b.Allow() {
		t.Fatal("breaker not closed after successful probe")
	}
}

// TestBreakerOnOpenCounts: the open callback fires once per
// closed-to-open (or half-open-to-open) transition, not per failure.
func TestBreakerOnOpenCounts(t *testing.T) {
	clock := newFakeClock()
	opens := 0
	b := newBreaker(2, time.Second, clock.now, func() { opens++ })
	b.Failure()
	b.Failure() // opens
	b.Failure() // already open: no-op
	if opens != 1 {
		t.Fatalf("opens = %d after threshold, want 1", opens)
	}
	clock.advance(time.Second)
	b.Allow()   // half-open
	b.Failure() // re-opens
	if opens != 2 {
		t.Fatalf("opens = %d after failed probe, want 2", opens)
	}
}
