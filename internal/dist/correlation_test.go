package dist

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"pmtest/internal/flight"
	"pmtest/internal/obs"
)

// startFlightNode is startTestNode with a flight recorder attached, for
// tests that assert on node-side span correlation.
func startFlightNode(t *testing.T) (string, *flight.Recorder) {
	t.Helper()
	rec := flight.NewRecorder(64)
	node := NewNode(NodeConfig{Metrics: obs.NewMetrics(8), Flight: rec})
	srv := httptest.NewServer(node)
	t.Cleanup(func() {
		srv.Close()
		node.Close()
	})
	return strings.TrimPrefix(srv.URL, "http://"), rec
}

// TestSectionCorrelationPropagates proves the tentpole wire contract:
// the client's session ID and originating span ID ride the section RPC
// and come out as remote_session_id / remote_span_id tags on the node's
// rpc and engine spans — and an idempotent redelivery carries the
// identical tags, so a fleet span search keeps finding the section no
// matter how many times it was delivered.
func TestSectionCorrelationPropagates(t *testing.T) {
	addr, rec := startFlightNode(t)
	ht := &HTTPTransport{}
	ctx := context.Background()

	if _, err := ht.Open(ctx, addr, OpenRequest{Version: ProtocolVersion, Session: "pmtest-9", Model: "x86"}); err != nil {
		t.Fatal(err)
	}
	tr := testTrace(0)
	tr.ID = 0
	payload, crc := encodeSection(t, tr)
	const clientSpan = 77
	if _, err := ht.Section(ctx, addr, "pmtest-9", 0, payload, crc, clientSpan); err != nil {
		t.Fatal(err)
	}

	rpcs := rec.Search(flight.Query{Category: flight.CatRPC, HasCategory: true})
	if len(rpcs) != 1 {
		t.Fatalf("rpc spans = %d, want 1", len(rpcs))
	}
	rpc := rpcs[0]
	if rpc.Name != "handle-section" ||
		rpc.Attr("remote_session_id") != "pmtest-9" ||
		rpc.Attr("remote_span_id") != int64(clientSpan) ||
		rpc.Attr("seq") != int64(0) {
		t.Fatalf("rpc span attrs = %+v", rpc.Attrs())
	}

	checks := rec.Search(flight.Query{Category: flight.CatEngine, HasCategory: true})
	if len(checks) != 1 {
		t.Fatalf("engine spans = %d, want 1", len(checks))
	}
	check := checks[0]
	if check.Attr("remote_session_id") != "pmtest-9" ||
		check.Attr("remote_span_id") != int64(clientSpan) {
		t.Fatalf("engine span attrs = %+v", check.Attrs())
	}
	// The node re-parents the section under its own rpc span so the
	// node-local timeline stays a well-formed tree; the cross-process
	// link is the remote_span_id attribute, not the parent field.
	if check.Parent != rpc.ID {
		t.Fatalf("engine span parent = %d, want rpc span %d", check.Parent, rpc.ID)
	}

	// Idempotent redelivery: the replayed rpc span carries the identical
	// correlation tags plus the replay marker, and no second check runs.
	if _, err := ht.Section(ctx, addr, "pmtest-9", 0, payload, crc, clientSpan); err != nil {
		t.Fatal(err)
	}
	rpcs = rec.Search(flight.Query{Category: flight.CatRPC, HasCategory: true})
	if len(rpcs) != 2 {
		t.Fatalf("rpc spans after redelivery = %d, want 2", len(rpcs))
	}
	replay := rpcs[0] // newest first
	if replay.Attr("replay") != int64(1) {
		t.Fatalf("replay span attrs = %+v", replay.Attrs())
	}
	for _, key := range []string{"remote_session_id", "remote_span_id", "seq"} {
		if replay.Attr(key) != rpc.Attr(key) {
			t.Fatalf("replay %s = %v, original %v — correlation must survive redelivery",
				key, replay.Attr(key), rpc.Attr(key))
		}
	}
	if got := rec.Search(flight.Query{Category: flight.CatEngine, HasCategory: true}); len(got) != 1 {
		t.Fatalf("engine spans after redelivery = %d, want 1 (replay must not re-check)", len(got))
	}
}

// TestSectionCorrelationOptional pins backward compatibility: a client
// that sends no span header (or garbage) still checks fine, and the
// node's spans simply carry no remote_span_id.
func TestSectionCorrelationOptional(t *testing.T) {
	addr, rec := startFlightNode(t)
	ht := &HTTPTransport{}
	ctx := context.Background()

	if _, err := ht.Open(ctx, addr, OpenRequest{Version: ProtocolVersion, Session: "s", Model: "x86"}); err != nil {
		t.Fatal(err)
	}
	tr := testTrace(0)
	tr.ID = 0
	payload, crc := encodeSection(t, tr)
	if _, err := ht.Section(ctx, addr, "s", 0, payload, crc, 0); err != nil {
		t.Fatal(err)
	}
	rpc := rec.Search(flight.Query{Category: flight.CatRPC, HasCategory: true})[0]
	if rpc.Attr("remote_span_id") != nil {
		t.Fatalf("span-less delivery grew remote_span_id = %v", rpc.Attr("remote_span_id"))
	}
	if rpc.Attr("remote_session_id") != "s" {
		t.Fatalf("rpc span attrs = %+v", rpc.Attrs())
	}
}
