// Package kfifo simulates the kernel FIFO transport PMTest uses to ship
// traces from a crash-consistent kernel module to the user-space checking
// engine (paper §4.5, Fig. 9b).
//
// The paper creates a kernel FIFO (/proc/PMTest) with 1024 trace entries
// and an interruptible wait queue: when the FIFO fills, the kernel module
// puts itself to sleep and is woken once the FIFO drains below half full.
// This package reproduces those semantics with a condition variable: Push
// blocks while the buffer is full and resumes only when occupancy drops
// below half capacity, so a burst of kernel activity cannot livelock the
// producer against the consumer.
package kfifo

import (
	"sync"

	"pmtest/internal/trace"
)

// DefaultCapacity matches the paper's 1024-entry kernel FIFO.
const DefaultCapacity = 1024

// FIFO is a bounded, blocking queue of traces with half-full resume
// semantics. It is safe for one producer (the kernel module) and one or
// more consumers (the user-space engine pump).
type FIFO struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []*trace.Trace
	head     int
	count    int
	capacity int
	closed   bool
	// waiting reports whether the producer is parked on the wait queue;
	// exposed for tests and the harness.
	waiting bool
	// maxDepth records the high-water mark for the stats report.
	maxDepth int
}

// New creates a FIFO; capacity <= 0 selects DefaultCapacity.
func New(capacity int) *FIFO {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	f := &FIFO{buf: make([]*trace.Trace, capacity), capacity: capacity}
	f.notFull = sync.NewCond(&f.mu)
	f.notEmpty = sync.NewCond(&f.mu)
	return f
}

// Push appends a trace, blocking while the FIFO is full. Per the paper's
// wait-queue behaviour, a blocked producer resumes only when the FIFO has
// drained to less than half full. Push panics if the FIFO is closed.
func (f *FIFO) Push(t *trace.Trace) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.count == f.capacity {
		f.waiting = true
		// Resume only below half occupancy, not merely "not full".
		for f.count >= f.capacity/2 && !f.closed {
			f.notFull.Wait()
		}
		f.waiting = false
	}
	if f.closed {
		panic("kfifo: Push on closed FIFO")
	}
	f.buf[(f.head+f.count)%f.capacity] = t
	f.count++
	if f.count > f.maxDepth {
		f.maxDepth = f.count
	}
	f.notEmpty.Signal()
}

// Pop removes the oldest trace, blocking while the FIFO is empty. It
// returns nil when the FIFO has been closed and drained.
func (f *FIFO) Pop() *trace.Trace {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.count == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	if f.count == 0 {
		return nil
	}
	t := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % f.capacity
	f.count--
	if f.count < f.capacity/2 {
		f.notFull.Broadcast()
	}
	return t
}

// Close marks the FIFO closed; blocked Pops drain remaining entries and
// then return nil, and blocked Pushes panic (the kernel module must stop
// producing first).
func (f *FIFO) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	f.notEmpty.Broadcast()
	f.notFull.Broadcast()
}

// Len returns the current occupancy.
func (f *FIFO) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// MaxDepth returns the occupancy high-water mark.
func (f *FIFO) MaxDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxDepth
}

// ProducerWaiting reports whether a producer is currently parked on the
// wait queue (used by tests to assert the half-full resume behaviour).
func (f *FIFO) ProducerWaiting() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.waiting
}
