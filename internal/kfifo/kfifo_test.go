package kfifo

import (
	"sync"
	"testing"
	"time"

	"pmtest/internal/trace"
)

func tr(id int) *trace.Trace { return &trace.Trace{ID: id} }

func TestPushPopOrder(t *testing.T) {
	f := New(8)
	for i := 0; i < 5; i++ {
		f.Push(tr(i))
	}
	for i := 0; i < 5; i++ {
		got := f.Pop()
		if got == nil || got.ID != i {
			t.Fatalf("Pop %d = %v", i, got)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	f := New(0)
	if f.capacity != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", f.capacity, DefaultCapacity)
	}
}

func TestWrapAround(t *testing.T) {
	f := New(4)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			f.Push(tr(round*3 + i))
		}
		for i := 0; i < 3; i++ {
			if got := f.Pop(); got.ID != round*3+i {
				t.Fatalf("round %d: got %d", round, got.ID)
			}
		}
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	f := New(4)
	done := make(chan *trace.Trace)
	go func() { done <- f.Pop() }()
	select {
	case <-done:
		t.Fatal("Pop returned before Push")
	case <-time.After(10 * time.Millisecond):
	}
	f.Push(tr(42))
	got := <-done
	if got.ID != 42 {
		t.Fatalf("got %d", got.ID)
	}
}

func TestPushBlocksWhenFullAndResumesBelowHalf(t *testing.T) {
	f := New(8)
	for i := 0; i < 8; i++ {
		f.Push(tr(i))
	}
	pushed := make(chan struct{})
	go func() {
		f.Push(tr(100))
		close(pushed)
	}()
	// Wait for the producer to park.
	deadline := time.Now().Add(time.Second)
	for !f.ProducerWaiting() {
		if time.Now().After(deadline) {
			t.Fatal("producer never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// Popping down to 4 (== half) must NOT release the producer.
	for i := 0; i < 4; i++ {
		f.Pop()
	}
	select {
	case <-pushed:
		t.Fatal("producer resumed at exactly half full; must wait for below half")
	case <-time.After(10 * time.Millisecond):
	}
	// One more pop takes occupancy to 3 (< half): producer resumes.
	f.Pop()
	select {
	case <-pushed:
	case <-time.After(time.Second):
		t.Fatal("producer never resumed after drain below half")
	}
}

func TestCloseDrainsThenNil(t *testing.T) {
	f := New(4)
	f.Push(tr(1))
	f.Close()
	if got := f.Pop(); got == nil || got.ID != 1 {
		t.Fatalf("Pop after close = %v, want remaining entry", got)
	}
	if got := f.Pop(); got != nil {
		t.Fatalf("Pop on drained closed FIFO = %v, want nil", got)
	}
}

func TestCloseWakesBlockedPop(t *testing.T) {
	f := New(4)
	done := make(chan *trace.Trace)
	go func() { done <- f.Pop() }()
	time.Sleep(5 * time.Millisecond)
	f.Close()
	select {
	case got := <-done:
		if got != nil {
			t.Fatalf("got %v, want nil", got)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop not woken by Close")
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	f := New(16)
	const n = 2000
	var got []int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			tr := f.Pop()
			if tr == nil {
				return
			}
			got = append(got, tr.ID)
		}
	}()
	for i := 0; i < n; i++ {
		f.Push(tr(i))
	}
	f.Close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("consumed %d, want %d", len(got), n)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("out of order at %d: %d", i, id)
		}
	}
	if f.MaxDepth() == 0 || f.MaxDepth() > 16 {
		t.Fatalf("MaxDepth = %d", f.MaxDepth())
	}
}
