package kfifo

import (
	"testing"

	"pmtest/internal/trace"
)

func TestPushOnClosedPanics(t *testing.T) {
	f := New(4)
	f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Push on closed FIFO must panic")
		}
	}()
	f.Push(&trace.Trace{})
}

func TestCloseIdempotent(t *testing.T) {
	f := New(4)
	f.Close()
	f.Close() // second close must not panic
	if got := f.Pop(); got != nil {
		t.Fatalf("Pop = %v", got)
	}
}

func TestLenTracksOccupancy(t *testing.T) {
	f := New(8)
	for i := 0; i < 5; i++ {
		f.Push(&trace.Trace{ID: i})
	}
	if f.Len() != 5 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Pop()
	f.Pop()
	if f.Len() != 3 {
		t.Fatalf("Len = %d after pops", f.Len())
	}
}
