package pmdk

import (
	"fmt"

	"pmtest/internal/pmem"
)

// The allocator is a persistent bump allocator with a volatile free list.
// The heap frontier (heapTop) is persisted with a barrier on every
// advance, so a crash can at worst leak the object being allocated —
// never corrupt the heap. Freed blocks are recycled from a volatile
// per-size free list that is simply empty after a restart (a documented
// simplification: real PMDK redo-logs its allocator metadata).

// Alloc returns the offset of a new block of at least size bytes, aligned
// to the cache-line size so distinct objects never share a line.
func (p *Pool) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("pmdk: zero-size allocation")
	}
	cls := alignUp(size, pmem.LineSize)
	if list := p.free[cls]; len(list) > 0 {
		off := list[len(list)-1]
		p.free[cls] = list[:len(list)-1]
		return off, nil
	}
	top := p.dev.Load64(offHeapTop)
	if top+cls > p.dev.Size() {
		return 0, fmt.Errorf("pmdk: out of space (heap top 0x%x + %d > 0x%x)",
			top, cls, p.dev.Size())
	}
	p.dev.Store64(offHeapTop, top+cls)
	p.dev.PersistBarrier(offHeapTop, 8)
	return top, nil
}

// Free recycles a block allocated with size (volatile free list).
func (p *Pool) Free(off, size uint64) {
	cls := alignUp(size, pmem.LineSize)
	p.free[cls] = append(p.free[cls], off)
}

// HeapUsed returns the persistent heap frontier minus the data start.
func (p *Pool) HeapUsed() uint64 {
	return p.dev.Load64(offHeapTop) - DataStart(p.logSize)
}
