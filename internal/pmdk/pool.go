// Package pmdk is a PMDK-like (libpmemobj-style) transactional persistent
// object library built on the simulated PM device, substituting for the
// real PMDK the paper tests (§2.1, Fig. 1b, Fig. 13b/c).
//
// It provides a persistent pool with a root object, a persistent
// allocator, and failure-atomic transactions with an undo log: Tx.Add
// snapshots an object before modification (TX_ADD), and commit flushes all
// snapshotted ranges before invalidating the log. Nested transactions
// follow real PMDK semantics: updates are only guaranteed durable when the
// outermost transaction commits (the behaviour PMTest's authors discovered
// with their own checkers, paper §7.1).
//
// Every PM operation flows through the device's trace sink; the library
// additionally emits the transaction events (TX_BEGIN/TX_ADD/TX_END) that
// drive PMTest's high-level transaction checkers.
package pmdk

import (
	"errors"
	"fmt"

	"pmtest/internal/interval"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// Pool layout (all offsets in bytes from the start of the device):
//
//	0    magic
//	8    root object offset
//	16   root object size
//	24   heap top (bump allocator frontier)
//	64   undo-log entry count (own cache line: the commit point)
//	128  undo-log entry area (LogSize bytes)
//	...  data area (DataStart)
const (
	offMagic    = 0
	offRootOff  = 8
	offRootSize = 16
	offHeapTop  = 24
	offLogSize  = 32
	offLogCount = 64
	offLogData  = 128

	magic = 0x504D444B2D474F31 // "PMDK-GO1"

	// logEntryHeader is the per-entry header: target offset + size.
	logEntryHeader = 16
)

// DefaultLogSize is the default undo-log area size.
const DefaultLogSize = 1 << 20

// Bugs are library-level fault-injection switches used by the synthetic
// bug catalog (paper Table 5) to reproduce ordering, writeback and
// completion bugs inside the transaction machinery.
type Bugs struct {
	// SkipCommitFlush omits the writeback of snapshotted ranges at commit
	// (completion bug: transaction updates may never persist).
	SkipCommitFlush bool
	// SkipCommitFence omits the fence between flushing updates and
	// invalidating the log (ordering bug: the log may be cleared before
	// the updates are durable).
	SkipCommitFence bool
	// SkipLogEntryFlush omits the writeback of a new undo-log entry
	// (writeback bug: the backup may be lost in a crash).
	SkipLogEntryFlush bool
	// SkipLogEntryFence omits the fence between writing a log entry and
	// publishing it via the entry count (ordering bug).
	SkipLogEntryFence bool
	// DoubleCommitFlush issues the commit writeback twice (performance
	// bug: duplicate writeback, paper Fig. 13a's shape).
	DoubleCommitFlush bool
}

// Pool is a persistent object pool. Not safe for concurrent use; the
// multi-threaded workloads use one pool (and device) per thread.
type Pool struct {
	dev     *pmem.Device
	sink    trace.Sink
	logSize uint64

	// volatile state
	depth    int      // transaction nesting depth
	logTail  uint64   // append position in the log area
	logCount uint64   // cached entry count
	logged   []logRng // snapshotted ranges of the current outermost tx
	txAllocs []logRng // objects allocated in the current outermost tx
	written  *interval.Tree[struct{}]
	added    *interval.Tree[struct{}]
	free     map[uint64][]uint64
	bugs     Bugs
	annotate bool
}

type logRng struct {
	off, size uint64
	entry     uint64 // offset of the entry in the log area
}

// ErrNotAPool is returned by Open when the device lacks a valid pool.
var ErrNotAPool = errors.New("pmdk: device does not contain a pool (bad magic)")

// DataStart returns the first data-area offset for a pool with the given
// log size.
func DataStart(logSize uint64) uint64 {
	return alignUp(offLogData+logSize, pmem.LineSize)
}

// Create formats a fresh pool on the device. logSize <= 0 selects
// DefaultLogSize.
func Create(dev *pmem.Device, logSize uint64) (*Pool, error) {
	if logSize == 0 {
		logSize = DefaultLogSize
	}
	p := &Pool{dev: dev, logSize: logSize, free: map[uint64][]uint64{}, written: interval.New[struct{}](), added: interval.New[struct{}]()}
	p.sink = devSink(dev)
	if dev.Size() < DataStart(logSize)+pmem.LineSize {
		return nil, fmt.Errorf("pmdk: device too small (%d bytes) for log size %d",
			dev.Size(), logSize)
	}
	dev.Store64(offRootOff, 0)
	dev.Store64(offRootSize, 0)
	dev.Store64(offHeapTop, DataStart(logSize))
	dev.Store64(offLogSize, logSize)
	dev.Store64(offLogCount, 0)
	// Persist exactly the written header fields; the magic word is
	// published last, after everything it guards is durable.
	dev.CLWB(offRootOff, offLogSize+8-offRootOff)
	dev.CLWB(offLogCount, 8)
	dev.SFence()
	dev.Store64(offMagic, magic)
	dev.PersistBarrier(offMagic, 8)
	return p, nil
}

// Open attaches to an existing pool, applying undo-log recovery if a
// transaction was interrupted (the log has valid entries).
func Open(dev *pmem.Device) (*Pool, *RecoveryInfo, error) {
	if dev.Load64(offMagic) != magic {
		return nil, nil, ErrNotAPool
	}
	logSize := dev.Load64(offLogSize)
	if logSize == 0 || DataStart(logSize) > dev.Size() {
		return nil, nil, fmt.Errorf("pmdk: corrupt pool header (log size 0x%x)", logSize)
	}
	p := &Pool{dev: dev, logSize: logSize, free: map[uint64][]uint64{}, written: interval.New[struct{}](), added: interval.New[struct{}]()}
	p.sink = devSink(dev)
	info := p.recover()
	return p, info, nil
}

// RecoveryInfo describes what undo-log recovery did at Open.
type RecoveryInfo struct {
	// EntriesApplied is the number of undo records rolled back.
	EntriesApplied int
}

// recover rolls back an interrupted transaction: valid log entries are
// applied in reverse order, then the log is invalidated.
func (p *Pool) recover() *RecoveryInfo {
	count := p.dev.Load64(offLogCount)
	info := &RecoveryInfo{}
	if count == 0 {
		return info
	}
	// Walk entries forward to find their offsets, then apply in reverse.
	type ent struct{ pos, off, size uint64 }
	var ents []ent
	pos := uint64(offLogData)
	for i := uint64(0); i < count; i++ {
		off := p.dev.Load64(pos)
		size := p.dev.Load64(pos + 8)
		ents = append(ents, ent{pos, off, size})
		pos += alignUp(logEntryHeader+size, 8)
	}
	for i := len(ents) - 1; i >= 0; i-- {
		e := ents[i]
		old := p.dev.LoadBytes(e.pos+logEntryHeader, e.size)
		p.dev.Store(e.off, old)
		p.dev.CLWB(e.off, e.size)
		info.EntriesApplied++
	}
	p.dev.SFence()
	p.dev.Store64(offLogCount, 0)
	p.dev.PersistBarrier(offLogCount, 8)
	return info
}

// SetBugs installs fault-injection switches (testing only).
func (p *Pool) SetBugs(b Bugs) { p.bugs = b }

// SetAnnotations enables the library-developer checkers embedded in the
// transaction machinery: isOrderedBefore(log entry, publish) and
// isPersist(updates) before log invalidation. This is the paper's §7.2
// workflow — expert library developers annotate internals with low-level
// checkers so ordinary users get automated checking.
func (p *Pool) SetAnnotations(on bool) { p.annotate = on }

// Device returns the underlying PM device.
func (p *Pool) Device() *pmem.Device { return p.dev }

// MetaRange returns the pool metadata range (header + undo log), which
// callers register as a static exclusion with PMTest: the library's
// internal log writes are not application objects.
func (p *Pool) MetaRange() (addr, size uint64) {
	return 0, DataStart(p.logSize)
}

// Root returns the root object's offset, allocating it (outside any
// transaction, with explicit barriers) on first use.
func (p *Pool) Root(size uint64) (uint64, error) {
	if off := p.dev.Load64(offRootOff); off != 0 {
		return off, nil
	}
	off, err := p.Alloc(size)
	if err != nil {
		return 0, err
	}
	p.dev.Store64(offRootOff, off)
	p.dev.Store64(offRootSize, size)
	p.dev.PersistBarrier(offRootOff, 16)
	return off, nil
}

// Zero zeroes a freshly allocated object (durable, with barriers).
func (p *Pool) Zero(off, size uint64) {
	buf := make([]byte, size)
	p.dev.Store(off, buf)
	p.dev.PersistBarrier(off, size)
}

func devSink(dev *pmem.Device) trace.Sink { return devSinkAdapter{dev} }

// devSinkAdapter lets the pool emit library-level ops (TX events) through
// the device's current sink without holding a stale copy.
type devSinkAdapter struct{ dev *pmem.Device }

func (a devSinkAdapter) Record(op trace.Op, callerSkip int) {
	a.dev.RecordOp(op, callerSkip+1)
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
