package pmdk

import (
	"testing"

	"pmtest/internal/pmem"
)

// Additional pool coverage: metadata range, heap accounting, root sizing.

func TestMetaRangeCoversHeaderAndLog(t *testing.T) {
	p := newPool(t, nil)
	addr, size := p.MetaRange()
	if addr != 0 {
		t.Fatalf("MetaRange addr = %d", addr)
	}
	if size != DataStart(1<<16) {
		t.Fatalf("MetaRange size = %d, want %d", size, DataStart(1<<16))
	}
	// Every allocation must land past the metadata.
	off, _ := p.Alloc(64)
	if off < size {
		t.Fatalf("alloc 0x%x inside metadata", off)
	}
}

func TestHeapUsedGrows(t *testing.T) {
	p := newPool(t, nil)
	before := p.HeapUsed()
	p.Alloc(1000)
	after := p.HeapUsed()
	if after <= before {
		t.Fatalf("HeapUsed did not grow: %d → %d", before, after)
	}
	// Freed blocks are recycled, so heap does not grow on reuse.
	off, _ := p.Alloc(128)
	p.Free(off, 128)
	mid := p.HeapUsed()
	p.Alloc(128)
	if p.HeapUsed() != mid {
		t.Fatal("recycled allocation grew the heap")
	}
}

func TestDeviceTooSmallForLog(t *testing.T) {
	dev := pmem.New(256, nil)
	if _, err := Create(dev, 1<<16); err == nil {
		t.Fatal("expected device-too-small error")
	}
}

func TestOpenCorruptLogSize(t *testing.T) {
	dev := pmem.New(1<<20, nil)
	dev.Store64(offMagic, magic) // magic without a valid header
	dev.PersistBarrier(offMagic, 8)
	if _, _, err := Open(dev); err == nil {
		t.Fatal("expected corrupt-header error")
	}
}

func TestGet64InsideTx(t *testing.T) {
	p := newPool(t, nil)
	off, _ := p.Alloc(64)
	p.Device().Store64(off, 123)
	p.Device().PersistBarrier(off, 8)
	err := p.Tx(func(tx *Tx) error {
		if tx.Get64(off) != 123 {
			t.Fatal("Get64 wrong before write")
		}
		tx.Add(off, 8)
		tx.Set64(off, 456)
		if tx.Get64(off) != 456 {
			t.Fatal("Get64 must see the transaction's own write")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddOutsideTxPanics(t *testing.T) {
	p := newPool(t, nil)
	tx := &Tx{p: p}
	defer func() {
		if recover() == nil {
			t.Fatal("Add outside a transaction must panic")
		}
	}()
	tx.Add(0x1000, 8)
}
