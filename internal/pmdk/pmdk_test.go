package pmdk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

const devSize = 1 << 22

func newPool(t testing.TB, sink trace.Sink) *Pool {
	t.Helper()
	dev := pmem.New(devSize, sink)
	p, err := Create(dev, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCreateAndRoot(t *testing.T) {
	p := newPool(t, nil)
	root, err := p.Root(128)
	if err != nil {
		t.Fatal(err)
	}
	if root < DataStart(1<<16) {
		t.Fatalf("root 0x%x inside metadata area", root)
	}
	// Root is stable across calls.
	root2, _ := p.Root(128)
	if root2 != root {
		t.Fatalf("Root not stable: 0x%x vs 0x%x", root, root2)
	}
}

func TestOpenRequiresMagic(t *testing.T) {
	dev := pmem.New(devSize, nil)
	if _, _, err := Open(dev); !errors.Is(err, ErrNotAPool) {
		t.Fatalf("Open on raw device: %v", err)
	}
}

func TestOpenFindsRoot(t *testing.T) {
	dev := pmem.New(devSize, nil)
	p, err := Create(dev, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := p.Root(64)
	p.Device().DrainAll()
	p2, info, err := Open(pmem.FromImage(dev.Image(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if info.EntriesApplied != 0 {
		t.Fatalf("clean image should not need recovery: %+v", info)
	}
	root2, _ := p2.Root(64)
	if root2 != root {
		t.Fatalf("root after reopen 0x%x, want 0x%x", root2, root)
	}
}

func TestAllocAlignedAndDisjoint(t *testing.T) {
	p := newPool(t, nil)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		off, err := p.Alloc(uint64(1 + i%200))
		if err != nil {
			t.Fatal(err)
		}
		if off%pmem.LineSize != 0 {
			t.Fatalf("alloc 0x%x not line-aligned", off)
		}
		if seen[off] {
			t.Fatalf("alloc returned 0x%x twice", off)
		}
		seen[off] = true
	}
}

func TestAllocReusesFreed(t *testing.T) {
	p := newPool(t, nil)
	off, _ := p.Alloc(100)
	p.Free(off, 100)
	off2, _ := p.Alloc(90) // same 128-byte size class
	if off2 != off {
		t.Fatalf("free-list reuse failed: 0x%x vs 0x%x", off2, off)
	}
}

func TestAllocOutOfSpace(t *testing.T) {
	dev := pmem.New(DataStart(4096)+256, nil)
	p, err := Create(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(1 << 20); err == nil {
		t.Fatal("expected out-of-space error")
	}
	if _, err := p.Alloc(0); err == nil {
		t.Fatal("expected error for zero-size alloc")
	}
}

func TestTxCommitDurable(t *testing.T) {
	p := newPool(t, nil)
	off, _ := p.Alloc(64)
	err := p.Tx(func(tx *Tx) error {
		tx.Add(off, 64)
		tx.Set64(off, 12345)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Committed data must survive ANY crash: no dirty state may hold it.
	img := p.Device().Image()
	d2 := pmem.FromImage(img, nil)
	if d2.Load64(off) != 12345 {
		t.Fatal("committed value not durable")
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	p := newPool(t, nil)
	off, _ := p.Alloc(64)
	p.Tx(func(tx *Tx) error {
		tx.Add(off, 64)
		tx.Set64(off, 111)
		return nil
	})
	errBoom := errors.New("boom")
	err := p.Tx(func(tx *Tx) error {
		tx.Add(off, 64)
		tx.Set64(off, 222)
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	if got := p.Device().Load64(off); got != 111 {
		t.Fatalf("after abort value = %d, want 111", got)
	}
}

func TestTxAbortViaPanicHelper(t *testing.T) {
	p := newPool(t, nil)
	off, _ := p.Alloc(64)
	errStop := errors.New("stop")
	err := p.Tx(func(tx *Tx) error {
		tx.Add(off, 64)
		tx.Set64(off, 5)
		tx.Abort(errStop)
		t.Fatal("unreachable")
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("err = %v", err)
	}
	if got := p.Device().Load64(off); got != 0 {
		t.Fatalf("value = %d, want 0", got)
	}
}

func TestTxCrashMidTransactionRollsBackOnOpen(t *testing.T) {
	// Crash after the in-place update but before commit: recovery must
	// restore the old value from the undo log, in every crash state.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		p := newPool(t, nil)
		off, _ := p.Alloc(64)
		p.Tx(func(tx *Tx) error {
			tx.Add(off, 64)
			tx.Set64(off, 999)
			return nil
		})
		// Second tx: set to 1234 but "crash" before commit completes.
		p.txBegin()
		tx := &Tx{p: p}
		tx.Add(off, 64)
		tx.Set64(off, 1234)
		img := p.Device().SampleCrash(rng, pmem.CrashOptions{})
		p2, info, err := Open(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		got := p2.Device().Load64(off)
		if got != 999 {
			t.Fatalf("sample %d: recovered value = %d (recovery applied %d entries), want 999",
				i, got, info.EntriesApplied)
		}
	}
}

func TestTxCrashAfterCommitKeepsNewValue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := newPool(t, nil)
	off, _ := p.Alloc(64)
	p.Tx(func(tx *Tx) error {
		tx.Add(off, 64)
		tx.Set64(off, 4321)
		return nil
	})
	for i := 0; i < 20; i++ {
		img := p.Device().SampleCrash(rng, pmem.CrashOptions{})
		p2, _, err := Open(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if got := p2.Device().Load64(off); got != 4321 {
			t.Fatalf("sample %d: value = %d, want 4321", i, got)
		}
	}
}

func TestNestedTxOnlyOutermostDurable(t *testing.T) {
	// §7.1: after the inner TX_END, updates are not yet persistent; only
	// the outermost commit makes them durable.
	p := newPool(t, nil)
	off, _ := p.Alloc(64)
	var innerDurable bool
	err := p.Tx(func(outer *Tx) error {
		if err := p.Tx(func(inner *Tx) error {
			inner.Add(off, 64)
			inner.Set64(off, 77)
			return nil
		}); err != nil {
			return err
		}
		// Simulate a crash here: is the inner update durable?
		img := p.Device().Image() // no dirty lines applied
		innerDurable = pmem.FromImage(img, nil).Load64(off) == 77
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if innerDurable {
		t.Fatal("inner commit must not persist updates (PMDK semantics)")
	}
	img := p.Device().Image()
	if pmem.FromImage(img, nil).Load64(off) != 77 {
		t.Fatal("outermost commit must persist updates")
	}
}

func TestTxLogFullAborts(t *testing.T) {
	dev := pmem.New(devSize, nil)
	p, err := Create(dev, 4096) // tiny log
	if err != nil {
		t.Fatal(err)
	}
	off, _ := p.Alloc(8192)
	err = p.Tx(func(tx *Tx) error {
		tx.Add(off, 8192) // exceeds the log area
		return nil
	})
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
	if p.InTx() {
		t.Fatal("transaction left open after log-full abort")
	}
}

func TestZero(t *testing.T) {
	p := newPool(t, nil)
	off, _ := p.Alloc(256)
	p.Device().Store(off, []byte{1, 2, 3})
	p.Zero(off, 256)
	img := p.Device().Image()
	for i := uint64(0); i < 256; i++ {
		if img[off+i] != 0 {
			t.Fatalf("byte %d not durably zeroed", i)
		}
	}
}

// --- PMTest integration -----------------------------------------------------

// recorder is a minimal Sink capturing ops for engine-driven tests.
type recorder struct{ ops *[]trace.Op }

func (r recorder) Record(op trace.Op, _ int) { *r.ops = append(*r.ops, op) }

// checkTx runs one transaction with the given bug switches, wraps the
// recorded ops in TX_CHECKER_START/END, and returns the engine's report —
// the same flow the synthetic bug catalog uses.
func checkTx(t *testing.T, bugs Bugs, annotate bool, body func(p *Pool, tx *Tx)) core.Report {
	t.Helper()
	var ops []trace.Op
	p := newPool(t, recorder{&ops})
	p.SetBugs(bugs)
	p.SetAnnotations(annotate)
	off, _ := p.Alloc(64)
	ops = ops[:0]
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart})
	if err := p.Tx(func(tx *Tx) error {
		tx.Add(off, 8)
		body(p, tx)
		tx.Set64(off, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerEnd})
	return core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
}

func TestEngineCleanTransaction(t *testing.T) {
	r := checkTx(t, Bugs{}, true, func(p *Pool, tx *Tx) {})
	if !r.Clean() {
		t.Fatalf("correct transaction must be clean: %s", r.Summary())
	}
}

func TestEngineSkipCommitFlush(t *testing.T) {
	r := checkTx(t, Bugs{SkipCommitFlush: true}, true, func(p *Pool, tx *Tx) {})
	if !r.HasCode(core.CodeIncompleteTx) && !r.HasCode(core.CodeNotPersisted) {
		t.Fatalf("missing commit flush must be flagged: %s", r.Summary())
	}
}

func TestEngineSkipCommitFence(t *testing.T) {
	r := checkTx(t, Bugs{SkipCommitFence: true}, true, func(p *Pool, tx *Tx) {})
	if r.Fails() == 0 {
		t.Fatalf("missing commit fence must be flagged: %s", r.Summary())
	}
}

func TestEngineSkipLogEntryFlush(t *testing.T) {
	r := checkTx(t, Bugs{SkipLogEntryFlush: true}, true, func(p *Pool, tx *Tx) {})
	if !r.HasCode(core.CodeOrderViolation) {
		t.Fatalf("unflushed log entry must violate entry-before-publish order: %s", r.Summary())
	}
}

func TestEngineSkipLogEntryFence(t *testing.T) {
	r := checkTx(t, Bugs{SkipLogEntryFence: true}, true, func(p *Pool, tx *Tx) {})
	if !r.HasCode(core.CodeOrderViolation) {
		t.Fatalf("missing fence between entry and publish must be flagged: %s", r.Summary())
	}
}

func TestEngineDoubleCommitFlush(t *testing.T) {
	r := checkTx(t, Bugs{DoubleCommitFlush: true}, true, func(p *Pool, tx *Tx) {})
	if !r.HasCode(core.CodeDuplicateWriteback) {
		t.Fatalf("double commit flush must WARN: %s", r.Summary())
	}
	if r.Fails() != 0 {
		t.Fatalf("double flush is a performance bug, not a FAIL: %s", r.Summary())
	}
}

func TestEngineMissingAddDetected(t *testing.T) {
	var ops []trace.Op
	p := newPool(t, recorder{&ops})
	a, _ := p.Alloc(64)
	b, _ := p.Alloc(64)
	ops = ops[:0]
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart})
	p.Tx(func(tx *Tx) error {
		tx.Add(a, 8)
		tx.Set64(a, 1)
		tx.Set64(b, 2) // no Add: Fig. 1b's missing-backup bug
		return nil
	})
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerEnd})
	r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
	if !r.HasCode(core.CodeMissingBackup) {
		t.Fatalf("missing TX_ADD must be flagged: %s", r.Summary())
	}
	if !r.HasCode(core.CodeIncompleteTx) {
		t.Fatalf("un-added object is never flushed → incomplete tx: %s", r.Summary())
	}
}

func TestEngineDuplicateAddWarns(t *testing.T) {
	var ops []trace.Op
	p := newPool(t, recorder{&ops})
	a, _ := p.Alloc(64)
	ops = ops[:0]
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart})
	p.Tx(func(tx *Tx) error {
		tx.Add(a, 8)
		tx.Add(a, 8) // Fig. 13c: same object logged twice
		tx.Set64(a, 1)
		return nil
	})
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerEnd})
	r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
	if !r.HasCode(core.CodeDuplicateLog) {
		t.Fatalf("duplicate TX_ADD must WARN: %s", r.Summary())
	}
}

// TestEngineGroundTruthAgreement: for each bug switch, PMTest's FAIL
// verdict must coincide with an actual recovery failure in some crash
// state, and a clean verdict with recovery success — the soundness claim
// behind Table 5.
func TestEngineGroundTruthAgreement(t *testing.T) {
	// SkipCommitFence's hazard window is mid-commit (the trailing fence of
	// the log invalidation persists everything post-commit), so it is
	// exercised by the Yat-style replay tests instead of post-commit
	// sampling here.
	cases := []struct {
		name string
		bugs Bugs
		real bool // is there a post-commit crash state that loses data?
	}{
		{"correct", Bugs{}, false},
		{"skipCommitFlush", Bugs{SkipCommitFlush: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			broken := false
			for i := 0; i < 60 && !broken; i++ {
				p := newPool(t, nil)
				p.SetBugs(tc.bugs)
				off, _ := p.Alloc(64)
				p.Tx(func(tx *Tx) error {
					tx.Add(off, 8)
					tx.Set64(off, 31337)
					return nil
				})
				// The transaction reported commit; its data must be durable.
				img := p.Device().SampleCrash(rng, pmem.CrashOptions{})
				p2, _, err := Open(pmem.FromImage(img, nil))
				if err != nil {
					t.Fatal(err)
				}
				got := p2.Device().Load64(off)
				if got != 31337 && got != 0 {
					t.Fatalf("recovered garbage %d", got)
				}
				if got != 31337 {
					// Committed data lost — but only a bug if the log no
					// longer protects it (log rolled it back to 0 pre-commit
					// is fine ONLY if commit hadn't happened; here it had).
					broken = true
				}
			}
			if broken != tc.real {
				t.Fatalf("ground truth: data loss observed=%v, expected=%v", broken, tc.real)
			}
		})
	}
}

func TestTxEmitsTransactionEvents(t *testing.T) {
	var ops []trace.Op
	p := newPool(t, recorder{&ops})
	off, _ := p.Alloc(64)
	ops = ops[:0] // ignore setup traffic
	p.Tx(func(tx *Tx) error {
		tx.Add(off, 8)
		tx.Set64(off, 1)
		return nil
	})
	var kinds []trace.Kind
	for _, op := range ops {
		switch op.Kind {
		case trace.KindTxBegin, trace.KindTxAdd, trace.KindTxEnd, trace.KindExclude:
			kinds = append(kinds, op.Kind)
		}
	}
	want := []trace.Kind{trace.KindExclude, trace.KindTxBegin, trace.KindTxAdd, trace.KindTxEnd}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("tx events = %v, want %v", kinds, want)
	}
}

func TestQuickTxSequenceConsistency(t *testing.T) {
	// Random sequences of committed/aborted transactions over a small set
	// of objects: volatile view must equal a model; after DrainAll the
	// durable view must too.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newPool(t, nil)
		const nObj = 4
		offs := make([]uint64, nObj)
		model := make([]uint64, nObj)
		for i := range offs {
			offs[i], _ = p.Alloc(64)
		}
		for i := 0; i < 20; i++ {
			idx := rng.Intn(nObj)
			val := rng.Uint64()
			abort := rng.Intn(3) == 0
			p.Tx(func(tx *Tx) error {
				tx.Add(offs[idx], 8)
				tx.Set64(offs[idx], val)
				if abort {
					return errors.New("abort")
				}
				return nil
			})
			if !abort {
				model[idx] = val
			}
		}
		for i := range offs {
			if p.Device().Load64(offs[i]) != model[i] {
				return false
			}
		}
		img := p.Device().Image()
		d := pmem.FromImage(img, nil)
		for i := range offs {
			if d.Load64(offs[i]) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestOverlappingAddsAbortRestoresPreTxState: overlapping TX_ADD ranges
// snapshot incrementally (dedup skips covered parts, new parts get their
// own entries); reverse-order rollback must still restore the exact
// pre-transaction bytes.
func TestOverlappingAddsAbortRestoresPreTxState(t *testing.T) {
	p := newPool(t, nil)
	off, _ := p.Alloc(256)
	init := make([]byte, 256)
	for i := range init {
		init[i] = byte(i)
	}
	p.Device().Store(off, init)
	p.Device().PersistBarrier(off, 256)

	err := p.Tx(func(tx *Tx) error {
		tx.Add(off, 128) // covers [0,128)
		tx.Set(off, bytes.Repeat([]byte{0xAA}, 128))
		tx.Add(off+64, 128) // overlaps [64,128), extends to [128,192)
		tx.Set(off+64, bytes.Repeat([]byte{0xBB}, 128))
		return errors.New("abort")
	})
	if err == nil {
		t.Fatal("expected abort")
	}
	got := p.Device().LoadBytes(off, 256)
	for i := range init {
		if got[i] != init[i] {
			t.Fatalf("byte %d = 0x%x after abort, want 0x%x", i, got[i], init[i])
		}
	}
}

// TestEngineCloseIdempotent: Close after Close (and Wait after Close) are
// safe.
func TestPoolTxPanicPropagates(t *testing.T) {
	p := newPool(t, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("non-abort panic must propagate")
		}
		if p.InTx() {
			t.Fatal("panic left transaction open")
		}
	}()
	p.Tx(func(tx *Tx) error { panic("boom") })
}
