package pmdk

import (
	"encoding/binary"
	"fmt"

	"pmtest/internal/interval"
	"pmtest/internal/trace"
)

// Tx is a failure-atomic transaction handle. Use Pool.Tx to run one; Tx
// methods must only be called inside the transaction function.
type Tx struct {
	p *Pool
}

// ErrLogFull is returned (via panic/recover inside Pool.Tx) when the undo
// log area cannot hold another snapshot.
var ErrLogFull = fmt.Errorf("pmdk: undo log full")

type txAbort struct{ err error }

// Tx runs fn inside a transaction (TX_BEGIN ... TX_END). Transactions
// nest: only the outermost commit flushes updates and invalidates the
// undo log (real PMDK semantics, paper §7.1). If fn returns an error the
// transaction aborts: snapshotted objects are rolled back.
func (p *Pool) Tx(fn func(tx *Tx) error) error {
	p.txBegin()
	tx := &Tx{p: p}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if a, ok := r.(txAbort); ok {
					err = a.err
					return
				}
				// A foreign panic must not leave the transaction open:
				// roll back, then propagate.
				p.txAbort()
				panic(r)
			}
		}()
		return fn(tx)
	}()
	if err != nil {
		p.txAbort()
		return err
	}
	p.txCommit()
	return nil
}

// txBegin opens a (possibly nested) transaction and emits TX_BEGIN. On
// the outermost begin the pool also announces its metadata exclusion so
// per-transaction trace sections skip internal log writes.
func (p *Pool) txBegin() {
	p.depth++
	if p.depth == 1 {
		metaAddr, metaSize := p.MetaRange()
		p.sink.Record(trace.Op{Kind: trace.KindExclude, Addr: metaAddr, Size: metaSize}, 1)
		p.logTail = offLogData
		p.logCount = 0
		p.logged = p.logged[:0]
		p.txAllocs = p.txAllocs[:0]
		p.written.Clear()
		p.added.Clear()
	}
	p.sink.Record(trace.Op{Kind: trace.KindTxBegin}, 1)
}

// Add snapshots [off, off+size) into the undo log before modification
// (TX_ADD). The snapshot is durable — entry persisted, then published by
// bumping the entry count — before Add returns, so a crash mid-update can
// always roll back. Adding a range that is already covered this
// transaction emits the TX_ADD event (so PMTest's duplicate-log checker
// sees the call, paper Fig. 13c) but skips the redundant snapshot, like
// real pmemobj.
//
//pmlint:ignore missedflush SkipLogEntryFlush is an injected bug; with it off the entry is flushed and fenced
func (tx *Tx) Add(off, size uint64) {
	p := tx.p
	if p.depth == 0 {
		panic("pmdk: Tx.Add outside a transaction")
	}
	if p.added.Covered(off, off+size) {
		p.sink.Record(trace.Op{Kind: trace.KindTxAdd, Addr: off, Size: size}, 1)
		return
	}
	need := alignUp(logEntryHeader+size, 8)
	if p.logTail+need > offLogData+p.logSize {
		panic(txAbort{ErrLogFull})
	}
	// Assemble header + old data and write the entry.
	buf := make([]byte, logEntryHeader+size)
	binary.LittleEndian.PutUint64(buf[0:8], off)
	binary.LittleEndian.PutUint64(buf[8:16], size)
	p.dev.Load(off, buf[logEntryHeader:])
	p.dev.StoreSkip(p.logTail, buf, 1)
	if !p.bugs.SkipLogEntryFlush {
		p.dev.CLWBSkip(p.logTail, uint64(len(buf)), 1)
	}
	if !p.bugs.SkipLogEntryFence {
		p.dev.SFenceSkip(1)
	}
	// Publish the entry: bump the persistent count (the validity flag).
	p.logCount++
	p.dev.Store64(offLogCount, p.logCount)
	p.dev.CLWBSkip(offLogCount, 8, 1)
	p.dev.SFenceSkip(1)
	if p.annotate {
		// Library-developer checkers (§7.2): the snapshot must persist
		// strictly before its publication, and the publication itself
		// must be durable when Add returns.
		p.sink.Record(trace.Op{
			Kind: trace.KindIsOrderedBefore,
			Addr: p.logTail, Size: uint64(len(buf)),
			Addr2: offLogCount, Size2: 8,
		}, 1)
		p.sink.Record(trace.Op{Kind: trace.KindIsPersist, Addr: offLogCount, Size: 8}, 1)
	}
	p.logged = append(p.logged, logRng{off: off, size: size, entry: p.logTail})
	p.added.Set(off, off+size, struct{}{})
	p.logTail += need
	// Emit the TX_ADD event for the high-level checkers, attributed to
	// the caller.
	p.sink.Record(trace.Op{Kind: trace.KindTxAdd, Addr: off, Size: size}, 1)
}

// Set writes data at off inside the transaction. The write is attributed
// to the caller; durability comes from the outermost commit, provided the
// range was snapshotted with Add (commit flushes the written parts of
// snapshotted ranges, exactly what must persist).
func (tx *Tx) Set(off uint64, data []byte) {
	tx.p.written.Set(off, off+uint64(len(data)), struct{}{})
	tx.p.dev.StoreSkip(off, data, 1)
}

// Set64 writes a uint64 at off inside the transaction.
func (tx *Tx) Set64(off uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	tx.p.written.Set(off, off+8, struct{}{})
	tx.p.dev.StoreSkip(off, b[:], 1)
}

// Set32 writes a uint32 at off inside the transaction.
func (tx *Tx) Set32(off uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	tx.p.written.Set(off, off+4, struct{}{})
	tx.p.dev.StoreSkip(off, b[:], 1)
}

// Get64 reads a uint64 (volatile view).
func (tx *Tx) Get64(off uint64) uint64 { return tx.p.dev.Load64(off) }

// Alloc allocates a new object inside the transaction (PMDK TX_NEW). The
// fresh range is automatically part of the transaction: its written parts
// are flushed at commit, it is freed on abort, and a TX_ADD event is
// emitted so the checkers treat it as backed up (a brand-new object needs
// no undo data — rollback is deallocation).
func (tx *Tx) Alloc(size uint64) (uint64, error) {
	p := tx.p
	off, err := p.Alloc(size)
	if err != nil {
		return 0, err
	}
	p.txAllocs = append(p.txAllocs, logRng{off: off, size: size})
	p.added.Set(off, off+size, struct{}{})
	p.sink.Record(trace.Op{Kind: trace.KindTxAdd, Addr: off, Size: size}, 1)
	return off, nil
}

// Abort aborts the transaction from inside fn.
func (tx *Tx) Abort(err error) {
	panic(txAbort{err})
}

// txCommit ends the transaction (TX_END). Only the outermost commit
// flushes the snapshotted ranges, fences, and invalidates the log —
// that order is the commit protocol whose violations the bug catalog
// injects.
func (p *Pool) txCommit() {
	if p.depth == 0 {
		panic("pmdk: commit without begin")
	}
	p.sink.Record(trace.Op{Kind: trace.KindTxEnd}, 1)
	p.depth--
	if p.depth > 0 {
		return // inner commit: nothing is durable yet (paper §7.1)
	}
	if !p.bugs.SkipCommitFlush {
		// Flush the modified parts of every snapshotted or freshly
		// allocated range: what was written under transaction protection
		// is exactly what must persist.
		flushRange := func(r logRng) {
			p.written.Visit(r.off, r.off+r.size, func(seg interval.Seg[struct{}]) bool {
				p.dev.CLWBSkip(seg.Lo, seg.Hi-seg.Lo, 3) // the commit fence follows outside this visit closure
				if p.bugs.DoubleCommitFlush {
					p.dev.CLWBSkip(seg.Lo, seg.Hi-seg.Lo, 3) //pmlint:ignore missedfence,doubleflush DoubleCommitFlush is an injected bug
				}
				return true
			})
		}
		for _, r := range p.logged {
			flushRange(r)
		}
		for _, r := range p.txAllocs {
			flushRange(r)
		}
	}
	if !p.bugs.SkipCommitFence {
		p.dev.SFenceSkip(1)
	}
	if p.annotate {
		// Every snapshotted object must be durable before the log is
		// invalidated; otherwise a crash after invalidation loses data.
		for _, r := range p.logged {
			p.sink.Record(trace.Op{Kind: trace.KindIsPersist, Addr: r.off, Size: r.size}, 1)
		}
	}
	// Commit point: invalidate the log.
	p.logCount = 0
	p.dev.Store64(offLogCount, 0)
	p.dev.CLWBSkip(offLogCount, 8, 1)
	p.dev.SFenceSkip(1)
	p.logged = p.logged[:0]
	p.txAllocs = p.txAllocs[:0]
	p.logTail = offLogData
}

// txAbort rolls back every snapshotted range (in reverse), persists the
// restored data, and invalidates the log.
func (p *Pool) txAbort() {
	if p.depth == 0 {
		panic("pmdk: abort without begin")
	}
	p.sink.Record(trace.Op{Kind: trace.KindTxEnd}, 1)
	p.depth--
	if p.depth > 0 {
		// Inner abort propagates by the caller returning an error; the
		// rollback happens at the outermost level in real PMDK too.
		return
	}
	for i := len(p.logged) - 1; i >= 0; i-- {
		r := p.logged[i]
		old := p.dev.LoadBytes(r.entry+logEntryHeader, r.size)
		p.dev.StoreSkip(r.off, old, 1)
		p.dev.CLWBSkip(r.off, r.size, 1)
	}
	p.dev.SFenceSkip(1)
	p.logCount = 0
	p.dev.Store64(offLogCount, 0)
	p.dev.CLWBSkip(offLogCount, 8, 1)
	p.dev.SFenceSkip(1)
	// Objects allocated by the aborted transaction are unreachable; give
	// them back to the allocator.
	for _, r := range p.txAllocs {
		p.Free(r.off, r.size)
	}
	p.logged = p.logged[:0]
	p.txAllocs = p.txAllocs[:0]
	p.logTail = offLogData
}

// InTx reports whether a transaction is open (testing helper).
func (p *Pool) InTx() bool { return p.depth > 0 }
