package interval

import (
	"math"
	"reflect"
	"testing"
)

// Boundary coverage: extreme addresses, adjacency, and idempotent ops.

func TestHighAddressRanges(t *testing.T) {
	tr := New[int]()
	hi := uint64(math.MaxUint64)
	tr.Set(hi-128, hi-64, 1)
	tr.Set(hi-64, hi, 2)
	if !tr.Covered(hi-128, hi) {
		t.Fatal("high-address coverage broken")
	}
	got := tr.ExtractOverlap(hi-96, hi-32)
	want := []Seg[int]{{hi - 96, hi - 64, 1}, {hi - 64, hi - 32, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractOverlap = %v, want %v", got, want)
	}
}

func TestAdjacentSegmentsStayDistinct(t *testing.T) {
	tr := New[int]()
	tr.Set(0, 10, 1)
	tr.Set(10, 20, 2) // touching, different values
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (no value merging)", tr.Len())
	}
	var hits []int
	tr.Visit(9, 11, func(s Seg[int]) bool { hits = append(hits, s.Val); return true })
	if !reflect.DeepEqual(hits, []int{1, 2}) {
		t.Fatalf("Visit across boundary = %v", hits)
	}
}

func TestDeleteEverythingThenReuse(t *testing.T) {
	tr := New[int]()
	for i := uint64(0); i < 100; i++ {
		tr.Set(i*10, i*10+10, int(i))
	}
	tr.Delete(0, 1000)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after full delete", tr.Len())
	}
	tr.Set(5, 15, 7)
	if got := tr.All(); len(got) != 1 || got[0].Val != 7 {
		t.Fatalf("reuse failed: %v", got)
	}
}

func TestClearResetsState(t *testing.T) {
	tr := New[string]()
	tr.Set(1, 2, "x")
	tr.Clear()
	if tr.Len() != 0 || tr.Overlaps(0, 10) {
		t.Fatal("Clear incomplete")
	}
}

func TestVisitOutsideContents(t *testing.T) {
	tr := New[int]()
	tr.Set(100, 200, 1)
	n := 0
	tr.Visit(0, 99, func(Seg[int]) bool { n++; return true })
	tr.Visit(201, 300, func(Seg[int]) bool { n++; return true })
	if n != 0 {
		t.Fatalf("Visit outside contents hit %d segments", n)
	}
}

func TestGapsWholeRangeWhenEmpty(t *testing.T) {
	tr := New[int]()
	gaps := tr.Gaps(10, 50)
	if len(gaps) != 1 || gaps[0].Lo != 10 || gaps[0].Hi != 50 {
		t.Fatalf("Gaps = %v", gaps)
	}
}
