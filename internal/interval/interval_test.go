package interval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func segs[V any](t *Tree[V]) []Seg[V] { return t.All() }

func TestEmptyTree(t *testing.T) {
	var tr Tree[int]
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.Overlaps(0, 100) {
		t.Fatal("empty tree reports overlap")
	}
	if tr.Covered(5, 5) != true {
		t.Fatal("empty range should be trivially covered")
	}
	if tr.Covered(0, 1) {
		t.Fatal("empty tree cannot cover a non-empty range")
	}
	if got := tr.ExtractOverlap(0, 10); got != nil {
		t.Fatalf("ExtractOverlap on empty = %v, want nil", got)
	}
}

func TestSetAndVisit(t *testing.T) {
	tr := New[string]()
	tr.Set(10, 20, "a")
	tr.Set(30, 40, "b")
	want := []Seg[string]{{10, 20, "a"}, {30, 40, "b"}}
	if got := segs(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("All = %v, want %v", got, want)
	}
	var visited []Seg[string]
	tr.Visit(15, 35, func(s Seg[string]) bool { visited = append(visited, s); return true })
	wantV := []Seg[string]{{15, 20, "a"}, {30, 35, "b"}}
	if !reflect.DeepEqual(visited, wantV) {
		t.Fatalf("Visit = %v, want %v", visited, wantV)
	}
}

func TestSetSplitsPartialOverlap(t *testing.T) {
	tr := New[string]()
	tr.Set(0, 100, "old")
	tr.Set(40, 60, "new")
	want := []Seg[string]{{0, 40, "old"}, {40, 60, "new"}, {60, 100, "old"}}
	if got := segs(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("All = %v, want %v", got, want)
	}
}

func TestSetExactReplace(t *testing.T) {
	tr := New[int]()
	tr.Set(5, 10, 1)
	tr.Set(5, 10, 2)
	want := []Seg[int]{{5, 10, 2}}
	if got := segs(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("All = %v, want %v", got, want)
	}
}

func TestSetSwallowsManySegments(t *testing.T) {
	tr := New[int]()
	for i := uint64(0); i < 10; i++ {
		tr.Set(i*10, i*10+5, int(i))
	}
	tr.Set(3, 97, -1)
	// Segments [10,15) … [90,95) are swallowed; [0,3) survives as remainder.
	want := []Seg[int]{{0, 3, 0}, {3, 97, -1}}
	if got := segs(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("All = %v, want %v", got, want)
	}
}

func TestExtractOverlapClipsAndPreservesRemainders(t *testing.T) {
	tr := New[string]()
	tr.Set(0, 10, "a")
	tr.Set(10, 20, "b")
	tr.Set(20, 30, "c")
	got := tr.ExtractOverlap(5, 25)
	want := []Seg[string]{{5, 10, "a"}, {10, 20, "b"}, {20, 25, "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractOverlap = %v, want %v", got, want)
	}
	rest := segs(tr)
	wantRest := []Seg[string]{{0, 5, "a"}, {25, 30, "c"}}
	if !reflect.DeepEqual(rest, wantRest) {
		t.Fatalf("remaining = %v, want %v", rest, wantRest)
	}
}

func TestExtractOverlapInsideSingleSegment(t *testing.T) {
	tr := New[string]()
	tr.Set(0, 100, "x")
	got := tr.ExtractOverlap(40, 60)
	want := []Seg[string]{{40, 60, "x"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractOverlap = %v, want %v", got, want)
	}
	rest := segs(tr)
	wantRest := []Seg[string]{{0, 40, "x"}, {60, 100, "x"}}
	if !reflect.DeepEqual(rest, wantRest) {
		t.Fatalf("remaining = %v, want %v", rest, wantRest)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	tr.Set(0, 10, 1)
	tr.Delete(3, 7)
	want := []Seg[int]{{0, 3, 1}, {7, 10, 1}}
	if got := segs(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("All = %v, want %v", got, want)
	}
}

func TestCoveredAndGaps(t *testing.T) {
	tr := New[int]()
	tr.Set(10, 20, 1)
	tr.Set(20, 30, 2)
	if !tr.Covered(12, 28) {
		t.Fatal("contiguous segments should cover inner range")
	}
	if tr.Covered(5, 15) {
		t.Fatal("range extending left of coverage reported covered")
	}
	if tr.Covered(25, 35) {
		t.Fatal("range extending right of coverage reported covered")
	}
	gaps := tr.Gaps(0, 40)
	want := []Seg[struct{}]{{0, 10, struct{}{}}, {30, 40, struct{}{}}}
	if !reflect.DeepEqual(gaps, want) {
		t.Fatalf("Gaps = %v, want %v", gaps, want)
	}
	tr2 := New[int]()
	tr2.Set(10, 15, 0)
	tr2.Set(20, 25, 0)
	gaps2 := tr2.Gaps(10, 25)
	want2 := []Seg[struct{}]{{15, 20, struct{}{}}}
	if !reflect.DeepEqual(gaps2, want2) {
		t.Fatalf("Gaps = %v, want %v", gaps2, want2)
	}
}

func TestForEachPtrMutation(t *testing.T) {
	tr := New[int]()
	tr.Set(0, 10, 1)
	tr.Set(10, 20, 2)
	tr.ForEachPtr(func(lo, hi uint64, v *int) { *v *= 10 })
	want := []Seg[int]{{0, 10, 10}, {10, 20, 20}}
	if got := segs(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("All = %v, want %v", got, want)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := uint64(0); i < 10; i++ {
		tr.Set(i*10, i*10+10, int(i))
	}
	n := 0
	tr.Visit(0, 100, func(s Seg[int]) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d segments, want 3 (early stop)", n)
	}
}

func TestInsertNonOverlapping(t *testing.T) {
	tr := New[int]()
	tr.Insert(50, 60, 5)
	tr.Insert(0, 10, 0)
	tr.Insert(20, 30, 2)
	want := []Seg[int]{{0, 10, 0}, {20, 30, 2}, {50, 60, 5}}
	if got := segs(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("All = %v, want %v", got, want)
	}
}

func TestZeroLengthOpsAreNoOps(t *testing.T) {
	tr := New[int]()
	tr.Set(5, 5, 1)
	tr.Insert(7, 7, 1)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after zero-length ops, want 0", tr.Len())
	}
	tr.Set(0, 10, 1)
	if got := tr.ExtractOverlap(4, 4); got != nil {
		t.Fatalf("zero-length ExtractOverlap = %v, want nil", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

// model is a naive reference: one value per byte address.
type model map[uint64]int

func (m model) set(lo, hi uint64, v int) {
	for a := lo; a < hi; a++ {
		m[a] = v
	}
}

func (m model) del(lo, hi uint64) {
	for a := lo; a < hi; a++ {
		delete(m, a)
	}
}

// flatten reads tree contents byte-by-byte for comparison with the model.
func flatten(tr *Tree[int], limit uint64) model {
	out := model{}
	tr.Visit(0, limit, func(s Seg[int]) bool {
		for a := s.Lo; a < s.Hi; a++ {
			out[a] = s.Val
		}
		return true
	})
	return out
}

// TestQuickAgainstModel drives random Set/Delete/ExtractOverlap sequences
// and checks the tree agrees with a per-byte model — the core correctness
// property the shadow memory relies on.
func TestQuickAgainstModel(t *testing.T) {
	const space = 256
	f := func(seed int64, opsRaw []uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int]()
		m := model{}
		for i, raw := range opsRaw {
			lo := uint64(raw) % space
			ln := uint64(rng.Intn(64)) + 1
			hi := lo + ln
			switch rng.Intn(3) {
			case 0:
				tr.Set(lo, hi, i)
				m.set(lo, hi, i)
			case 1:
				tr.Delete(lo, hi)
				m.del(lo, hi)
			case 2:
				got := tr.ExtractOverlap(lo, hi)
				// Extracted segments must exactly match the model's bytes.
				for _, s := range got {
					for a := s.Lo; a < s.Hi; a++ {
						if mv, ok := m[a]; !ok || mv != s.Val {
							return false
						}
					}
				}
				m.del(lo, hi)
				// Re-insert to keep contents interesting.
				for _, s := range got {
					tr.Insert(s.Lo, s.Hi, s.Val)
					m.set(s.Lo, s.Hi, s.Val)
				}
			}
			if !reflect.DeepEqual(flatten(tr, space+128), m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSegmentsSortedDisjoint asserts structural invariants under random
// operations: All() is sorted, non-overlapping, with no empty segments.
func TestQuickSegmentsSortedDisjoint(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New[int]()
		for i, raw := range ops {
			lo := uint64(raw % 512)
			hi := lo + uint64(raw%97) + 1
			if raw%5 == 0 {
				tr.Delete(lo, hi)
			} else {
				tr.Set(lo, hi, i)
			}
			all := tr.All()
			for j, s := range all {
				if s.Lo >= s.Hi {
					return false
				}
				if j > 0 && all[j-1].Hi > s.Lo {
					return false
				}
			}
			if tr.Len() != len(all) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New[int]()
	for i := 0; i < b.N; i++ {
		lo := uint64(i*64) % (1 << 20)
		tr.Set(lo, lo+64, i)
	}
}

func BenchmarkVisit(b *testing.B) {
	tr := New[int]()
	for i := 0; i < 1<<14; i++ {
		lo := uint64(i * 64)
		tr.Set(lo, lo+64, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i*64) % (1 << 19)
		tr.Visit(lo, lo+256, func(Seg[int]) bool { return true })
	}
}
