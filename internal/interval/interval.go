// Package interval provides an ordered map from half-open address ranges
// [lo, hi) to values, backed by a randomized balanced tree (treap).
//
// The map maintains the invariant that stored segments never overlap.
// Mutating a sub-range splits any partially covered segments, preserving
// their values on the uncovered remainders. All operations run in
// O(log n + k) for n stored segments and k touched segments, which is what
// gives the PMTest checking engine its O(log n) shadow-memory updates
// (paper §4.4).
//
// The zero value of Tree is an empty, ready-to-use map.
package interval

// Seg is one stored segment: the half-open range [Lo, Hi) and its value.
type Seg[V any] struct {
	Lo, Hi uint64
	Val    V
}

// Len reports the length of the segment in bytes.
func (s Seg[V]) Len() uint64 { return s.Hi - s.Lo }

type node[V any] struct {
	lo, hi uint64
	val    V
	pri    uint32
	left   *node[V]
	right  *node[V]
	count  int
}

// Tree is an interval map from [lo, hi) ranges to values of type V.
// It is not safe for concurrent use; the checking engine gives each trace
// its own shadow memory, so no locking is needed (paper §4.4).
type Tree[V any] struct {
	root *node[V]
	rng  uint64
	// free is a chain of recycled nodes (linked through left). Extraction
	// and Clear push removed nodes here; newNode pops before allocating,
	// so steady-state mutation of a long-lived tree is allocation-free.
	free *node[V]
}

// New returns an empty interval tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

func (t *Tree[V]) nextPri() uint32 {
	// xorshift64*; seeded lazily so the zero value works.
	if t.rng == 0 {
		t.rng = 0x9E3779B97F4A7C15
	}
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return uint32((x * 0x2545F4914F6CDD1D) >> 32)
}

// newNode returns a node for [lo, hi) → v, reusing a recycled one when
// available.
func (t *Tree[V]) newNode(lo, hi uint64, v V) *node[V] {
	if n := t.free; n != nil {
		t.free = n.left
		n.lo, n.hi, n.val = lo, hi, v
		n.pri = t.nextPri()
		n.left, n.right = nil, nil
		n.count = 1
		return n
	}
	return &node[V]{lo: lo, hi: hi, val: v, pri: t.nextPri(), count: 1}
}

// recycle pushes one node onto the freelist, zeroing its value so the
// freelist does not retain anything the value referenced.
func (t *Tree[V]) recycle(n *node[V]) {
	var zero V
	n.val = zero
	n.right = nil
	n.left = t.free
	t.free = n
}

// recycleAll recycles an entire subtree.
func (t *Tree[V]) recycleAll(n *node[V]) {
	if n == nil {
		return
	}
	t.recycleAll(n.left)
	t.recycleAll(n.right)
	t.recycle(n)
}

func count[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.count
}

func (n *node[V]) update() *node[V] {
	n.count = 1 + count(n.left) + count(n.right)
	return n
}

// split partitions n into (a, b) where a holds every segment with lo < key
// and b holds the rest. Segments are never cut by split; callers clip
// boundary-crossing segments before splitting.
func split[V any](n *node[V], key uint64) (a, b *node[V]) {
	if n == nil {
		return nil, nil
	}
	if n.lo < key {
		n.right, b = split(n.right, key)
		return n.update(), b
	}
	a, n.left = split(n.left, key)
	return a, n.update()
}

func merge[V any](a, b *node[V]) *node[V] {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.pri > b.pri:
		a.right = merge(a.right, b)
		return a.update()
	default:
		b.left = merge(a, b.left)
		return b.update()
	}
}

// Len returns the number of stored segments.
func (t *Tree[V]) Len() int { return count(t.root) }

// Clear removes all segments, recycling their nodes for reuse.
func (t *Tree[V]) Clear() {
	t.recycleAll(t.root)
	t.root = nil
}

// insertNode adds a segment that is known not to overlap anything stored.
func (t *Tree[V]) insertNode(lo, hi uint64, v V) {
	if lo >= hi {
		return
	}
	n := t.newNode(lo, hi, v)
	a, b := split(t.root, lo)
	t.root = merge(merge(a, n), b)
}

// ExtractOverlap removes every part of the tree overlapping [lo, hi) and
// returns the removed parts clipped to [lo, hi), in ascending order.
// Partially covered segments keep their value on the remainder outside the
// range. This is the workhorse primitive: read-modify-write a sub-range by
// extracting it, transforming the segments, and re-inserting them.
func (t *Tree[V]) ExtractOverlap(lo, hi uint64) []Seg[V] {
	return t.extract(lo, hi, nil, true)
}

// ExtractOverlapAppend is ExtractOverlap appending into dst, so callers
// on the checking hot path can reuse a scratch buffer across calls.
func (t *Tree[V]) ExtractOverlapAppend(dst []Seg[V], lo, hi uint64) []Seg[V] {
	return t.extract(lo, hi, dst, true)
}

// extract implements ExtractOverlap; when collect is false the removed
// segments are recycled without being copied out, which keeps Set and
// Delete allocation-free.
func (t *Tree[V]) extract(lo, hi uint64, dst []Seg[V], collect bool) []Seg[V] {
	if lo >= hi || t.root == nil {
		return dst
	}
	// Step 1: everything strictly left of lo, except a segment that begins
	// before lo may spill into [lo, hi).
	left, rest := split(t.root, lo)
	// The only candidate that can spill over is the maximum of left.
	var spill *node[V]
	if left != nil {
		var max *node[V]
		left, max = popMax(left)
		if max.hi > lo {
			spill = max
		} else {
			left = merge(left, max)
		}
	}
	mid, right := split(rest, hi)

	if spill != nil {
		end := spill.hi
		if end > hi {
			end = hi
			// Keep [hi, spill.hi) on the right.
			rightPart := t.newNode(hi, spill.hi, spill.val)
			a, b := split(right, hi)
			right = merge(merge(a, rightPart), b)
		}
		if collect {
			dst = append(dst, Seg[V]{Lo: lo, Hi: end, Val: spill.val})
		}
		// Reuse the spill node for its remainder [spill.lo, lo) on the left.
		spill.hi = lo
		spill.left, spill.right = nil, nil
		spill.count = 1
		left = merge(left, spill)
	}
	// Step 2: segments starting in [lo, hi); only the max can extend past hi.
	if mid != nil {
		var max *node[V]
		mid, max = popMax(mid)
		if max.hi > hi {
			rightPart := t.newNode(hi, max.hi, max.val)
			a, b := split(right, hi)
			right = merge(merge(a, rightPart), b)
			max.hi = hi
		}
		mid = merge(mid, max.update())
		if collect {
			inorder(mid, func(n *node[V]) { dst = append(dst, Seg[V]{Lo: n.lo, Hi: n.hi, Val: n.val}) })
		}
		t.recycleAll(mid)
	}
	t.root = merge(left, right)
	// dst may have the spill first then mid segments — already in
	// ascending order because spill starts exactly at lo and mid segments
	// start at or after lo and do not overlap the spill.
	return dst
}

func popMax[V any](n *node[V]) (rest, max *node[V]) {
	if n.right == nil {
		rest = n.left
		n.left = nil
		n.count = 1
		return rest, n
	}
	n.right, max = popMax(n.right)
	return n.update(), max
}

func inorder[V any](n *node[V], f func(*node[V])) {
	if n == nil {
		return
	}
	inorder(n.left, f)
	f(n)
	inorder(n.right, f)
}

// Set maps [lo, hi) to v, replacing any previous contents of the range.
func (t *Tree[V]) Set(lo, hi uint64, v V) {
	if lo >= hi {
		return
	}
	t.extract(lo, hi, nil, false)
	t.insertNode(lo, hi, v)
}

// Insert adds [lo, hi) → v without disturbing neighbours. It must not
// overlap an existing segment; use Set when replacement is intended.
func (t *Tree[V]) Insert(lo, hi uint64, v V) { t.insertNode(lo, hi, v) }

// Delete removes [lo, hi) from the map, trimming partial overlaps.
func (t *Tree[V]) Delete(lo, hi uint64) { t.extract(lo, hi, nil, false) }

// Visit calls f for every stored segment overlapping [lo, hi), clipped to
// the range, in ascending order. f returning false stops the walk.
func (t *Tree[V]) Visit(lo, hi uint64, f func(Seg[V]) bool) {
	visit(t.root, lo, hi, f)
}

func visit[V any](n *node[V], lo, hi uint64, f func(Seg[V]) bool) bool {
	if n == nil || lo >= hi {
		return true
	}
	// Prune: children left of lo or right of hi cannot overlap... but a
	// segment's extent is not bounded by its subtree key range alone, so we
	// prune only on lo ordering and test each node's own range.
	if n.lo < hi {
		if !visit(n.left, lo, hi, f) {
			return false
		}
		if n.hi > lo {
			s := Seg[V]{Lo: maxU64(n.lo, lo), Hi: minU64(n.hi, hi), Val: n.val}
			if s.Lo < s.Hi && !f(s) {
				return false
			}
		}
		return visit(n.right, lo, hi, f)
	}
	return visit(n.left, lo, hi, f)
}

// Overlaps reports whether any stored segment overlaps [lo, hi).
func (t *Tree[V]) Overlaps(lo, hi uint64) bool {
	found := false
	t.Visit(lo, hi, func(Seg[V]) bool { found = true; return false })
	return found
}

// Covered reports whether [lo, hi) is entirely covered by stored segments
// (with no gaps).
func (t *Tree[V]) Covered(lo, hi uint64) bool {
	if lo >= hi {
		return true
	}
	next := lo
	ok := true
	t.Visit(lo, hi, func(s Seg[V]) bool {
		if s.Lo > next {
			ok = false
			return false
		}
		next = s.Hi
		return true
	})
	return ok && next >= hi
}

// Gaps returns the sub-ranges of [lo, hi) not covered by any segment,
// in ascending order.
func (t *Tree[V]) Gaps(lo, hi uint64) []Seg[struct{}] {
	var gaps []Seg[struct{}]
	next := lo
	t.Visit(lo, hi, func(s Seg[V]) bool {
		if s.Lo > next {
			gaps = append(gaps, Seg[struct{}]{Lo: next, Hi: s.Lo})
		}
		next = s.Hi
		return true
	})
	if next < hi {
		gaps = append(gaps, Seg[struct{}]{Lo: next, Hi: hi})
	}
	return gaps
}

// ForEachPtr walks every segment in ascending order, passing a pointer to
// the stored value so callers can mutate values in place (the segment
// boundaries must not be changed). Used by fence handling, which closes
// every open interval in one pass.
func (t *Tree[V]) ForEachPtr(f func(lo, hi uint64, v *V)) {
	inorder(t.root, func(n *node[V]) { f(n.lo, n.hi, &n.val) })
}

// All returns every stored segment in ascending order.
func (t *Tree[V]) All() []Seg[V] {
	out := make([]Seg[V], 0, t.Len())
	inorder(t.root, func(n *node[V]) {
		out = append(out, Seg[V]{Lo: n.lo, Hi: n.hi, Val: n.val})
	})
	return out
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
