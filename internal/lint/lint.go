// Package lint is pmlint: a static crash-consistency linter for programs
// written against the pmtest tracker and pmem device APIs. It complements
// the dynamic checking engine — which validates executed traces — with a
// zero-execution-cost pass that flags the paper's bug classes on *every*
// syntactic path, including ones a test run never takes.
//
// The analyzer is stdlib-only (go/ast, go/parser, go/token): it parses
// source, recognizes PM operations by method name and arity (Write/Store*
// stores, Flush/CLWB writebacks, Fence/SFence/DFence fences,
// PersistBarrier, TxBegin/TxEnd/TxAdd, the Table 2 checkers, and
// RecordOp(trace.Op{Kind: ...}) composite literals), builds an
// intra-function CFG over AST statements, and runs path-sensitive rules
// over it. Package-level integer constants are folded so range coverage
// is exact for literal layouts; otherwise two ranges are assumed to alias
// iff their base expressions coincide.
//
// Every finding names the dynamic diagnostic code and the bugdb catalog
// category that would confirm it at runtime — the static and dynamic
// halves of the framework cross-reference each other.
//
// A finding is suppressed with a directive comment:
//
//	//pmlint:ignore rule1,rule2 reason for suppressing
//
// ("all" instead of a rule list matches every rule) placed on the
// offending line, on the line above it, or — to cover a whole function —
// immediately before the function declaration. Everything after the rule
// list is a free-text reason; by convention every directive carries one.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one static diagnostic.
type Finding struct {
	Rule     string `json:"rule"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"` // FAIL (crash consistency) or WARN (performance)
	Message  string `json:"message"`
	Hint     string `json:"hint"`
	// Dynamic is the engine diagnostic code that would confirm this
	// finding at runtime (core.Code spelling).
	Dynamic string `json:"dynamic"`
	// BugDB is the bug-catalog category (bugdb.Category spelling) whose
	// entries exercise this bug class dynamically.
	BugDB string `json:"bugdb"`
	// OriginFile/OriginLine point at the op a cross-function finding is
	// really about (the helper's store or flush) when it differs from the
	// reported position (the guilty call site). Suppression directives at
	// either position apply.
	OriginFile string `json:"origin_file,omitempty"`
	OriginLine int    `json:"origin_line,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s: %s (dynamic: %s, bugdb: %s)",
		f.File, f.Line, f.Col, f.Rule, f.Severity, f.Message, f.Dynamic, f.BugDB)
}

// RuleInfo describes one lint rule for documentation and cross-checks.
type RuleInfo struct {
	Name     string `json:"name"`
	Doc      string `json:"doc"`
	Severity string `json:"severity"`
	Dynamic  string `json:"dynamic"`
	BugDB    string `json:"bugdb"`
}

type ruleDef struct {
	RuleInfo
	hint   string
	run    func(f *fnInfo) []Finding  // per-function rule
	runPkg func(p *pkgInfo) []Finding // whole-package rule (crossflush, recoveryread)
}

// Rules returns the registered rules in reporting order.
func Rules() []RuleInfo {
	out := make([]RuleInfo, len(allRules))
	for i, r := range allRules {
		out[i] = r.RuleInfo
	}
	return out
}

// RuleNames returns the registered rule names.
func RuleNames() []string {
	var out []string
	for _, r := range allRules {
		out = append(out, r.Name)
	}
	return out
}

// fnInfo is one function (declaration or literal) under analysis.
type fnInfo struct {
	name string
	g    *graph
	fset *token.FileSet
	env  constEnv

	// Interprocedural state (callgraph.go / summary.go).
	pkg        *pkgInfo
	decl       *ast.FuncDecl // nil for literals
	lit        *ast.FuncLit  // nil for declarations
	recvName   string
	recvType   string
	params     map[string]bool   // parameter and receiver names
	paramNames []string          // positional parameter names (receiver excluded)
	typeHints  map[string]string // ident → syntactic type guess
	callers    map[*fnInfo]bool
	callees    []*fnInfo
	rootFn     bool // no callers outside this function's SCC
	scc        int
	sum        *summary
}

func (f *fnInfo) fp(e ast.Expr) string   { return exprString(f.fset, e) }
func (f *fnInfo) root(e ast.Expr) string { return exprString(f.fset, rootExpr(e)) }
func (f *fnInfo) covers(w, s *op) bool   { return covers(f.fset, f.env, w, s) }

// fpAddr is the range fingerprint of an op, falling back to the opaque
// tag for synthetic effects whose range has no caller-scope expression.
func (f *fnInfo) fpAddr(o *op) string {
	if o.addr == nil && o.opaqueFP != "" {
		return o.opaqueFP
	}
	return exprString(f.fset, o.addr)
}

func (f *fnInfo) pos(o *op) token.Position { return f.fset.Position(o.call.Pos()) }

// originate stamps a finding with the position of the op it is really
// about, when that op lives somewhere other than the reported position.
func originate(fd Finding, fn *fnInfo, o *op) Finding {
	if fn == nil || o == nil {
		return fd
	}
	p := fn.pos(o)
	if p.Filename == fd.File && p.Line == fd.Line {
		return fd
	}
	fd.OriginFile, fd.OriginLine = p.Filename, p.Line
	return fd
}

func (f *fnInfo) finding(r *ruleDef, o *op, msg string) Finding {
	p := f.pos(o)
	return Finding{
		Rule:     r.Name,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Severity: r.Severity,
		Message:  msg,
		Hint:     r.hint,
		Dynamic:  r.Dynamic,
		BugDB:    r.BugDB,
	}
}

// eachOp invokes fn for every op of every node, in the expanded
// interprocedural view when one has been computed.
func (f *fnInfo) eachOp(fn func(n *node, i int, o *op)) {
	for _, n := range f.g.nodes {
		ops := n.cur()
		for i := range ops {
			fn(n, i, &ops[i])
		}
	}
}

// mayBeInTx reports whether some backward path from (n, i) reaches an
// open TxBegin/TxCheckerStart — i.e. the op may execute inside a
// transaction region, where the library's commit (not the programmer)
// owns flushing.
func (f *fnInfo) mayBeInTx(n *node, i int) bool {
	_, found := searchBackward(f.g, n, i, pathQuery{
		matchOp: func(o *op) bool { return o.kind == opTxBegin || o.kind == opTxCheckerStart },
		blockOp: func(o *op) bool { return o.kind == opTxEnd || o.kind == opTxCheckerEnd },
	})
	return found
}

// --- Entry points -----------------------------------------------------------

// Options tunes an analysis run.
type Options struct {
	// StrictIgnores reports //pmlint:ignore directives that suppressed
	// nothing as findings of the pseudo-rule "staleignore" (WARN). CI runs
	// with this on so suppressions cannot outlive the bugs they excuse.
	StrictIgnores bool
}

// StaleIgnoreRule is the pseudo-rule name used for unmatched suppression
// directives under Options.StrictIgnores. It is not part of Rules(): it
// has no dynamic counterpart and cannot itself be suppressed.
const StaleIgnoreRule = "staleignore"

// LintFiles analyzes a set of parsed files that share one constant
// namespace (typically one package directory) and returns the findings,
// with ignore directives already applied, sorted by position.
func LintFiles(fset *token.FileSet, files []*ast.File) []Finding {
	return LintFilesOpt(fset, files, Options{})
}

// LintFilesOpt is LintFiles with explicit options.
func LintFilesOpt(fset *token.FileSet, files []*ast.File, opt Options) []Finding {
	findings, _ := analyzeFiles(fset, files, opt)
	return findings
}

// analyzeFiles runs the whole-package pipeline: call graph, summary
// fixpoint, per-function and package-wide rules, suppression filtering.
// It returns the surviving findings and the package state (for Census).
func analyzeFiles(fset *token.FileSet, files []*ast.File, opt Options) ([]Finding, *pkgInfo) {
	p := buildPkg(fset, files)
	computeFixpoint(p)

	supByFile := map[string]*suppressions{}
	for _, file := range files {
		supByFile[fset.Position(file.Pos()).Filename] = buildSuppressions(fset, file)
	}
	var findings []Finding
	emit := func(fd Finding) {
		// Evaluate both positions unconditionally so a directive at either
		// end of a cross-function finding is marked used.
		atPos := false
		if sup := supByFile[fd.File]; sup != nil && sup.suppressed(fd.Rule, fd.Line) {
			atPos = true
		}
		atOrigin := false
		if fd.OriginFile != "" {
			if sup := supByFile[fd.OriginFile]; sup != nil && sup.suppressed(fd.Rule, fd.OriginLine) {
				atOrigin = true
			}
		}
		if atPos || atOrigin {
			return
		}
		findings = append(findings, fd)
	}
	for _, fn := range p.fns {
		for i := range allRules {
			if allRules[i].run == nil {
				continue
			}
			for _, fd := range allRules[i].run(fn) {
				emit(fd)
			}
		}
	}
	for i := range allRules {
		if allRules[i].runPkg == nil {
			continue
		}
		for _, fd := range allRules[i].runPkg(p) {
			emit(fd)
		}
	}
	if opt.StrictIgnores {
		for _, file := range files {
			name := fset.Position(file.Pos()).Filename
			for _, sp := range supByFile[name].byLine {
				if sp.used {
					continue
				}
				findings = append(findings, Finding{
					Rule:     StaleIgnoreRule,
					File:     name,
					Line:     sp.directiveLine,
					Col:      1,
					Severity: "WARN",
					Message: fmt.Sprintf("//pmlint:ignore %s suppresses nothing — the finding it excused is gone",
						sp.describe()),
					Hint:    "delete the stale directive (or fix its rule list) so suppressions keep matching real findings",
					Dynamic: "none",
					BugDB:   "none",
				})
			}
		}
	}
	// Dedupe in emission order (rule sections emit their most specific
	// finding first), then sort: after dedupe the (File, Line, Col, Rule)
	// key is unique, with Message as a belt-and-braces tiebreak, so two
	// runs over the same tree are byte-identical.
	findings = dedupe(findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return findings, p
}

func dedupe(in []Finding) []Finding {
	var out []Finding
	seen := map[string]bool{}
	for _, f := range in {
		k := fmt.Sprintf("%s:%d:%d:%s", f.File, f.Line, f.Col, f.Rule)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// LintSource analyzes a single in-memory file.
func LintSource(filename, src string) ([]Finding, error) {
	return LintSourceOpt(filename, src, Options{})
}

// LintSourceOpt is LintSource with explicit options.
func LintSourceOpt(filename, src string, opt Options) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return LintFilesOpt(fset, []*ast.File{file}, opt), nil
}

// LintDir parses every .go file directly inside dir (optionally including
// _test.go files) and analyzes them together.
func LintDir(dir string, includeTests bool) ([]Finding, error) {
	return LintDirOpt(dir, includeTests, Options{})
}

// LintDirOpt is LintDir with explicit options.
func LintDirOpt(dir string, includeTests bool, opt Options) ([]Finding, error) {
	fset, files, err := parseDir(dir, includeTests)
	if err != nil {
		return nil, err
	}
	return LintFilesOpt(fset, files, opt), nil
}

func parseDir(dir string, includeTests bool) (*token.FileSet, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return fset, files, nil
}

// --- Ignore directives ------------------------------------------------------

const directive = "pmlint:ignore"

type suppression struct {
	rules map[string]bool // nil-keyed by "all" flag below
	all   bool
	// line-targeted suppressions map line → rule set; range suppressions
	// cover whole function declarations.
	fromLine, toLine int
	directiveLine    int // where the //pmlint:ignore comment itself sits
	rulesArg         string
	used             bool // matched at least one finding this run
}

func (sp *suppression) describe() string {
	if sp.rulesArg == "" {
		return "all"
	}
	return sp.rulesArg
}

type suppressions struct {
	byLine []*suppression
}

// suppressed reports whether any directive covers (rule, line), marking
// every matching directive used — staleness accounting must not blame a
// directive merely because another one matched the same finding first.
func (s *suppressions) suppressed(rule string, line int) bool {
	hit := false
	for _, sp := range s.byLine {
		if line < sp.fromLine || line > sp.toLine {
			continue
		}
		if sp.all || sp.rules[rule] {
			sp.used = true
			hit = true
		}
	}
	return hit
}

// buildSuppressions extracts //pmlint:ignore directives from a file. A
// directive on a code line targets that line; on its own line it targets
// the next line; immediately before a function declaration it covers the
// whole function.
func buildSuppressions(fset *token.FileSet, file *ast.File) *suppressions {
	sup := &suppressions{}
	// Lines on which non-comment code begins.
	codeLines := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})
	// Function declaration spans, keyed by their starting line.
	funcSpans := map[int][2]int{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			start := fset.Position(fd.Pos()).Line
			funcSpans[start] = [2]int{start, fset.Position(fd.End()).Line}
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
			if !strings.HasPrefix(text, directive) {
				continue
			}
			args := strings.TrimSpace(strings.TrimPrefix(text, directive))
			// The first field is the comma-separated rule list; anything
			// after it is the human-readable reason (by convention every
			// directive carries one).
			rulesArg := ""
			if fields := strings.Fields(args); len(fields) > 0 {
				rulesArg = fields[0]
			}
			sp := &suppression{rules: map[string]bool{}, rulesArg: rulesArg}
			if rulesArg == "" || rulesArg == "all" || rulesArg == "*" {
				sp.all = true
			} else {
				for _, r := range strings.Split(rulesArg, ",") {
					if r != "" {
						sp.rules[r] = true
					}
				}
			}
			line := fset.Position(c.Pos()).Line
			sp.directiveLine = line
			target := line
			if !codeLines[line] {
				target = line + 1
			}
			if span, ok := funcSpans[target]; ok && !codeLines[line] {
				sp.fromLine, sp.toLine = span[0], span[1]
			} else {
				sp.fromLine, sp.toLine = target, target
			}
			sup.byLine = append(sup.byLine, sp)
		}
	}
	return sup
}

// Render formats findings as the CLI's text output, one line each plus an
// indented hint.
func Render(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
		if f.OriginFile != "" {
			fmt.Fprintf(&b, "    origin: %s:%d\n", f.OriginFile, f.OriginLine)
		}
		if f.Hint != "" {
			b.WriteString("    hint: ")
			b.WriteString(f.Hint)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
