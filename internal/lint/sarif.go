package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, minimal but valid: one run, the rule catalog in the
// tool.driver block, one result per finding. CI uploads this as an
// artifact; any SARIF viewer can load it.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	Help             sarifText `json:"help,omitempty"`
	Properties       struct {
		Dynamic string `json:"dynamic,omitempty"`
		BugDB   string `json:"bugdb,omitempty"`
	} `json:"properties"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF serializes findings as a SARIF 2.1.0 log. FAIL maps to
// level "error", WARN to "warning". The rule catalog (including the
// synthetic staleignore rule) rides along in the driver block so viewers
// can show per-rule documentation.
func WriteSARIF(w io.Writer, findings []Finding) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{Name: "pmlint"}},
		// An empty results array, not null, keeps strict viewers happy.
		Results: []sarifResult{},
	}
	for _, r := range Rules() {
		sr := sarifRule{ID: r.Name, ShortDescription: sarifText{Text: r.Doc}}
		sr.Properties.Dynamic = r.Dynamic
		sr.Properties.BugDB = r.BugDB
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sr)
	}
	run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
		ID:               StaleIgnoreRule,
		ShortDescription: sarifText{Text: "a //pmlint:ignore directive suppresses nothing (strict-ignores mode)"},
	})
	for _, f := range findings {
		level := "error"
		if f.Severity == "WARN" {
			level = "warning"
		}
		msg := f.Message
		if f.Hint != "" {
			msg += " — " + f.Hint
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Rule,
			Level:   level,
			Message: sarifText{Text: msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
