package lint

// allRules is the rule registry, populated by the rules_*.go init
// functions; registration order is documentation order.
var allRules []ruleDef

func ruleByName(name string) *ruleDef {
	for i := range allRules {
		if allRules[i].Name == name {
			return &allRules[i]
		}
	}
	panic("lint: unknown rule " + name)
}
