// Known-clean fixture for the txnolog rule: every transactional store is
// preceded by a TxAdd covering its range — including coverage by a
// single snapshot spanning several stores.
package fixture

func txNoLogClean(th *Thread) {
	th.TxBegin()
	th.TxAdd(0x00, 16) // one snapshot covers both words
	th.Write(0x00, 8)
	th.Write(0x08, 8)
	th.TxEnd()
}
