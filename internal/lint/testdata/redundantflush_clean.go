package p

// Same call shape as the bad fixture, but a fresh store to the header
// between the two writebacks makes the helper's flush necessary.

func persistHdr2(dev *Device) {
	dev.CLWB(0x40, 8)
	dev.SFence()
}

func redundantFlushClean(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.SFence()
	dev.Store64(0x40, 2) // fresh dirty data: the helper's writeback is real work
	persistHdr2(dev)
}
