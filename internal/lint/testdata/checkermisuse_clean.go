// Known-clean fixture for the checkermisuse rule: balanced regions,
// distinct consistently-ordered ranges, and every checker shipped.
package fixture

func checkerMisuseClean(th *Thread) {
	th.Write(0x10, 8)
	th.Flush(0x10, 8)
	th.Write(0x20, 8)
	th.Flush(0x20, 8)
	th.Fence()
	th.TxCheckerStart()
	th.TxCheckerEnd()
	th.IsOrderedBefore(0x10, 8, 0x20, 8)
	th.IsPersist(0x20, 8)
	th.SendTrace()
}
