// Known-bad fixture for the missedflush rule: stores that can reach
// function exit without a covering writeback. Parse-only — Device is the
// pmem device shape, never resolved.
package fixture

func missedFlushBad(dev *Device) {
	dev.Store64(0x40, 1)
	dev.Store64(0x80, 2) // never written back
	dev.CLWB(0x40, 8)
	dev.SFence()
}

func missedFlushBranch(dev *Device, ok bool) {
	dev.Store64(0xC0, 3) // written back on only one branch
	if ok {
		dev.PersistBarrier(0xC0, 8)
	}
}
