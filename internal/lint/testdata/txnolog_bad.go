// Known-bad fixture for the txnolog rule: a transactional store whose
// range was never snapshotted with TxAdd.
package fixture

func txNoLogBad(th *Thread) {
	th.TxBegin()
	th.TxAdd(0x00, 8)
	th.Write(0x00, 8)
	th.Write(0x40, 8) // modified without an undo-log backup
	th.TxEnd()
}
