package p

// The same helper store escapes into two different callers, and both
// cover it — one with an explicit CLWB+SFence, one with PersistBarrier.
// The obligation is discharged on every interprocedural path.

const hdrOff2 = 0x40

func setHeader2(dev *Device) {
	dev.Store64(hdrOff2, 1)
}

func crossFlushClean(dev *Device) {
	setHeader2(dev)
	dev.CLWB(hdrOff2, 8)
	dev.SFence()
}

func crossFlushCleanAlt(dev *Device) {
	setHeader2(dev)
	dev.PersistBarrier(hdrOff2, 8)
}
