package p

// Same shape, but the caller persists the metadata word before fencing:
// the recovery read observes durable state on every path.

const metaOff2 = 0x40

func writeMeta2(dev *Device) {
	dev.Store64(metaOff2, 1)
}

func updateMeta2(dev *Device) {
	writeMeta2(dev)
	dev.CLWB(metaOff2, 8)
	dev.SFence()
}

func OpenMeta2(dev *Device) uint64 {
	return dev.Load64(metaOff2)
}
