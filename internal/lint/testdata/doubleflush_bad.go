// Known-bad fixture for the doubleflush rule: the same range written
// back twice with no intervening store.
package fixture

func doubleFlushBad(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.CLWB(0x40, 8) // redundant: nothing dirtied the line in between
	dev.SFence()
}
