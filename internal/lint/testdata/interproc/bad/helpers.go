package p

// Helpers: each owns half of a persistency protocol; the caller owns the
// other half. Every bug in callers.go lives in the seam between the two
// files — none is visible to a single-function or single-file analysis.

func setRecord(dev *Device, addr uint64) {
	dev.Store64(addr, 1)
}

func flushRecord(dev *Device, addr uint64) {
	dev.CLWB(addr, 8)
}

func putField(th *Thread, addr uint64) {
	th.Write(addr, 8)
}

func beginChecker(th *Thread) {
	th.TxCheckerStart()
}
