package p

// Cross-function variants of the five legacy bug classes, one caller per
// class. The helpers live in helpers.go.

// missedflush: the helper's store is written back on the sync path only.
func commitRecord(dev *Device, sync bool) {
	setRecord(dev, 0x100)
	if sync {
		dev.CLWB(0x100, 8)
	}
	dev.SFence()
}

// missedfence: the helper's writeback escapes on the non-sync path.
func publishRecord(dev *Device, sync bool) {
	dev.Store64(0x200, 1)
	flushRecord(dev, 0x200)
	if sync {
		dev.SFence()
	}
}

// doubleflush through a method-value binding: the same line is written
// back twice with no store in between.
func rewriteRecord(dev *Device) {
	dev.Store64(0x300, 1)
	fl := dev.CLWB
	fl(0x300, 8)
	dev.CLWB(0x300, 8)
	dev.SFence()
}

// txnolog: the helper mutates a range inside the caller's transaction
// with no undo-log backup for that range.
func txUpdate(th *Thread) {
	th.TxBegin()
	th.TxAdd(0x400, 8)
	th.Write(0x400, 8)
	putField(th, 0x440)
	th.TxEnd()
}

// checkermisuse: the checker region opened through the helper is never
// closed on any path.
func traceUpdate(th *Thread) {
	beginChecker(th)
	th.TxAdd(0x500, 8)
	th.Write(0x500, 8)
	th.Flush(0x500, 8)
	th.Fence()
}
