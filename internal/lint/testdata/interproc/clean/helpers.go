package p

// Same helpers as the bad package: each owns half of a persistency
// protocol. The callers in callers.go discharge every obligation.

func setRecord(dev *Device, addr uint64) {
	dev.Store64(addr, 1)
}

func flushRecord(dev *Device, addr uint64) {
	dev.CLWB(addr, 8)
}

func putField(th *Thread, addr uint64) {
	th.Write(addr, 8)
}

func beginChecker(th *Thread) {
	th.TxCheckerStart()
}
