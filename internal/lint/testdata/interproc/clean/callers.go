package p

// The same five protocols as the bad package, each discharged across the
// call boundary on every path.

func commitRecord(dev *Device) {
	setRecord(dev, 0x100)
	dev.CLWB(0x100, 8)
	dev.SFence()
}

func publishRecord(dev *Device) {
	dev.Store64(0x200, 1)
	flushRecord(dev, 0x200)
	dev.SFence()
}

func rewriteRecord(dev *Device) {
	dev.Store64(0x300, 1)
	fl := dev.CLWB
	fl(0x300, 8)
	dev.SFence()
}

func txUpdate(th *Thread) {
	th.TxBegin()
	th.TxAdd(0x400, 8)
	th.Write(0x400, 8)
	th.TxAdd(0x440, 8)
	putField(th, 0x440)
	th.TxEnd()
}

func traceUpdate(th *Thread) {
	beginChecker(th)
	th.TxAdd(0x500, 8)
	th.Write(0x500, 8)
	th.Flush(0x500, 8)
	th.Fence()
	th.TxCheckerEnd()
}
