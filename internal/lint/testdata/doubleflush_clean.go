// Known-clean fixture for the doubleflush rule: a second writeback of
// the same range is fine once a store has re-dirtied it.
package fixture

func doubleFlushClean(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.SFence()
	dev.Store64(0x40, 2) // re-dirtied: the next writeback is earned
	dev.CLWB(0x40, 8)
	dev.SFence()
}
