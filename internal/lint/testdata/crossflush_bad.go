package p

// Two interprocedural never-persisted shapes. setHeader's store escapes
// into a caller that flushes a different range — no path anywhere covers
// the header. flushHeader's writeback escapes into a caller that never
// fences — the epoch is never closed on any chain.

const hdrOff = 0x40

func setHeader(dev *Device) {
	dev.Store64(hdrOff, 1)
}

func crossFlushBad(dev *Device) {
	setHeader(dev)
	dev.Store64(0x80, 2)
	dev.CLWB(0x80, 8) // covers 0x80 only; the header store stays dirty
	dev.SFence()
}

func flushHeader(dev *Device) {
	dev.CLWB(hdrOff, 8)
}

func syncHeader(dev *Device) {
	dev.Store64(hdrOff, 1)
	flushHeader(dev) // written back, but no caller path ever fences
}
