// Known-bad fixture for the checkermisuse rule: a vacuous self-compare,
// contradictory ordering assertions, an unclosed checker region, and a
// checker that can escape without SendTrace shipping it.
package fixture

func checkerMisuseBad(th *Thread, ok bool) {
	th.Write(0x40, 8)
	th.Flush(0x40, 8)
	th.Fence()
	th.IsOrderedBefore(0x40, 8, 0x40, 8) // a range ordered before itself
	th.IsOrderedBefore(0x10, 8, 0x20, 8)
	th.IsOrderedBefore(0x20, 8, 0x10, 8) // contradicts the line above
	th.TxCheckerStart()
	if ok {
		return // region left open, checkers never shipped
	}
	th.TxCheckerEnd()
	th.SendTrace()
}
