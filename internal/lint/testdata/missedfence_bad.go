// Known-bad fixture for the missedfence rule: a writeback whose epoch is
// never closed on some path.
package fixture

func missedFenceBad(dev *Device, ok bool) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8) // the early return leaves the epoch open
	if ok {
		return
	}
	dev.SFence()
}
