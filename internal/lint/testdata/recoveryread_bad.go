package p

// The mutation path stores the metadata word but no interprocedural path
// ever writes it back, and the recovery entry point reads it — after a
// crash OpenMeta observes whatever the cache evicted. The store itself is
// also a crossflush finding; this fixture suppresses it to isolate the
// recovery-read coupling.

const metaOff = 0x40

func writeMeta(dev *Device) {
	dev.Store64(metaOff, 1) //pmlint:ignore crossflush the recovery-read coupling is what this fixture pins
}

func updateMeta(dev *Device) {
	writeMeta(dev)
	dev.SFence() // fences, but nothing was ever written back
}

func OpenMeta(dev *Device) uint64 {
	return dev.Load64(metaOff)
}
