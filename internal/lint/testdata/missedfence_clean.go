// Known-clean fixture for the missedfence rule: every writeback is
// completed by a fence (or a self-fencing barrier) on every path.
package fixture

func missedFenceClean(dev *Device, ok bool) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.SFence()
	if ok {
		return
	}
	dev.Store64(0x80, 2)
	dev.PersistBarrier(0x80, 8)
}
