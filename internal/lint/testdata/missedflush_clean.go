// Known-clean fixture for the missedflush rule: every store is covered
// by a writeback on every path, including coverage that only constant
// folding can prove.
package fixture

const (
	cleanHdrOff  = 0x00
	cleanHdrSize = 16
	cleanValOff  = 0x10
)

func missedFlushClean(dev *Device, ok bool) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.SFence()
	dev.Store64(0xC0, 3)
	dev.PersistBarrier(0xC0, 8)
	dev.StoreNT(0x100, buf) // non-temporal: persists at the next fence
	dev.SFence()
}

func missedFlushConstCover(dev *Device) {
	dev.Store64(cleanHdrOff, 1)
	dev.Store64(cleanValOff, 2)
	// One barrier covers both stores: [0x00,0x18) ⊇ {[0,8), [16,24)}.
	dev.PersistBarrier(cleanHdrOff, cleanHdrSize+8)
}
