package p

// The caller writes the header back and fences, then calls a helper whose
// whole job is writing back the same header again — the second writeback
// is provably wasted work, visible only across the call boundary.

func persistHdr(dev *Device) {
	dev.CLWB(0x40, 8)
	dev.SFence()
}

func redundantFlushBad(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.SFence()
	persistHdr(dev) // flushes 0x40 again; nothing stored in between
}
