package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

// lintFixture lints one testdata file on its own (fixtures are
// independent programs; LintDir would pool their constants).
func lintFixture(t *testing.T, name string) []Finding {
	t.Helper()
	path := filepath.Join("testdata", name)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := LintSource(path, string(src))
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestGoldenBad locks the exact findings (position, message, hint,
// cross-references) each rule produces on its known-bad fixture.
func TestGoldenBad(t *testing.T) {
	for _, rule := range RuleNames() {
		t.Run(rule, func(t *testing.T) {
			findings := lintFixture(t, rule+"_bad.go")
			if len(findings) == 0 {
				t.Fatalf("no findings on known-bad fixture for %s", rule)
			}
			for _, f := range findings {
				if f.Rule != rule {
					t.Errorf("unexpected rule %s in %s fixture: %s", f.Rule, rule, f)
				}
			}
			got := Render(findings)
			goldenPath := filepath.Join("testdata", rule+"_bad.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run go test -update to create it)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s\n--- got ---\n%s--- want ---\n%s", rule, got, want)
			}
		})
	}
}

// TestGoldenClean asserts the known-clean fixtures produce zero findings
// from any rule — the true-negative half of each rule's contract.
func TestGoldenClean(t *testing.T) {
	for _, rule := range RuleNames() {
		t.Run(rule, func(t *testing.T) {
			if findings := lintFixture(t, rule+"_clean.go"); len(findings) != 0 {
				t.Errorf("clean fixture for %s produced findings:\n%s", rule, Render(findings))
			}
		})
	}
}

// TestSelfCheck asserts the liveness probe fires for every registered
// rule (bughunt -lint depends on this).
func TestSelfCheck(t *testing.T) {
	for _, rule := range RuleNames() {
		if !SelfCheck(rule) {
			t.Errorf("SelfCheck(%q) = false; the canonical snippet no longer trips the rule", rule)
		}
	}
	if SelfCheck("no-such-rule") {
		t.Error("SelfCheck of an unknown rule must be false")
	}
}

const ignoreBase = `package p

func f(dev *Device) {
	dev.Store64(0x40, 1)%s
	dev.SFence()
}
`

func countFindings(t *testing.T, src string) int {
	t.Helper()
	findings, err := LintSource("src.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return len(findings)
}

func TestIgnoreDirectives(t *testing.T) {
	bare := strings.ReplaceAll(ignoreBase, "%s", "")
	if n := countFindings(t, bare); n != 1 {
		t.Fatalf("baseline: got %d findings, want 1", n)
	}
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"same line with reason", strings.ReplaceAll(ignoreBase, "%s",
			" //pmlint:ignore missedflush covered elsewhere"), 0},
		{"same line all", strings.ReplaceAll(ignoreBase, "%s",
			" //pmlint:ignore all not a PM store"), 0},
		{"wrong rule", strings.ReplaceAll(ignoreBase, "%s",
			" //pmlint:ignore doubleflush wrong rule"), 1},
		{"line above", strings.Replace(bare,
			"\tdev.Store64", "\t//pmlint:ignore missedflush covered elsewhere\n\tdev.Store64", 1), 0},
		{"whole function", strings.Replace(bare,
			"func f", "//pmlint:ignore missedflush demo function\nfunc f", 1), 0},
		{"rule list", strings.ReplaceAll(ignoreBase, "%s",
			" //pmlint:ignore doubleflush,missedflush two rules, one comma list"), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n := countFindings(t, tc.src); n != tc.want {
				t.Errorf("got %d findings, want %d", n, tc.want)
			}
		})
	}
}

// TestWrapperContract: a wrapper whose obligations are rooted in its
// parameters or receiver has a parametric contract — the summary hands
// the obligation to each caller, and nothing is reported at the wrapper
// itself even when it has no callers in the package.
func TestWrapperContract(t *testing.T) {
	src := `package p

func (r *Recorder) Store(addr uint64, data []byte) {
	r.dev.Store(addr, data)
}

func (r *Recorder) CLWB(addr, size uint64) {
	r.dev.CLWB(addr, size)
}

func txCheckerStart(dev *Device) {
	dev.RecordOp(Op{Kind: KindTxCheckerStart}, 1)
}
`
	if n := countFindings(t, src); n != 0 {
		t.Errorf("wrappers produced %d findings, want 0", n)
	}
}

// TestRuleMetadata: every rule names its dynamic diagnostic and bugdb
// category, and rule names are unique.
func TestRuleMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if seen[r.Name] {
			t.Errorf("duplicate rule name %s", r.Name)
		}
		seen[r.Name] = true
		if r.Doc == "" || r.Severity == "" || r.Dynamic == "" || r.BugDB == "" {
			t.Errorf("rule %s has incomplete metadata: %+v", r.Name, r)
		}
		if r.Severity != "FAIL" && r.Severity != "WARN" {
			t.Errorf("rule %s: severity %q is not FAIL or WARN", r.Name, r.Severity)
		}
	}
	if len(seen) != 8 {
		t.Errorf("got %d rules, want 8", len(seen))
	}
}
