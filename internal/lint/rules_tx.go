package lint

import "fmt"

// Transaction-logging rule: the paper's "missing/misplaced backup" class
// (Table 5, the largest class — 19 of 42 synthetic bugs, plus two of the
// three real-world finds of Table 6).

func init() {
	allRules = append(allRules, ruleDef{
		RuleInfo: RuleInfo{
			Name: "txnolog",
			Doc: "a store inside a TxBegin/TxEnd (or TxCheckerStart/End) region has no " +
				"preceding TxAdd backing up its range on some path — after a crash the " +
				"undo log cannot restore the old value",
			Severity: "FAIL",
			Dynamic:  "missing-backup",
			BugDB:    "backup",
		},
		hint: "call TxAdd(addr, size) for the range before the first store that modifies it",
		run:  runTxNoLog,
	})
}

func runTxNoLog(f *fnInfo) []Finding {
	r := ruleByName("txnolog")
	var out []Finding
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opStore && o.kind != opStoreNT {
			return
		}
		if o.synthetic && !o.needLog {
			return // the callee logged the range itself on every path
		}
		// Walk backward from the store: reaching a region opener without
		// first crossing a covering TxAdd means some execution modifies
		// the range unlogged. Leaving the region backward (TxEnd) or
		// reaching function entry means the store is outside the
		// transaction on that path, which is missedflush's domain. The
		// expanded view makes this cross-function: a Begin helper opens
		// the region through its mustOpen effect, a logging helper covers
		// stores through its mustTxAdd effect, and a store inside a helper
		// arrives here as a synthetic op flagged needLog.
		begin, _ := searchBackward(f.g, n, i, pathQuery{
			matchOp: func(b *op) bool {
				return b.kind == opTxBegin || b.kind == opTxCheckerStart
			},
			blockOp: func(b *op) bool {
				if b.kind == opTxAdd {
					return f.covers(b, o)
				}
				return b.kind == opTxEnd || b.kind == opTxCheckerEnd
			},
		})
		if begin == nil {
			return
		}
		if o.synthetic {
			fd := f.finding(r, o,
				fmt.Sprintf("store to %s by %s inside a transaction in %s has no preceding TxAdd backup",
					f.fpAddr(o), o.fromFn, f.name))
			if o.origin != nil {
				fd = originate(fd, o.origin.fn, o.origin.o)
			}
			out = append(out, fd)
			return
		}
		out = append(out, f.finding(r, o,
			fmt.Sprintf("store to %s inside a transaction in %s has no preceding TxAdd backup",
				f.fp(o.addr), f.name)))
	})
	return out
}
