package lint

import "fmt"

// Writeback and fence rules: the paper's "missing/misplaced writeback",
// "missing/misplaced ordering enforcement" and "redundant writeback"
// classes (Table 5), detected on syntactic paths instead of traces.
//
// All of them run over the interprocedural view: call sites carry the
// callee's summarized effects as synthetic ops, so a store in f flushed
// only inside g is provably covered — and a store g lets escape is
// checked against f's paths. Reporting follows the obligation-transfer
// model: a helper whose range is substitutable (rooted in a parameter,
// receiver or package variable) hands the obligation to its callers;
// ranges rooted in locals can only be discharged where they live; and in
// call-graph roots a parameter-rooted range is an external caller's
// contract, not a bug.

func init() {
	allRules = append(allRules,
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "missedflush",
				Doc: "a store can reach function exit with no writeback (CLWB/PersistBarrier) " +
					"covering its range on some path — the data may never become durable",
				Severity: "FAIL",
				Dynamic:  "not-persisted",
				BugDB:    "writeback",
			},
			hint: "write the range back before returning (CLWB + SFence, or PersistBarrier), " +
				"or use a non-temporal store if the range persists at the next fence",
			run: runMissedFlush,
		},
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "missedfence",
				Doc: "a writeback is never completed by a fence (SFence/DFence) on some path " +
					"to function exit — the epoch is left open and the writeback may not take effect",
				Severity: "FAIL",
				Dynamic:  "order-violation",
				BugDB:    "ordering",
			},
			hint: "close the epoch with SFence (or PersistBarrier) before the function returns",
			run:  runMissedFence,
		},
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "doubleflush",
				Doc: "the same range is written back again with no intervening store — the second " +
					"writeback is wasted work (the paper's unnecessary-writeback performance bug)",
				Severity: "WARN",
				Dynamic:  "duplicate-writeback",
				BugDB:    "perf-writeback",
			},
			hint: "drop the redundant writeback, or restructure so each modified range is " +
				"written back exactly once per epoch",
			run: runDoubleFlush,
		},
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "redundantflush",
				Doc: "a flush is provably preceded (or followed) across a call boundary by a " +
					"flush of the same range with no intervening store — one of the two is " +
					"wasted work that only whole-program analysis can see",
				Severity: "WARN",
				Dynamic:  "duplicate-writeback",
				BugDB:    "perf-writeback",
			},
			hint: "let exactly one side of the call own the writeback: drop the caller's flush " +
				"or the callee's, whichever does not also fence for other ranges",
			run: runRedundantFlush,
		},
	)
}

// escapesWriteback reports whether some path from op o at (n, i) reaches
// function exit with no covering writeback.
func escapesWriteback(f *fnInfo, n *node, i int, o *op) bool {
	_, exitReached := searchForward(f.g, n, i+1, pathQuery{
		blockOp:  coveringWriteback(f, o),
		matchEnd: true,
	})
	return exitReached
}

func runMissedFlush(f *fnInfo) []Finding {
	r := ruleByName("missedflush")
	var out []Finding
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opStore {
			return // non-temporal stores persist at the next fence
		}
		if o.synthetic && !o.needFlush {
			return
		}
		if f.mayBeInTx(n, i) {
			return // inside a transaction the commit owns flushing (txnolog's domain)
		}
		if !escapesWriteback(f, n, i, o) {
			return
		}
		if o.synthetic {
			// A callee's store escaping through this call site. Report the
			// path-specific miss only when some other interprocedural path
			// does cover it (a placement bug at this site); stores no path
			// covers anywhere are crossflush's finding, at their origin.
			if f.rootFn && o.origin != nil && o.origin.covered && !f.isParamRooted(o.addr) {
				out = append(out, originate(f.finding(r, o,
					fmt.Sprintf("store to %s by %s can reach exit of %s without a covering writeback",
						f.fpAddr(o), o.fromFn, f.name)), o.origin.fn, o.origin.o))
			}
			return
		}
		if f.substitutable(o.addr) {
			if !f.rootFn {
				return // obligation transfers to callers via the summary
			}
			if f.isParamRooted(o.addr) {
				return // parametric contract: the external caller persists it
			}
		}
		out = append(out, f.finding(r, o,
			fmt.Sprintf("store to %s can reach exit of %s without a covering writeback",
				f.fp(o.addr), f.name)))
	})
	return out
}

func runMissedFence(f *fnInfo) []Finding {
	r := ruleByName("missedfence")
	var out []Finding
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opFlush {
			return // PersistBarrier fences itself
		}
		if o.synthetic && !o.needFence {
			return
		}
		_, exitReached := searchForward(f.g, n, i+1, pathQuery{
			blockOp: func(b *op) bool {
				// TxEnd commits fence as part of the library protocol.
				return b.kind == opFence || b.kind == opBarrier || b.kind == opTxEnd
			},
			matchEnd: true,
		})
		if !exitReached {
			return
		}
		if o.synthetic {
			if f.rootFn && o.origin != nil && o.origin.covered {
				out = append(out, originate(f.finding(r, o,
					fmt.Sprintf("writeback of %s by %s is never completed by a fence on some path through %s",
						f.fpAddr(o), o.fromFn, f.name)), o.origin.fn, o.origin.o))
			}
			return
		}
		if !f.rootFn {
			return // any caller's fence completes it; escapes are summarized
		}
		if o.addr != nil && f.isParamRooted(o.addr) {
			return // flush-forwarding helper: the caller owns the fence
		}
		out = append(out, f.finding(r, o,
			fmt.Sprintf("writeback of %s is never completed by a fence on some path through %s",
				f.fp(o.addr), f.name)))
	})
	return out
}

// storeBlocks builds the blockOp used by the duplicate-writeback rules: a
// store into the flushed range legitimizes the next writeback. For opaque
// ranges any store blocks, keeping false pairs out.
func storeBlocks(f *fnInfo, o *op) func(*op) bool {
	return func(b *op) bool {
		if b.kind != opStore && b.kind != opStoreNT {
			return false
		}
		if o.addr == nil {
			return true
		}
		return f.covers(o, b)
	}
}

func runDoubleFlush(f *fnInfo) []Finding {
	r := ruleByName("doubleflush")
	var out []Finding
	f.eachOp(func(n *node, i int, o *op) {
		if (o.kind != opFlush && o.kind != opBarrier) || o.synthetic {
			return // pairs involving a call boundary are redundantflush's
		}
		addrFP, sizeFP := f.fp(o.addr), f.fp(o.size)
		ids := identsOf(o.addr)
		hit, _ := searchForward(f.g, n, i+1, pathQuery{
			matchOp: func(b *op) bool {
				return (b.kind == opFlush || b.kind == opBarrier) && !b.synthetic &&
					f.fp(b.addr) == addrFP && f.fp(b.size) == sizeFP &&
					b.fixed == o.fixed
			},
			blockOp: storeBlocks(f, o),
			blockNode: func(nd *node) bool {
				for id := range nd.assigned {
					if ids[id] {
						return true // fingerprint variable reassigned
					}
				}
				return false
			},
		})
		if hit != nil {
			out = append(out, f.finding(r, hit,
				fmt.Sprintf("%s is written back again with no intervening store in %s",
					f.fp(hit.addr), f.name)))
		}
	})
	return out
}

func runRedundantFlush(f *fnInfo) []Finding {
	r := ruleByName("redundantflush")
	var out []Finding
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opFlush && o.kind != opBarrier {
			return
		}
		// Opaque fingerprints name the callee, not the range: two calls to
		// the same helper with different arguments would compare equal, so
		// only substitutable (caller-scope) ranges can pair up.
		if o.addr == nil {
			return
		}
		addrFP, sizeFP := f.fpAddr(o), f.fp(o.size)
		if addrFP == "" {
			return
		}
		ids := identsOf(o.addr)
		hit, _ := searchForward(f.g, n, i+1, pathQuery{
			matchOp: func(b *op) bool {
				return (b.kind == opFlush || b.kind == opBarrier) && b.addr != nil &&
					(o.synthetic || b.synthetic) &&
					f.fpAddr(b) == addrFP && f.fp(b.size) == sizeFP &&
					b.fixed == o.fixed
			},
			blockOp: storeBlocks(f, o),
			blockNode: func(nd *node) bool {
				for id := range nd.assigned {
					if ids[id] {
						return true
					}
				}
				return false
			},
		})
		if hit == nil {
			return
		}
		var msg string
		switch {
		case hit.synthetic && o.synthetic:
			msg = fmt.Sprintf("%s flushes %s again after %s already wrote it back, with no intervening store in %s",
				hit.fromFn, addrFP, o.fromFn, f.name)
		case hit.synthetic:
			msg = fmt.Sprintf("%s writes %s back again after the flush in %s, with no intervening store",
				hit.fromFn, addrFP, f.name)
		default:
			msg = fmt.Sprintf("%s is written back again in %s after %s already wrote it back, with no intervening store",
				addrFP, f.name, o.fromFn)
		}
		fd := f.finding(r, hit, msg)
		if hit.synthetic && hit.origin != nil {
			fd = originate(fd, hit.origin.fn, hit.origin.o)
		} else if o.synthetic && o.origin != nil {
			fd = originate(fd, o.origin.fn, o.origin.o)
		}
		out = append(out, fd)
	})
	return out
}
