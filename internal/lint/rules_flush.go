package lint

import "fmt"

// Writeback and fence rules: the paper's "missing/misplaced writeback",
// "missing/misplaced ordering enforcement" and "redundant writeback"
// classes (Table 5), detected on syntactic paths instead of traces.

func init() {
	allRules = append(allRules,
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "missedflush",
				Doc: "a store can reach function exit with no writeback (CLWB/PersistBarrier) " +
					"covering its range on some path — the data may never become durable",
				Severity: "FAIL",
				Dynamic:  "not-persisted",
				BugDB:    "writeback",
			},
			hint: "write the range back before returning (CLWB + SFence, or PersistBarrier), " +
				"or use a non-temporal store if the range persists at the next fence",
			run: runMissedFlush,
		},
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "missedfence",
				Doc: "a writeback is never completed by a fence (SFence/DFence) on some path " +
					"to function exit — the epoch is left open and the writeback may not take effect",
				Severity: "FAIL",
				Dynamic:  "order-violation",
				BugDB:    "ordering",
			},
			hint: "close the epoch with SFence (or PersistBarrier) before the function returns",
			run:  runMissedFence,
		},
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "doubleflush",
				Doc: "the same range is written back again with no intervening store — the second " +
					"writeback is wasted work (the paper's unnecessary-writeback performance bug)",
				Severity: "WARN",
				Dynamic:  "duplicate-writeback",
				BugDB:    "perf-writeback",
			},
			hint: "drop the redundant writeback, or restructure so each modified range is " +
				"written back exactly once per epoch",
			run: runDoubleFlush,
		},
	)
}

func runMissedFlush(f *fnInfo) []Finding {
	r := ruleByName("missedflush")
	var out []Finding
	if f.forwarder() {
		return nil
	}
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opStore {
			return // non-temporal stores persist at the next fence
		}
		if f.mayBeInTx(n, i) {
			return // inside a transaction the commit owns flushing (txnolog's domain)
		}
		_, exitReached := searchForward(f.g, n, i+1, pathQuery{
			blockOp: func(b *op) bool {
				switch b.kind {
				case opFlush, opBarrier:
					return f.covers(b, o)
				case opFence:
					return b.dfence // HOPS dfence drains every pending write
				}
				return false
			},
			matchEnd: true,
		})
		if exitReached {
			out = append(out, f.finding(r, o,
				fmt.Sprintf("store to %s can reach exit of %s without a covering writeback",
					f.fp(o.addr), f.name)))
		}
	})
	return out
}

func runMissedFence(f *fnInfo) []Finding {
	r := ruleByName("missedfence")
	var out []Finding
	if f.forwarder() {
		return nil
	}
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opFlush {
			return // PersistBarrier fences itself
		}
		_, exitReached := searchForward(f.g, n, i+1, pathQuery{
			blockOp: func(b *op) bool {
				// TxEnd commits fence as part of the library protocol.
				return b.kind == opFence || b.kind == opBarrier || b.kind == opTxEnd
			},
			matchEnd: true,
		})
		if exitReached {
			out = append(out, f.finding(r, o,
				fmt.Sprintf("writeback of %s is never completed by a fence on some path through %s",
					f.fp(o.addr), f.name)))
		}
	})
	return out
}

func runDoubleFlush(f *fnInfo) []Finding {
	r := ruleByName("doubleflush")
	var out []Finding
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opFlush && o.kind != opBarrier {
			return
		}
		addrFP, sizeFP := f.fp(o.addr), f.fp(o.size)
		ids := identsOf(o.addr)
		hit, _ := searchForward(f.g, n, i+1, pathQuery{
			matchOp: func(b *op) bool {
				return (b.kind == opFlush || b.kind == opBarrier) &&
					f.fp(b.addr) == addrFP && f.fp(b.size) == sizeFP &&
					b.fixed == o.fixed
			},
			blockOp: func(b *op) bool {
				// A store into the range legitimizes the next writeback.
				return (b.kind == opStore || b.kind == opStoreNT) && f.covers(o, b)
			},
			blockNode: func(nd *node) bool {
				for id := range nd.assigned {
					if ids[id] {
						return true // fingerprint variable reassigned
					}
				}
				return false
			},
		})
		if hit != nil {
			out = append(out, f.finding(r, hit,
				fmt.Sprintf("%s is written back again with no intervening store in %s",
					f.fp(hit.addr), f.name)))
		}
	})
	return out
}
