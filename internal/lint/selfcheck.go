package lint

// Self-check snippets: one canonical known-bad program fragment per rule,
// used by `bughunt -lint` to print the static verdict for a catalog
// bug's class next to the dynamic one, and by tests as a liveness floor
// for every rule. Since the analyzer went interprocedural, each snippet
// splits its bug across a call boundary: the probe now exercises the call
// graph, summary substitution and call-site expansion, not just the
// single-function CFG.
var selfCheckSrc = map[string]string{
	"missedflush": `package p

func setVal(dev *Device, addr uint64) {
	dev.Store64(addr, 1) // helper stores; persisting is the caller's job
}

func f(dev *Device, sync bool) {
	setVal(dev, 0x40)
	if sync {
		dev.CLWB(0x40, 8) // … which the caller does on one path only
	}
	dev.SFence()
}
`,
	"missedfence": `package p

func flushVal(dev *Device, addr uint64) {
	dev.CLWB(addr, 8) // helper writes back; closing the epoch is the caller's job
}

func f(dev *Device, sync bool) {
	dev.Store64(0x40, 1)
	flushVal(dev, 0x40)
	if sync {
		dev.SFence() // … which the caller does on one path only
	}
}
`,
	"doubleflush": `package p

func f(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.CLWB(0x40, 8) // same line written back twice
	dev.SFence()
}
`,
	"redundantflush": `package p

func persistHdr(dev *Device) {
	dev.CLWB(0x40, 8) // the helper owns the header writeback…
	dev.SFence()
}

func f(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8) // …so the caller's flush of the same range is wasted
	dev.SFence()
	persistHdr(dev)
}
`,
	"txnolog": `package p

func setVal(th *Thread, addr uint64) {
	th.Write(addr, 8)
}

func f(th *Thread) {
	th.TxBegin()
	th.TxAdd(0x00, 8)
	th.Write(0x00, 8)
	setVal(th, 0x40) // helper modifies a range with no undo-log backup
	th.TxEnd()
}
`,
	"checkermisuse": `package p

func begin(th *Thread) {
	th.TxCheckerStart()
}

func f(th *Thread) {
	begin(th) // region opened through the helper…
	th.TxAdd(0x40, 8)
	th.Write(0x40, 8)
	// …and no path ever closes it
}
`,
	"crossflush": `package p

const hdrOff = 0x40

func setHeader(dev *Device) {
	dev.Store64(hdrOff, 1) // no caller on any path writes this back
}

func update(dev *Device) {
	setHeader(dev)
	dev.Store64(0x80, 2)
	dev.CLWB(0x80, 8)
	dev.SFence()
}
`,
	"recoveryread": `package p

const hdrOff = 0x40

func writeHdr(dev *Device) {
	dev.Store64(hdrOff, 1) // persisted on no interprocedural path…
}

func Update(dev *Device) {
	writeHdr(dev)
	dev.SFence()
}

func OpenStore(dev *Device) uint64 {
	return dev.Load64(hdrOff) // …yet recovery believes it survived the crash
}
`,
}

// SelfCheck lints the rule's canonical known-bad snippet and reports
// whether the rule fires on it — the static analyzer's liveness probe
// for one bug class.
func SelfCheck(rule string) bool {
	src, ok := selfCheckSrc[rule]
	if !ok {
		return false
	}
	findings, err := LintSource("selfcheck.go", src)
	if err != nil {
		return false
	}
	for _, f := range findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}
