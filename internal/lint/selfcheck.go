package lint

// Self-check snippets: one canonical known-bad program fragment per rule,
// used by `bughunt -lint` to print the static verdict for a catalog
// bug's class next to the dynamic one, and by tests as a liveness floor
// for every rule. Each snippet is the smallest program that exhibits the
// rule's bug class.
var selfCheckSrc = map[string]string{
	"missedflush": `package p

func f(dev *Device) {
	dev.Store64(0x40, 1) // modified …
	dev.SFence()         // … fenced, but never written back
}
`,
	"missedfence": `package p

func f(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8) // written back, but the epoch is never closed
}
`,
	"doubleflush": `package p

func f(dev *Device) {
	dev.Store64(0x40, 1)
	dev.CLWB(0x40, 8)
	dev.CLWB(0x40, 8) // same line written back twice
	dev.SFence()
}
`,
	"txnolog": `package p

func f(th *Thread) {
	th.TxBegin()
	th.TxAdd(0x00, 8)
	th.Write(0x00, 8)
	th.Write(0x40, 8) // modified without an undo-log backup
	th.TxEnd()
}
`,
	"checkermisuse": `package p

func f(th *Thread) {
	th.Write(0x40, 8)
	th.Flush(0x40, 8)
	th.Fence()
	th.IsOrderedBefore(0x40, 8, 0x40, 8) // a range ordered before itself
	th.SendTrace()
}
`,
}

// SelfCheck lints the rule's canonical known-bad snippet and reports
// whether the rule fires on it — the static analyzer's liveness probe
// for one bug class.
func SelfCheck(rule string) bool {
	src, ok := selfCheckSrc[rule]
	if !ok {
		return false
	}
	findings, err := LintSource("selfcheck.go", src)
	if err != nil {
		return false
	}
	for _, f := range findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}
