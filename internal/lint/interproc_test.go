package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInterprocBadGolden locks the analyzer's output on a two-file
// package whose five legacy bug classes are each split across a call
// boundary (and across files). A single-function analysis sees nothing
// here.
func TestInterprocBadGolden(t *testing.T) {
	findings, err := LintDir(filepath.Join("testdata", "interproc", "bad"), false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"missedflush":   false,
		"missedfence":   false,
		"doubleflush":   false,
		"txnolog":       false,
		"checkermisuse": false,
	}
	for _, f := range findings {
		if _, ok := want[f.Rule]; !ok {
			t.Errorf("unexpected rule %s: %s", f.Rule, f)
			continue
		}
		want[f.Rule] = true
	}
	for rule, hit := range want {
		if !hit {
			t.Errorf("cross-function variant of %s not caught", rule)
		}
	}
	got := Render(findings)
	goldenPath := filepath.Join("testdata", "interproc", "bad.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantGolden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run go test -update to create it)", err)
	}
	if got != string(wantGolden) {
		t.Errorf("golden mismatch\n--- got ---\n%s--- want ---\n%s", got, wantGolden)
	}
}

// TestInterprocClean asserts the discharged versions of the same five
// protocols produce zero findings — the interprocedural analysis must
// credit the caller-side (and callee-side) halves of each protocol.
func TestInterprocClean(t *testing.T) {
	findings, err := LintDir(filepath.Join("testdata", "interproc", "clean"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("clean interproc package produced findings:\n%s", Render(findings))
	}
}

// TestFixpointConvergence: the summary fixpoint must terminate on
// recursive and mutually-recursive call graphs, and obligations must
// still propagate out of the cycle.
func TestFixpointConvergence(t *testing.T) {
	t.Run("self-recursive", func(t *testing.T) {
		src := `package p

func fill(dev *Device, addr, n uint64) {
	if n == 0 {
		return
	}
	dev.Store64(addr, n)
	fill(dev, addr, n-1)
}

func seed(dev *Device) {
	fill(dev, 0x40, 4) // nothing ever written back
}
`
		findings, err := LintSource("rec.go", src)
		if err != nil {
			t.Fatal(err)
		}
		if !hasRule(findings, "crossflush") {
			t.Errorf("recursive store never persisted, want crossflush:\n%s", Render(findings))
		}
	})
	t.Run("mutually-recursive", func(t *testing.T) {
		src := `package p

func even(dev *Device, n uint64) {
	if n == 0 {
		return
	}
	dev.Store64(0x40, n)
	odd(dev, n-1)
}

func odd(dev *Device, n uint64) {
	if n == 0 {
		return
	}
	even(dev, n-1)
}

func run(dev *Device) {
	even(dev, 4)
}
`
		findings, err := LintSource("mutrec.go", src)
		if err != nil {
			t.Fatal(err)
		}
		if !hasRule(findings, "crossflush") {
			t.Errorf("store in a mutual-recursion cycle never persisted, want crossflush:\n%s", Render(findings))
		}
	})
	t.Run("cycle-discharged", func(t *testing.T) {
		src := `package p

func fill(dev *Device, addr, n uint64) {
	if n == 0 {
		return
	}
	dev.Store64(addr, n)
	fill(dev, addr, n-1)
}

func seed(dev *Device) {
	fill(dev, 0x40, 4)
	dev.CLWB(0x40, 8)
	dev.SFence()
}
`
		findings, err := LintSource("recok.go", src)
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Errorf("discharged recursive store still reported:\n%s", Render(findings))
		}
	})
}

func hasRule(findings []Finding, rule string) bool {
	for _, f := range findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

// TestDeterministicOutput: linting the same package repeatedly must be
// byte-identical — findings are sorted by position then rule, with no
// map-iteration order leaking through.
func TestDeterministicOutput(t *testing.T) {
	dir := filepath.Join("testdata", "interproc", "bad")
	first, err := LintDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	base := Render(first)
	for i := 0; i < 10; i++ {
		findings, err := LintDir(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		if got := Render(findings); got != base {
			t.Fatalf("lint run %d differs from run 0\n--- run %d ---\n%s--- run 0 ---\n%s", i+1, i+1, got, base)
		}
	}
}

// TestStrictIgnores: a directive that suppresses nothing is itself a
// finding under Options.StrictIgnores, and silent otherwise.
func TestStrictIgnores(t *testing.T) {
	stale := `package p

func f(dev *Device) {
	dev.Store64(0x40, 1) //pmlint:ignore missedflush long since fixed
	dev.CLWB(0x40, 8)
	dev.SFence()
}
`
	used := strings.Replace(stale, "\tdev.CLWB(0x40, 8)\n", "", 1)

	t.Run("stale directive flagged", func(t *testing.T) {
		findings, err := LintSourceOpt("stale.go", stale, Options{StrictIgnores: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 1 || findings[0].Rule != StaleIgnoreRule {
			t.Fatalf("want exactly one %s finding, got:\n%s", StaleIgnoreRule, Render(findings))
		}
		if !strings.Contains(findings[0].Message, "missedflush") {
			t.Errorf("staleignore message should name the suppressed rule: %s", findings[0].Message)
		}
	})
	t.Run("used directive silent", func(t *testing.T) {
		findings, err := LintSourceOpt("used.go", used, Options{StrictIgnores: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Errorf("directive is load-bearing, want no findings:\n%s", Render(findings))
		}
	})
	t.Run("lenient by default", func(t *testing.T) {
		findings, err := LintSource("stale.go", stale)
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Errorf("without StrictIgnores a stale directive is not a finding:\n%s", Render(findings))
		}
	})
}

// TestSummaryCaps: a function with more escaping stores than the summary
// cap must not panic or loop; findings beyond the cap may be dropped but
// analysis still terminates.
func TestSummaryCaps(t *testing.T) {
	var b strings.Builder
	b.WriteString("package p\n\nfunc burst(dev *Device) {\n")
	for i := 0; i < 3*maxSummaryList; i++ {
		fmt.Fprintf(&b, "\tdev.Store64(0x%x, 1)\n", 0x1000+16*i)
	}
	b.WriteString("}\n\nfunc run(dev *Device) { burst(dev) }\n")
	if _, err := LintSource("burst.go", b.String()); err != nil {
		t.Fatal(err)
	}
}
