package lint

import "fmt"

// Checker-misuse rule: the annotations themselves can be wrong in ways
// the dynamic engine either cannot see (a tautological checker passes
// trivially) or only reports after the fact (unbalanced begin/end pairs
// surface as unbalanced-tx diagnostics). Catching them statically keeps
// the test harness itself honest.

func init() {
	allRules = append(allRules, ruleDef{
		RuleInfo: RuleInfo{
			Name: "checkermisuse",
			Doc: "a PMTest annotation is used incoherently: isOrderedBefore comparing a range " +
				"with itself or asserting contradictory orders, unbalanced TxBegin/TxEnd or " +
				"TxCheckerStart/TxCheckerEnd pairs, or checkers recorded on a path that can " +
				"exit without SendTrace ever shipping them",
			Severity: "FAIL",
			Dynamic:  "unbalanced-tx",
			BugDB:    "completion",
		},
		hint: "make begin/end pairs match on every path, give isOrderedBefore two distinct " +
			"ranges in a consistent order, and ship recorded checkers with SendTrace",
		run: runCheckerMisuse,
	})
}

func runCheckerMisuse(f *fnInfo) []Finding {
	r := ruleByName("checkermisuse")
	var out []Finding

	// Tautological and contradictory ordering assertions.
	type iobAt struct {
		n *node
		i int
		o *op
	}
	var iobs []iobAt
	hasSendTrace := false
	f.eachOp(func(n *node, i int, o *op) {
		switch o.kind {
		case opIsOrderedBefore:
			if !o.synthetic && o.addr != nil && o.addr2 != nil {
				iobs = append(iobs, iobAt{n, i, o})
				if f.fp(o.addr) == f.fp(o.addr2) {
					out = append(out, f.finding(r, o,
						fmt.Sprintf("isOrderedBefore in %s compares %s with itself — the assertion is vacuous",
							f.name, f.fp(o.addr))))
				}
			}
		case opSendTrace:
			hasSendTrace = true
		}
	})
	for _, a := range iobs {
		for _, b := range iobs {
			if a.o == b.o ||
				f.fp(a.o.addr) != f.fp(b.o.addr2) || f.fp(a.o.addr2) != f.fp(b.o.addr) ||
				f.fp(a.o.addr) == f.fp(a.o.addr2) {
				continue
			}
			hit, _ := searchForward(f.g, a.n, a.i+1, pathQuery{
				matchOp: func(o *op) bool { return o == b.o },
			})
			if hit != nil {
				out = append(out, f.finding(r, b.o,
					fmt.Sprintf("isOrderedBefore in %s contradicts an earlier assertion: %s before %s, but %s was asserted before %s",
						f.name, f.fp(b.o.addr), f.fp(b.o.addr2), f.fp(a.o.addr), f.fp(a.o.addr2))))
			}
		}
	}

	// Unbalanced begin/end pairs, in both directions. A pure emitter — a
	// function whose entire PM interaction is the one begin (or end) it
	// forwards for its callers — transfers the half-region through its
	// summary (mustOpen/mustClose) and is checked at expanded call sites
	// instead; flagging the helper itself would indict every Begin()
	// wrapper in the package.
	total := 0
	var only *op
	f.eachOp(func(_ *node, _ int, o *op) {
		total++
		only = o
	})
	pureEmitter := total == 1 && only != nil &&
		(only.kind == opTxBegin || only.kind == opTxEnd ||
			only.kind == opTxCheckerStart || only.kind == opTxCheckerEnd)
	if pureEmitter {
		return out
	}
	pairs := []struct {
		open, close opKind
		openName    string
		closeName   string
	}{
		{opTxBegin, opTxEnd, "TxBegin", "TxEnd"},
		{opTxCheckerStart, opTxCheckerEnd, "TxCheckerStart", "TxCheckerEnd"},
	}
	f.eachOp(func(n *node, i int, o *op) {
		for _, p := range pairs {
			switch o.kind {
			case p.open:
				_, exitReached := searchForward(f.g, n, i+1, pathQuery{
					blockOp:  func(b *op) bool { return b.kind == p.close },
					matchEnd: true,
				})
				if exitReached {
					who := p.openName
					if o.synthetic {
						who = p.openName + " by " + o.fromFn
					}
					fd := f.finding(r, o,
						fmt.Sprintf("%s in %s is never closed by %s on some path to exit",
							who, f.name, p.closeName))
					if o.origin != nil {
						fd = originate(fd, o.origin.fn, o.origin.o)
					}
					out = append(out, fd)
				}
			case p.close:
				_, entryReached := searchBackward(f.g, n, i, pathQuery{
					blockOp:  func(b *op) bool { return b.kind == p.open },
					matchEnd: true,
				})
				if entryReached {
					who := p.closeName
					if o.synthetic {
						who = p.closeName + " by " + o.fromFn
					}
					fd := f.finding(r, o,
						fmt.Sprintf("%s in %s has no preceding %s on some path from entry",
							who, f.name, p.openName))
					if o.origin != nil {
						fd = originate(fd, o.origin.fn, o.origin.o)
					}
					out = append(out, fd)
				}
			}
		}
	})

	// Checkers that can escape the function without being shipped. Only
	// meaningful in functions that do ship sections themselves; helpers
	// that record checkers for a caller to ship are legitimate.
	if hasSendTrace {
		f.eachOp(func(n *node, i int, o *op) {
			if o.kind != opIsPersist && o.kind != opIsOrderedBefore {
				return
			}
			_, exitReached := searchForward(f.g, n, i+1, pathQuery{
				blockOp:  func(b *op) bool { return b.kind == opSendTrace },
				matchEnd: true,
			})
			if exitReached {
				out = append(out, f.finding(r, o,
					fmt.Sprintf("checker recorded in %s can reach exit without SendTrace shipping it",
						f.name)))
			}
		})
	}
	return out
}
