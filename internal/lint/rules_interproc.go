package lint

import (
	"fmt"
	"go/ast"
	"sort"
)

// Whole-package rules. These run once per package over the converged
// summary state rather than per function: crossflush asks whether an
// escaping obligation is discharged on *any* interprocedural path, and
// recoveryread cross-references recovery-path reads against stores no
// path persists — the static shadow of WITCHER-style "the recovery code
// believes in an invariant no execution establishes".

func init() {
	allRules = append(allRules,
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "crossflush",
				Doc: "a helper's store (or unfenced writeback) escapes it, and no caller on any " +
					"interprocedural path ever covers it — the update is never durable no matter " +
					"which call chain runs",
				Severity: "FAIL",
				Dynamic:  "not-persisted",
				BugDB:    "writeback",
			},
			hint: "persist the range in the helper itself, or in every caller that can reach " +
				"a return (the summaries track both directions)",
			runPkg: runCrossFlush,
		},
		ruleDef{
			RuleInfo: RuleInfo{
				Name: "recoveryread",
				Doc: "recovery-path code (Open*/Mount*/Recover*/Replay*/Restore*/Reopen* and their " +
					"callees) reads persistent state that no interprocedural path writes back — " +
					"after a crash the read observes whatever the cache evicted, not the store",
				Severity: "FAIL",
				Dynamic:  "not-persisted",
				BugDB:    "writeback",
			},
			hint: "make the store durable (CLWB + SFence) on every path that precedes a crash " +
				"the recovery code must survive",
			runPkg: runRecoveryRead,
		},
	)
}

func runCrossFlush(p *pkgInfo) []Finding {
	r := ruleByName("crossflush")
	var out []Finding
	for _, orig := range sortedOrigins(p) {
		if orig.fn.rootFn || orig.covered || !orig.escapedRoot {
			// Root-function obligations report as missedflush/missedfence
			// right where they are; covered ones are at worst a
			// path-specific miss (missedflush at the guilty call site).
			continue
		}
		f, o := orig.fn, orig.o
		switch o.kind {
		case opStore:
			out = append(out, f.finding(r, o,
				fmt.Sprintf("store to %s in %s is written back on no interprocedural path",
					f.fp(o.addr), f.name)))
		case opFlush, opBarrier:
			out = append(out, f.finding(r, o,
				fmt.Sprintf("writeback of %s in %s is completed by a fence on no interprocedural path",
					f.fp(o.addr), f.name)))
		}
	}
	return out
}

// deadStore is a store no interprocedural path persists.
type deadStore struct {
	fn *fnInfo
	o  *op
}

func runRecoveryRead(p *pkgInfo) []Finding {
	r := ruleByName("recoveryread")

	// Dead stores: crossflush's set (helper stores no caller covers) plus
	// root-local escaping stores missedflush already reports — recovery
	// code reading either is a second, independent bug.
	var dead []deadStore
	for _, orig := range sortedOrigins(p) {
		if orig.fn.rootFn || orig.covered || !orig.escapedRoot || orig.o.kind != opStore {
			continue
		}
		dead = append(dead, deadStore{orig.fn, orig.o})
	}
	for _, f := range p.fns {
		if !f.rootFn {
			continue
		}
		f.eachOp(func(n *node, i int, o *op) {
			if o.kind != opStore || o.synthetic || f.mayBeInTx(n, i) {
				return
			}
			if f.substitutable(o.addr) && f.isParamRooted(o.addr) {
				return
			}
			if !escapesWriteback(f, n, i, o) {
				return
			}
			// Weak coverage credit: a later writeback of the same object
			// (same root expression, any offset) usually covers a store
			// whose offset arithmetic defeats the interval prover — e.g. a
			// loop-indexed slot followed by a whole-object PersistBarrier.
			// recoveryread trades that recall for precision; the strict
			// escape still reports through missedflush.
			if base := f.root(o.addr); base != "" {
				hit, _ := searchForward(f.g, n, i+1, pathQuery{
					matchOp: func(b *op) bool {
						return (b.kind == opFlush || b.kind == opBarrier) &&
							b.addr != nil && f.root(b.addr) == base
					},
				})
				if hit != nil {
					return
				}
			}
			dead = append(dead, deadStore{f, o})
		})
	}
	if len(dead) == 0 {
		return nil
	}

	recov := p.recoverySet()
	var out []Finding
	for _, f := range p.fns {
		if !recov[f] {
			continue
		}
		f.eachOp(func(_ *node, _ int, o *op) {
			if o.kind != opLoad || o.synthetic {
				return
			}
			for _, d := range dead {
				if !rangesMayAlias(f, o, d.fn, d.o) {
					continue
				}
				out = append(out, originate(f.finding(r, o,
					fmt.Sprintf("recovery path %s reads %s, but the store to %s in %s is persisted on no path",
						f.name, f.fp(o.addr), d.fn.fp(d.o.addr), d.fn.name)), d.fn, d.o))
				break
			}
		})
	}
	return out
}

// sortedOrigins returns the package's origin records in deterministic
// source order.
func sortedOrigins(p *pkgInfo) []*origin {
	out := make([]*origin, len(p.originList))
	copy(out, p.originList)
	sort.SliceStable(out, func(i, j int) bool {
		a := p.fset.Position(out[i].o.call.Pos())
		b := p.fset.Position(out[j].o.call.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out
}

// rangesMayAlias decides whether a recovery read and a dead store can
// touch the same persistent object: exact interval overlap when both
// addresses fold to constants, otherwise equality of root fingerprints
// with parameter/receiver bases normalized — `c.head` stored through one
// receiver and `t.head` loaded through another are the same field of the
// same layout.
func rangesMayAlias(lf *fnInfo, load *op, sf *fnInfo, store *op) bool {
	la, laOK := evalConst(load.addr, lf.env, -1)
	sa, saOK := evalConst(store.addr, sf.env, -1)
	if laOK && saOK {
		ls, lsOK := sizeVal(load, lf.env)
		ss, ssOK := sizeVal(store, sf.env)
		if !lsOK {
			ls = 1
		}
		if !ssOK {
			ss = 1
		}
		return la < sa+ss && la+ls > sa
	}
	lr, sr := normRoot(lf, load.addr), normRoot(sf, store.addr)
	return lr != "" && lr == sr
}

// normRoot renders the root of a range expression with parameter and
// receiver base identifiers replaced by "•", so field paths compare
// across functions regardless of the local name of the object.
func normRoot(f *fnInfo, e ast.Expr) string {
	if e == nil {
		return ""
	}
	root := rootExpr(e)
	var path []string
	for {
		switch v := root.(type) {
		case *ast.Ident:
			name := v.Name
			if f.params[name] {
				name = "•"
			}
			out := name
			for i := len(path) - 1; i >= 0; i-- {
				out += "." + path[i]
			}
			return out
		case *ast.SelectorExpr:
			path = append(path, v.Sel.Name)
			root = v.X
		case *ast.ParenExpr:
			root = v.X
		case *ast.StarExpr:
			root = v.X
		case *ast.UnaryExpr:
			root = v.X
		default:
			return exprString(f.fset, root)
		}
	}
}
