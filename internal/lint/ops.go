package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strconv"
	"strings"
)

// opKind classifies the PM-relevant calls the linter recognizes. The set
// mirrors the trace.Kind vocabulary of the dynamic engine: stores,
// writebacks, fences, transaction events and checkers.
type opKind int

const (
	opNone opKind = iota
	opStore
	opStoreNT
	opFlush
	opFence   // sfence/dfence: completes writebacks, closes the epoch
	opOFence  // ordering-only fence (HOPS ofence); does NOT drain
	opBarrier // persist_barrier: writeback + fence in one call
	opTxBegin
	opTxEnd
	opTxAdd
	opTxCheckerStart
	opTxCheckerEnd
	opIsPersist
	opIsOrderedBefore
	opSendTrace
	opLoad // persistent read (Load/Load64/...); recoveryread's subject
)

// op is one recognized PM operation inside a function body. Synthetic ops
// are materialized at call sites from callee persist-effect summaries
// (see summary.go): they behave like real ops in every path query, carry
// the callee's obligations (needFlush/needFence/needLog), and point back
// at the op they originate from so package-wide rules can tell whether an
// obligation was discharged on any interprocedural path.
type op struct {
	kind   opKind
	call   *ast.CallExpr
	name   string   // method name as written at the call site
	addr   ast.Expr // nil when the op carries no range
	size   ast.Expr // nil when implicit or absent
	addr2  ast.Expr // isOrderedBefore second range
	size2  ast.Expr
	fixed  int64 // implicit size (Store64 → 8); 0 = none
	dfence bool  // durability fence that drains every pending write

	// Interprocedural fields (zero for ops parsed directly from source).
	synthetic bool    // materialized from a callee summary at a call site
	fromFn    string  // callee the effect came from (synthetic only)
	needFlush bool    // store escaped the callee without a covering writeback
	needFence bool    // flush escaped the callee without a fence
	needLog   bool    // store reached from callee entry with no covering TxAdd
	opaqueFP  string  // display fingerprint when the range has no caller-scope expression
	origin    *origin // the real op this obligation chains back to
}

// classifyCall maps a method call to a PM operation by name and arity.
// The linter is purely syntactic (no type information), so the vocabulary
// is chosen to avoid common Go idioms: `Write` with two arguments is a PM
// store (io.Writer's Write takes one), `Add` with two arguments is a
// TX_ADD (counters and WaitGroups take one), and so on.
func classifyCall(c *ast.CallExpr) (op, bool) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return op{}, false
	}
	name := sel.Sel.Name
	n := len(c.Args)
	o := op{call: c, name: name}
	arg := func(i int) ast.Expr { return c.Args[i] }
	switch {
	case name == "Write" && n == 2:
		o.kind, o.addr, o.size = opStore, arg(0), arg(1)
	case name == "WriteNT" && n == 2:
		o.kind, o.addr, o.size = opStoreNT, arg(0), arg(1)
	case name == "Store" && n == 2:
		o.kind, o.addr = opStore, arg(0) // size = len(data), unknown
	case name == "StoreSkip" && n == 3:
		o.kind, o.addr = opStore, arg(0)
	case name == "StoreNT" && n == 2:
		o.kind, o.addr = opStoreNT, arg(0)
	case name == "Store64" && n == 2:
		o.kind, o.addr, o.fixed = opStore, arg(0), 8
	case name == "Store32" && n == 2:
		o.kind, o.addr, o.fixed = opStore, arg(0), 4
	case name == "Store8" && n == 2:
		o.kind, o.addr, o.fixed = opStore, arg(0), 1
	case (name == "Flush" || name == "CLWB") && n == 2:
		o.kind, o.addr, o.size = opFlush, arg(0), arg(1)
	case name == "CLWBSkip" && n == 3:
		o.kind, o.addr, o.size = opFlush, arg(0), arg(1)
	case (name == "Fence" || name == "SFence") && n == 0:
		o.kind = opFence
	case name == "SFenceSkip" && n == 1:
		o.kind = opFence
	case name == "DFence" && n == 0:
		o.kind, o.dfence = opFence, true
	case name == "OFence" && n == 0:
		o.kind = opOFence
	case name == "PersistBarrier" && n == 2:
		o.kind, o.addr, o.size = opBarrier, arg(0), arg(1)
	case name == "TxBegin" && n == 0:
		o.kind = opTxBegin
	case name == "TxEnd" && n == 0:
		o.kind = opTxEnd
	case (name == "TxAdd" || name == "Add") && n == 2:
		o.kind, o.addr, o.size = opTxAdd, arg(0), arg(1)
	case name == "TxCheckerStart" && n == 0:
		o.kind = opTxCheckerStart
	case name == "TxCheckerEnd" && n == 0:
		o.kind = opTxCheckerEnd
	case name == "IsPersist" && n == 2:
		o.kind, o.addr, o.size = opIsPersist, arg(0), arg(1)
	case name == "IsPersistVar" && n == 1:
		o.kind = opIsPersist // named variable; range unknown statically
	case name == "IsOrderedBefore" && n == 4:
		o.kind, o.addr, o.size, o.addr2, o.size2 = opIsOrderedBefore, arg(0), arg(1), arg(2), arg(3)
	case name == "SendTrace" && n == 0:
		o.kind = opSendTrace
	case name == "Load" && n == 2:
		o.kind, o.addr = opLoad, arg(0) // size = len(buf), unknown
	case name == "LoadBytes" && n == 2:
		o.kind, o.addr, o.size = opLoad, arg(0), arg(1)
	case name == "Load64" && n == 1:
		o.kind, o.addr, o.fixed = opLoad, arg(0), 8
	case name == "Load32" && n == 1:
		o.kind, o.addr, o.fixed = opLoad, arg(0), 4
	case name == "Load8" && n == 1:
		o.kind, o.addr, o.fixed = opLoad, arg(0), 1
	case name == "RecordOp" && n >= 1:
		return classifyRecordOp(c)
	default:
		return op{}, false
	}
	return o, true
}

// classifyRecordOp recognizes dev.RecordOp(trace.Op{Kind: trace.KindX, ...}, skip),
// the idiom instrumented libraries use to emit checker and transaction
// events without a tracker method per kind.
func classifyRecordOp(c *ast.CallExpr) (op, bool) {
	lit, ok := c.Args[0].(*ast.CompositeLit)
	if !ok {
		return op{}, false
	}
	o := op{call: c, name: "RecordOp"}
	var kind string
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Kind":
			switch v := kv.Value.(type) {
			case *ast.SelectorExpr:
				kind = v.Sel.Name
			case *ast.Ident:
				kind = v.Name
			}
		case "Addr":
			o.addr = kv.Value
		case "Size":
			o.size = kv.Value
		case "Addr2":
			o.addr2 = kv.Value
		case "Size2":
			o.size2 = kv.Value
		}
	}
	switch strings.TrimPrefix(kind, "Kind") {
	case "Write":
		o.kind = opStore
	case "WriteNT":
		o.kind = opStoreNT
	case "Flush":
		o.kind = opFlush
	case "Fence":
		o.kind = opFence
	case "OFence":
		o.kind = opOFence
	case "DFence":
		o.kind, o.dfence = opFence, true
	case "TxBegin":
		o.kind = opTxBegin
	case "TxEnd":
		o.kind = opTxEnd
	case "TxAdd":
		o.kind = opTxAdd
	case "TxCheckerStart":
		o.kind = opTxCheckerStart
	case "TxCheckerEnd":
		o.kind = opTxCheckerEnd
	case "IsPersist":
		o.kind = opIsPersist
	case "IsOrderedBefore":
		o.kind = opIsOrderedBefore
	default:
		return op{}, false
	}
	return o, true
}

// --- Expression fingerprints ------------------------------------------------

// exprString renders an expression to its canonical source form, the
// fingerprint used to decide whether two ops name "the same" range.
func exprString(fset *token.FileSet, e ast.Expr) string {
	if e == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// rootExpr strips parentheses and +/- offset arithmetic down to the base
// expression: root(slot+slotKey) = slot, root(n.addr+8) = n.addr. Two
// ranges with the same root are assumed to address the same object.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.BinaryExpr:
			if v.Op == token.ADD || v.Op == token.SUB {
				e = v.X
			} else {
				return e
			}
		default:
			return e
		}
	}
}

// identsOf collects every identifier appearing in e (including selector
// bases and field names); an assignment to any of them invalidates a
// fingerprint built from e.
func identsOf(e ast.Expr) map[string]bool {
	ids := map[string]bool{}
	if e == nil {
		return ids
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			ids[id.Name] = true
		}
		return true
	})
	return ids
}

// --- Package constant folding ----------------------------------------------

// constEnv maps package-level integer constant names to their values, so
// range coverage can be decided exactly for literal layouts (offsets like
// slotValid = 0, slotKey = 8).
type constEnv map[string]int64

// buildConstEnv folds the top-level const declarations of a package's
// files. Multiple passes resolve forward references; anything that does
// not fold to an integer is simply absent.
func buildConstEnv(files []*ast.File) constEnv {
	env := constEnv{}
	for pass := 0; pass < 3; pass++ {
		for _, f := range files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				var carried []ast.Expr
				for i, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					exprs := vs.Values
					if len(exprs) == 0 {
						exprs = carried // implicit repetition with new iota
					} else {
						carried = exprs
					}
					for j, name := range vs.Names {
						if name.Name == "_" || j >= len(exprs) {
							continue
						}
						if v, ok := evalConst(exprs[j], env, int64(i)); ok {
							env[name.Name] = v
						}
					}
				}
			}
		}
	}
	return env
}

// evalConst folds an expression to an int64 using env; iota is the
// ConstSpec index (pass -1 outside const blocks).
func evalConst(e ast.Expr, env constEnv, iota int64) (int64, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.INT {
			return 0, false
		}
		n, err := strconv.ParseInt(v.Value, 0, 64)
		if err != nil {
			// Values above MaxInt64 (e.g. 64-bit magic numbers) fold via
			// uint64 and reinterpret; coverage math only needs equality.
			u, uerr := strconv.ParseUint(v.Value, 0, 64)
			if uerr != nil {
				return 0, false
			}
			return int64(u), true
		}
		return n, true
	case *ast.Ident:
		if v.Name == "iota" {
			if iota >= 0 {
				return iota, true
			}
			return 0, false
		}
		n, ok := env[v.Name]
		return n, ok
	case *ast.ParenExpr:
		return evalConst(v.X, env, iota)
	case *ast.UnaryExpr:
		n, ok := evalConst(v.X, env, iota)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case token.SUB:
			return -n, true
		case token.ADD:
			return n, true
		case token.XOR:
			return ^n, true
		}
		return 0, false
	case *ast.BinaryExpr:
		a, ok := evalConst(v.X, env, iota)
		if !ok {
			return 0, false
		}
		b, ok := evalConst(v.Y, env, iota)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		case token.AND_NOT:
			return a &^ b, true
		case token.SHL:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a << uint(b), true
		case token.SHR:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a >> uint(b), true
		}
		return 0, false
	case *ast.CallExpr:
		// Numeric conversions: uint64(x), int(x), ...
		id, ok := v.Fun.(*ast.Ident)
		if !ok || len(v.Args) != 1 {
			return 0, false
		}
		switch id.Name {
		case "int", "int8", "int16", "int32", "int64",
			"uint", "uint8", "uint16", "uint32", "uint64", "uintptr", "byte":
			return evalConst(v.Args[0], env, iota)
		}
		return 0, false
	}
	return 0, false
}

// sizeVal resolves an op's byte size, from the implicit width (Store64)
// or by folding its size expression.
func sizeVal(o *op, env constEnv) (int64, bool) {
	if o.fixed > 0 {
		return o.fixed, true
	}
	if o.size == nil {
		return 0, false
	}
	return evalConst(o.size, env, -1)
}

// covers reports whether a writeback-like op f (flush, persist_barrier or
// TX_ADD) covers the range touched by store-like op s. Exact interval
// math is used when both addresses fold to constants; otherwise the two
// ranges are assumed to alias iff their root expressions coincide. The
// heuristic errs toward "covered", keeping false positives low.
func covers(fset *token.FileSet, env constEnv, f, s *op) bool {
	fa, faOK := evalConst(f.addr, env, -1)
	fs, fsOK := sizeVal(f, env)
	sa, saOK := evalConst(s.addr, env, -1)
	if faOK && fsOK && saOK {
		if ss, ok := sizeVal(s, env); ok {
			return sa < fa+fs && sa+ss > fa // any overlap counts
		}
		return sa >= fa && sa < fa+fs
	}
	if s.addr != nil && f.addr != nil &&
		exprString(fset, rootExpr(f.addr)) == exprString(fset, rootExpr(s.addr)) {
		return true
	}
	if faOK && fsOK && s.addr != nil {
		if rv, ok := evalConst(rootExpr(s.addr), env, -1); ok {
			return rv >= fa && rv < fa+fs
		}
	}
	return false
}
