package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Persist-effect summaries. Each function is summarized by the effects a
// caller can observe: obligations that escape it (stores no path writes
// back, flushes no path fences, checkers no path ships, net-open or
// net-closed transaction regions) and discharges it guarantees (ranges
// every path writes back or TX-logs, fences every path executes). Call
// sites are expanded into synthetic ops carrying those effects, and the
// whole package iterates to a fixed point so effects propagate through
// arbitrary call chains, including recursive ones.
//
// Ranges cross function boundaries by substitution: a callee-scope
// expression is rewritten into caller scope by replacing parameter and
// receiver names with the call's argument expressions. Ranges rooted in
// callee locals cannot be named by any caller, so their obligations are
// reported in the callee itself and never transfer.

const (
	maxSummaryList  = 32 // per-list cap; keeps cyclic growth bounded
	maxFixpointPass = 20
)

// absOp is one summarized effect in the owning function's scope.
type absOp struct {
	kind      opKind
	addr      ast.Expr
	size      ast.Expr
	fixed     int64
	dfence    bool
	needFlush bool
	needFence bool
	needLog   bool
	opaqueFP  string
	origin    *origin
}

type summary struct {
	escStores   []absOp // stores escaping unflushed and/or unlogged (substitutable ranges only)
	escFlushes  []absOp // flushes executed by the callee; needFence set when unfenced there
	escCheckers []absOp // checkers recorded but not shipped by SendTrace
	mustTxAdds  []absOp // ranges every path TX-logs
	mustFence   bool    // every path executes a fence (or barrier)
	mustDFence  bool    // every path executes a durability fence
	mustSend    bool    // every path ships recorded checkers
	mustOpen    [2]bool // net region open: [0] TxBegin, [1] TxCheckerStart
	mustClose   [2]bool // net region close: [0] TxEnd, [1] TxCheckerEnd
}

// fingerprint serializes a summary for change detection in the fixpoint.
func (s *summary) fingerprint(f *fnInfo) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	part := func(tag string, list []absOp) {
		keys := make([]string, len(list))
		for i, a := range list {
			keys[i] = fmt.Sprintf("%d|%s|%s|%d|%t%t%t|%s",
				a.kind, exprString(f.fset, a.addr), exprString(f.fset, a.size),
				a.fixed, a.needFlush, a.needFence, a.needLog, a.opaqueFP)
		}
		sort.Strings(keys)
		b.WriteString(tag)
		b.WriteString(strings.Join(keys, ";"))
		b.WriteByte('\n')
	}
	part("es:", s.escStores)
	part("ef:", s.escFlushes)
	part("ec:", s.escCheckers)
	part("ta:", s.mustTxAdds)
	fmt.Fprintf(&b, "b:%t%t%t%v%v", s.mustFence, s.mustDFence, s.mustSend, s.mustOpen, s.mustClose)
	return b.String()
}

// --- Expression substitution ------------------------------------------------

// substExpr rewrites e, an expression in f's (callee) scope, into caller
// scope using sub (parameter/receiver name → caller argument). With a nil
// sub it is a dry run that answers "is this range substitutable at all":
// every identifier must be a parameter, a package-level name, or a
// builtin constant. Unsupported syntax and callee locals fail.
func (f *fnInfo) substExpr(e ast.Expr, sub map[string]ast.Expr) (ast.Expr, bool) {
	switch v := e.(type) {
	case nil:
		return nil, true
	case *ast.Ident:
		if f.params[v.Name] {
			if sub == nil {
				return v, true
			}
			r, ok := sub[v.Name]
			return r, ok
		}
		if f.pkg != nil && f.pkg.isPkgName(v.Name) {
			return v, true
		}
		return nil, false
	case *ast.BasicLit:
		return v, true
	case *ast.ParenExpr:
		x, ok := f.substExpr(v.X, sub)
		if !ok {
			return nil, false
		}
		return &ast.ParenExpr{Lparen: v.Lparen, X: x, Rparen: v.Rparen}, true
	case *ast.SelectorExpr:
		x, ok := f.substExpr(v.X, sub)
		if !ok {
			return nil, false
		}
		return &ast.SelectorExpr{X: x, Sel: v.Sel}, true
	case *ast.StarExpr:
		x, ok := f.substExpr(v.X, sub)
		if !ok {
			return nil, false
		}
		return &ast.StarExpr{Star: v.Star, X: x}, true
	case *ast.UnaryExpr:
		x, ok := f.substExpr(v.X, sub)
		if !ok {
			return nil, false
		}
		return &ast.UnaryExpr{OpPos: v.OpPos, Op: v.Op, X: x}, true
	case *ast.BinaryExpr:
		x, ok := f.substExpr(v.X, sub)
		if !ok {
			return nil, false
		}
		y, ok := f.substExpr(v.Y, sub)
		if !ok {
			return nil, false
		}
		return &ast.BinaryExpr{X: x, OpPos: v.OpPos, Op: v.Op, Y: y}, true
	case *ast.IndexExpr:
		x, ok := f.substExpr(v.X, sub)
		if !ok {
			return nil, false
		}
		i, ok := f.substExpr(v.Index, sub)
		if !ok {
			return nil, false
		}
		return &ast.IndexExpr{X: x, Lbrack: v.Lbrack, Index: i, Rbrack: v.Rbrack}, true
	case *ast.CallExpr:
		// Numeric conversions only; anything with behavior stays opaque.
		id, ok := v.Fun.(*ast.Ident)
		if !ok {
			return nil, false
		}
		switch id.Name {
		case "int", "int8", "int16", "int32", "int64",
			"uint", "uint8", "uint16", "uint32", "uint64", "uintptr", "byte", "len":
		default:
			return nil, false
		}
		args := make([]ast.Expr, len(v.Args))
		for i, a := range v.Args {
			na, ok := f.substExpr(a, sub)
			if !ok {
				return nil, false
			}
			args[i] = na
		}
		return &ast.CallExpr{Fun: id, Lparen: v.Lparen, Args: args, Rparen: v.Rparen}, true
	}
	return nil, false
}

// substitutable is the dry-run form: can this callee-scope range be
// expressed by some caller at all?
func (f *fnInfo) substitutable(e ast.Expr) bool {
	if e == nil {
		return false
	}
	_, ok := f.substExpr(e, nil)
	return ok
}

// isParamRooted reports whether the range's base object is a parameter or
// receiver — a parametric persist contract whose discharge belongs to the
// (possibly out-of-package) caller.
func (f *fnInfo) isParamRooted(e ast.Expr) bool {
	root := rootExpr(e)
	for {
		switch v := root.(type) {
		case *ast.Ident:
			return f.params[v.Name]
		case *ast.SelectorExpr:
			root = v.X
		case *ast.IndexExpr:
			root = v.X
		case *ast.StarExpr:
			root = v.X
		case *ast.ParenExpr:
			root = v.X
		case *ast.UnaryExpr:
			root = v.X
		default:
			return false
		}
	}
}

// --- Summary computation ----------------------------------------------------

// coveringWriteback matches ops that make store o durable when followed
// by a fence: a flush/barrier covering its range, or a durability fence.
func coveringWriteback(f *fnInfo, o *op) func(*op) bool {
	return func(b *op) bool {
		switch b.kind {
		case opFlush, opBarrier:
			return f.covers(b, o)
		case opFence:
			return b.dfence
		}
		return false
	}
}

// computeSummary derives f's summary from its current expanded CFG view.
func computeSummary(f *fnInfo) *summary {
	s := &summary{}
	g := f.g

	// Escaping stores: reach exit with no covering writeback, outside any
	// local transaction region, with a range a caller could name.
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opStore || (o.synthetic && !o.needFlush && !o.needLog) {
			return
		}
		if len(s.escStores) >= maxSummaryList {
			return
		}
		if f.mayBeInTx(n, i) {
			return
		}
		if !f.substitutable(o.addr) {
			return
		}
		_, escapes := searchForward(g, n, i+1, pathQuery{
			blockOp:  coveringWriteback(f, o),
			matchEnd: true,
		})
		_, unlogged := searchBackward(g, n, i, pathQuery{
			blockOp: func(b *op) bool {
				if b.kind == opTxAdd {
					return f.covers(b, o)
				}
				return false
			},
			matchEnd: true,
		})
		needFlush := escapes
		if o.synthetic {
			needFlush = escapes && o.needFlush
			unlogged = unlogged && o.needLog
		}
		if !needFlush && !unlogged {
			return
		}
		size := o.size
		if size != nil && !f.substitutable(size) {
			size = nil
		}
		orig := o.origin
		if !o.synthetic {
			orig = f.pkg.originFor(f, o)
		}
		s.escStores = append(s.escStores, absOp{
			kind: opStore, addr: o.addr, size: size, fixed: o.fixed,
			needFlush: needFlush, needLog: unlogged, origin: orig,
		})
	})

	// Flushes the callee executes. needFence marks the ones that can
	// escape without a fence; the rest are guaranteed-complete writebacks
	// callers may rely on for coverage. Only flushes every path executes
	// transfer as coverage; path-dependent fenced flushes stay invisible.
	seenFlush := map[string]bool{}
	f.eachOp(func(n *node, i int, o *op) {
		if (o.kind != opFlush && o.kind != opBarrier) || len(s.escFlushes) >= maxSummaryList {
			return
		}
		_, unfenced := searchForward(g, n, i+1, pathQuery{
			blockOp: func(b *op) bool {
				return b.kind == opFence || b.kind == opBarrier || b.kind == opTxEnd
			},
			matchEnd: true,
		})
		if o.kind == opBarrier {
			unfenced = false // a persist barrier is its own fence
		}
		if o.synthetic {
			unfenced = unfenced && o.needFence
		}
		// Guaranteed execution: no path from entry to exit avoids a
		// writeback covering this range.
		_, avoidable := searchForward(g, g.entry, 0, pathQuery{
			blockOp:  coveringWriteback(f, o),
			matchEnd: true,
		})
		if !unfenced && avoidable {
			return // fenced but path-dependent: nothing to transfer
		}
		key := fmt.Sprintf("%d|%s|%s|%d|%t", o.kind, f.fpAddr(o), f.fp(o.size), o.fixed, unfenced)
		if seenFlush[key] {
			return
		}
		seenFlush[key] = true
		a := absOp{kind: o.kind, fixed: o.fixed, needFence: unfenced, opaqueFP: o.opaqueFP}
		if o.synthetic {
			a.origin = o.origin
		} else {
			a.origin = f.pkg.originFor(f, o)
		}
		if o.addr != nil && f.substitutable(o.addr) {
			a.addr = o.addr
			if o.size != nil && f.substitutable(o.size) {
				a.size = o.size
			}
		} else if o.addr != nil || o.opaqueFP != "" {
			a.opaqueFP = f.name + ":" + f.fpAddr(o)
			if o.opaqueFP != "" {
				a.opaqueFP = o.opaqueFP
			}
		}
		s.escFlushes = append(s.escFlushes, a)
	})

	// Checkers that can escape unshipped.
	f.eachOp(func(n *node, i int, o *op) {
		if (o.kind != opIsPersist && o.kind != opIsOrderedBefore) || len(s.escCheckers) >= maxSummaryList {
			return
		}
		_, unshipped := searchForward(g, n, i+1, pathQuery{
			blockOp:  func(b *op) bool { return b.kind == opSendTrace },
			matchEnd: true,
		})
		if unshipped {
			s.escCheckers = append(s.escCheckers, absOp{kind: o.kind})
		}
	})

	// Guaranteed TX backups.
	seenAdd := map[string]bool{}
	f.eachOp(func(n *node, i int, o *op) {
		if o.kind != opTxAdd || len(s.mustTxAdds) >= maxSummaryList {
			return
		}
		if o.addr == nil || !f.substitutable(o.addr) {
			return
		}
		key := f.fpAddr(o) + "|" + f.fp(o.size)
		if seenAdd[key] {
			return
		}
		_, avoidable := searchForward(g, g.entry, 0, pathQuery{
			blockOp: func(b *op) bool {
				return b.kind == opTxAdd && f.covers(b, o)
			},
			matchEnd: true,
		})
		if avoidable {
			return
		}
		seenAdd[key] = true
		size := o.size
		if size != nil && !f.substitutable(size) {
			size = nil
		}
		s.mustTxAdds = append(s.mustTxAdds, absOp{kind: opTxAdd, addr: o.addr, size: size, fixed: o.fixed})
	})

	// Guaranteed fences / SendTrace.
	avoids := func(match func(*op) bool) bool {
		_, reached := searchForward(g, g.entry, 0, pathQuery{blockOp: match, matchEnd: true})
		return reached
	}
	has := func(match func(*op) bool) bool {
		found := false
		f.eachOp(func(_ *node, _ int, o *op) {
			if match(o) {
				found = true
			}
		})
		return found
	}
	isFence := func(o *op) bool { return o.kind == opFence || o.kind == opBarrier }
	isDFence := func(o *op) bool { return o.kind == opFence && o.dfence }
	isSend := func(o *op) bool { return o.kind == opSendTrace }
	s.mustFence = has(isFence) && !avoids(isFence)
	s.mustDFence = has(isDFence) && !avoids(isDFence)
	s.mustSend = has(isSend) && !avoids(isSend)

	// Net-open / net-closed transaction regions (pure emitters: a Begin
	// helper, a Commit helper). Mixed functions manage their own regions
	// and transfer nothing.
	regionPairs := [2][2]opKind{
		{opTxBegin, opTxEnd},
		{opTxCheckerStart, opTxCheckerEnd},
	}
	for pi, pair := range regionPairs {
		opener, closer := pair[0], pair[1]
		isOpen := func(o *op) bool { return o.kind == opener }
		isClose := func(o *op) bool { return o.kind == closer }
		hasOpen, hasClose := has(isOpen), has(isClose)
		switch {
		case hasOpen && !hasClose:
			s.mustOpen[pi] = !avoids(isOpen)
		case hasClose && !hasOpen:
			s.mustClose[pi] = !avoids(isClose)
		}
	}
	return s
}

// expandCalls rebuilds every node's xops for f, materializing the current
// callee summaries as synthetic ops at each resolved call site.
func expandCalls(f *fnInfo) {
	for _, n := range f.g.nodes {
		if len(n.calls) == 0 {
			n.xops = nil
			continue
		}
		merged := make([]op, 0, len(n.ops)+4*len(n.calls))
		oi := 0
		for _, rc := range n.calls {
			for oi < len(n.ops) && n.ops[oi].call.Pos() <= rc.call.Pos() {
				merged = append(merged, n.ops[oi])
				oi++
			}
			merged = append(merged, synthOps(f, rc)...)
		}
		merged = append(merged, n.ops[oi:]...)
		n.xops = merged
	}
}

// synthOps materializes one call's effects in caller scope. Order within
// the call mirrors a canonical callee execution: region closes and trace
// shipping happen "inside", then escaping checkers/stores, guaranteed TX
// backups, the guaranteed fence (before its flushes, so an unfenced
// escaping flush is not accidentally fenced by its own callee), the
// callee's writebacks, and finally any region the callee leaves open.
func synthOps(f *fnInfo, rc resolvedCall) []op {
	sum := rc.callee.sum
	if sum == nil {
		return nil
	}
	callee := rc.callee
	sub := map[string]ast.Expr{}
	ok := true
	if callee.recvName != "" {
		if rc.recv != nil {
			sub[callee.recvName] = rc.recv
		} else {
			ok = false
		}
	}
	if len(callee.paramNames) == len(rc.args) {
		for i, name := range callee.paramNames {
			sub[name] = rc.args[i]
		}
	} else if len(callee.paramNames) > 0 {
		ok = false // variadic / multi-value call: ranged effects do not transfer
	}

	var out []op
	base := op{call: rc.call, synthetic: true, fromFn: callee.name, name: "call:" + callee.name}
	add := func(o op) { out = append(out, o) }
	subst := func(a absOp) (ast.Expr, ast.Expr, bool) {
		if !ok {
			return nil, nil, false
		}
		addr, aok := callee.substExpr(a.addr, sub)
		if !aok {
			return nil, nil, false
		}
		size, sok := callee.substExpr(a.size, sub)
		if !sok {
			size = nil
		}
		return addr, size, true
	}

	for pi, k := range [2]opKind{opTxEnd, opTxCheckerEnd} {
		if sum.mustClose[pi] {
			o := base
			o.kind = k
			add(o)
		}
	}
	if sum.mustSend {
		o := base
		o.kind = opSendTrace
		add(o)
	}
	for _, a := range sum.escCheckers {
		o := base
		o.kind = a.kind
		add(o)
	}
	for _, a := range sum.escStores {
		addr, size, aok := subst(a)
		if !aok {
			continue // range unnameable here; the origin keeps its local report
		}
		o := base
		o.kind, o.addr, o.size, o.fixed = opStore, addr, size, a.fixed
		o.needFlush, o.needLog, o.origin = a.needFlush, a.needLog, a.origin
		add(o)
	}
	for _, a := range sum.mustTxAdds {
		addr, size, aok := subst(a)
		if !aok {
			continue
		}
		o := base
		o.kind, o.addr, o.size, o.fixed = opTxAdd, addr, size, a.fixed
		add(o)
	}
	if sum.mustFence || sum.mustDFence {
		o := base
		o.kind, o.dfence = opFence, sum.mustDFence
		add(o)
	}
	for _, a := range sum.escFlushes {
		o := base
		o.kind, o.fixed, o.dfence = a.kind, a.fixed, a.dfence
		o.needFence, o.origin = a.needFence, a.origin
		if addr, size, aok := subst(a); aok && addr != nil {
			o.addr, o.size = addr, size
		} else {
			o.opaqueFP = a.opaqueFP
			if o.opaqueFP == "" {
				o.opaqueFP = callee.name + ":" + exprString(f.fset, a.addr)
			}
		}
		add(o)
	}
	for pi, k := range [2]opKind{opTxBegin, opTxCheckerStart} {
		if sum.mustOpen[pi] {
			o := base
			o.kind = k
			add(o)
		}
	}
	return out
}

// computeFixpoint expands calls and recomputes summaries until nothing
// changes (or a pass bound is hit on pathological cycles), then sweeps
// once more to mark each origin's interprocedural fate.
func computeFixpoint(p *pkgInfo) {
	// Callee-before-caller order converges in one pass for acyclic
	// graphs: higher SCC numbers were completed first by Tarjan.
	order := make([]*fnInfo, len(p.fns))
	copy(order, p.fns)
	sort.SliceStable(order, func(i, j int) bool { return order[i].scc < order[j].scc })

	prints := map[*fnInfo]string{}
	for pass := 0; pass < maxFixpointPass; pass++ {
		changed := false
		for _, f := range order {
			expandCalls(f)
			f.sum = computeSummary(f)
			if fp := f.sum.fingerprint(f); fp != prints[f] {
				prints[f] = fp
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, f := range order {
		expandCalls(f) // final view under converged summaries
	}

	// Sweep: decide, per origin, whether any interprocedural path
	// discharges the obligation and whether it escapes any root.
	for _, f := range p.fns {
		f.eachOp(func(n *node, i int, o *op) {
			orig := o.origin
			if !o.synthetic {
				orig = p.origins[o.call]
			}
			if orig == nil {
				return
			}
			switch {
			case o.kind == opStore && (o.needFlush || !o.synthetic):
				if hit, _ := searchForward(f.g, n, i+1, pathQuery{matchOp: coveringWriteback(f, o)}); hit != nil {
					orig.covered = true
				}
				if f.rootFn {
					if _, esc := searchForward(f.g, n, i+1, pathQuery{
						blockOp:  coveringWriteback(f, o),
						matchEnd: true,
					}); esc && !f.mayBeInTx(n, i) {
						orig.escapedRoot = true
					}
				}
			case o.kind == opBarrier && !o.synthetic:
				orig.covered = true // a persist barrier is its own fence
			case (o.kind == opFlush || o.kind == opBarrier) && (o.needFence || !o.synthetic):
				fenceMatch := func(b *op) bool {
					return b.kind == opFence || b.kind == opBarrier || b.kind == opTxEnd
				}
				if hit, _ := searchForward(f.g, n, i+1, pathQuery{matchOp: fenceMatch}); hit != nil {
					orig.covered = true
				}
				if f.rootFn {
					if _, esc := searchForward(f.g, n, i+1, pathQuery{
						blockOp:  fenceMatch,
						matchEnd: true,
					}); esc {
						orig.escapedRoot = true
					}
				}
			}
		})
	}
}
