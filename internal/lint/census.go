package lint

import (
	"go/token"
	"sort"
)

// FuncCensus is the static profile of one analyzed function: how many PM
// primitives it executes directly, what it hands to its callers, and how
// many findings anchor inside it. Fault-injection campaigns use these
// profiles to decide which fault classes to explore first.
type FuncCensus struct {
	Name string `json:"name"`
	File string `json:"file"`
	Line int    `json:"line"`
	// Root is true when no other analyzed function calls this one — the
	// obligations that escape it are real, not summarized away.
	Root bool `json:"root"`
	// Direct primitive counts (the function's own ops, not expanded
	// call-site effects).
	Stores  int `json:"stores"`
	Flushes int `json:"flushes"`
	Fences  int `json:"fences"`
	Loads   int `json:"loads"`
	TxOps   int `json:"tx_ops"`
	// Calls counts intra-package call sites resolved by the call graph.
	Calls int `json:"calls"`
	// EscStores/EscFlushes count obligations the function's summary
	// transfers to callers (stores that escape unflushed, writebacks
	// that escape unfenced).
	EscStores  int `json:"esc_stores"`
	EscFlushes int `json:"esc_flushes"`
	// Findings counts the findings whose position falls in this function.
	Findings int `json:"findings"`
}

// CensusResult is the package-level static profile pmlint exposes to the
// rest of the framework: per-function primitive counts plus the findings
// themselves, aggregated per rule.
type CensusResult struct {
	Funcs    []FuncCensus   `json:"funcs"`
	ByRule   map[string]int `json:"by_rule"`
	Findings []Finding      `json:"findings"`
}

// Census analyzes one directory (non-recursively, like LintDir) and
// returns its static profile. The analysis is the same interprocedural
// pass the rules run on, so per-function summaries reflect the whole
// package's call graph.
func Census(dir string, includeTests bool) (*CensusResult, error) {
	fset, files, err := parseDir(dir, includeTests)
	if err != nil {
		return nil, err
	}
	findings, pkg := analyzeFiles(fset, files, Options{})
	return censusOf(fset, pkg, findings), nil
}

func censusOf(fset *token.FileSet, pkg *pkgInfo, findings []Finding) *CensusResult {
	res := &CensusResult{ByRule: map[string]int{}, Findings: findings}
	for _, f := range findings {
		res.ByRule[f.Rule]++
	}
	for _, fn := range pkg.fns {
		var pos token.Pos
		if fn.decl != nil {
			pos = fn.decl.Pos()
		} else if fn.lit != nil {
			pos = fn.lit.Pos()
		}
		p := fset.Position(pos)
		fc := FuncCensus{Name: fn.name, File: p.Filename, Line: p.Line, Root: fn.rootFn}
		for _, n := range fn.g.nodes {
			fc.Calls += len(n.calls)
			for i := range n.ops {
				switch n.ops[i].kind {
				case opStore, opStoreNT:
					fc.Stores++
				case opFlush:
					fc.Flushes++
				case opFence, opBarrier:
					fc.Fences++
				case opLoad:
					fc.Loads++
				case opTxBegin, opTxEnd, opTxAdd, opTxCheckerStart, opTxCheckerEnd:
					fc.TxOps++
				}
			}
		}
		if fn.sum != nil {
			fc.EscStores = len(fn.sum.escStores)
			fc.EscFlushes = len(fn.sum.escFlushes)
		}
		res.Funcs = append(res.Funcs, fc)
	}
	// Anchor findings to functions by position range.
	for _, f := range findings {
		for i := range res.Funcs {
			fn := pkg.fns[i]
			var lo, hi token.Position
			if fn.decl != nil {
				lo, hi = fset.Position(fn.decl.Pos()), fset.Position(fn.decl.End())
			} else if fn.lit != nil {
				lo, hi = fset.Position(fn.lit.Pos()), fset.Position(fn.lit.End())
			} else {
				continue
			}
			if f.File == lo.Filename && f.Line >= lo.Line && f.Line <= hi.Line {
				res.Funcs[i].Findings++
				break
			}
		}
	}
	sort.Slice(res.Funcs, func(i, j int) bool {
		a, b := res.Funcs[i], res.Funcs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Name < b.Name
	})
	return res
}
