package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// node is one vertex of the intra-function control-flow graph: a single
// statement (or controlling expression), the PM ops it performs in source
// order, and the identifiers it assigns.
type node struct {
	parts    []ast.Node // AST fragments this node covers (nil for joins)
	ops      []op
	succs    []*node
	preds    []*node
	assigned map[string]bool

	// calls are the call sites in this node that resolved to functions of
	// the linted package (callgraph.go); xops is ops with each resolved
	// call expanded into the synthetic effects of its callee's summary
	// (summary.go). When xops is nil the node has no expansion and cur()
	// falls back to the parsed ops.
	calls []resolvedCall
	xops  []op
}

// cur returns the op sequence every path query iterates: the expanded
// view when interprocedural analysis has populated it, the parsed ops
// otherwise.
func (n *node) cur() []op {
	if n.xops != nil {
		return n.xops
	}
	return n.ops
}

// graph is the CFG of one function body. entry and exit are synthetic.
type graph struct {
	entry, exit *node
	nodes       []*node
}

// brkCtx is one enclosing breakable construct (loop, switch or select).
type brkCtx struct {
	label     string
	isLoop    bool
	breaks    []*node
	continues []*node
}

type cfgBuilder struct {
	g            *graph
	stack        []*brkCtx
	labels       map[string]*node
	gotos        map[string][]*node
	pendingLabel string
	ftOut        []*node // fallthrough sources awaiting the next case body
}

// buildGraph constructs the CFG for a function body. Every statement
// becomes a node; if/for/range/switch/select/return/break/continue/goto
// and fallthrough are modeled. Deferred statements are treated at their
// syntactic position and panics as ordinary calls (both documented
// approximations that bias the rules toward fewer findings).
func buildGraph(body *ast.BlockStmt) *graph {
	b := &cfgBuilder{
		g:      &graph{},
		labels: map[string]*node{},
		gotos:  map[string][]*node{},
	}
	b.g.entry = b.newNode()
	exit := &node{}
	b.g.exit = exit
	outs := b.stmts(body.List, []*node{b.g.entry})
	b.connect(outs, exit)
	for name, srcs := range b.gotos {
		tgt := b.labels[name]
		if tgt == nil {
			tgt = exit
		}
		for _, s := range srcs {
			s.succs = append(s.succs, tgt)
		}
	}
	b.g.nodes = append(b.g.nodes, exit)
	for _, n := range b.g.nodes {
		for _, s := range n.succs {
			s.preds = append(s.preds, n)
		}
	}
	return b.g
}

func (b *cfgBuilder) newNode(parts ...ast.Node) *node {
	n := &node{assigned: map[string]bool{}}
	for _, p := range parts {
		if p == nil {
			continue
		}
		n.parts = append(n.parts, p)
		collectOps(p, &n.ops)
		collectAssigned(p, n.assigned)
	}
	sort.SliceStable(n.ops, func(i, j int) bool { return n.ops[i].call.Pos() < n.ops[j].call.Pos() })
	b.g.nodes = append(b.g.nodes, n)
	return n
}

func (b *cfgBuilder) connect(froms []*node, to *node) {
	for _, f := range froms {
		f.succs = append(f.succs, to)
	}
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) findBreak(label string) *brkCtx {
	for i := len(b.stack) - 1; i >= 0; i-- {
		if label == "" || b.stack[i].label == label {
			return b.stack[i]
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *brkCtx {
	for i := len(b.stack) - 1; i >= 0; i-- {
		if b.stack[i].isLoop && (label == "" || b.stack[i].label == label) {
			return b.stack[i]
		}
	}
	return nil
}

func (b *cfgBuilder) stmts(list []ast.Stmt, preds []*node) []*node {
	cur := preds
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt wires statement s after preds and returns its dangling exits.
func (b *cfgBuilder) stmt(s ast.Stmt, preds []*node) []*node {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, preds)

	case *ast.IfStmt:
		if s.Init != nil {
			n := b.newNode(s.Init)
			b.connect(preds, n)
			preds = []*node{n}
		}
		cond := b.newNode(s.Cond)
		b.connect(preds, cond)
		thenOut := b.stmt(s.Body, []*node{cond})
		elseOut := []*node{cond}
		if s.Else != nil {
			elseOut = b.stmt(s.Else, []*node{cond})
		}
		return append(thenOut, elseOut...)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			n := b.newNode(s.Init)
			b.connect(preds, n)
			preds = []*node{n}
		}
		var head *node
		if s.Cond != nil {
			head = b.newNode(s.Cond)
		} else {
			head = b.newNode()
		}
		b.connect(preds, head)
		ctx := &brkCtx{label: label, isLoop: true}
		b.stack = append(b.stack, ctx)
		bodyOut := b.stmt(s.Body, []*node{head})
		b.stack = b.stack[:len(b.stack)-1]
		back := bodyOut
		contTarget := head
		if s.Post != nil {
			post := b.newNode(s.Post)
			b.connect(bodyOut, post)
			back = []*node{post}
			contTarget = post
		}
		b.connect(back, head)
		for _, c := range ctx.continues {
			c.succs = append(c.succs, contTarget)
		}
		out := ctx.breaks
		if s.Cond != nil {
			out = append(out, head)
		}
		return out

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newNode(s.Key, s.Value, s.X)
		if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
			collectAssigned(s.Key, head.assigned)
			collectAssigned(s.Value, head.assigned)
		}
		b.connect(preds, head)
		ctx := &brkCtx{label: label, isLoop: true}
		b.stack = append(b.stack, ctx)
		bodyOut := b.stmt(s.Body, []*node{head})
		b.stack = b.stack[:len(b.stack)-1]
		b.connect(bodyOut, head)
		for _, c := range ctx.continues {
			c.succs = append(c.succs, head)
		}
		return append(ctx.breaks, head)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			n := b.newNode(s.Init)
			b.connect(preds, n)
			preds = []*node{n}
		}
		tag := b.newNode(s.Tag)
		b.connect(preds, tag)
		return b.caseClauses(s.Body.List, tag, label, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			n := b.newNode(s.Init)
			b.connect(preds, n)
			preds = []*node{n}
		}
		tag := b.newNode(s.Assign)
		b.connect(preds, tag)
		return b.caseClauses(s.Body.List, tag, label, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		ctx := &brkCtx{label: label}
		b.stack = append(b.stack, ctx)
		var outs []*node
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			cn := b.newNode(clause.Comm)
			b.connect(preds, cn)
			outs = append(outs, b.stmts(clause.Body, []*node{cn})...)
		}
		b.stack = b.stack[:len(b.stack)-1]
		return append(outs, ctx.breaks...)

	case *ast.ReturnStmt:
		n := b.newNode(s)
		b.connect(preds, n)
		n.succs = append(n.succs, b.g.exit)
		return nil

	case *ast.BranchStmt:
		n := b.newNode()
		b.connect(preds, n)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if ctx := b.findBreak(label); ctx != nil {
				ctx.breaks = append(ctx.breaks, n)
			} else {
				n.succs = append(n.succs, b.g.exit)
			}
		case token.CONTINUE:
			if ctx := b.findContinue(label); ctx != nil {
				ctx.continues = append(ctx.continues, n)
			} else {
				n.succs = append(n.succs, b.g.exit)
			}
		case token.GOTO:
			b.gotos[label] = append(b.gotos[label], n)
		case token.FALLTHROUGH:
			b.ftOut = append(b.ftOut, n)
		}
		return nil

	case *ast.LabeledStmt:
		j := b.newNode()
		b.connect(preds, j)
		b.labels[s.Label.Name] = j
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, []*node{j})
		b.pendingLabel = ""
		return out

	case *ast.EmptyStmt:
		return preds

	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, DeferStmt,
		// GoStmt: one sequential node.
		n := b.newNode(s)
		b.connect(preds, n)
		return []*node{n}
	}
}

// caseClauses wires switch/type-switch cases, including fallthrough.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, tag *node, label string, allowFT bool) []*node {
	ctx := &brkCtx{label: label}
	b.stack = append(b.stack, ctx)
	var outs []*node
	hasDefault := false
	var carry []*node
	for _, cc := range clauses {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		var parts []ast.Node
		for _, e := range clause.List {
			parts = append(parts, e)
		}
		cn := b.newNode(parts...)
		b.connect([]*node{tag}, cn)
		bodyPreds := append([]*node{cn}, carry...)
		carry = nil
		savedFT := b.ftOut
		b.ftOut = nil
		bodyOut := b.stmts(clause.Body, bodyPreds)
		if allowFT {
			carry = b.ftOut
		}
		b.ftOut = savedFT
		outs = append(outs, bodyOut...)
	}
	b.stack = b.stack[:len(b.stack)-1]
	outs = append(outs, ctx.breaks...)
	if !hasDefault {
		outs = append(outs, tag)
	}
	return outs
}

// collectOps gathers classified PM calls under n, skipping nested function
// literals (those are analyzed as functions of their own).
func collectOps(n ast.Node, out *[]op) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok {
			if o, ok2 := classifyCall(c); ok2 {
				*out = append(*out, o)
			}
		}
		return true
	})
}

// collectAssigned records identifiers a statement (re)assigns, used to
// invalidate expression fingerprints along a path.
func collectAssigned(n ast.Node, out map[string]bool) {
	if n == nil {
		return
	}
	addIdents := func(e ast.Node) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := x.(*ast.Ident); ok {
				out[id.Name] = true
			}
			return true
		})
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				addIdents(l)
			}
		case *ast.IncDecStmt:
			addIdents(s.X)
		case *ast.GenDecl:
			if s.Tok == token.VAR {
				for _, spec := range s.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							out[name.Name] = true
						}
					}
				}
			}
		case *ast.Ident: // range Key/Value passed directly
			if _, top := n.(*ast.Ident); top && x == n {
				out[s.Name] = true
			}
		}
		return true
	})
}

// --- Path queries -----------------------------------------------------------

// pathQuery describes a CFG walk: the walk succeeds when matchOp (or the
// entry/exit sentinel) is found on some path, and a branch is abandoned
// when blockOp or blockNode matches first.
type pathQuery struct {
	blockOp   func(o *op) bool
	blockNode func(n *node) bool
	matchOp   func(o *op) bool
	matchEnd  bool // forward: match reaching exit; backward: reaching entry
}

// searchForward explores paths from start, beginning at op index from
// within it. It returns the first matching op (if matchOp is set) and
// whether any match (op or exit) was found.
func searchForward(g *graph, start *node, from int, q pathQuery) (*op, bool) {
	seen := map[*node]bool{}
	var hit *op
	found := false
	var visit func(n *node, opStart int) bool
	visit = func(n *node, opStart int) bool {
		ops := n.cur()
		for i := opStart; i < len(ops); i++ {
			o := &ops[i]
			if q.matchOp != nil && q.matchOp(o) {
				hit, found = o, true
				return true
			}
			if q.blockOp != nil && q.blockOp(o) {
				return false
			}
		}
		if n != start && q.blockNode != nil && q.blockNode(n) {
			return false
		}
		for _, s := range n.succs {
			if s == g.exit {
				if q.matchEnd {
					found = true
					return true
				}
				continue
			}
			if seen[s] {
				continue
			}
			seen[s] = true
			if visit(s, 0) {
				return true
			}
		}
		return false
	}
	visit(start, from)
	return hit, found
}

// searchBackward explores paths backward from start, beginning just
// before op index before within it.
func searchBackward(g *graph, start *node, before int, q pathQuery) (*op, bool) {
	seen := map[*node]bool{}
	var hit *op
	found := false
	var visit func(n *node, opEnd int) bool
	visit = func(n *node, opEnd int) bool {
		ops := n.cur()
		for i := opEnd - 1; i >= 0; i-- {
			o := &ops[i]
			if q.matchOp != nil && q.matchOp(o) {
				hit, found = o, true
				return true
			}
			if q.blockOp != nil && q.blockOp(o) {
				return false
			}
		}
		if n != start && q.blockNode != nil && q.blockNode(n) {
			return false
		}
		for _, p := range n.preds {
			if p == g.entry {
				if q.matchEnd {
					found = true
					return true
				}
				continue
			}
			if seen[p] {
				continue
			}
			seen[p] = true
			if visit(p, len(p.cur())) {
				return true
			}
		}
		return false
	}
	visit(start, before)
	return hit, found
}
