package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Call-graph construction. The analyzer stays purely syntactic: calls are
// resolved by name within the linted file set, method calls via a small
// single-assignment type-hint pass (receiver and parameter declarations,
// `x := T{...}` / `&T{...}` / `new(T)` locals, and results of package
// functions with a declared result type). Method values bound to locals
// (`st := dev.Store64; st(a, v)`) resolve through the same binding table:
// a binding to a recognized primitive becomes an op at the call site, a
// binding to a package function or func literal becomes a call edge.
// Unresolved calls stay opaque, exactly as every call did before this
// analysis existed.

// resolvedCall is one call site wired to a function of the package.
type resolvedCall struct {
	call   *ast.CallExpr
	callee *fnInfo
	recv   ast.Expr // receiver expression for method calls; nil otherwise
	args   []ast.Expr
}

// origin is the real op an interprocedural obligation chains back to.
// The final sweep (summary.go) records whether any call site on any path
// discharged it and whether it escaped the exit of a call-graph root;
// crossflush and recoveryread read those bits.
type origin struct {
	fn          *fnInfo
	o           *op
	covered     bool // some interprocedural path discharges the obligation
	escapedRoot bool // the obligation reaches the exit of some root
}

// pkgInfo is one package directory under whole-package analysis.
type pkgInfo struct {
	fset    *token.FileSet
	env     constEnv
	pkgVars map[string]bool
	fns     []*fnInfo // declaration order across files, literals after their enclosing decl

	funcsByName   map[string]*fnInfo            // plain functions, unique names only
	methodsByType map[string]map[string]*fnInfo // recv type → method name → fn
	methodsByName map[string][]*fnInfo          // method name → candidates

	origins    map[*ast.CallExpr]*origin
	originList []*origin
}

func (p *pkgInfo) isPkgName(name string) bool {
	if p.pkgVars[name] {
		return true
	}
	if _, ok := p.env[name]; ok {
		return true
	}
	switch name {
	case "true", "false", "iota", "nil":
		return true
	}
	return false
}

// originFor returns (creating on first use) the origin record for a real
// op, keyed by its call expression — stable across fixpoint passes.
func (p *pkgInfo) originFor(f *fnInfo, o *op) *origin {
	if g, ok := p.origins[o.call]; ok {
		return g
	}
	g := &origin{fn: f, o: o}
	p.origins[o.call] = g
	p.originList = append(p.originList, g)
	return g
}

// buildPkg parses the shared analysis state for a set of files: function
// index, type hints, resolved call edges, and call-graph roots. Summaries
// are computed afterwards by computeFixpoint (summary.go).
func buildPkg(fset *token.FileSet, files []*ast.File) *pkgInfo {
	p := &pkgInfo{
		fset:          fset,
		env:           buildConstEnv(files),
		pkgVars:       map[string]bool{},
		funcsByName:   map[string]*fnInfo{},
		methodsByType: map[string]map[string]*fnInfo{},
		methodsByName: map[string][]*fnInfo{},
		origins:       map[*ast.CallExpr]*origin{},
	}
	dupFuncs := map[string]bool{}

	for _, file := range files {
		for _, d := range file.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, name := range vs.Names {
								p.pkgVars[name.Name] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn := &fnInfo{
					name: d.Name.Name,
					g:    buildGraph(d.Body),
					fset: fset,
					env:  p.env,
					pkg:  p,
					decl: d,
				}
				fn.initSignature()
				p.fns = append(p.fns, fn)
				if d.Recv != nil {
					if fn.recvType != "" {
						m := p.methodsByType[fn.recvType]
						if m == nil {
							m = map[string]*fnInfo{}
							p.methodsByType[fn.recvType] = m
						}
						m[fn.name] = fn
					}
					p.methodsByName[fn.name] = append(p.methodsByName[fn.name], fn)
				} else {
					if _, dup := p.funcsByName[fn.name]; dup {
						dupFuncs[fn.name] = true
					}
					p.funcsByName[fn.name] = fn
				}
				// Nested func literals are functions of their own, exactly
				// as before; they resolve as callees through bindings.
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						lf := &fnInfo{
							name: "func literal",
							g:    buildGraph(lit.Body),
							fset: fset,
							env:  p.env,
							pkg:  p,
							lit:  lit,
						}
						lf.initLitSignature(lit)
						p.fns = append(p.fns, lf)
					}
					return true
				})
			}
		}
	}
	// Same-named plain functions (build-tag variants) are ambiguous; drop
	// them from resolution rather than pick one.
	for name := range dupFuncs {
		delete(p.funcsByName, name)
	}

	litByNode := map[*ast.FuncLit]*fnInfo{}
	for _, fn := range p.fns {
		if fn.lit != nil {
			litByNode[fn.lit] = fn
		}
	}
	for _, fn := range p.fns {
		p.resolveCalls(fn, litByNode)
	}
	p.markRoots()
	return p
}

// initSignature records receiver/parameter names and syntactic type hints
// from a function declaration.
func (f *fnInfo) initSignature() {
	f.params = map[string]bool{}
	f.typeHints = map[string]string{}
	d := f.decl
	if d.Recv != nil && len(d.Recv.List) == 1 {
		fld := d.Recv.List[0]
		f.recvType = typeBaseName(fld.Type)
		if len(fld.Names) == 1 {
			f.recvName = fld.Names[0].Name
			f.params[f.recvName] = true
			if f.recvType != "" {
				f.typeHints[f.recvName] = f.recvType
			}
		}
	}
	if d.Type.Params != nil {
		for _, fld := range d.Type.Params.List {
			t := typeBaseName(fld.Type)
			for _, name := range fld.Names {
				f.params[name.Name] = true
				f.paramNames = append(f.paramNames, name.Name)
				if t != "" {
					f.typeHints[name.Name] = t
				}
			}
		}
	}
}

func (f *fnInfo) initLitSignature(lit *ast.FuncLit) {
	f.params = map[string]bool{}
	f.typeHints = map[string]string{}
	if lit.Type.Params != nil {
		for _, fld := range lit.Type.Params.List {
			t := typeBaseName(fld.Type)
			for _, name := range fld.Names {
				f.params[name.Name] = true
				f.paramNames = append(f.paramNames, name.Name)
				if t != "" {
					f.typeHints[name.Name] = t
				}
			}
		}
	}
}

// typeBaseName reduces a type expression to its base named type: *T → T,
// []T → T (an element store through an index expression still hits T's
// methods), pkg.T → "" (cross-package, unresolvable here).
func typeBaseName(t ast.Expr) string {
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.ArrayType:
			t = v.Elt
		case *ast.ParenExpr:
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

// localBindings walks a function body (excluding nested literals) and
// records single-assignment bindings of locals: to composite literals and
// new(T) for type hints, to func literals / method values / function
// names for call resolution. Re-bound names are dropped.
type binding struct {
	sel  *ast.SelectorExpr // method value: st := dev.Store64
	lit  *ast.FuncLit      // fl := func(...){...}
	fn   string            // alias: g := helper
	typ  string            // type hint: d := &Device{...}
	dead bool              // multiply assigned
}

func (f *fnInfo) localBindings() map[string]*binding {
	b := map[string]*binding{}
	set := func(name string, nb binding) {
		if name == "" || name == "_" {
			return
		}
		if old, ok := b[name]; ok {
			old.dead = true
			return
		}
		nb2 := nb
		b[name] = &nb2
	}
	var body ast.Node
	if f.decl != nil {
		body = f.decl.Body
	} else if f.lit != nil {
		body = f.lit.Body
	}
	if body == nil {
		return b
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.lit {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						set(id.Name, binding{dead: true})
					}
				}
				return true
			}
			for i, l := range s.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				set(id.Name, bindingFor(s.Rhs[i]))
			}
		case *ast.GenDecl:
			if s.Tok == token.VAR {
				for _, spec := range s.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							set(name.Name, bindingFor(vs.Values[i]))
						} else if t := typeBaseName(vs.Type); t != "" {
							set(name.Name, binding{typ: t})
						}
					}
				}
			}
		}
		return true
	})
	return b
}

func bindingFor(rhs ast.Expr) binding {
	switch v := rhs.(type) {
	case *ast.SelectorExpr:
		return binding{sel: v}
	case *ast.FuncLit:
		return binding{lit: v}
	case *ast.Ident:
		return binding{fn: v.Name}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if cl, ok := v.X.(*ast.CompositeLit); ok {
				return binding{typ: typeBaseName(cl.Type)}
			}
		}
	case *ast.CompositeLit:
		return binding{typ: typeBaseName(v.Type)}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok {
			if id.Name == "new" && len(v.Args) == 1 {
				return binding{typ: typeBaseName(v.Args[0])}
			}
			return binding{fn: id.Name} // result type resolved at lookup time
		}
	}
	return binding{dead: true}
}

// typeHint resolves the syntactic type of a receiver expression.
func (p *pkgInfo) typeHint(f *fnInfo, binds map[string]*binding, e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		if t, ok := f.typeHints[v.Name]; ok {
			return t
		}
		if b, ok := binds[v.Name]; ok && !b.dead {
			if b.typ != "" {
				return b.typ
			}
			if b.fn != "" {
				if callee, ok := p.funcsByName[b.fn]; ok {
					return callee.resultType()
				}
			}
		}
	case *ast.ParenExpr:
		return p.typeHint(f, binds, v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return p.typeHint(f, binds, v.X)
		}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok {
			if callee, ok := p.funcsByName[id.Name]; ok {
				return callee.resultType()
			}
		}
	}
	return ""
}

// resultType is the base name of a declaration's single result type.
func (f *fnInfo) resultType() string {
	if f.decl == nil || f.decl.Type.Results == nil || len(f.decl.Type.Results.List) != 1 {
		return ""
	}
	return typeBaseName(f.decl.Type.Results.List[0].Type)
}

// resolveCalls walks one function's CFG nodes, resolving call expressions
// to package functions (filling node.calls) and method-value invocations
// to primitive ops (appended to node.ops).
func (p *pkgInfo) resolveCalls(f *fnInfo, litByNode map[*ast.FuncLit]*fnInfo) {
	binds := f.localBindings()
	for _, n := range f.g.nodes {
		changedOps := false
		for _, part := range n.parts {
			ast.Inspect(part, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				c, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, prim := classifyCall(c); prim {
					return true // already an op at this site
				}
				switch fun := c.Fun.(type) {
				case *ast.Ident:
					if b, ok := binds[fun.Name]; ok && !b.dead {
						switch {
						case b.sel != nil:
							// Method value: classify as if called directly.
							if o, ok := classifyCall(&ast.CallExpr{Fun: b.sel, Args: c.Args}); ok {
								o.call = c // report at the invocation site
								n.ops = append(n.ops, o)
								changedOps = true
								return true
							}
						case b.lit != nil:
							if callee := litByNode[b.lit]; callee != nil {
								p.addCall(f, n, c, callee, nil)
								return true
							}
						case b.fn != "":
							if callee, ok := p.funcsByName[b.fn]; ok {
								p.addCall(f, n, c, callee, nil)
								return true
							}
						}
						return true
					}
					if callee, ok := p.funcsByName[fun.Name]; ok {
						p.addCall(f, n, c, callee, nil)
					}
				case *ast.SelectorExpr:
					name := fun.Sel.Name
					if t := p.typeHint(f, binds, fun.X); t != "" {
						if m, ok := p.methodsByType[t]; ok {
							if callee, ok := m[name]; ok {
								p.addCall(f, n, c, callee, fun.X)
								return true
							}
						}
						return true // typed receiver, no such method here
					}
					// Untyped receiver: resolve iff the method name is
					// unique across the package (and not an import access,
					// which a package-level function name would shadow).
					if cands := p.methodsByName[name]; len(cands) == 1 {
						if _, isImport := fun.X.(*ast.Ident); !isImport || !p.looksLikeImport(f, fun.X.(*ast.Ident).Name) {
							p.addCall(f, n, c, cands[0], fun.X)
						}
					}
				case *ast.FuncLit:
					if callee := litByNode[fun]; callee != nil {
						p.addCall(f, n, c, callee, nil)
					}
				}
				return true
			})
		}
		if changedOps {
			sort.SliceStable(n.ops, func(i, j int) bool { return n.ops[i].call.Pos() < n.ops[j].call.Pos() })
		}
		sort.SliceStable(n.calls, func(i, j int) bool { return n.calls[i].call.Pos() < n.calls[j].call.Pos() })
	}
}

// looksLikeImport reports whether name is plausibly a file-scope import
// alias rather than a value: it is not a parameter, local binding, or
// package-level name.
func (p *pkgInfo) looksLikeImport(f *fnInfo, name string) bool {
	if f.params[name] || p.isPkgName(name) {
		return false
	}
	if _, ok := f.typeHints[name]; ok {
		return false
	}
	// Conservative: if it is assigned anywhere in the function it is a
	// value, not an import.
	for _, n := range f.g.nodes {
		if n.assigned[name] {
			return false
		}
	}
	return true
}

func (p *pkgInfo) addCall(f *fnInfo, n *node, c *ast.CallExpr, callee *fnInfo, recv ast.Expr) {
	n.calls = append(n.calls, resolvedCall{call: c, callee: callee, recv: recv, args: c.Args})
	if callee.callers == nil {
		callee.callers = map[*fnInfo]bool{}
	}
	callee.callers[f] = true
	f.callees = append(f.callees, callee)
}

// markRoots computes strongly connected components of the call graph and
// flags every function whose SCC has no incoming edge from outside it.
// Roots are where escaping obligations are finally reported; a mutually
// recursive cycle nobody else calls is its own root set.
func (p *pkgInfo) markRoots() {
	index := map[*fnInfo]int{}
	low := map[*fnInfo]int{}
	onStack := map[*fnInfo]bool{}
	comp := map[*fnInfo]int{}
	var stack []*fnInfo
	next, ncomps := 0, 0

	var strongconnect func(v *fnInfo)
	strongconnect = func(v *fnInfo) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomps
				if w == v {
					break
				}
			}
			ncomps++
		}
	}
	for _, f := range p.fns {
		if _, seen := index[f]; !seen {
			strongconnect(f)
		}
	}
	external := map[int]bool{}
	for _, f := range p.fns {
		for caller := range f.callers {
			if comp[caller] != comp[f] {
				external[comp[f]] = true
			}
		}
	}
	for _, f := range p.fns {
		f.rootFn = !external[comp[f]]
		f.scc = comp[f]
	}
}

// recoverySet returns the functions reachable from recovery entry points
// (Open*/Mount*/Recover*/Replay*/Restore*/Reopen* declarations) through
// resolved calls — the domain of the recoveryread rule.
func (p *pkgInfo) recoverySet() map[*fnInfo]bool {
	set := map[*fnInfo]bool{}
	var queue []*fnInfo
	for _, f := range p.fns {
		if f.decl != nil && isRecoveryName(f.name) {
			set[f] = true
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, callee := range f.callees {
			if !set[callee] {
				set[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return set
}

func isRecoveryName(name string) bool {
	l := strings.ToLower(name)
	for _, p := range []string{"open", "mount", "recover", "replay", "restore", "reopen"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// describe renders a function for diagnostics: name plus position.
func (f *fnInfo) describe() string {
	var pos token.Pos
	if f.decl != nil {
		pos = f.decl.Pos()
	} else if f.lit != nil {
		pos = f.lit.Pos()
	}
	if !pos.IsValid() {
		return f.name
	}
	pp := f.fset.Position(pos)
	return fmt.Sprintf("%s (%s:%d)", f.name, pp.Filename, pp.Line)
}
