package flight

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

func TestSpanLifecycle(t *testing.T) {
	rec := NewRecorder(8)
	sp := rec.Start(CatSession, "section", 0).
		SetTID(3).
		SetInt("ops", 42).
		SetStr("why", "test").
		SetErr(false).
		AddEvent("midpoint")
	if sp.ID == 0 {
		t.Fatal("span ID not assigned")
	}
	if rec.Len(CatSession) != 0 {
		t.Fatal("open span already visible in ring")
	}
	sp.Finish()
	if rec.Len(CatSession) != 1 {
		t.Fatalf("CatSession ring len = %d, want 1", rec.Len(CatSession))
	}
	got := rec.Search(Filter{})[0]
	if got.Name != "section" || got.TID != 3 || got.Err {
		t.Fatalf("recorded span = %+v", got)
	}
	if v, ok := got.Attr("ops").(int64); !ok || v != 42 {
		t.Fatalf("attr ops = %v, want 42", got.Attr("ops"))
	}
	if v, ok := got.Attr("why").(string); !ok || v != "test" {
		t.Fatalf("attr why = %v, want test", got.Attr("why"))
	}
	if evs := got.Events(); len(evs) != 1 || evs[0].Msg != "midpoint" {
		t.Fatalf("events = %v", evs)
	}
	if got.End.Before(got.Start) {
		t.Fatalf("End %v before Start %v", got.End, got.Start)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	// Every method on a nil recorder / nil span must be a no-op.
	sp := rec.Start(CatTx, "tx", 0)
	if sp != nil {
		t.Fatal("nil recorder returned a live span")
	}
	sp.SetInt("k", 1).SetStr("s", "v").SetErr(true).SetTID(1).AddEvent("e").Finish()
	if rec.Len(CatTx) != 0 || rec.Search(Filter{}) != nil || rec.Export() != nil {
		t.Fatal("nil recorder has state")
	}
	if EngineObserver(nil) != nil {
		t.Fatal("EngineObserver(nil) should be nil so obs.Multi drops it")
	}
}

func TestAttrOverflowCounted(t *testing.T) {
	rec := NewRecorder(4)
	sp := rec.Start(CatEngine, "check", 0)
	for i := 0; i < maxAttrs+3; i++ {
		sp.SetInt("k", int64(i))
	}
	sp.Finish()
	got := rec.Search(Filter{})[0]
	if len(got.Attrs()) != maxAttrs || got.Dropped != 3 {
		t.Fatalf("attrs = %d dropped = %d, want %d/3", len(got.Attrs()), got.Dropped, maxAttrs)
	}
}

func TestCategoryRoundTrip(t *testing.T) {
	for c := CatSession; c < numCategories; c++ {
		got, ok := ParseCategory(c.String())
		if !ok || got != c {
			t.Fatalf("ParseCategory(%q) = %v %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseCategory("bogus"); ok {
		t.Fatal("ParseCategory accepted bogus")
	}
}

func TestSearchFilters(t *testing.T) {
	rec := NewRecorder(16)
	base := time.Now()
	rec.StartAt(CatEngine, "check", 0, base).FinishAt(base.Add(time.Millisecond))
	rec.StartAt(CatEngine, "check", 0, base.Add(time.Millisecond)).
		SetErr(true).FinishAt(base.Add(time.Millisecond + 50*time.Microsecond))
	rec.StartAt(CatChecker, "order-violation", 0, base.Add(2*time.Millisecond)).
		SetErr(true).FinishAt(base.Add(2 * time.Millisecond))

	if got := rec.Search(Filter{}); len(got) != 3 {
		t.Fatalf("unfiltered = %d spans, want 3", len(got))
	} else if !got[0].Start.After(got[2].Start) {
		t.Fatal("search not newest-first")
	}
	if got := rec.Search(Filter{Category: CatChecker, HasCategory: true}); len(got) != 1 ||
		got[0].Name != "order-violation" {
		t.Fatalf("category filter = %+v", got)
	}
	if got := rec.Search(Filter{ErrOnly: true}); len(got) != 2 {
		t.Fatalf("err filter = %d spans, want 2", len(got))
	}
	if got := rec.Search(Filter{MinDur: 500 * time.Microsecond}); len(got) != 1 {
		t.Fatalf("min_dur filter = %d spans, want 1", len(got))
	}
	if got := rec.Search(Filter{Name: "violation"}); len(got) != 1 {
		t.Fatalf("name filter = %d spans, want 1", len(got))
	}
	if got := rec.Search(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit = %d spans, want 2", len(got))
	}
}

func TestRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Start(CatTx, "tx", 0).SetInt("i", int64(i)).Finish()
	}
	if rec.Len(CatTx) != 4 {
		t.Fatalf("ring len = %d, want 4", rec.Len(CatTx))
	}
	got := rec.Search(Filter{Category: CatTx, HasCategory: true})
	if v := got[0].Attr("i"); v != int64(9) {
		t.Fatalf("newest i = %v, want 9", v)
	}
	if v := got[3].Attr("i"); v != int64(6) {
		t.Fatalf("oldest surviving i = %v, want 6", v)
	}
}

func TestEngineObserverParenting(t *testing.T) {
	rec := NewRecorder(16)
	ob := EngineObserver(rec)
	ob.TraceChecked(obs.TraceEvent{
		TraceID: 7, Thread: 2, Worker: 1, Ops: 10, TrackedOps: 8,
		Fails: 1, CheckDur: time.Millisecond, QueueWait: time.Microsecond,
		SpanID: 100,
		TxSpans: []trace.SpanRange{
			{Begin: 1, End: 8, SpanID: 200},
			{Begin: 3, End: 6, SpanID: 300}, // nested: later begin wins
		},
		Diags: []obs.DiagInfo{
			{Severity: "FAIL", Code: "order-violation", OpIndex: 5,
				Message: "persist intervals overlap", Site: "pmdk/tx.go:57"},
			{Severity: "WARN", Code: "duplicate-writeback", OpIndex: 9,
				Message: "already persisted"},
		},
	})

	engine := rec.Search(Filter{Category: CatEngine, HasCategory: true})
	if len(engine) != 1 {
		t.Fatalf("engine spans = %d, want 1", len(engine))
	}
	es := engine[0]
	if es.Parent != 100 || !es.Err || es.TID != 2 {
		t.Fatalf("engine span = %+v", es)
	}
	if v := es.Attr("queue_wait_ns"); v != int64(1000) {
		t.Fatalf("queue_wait_ns = %v", v)
	}
	if d := es.Dur(); d < time.Millisecond {
		t.Fatalf("engine span dur = %v, want >= CheckDur", d)
	}

	checkers := rec.Search(Filter{Category: CatChecker, HasCategory: true})
	if len(checkers) != 2 {
		t.Fatalf("checker spans = %d, want 2", len(checkers))
	}
	var fail, warn Span
	for _, c := range checkers {
		if c.Name == "order-violation" {
			fail = c
		} else {
			warn = c
		}
	}
	// Op 5 sits inside both tx ranges; the innermost (begin 3) wins.
	if fail.Parent != 300 {
		t.Fatalf("FAIL parent = %d, want innermost tx 300", fail.Parent)
	}
	if !fail.Err || fail.Attr("site") != "pmdk/tx.go:57" {
		t.Fatalf("FAIL span = %+v", fail)
	}
	// Op 9 is outside every tx range → parented under the engine span.
	if warn.Parent != es.ID {
		t.Fatalf("WARN parent = %d, want engine span %d", warn.Parent, es.ID)
	}
	if warn.Err {
		t.Fatal("WARN span marked Err")
	}
}

func TestHandler(t *testing.T) {
	rec := NewRecorder(16)
	rec.Start(CatSession, "section", 0).SetInt("ops", 5).Finish()
	rec.Start(CatChecker, "not-persisted", 1).SetErr(true).Finish()

	get := func(url string) (int, string) {
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		Handler(rec).ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}

	code, body := get("/flight")
	if code != 200 {
		t.Fatalf("GET /flight = %d: %s", code, body)
	}
	var out struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(out.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(out.Spans))
	}

	code, body = get("/flight?category=checker&err=1")
	if code != 200 {
		t.Fatalf("filtered = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 1 || out.Spans[0].Category != "checker" || !out.Spans[0].Err {
		t.Fatalf("filtered spans = %+v", out.Spans)
	}

	for _, bad := range []string{
		"/flight?category=nope", "/flight?min_dur=xyz", "/flight?limit=-1",
	} {
		if code, _ := get(bad); code != 400 {
			t.Fatalf("GET %s = %d, want 400", bad, code)
		}
	}
	if code, _ := get("/flight?category=tx&min_dur=1ms&name=x&limit=5"); code != 200 {
		t.Fatalf("all-params = %d, want 200", code)
	}
}

// TestHandlerBadRequestJSON pins the malformed-query contract: every
// rejected parameter — including negative min_dur and a limit that
// overflows int — yields a 400 with a parseable {"error": ...} body.
func TestHandlerBadRequestJSON(t *testing.T) {
	rec := NewRecorder(4)
	for _, url := range []string{
		"/flight?category=nope",
		"/flight?min_dur=xyz",
		"/flight?min_dur=-5ms",
		"/flight?limit=0",
		"/flight?limit=-1",
		"/flight?limit=99999999999999999999", // overflows int64 → Atoi error
		"/flight?limit=1000001",              // beyond the browse cap
	} {
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		Handler(rec).ServeHTTP(w, req)
		if w.Code != 400 {
			t.Errorf("GET %s = %d, want 400", url, w.Code)
			continue
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q", url, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Errorf("GET %s body = %q, want JSON error", url, w.Body.String())
		}
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	rec := NewRecorder(16)
	base := time.Now()
	sec := rec.StartAt(CatSession, "section", 0, base)
	secID := sec.ID
	tx := rec.StartAt(CatTx, "tx", secID, base.Add(10*time.Microsecond))
	txID := tx.ID
	tx.SetInt("begin_op", 1).SetInt("end_op", 8).
		FinishAt(base.Add(100 * time.Microsecond))
	sec.SetInt("ops", 10).SetTID(1).FinishAt(base.Add(120 * time.Microsecond))
	rec.StartAt(CatChecker, "order-violation", txID, base.Add(40*time.Microsecond)).
		SetErr(true).SetInt("op_index", 5).
		FinishAt(base.Add(41 * time.Microsecond))

	var buf strings.Builder
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadChrome(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(tr.TraceEvents))
	}
	byName := map[string]ChromeEvent{}
	for _, e := range tr.TraceEvents {
		byName[e.Name] = e
		if e.Ph != "X" {
			t.Fatalf("ph = %q, want X", e.Ph)
		}
	}
	// Export is rebased: the earliest span starts at ts 0.
	if byName["section"].TS != 0 {
		t.Fatalf("section ts = %v, want 0", byName["section"].TS)
	}
	if byName["tx"].Args["parent_span_id"] != float64(secID) {
		t.Fatalf("tx parent = %v, want %d", byName["tx"].Args["parent_span_id"], secID)
	}
	cv := byName["order-violation"]
	if cv.Cat != "checker" || cv.Args["parent_span_id"] != float64(txID) ||
		cv.Args["error"] != true || cv.Args["op_index"] != float64(5) {
		t.Fatalf("checker event = %+v", cv)
	}

	var gantt strings.Builder
	if err := WriteTimeline(&gantt, tr, 40, ""); err != nil {
		t.Fatal(err)
	}
	out := gantt.String()
	if !strings.Contains(out, "3 spans") ||
		!strings.Contains(out, "checker/order-violation") ||
		!strings.Contains(out, "!") {
		t.Fatalf("timeline output:\n%s", out)
	}
	var filtered strings.Builder
	if err := WriteTimeline(&filtered, tr, 40, "tx"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filtered.String(), "1 spans") {
		t.Fatalf("filtered timeline:\n%s", filtered.String())
	}
}

func TestWriteTimelineEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteTimeline(&b, ChromeTrace{}, 40, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no spans") {
		t.Fatalf("empty timeline = %q", b.String())
	}
}
