package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// spanJSON is the browse representation of a recorded span.
type spanJSON struct {
	ID       uint64         `json:"id"`
	Parent   uint64         `json:"parent,omitempty"`
	Category string         `json:"category"`
	Name     string         `json:"name"`
	TID      int            `json:"tid"`
	Start    time.Time      `json:"start"`
	DurNS    int64          `json:"dur_ns"`
	Err      bool           `json:"err,omitempty"`
	Dropped  uint8          `json:"dropped_attrs,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []eventJSON    `json:"events,omitempty"`
}

type eventJSON struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

func toJSON(s *Span) spanJSON {
	out := spanJSON{
		ID:       s.ID,
		Parent:   s.Parent,
		Category: s.Category.String(),
		Name:     s.Name,
		TID:      s.TID,
		Start:    s.Start,
		DurNS:    s.Dur().Nanoseconds(),
		Err:      s.Err,
		Dropped:  s.Dropped,
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, e := range s.Events() {
		out.Events = append(out.Events, eventJSON{At: e.At, Msg: e.Msg})
	}
	return out
}

// Handler serves the live span browse as JSON: the newest spans first,
// filtered by query parameters:
//
//	category  session|tx|checker|engine|campaign (default: all)
//	min_dur   Go duration, e.g. 1ms — drop shorter spans
//	err       1/true — only failed spans
//	name      substring match on the span name
//	limit     max spans returned (default 100)
//
// Mount it beside obs.Handler on the -obs-listen address.
func Handler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var f Filter
		q := r.URL.Query()
		if c := q.Get("category"); c != "" {
			cat, ok := ParseCategory(c)
			if !ok {
				http.Error(w, fmt.Sprintf("unknown category %q", c), http.StatusBadRequest)
				return
			}
			f.Category, f.HasCategory = cat, true
		}
		if d := q.Get("min_dur"); d != "" {
			dur, err := time.ParseDuration(d)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad min_dur: %v", err), http.StatusBadRequest)
				return
			}
			f.MinDur = dur
		}
		if e := q.Get("err"); e == "1" || e == "true" {
			f.ErrOnly = true
		}
		f.Name = q.Get("name")
		if l := q.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n <= 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", l), http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		spans := rec.Search(f)
		out := struct {
			Spans []spanJSON `json:"spans"`
		}{Spans: make([]spanJSON, len(spans))}
		for i := range spans {
			out.Spans[i] = toJSON(&spans[i])
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
