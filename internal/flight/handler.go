package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// spanJSON is the browse representation of a recorded span.
type spanJSON struct {
	ID       uint64         `json:"id"`
	Parent   uint64         `json:"parent,omitempty"`
	Category string         `json:"category"`
	Name     string         `json:"name"`
	TID      int            `json:"tid"`
	Start    time.Time      `json:"start"`
	DurNS    int64          `json:"dur_ns"`
	Err      bool           `json:"err,omitempty"`
	Dropped  uint8          `json:"dropped_attrs,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []eventJSON    `json:"events,omitempty"`
}

type eventJSON struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

func toJSON(s *Span) spanJSON {
	out := spanJSON{
		ID:       s.ID,
		Parent:   s.Parent,
		Category: s.Category.String(),
		Name:     s.Name,
		TID:      s.TID,
		Start:    s.Start,
		DurNS:    s.Dur().Nanoseconds(),
		Err:      s.Err,
		Dropped:  s.Dropped,
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, e := range s.Events() {
		out.Events = append(out.Events, eventJSON{At: e.At, Msg: e.Msg})
	}
	return out
}

// maxBrowseLimit caps the limit query parameter: the rings hold at most
// a few thousand spans, so anything beyond this is a malformed request,
// not a bigger browse.
const maxBrowseLimit = 100_000

// badRequest rejects a malformed query with a structured JSON error —
// machine clients (the collect fan-out, CI smoke scripts) parse the
// body, so even errors speak JSON.
func badRequest(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
}

// Handler serves the live span browse as JSON: the newest spans first,
// filtered by query parameters:
//
//	category  session|tx|checker|engine|campaign (default: all)
//	min_dur   Go duration, e.g. 1ms — drop shorter spans
//	err       1/true — only failed spans
//	name      substring match on the span name
//	limit     max spans returned (default 100, max 100000)
//
// Malformed parameters — an unknown category, a negative or unparseable
// min_dur, a limit that is negative, zero, overflowing or beyond the cap
// — are rejected with a 400 and a JSON {"error": ...} body rather than
// silently clamped.
//
// Mount it beside obs.Handler on the -obs-listen address.
func Handler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var f Filter
		q := r.URL.Query()
		if c := q.Get("category"); c != "" {
			cat, ok := ParseCategory(c)
			if !ok {
				badRequest(w, "unknown category %q", c)
				return
			}
			f.Category, f.HasCategory = cat, true
		}
		if d := q.Get("min_dur"); d != "" {
			dur, err := time.ParseDuration(d)
			if err != nil {
				badRequest(w, "bad min_dur %q: %v", d, err)
				return
			}
			if dur < 0 {
				badRequest(w, "bad min_dur %q: must not be negative", d)
				return
			}
			f.MinDur = dur
		}
		if e := q.Get("err"); e == "1" || e == "true" {
			f.ErrOnly = true
		}
		f.Name = q.Get("name")
		if l := q.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil {
				badRequest(w, "bad limit %q: %v", l, err)
				return
			}
			if n <= 0 || n > maxBrowseLimit {
				badRequest(w, "bad limit %q: want 1..%d", l, maxBrowseLimit)
				return
			}
			f.Limit = n
		}
		spans := rec.Search(f)
		out := struct {
			Spans []spanJSON `json:"spans"`
		}{Spans: make([]spanJSON, len(spans))}
		for i := range spans {
			out.Spans[i] = toJSON(&spans[i])
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
