package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// SpanRecord is the wire representation of a recorded span, served by
// the browse and search endpoints and decoded by the fleet-wide
// fan-out searcher (internal/flight/search).
type SpanRecord struct {
	ID       uint64         `json:"id"`
	Parent   uint64         `json:"parent,omitempty"`
	Category string         `json:"category"`
	Name     string         `json:"name"`
	TID      int            `json:"tid"`
	Start    time.Time      `json:"start"`
	DurNS    int64          `json:"dur_ns"`
	Err      bool           `json:"err,omitempty"`
	Dropped  uint8          `json:"dropped_attrs,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []EventRecord  `json:"events,omitempty"`
}

// EventRecord is the wire representation of one span point annotation.
type EventRecord struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

// Record converts a span into its wire representation.
func Record(s *Span) SpanRecord {
	out := SpanRecord{
		ID:       s.ID,
		Parent:   s.Parent,
		Category: s.Category.String(),
		Name:     s.Name,
		TID:      s.TID,
		Start:    s.Start,
		DurNS:    s.Dur().Nanoseconds(),
		Err:      s.Err,
		Dropped:  s.Dropped,
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, e := range s.Events() {
		out.Events = append(out.Events, EventRecord{At: e.At, Msg: e.Msg})
	}
	return out
}

// AttrString returns the record's attribute rendered the way Query
// matching renders it: integers in decimal, strings as-is, "" when the
// key is absent. JSON decoding turns integer attributes into float64s;
// this hides that asymmetry from consumers.
func (r SpanRecord) AttrString(key string) string {
	v, ok := r.Attrs[key]
	if !ok {
		return ""
	}
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	default:
		return fmt.Sprint(x)
	}
}

// SearchResponse is the JSON document the browse and search endpoints
// serve: matching spans, newest first.
type SearchResponse struct {
	Spans []SpanRecord `json:"spans"`
}

// maxBrowseLimit caps the limit query parameter: the rings hold at most
// a few thousand spans, so anything beyond this is a malformed request,
// not a bigger browse.
const maxBrowseLimit = 100_000

// badRequest rejects a malformed query with a structured JSON error —
// machine clients (the collect fan-out, CI smoke scripts) parse the
// body, so even errors speak JSON.
func badRequest(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
}

// ParseQuery builds a Query from URL query parameters, shared by the
// browse and search handlers so the two stay filter-identical. With
// timeWindow set it additionally accepts the search endpoint's
// since/until bounds. Errors are phrased for badRequest.
func ParseQuery(q url.Values, timeWindow bool) (Query, error) {
	var f Query
	if c := q.Get("category"); c != "" {
		cat, ok := ParseCategory(c)
		if !ok {
			return f, fmt.Errorf("unknown category %q", c)
		}
		f.Category, f.HasCategory = cat, true
	}
	if d := q.Get("min_dur"); d != "" {
		dur, err := time.ParseDuration(d)
		if err != nil {
			return f, fmt.Errorf("bad min_dur %q: %v", d, err)
		}
		if dur < 0 {
			return f, fmt.Errorf("bad min_dur %q: must not be negative", d)
		}
		f.MinDur = dur
	}
	if e := q.Get("err"); e == "1" || e == "true" {
		f.ErrOnly = true
	}
	f.Name = q.Get("name")
	if a := q.Get("attr"); a != "" {
		key, val, _ := strings.Cut(a, "=")
		if key == "" {
			return f, fmt.Errorf("bad attr %q: want key=value", a)
		}
		f.AttrKey, f.AttrVal = key, val
	}
	if timeWindow {
		for _, p := range []struct {
			name string
			dst  *time.Time
		}{{"since", &f.Since}, {"until", &f.Until}} {
			if v := q.Get(p.name); v != "" {
				t, err := time.Parse(time.RFC3339Nano, v)
				if err != nil {
					return f, fmt.Errorf("bad %s %q: want RFC 3339", p.name, v)
				}
				*p.dst = t
			}
		}
		if l := q.Get("last"); l != "" {
			d, err := time.ParseDuration(l)
			if err != nil || d <= 0 {
				return f, fmt.Errorf("bad last %q: want a positive duration", l)
			}
			f.Since = time.Now().Add(-d)
		}
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil {
			return f, fmt.Errorf("bad limit %q: %v", l, err)
		}
		if n <= 0 || n > maxBrowseLimit {
			return f, fmt.Errorf("bad limit %q: want 1..%d", l, maxBrowseLimit)
		}
		f.Limit = n
	}
	return f, nil
}

// serveSearch runs the query against the recorder and writes the
// response document.
func serveSearch(w http.ResponseWriter, rec *Recorder, f Query) {
	spans := rec.Search(f)
	out := SearchResponse{Spans: make([]SpanRecord, len(spans))}
	for i := range spans {
		out.Spans[i] = Record(&spans[i])
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// Handler serves the live span browse as JSON: the newest spans first,
// filtered by query parameters:
//
//	category  session|tx|checker|engine|campaign|rpc (default: all)
//	min_dur   Go duration, e.g. 1ms — drop shorter spans
//	err       1/true — only failed spans
//	name      substring match on the span name
//	attr      key=value — only spans carrying that annotation (integer
//	          values compare against their decimal rendering; a bare
//	          key matches any value)
//	limit     max spans returned (default 100, max 100000)
//
// Malformed parameters — an unknown category, a negative or unparseable
// min_dur, a limit that is negative, zero, overflowing or beyond the cap
// — are rejected with a 400 and a JSON {"error": ...} body rather than
// silently clamped.
//
// Mount it beside obs.Handler on the -obs-listen address.
func Handler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, err := ParseQuery(r.URL.Query(), false)
		if err != nil {
			badRequest(w, "%v", err)
			return
		}
		serveSearch(w, rec, f)
	})
}

// SearchPath is the span search route, mounted beside the /flight
// browse on every -obs-listen endpoint.
const SearchPath = "/flight/v1/search"

// SearchHandler serves GET /flight/v1/search: the browse filters plus a
// time window —
//
//	since  RFC 3339 timestamp — only spans starting at/after it
//	until  RFC 3339 timestamp — only spans starting before it
//	last   Go duration — shorthand for since=now-last
//
// Responses and error bodies are shaped exactly like the browse
// endpoint's, so fan-out clients need one decoder for both.
func SearchHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, err := ParseQuery(r.URL.Query(), true)
		if err != nil {
			badRequest(w, "%v", err)
			return
		}
		serveSearch(w, rec, f)
	})
}
