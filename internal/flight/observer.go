package flight

import (
	"time"

	"pmtest/internal/obs"
)

// EngineObserver adapts a Recorder to the obs.Observer seam: each
// checked trace becomes one engine span (reconstructed retroactively
// from the durations the event carries, parented under the section span
// the trace rode in with), and each diagnostic becomes a checker child
// span. A checker finding anchored inside a transaction's op range is
// parented under that transaction's span, which is what lets the
// timeline answer "which tx did this FAIL come from".
//
// Returns nil when rec is nil, so obs.Multi drops it and the engine
// keeps its no-observer fast path.
func EngineObserver(rec *Recorder) obs.Observer {
	if rec == nil {
		return nil
	}
	return engineObserver{rec}
}

type engineObserver struct {
	rec *Recorder
}

// TraceSubmitted implements obs.Observer. Submission is a point on the
// section span's own timeline, already covered by it; no span here.
func (engineObserver) TraceSubmitted(id, thread, ops int) {}

// TraceDequeued implements obs.Observer. Queue wait is carried as an
// attribute on the engine span instead of its own span.
func (engineObserver) TraceDequeued(id, worker int, wait time.Duration) {}

// TraceChecked implements obs.Observer: emits the engine span for the
// check and one checker child span per diagnostic.
func (o engineObserver) TraceChecked(ev obs.TraceEvent) {
	end := time.Now()
	start := end.Add(-ev.CheckDur)
	// remote tags a node-side span with the originating client's
	// correlation identity (no-op for in-process traces), so a fleet
	// span search by remote_session_id finds every node-side span a
	// client session caused.
	remote := func(s *Span) *Span {
		if ev.RemoteSession != "" {
			s.SetStr("remote_session_id", ev.RemoteSession).
				SetInt("remote_span_id", int64(ev.RemoteSpan))
		}
		return s
	}
	es := remote(o.rec.StartAt(CatEngine, "check", ev.SpanID, start)).
		SetTID(ev.Thread).
		SetInt("trace_id", int64(ev.TraceID)).
		SetInt("worker", int64(ev.Worker)).
		SetInt("ops", int64(ev.Ops)).
		SetInt("tracked_ops", int64(ev.TrackedOps)).
		SetInt("queue_wait_ns", ev.QueueWait.Nanoseconds()).
		SetErr(ev.Fails > 0)
	if ev.Fails > 0 {
		es.SetInt("fails", int64(ev.Fails))
	}
	if ev.Warns > 0 {
		es.SetInt("warns", int64(ev.Warns))
	}
	engineID := es.ID
	es.FinishAt(end)

	// Per-stripe check spans: when the sharded checker timed its stripes,
	// each stripe's apply time becomes a child span under the check span.
	// The stripes ran concurrently, so each span is drawn from the check's
	// start for its own duration — the visual answer to "which stripe was
	// the straggler".
	for i, d := range ev.StripeDurs {
		ss := remote(o.rec.StartAt(CatEngine, "stripe", engineID, start)).
			SetTID(ev.Thread).
			SetInt("trace_id", int64(ev.TraceID)).
			SetInt("stripe", int64(i))
		ss.FinishAt(start.Add(d))
	}

	for _, d := range ev.Diags {
		// Parent under the innermost transaction covering the finding's
		// op index; ranges can nest after a section cut resets an open
		// tx's begin to 0, so prefer the latest-starting match.
		parent := engineID
		best := -1
		for _, r := range ev.TxSpans {
			if r.Contains(d.OpIndex) && r.Begin > best {
				best = r.Begin
				parent = r.SpanID
			}
		}
		cs := remote(o.rec.StartAt(CatChecker, d.Code, parent, start)).
			SetTID(ev.Thread).
			SetInt("trace_id", int64(ev.TraceID)).
			SetInt("op_index", int64(d.OpIndex)).
			SetStr("severity", d.Severity).
			SetStr("message", d.Message).
			SetErr(d.Severity == "FAIL")
		if d.Site != "" && d.Site != "?" {
			cs.SetStr("site", d.Site)
		}
		cs.FinishAt(end)
	}
}
