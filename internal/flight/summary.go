package flight

import "pmtest/internal/obs"

// Summarize condenses the recorder's rings into the mergeable
// per-category tallies the /obs/v1/snapshot document carries: resident
// span and error counts plus the longest resident span per category.
// Wire it into obs.SnapshotSource.FlightFn. Nil recorder, nil summary.
func Summarize(r *Recorder) *obs.FlightSummary {
	if r == nil {
		return nil
	}
	out := &obs.FlightSummary{}
	for cat := Category(0); cat < numCategories; cat++ {
		cs := obs.FlightCategorySummary{Category: cat.String()}
		r.rings[cat].Do(func(s Span) bool {
			cs.Spans++
			if s.Err {
				cs.Errs++
			}
			if d := s.Dur(); d > cs.MaxDur {
				cs.MaxDur = d
			}
			return true
		})
		if cs.Spans > 0 {
			out.Categories = append(out.Categories, cs)
		}
	}
	return out
}
