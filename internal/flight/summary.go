package flight

import "pmtest/internal/obs"

// Summarize condenses the recorder's rings into the mergeable
// per-category tallies the /obs/v1/snapshot document carries: resident
// span and error counts, the longest resident span, and a duration
// histogram over the resident spans (the fixed obs.Histogram buckets,
// so fleet-level merges are bucket-exact and pmtop can show fleet p99
// span durations per category). Wire it into
// obs.SnapshotSource.FlightFn. Nil recorder, nil summary.
func Summarize(r *Recorder) *obs.FlightSummary {
	if r == nil {
		return nil
	}
	out := &obs.FlightSummary{}
	for cat := Category(0); cat < numCategories; cat++ {
		cs := obs.FlightCategorySummary{Category: cat.String()}
		var hist obs.Histogram
		r.rings[cat].Do(func(s Span) bool {
			cs.Spans++
			if s.Err {
				cs.Errs++
			}
			d := s.Dur()
			if d > cs.MaxDur {
				cs.MaxDur = d
			}
			hist.Observe(d)
			return true
		})
		if cs.Spans > 0 {
			cs.Dur = hist.Snapshot()
			out.Categories = append(out.Categories, cs)
		}
	}
	return out
}
