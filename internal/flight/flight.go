// Package flight is the span-level flight recorder of the PMTest
// reproduction: a causal timeline layered under the obs.Observer seam.
//
// Where internal/obs answers "how fast, how many", flight answers "what
// happened, in what order, and why did this checker fire": one span per
// recorded trace section, per library transaction, per engine check, per
// checker finding and per fault-injection schedule, each carrying start
// and finish timestamps, a parent span, and a bounded set of key/value
// annotations. Spans live in per-category overwrite-oldest rings
// (obs.Ring), so recording is always-on-safe: bounded memory, pooled
// span objects, no allocation on the clean checking path.
//
// Two export surfaces read the rings: Handler serves a newest-first
// browse with category/duration/error filters as JSON (mounted beside
// obs.Handler on -obs-listen), and WriteChrome emits Chrome trace-event
// JSON loadable in about://tracing or Perfetto; `pmtrace timeline`
// renders the same export as a text gantt.
package flight

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmtest/internal/obs"
)

// Category buckets spans by origin; each category has its own ring, so
// a flood of one kind (engine checks) cannot evict the rarer, more
// valuable kinds (checker findings, campaign schedules).
type Category uint8

// Span categories.
const (
	// CatSession: one span per recorded trace section (SendTrace cut).
	CatSession Category = iota
	// CatTx: one span per library transaction (pmdk/mnemosyne shims).
	CatTx
	// CatChecker: one span per checker finding (FAIL/WARN/INFO).
	CatChecker
	// CatEngine: one span per engine check (dequeue→checked).
	CatEngine
	// CatCampaign: one span per fault-injection schedule.
	CatCampaign
	// CatRPC: one span per distributed-checking RPC attempt, retry
	// burst, or failover (internal/dist).
	CatRPC

	numCategories
)

var categoryNames = [numCategories]string{"session", "tx", "checker", "engine", "campaign", "rpc"}

// String names the category as used in filters and exports.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// ParseCategory maps a category name back to its value.
func ParseCategory(s string) (Category, bool) {
	for i, n := range categoryNames {
		if n == s {
			return Category(i), true
		}
	}
	return 0, false
}

// maxAttrs and maxEvents bound the annotations a span can carry; the
// fixed arrays keep a Span copyable into its ring without allocation.
// Excess annotations are counted in Dropped rather than stored.
const (
	maxAttrs  = 12
	maxEvents = 4
)

// Attr is one key/value annotation: either an integer or a string.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Value returns the attribute's value as written.
func (a Attr) Value() any {
	if a.IsInt {
		return a.Int
	}
	return a.Str
}

// Event is one timestamped point annotation inside a span.
type Event struct {
	At  time.Time
	Msg string
}

// Span is one timed operation in the recorder. Spans are created with
// Recorder.Start, annotated with the Set methods and sealed with Finish,
// which copies the value into its category ring and recycles the
// object. All methods are nil-receiver-safe, so instrumentation never
// needs a recorder-enabled branch.
type Span struct {
	ID       uint64
	Parent   uint64 // 0 = root
	Category Category
	Name     string
	// TID is the timeline lane (program thread for section/tx/engine
	// spans); exports group by it.
	TID     int
	Start   time.Time
	End     time.Time
	Err     bool
	Dropped uint8 // annotations beyond the fixed capacity

	nAttrs  uint8
	nEvents uint8
	attrs   [maxAttrs]Attr
	events  [maxEvents]Event

	rec *Recorder // owning recorder while open; nil once sealed
}

// Attrs returns the span's annotations (aliasing internal storage).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs[:s.nAttrs]
}

// Attr returns the value of the named annotation, or nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	for i := uint8(0); i < s.nAttrs; i++ {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value()
		}
	}
	return nil
}

// Events returns the span's point annotations (aliasing internal
// storage).
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events[:s.nEvents]
}

// Dur returns the span's duration (End may be zero while open).
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	return s.End.Sub(s.Start)
}

// SetInt adds an integer annotation.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	if s.nAttrs == maxAttrs {
		s.Dropped++
		return s
	}
	s.attrs[s.nAttrs] = Attr{Key: key, Int: v, IsInt: true}
	s.nAttrs++
	return s
}

// SetStr adds a string annotation.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	if s.nAttrs == maxAttrs {
		s.Dropped++
		return s
	}
	s.attrs[s.nAttrs] = Attr{Key: key, Str: v}
	s.nAttrs++
	return s
}

// SetErr marks the span as failed when failed is true.
func (s *Span) SetErr(failed bool) *Span {
	if s == nil {
		return nil
	}
	s.Err = s.Err || failed
	return s
}

// SetTID assigns the span's timeline lane.
func (s *Span) SetTID(tid int) *Span {
	if s == nil {
		return nil
	}
	s.TID = tid
	return s
}

// AddEvent appends a timestamped point annotation.
func (s *Span) AddEvent(msg string) *Span {
	if s == nil {
		return nil
	}
	if s.nEvents == maxEvents {
		s.Dropped++
		return s
	}
	s.events[s.nEvents] = Event{At: time.Now(), Msg: msg}
	s.nEvents++
	return s
}

// Finish seals the span now.
func (s *Span) Finish() { s.FinishAt(time.Now()) }

// FinishAt seals the span at the given instant: the value is copied
// into its category ring and the object returns to the recorder's pool.
// The span must not be used afterwards.
func (s *Span) FinishAt(at time.Time) {
	if s == nil || s.rec == nil {
		return
	}
	s.End = at
	rec := s.rec
	s.rec = nil
	rec.rings[s.Category].Add(*s)
	rec.pool.Put(s)
}

// Recorder is the span store: an atomic ID source, a span pool and one
// overwrite-oldest ring per category. Safe for concurrent use.
type Recorder struct {
	nextID atomic.Uint64
	pool   sync.Pool
	rings  [numCategories]*obs.Ring[Span]
}

// NewRecorder returns a recorder keeping the last perCategory spans in
// each category ring (default 256 if perCategory <= 0).
func NewRecorder(perCategory int) *Recorder {
	if perCategory <= 0 {
		perCategory = 256
	}
	r := &Recorder{pool: sync.Pool{New: func() any { return new(Span) }}}
	for i := range r.rings {
		r.rings[i] = obs.NewRing[Span](perCategory)
	}
	return r
}

// Start opens a span now. A nil recorder returns a nil span, on which
// every method is a no-op.
func (r *Recorder) Start(cat Category, name string, parent uint64) *Span {
	return r.StartAt(cat, name, parent, time.Now())
}

// StartAt opens a span with an explicit start instant — used by
// observers that reconstruct a span after the fact (the engine reports
// queue wait and check duration only once checking completes).
func (r *Recorder) StartAt(cat Category, name string, parent uint64, at time.Time) *Span {
	if r == nil {
		return nil
	}
	s := r.pool.Get().(*Span)
	*s = Span{
		ID:       r.nextID.Add(1),
		Parent:   parent,
		Category: cat,
		Name:     name,
		Start:    at,
		rec:      r,
	}
	return s
}

// Len returns the number of recorded (finished) spans per category.
func (r *Recorder) Len(cat Category) int {
	if r == nil || cat >= numCategories {
		return 0
	}
	return r.rings[cat].Len()
}

// Query selects spans for Search. The zero value matches everything.
// It is the one filter vocabulary of the span query plane: the local
// /flight browse, the /flight/v1/search endpoint and the fleet-wide
// fan-out searcher (internal/flight/search) all speak it.
type Query struct {
	// Category restricts to one category when HasCategory is set.
	Category    Category
	HasCategory bool
	// MinDur drops spans shorter than this.
	MinDur time.Duration
	// ErrOnly keeps only failed spans.
	ErrOnly bool
	// Name keeps spans whose name contains this substring.
	Name string
	// Since/Until bound the span start time (zero = unbounded). Since is
	// inclusive, Until exclusive.
	Since time.Time
	Until time.Time
	// AttrKey/AttrVal keep spans carrying an annotation with this exact
	// key whose formatted value equals AttrVal (integer attributes
	// compare against their decimal rendering). AttrVal "" with a
	// non-empty AttrKey matches any span carrying the key.
	AttrKey string
	AttrVal string
	// Limit caps the result (0 = 100).
	Limit int
}

// Filter is the historical name of Query, kept as an alias.
type Filter = Query

func (f *Query) match(s *Span) bool {
	if f.MinDur > 0 && s.Dur() < f.MinDur {
		return false
	}
	if f.ErrOnly && !s.Err {
		return false
	}
	if f.Name != "" && !strings.Contains(s.Name, f.Name) {
		return false
	}
	if !f.Since.IsZero() && s.Start.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && !s.Start.Before(f.Until) {
		return false
	}
	if f.AttrKey != "" && !matchAttr(s, f.AttrKey, f.AttrVal) {
		return false
	}
	return true
}

// matchAttr reports whether the span carries attribute key with the
// given formatted value ("" matches any value).
func matchAttr(s *Span, key, val string) bool {
	for i := uint8(0); i < s.nAttrs; i++ {
		a := &s.attrs[i]
		if a.Key != key {
			continue
		}
		if val == "" {
			return true
		}
		if a.IsInt {
			if strconv.FormatInt(a.Int, 10) == val {
				return true
			}
		} else if a.Str == val {
			return true
		}
	}
	return false
}

// Search returns the newest matching spans in one total order (newest
// start first), walking the selected category rings in place (no ring
// snapshot copy). Each ring already iterates newest-first, so per-ring
// collection stops at the limit and the rings are then merged by start
// time — the result is the same total order a single ring holding every
// span would produce.
func (r *Recorder) Search(f Query) []Span {
	if r == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	var perRing [numCategories][]Span
	scan := func(cat Category) {
		n := 0
		r.rings[cat].Do(func(s Span) bool {
			if f.match(&s) {
				perRing[cat] = append(perRing[cat], s)
				n++
			}
			return n < limit
		})
	}
	if f.HasCategory {
		if f.Category < numCategories {
			scan(f.Category)
		}
	} else {
		for cat := Category(0); cat < numCategories; cat++ {
			scan(cat)
		}
	}
	return mergeNewest(perRing[:], limit)
}

// mergeNewest k-way merges per-ring newest-first slices into one
// newest-first result capped at limit. Ties on start time break by
// span ID (higher = newer), keeping the order deterministic even for
// spans stamped in the same clock tick.
func mergeNewest(rings [][]Span, limit int) []Span {
	var out []Span
	for len(out) < limit {
		best := -1
		for i, r := range rings {
			if len(r) == 0 {
				continue
			}
			if best < 0 || newerSpan(&r[0], &rings[best][0]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, rings[best][0])
		rings[best] = rings[best][1:]
	}
	return out
}

// newerSpan orders spans newest-first: later start wins, span ID breaks
// ties.
func newerSpan(a, b *Span) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.After(b.Start)
	}
	return a.ID > b.ID
}

// Export returns every recorded span across all categories, ordered by
// start time — the input WriteChrome expects.
func (r *Recorder) Export() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for _, ring := range r.rings {
		out = append(out, ring.Snapshot()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
