package flight

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// TestQueryTimeWindow pins the window semantics: Since is inclusive,
// Until exclusive, both on the span's Start.
func TestQueryTimeWindow(t *testing.T) {
	rec := NewRecorder(16)
	base := time.Now()
	for i := 0; i < 5; i++ {
		rec.StartAt(CatEngine, "check", 0, base.Add(time.Duration(i)*time.Millisecond)).
			SetInt("i", int64(i)).Finish()
	}
	cases := []struct {
		name string
		q    Query
		want []int64
	}{
		{"since-inclusive", Query{Since: base.Add(2 * time.Millisecond)}, []int64{4, 3, 2}},
		{"until-exclusive", Query{Until: base.Add(2 * time.Millisecond)}, []int64{1, 0}},
		{"window", Query{Since: base.Add(1 * time.Millisecond), Until: base.Add(4 * time.Millisecond)}, []int64{3, 2, 1}},
		{"empty-window", Query{Since: base.Add(10 * time.Millisecond)}, nil},
	}
	for _, tc := range cases {
		got := rec.Search(tc.q)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d spans, want %d", tc.name, len(got), len(tc.want))
		}
		for j, s := range got {
			if s.Attr("i") != tc.want[j] {
				t.Fatalf("%s[%d]: i = %v, want %d", tc.name, j, s.Attr("i"), tc.want[j])
			}
		}
	}
}

// TestQueryAttrFilter pins attribute matching: string equality, integer
// attributes against their decimal rendering, and a bare key matching
// any value.
func TestQueryAttrFilter(t *testing.T) {
	rec := NewRecorder(16)
	rec.Start(CatRPC, "section", 0).SetStr("session", "pmtest-1").SetInt("seq", 3).Finish()
	rec.Start(CatRPC, "section", 0).SetStr("session", "pmtest-2").SetInt("seq", 4).Finish()
	rec.Start(CatRPC, "failover", 0).SetStr("from", "a").Finish()

	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"string-eq", Query{AttrKey: "session", AttrVal: "pmtest-1"}, 1},
		{"string-miss", Query{AttrKey: "session", AttrVal: "pmtest-9"}, 0},
		{"int-decimal", Query{AttrKey: "seq", AttrVal: "4"}, 1},
		{"bare-key", Query{AttrKey: "session"}, 2},
		{"absent-key", Query{AttrKey: "zone"}, 0},
	}
	for _, tc := range cases {
		if got := rec.Search(tc.q); len(got) != tc.want {
			t.Fatalf("%s: %d spans, want %d", tc.name, len(got), tc.want)
		}
	}
}

// TestSearchTotalOrder proves the cross-ring merge is one newest-first
// total order — identical to what a single ring holding every span
// would return — and that the limit keeps the newest across rings, not
// per ring.
func TestSearchTotalOrder(t *testing.T) {
	rec := NewRecorder(32)
	base := time.Now()
	// Interleave spans across three category rings.
	for i := 0; i < 9; i++ {
		cat := []Category{CatSession, CatEngine, CatRPC}[i%3]
		rec.StartAt(cat, "s", 0, base.Add(time.Duration(i)*time.Millisecond)).
			SetInt("i", int64(i)).Finish()
	}
	got := rec.Search(Query{})
	if len(got) != 9 {
		t.Fatalf("spans = %d, want 9", len(got))
	}
	for j, s := range got {
		if want := int64(8 - j); s.Attr("i") != want {
			t.Fatalf("order[%d]: i = %v, want %d", j, s.Attr("i"), want)
		}
	}
	got = rec.Search(Query{Limit: 4})
	if len(got) != 4 {
		t.Fatalf("limited = %d spans, want 4", len(got))
	}
	for j, s := range got {
		if want := int64(8 - j); s.Attr("i") != want {
			t.Fatalf("limited[%d]: i = %v, want %d (limit must keep the global newest)", j, s.Attr("i"), want)
		}
	}
}

// TestSearchTieBreak pins the deterministic tie-break: equal start
// times order by descending span ID.
func TestSearchTieBreak(t *testing.T) {
	rec := NewRecorder(8)
	at := time.Now()
	a := rec.StartAt(CatSession, "a", 0, at)
	b := rec.StartAt(CatEngine, "b", 0, at)
	a.Finish()
	b.Finish()
	got := rec.Search(Query{})
	if len(got) != 2 || got[0].ID < got[1].ID {
		t.Fatalf("tie-break order = %v, %v (want descending IDs)", got[0].ID, got[1].ID)
	}
}

// TestSearchHandlerWindowAndParity drives GET /flight/v1/search: the
// time-window parameters work, and malformed queries answer the same
// 400 {"error": ...} JSON contract as the browse endpoint.
func TestSearchHandlerWindowAndParity(t *testing.T) {
	rec := NewRecorder(16)
	base := time.Now().Add(-time.Hour)
	rec.StartAt(CatEngine, "old", 0, base).Finish()
	rec.Start(CatEngine, "fresh", 0).SetStr("session", "pmtest-1").Finish()

	get := func(rawurl string) (int, string) {
		req := httptest.NewRequest("GET", rawurl, nil)
		w := httptest.NewRecorder()
		SearchHandler(rec).ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}
	decode := func(body string) []SpanRecord {
		var out SearchResponse
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return out.Spans
	}

	code, body := get("/flight/v1/search?last=30m")
	if code != 200 {
		t.Fatalf("last=30m = %d: %s", code, body)
	}
	if spans := decode(body); len(spans) != 1 || spans[0].Name != "fresh" {
		t.Fatalf("last=30m spans = %+v", spans)
	}

	until := url.QueryEscape(base.Add(time.Minute).Format(time.RFC3339Nano))
	code, body = get("/flight/v1/search?until=" + until)
	if code != 200 {
		t.Fatalf("until = %d: %s", code, body)
	}
	if spans := decode(body); len(spans) != 1 || spans[0].Name != "old" {
		t.Fatalf("until spans = %+v", spans)
	}

	code, body = get("/flight/v1/search?attr=session%3Dpmtest-1")
	if code != 200 {
		t.Fatalf("attr = %d: %s", code, body)
	}
	if spans := decode(body); len(spans) != 1 || spans[0].Name != "fresh" {
		t.Fatalf("attr spans = %+v", spans)
	}

	// Bad-query parity with the browse endpoint: 400 + JSON error body.
	for _, bad := range []string{
		"/flight/v1/search?since=yesterday",
		"/flight/v1/search?until=2pm",
		"/flight/v1/search?last=-5m",
		"/flight/v1/search?last=xyz",
		"/flight/v1/search?attr=%3Dvalue", // empty key
		"/flight/v1/search?category=nope",
		"/flight/v1/search?limit=0",
	} {
		req := httptest.NewRequest("GET", bad, nil)
		w := httptest.NewRecorder()
		SearchHandler(rec).ServeHTTP(w, req)
		if w.Code != 400 {
			t.Errorf("GET %s = %d, want 400", bad, w.Code)
			continue
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q", bad, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s body = %q, want JSON error", bad, w.Body.String())
		}
	}
}

// TestBrowseAttrFilter pins the satellite: the browse endpoint accepts
// the same attr parameter as search (but not the time window).
func TestBrowseAttrFilter(t *testing.T) {
	rec := NewRecorder(8)
	rec.Start(CatRPC, "handle-section", 0).SetStr("remote_session_id", "pmtest-1").Finish()
	rec.Start(CatRPC, "handle-section", 0).SetStr("remote_session_id", "pmtest-2").Finish()

	req := httptest.NewRequest("GET", "/flight?attr=remote_session_id%3Dpmtest-2", nil)
	w := httptest.NewRecorder()
	Handler(rec).ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("browse attr = %d: %s", w.Code, w.Body.String())
	}
	var out SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 1 || out.Spans[0].AttrString("remote_session_id") != "pmtest-2" {
		t.Fatalf("browse attr spans = %+v", out.Spans)
	}

	// Empty-key attr is malformed on browse too.
	req = httptest.NewRequest("GET", "/flight?attr=%3Dv", nil)
	w = httptest.NewRecorder()
	Handler(rec).ServeHTTP(w, req)
	if w.Code != 400 {
		t.Fatalf("browse bad attr = %d, want 400", w.Code)
	}
}
