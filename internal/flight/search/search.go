// Package search is the fleet-wide query plane for flight-recorder
// data: it fans a span query (or a per-session report lookup) out to N
// nodes concurrently, tolerates slow and dead nodes, and merges what
// arrived into one newest-first result with per-node provenance — the
// distributed-trace-search pattern (fan out, capture errors per node,
// merge partial results) applied to the /flight/v1/search and
// /reports/v1/query endpoints.
//
// cmd/pmtop's `spans` subcommand is the interactive consumer; `pmtrace
// -remote` uses SessionSpans plus Stitch to join a client session's
// spans with the node-side spans its sections caused.
package search

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"pmtest/internal/flight"
)

// DefaultTimeout bounds each node query when Options.Timeout is zero.
const DefaultTimeout = 2 * time.Second

// maxResponseBytes bounds one node's response; a document beyond it is
// a misbehaving node, reported as a per-node error.
const maxResponseBytes = 64 << 20

// defaultLimit caps the merged result when Params.Limit is zero,
// mirroring the node-side default.
const defaultLimit = 100

// Options configures a fan-out pass.
type Options struct {
	// Timeout bounds each node's query independently — one slow node
	// costs its own slot, never the whole pass (default DefaultTimeout).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject one); the default
	// is a plain &http.Client{} with per-request context deadlines.
	Client *http.Client
}

// Params mirrors the /flight/v1/search query parameters — the same
// filter vocabulary flight.Query speaks, in wire-friendly form.
type Params struct {
	Category string
	MinDur   time.Duration
	ErrOnly  bool
	Name     string
	Since    time.Time
	Until    time.Time
	AttrKey  string
	AttrVal  string
	// Limit caps the merged result (0 = 100); each node is asked for
	// the same limit, so the merge sees enough from every node to fill
	// the newest-first window regardless of how spans are distributed.
	Limit int
}

// Values renders the parameters as URL query values.
func (p Params) Values() url.Values {
	v := url.Values{}
	if p.Category != "" {
		v.Set("category", p.Category)
	}
	if p.MinDur > 0 {
		v.Set("min_dur", p.MinDur.String())
	}
	if p.ErrOnly {
		v.Set("err", "1")
	}
	if p.Name != "" {
		v.Set("name", p.Name)
	}
	if !p.Since.IsZero() {
		v.Set("since", p.Since.UTC().Format(time.RFC3339Nano))
	}
	if !p.Until.IsZero() {
		v.Set("until", p.Until.UTC().Format(time.RFC3339Nano))
	}
	if p.AttrKey != "" {
		v.Set("attr", p.AttrKey+"="+p.AttrVal)
	}
	if p.Limit > 0 {
		v.Set("limit", strconv.Itoa(p.Limit))
	}
	return v
}

// baseURL normalizes a node spec: "host:8081" → "http://host:8081";
// explicit http(s) URLs keep their scheme (and any path they carry is
// dropped — the well-known route is appended by the caller).
func baseURL(node string) string {
	u := node
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	rest := u[strings.Index(u, "://")+3:]
	if i := strings.Index(rest, "/"); i >= 0 {
		u = u[:len(u)-len(rest)+i]
	}
	return u
}

// SearchURL builds the full search endpoint URL for one node.
func SearchURL(node string, p Params) string {
	u := baseURL(node) + flight.SearchPath
	if q := p.Values().Encode(); q != "" {
		u += "?" + q
	}
	return u
}

// RemoteSpan is one span annotated with the node it came from.
type RemoteSpan struct {
	Source string `json:"source"`
	flight.SpanRecord
}

// SourceStatus is the per-node provenance row of a merged query: one
// entry per queried node, including the ones that failed, so a caller
// can always answer "which node is missing and why".
type SourceStatus struct {
	Source string `json:"source"`
	Err    string `json:"err,omitempty"`
	// Spans is how many items (spans, or reports for a report lookup)
	// this node contributed before the global limit was applied.
	Spans int `json:"spans"`
}

// Result is a merged fleet span query: newest-first spans from every
// node that answered, provenance for all of them, and Partial set when
// any node failed.
type Result struct {
	Partial bool           `json:"partial"`
	Sources []SourceStatus `json:"sources"`
	Spans   []RemoteSpan   `json:"spans"`
}

// fetchSpans retrieves and decodes one node's matching spans.
func fetchSpans(ctx context.Context, client *http.Client, node string, p Params) ([]flight.SpanRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, SearchURL(node, p), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error bodies speak JSON ({"error": ...}); surface the message.
		var e struct {
			Error string `json:"error"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("status %s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out flight.SearchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode spans: %w", err)
	}
	return out.Spans, nil
}

// outcome carries one node's result back from its fan-out goroutine.
type outcome[T any] struct {
	idx  int
	node string
	val  T
	err  error
}

// Search fans the query out to every node concurrently and merges the
// results newest-first under the global limit. Nodes that are down or
// slow past the per-node timeout become error rows in Sources and set
// Partial; they never fail the pass. Search only errors when nodes is
// empty.
func Search(ctx context.Context, nodes []string, p Params, opt Options) (Result, error) {
	fetched, err := fanOut(ctx, nodes, opt, func(ctx context.Context, client *http.Client, node string) ([]flight.SpanRecord, error) {
		return fetchSpans(ctx, client, node, p)
	})
	if err != nil {
		return Result{}, err
	}
	limit := p.Limit
	if limit <= 0 {
		limit = defaultLimit
	}
	return mergeResults(fetched, limit), nil
}

// fanOut runs fetch against every node concurrently with per-node
// timeouts and returns the outcomes in the caller's node order.
func fanOut[T any](ctx context.Context, nodes []string, opt Options,
	fetch func(context.Context, *http.Client, string) (T, error)) ([]outcome[T], error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("search: no nodes to query")
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	results := make(chan outcome[T], len(nodes))
	for i, node := range nodes {
		go func(i int, node string) {
			nodeCtx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			val, err := fetch(nodeCtx, client, node)
			results <- outcome[T]{idx: i, node: node, val: val, err: err}
		}(i, node)
	}
	fetched := make([]outcome[T], 0, len(nodes))
	for range nodes {
		fetched = append(fetched, <-results)
	}
	// Stable output: provenance rows follow the caller's node order, not
	// goroutine completion order.
	sort.Slice(fetched, func(i, j int) bool { return fetched[i].idx < fetched[j].idx })
	return fetched, nil
}

// mergeResults folds per-node outcomes into one Result: spans in one
// newest-first total order (start time, span ID, then node order break
// ties deterministically), capped at limit.
func mergeResults(fetched []outcome[[]flight.SpanRecord], limit int) Result {
	var out Result
	for _, r := range fetched {
		if r.err != nil {
			out.Partial = true
			out.Sources = append(out.Sources, SourceStatus{Source: r.node, Err: r.err.Error()})
			continue
		}
		out.Sources = append(out.Sources, SourceStatus{Source: r.node, Spans: len(r.val)})
		for _, s := range r.val {
			out.Spans = append(out.Spans, RemoteSpan{Source: r.node, SpanRecord: s})
		}
	}
	order := make(map[string]int, len(fetched))
	for i, r := range fetched {
		order[r.node] = i
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		a, b := &out.Spans[i], &out.Spans[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.After(b.Start)
		}
		if a.ID != b.ID {
			return a.ID > b.ID
		}
		return order[a.Source] < order[b.Source]
	})
	if len(out.Spans) > limit {
		out.Spans = out.Spans[:limit]
	}
	return out
}

// sessionSpanLimit is the per-node span budget of a SessionSpans fetch:
// stitching needs every span of one session, so the window is the ring
// capacity order of magnitude, not a browse page.
const sessionSpanLimit = 100_000

// SessionSpans fetches everything correlated to one session from the
// given nodes: client-side spans (attr session=<sid>) and node-side
// spans (attr remote_session_id=<sid>). Both queries run inside each
// node's fan-out slot, so one provenance row covers a node's whole
// contribution. The result is newest-first like Search.
func SessionSpans(ctx context.Context, nodes []string, sid string, opt Options) (Result, error) {
	fetched, err := fanOut(ctx, nodes, opt, func(ctx context.Context, client *http.Client, node string) ([]flight.SpanRecord, error) {
		var all []flight.SpanRecord
		seen := make(map[uint64]bool)
		for _, key := range []string{"session", "remote_session_id"} {
			spans, err := fetchSpans(ctx, client, node, Params{
				AttrKey: key, AttrVal: sid, Limit: sessionSpanLimit,
			})
			if err != nil {
				return nil, err
			}
			for _, s := range spans {
				if !seen[s.ID] {
					seen[s.ID] = true
					all = append(all, s)
				}
			}
		}
		return all, nil
	})
	if err != nil {
		return Result{}, err
	}
	return mergeResults(fetched, sessionSpanLimit*len(nodes)), nil
}
