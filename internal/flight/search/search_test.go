package search_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/dist"
	"pmtest/internal/flight"
	"pmtest/internal/flight/search"
)

// searchServer serves a recorder's /flight/v1/search over loopback HTTP
// and returns its host:port.
func searchServer(t *testing.T, rec *flight.Recorder) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle(flight.SearchPath, flight.SearchHandler(rec))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()
	return addr
}

// TestFanOutMergeNewestFirst proves the merged result is one
// newest-first total order across nodes, capped by the global limit.
func TestFanOutMergeNewestFirst(t *testing.T) {
	base := time.Now()
	recA := flight.NewRecorder(16)
	recB := flight.NewRecorder(16)
	// Interleave timestamps across the two nodes: A holds even offsets,
	// B odd ones.
	for i := 0; i < 8; i++ {
		rec := recA
		if i%2 == 1 {
			rec = recB
		}
		rec.StartAt(flight.CatEngine, "check", 0, base.Add(time.Duration(i)*time.Millisecond)).
			SetInt("i", int64(i)).Finish()
	}
	nodes := []string{searchServer(t, recA), searchServer(t, recB)}

	res, err := search.Search(context.Background(), nodes, search.Params{}, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial with both nodes up: %+v", res.Sources)
	}
	if len(res.Spans) != 8 {
		t.Fatalf("spans = %d, want 8", len(res.Spans))
	}
	for j, s := range res.Spans {
		if want := "7 6 5 4 3 2 1 0"[j*2 : j*2+1]; s.AttrString("i") != want {
			t.Fatalf("merge order[%d]: i = %s, want %s", j, s.AttrString("i"), want)
		}
	}

	// The limit keeps the globally newest spans, not a per-node page.
	res, err = search.Search(context.Background(), nodes, search.Params{Limit: 3}, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, s := range res.Spans {
		got = append(got, s.AttrString("i"))
	}
	if !reflect.DeepEqual(got, []string{"7", "6", "5"}) {
		t.Fatalf("limited merge = %v, want [7 6 5]", got)
	}
}

// TestFanOutDeadNodeDeterministic pins graceful degradation: a dead
// node becomes a provenance error row and sets Partial, the live node's
// spans still arrive, and repeated queries merge identically.
func TestFanOutDeadNodeDeterministic(t *testing.T) {
	rec := flight.NewRecorder(16)
	base := time.Now()
	for i := 0; i < 4; i++ {
		rec.StartAt(flight.CatRPC, "handle-section", 0, base.Add(time.Duration(i)*time.Millisecond)).
			SetInt("seq", int64(i)).Finish()
	}
	nodes := []string{deadAddr(t), searchServer(t, rec)}

	var first search.Result
	for round := 0; round < 3; round++ {
		res, err := search.Search(context.Background(), nodes, search.Params{}, search.Options{Timeout: time.Second})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !res.Partial {
			t.Fatalf("round %d: Partial = false with a dead node", round)
		}
		if len(res.Sources) != 2 {
			t.Fatalf("round %d: sources = %+v", round, res.Sources)
		}
		if res.Sources[0].Source != nodes[0] || res.Sources[0].Err == "" {
			t.Fatalf("round %d: dead node row = %+v", round, res.Sources[0])
		}
		if res.Sources[1].Err != "" || res.Sources[1].Spans != 4 {
			t.Fatalf("round %d: live node row = %+v", round, res.Sources[1])
		}
		if len(res.Spans) != 4 {
			t.Fatalf("round %d: spans = %d, want 4", round, len(res.Spans))
		}
		for j, s := range res.Spans {
			if want := int64(3 - j); s.AttrString("seq") != "3210"[j:j+1] {
				t.Fatalf("round %d: order[%d] seq = %s, want %d", round, j, s.AttrString("seq"), want)
			}
		}
		if round == 0 {
			first = res
		} else if !sameSpans(first, res) {
			t.Fatalf("round %d merged differently:\n%+v\nvs\n%+v", round, first.Spans, res.Spans)
		}
	}
}

// sameSpans compares two results by (source, id) sequence.
func sameSpans(a, b search.Result) bool {
	if len(a.Spans) != len(b.Spans) {
		return false
	}
	for i := range a.Spans {
		if a.Spans[i].Source != b.Spans[i].Source || a.Spans[i].ID != b.Spans[i].ID {
			return false
		}
	}
	return true
}

// TestFanOutBadQuerySurfaced proves a node's 400 JSON error body comes
// back as that node's provenance error, not a silent empty result.
func TestFanOutBadQuerySurfaced(t *testing.T) {
	rec := flight.NewRecorder(4)
	node := searchServer(t, rec)
	res, err := search.Search(context.Background(), []string{node},
		search.Params{Category: "bogus"}, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.Sources) != 1 || !strings.Contains(res.Sources[0].Err, "unknown category") {
		t.Fatalf("bad-query result = %+v", res)
	}
}

// TestFanOutNoNodes pins the one hard error: an empty node list.
func TestFanOutNoNodes(t *testing.T) {
	if _, err := search.Search(context.Background(), nil, search.Params{}, search.Options{}); err == nil {
		t.Fatal("no-nodes search did not error")
	}
}

// TestSessionSpansBothKeys proves SessionSpans unions the client-side
// (attr session) and node-side (attr remote_session_id) spans of one
// session and excludes other sessions' spans.
func TestSessionSpansBothKeys(t *testing.T) {
	rec := flight.NewRecorder(16)
	rec.Start(flight.CatSession, "section", 0).SetStr("session", "pmtest-1").Finish()
	rec.Start(flight.CatRPC, "handle-section", 0).SetStr("remote_session_id", "pmtest-1").Finish()
	rec.Start(flight.CatSession, "section", 0).SetStr("session", "pmtest-2").Finish()
	node := searchServer(t, rec)

	res, err := search.SessionSpans(context.Background(), []string{node}, "pmtest-1", search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != 2 {
		t.Fatalf("session spans = %d, want 2: %+v", len(res.Spans), res.Spans)
	}
	for _, s := range res.Spans {
		if s.AttrString("session") != "pmtest-1" && s.AttrString("remote_session_id") != "pmtest-1" {
			t.Fatalf("foreign span leaked: %+v", s)
		}
	}
}

// reportsServer serves a canned ReportsResponse at the dist route.
func reportsServer(t *testing.T, resp dist.ReportsResponse) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc(dist.PathReports, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestReportsFanOutDedup proves the per-session report lookup merges
// overlapping windows (the post-failover fleet state) by TraceID,
// sorted in section order, with dead nodes degrading to provenance.
func TestReportsFanOutDedup(t *testing.T) {
	// Node A held sections 0-2 before the client failed over; node B
	// re-checked from 2 onward, so TraceID 2 exists on both.
	a := reportsServer(t, dist.ReportsResponse{Session: "s", StartSeq: 0, Reports: []core.Report{
		{TraceID: 0, Ops: 4}, {TraceID: 1, Ops: 4}, {TraceID: 2, Ops: 6},
	}})
	b := reportsServer(t, dist.ReportsResponse{Session: "s", StartSeq: 2, Reports: []core.Report{
		{TraceID: 2, Ops: 6}, {TraceID: 3, Ops: 8},
	}})
	dead := deadAddr(t)

	res, err := search.Reports(context.Background(), []string{a, dead, b}, "s", search.Options{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("Partial = false with a dead node")
	}
	if len(res.Reports) != 4 {
		t.Fatalf("reports = %d, want 4 after dedup: %+v", len(res.Reports), res.Reports)
	}
	for i, r := range res.Reports {
		if r.TraceID != i {
			t.Fatalf("reports[%d].TraceID = %d, want %d", i, r.TraceID, i)
		}
	}
	if res.Sources[1].Err == "" {
		t.Fatalf("dead node row = %+v", res.Sources[1])
	}
	// B contributed only the one report A didn't already hold.
	if res.Sources[2].Spans != 1 {
		t.Fatalf("node B row = %+v", res.Sources[2])
	}
}
