package search_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pmtest"
	"pmtest/internal/dist"
	"pmtest/internal/flight"
	"pmtest/internal/flight/search"
	"pmtest/internal/obs"
)

// fleetNode is one checker node with its section-protocol server and an
// always-on span search server over the same recorder — killing the
// protocol leaves the flight data queryable, exactly like a pmtestd
// whose checker port died while its obs port survived.
type fleetNode struct {
	protoAddr  string
	searchAddr string
	proto      *httptest.Server
	rec        *flight.Recorder
}

func startFleetNode(t *testing.T) *fleetNode {
	t.Helper()
	rec := flight.NewRecorder(256)
	node := dist.NewNode(dist.NodeConfig{Metrics: obs.NewMetrics(16), Flight: rec})
	proto := httptest.NewServer(node)
	t.Cleanup(func() {
		proto.Close()
		node.Close()
	})
	mux := http.NewServeMux()
	mux.Handle(flight.SearchPath, flight.SearchHandler(rec))
	srch := httptest.NewServer(mux)
	t.Cleanup(srch.Close)
	return &fleetNode{
		protoAddr:  strings.TrimPrefix(proto.URL, "http://"),
		searchAddr: strings.TrimPrefix(srch.URL, "http://"),
		proto:      proto,
		rec:        rec,
	}
}

// goldenTimeline is the normalized cross-node story of the session
// below: two sections checked on the home node, a mid-stream kill, one
// failover, and the last two sections checked on the survivor — with
// the unflushed write in section 2 surfacing as a not-persisted FAIL on
// whichever node inherited it.
const goldenTimeline = `session <sid>: 4 sections, 1 failovers
section seq=0 ops=4 [client]
  rpc section route=node-1 [client]
  handle [node-1]
    check ops=4 tracked_ops=3 [node-1]
section seq=1 ops=5 [client]
  tx begin_op=0 end_op=3 [client]
  rpc section route=node-1 [client]
  handle [node-1]
    check ops=5 tracked_ops=5 [node-1]
section seq=2 ops=2 [client]
  rpc section route=node-2 [client]
  handle [node-2]
    check ops=2 tracked_ops=1 fails=1 ! [node-2]
      checker not-persisted op_index=1 severity=FAIL !
section seq=3 ops=4 [client]
  rpc section route=node-2 [client]
  handle [node-2]
    check ops=4 tracked_ops=3 [node-2]
failover !
`

// TestRemoteTimelineGolden is the acceptance test for pmtrace -remote:
// a two-node loopback session with a forced failover stitches into ONE
// causally-ordered timeline, byte-identical across runs after
// normalization. It proves the correlation identity survives the kill —
// every node-side span still joins to the client span that caused it.
func TestRemoteTimelineGolden(t *testing.T) {
	a, b := startFleetNode(t), startFleetNode(t)
	byProto := map[string]*fleetNode{a.protoAddr: a, b.protoAddr: b}

	clientRec := flight.NewRecorder(256)
	sess := pmtest.Init(pmtest.Config{
		Model:   pmtest.X86,
		Metrics: obs.NewMetrics(16),
		Flight:  clientRec,
		Remote: &pmtest.RemoteConfig{
			Nodes:      []string{a.protoAddr, b.protoAddr},
			RPCTimeout: 2 * time.Second,
			Attempts:   1, // first connection error fails over immediately
		},
	})
	th := sess.ThreadInit()
	th.Start()

	// Section 0: clean persist.
	th.Write(0x1000, 8)
	th.Flush(0x1000, 8)
	th.Fence()
	th.IsPersist(0x1000, 8)
	th.SendTrace()
	sess.GetResult() // drain so the section is acked before the next

	// Section 1: a transaction, so the client cuts a tx span.
	th.TxBegin()
	th.Write(0x2000, 16)
	th.Flush(0x2000, 16)
	th.TxEnd()
	th.Fence()
	th.SendTrace()
	sess.GetResult()

	// Kill the active node's protocol (its search server stays up).
	active := byProto[sess.RemoteNode()]
	if active == nil {
		t.Fatalf("RemoteNode() = %q, not a fleet node", sess.RemoteNode())
	}
	active.proto.CloseClientConnections()
	active.proto.Close()

	// Section 2: an unflushed write asserted persistent — the FAIL must
	// surface on the node the session failed over to.
	th.Write(0x3000, 8)
	th.IsPersist(0x3000, 8)
	th.SendTrace()
	sess.GetResult()

	// Section 3: clean again, same survivor node.
	th.Write(0x4000, 8)
	th.Flush(0x4000, 8)
	th.Fence()
	th.IsPersist(0x4000, 8)
	th.SendTrace()

	reports := sess.Exit()
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}

	// Stitch exactly what pmtrace -remote fetches: the client's spans
	// plus both nodes' — including the dead node's, via its obs port.
	fleet := []string{
		searchServer(t, clientRec), a.searchAddr, b.searchAddr,
	}
	res, err := search.SessionSpans(context.Background(), fleet, sess.SID(), search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial fetch: %+v", res.Sources)
	}
	tl := search.Stitch(sess.SID(), res.Spans)

	var buf strings.Builder
	search.WriteTimeline(&buf, tl, true)
	got := strings.ReplaceAll(buf.String(), sess.SID(), "<sid>")
	if got != goldenTimeline {
		t.Fatalf("timeline drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, goldenTimeline)
	}

	// The satellite assertion, explicit: every handle's remote_span_id
	// equals the ID of the client section span it is stitched under — on
	// both sides of the kill.
	sources := map[string]bool{}
	for _, sec := range tl.Sections {
		if sec.Section == nil || len(sec.Handles) == 0 {
			t.Fatalf("section seq=%d missing a side: %+v", sec.Seq, sec)
		}
		for _, h := range sec.Handles {
			if got := h.Span.AttrString("remote_span_id"); got != strconv.FormatUint(sec.Section.ID, 10) {
				t.Fatalf("seq=%d handle remote_span_id=%s, client span=%d", sec.Seq, got, sec.Section.ID)
			}
			sources[h.Span.Source] = true
		}
	}
	if len(sources) != 2 {
		t.Fatalf("handles came from %d nodes, want both: %v", len(sources), sources)
	}
}
