package search_test

import (
	"testing"
	"time"

	"pmtest/internal/flight"
	"pmtest/internal/flight/search"
)

// mkSpan builds a RemoteSpan for stitch unit tests.
func mkSpan(src string, id, parent uint64, cat, name string, at time.Time, attrs map[string]any) search.RemoteSpan {
	return search.RemoteSpan{
		Source: src,
		SpanRecord: flight.SpanRecord{
			ID: id, Parent: parent, Category: cat, Name: name,
			Start: at, Attrs: attrs,
		},
	}
}

// TestStitchSyntheticAndOrphans pins the degraded-evidence paths: a
// handle whose originating client span is gone joins a synthetic
// section by seq, and spans no rule can place land in Orphans instead
// of vanishing.
func TestStitchSyntheticAndOrphans(t *testing.T) {
	at := time.Unix(1000, 0)
	spans := []search.RemoteSpan{
		// A full section 0 on the client side.
		mkSpan("c", 10, 0, "session", "section", at,
			map[string]any{"session": "s", "ops": 4}),
		mkSpan("c", 11, 10, "rpc", "section", at.Add(time.Millisecond),
			map[string]any{"session": "s", "seq": 0, "route": "node:a"}),
		// Section 1's client span was overwritten in the ring; only the
		// node-side handle survived.
		mkSpan("n", 20, 0, "rpc", "handle-section", at.Add(2*time.Millisecond),
			map[string]any{"remote_session_id": "s", "seq": 1, "remote_span_id": 999}),
		mkSpan("n", 21, 20, "engine", "check", at.Add(3*time.Millisecond),
			map[string]any{"remote_session_id": "s", "ops": 4, "tracked_ops": 2}),
		// An engine span whose handle is gone entirely: orphan.
		mkSpan("n", 30, 777, "engine", "check", at.Add(4*time.Millisecond),
			map[string]any{"remote_session_id": "s", "ops": 1, "tracked_ops": 0}),
	}
	tl := search.Stitch("s", spans)

	if len(tl.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(tl.Sections))
	}
	if s0 := tl.Sections[0]; s0.Seq != 0 || s0.Section == nil || len(s0.Attempts) != 1 {
		t.Fatalf("section 0 = %+v", s0)
	}
	s1 := tl.Sections[1]
	if s1.Seq != 1 || s1.Section != nil {
		t.Fatalf("synthetic section = %+v", s1)
	}
	if len(s1.Handles) != 1 || len(s1.Handles[0].Checks) != 1 {
		t.Fatalf("synthetic section handles = %+v", s1.Handles)
	}
	if len(tl.Orphans) != 1 || tl.Orphans[0].ID != 30 {
		t.Fatalf("orphans = %+v", tl.Orphans)
	}
}

// TestStitchIgnoresForeignSessions proves span soup from other sessions
// on the same nodes never leaks into the timeline.
func TestStitchIgnoresForeignSessions(t *testing.T) {
	at := time.Unix(1000, 0)
	spans := []search.RemoteSpan{
		mkSpan("c", 10, 0, "session", "section", at,
			map[string]any{"session": "s", "ops": 2}),
		mkSpan("c", 50, 0, "session", "section", at,
			map[string]any{"session": "other", "ops": 9}),
		mkSpan("n", 60, 0, "rpc", "handle-section", at,
			map[string]any{"remote_session_id": "other", "seq": 0}),
	}
	tl := search.Stitch("s", spans)
	if len(tl.Sections) != 1 || len(tl.Orphans) != 0 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.Sections[0].Section.ID != 10 {
		t.Fatalf("wrong anchor: %+v", tl.Sections[0])
	}
}
