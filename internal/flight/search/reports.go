package search

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"pmtest/internal/core"
	"pmtest/internal/dist"
)

// ReportsResult is a merged per-session report lookup: every report any
// reachable node still holds for the session, deduplicated by section
// sequence and sorted in section order, with the same provenance shape
// as a span query.
type ReportsResult struct {
	Session string         `json:"session"`
	Partial bool           `json:"partial"`
	Sources []SourceStatus `json:"sources"`
	Reports []core.Report  `json:"reports"`
}

// reportsURL builds one node's /reports/v1/query URL.
func reportsURL(node, session string) string {
	return baseURL(node) + dist.PathReports + "?session=" + url.QueryEscape(session)
}

// fetchReports retrieves one node's report window for the session.
func fetchReports(ctx context.Context, client *http.Client, node, session string) (dist.ReportsResponse, error) {
	var out dist.ReportsResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, reportsURL(node, session), nil)
	if err != nil {
		return out, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return out, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&out); err != nil {
		return out, fmt.Errorf("decode reports: %w", err)
	}
	return out, nil
}

// Reports fans a per-session report lookup out to the given checker
// nodes (their section-protocol addresses, not the obs endpoints) and
// merges the windows. After a failover the fleet holds overlapping
// windows — the old node keeps its engine until the TTL reaps it — so
// reports are deduplicated by TraceID; checking is deterministic, so
// duplicates are identical and the first reachable holder wins. Dead
// nodes become error rows and set Partial, never a failure.
func Reports(ctx context.Context, nodes []string, session string, opt Options) (ReportsResult, error) {
	fetched, err := fanOut(ctx, nodes, opt, func(ctx context.Context, client *http.Client, node string) (dist.ReportsResponse, error) {
		return fetchReports(ctx, client, node, session)
	})
	if err != nil {
		return ReportsResult{}, err
	}
	out := ReportsResult{Session: session, Reports: []core.Report{}}
	seen := make(map[int]bool)
	for _, r := range fetched {
		if r.err != nil {
			out.Partial = true
			out.Sources = append(out.Sources, SourceStatus{Source: r.node, Err: r.err.Error()})
			continue
		}
		kept := 0
		for _, rep := range r.val.Reports {
			if !seen[rep.TraceID] {
				seen[rep.TraceID] = true
				out.Reports = append(out.Reports, rep)
				kept++
			}
		}
		out.Sources = append(out.Sources, SourceStatus{Source: r.node, Spans: kept})
	}
	sort.Slice(out.Reports, func(i, j int) bool { return out.Reports[i].TraceID < out.Reports[j].TraceID })
	return out, nil
}
