package search

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Timeline is one client session's causally-ordered, cross-node story:
// each section the client cut, the delivery attempt that shipped it,
// the node-side handling rpc it caused, and the engine/stripe/checker
// work under that — stitched from spans that lived in different
// processes, joined by the correlation identity the wire protocol
// propagates (session id + originating span id).
type Timeline struct {
	Session  string
	Sections []TimelineSection
	// Failovers are the session's rpc failover spans, in time order.
	Failovers []RemoteSpan
	// Orphans are spans correlated to the session that no join rule
	// could place (e.g. a handle whose originating client span was
	// overwritten in the client's ring). They are reported, not dropped —
	// a stitcher that silently discards evidence is lying about coverage.
	Orphans []RemoteSpan
}

// TimelineSection is one trace section's cross-process slice.
type TimelineSection struct {
	// Seq is the section's wire sequence number, -1 when no rpc span
	// survived to witness it.
	Seq int64
	// Section is the client-side section span; nil when only node-side
	// evidence of the section survived.
	Section *RemoteSpan
	// Txs are the client-side transaction spans cut inside the section.
	Txs []RemoteSpan
	// Attempts are the client's delivery rpc spans (one per section; its
	// route attribute records where the section finally landed).
	Attempts []RemoteSpan
	// Handles are the node-side handling rpc spans — more than one when
	// a lost ack forced an idempotent redelivery.
	Handles []Handle
}

// Handle is one node's handling of one section delivery.
type Handle struct {
	Span   RemoteSpan
	Checks []Check
}

// Check is one engine check with its stripe and checker children.
type Check struct {
	Span     RemoteSpan
	Stripes  []RemoteSpan
	Checkers []RemoteSpan
}

// spanKey identifies a span across sources: span IDs are per-recorder
// counters, unique only within one process's recorder.
type spanKey struct {
	src string
	id  uint64
}

// Stitch joins the session's spans (client- and node-side, as returned
// by SessionSpans) into one Timeline. Sections order by seq, unknowns
// last by start time.
func Stitch(sid string, spans []RemoteSpan) *Timeline {
	tl := &Timeline{Session: sid}

	// Work oldest-first so "first seen" tie-breaks are causal.
	ordered := append([]RemoteSpan(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := &ordered[i], &ordered[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.ID < b.ID
	})

	secByKey := make(map[spanKey]*TimelineSection)   // client section span → section
	secBySpanID := make(map[uint64]*TimelineSection) // client span ID → section (handle join)
	secBySeq := make(map[int64]*TimelineSection)     // wire seq → section (synthetic fallback)
	handleByKey := make(map[spanKey]*Handle)         // node rpc span → handle
	checkByKey := make(map[spanKey]*Check)           // node engine span → check
	var sections []*TimelineSection

	newSection := func(seq int64) *TimelineSection {
		s := &TimelineSection{Seq: seq}
		sections = append(sections, s)
		return s
	}
	setSeq := func(sec *TimelineSection, seq int64) {
		if sec.Seq < 0 && seq >= 0 {
			sec.Seq = seq
			if secBySeq[seq] == nil {
				secBySeq[seq] = sec
			}
		}
	}

	// Pass 1: client section spans anchor the timeline.
	for i := range ordered {
		s := &ordered[i]
		if s.Category == "session" && s.Name == "section" && s.AttrString("session") == sid {
			sec := newSection(-1)
			sec.Section = s
			secByKey[spanKey{s.Source, s.ID}] = sec
			secBySpanID[s.ID] = sec
		}
	}

	// Pass 2: client tx + delivery spans attach under their section;
	// node handle spans join across the process boundary by the
	// originating span ID (or by seq when the client span is gone).
	for i := range ordered {
		s := &ordered[i]
		switch {
		case s.Category == "tx" && s.AttrString("session") == sid:
			if sec := secByKey[spanKey{s.Source, s.Parent}]; sec != nil {
				sec.Txs = append(sec.Txs, *s)
			} else {
				tl.Orphans = append(tl.Orphans, *s)
			}
		case s.Category == "rpc" && s.Name == "section" && s.AttrString("session") == sid:
			sec := secByKey[spanKey{s.Source, s.Parent}]
			if sec == nil {
				tl.Orphans = append(tl.Orphans, *s)
				continue
			}
			sec.Attempts = append(sec.Attempts, *s)
			setSeq(sec, attrInt(s, "seq"))
		case s.Category == "rpc" && s.Name == "failover" && s.AttrString("session") == sid:
			tl.Failovers = append(tl.Failovers, *s)
		case s.Category == "rpc" && s.Name == "handle-section" && s.AttrString("remote_session_id") == sid:
			seq := attrInt(s, "seq")
			sec := secBySpanID[uint64(attrInt(s, "remote_span_id"))]
			if sec == nil && seq >= 0 {
				if sec = secBySeq[seq]; sec == nil {
					sec = newSection(seq)
					secBySeq[seq] = sec
				}
			}
			if sec == nil {
				tl.Orphans = append(tl.Orphans, *s)
				continue
			}
			setSeq(sec, seq)
			sec.Handles = append(sec.Handles, Handle{Span: *s})
			handleByKey[spanKey{s.Source, s.ID}] = &sec.Handles[len(sec.Handles)-1]
		}
	}

	// Pass 3: engine checks under their handling rpc.
	for i := range ordered {
		s := &ordered[i]
		if s.Category == "engine" && s.Name == "check" && s.AttrString("remote_session_id") == sid {
			h := handleByKey[spanKey{s.Source, s.Parent}]
			if h == nil {
				tl.Orphans = append(tl.Orphans, *s)
				continue
			}
			h.Checks = append(h.Checks, Check{Span: *s})
			checkByKey[spanKey{s.Source, s.ID}] = &h.Checks[len(h.Checks)-1]
		}
	}

	// Pass 4: stripes and checker findings under their check.
	for i := range ordered {
		s := &ordered[i]
		switch {
		case s.Category == "engine" && s.Name == "stripe" && s.AttrString("remote_session_id") == sid:
			if c := checkByKey[spanKey{s.Source, s.Parent}]; c != nil {
				c.Stripes = append(c.Stripes, *s)
			} else {
				tl.Orphans = append(tl.Orphans, *s)
			}
		case s.Category == "checker" && s.AttrString("remote_session_id") == sid:
			if c := checkByKey[spanKey{s.Source, s.Parent}]; c != nil {
				c.Checkers = append(c.Checkers, *s)
			} else {
				tl.Orphans = append(tl.Orphans, *s)
			}
		}
	}

	// Sections order by seq; seq-less sections trail in start order
	// (the oldest-first pass already put them in start order).
	sort.SliceStable(sections, func(i, j int) bool {
		a, b := sections[i], sections[j]
		if (a.Seq >= 0) != (b.Seq >= 0) {
			return a.Seq >= 0
		}
		return a.Seq < b.Seq
	})
	for _, s := range sections {
		tl.Sections = append(tl.Sections, *s)
	}
	return tl
}

// attrInt reads an integer attribute, -1 when absent or non-numeric.
func attrInt(s *RemoteSpan, key string) int64 {
	v := s.AttrString(key)
	if v == "" {
		return -1
	}
	var n int64
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return -1
	}
	return n
}

// WriteTimeline renders the timeline as indented text, one line per
// span, causal order. With normalize set, volatile detail (durations,
// addresses, span IDs) is replaced by stable labels — the client source
// becomes "client", node sources become "node-1", "node-2"... in order
// of first appearance — so the output is golden-test comparable across
// runs.
func WriteTimeline(w io.Writer, tl *Timeline, normalize bool) {
	labels := makeLabels(tl, normalize)
	fmt.Fprintf(w, "session %s: %d sections, %d failovers\n",
		tl.Session, len(tl.Sections), len(tl.Failovers))
	for i := range tl.Sections {
		sec := &tl.Sections[i]
		fmt.Fprintf(w, "section seq=%s%s%s\n",
			seqLabel(sec.Seq), spanAttrs(sectionSpan(sec), "ops"), labels.tag(sectionSpan(sec)))
		for j := range sec.Txs {
			fmt.Fprintf(w, "  tx%s%s\n", spanAttrs(&sec.Txs[j], "begin_op", "end_op"), labels.tag(&sec.Txs[j]))
		}
		for j := range sec.Attempts {
			a := &sec.Attempts[j]
			fmt.Fprintf(w, "  rpc section route=%s%s%s\n",
				labels.route(a.AttrString("route")), errMark(a), labels.tag(a))
		}
		for j := range sec.Handles {
			h := &sec.Handles[j]
			replay := ""
			if h.Span.AttrString("replay") != "" {
				replay = " replay"
			}
			fmt.Fprintf(w, "  handle%s%s%s\n", replay, errMark(&h.Span), labels.tag(&h.Span))
			for k := range h.Checks {
				c := &h.Checks[k]
				fmt.Fprintf(w, "    check%s%s%s\n",
					spanAttrs(&c.Span, "ops", "tracked_ops", "fails"), errMark(&c.Span), labels.tag(&c.Span))
				for _, st := range c.Stripes {
					fmt.Fprintf(w, "      stripe%s\n", spanAttrs(&st, "stripe"))
				}
				for _, ck := range c.Checkers {
					fmt.Fprintf(w, "      checker %s%s%s\n",
						ck.Name, spanAttrs(&ck, "op_index", "severity"), errMark(&ck))
				}
			}
		}
	}
	for i := range tl.Failovers {
		f := &tl.Failovers[i]
		if normalize {
			fmt.Fprintf(w, "failover%s\n", errMark(f))
		} else {
			fmt.Fprintf(w, "failover from=%s to=%s%s\n",
				f.AttrString("from"), f.AttrString("to"), errMark(f))
		}
	}
	if len(tl.Orphans) > 0 {
		fmt.Fprintf(w, "orphans: %d\n", len(tl.Orphans))
	}
}

func sectionSpan(sec *TimelineSection) *RemoteSpan { return sec.Section }

func seqLabel(seq int64) string {
	if seq < 0 {
		return "?"
	}
	return fmt.Sprintf("%d", seq)
}

// spanAttrs renders the listed attributes (skipping absent ones) as
// " k=v" pairs; a nil span renders nothing.
func spanAttrs(s *RemoteSpan, keys ...string) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, k := range keys {
		if v := s.AttrString(k); v != "" {
			fmt.Fprintf(&b, " %s=%s", k, v)
		}
	}
	return b.String()
}

func errMark(s *RemoteSpan) string {
	if s != nil && s.Err {
		return " !"
	}
	return ""
}

// sourceLabels maps volatile addresses to stable names for normalized
// output; in raw mode it echoes the addresses through.
type sourceLabels struct {
	normalize bool
	bySource  map[string]string // obs source → client / node-N
	byRoute   map[string]string // section-protocol addr → node-N
}

func makeLabels(tl *Timeline, normalize bool) *sourceLabels {
	l := &sourceLabels{normalize: normalize}
	if !normalize {
		return l
	}
	l.bySource = make(map[string]string)
	l.byRoute = make(map[string]string)
	// The client is whichever source owns the section spans.
	for i := range tl.Sections {
		if s := tl.Sections[i].Section; s != nil {
			l.bySource[s.Source] = "client"
		}
	}
	// Nodes label in section order (causal first-appearance); the route
	// address namespace (section-protocol ports) labels independently but
	// in the same causal order, so node-1 means the same machine in both.
	nodeN, routeN := 0, 0
	for i := range tl.Sections {
		sec := &tl.Sections[i]
		for j := range sec.Attempts {
			r := sec.Attempts[j].AttrString("route")
			if strings.HasPrefix(r, "node:") && l.byRoute[r] == "" {
				routeN++
				l.byRoute[r] = fmt.Sprintf("node-%d", routeN)
			}
		}
		for j := range sec.Handles {
			src := sec.Handles[j].Span.Source
			if l.bySource[src] == "" {
				nodeN++
				l.bySource[src] = fmt.Sprintf("node-%d", nodeN)
			}
		}
	}
	return l
}

// tag renders a span's source as a trailing " [label]".
func (l *sourceLabels) tag(s *RemoteSpan) string {
	if s == nil {
		return ""
	}
	if !l.normalize {
		return " [" + s.Source + "]"
	}
	if lbl := l.bySource[s.Source]; lbl != "" {
		return " [" + lbl + "]"
	}
	return " [?]"
}

// route renders a delivery route; normalized, node addresses become
// their stable labels while the degradation routes keep their names.
func (l *sourceLabels) route(r string) string {
	if !l.normalize || !strings.HasPrefix(r, "node:") {
		if r == "" {
			return "?"
		}
		return r
	}
	if lbl := l.byRoute[r]; lbl != "" {
		return lbl
	}
	return "node"
}
