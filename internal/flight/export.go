package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ChromeEvent is one Chrome trace-event ("X" complete events only).
// Timestamps and durations are microseconds, as the format requires;
// sub-microsecond precision is preserved in the fractional part.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the trace-event format, which
// both about://tracing and Perfetto load directly.
type ChromeTrace struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit,omitempty"`
}

// ToChrome converts recorded spans into a Chrome trace. Timestamps are
// rebased to the earliest span so the viewer opens at t=0. Span
// identity and parentage ride in args (span_id/parent_span_id), along
// with every annotation and the error flag.
func ToChrome(spans []Span) ChromeTrace {
	tr := ChromeTrace{TraceEvents: []ChromeEvent{}, DisplayUnit: "ns"}
	var base time.Time
	for i := range spans {
		if base.IsZero() || spans[i].Start.Before(base) {
			base = spans[i].Start
		}
	}
	for i := range spans {
		s := &spans[i]
		args := map[string]any{
			"span_id": s.ID,
		}
		if s.Parent != 0 {
			args["parent_span_id"] = s.Parent
		}
		if s.Err {
			args["error"] = true
		}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Value()
		}
		for j, e := range s.Events() {
			args[fmt.Sprintf("event_%d", j)] = fmt.Sprintf("+%v %s", e.At.Sub(s.Start), e.Msg)
		}
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: s.Name,
			Cat:  s.Category.String(),
			Ph:   "X",
			TS:   float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur().Nanoseconds()) / 1e3,
			PID:  1,
			TID:  s.TID,
			Args: args,
		})
	}
	return tr
}

// WriteChrome writes the recorder's spans as Chrome trace-event JSON.
func WriteChrome(w io.Writer, rec *Recorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ToChrome(rec.Export()))
}

// ReadChrome parses a Chrome trace-event JSON document produced by
// WriteChrome (object form with a traceEvents array).
func ReadChrome(r io.Reader) (ChromeTrace, error) {
	var tr ChromeTrace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return ChromeTrace{}, fmt.Errorf("flight: parse trace-event JSON: %w", err)
	}
	return tr, nil
}

// WriteTimeline renders a Chrome trace as a text gantt, one row per
// event ordered by start time, bars scaled to width columns. category
// filters to one span category when non-empty ("" = all).
func WriteTimeline(w io.Writer, tr ChromeTrace, width int, category string) error {
	if width <= 0 {
		width = 60
	}
	evs := make([]ChromeEvent, 0, len(tr.TraceEvents))
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if category != "" && e.Cat != category {
			continue
		}
		evs = append(evs, e)
	}
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "no spans")
		return err
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	t0, t1 := evs[0].TS, evs[0].TS+evs[0].Dur
	for _, e := range evs {
		if e.TS < t0 {
			t0 = e.TS
		}
		if end := e.TS + e.Dur; end > t1 {
			t1 = end
		}
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	labelW := 0
	for _, e := range evs {
		if l := len(label(e)); l > labelW {
			labelW = l
		}
	}
	if labelW > 32 {
		labelW = 32
	}
	total := time.Duration((t1 - t0) * 1e3)
	if _, err := fmt.Fprintf(w, "%d spans over %v\n", len(evs), total.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, e := range evs {
		l := label(e)
		if len(l) > labelW {
			l = l[:labelW]
		}
		lo := int(float64(width) * (e.TS - t0) / span)
		hi := int(float64(width) * (e.TS + e.Dur - t0) / span)
		if hi >= width {
			hi = width - 1
		}
		if hi < lo {
			hi = lo
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo+1) +
			strings.Repeat(" ", width-hi-1)
		mark := " "
		if err, _ := e.Args["error"].(bool); err {
			mark = "!"
		}
		dur := time.Duration(e.Dur * 1e3)
		if _, err := fmt.Fprintf(w, "%-*s %s|%s| %v\n", labelW, l, mark, bar, dur.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

func label(e ChromeEvent) string {
	return fmt.Sprintf("%s/%s t%d", e.Cat, e.Name, e.TID)
}
