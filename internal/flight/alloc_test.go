//go:build !race

package flight

// Allocation-regression ceilings for the recording hot path: with a
// recorder attached, a steady stream of clean sections must not add
// per-trace allocations on top of the checking engine's own budget.
// Spans are pooled and copied into preallocated rings, so span
// start/annotate/finish is allocation-free in steady state. Excluded
// under -race: the race runtime randomly drops sync.Pool items, which
// makes allocation counts meaningless.

import (
	"testing"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/trace"
)

// cleanSectionOps mirrors the clean transactional section of the core
// alloc tests: logged, written, flushed lines closed by one fence.
func cleanSectionOps(writes int) []trace.Op {
	ops := []trace.Op{{Kind: trace.KindTxCheckerStart}, {Kind: trace.KindTxBegin}}
	for i := 0; i < writes; i++ {
		addr := uint64(0x1000 + i*64)
		ops = append(ops,
			trace.Op{Kind: trace.KindTxAdd, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindWrite, Addr: addr, Size: 64},
			trace.Op{Kind: trace.KindFlush, Addr: addr, Size: 64})
	}
	return append(ops, trace.Op{Kind: trace.KindFence},
		trace.Op{Kind: trace.KindTxEnd}, trace.Op{Kind: trace.KindTxCheckerEnd})
}

// TestSpanRecordAllocCeiling pins the cost of one span cycle: start,
// annotate, finish into the ring. Steady state is 0 — pool hit, fixed
// attr arrays, preallocated ring slot.
func TestSpanRecordAllocCeiling(t *testing.T) {
	rec := NewRecorder(64)
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Start(CatTx, "tx", 1).
			SetTID(0).
			SetInt("begin_op", 1).
			SetInt("end_op", 99).
			Finish()
	})
	if allocs > 0 {
		t.Fatalf("span record cycle: %.1f allocs/op, want 0", allocs)
	}
}

// TestCheckedTraceAllocCeiling pins the full observed clean path: check
// a 256-write section carrying span identity, build the observer event,
// and emit the engine span through EngineObserver. The ceiling matches
// the engine's own CheckTrace ceiling — the flight recorder must ride
// along for free on clean traces.
func TestCheckedTraceAllocCeiling(t *testing.T) {
	rec := NewRecorder(64)
	ob := EngineObserver(rec)
	tr := &trace.Trace{
		Ops:     cleanSectionOps(256),
		SpanID:  1,
		TxSpans: []trace.SpanRange{{Begin: 1, End: 770, SpanID: 2}},
	}
	const ceiling = 64.0
	allocs := testing.AllocsPerRun(100, func() {
		rep := core.CheckTrace(core.X86{}, tr)
		if !rep.Clean() {
			t.Fatal("clean trace flagged")
		}
		ob.TraceChecked(core.ReportEvent(tr, rep, 0, time.Microsecond, time.Millisecond))
	})
	if allocs > ceiling {
		t.Fatalf("checked trace with recorder: %.1f allocs/op, ceiling %v", allocs, ceiling)
	}
}
