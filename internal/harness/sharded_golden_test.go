package harness

// Golden-equivalence tests for the sharded streaming checker: address
// striping, epoch barriers and epoch GC must never change a verdict.
// Every recorded whisper micro suite and every bad-trace fixture must
// produce a Report byte-identical to the serial single-state checker,
// with sharding on (shards=4) and with epoch GC layered on top.
//
// On mismatch the full serial/sharded renderings are written to the
// directory named by PMTEST_SHARDED_DIFF_DIR (when set) so CI can
// upload them as an artifact.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmtest/internal/core"
	"pmtest/internal/kfifo"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// shardedCfgs are the configurations the suite proves equivalent to the
// serial checker. GC at lag 1 retires as aggressively as the
// implementation allows, forcing at least one GC pass on any section
// with two or more fences.
var shardedCfgs = []core.Config{
	{Shards: 4},
	{Shards: 4, EpochGC: true},
	{Shards: 4, EpochGC: true, GCLag: 1},
}

func cfgName(cfg core.Config) string {
	name := fmt.Sprintf("shards%d", cfg.Shards)
	if cfg.EpochGC {
		name += "+gc"
		if cfg.GCLag != 0 {
			name += fmt.Sprintf("%d", cfg.GCLag)
		}
	}
	return name
}

// writeDiffArtifact dumps the two renderings for CI to collect. Errors
// are reported but non-fatal: the test failure itself carries the diff.
func writeDiffArtifact(t *testing.T, name, serial, sharded string) {
	dir := os.Getenv("PMTEST_SHARDED_DIFF_DIR")
	if dir == "" {
		return
	}
	slug := strings.NewReplacer("/", "_", " ", "_").Replace(name)
	body := fmt.Sprintf("case: %s\n--- serial ---\n%s--- sharded ---\n%s", name, serial, sharded)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("diff artifact: %v", err)
		return
	}
	path := filepath.Join(dir, slug+".diff.txt")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("diff artifact: %v", err)
		return
	}
	t.Logf("diff written to %s", path)
}

// checkShardedWays verifies tr reports identically under the serial
// checker and under every sharded configuration.
func checkShardedWays(t *testing.T, name string, rules core.RuleSet, tr *trace.Trace) {
	t.Helper()
	want := reportString(core.CheckTraceInto(core.NewState(), rules, tr, nil))
	for _, cfg := range shardedCfgs {
		rep, _ := core.CheckTraceCfg(rules, tr, nil, cfg)
		if got := reportString(rep); got != want {
			full := fmt.Sprintf("%s/%s/%s", name, rules.Name(), cfgName(cfg))
			writeDiffArtifact(t, full, want, got)
			t.Errorf("%s [%s/%s]: sharded report differs from serial\nserial:\n%s\nsharded:\n%s",
				name, rules.Name(), cfgName(cfg), want, got)
		}
	}
}

// TestShardedGoldenWhisper: every micro store's recorded checkered
// sections — and the monolithic whole-run trace — report identically
// sharded vs serial, under the strict and relaxed models.
func TestShardedGoldenWhisper(t *testing.T) {
	for _, store := range MicroStores {
		sections, err := RecordMicroSections(store, 256, 60)
		if err != nil {
			t.Fatalf("%s: %v", store, err)
		}
		for _, rules := range []core.RuleSet{core.X86{}, core.HOPS{}} {
			var all []trace.Op
			for i, ops := range sections {
				all = append(all, ops...)
				if i%7 == 0 { // spot-check sections; all of them is slow
					checkShardedWays(t, fmt.Sprintf("%s/section%d", store, i), rules,
						&trace.Trace{Ops: ops})
				}
			}
			checkShardedWays(t, store+"/monolithic", rules, &trace.Trace{Ops: all})
		}
	}
}

// TestShardedGoldenBadTraces: faulted fixtures — dropped writebacks,
// dropped and weakened fences, delayed writebacks — whose FAIL/WARN
// diagnostics must merge back byte-identically from the stripes.
func TestShardedGoldenBadTraces(t *testing.T) {
	for _, store := range []string{"ctree", "hashmap-ll"} {
		sections, err := RecordMicroSections(store, 256, 12)
		if err != nil {
			t.Fatalf("%s: %v", store, err)
		}
		for name, tr := range badTraceFixtures(sections) {
			if core.CheckTraceInto(core.NewState(), core.X86{}, tr, nil).Clean() {
				t.Errorf("%s/%s: fixture produced no diagnostics; perturbation is a no-op", store, name)
			}
			checkShardedWays(t, store+"/"+name, core.X86{}, tr)
		}
	}
}

// opSink is a minimal trace.Sink capturing ops into a slice.
type opSink struct{ ops *[]trace.Op }

func (s opSink) Record(op trace.Op, _ int) { *s.ops = append(*s.ops, op) }

// pmdkTxTrace records one pmdk undo-log transaction (with the given bug
// switches) wrapped in a checker scope — the same flow the synthetic
// bug catalog uses.
func pmdkTxTrace(t *testing.T, bugs pmdk.Bugs) *trace.Trace {
	t.Helper()
	var ops []trace.Op
	dev := pmem.New(1<<20, opSink{&ops})
	p, err := pmdk.Create(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	p.SetBugs(bugs)
	p.SetAnnotations(true)
	off, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	ops = ops[:0]
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerStart})
	if err := p.Tx(func(tx *pmdk.Tx) error {
		tx.Add(off, 8)
		tx.Set64(off, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ops = append(ops, trace.Op{Kind: trace.KindTxCheckerEnd})
	return &trace.Trace{Ops: ops}
}

// TestShardedGoldenPMDK: the pmdk undo-log transaction flow — clean and
// under every bug switch of the synthetic catalog — reports identically
// sharded vs serial. These traces exercise log-area excludes, TxAdd
// backups and ordered log-publish checks the whisper stores don't.
func TestShardedGoldenPMDK(t *testing.T) {
	cases := map[string]pmdk.Bugs{
		"clean":                {},
		"skip-commit-flush":    {SkipCommitFlush: true},
		"skip-commit-fence":    {SkipCommitFence: true},
		"skip-log-entry-flush": {SkipLogEntryFlush: true},
		"skip-log-entry-fence": {SkipLogEntryFence: true},
		"double-commit-flush":  {DoubleCommitFlush: true},
	}
	for name, bugs := range cases {
		checkShardedWays(t, "pmdk/"+name, core.X86{}, pmdkTxTrace(t, bugs))
	}
}

// TestShardedGoldenKFIFOPipeline: sections shipped through the kernel
// FIFO transport into a persistent sharded checker — the paper's
// kernel-module flow (§4.5) with striping underneath — must reproduce
// the serial reports byte for byte, including checker state reuse
// across the whole stream.
func TestShardedGoldenKFIFOPipeline(t *testing.T) {
	sections, err := RecordMicroSections("hashmap-ll", 256, 24)
	if err != nil {
		t.Fatal(err)
	}
	f := kfifo.New(8)
	go func() {
		for _, ops := range sections {
			f.Push(&trace.Trace{Ops: ops})
		}
		f.Close()
	}()
	c := core.NewShardedChecker(core.X86{}, core.Config{Shards: 4, EpochGC: true})
	defer c.Close()
	i := 0
	for {
		tr := f.Pop()
		if tr == nil {
			break
		}
		want := reportString(core.CheckTraceInto(core.NewState(), core.X86{}, tr, nil))
		rep, _ := c.Check(tr, nil)
		if got := reportString(rep); got != want {
			writeDiffArtifact(t, fmt.Sprintf("kfifo/section%d", i), want, got)
			t.Fatalf("kfifo section %d diverges\nserial:\n%s\nsharded:\n%s", i, want, got)
		}
		i++
	}
	if i != len(sections) {
		t.Fatalf("pipeline delivered %d of %d sections", i, len(sections))
	}
}

// TestShardedGoldenForcedGC proves the forced-GC requirement directly:
// a long streaming run over every micro store must actually retire
// intervals (at lag 1) while still reporting identically to serial.
func TestShardedGoldenForcedGC(t *testing.T) {
	store := MicroStores[0]
	sections, err := RecordMicroSections(store, 256, 60)
	if err != nil {
		t.Fatalf("%s: %v", store, err)
	}
	var all []trace.Op
	for _, ops := range sections {
		all = append(all, ops...)
	}
	tr := &trace.Trace{Ops: all}
	cfg := core.Config{Shards: 4, EpochGC: true, GCLag: 1}
	want := reportString(core.CheckTraceInto(core.NewState(), core.X86{}, tr, nil))
	rep, stats := core.CheckTraceCfg(core.X86{}, tr, nil, cfg)
	if got := reportString(rep); got != want {
		writeDiffArtifact(t, store+"/forced-gc", want, got)
		t.Fatalf("forced-GC run diverges from serial\nserial:\n%s\nsharded:\n%s", want, got)
	}
	if !stats.Sharded {
		t.Fatal("monolithic whisper trace fell back to serial; striping never engaged")
	}
	if stats.RetiredIntervals == 0 {
		t.Fatal("epoch GC retired nothing over a monolithic whisper run; GC pass never forced")
	}
}
