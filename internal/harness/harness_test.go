package harness

import (
	"testing"
)

// TestMicroBenchAllStoresAllTools: every (store, tool) combination runs
// clean — no FAILs on correct workloads, and the PMTest runs actually
// checked traces.
func TestMicroBenchAllStoresAllTools(t *testing.T) {
	tools := []Tool{ToolNone, ToolPMTest, ToolPMTestTrack, ToolPmemcheck,
		ToolPMTestInline, ToolPMTestMonolithic}
	for _, store := range MicroStores {
		for _, tool := range tools {
			t.Run(store+"/"+tool.String(), func(t *testing.T) {
				res, err := MicroBench(store, 128, 200, tool, 1)
				if err != nil {
					t.Fatal(err)
				}
				if res.Fails != 0 {
					t.Fatalf("clean run reported %d FAILs", res.Fails)
				}
				if res.Warns != 0 {
					t.Fatalf("clean run reported %d WARNs", res.Warns)
				}
				if res.Elapsed <= 0 {
					t.Fatal("no time measured")
				}
			})
		}
	}
}

func TestMicroBenchUnknownStore(t *testing.T) {
	if _, err := MicroBench("nope", 64, 10, ToolNone, 1); err == nil {
		t.Fatal("expected error for unknown store")
	}
}

func TestSlowdown(t *testing.T) {
	base, _ := MicroBench("ctree", 64, 100, ToolNone, 1)
	pm, _ := MicroBench("ctree", 64, 100, ToolPMTest, 1)
	if s := Slowdown(pm, base); s <= 0 {
		t.Fatalf("slowdown = %v", s)
	}
	if Slowdown(pm, MicroResult{}) != 0 {
		t.Fatal("zero baseline must give 0")
	}
}

// TestRealBenchAllWorkloads: each Fig. 11 workload runs clean under no
// tool and PMTest.
func TestRealBenchAllWorkloads(t *testing.T) {
	for _, wl := range RealWorkloads {
		for _, tool := range []Tool{ToolNone, ToolPMTest} {
			t.Run(wl+"/"+tool.String(), func(t *testing.T) {
				res, err := RealBench(wl, 500, tool)
				if err != nil {
					t.Fatal(err)
				}
				if res.Fails != 0 || res.Warns != 0 {
					t.Fatalf("clean workload flagged: %d FAIL %d WARN", res.Fails, res.Warns)
				}
			})
		}
	}
}

func TestRealBenchUnknown(t *testing.T) {
	if _, err := RealBench("nope", 10, ToolNone); err == nil {
		t.Fatal("expected error")
	}
}

func TestScaleBench(t *testing.T) {
	for _, threads := range []int{1, 2} {
		r, err := ScaleBench("memslap", threads, threads, 300)
		if err != nil {
			t.Fatal(err)
		}
		if r.Slowdown <= 0 {
			t.Fatalf("slowdown = %v", r.Slowdown)
		}
	}
	if _, err := ScaleBench("nope", 1, 1, 10); err == nil {
		t.Fatal("expected error for unknown client")
	}
}

func TestEstimateYat(t *testing.T) {
	est, err := EstimateYat("ctree", 20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if est.TraceOps == 0 || est.StateSpace <= 0 {
		t.Fatalf("estimate = %+v", est)
	}
}

func TestSparseFenceStateSpace(t *testing.T) {
	s16, _ := SparseFenceStateSpace(1000, 16)
	s32, _ := SparseFenceStateSpace(1000, 32)
	if s32 < s16*1000 {
		t.Fatalf("sparse-fence space must explode: %g vs %g", s16, s32)
	}
	_, ops := SparseFenceStateSpace(1000, 10)
	if ops != 1100 {
		t.Fatalf("ops = %d, want 1100", ops)
	}
}

func TestToolStrings(t *testing.T) {
	names := map[Tool]string{
		ToolNone:             "none",
		ToolPMTest:           "PMTest",
		ToolPMTestTrack:      "PMTest (framework only)",
		ToolPmemcheck:        "Pmemcheck",
		ToolPMTestInline:     "PMTest (inline checking)",
		ToolPMTestMonolithic: "PMTest (monolithic trace)",
	}
	for tool, want := range names {
		if tool.String() != want {
			t.Errorf("%d.String() = %q, want %q", tool, tool.String(), want)
		}
	}
}
