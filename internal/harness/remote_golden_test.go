package harness

import (
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/dist"
	"pmtest/internal/obs"
	"pmtest/internal/trace"
)

// startDistNode hosts a real checker node over loopback HTTP and
// returns its dialable host:port.
func startDistNode(t *testing.T) (string, *httptest.Server) {
	t.Helper()
	node := dist.NewNode(dist.NodeConfig{Metrics: obs.NewMetrics(8)})
	srv := httptest.NewServer(node)
	t.Cleanup(func() {
		srv.Close()
		node.Close()
	})
	return strings.TrimPrefix(srv.URL, "http://"), srv
}

// remoteGoldenSections is a clean recorded micro workload with the
// bad-trace fixtures appended, so the equivalence proof covers sections
// that produce FAIL/WARN diagnostics, not just clean ones. Fixture
// order is sorted so local and remote runs submit identically.
func remoteGoldenSections(t *testing.T, store string) [][]trace.Op {
	t.Helper()
	sections, err := RecordMicroSections(store, 256, 12)
	if err != nil {
		t.Fatal(err)
	}
	fix := badTraceFixtures(sections)
	names := make([]string, 0, len(fix))
	for name := range fix {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sections = append(sections, fix[name].Ops)
	}
	return sections
}

func localDump(sections [][]trace.Op) string {
	eng := core.NewEngine(core.Options{Rules: core.X86{}, Workers: 1})
	return DumpReports(ReplaySections(eng, sections, 0))
}

func goldenCoordinator(t *testing.T, nodes []string) (*dist.Coordinator, *obs.Metrics) {
	t.Helper()
	m := obs.NewMetrics(8)
	c, err := dist.NewCoordinator(dist.Options{
		Nodes:      nodes,
		RPCTimeout: 2 * time.Second,
		Attempts:   2,
		Backoff:    dist.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Metrics:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, m
}

// TestRemoteGoldenEquivalence: a workload checked through the
// distributed tier yields a report dump byte-identical to a local
// engine run — diagnostics, severities, and op indices included.
func TestRemoteGoldenEquivalence(t *testing.T) {
	for _, store := range []string{"ctree", "hashmap-ll"} {
		sections := remoteGoldenSections(t, store)
		want := localDump(sections)

		addr, _ := startDistNode(t)
		c, m := goldenCoordinator(t, []string{addr})
		got := DumpReports(ReplaySections(c.OpenSession("golden-"+store, core.X86{}), sections, 0))

		if got != want {
			t.Errorf("%s: remote run diverged from local:\nlocal:\n%s\nremote:\n%s", store, want, got)
		}
		snap := m.Snapshot()
		if snap.DistSectionsSent != uint64(len(sections)) || snap.DistFallbacks != 0 {
			t.Errorf("%s: sent=%d fallbacks=%d, want %d/0 (all checked remotely)",
				store, snap.DistSectionsSent, snap.DistFallbacks, len(sections))
		}
	}
}

// TestRemoteGoldenFailover is the ISSUE's robustness acceptance proof:
// the active node is torn down mid-stream, the session fails over and
// replays its unacknowledged buffer, and the final reports are still
// byte-identical to a local run.
func TestRemoteGoldenFailover(t *testing.T) {
	sections := remoteGoldenSections(t, "ctree")
	want := localDump(sections)

	addrA, srvA := startDistNode(t)
	addrB, srvB := startDistNode(t)
	c, m := goldenCoordinator(t, []string{addrA, addrB})

	s := c.OpenSession("golden-failover", core.X86{})
	half := len(sections) / 2
	for _, ops := range sections[:half] {
		s.Submit(&trace.Trace{Ops: append([]trace.Op(nil), ops...)})
	}
	s.Wait()

	// Kill whichever node the session actually landed on — connections
	// included, so pooled keep-alives fail like a dead host.
	switch s.Node() {
	case addrA:
		srvA.CloseClientConnections()
		srvA.Close()
	case addrB:
		srvB.CloseClientConnections()
		srvB.Close()
	default:
		t.Fatalf("session on unexpected node %q", s.Node())
	}

	for _, ops := range sections[half:] {
		s.Submit(&trace.Trace{Ops: append([]trace.Op(nil), ops...)})
	}
	got := DumpReports(s.Close())

	if got != want {
		t.Fatalf("remote run with mid-stream node kill diverged from local:\nlocal:\n%s\nremote:\n%s", want, got)
	}
	snap := m.Snapshot()
	if snap.DistFailovers < 1 {
		t.Fatalf("failovers = %d, want >= 1 after killing the active node", snap.DistFailovers)
	}
	if snap.DistFallbacks != 0 {
		t.Fatalf("fallbacks = %d; the surviving node should have absorbed the session", snap.DistFallbacks)
	}
	if snap.DistSectionsSent != uint64(len(sections)) {
		t.Fatalf("sent = %d, want %d (every section remotely checked)", snap.DistSectionsSent, len(sections))
	}
}
