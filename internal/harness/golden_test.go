package harness

// Golden-equivalence tests for the pooled checking state: CheckTrace
// draws its State from a sync.Pool and Reset()s it between traces, so a
// Reset bug would leak shadow-memory, epoch, or transaction state from
// one trace into the next and silently change verdicts. These tests
// prove pooled runs produce byte-identical Reports to fresh-state runs
// across the whisper micro suite and across bad-trace fixtures modeled
// on the faultinject taxonomy (dropped writebacks/fences, weakened
// fences, delayed writebacks).

import (
	"fmt"
	"testing"

	"pmtest/internal/core"
	"pmtest/internal/trace"
)

// reportString renders a Report with every field, diagnostics included,
// so equality means byte-identical output to the user.
func reportString(r core.Report) string {
	s := fmt.Sprintf("trace=%d thread=%d ops=%d tracked=%d ndiags=%d\n",
		r.TraceID, r.Thread, r.Ops, r.TrackedOps, len(r.Diags))
	for _, d := range r.Diags {
		s += fmt.Sprintf("%d|%s|%s\n", d.OpIndex, d.Severity, d.String())
	}
	return s
}

// checkBothWays checks tr with a fresh, never-pooled State and with the
// pooled CheckTrace path, after deliberately dirtying the pool with a
// state-heavy trace, and fails on any report difference.
func checkBothWays(t *testing.T, name string, rules core.RuleSet, tr *trace.Trace) {
	t.Helper()
	// Dirty the pool: a trace that leaves open intervals, tx depth,
	// exclusions and an unbalanced checker scope behind.
	dirty := &trace.Trace{Ops: []trace.Op{
		{Kind: trace.KindTxCheckerStart},
		{Kind: trace.KindTxBegin},
		{Kind: trace.KindWrite, Addr: 0x40, Size: 512},
		{Kind: trace.KindFlush, Addr: 0x40, Size: 64},
		{Kind: trace.KindFence},
		{Kind: trace.KindExclude, Addr: 0, Size: 1 << 30},
	}}
	core.CheckTrace(rules, dirty)

	fresh := core.CheckTraceInto(core.NewState(), rules, tr, nil)
	pooled := core.CheckTrace(rules, tr)
	if got, want := reportString(pooled), reportString(fresh); got != want {
		t.Errorf("%s [%s]: pooled report differs from fresh-state report\nfresh:\n%s\npooled:\n%s",
			name, rules.Name(), want, got)
	}
}

// TestPooledStateGoldenWhisper: every micro store's recorded checkered
// sections produce identical reports pooled vs fresh, under both the
// strict and the relaxed model.
func TestPooledStateGoldenWhisper(t *testing.T) {
	for _, store := range MicroStores {
		sections, err := RecordMicroSections(store, 256, 60)
		if err != nil {
			t.Fatalf("%s: %v", store, err)
		}
		for _, rules := range []core.RuleSet{core.X86{}, core.HOPS{}} {
			// Per-insert sections plus the monolithic whole-run trace.
			var all []trace.Op
			for i, ops := range sections {
				all = append(all, ops...)
				if i%7 == 0 { // spot-check sections; all of them is slow
					checkBothWays(t, fmt.Sprintf("%s/section%d", store, i), rules,
						&trace.Trace{Ops: ops})
				}
			}
			checkBothWays(t, store+"/monolithic", rules, &trace.Trace{Ops: all})
		}
	}
}

// badTraceFixtures perturbs a clean recorded stream the way the
// faultinject campaign's bug classes do, yielding sections the engine
// must diagnose — exercising the report-building (diags) path of the
// pooled state. Recorded sections open with an Exclude over allocator
// metadata, so perturbations must land on flushes of the transaction's
// own (non-excluded) data or they are no-ops to the checker.
func badTraceFixtures(sections [][]trace.Op) map[string]*trace.Trace {
	fix := make(map[string]*trace.Trace)
	isFence := func(k trace.Kind) bool { return k == trace.KindFence || k == trace.KindDFence }
	// tracked reports whether op touches memory the section has not
	// excluded by the time the op executes.
	trackedFlush := func(ops []trace.Op, i int) bool {
		if ops[i].Kind != trace.KindFlush {
			return false
		}
		for j := 0; j < i; j++ {
			e := ops[j]
			if e.Kind == trace.KindExclude &&
				e.Addr <= ops[i].Addr && ops[i].Addr+ops[i].Size <= e.Addr+e.Size {
				return false
			}
		}
		return true
	}
	lastTrackedFlush := func(ops []trace.Op) int {
		for i := len(ops) - 1; i >= 0; i-- {
			if trackedFlush(ops, i) {
				return i
			}
		}
		return -1
	}
	pick := func(name string, f func(ops []trace.Op) []trace.Op) {
		// Perturb a mid-run section so the store is warm.
		src := sections[3%len(sections)]
		ops := append([]trace.Op(nil), src...)
		fix[name] = &trace.Trace{Ops: f(ops)}
	}
	pick("drop-flush", func(ops []trace.Op) []trace.Op {
		// Drop the last tracked flush: that line is never written back,
		// so the tx checker flags it unpersisted at TX_CHECKER_END.
		i := lastTrackedFlush(ops)
		return append(ops[:i], ops[i+1:]...)
	})
	pick("drop-fence", func(ops []trace.Op) []trace.Op {
		// Drop every fence after the last tracked flush: the writeback is
		// issued but never completed. (A single dropped fence would be
		// masked by the next one — fences drain all pending flushes.)
		i := lastTrackedFlush(ops)
		out := append([]trace.Op(nil), ops[:i+1]...)
		for _, op := range ops[i+1:] {
			if !isFence(op.Kind) {
				out = append(out, op)
			}
		}
		return out
	})
	pick("weaken-fence", func(ops []trace.Op) []trace.Op {
		// Drop the whole run of tracked flushes ending at the last one:
		// the closing fence has nothing of the transaction's to drain.
		end := lastTrackedFlush(ops)
		start := end
		for start > 0 && trackedFlush(ops, start-1) {
			start--
		}
		return append(ops[:start], ops[end+1:]...)
	})
	pick("delay-flush", func(ops []trace.Op) []trace.Op {
		// Move the last tracked flush past every remaining fence: the
		// writeback lands on the wrong side of the ordering points and is
		// still pending at TX_CHECKER_END.
		i := lastTrackedFlush(ops)
		cp := ops[i]
		ops = append(ops[:i], ops[i+1:]...)
		last := len(ops)
		for j := len(ops) - 1; j >= 0; j-- {
			if isFence(ops[j].Kind) {
				last = j + 1
				break
			}
		}
		out := append([]trace.Op(nil), ops[:last]...)
		out = append(out, cp)
		return append(out, ops[last:]...)
	})
	return fix
}

// TestPooledStateGoldenBadTraces: faulted fixtures — which produce FAIL
// and WARN diagnostics — report identically pooled vs fresh.
func TestPooledStateGoldenBadTraces(t *testing.T) {
	for _, store := range []string{"ctree", "hashmap-ll"} {
		sections, err := RecordMicroSections(store, 256, 12)
		if err != nil {
			t.Fatalf("%s: %v", store, err)
		}
		for name, tr := range badTraceFixtures(sections) {
			if core.CheckTraceInto(core.NewState(), core.X86{}, tr, nil).Clean() {
				t.Errorf("%s/%s: fixture produced no diagnostics; perturbation is a no-op", store, name)
			}
			checkBothWays(t, store+"/"+name, core.X86{}, tr)
		}
	}
}
