package harness

import (
	"fmt"
	"strings"

	"pmtest/internal/core"
	"pmtest/internal/trace"
)

// SectionSink is the submit/close surface shared by core.Engine and
// dist.Session, so the same recorded workload can drive a local engine
// or the distributed checking tier.
type SectionSink interface {
	Submit(*trace.Trace)
	Close() []core.Report
}

// ReplaySections submits recorded sections (RecordMicroSections output)
// into a sink and returns the final reports. Each section gets its own
// copy of the ops, so a sink that retains traces cannot alias the
// caller's slices.
func ReplaySections(sink SectionSink, sections [][]trace.Op, thread int) []core.Report {
	for _, ops := range sections {
		sink.Submit(&trace.Trace{Thread: thread, Ops: append([]trace.Op(nil), ops...)})
	}
	return sink.Close()
}

// DumpReports renders reports field-complete — diagnostics included —
// so two report slices compare byte-identical. This is the equivalence
// oracle of the golden tests and the pmtestd smoke job: local and
// remote checking must produce the same dump.
func DumpReports(reports []core.Report) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "trace=%d thread=%d ops=%d tracked=%d ndiags=%d\n",
			r.TraceID, r.Thread, r.Ops, r.TrackedOps, len(r.Diags))
		for _, d := range r.Diags {
			fmt.Fprintf(&b, "%d|%s|%s\n", d.OpIndex, d.Severity, d.String())
		}
	}
	return b.String()
}
