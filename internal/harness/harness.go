// Package harness drives the paper's evaluation (§6): it runs the
// WHISPER workloads under no tool / PMTest / tracking-only PMTest /
// pmemcheck and measures execution time, regenerating the data behind
// Fig. 10 (microbenchmark slowdown and overhead breakdown), Fig. 11
// (real-workload slowdown), Fig. 12 (scalability), and the Yat
// state-space estimates that motivate interval inference (§2.2).
package harness

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"pmtest"
	"pmtest/internal/core"
	"pmtest/internal/flight"
	"pmtest/internal/obs"
	"pmtest/internal/pmem"
	"pmtest/internal/pmemcheck"
	"pmtest/internal/pmfs"
	"pmtest/internal/trace"
	"pmtest/internal/whisper"
	"pmtest/internal/yat"
)

// metrics, when set via ObserveWith, is installed into every PMTest
// session the harness creates, so cmd/repro's -stats / -obs-listen flags
// can aggregate observability across a whole experiment run.
var metrics *obs.Metrics

// ObserveWith installs an observability registry for all subsequent
// harness runs (nil uninstalls). Not safe to call concurrently with a
// running benchmark.
func ObserveWith(m *obs.Metrics) { metrics = m }

// flightRec, when set via FlightWith, is installed into every PMTest
// session the harness creates, so cmd/repro's -flight-out / -obs-listen
// flags capture a span timeline across a whole experiment run.
var flightRec *flight.Recorder

// FlightWith installs a flight recorder for all subsequent harness runs
// (nil uninstalls). Not safe to call concurrently with a running
// benchmark.
func FlightWith(r *flight.Recorder) { flightRec = r }

// logger, when set via LogWith, is installed into every PMTest session
// the harness creates, so cmd/repro's -log-level flag correlates
// session/engine log records across a whole experiment run.
var logger *slog.Logger

// LogWith installs a structured logger for all subsequent harness runs
// (nil uninstalls). Not safe to call concurrently with a running
// benchmark.
func LogWith(lg *slog.Logger) { logger = lg }

// Tool selects the testing tool attached to a run.
type Tool int

// Tools.
const (
	// ToolNone runs the workload with no testing tool (the baseline the
	// paper normalizes against).
	ToolNone Tool = iota
	// ToolPMTest runs with full PMTest checking (1 worker by default).
	ToolPMTest
	// ToolPMTestTrack runs PMTest in tracking-only mode: operations are
	// recorded and shipped but checkers are not validated — the
	// "PMTest Framework" bar of Fig. 10b.
	ToolPMTestTrack
	// ToolPmemcheck runs the synchronous byte-granular baseline checker.
	ToolPmemcheck
	// ToolPMTestInline checks each section synchronously on the program
	// thread instead of on decoupled workers (ablation: the design choice
	// of §3.2 / Fig. 8).
	ToolPMTestInline
	// ToolPMTestMonolithic never cuts the trace: one giant section is
	// checked at the end (ablation: PMTest_SEND_TRACE sectioning, §4.2).
	ToolPMTestMonolithic
)

// String names the tool for table headers.
func (t Tool) String() string {
	switch t {
	case ToolPMTest:
		return "PMTest"
	case ToolPMTestTrack:
		return "PMTest (framework only)"
	case ToolPmemcheck:
		return "Pmemcheck"
	case ToolPMTestInline:
		return "PMTest (inline checking)"
	case ToolPMTestMonolithic:
		return "PMTest (monolithic trace)"
	default:
		return "none"
	}
}

// MicroResult is one microbenchmark measurement.
type MicroResult struct {
	Store    string
	TxSize   uint64
	Inserts  int
	Tool     Tool
	Elapsed  time.Duration
	Fails    int
	Warns    int
	TraceOps int
}

// MicroStores lists the five Fig. 10 microbenchmarks in paper order.
var MicroStores = []string{"ctree", "btree", "rbtree", "hashmap-tx", "hashmap-ll"}

// StoreDisplayName maps harness ids to the paper's names.
func StoreDisplayName(id string) string {
	switch id {
	case "ctree":
		return "C-Tree"
	case "btree":
		return "B-Tree"
	case "rbtree":
		return "RB-Tree"
	case "hashmap-tx":
		return "HashMap (w/ TX)"
	case "hashmap-ll":
		return "HashMap (w/o TX)"
	}
	return id
}

// deviceSize estimates the PM capacity a run needs.
func deviceSize(n int, txSize uint64) uint64 {
	per := (txSize+512+pmem.LineSize-1)&^uint64(pmem.LineSize-1) + 512
	sz := uint64(16<<20) + uint64(n)*per
	if ll := whisper.HashmapLLSpace(llSlots(n), txSize) + (1 << 20); ll > sz {
		sz = ll
	}
	return sz
}

// llSlots sizes the open-addressed table for n insertions.
func llSlots(n int) uint64 {
	s := uint64(1024)
	for s < uint64(n)*2 {
		s <<= 1
	}
	return s
}

func newStore(id string, dev *pmem.Device, txSize uint64, n int) (whisper.Store, error) {
	switch id {
	case "ctree":
		return whisper.NewCTree(dev, nil)
	case "btree":
		return whisper.NewBTree(dev, nil)
	case "rbtree":
		return whisper.NewRBTree(dev, nil)
	case "hashmap-tx":
		return whisper.NewHashmapTX(dev, 1<<14, nil)
	case "hashmap-ll":
		return whisper.NewHashmapLL(dev, llSlots(n), txSize, nil)
	}
	return nil, fmt.Errorf("harness: unknown store %q", id)
}

// MicroBench runs n insertions of txSize-byte values into the named store
// under the given tool and returns the measurement. workers sets the
// PMTest checking-thread count (Fig. 12b); <=0 means 1, the paper default.
func MicroBench(store string, txSize uint64, n int, tool Tool, workers int) (MicroResult, error) {
	res := MicroResult{Store: store, TxSize: txSize, Inserts: n, Tool: tool}
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() >> 16
	}
	val := make([]byte, txSize)
	rng.Read(val)

	devSize := deviceSize(n, txSize)
	switch tool {
	case ToolNone:
		dev := pmem.New(devSize, nil)
		s, err := newStore(store, dev, txSize, n)
		if err != nil {
			return res, err
		}
		start := time.Now()
		for _, k := range keys {
			if err := s.Insert(k, val); err != nil {
				return res, err
			}
		}
		res.Elapsed = time.Since(start)

	case ToolPMTest, ToolPMTestTrack:
		sess := pmtest.Init(pmtest.Config{
			Workers:   workers,
			TrackOnly: tool == ToolPMTestTrack,
			Metrics:   metrics,
			Flight:    flightRec,
			Logger:    logger,
		})
		th := sess.ThreadInit()
		dev := pmem.New(devSize, th)
		s, err := newStore(store, dev, txSize, n)
		if err != nil {
			return res, err
		}
		if c, ok := s.(whisper.Checkered); ok {
			c.SetCheckers(true)
		}
		th.Start()
		start := time.Now()
		for _, k := range keys {
			if err := s.Insert(k, val); err != nil {
				return res, err
			}
			th.SendTrace() // one section per transaction (§4.2)
		}
		reports := sess.GetResult() // PMTest_GET_RESULT
		res.Elapsed = time.Since(start)
		sess.Exit()
		for _, r := range reports {
			res.Fails += r.Fails()
			res.Warns += r.Warns()
		}

	case ToolPmemcheck:
		chk := pmemcheck.New()
		dev := pmem.New(devSize, chk)
		s, err := newStore(store, dev, txSize, n)
		if err != nil {
			return res, err
		}
		start := time.Now()
		for _, k := range keys {
			if err := s.Insert(k, val); err != nil {
				return res, err
			}
		}
		issues := chk.Finish()
		res.Elapsed = time.Since(start)
		res.Warns = len(issues)

	case ToolPMTestInline:
		// Ablation: same rules, same sections, but validated synchronously
		// on the program thread (no master/worker decoupling).
		rec := &opsRecorder{}
		dev := pmem.New(devSize, rec)
		s, err := newStore(store, dev, txSize, n)
		if err != nil {
			return res, err
		}
		if c, ok := s.(whisper.Checkered); ok {
			c.SetCheckers(true)
		}
		start := time.Now()
		for _, k := range keys {
			rec.ops = rec.ops[:0]
			if err := s.Insert(k, val); err != nil {
				return res, err
			}
			r := core.CheckTrace(core.X86{}, &trace.Trace{Ops: rec.ops})
			res.Fails += r.Fails()
			res.Warns += r.Warns()
		}
		res.Elapsed = time.Since(start)

	case ToolPMTestMonolithic:
		// Ablation: one giant trace section checked at the end. The
		// shadow memory grows with the whole run and checking cannot
		// overlap execution.
		sess := pmtest.Init(pmtest.Config{Metrics: metrics, Flight: flightRec, Logger: logger})
		th := sess.ThreadInit()
		dev := pmem.New(devSize, th)
		s, err := newStore(store, dev, txSize, n)
		if err != nil {
			return res, err
		}
		if c, ok := s.(whisper.Checkered); ok {
			c.SetCheckers(true)
		}
		th.Start()
		start := time.Now()
		for _, k := range keys {
			if err := s.Insert(k, val); err != nil {
				return res, err
			}
		}
		th.SendTrace()
		reports := sess.GetResult()
		res.Elapsed = time.Since(start)
		sess.Exit()
		for _, r := range reports {
			res.Fails += r.Fails()
			res.Warns += r.Warns()
		}
	}
	return res, nil
}

// Slowdown computes tool time over baseline time.
func Slowdown(tool, base MicroResult) float64 {
	if base.Elapsed == 0 {
		return 0
	}
	return float64(tool.Elapsed) / float64(base.Elapsed)
}

// RealResult is one real-workload measurement (Fig. 11).
type RealResult struct {
	Workload string
	Tool     Tool
	Elapsed  time.Duration
	Fails    int
	Warns    int
}

// RealWorkloads lists the Fig. 11 configurations in paper order.
var RealWorkloads = []string{
	"memcached+memslap", "memcached+ycsb", "redis+lru", "pmfs+oltp", "pmfs+filebench",
}

// RealBench runs the named Table 4 workload with nOps operations.
func RealBench(workload string, nOps int, tool Tool) (RealResult, error) {
	switch workload {
	case "memcached+memslap":
		return memcachedBench("memcached+memslap", whisper.MemslapOps(nOps, 5000, 128, 7), 1, 1, tool)
	case "memcached+ycsb":
		return memcachedBench("memcached+ycsb", whisper.YCSBOps(nOps, 5000, 128, 7), 1, 1, tool)
	case "redis+lru":
		return redisBench(nOps, tool)
	case "pmfs+oltp":
		return pmfsBench("pmfs+oltp", whisper.OLTPOps(nOps, 4, 512, 7), tool)
	case "pmfs+filebench":
		return pmfsBench("pmfs+filebench", whisper.FilebenchOps(nOps, 16, 2048, 7), tool)
	}
	return RealResult{}, fmt.Errorf("harness: unknown workload %q", workload)
}

// memcachedBench runs clients against a sharded memcached; threads =
// server shards = concurrent clients (Fig. 12 uses threads/workers > 1).
func memcachedBench(name string, ops []whisper.KVOp, threads, workers int, tool Tool) (RealResult, error) {
	res := RealResult{Workload: name, Tool: tool}
	var sess *pmtest.Session
	var checkers []trace.Sink
	var threadsTrk []*pmtest.Thread
	switch tool {
	case ToolPMTest, ToolPMTestTrack:
		sess = pmtest.Init(pmtest.Config{
			Workers:   workers,
			TrackOnly: tool == ToolPMTestTrack,
			Metrics:   metrics,
			Flight:    flightRec,
			Logger:    logger,
		})
		for i := 0; i < threads; i++ {
			th := sess.ThreadInit()
			th.Start()
			threadsTrk = append(threadsTrk, th)
			checkers = append(checkers, th)
		}
	case ToolPmemcheck:
		for i := 0; i < threads; i++ {
			checkers = append(checkers, pmemcheck.New())
		}
	default:
		checkers = make([]trace.Sink, threads)
	}

	devs := make([]*pmem.Device, threads)
	for i := range devs {
		devs[i] = pmem.New(whisper.MemcachedShardSpace(1<<14, 256), checkers[i])
	}
	m, err := whisper.NewMemcached(devs, 1<<14, 256)
	if err != nil {
		return res, err
	}
	if tool == ToolPMTest || tool == ToolPMTestTrack {
		m.SetCheckers(tool == ToolPMTest)
		for i := 0; i < threads; i++ {
			th := threadsTrk[i]
			m.SetSectionHook(i, th.SendTrace)
		}
	}

	// Partition ops across client goroutines (one per server thread).
	start := time.Now()
	var wg sync.WaitGroup
	chunk := (len(ops) + threads - 1) / threads
	var firstErr error
	var mu sync.Mutex
	for c := 0; c < threads; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(ops) {
			hi = len(ops)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(ops []whisper.KVOp, seed int64) {
			defer wg.Done()
			if err := whisper.RunKV(m.Set, m.Get, ops, seed); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(ops[lo:hi], int64(c))
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	if sess != nil {
		reports := sess.GetResult()
		res.Elapsed = time.Since(start)
		sess.Exit()
		for _, r := range reports {
			res.Fails += r.Fails()
			res.Warns += r.Warns()
		}
	} else {
		res.Elapsed = time.Since(start)
	}
	return res, nil
}

func redisBench(nOps int, tool Tool) (RealResult, error) {
	res := RealResult{Workload: "redis+lru", Tool: tool}
	ops := whisper.LRUOps(nOps, uint64(nOps), 128, 7)
	devSize := deviceSize(nOps, 128)

	var sink trace.Sink
	var sess *pmtest.Session
	var th *pmtest.Thread
	var chk *pmemcheck.Checker
	switch tool {
	case ToolPMTest, ToolPMTestTrack:
		sess = pmtest.Init(pmtest.Config{TrackOnly: tool == ToolPMTestTrack, Metrics: metrics, Flight: flightRec, Logger: logger})
		th = sess.ThreadInit()
		th.Start()
		sink = th
	case ToolPmemcheck:
		chk = pmemcheck.New()
		sink = chk
	}
	r, err := whisper.NewRedis(pmem.New(devSize, sink), 1<<14, nOps/2+1)
	if err != nil {
		return res, err
	}
	if tool == ToolPMTest {
		r.SetCheckers(true)
	}
	set := r.Set
	if th != nil {
		set = func(k uint64, v []byte) error {
			err := r.Set(k, v)
			th.SendTrace()
			return err
		}
	}
	start := time.Now()
	if err := whisper.RunKV(set, r.Get, ops, 7); err != nil {
		return res, err
	}
	if sess != nil {
		reports := sess.GetResult()
		res.Elapsed = time.Since(start)
		sess.Exit()
		for _, rep := range reports {
			res.Fails += rep.Fails()
			res.Warns += rep.Warns()
		}
	} else {
		if chk != nil {
			res.Warns = len(chk.Finish())
		}
		res.Elapsed = time.Since(start)
	}
	return res, nil
}

func pmfsBench(name string, ops []whisper.FSOp, tool Tool) (RealResult, error) {
	res := RealResult{Workload: name, Tool: tool}
	var sink trace.Sink
	var sess *pmtest.Session
	var th *pmtest.Thread
	var chk *pmemcheck.Checker
	switch tool {
	case ToolPMTest, ToolPMTestTrack:
		sess = pmtest.Init(pmtest.Config{TrackOnly: tool == ToolPMTestTrack, Metrics: metrics, Flight: flightRec, Logger: logger})
		th = sess.ThreadInit()
		th.Start()
		sink = th
	case ToolPmemcheck:
		chk = pmemcheck.New()
		sink = chk
	}
	dev := pmem.New(1<<26, sink)
	fs, err := pmfs.Mkfs(dev, 256, 512)
	if err != nil {
		return res, err
	}
	if tool == ToolPMTest {
		fs.SetAnnotations(true)
	}
	if th != nil {
		fs.SetSectionHook(th.SendTrace)
	}
	start := time.Now()
	if err := whisper.RunFS(fs, ops, 7); err != nil {
		return res, err
	}
	if sess != nil {
		reports := sess.GetResult()
		res.Elapsed = time.Since(start)
		sess.Exit()
		for _, r := range reports {
			res.Fails += r.Fails()
			res.Warns += r.Warns()
		}
	} else {
		if chk != nil {
			res.Warns = len(chk.Finish())
		}
		res.Elapsed = time.Since(start)
	}
	return res, nil
}

// ScaleResult is one Fig. 12 cell.
type ScaleResult struct {
	Threads  int
	Workers  int
	Client   string
	Tool     Tool
	Elapsed  time.Duration
	Slowdown float64
}

// ScaleBench measures memcached with the given server-thread and
// PMTest-worker counts, returning the slowdown over the untested run
// (Fig. 12a/b/c).
func ScaleBench(client string, threads, workers, opsPerClient int) (ScaleResult, error) {
	var gen func(n int, keySpace uint64, valSize int, seed int64) []whisper.KVOp
	switch client {
	case "memslap":
		gen = whisper.MemslapOps
	case "ycsb":
		gen = whisper.YCSBOps
	default:
		return ScaleResult{}, fmt.Errorf("harness: unknown client %q", client)
	}
	ops := gen(opsPerClient*threads, 5000, 128, 11)
	base, err := memcachedBench("scale", ops, threads, 1, ToolNone)
	if err != nil {
		return ScaleResult{}, err
	}
	tested, err := memcachedBench("scale", ops, threads, workers, ToolPMTest)
	if err != nil {
		return ScaleResult{}, err
	}
	return ScaleResult{
		Threads: threads, Workers: workers, Client: client, Tool: ToolPMTest,
		Elapsed:  tested.Elapsed,
		Slowdown: float64(tested.Elapsed) / float64(base.Elapsed),
	}, nil
}

// YatEstimate replays a PMTest-traced microbenchmark run and reports the
// crash-state space an exhaustive tool would face (§2.2's "five years").
type YatEstimate struct {
	Store      string
	Inserts    int
	TraceOps   int
	StateSpace float64
}

// EstimateYat records a short run of the store and sizes Yat's search
// space for it.
func EstimateYat(store string, n int, txSize uint64) (YatEstimate, error) {
	rec := &opsRecorder{}
	dev := pmem.New(deviceSize(n, txSize), rec)
	s, err := newStore(store, dev, txSize, n)
	if err != nil {
		return YatEstimate{}, err
	}
	rng := rand.New(rand.NewSource(3))
	val := make([]byte, txSize)
	for i := 0; i < n; i++ {
		if err := s.Insert(rng.Uint64()>>16, val); err != nil {
			return YatEstimate{}, err
		}
	}
	initial := make([]byte, dev.Size())
	space := yat.EstimateStateSpace(initial, rec.ops)
	return YatEstimate{Store: store, Inserts: n, TraceOps: len(rec.ops), StateSpace: space}, nil
}

type opsRecorder struct{ ops []trace.Op }

func (r *opsRecorder) Record(op trace.Op, _ int) { r.ops = append(r.ops, op) }

// RecordMicroSections runs n checkered insertions of txSize-byte values
// into the named store and returns the recorded operations of each
// per-transaction section (the cut points PMTest_SEND_TRACE would use).
// The run is deterministic: same arguments, same sections. It is the raw
// material for offline checking, the pooled-state golden tests, and the
// perf suite's check/encode benchmarks.
func RecordMicroSections(store string, txSize uint64, n int) ([][]trace.Op, error) {
	rec := &opsRecorder{}
	dev := pmem.New(deviceSize(n, txSize), rec)
	s, err := newStore(store, dev, txSize, n)
	if err != nil {
		return nil, err
	}
	if c, ok := s.(whisper.Checkered); ok {
		c.SetCheckers(true)
	}
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() >> 16
	}
	val := make([]byte, txSize)
	rng.Read(val)
	sections := make([][]trace.Op, 0, n)
	for _, k := range keys {
		rec.ops = nil
		if err := s.Insert(k, val); err != nil {
			return nil, err
		}
		sections = append(sections, rec.ops)
	}
	return sections, nil
}

// SparseFenceStateSpace sizes Yat's crash-state space for a synthetic
// trace of nWrites line writes with a fence every `window` writes —
// the fence-sparse pattern (PMFS-style batched metadata updates) whose
// exhaustive exploration the paper quotes at more than five years. It is
// computed analytically: each crash point with d dirty lines contributes
// 2^d reachable durable states.
func SparseFenceStateSpace(nWrites, window int) (space float64, ops int) {
	perWindow := 0.0
	for d := 1; d <= window; d++ {
		w := 1.0
		for i := 0; i < d; i++ {
			w *= 2
		}
		perWindow += w
	}
	windows := nWrites / window
	return perWindow * float64(windows), nWrites + windows
}
