// Package pmemcheck reimplements the cost model and checking behaviour of
// pmemcheck, the Valgrind-based tool the paper compares PMTest against
// (§2.2, §6.2.1, Fig. 10a).
//
// Pmemcheck instruments every store at BYTE granularity and processes each
// operation synchronously, inline with program execution — there is no
// decoupled checking thread and no coarse range tracking. Those two design
// choices are exactly what PMTest improves on, so this implementation
// keeps them faithfully:
//
//   - a per-byte state machine (dirty → flushed → fenced/clean) updated on
//     every store and writeback, byte by byte;
//   - checking performed inside Record, so the program under test stalls
//     for the full cost of every update.
//
// Like the real tool it reports stores that never became persistent,
// redundant flushes ("multiple stores to the same address" /
// "flushing non-dirty memory") and, for transaction events, objects
// modified outside the undo log.
package pmemcheck

import (
	"fmt"

	"pmtest/internal/trace"
)

// byteState is the per-byte persistence state.
type byteState uint8

const (
	stateClean   byteState = iota // persisted or never written
	stateDirty                    // stored, not yet flushed
	stateFlushed                  // flush issued, awaiting fence
)

// Issue is one pmemcheck finding.
type Issue struct {
	// Kind is the pmemcheck-style message class.
	Kind string
	// Addr is the first affected byte.
	Addr uint64
	// Detail is a human-readable explanation.
	Detail string
}

func (i Issue) String() string { return fmt.Sprintf("%s @0x%x: %s", i.Kind, i.Addr, i.Detail) }

// Issue kinds.
const (
	IssueNotPersisted = "store-not-persisted"
	IssueDoubleFlush  = "redundant-flush"
	IssueCleanFlush   = "flush-of-clean"
	IssueNoLog        = "store-outside-tx-log"
)

// Checker is a synchronous, byte-granular persistence checker. It
// implements trace.Sink so it attaches to the same instrumented device as
// PMTest's tracker; unlike PMTest, all work happens inside Record.
type Checker struct {
	bytes map[uint64]byteState
	// txDepth and log track transaction events for the PMDK-specific
	// checks pmemcheck ships with.
	txDepth int
	log     map[uint64]bool
	// excluded is kept as ranges: exclusions cover large static regions
	// (library metadata), so per-byte expansion would dominate runtime.
	excluded []exRange
	issues   []Issue
	// stores counts tracked store bytes (the tool's work metric).
	storeBytes uint64
}

type exRange struct{ lo, hi uint64 }

// New returns an empty checker.
func New() *Checker {
	return &Checker{
		bytes: make(map[uint64]byteState),
		log:   make(map[uint64]bool),
	}
}

func (c *Checker) isExcluded(a uint64) bool {
	for _, r := range c.excluded {
		if a >= r.lo && a < r.hi {
			return true
		}
	}
	return false
}

// Record implements trace.Sink: every operation is processed immediately,
// byte by byte.
func (c *Checker) Record(op trace.Op, _ int) {
	switch op.Kind {
	case trace.KindWrite:
		c.store(op, false)
	case trace.KindWriteNT:
		c.store(op, true)
	case trace.KindFlush:
		c.flush(op)
	case trace.KindFence, trace.KindDFence, trace.KindOFence:
		c.fence()
	case trace.KindTxBegin:
		c.txDepth++
		if c.txDepth == 1 {
			c.log = make(map[uint64]bool)
		}
	case trace.KindTxEnd:
		if c.txDepth > 0 {
			c.txDepth--
		}
	case trace.KindTxAdd:
		for a := op.Addr; a < op.Addr+op.Size; a++ {
			c.log[a] = true
		}
	case trace.KindExclude:
		if !c.isExcluded(op.Addr) || !c.isExcluded(op.Addr+op.Size-1) {
			c.excluded = append(c.excluded, exRange{op.Addr, op.Addr + op.Size})
		}
	case trace.KindInclude:
		out := c.excluded[:0]
		for _, r := range c.excluded {
			// Keep the parts outside the included range.
			if r.hi <= op.Addr || r.lo >= op.Addr+op.Size {
				out = append(out, r)
				continue
			}
			if r.lo < op.Addr {
				out = append(out, exRange{r.lo, op.Addr})
			}
			if r.hi > op.Addr+op.Size {
				out = append(out, exRange{op.Addr + op.Size, r.hi})
			}
		}
		c.excluded = out
	}
	// Checker ops (isPersist etc.) are PMTest's interface; pmemcheck has
	// no equivalent and ignores them (its checks are built in).
}

func (c *Checker) store(op trace.Op, nt bool) {
	for a := op.Addr; a < op.Addr+op.Size; a++ {
		if c.txDepth > 0 && !c.log[a] && !c.isExcluded(a) {
			c.issues = append(c.issues, Issue{
				Kind: IssueNoLog, Addr: a,
				Detail: "store inside transaction to unlogged address",
			})
			// One finding per store op is enough detail.
			c.markRange(op, nt)
			return
		}
	}
	c.markRange(op, nt)
}

func (c *Checker) markRange(op trace.Op, nt bool) {
	st := stateDirty
	if nt {
		st = stateFlushed
	}
	for a := op.Addr; a < op.Addr+op.Size; a++ {
		c.bytes[a] = st
		c.storeBytes++
	}
}

func (c *Checker) flush(op trace.Op) {
	dirty, redundant := false, false
	redundantAt := uint64(0)
	for a := op.Addr; a < op.Addr+op.Size; a++ {
		switch c.bytes[a] {
		case stateDirty:
			c.bytes[a] = stateFlushed
			dirty = true
		case stateFlushed:
			if !c.isExcluded(a) && !redundant {
				redundant, redundantAt = true, a
			}
		}
	}
	switch {
	case redundant:
		c.issues = append(c.issues, Issue{
			Kind: IssueDoubleFlush, Addr: redundantAt,
			Detail: "flushing memory already being flushed",
		})
	case !dirty && !c.isExcluded(op.Addr):
		c.issues = append(c.issues, Issue{
			Kind: IssueCleanFlush, Addr: op.Addr,
			Detail: "flushing clean (never written) memory",
		})
	}
}

func (c *Checker) fence() {
	for a, st := range c.bytes {
		if st == stateFlushed {
			delete(c.bytes, a)
		}
	}
}

// Finish reports every byte still not persisted, like pmemcheck's
// end-of-run summary, and returns all issues.
func (c *Checker) Finish() []Issue {
	reported := map[uint64]bool{}
	for a, st := range c.bytes {
		if st != stateClean && !c.isExcluded(a) && !reported[a] {
			c.issues = append(c.issues, Issue{
				Kind: IssueNotPersisted, Addr: a,
				Detail: "store never made persistent",
			})
			reported[a] = true
		}
	}
	return c.issues
}

// Issues returns findings so far without the end-of-run pass.
func (c *Checker) Issues() []Issue { return c.issues }

// TrackedBytes reports cumulative per-byte store work (the cost metric
// that makes pmemcheck slow).
func (c *Checker) TrackedBytes() uint64 { return c.storeBytes }

// CountKind tallies issues of one kind.
func CountKind(issues []Issue, kind string) int {
	n := 0
	for _, i := range issues {
		if i.Kind == kind {
			n++
		}
	}
	return n
}
