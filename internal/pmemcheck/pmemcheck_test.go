package pmemcheck

import (
	"testing"

	"pmtest/internal/pmem"
	"pmtest/internal/trace"
	"pmtest/internal/whisper"
)

func op(k trace.Kind, addr, size uint64) trace.Op {
	return trace.Op{Kind: k, Addr: addr, Size: size}
}

func TestCleanSequenceNoIssues(t *testing.T) {
	c := New()
	c.Record(op(trace.KindWrite, 0x10, 64), 0)
	c.Record(op(trace.KindFlush, 0x10, 64), 0)
	c.Record(op(trace.KindFence, 0, 0), 0)
	if issues := c.Finish(); len(issues) != 0 {
		t.Fatalf("issues = %v", issues)
	}
}

func TestUnpersistedStoreReported(t *testing.T) {
	c := New()
	c.Record(op(trace.KindWrite, 0x10, 8), 0)
	issues := c.Finish()
	if CountKind(issues, IssueNotPersisted) == 0 {
		t.Fatalf("missing not-persisted: %v", issues)
	}
}

func TestFlushWithoutFenceStillUnpersisted(t *testing.T) {
	c := New()
	c.Record(op(trace.KindWrite, 0x10, 8), 0)
	c.Record(op(trace.KindFlush, 0x10, 8), 0)
	issues := c.Finish()
	if CountKind(issues, IssueNotPersisted) == 0 {
		t.Fatalf("flush without fence must stay unpersisted: %v", issues)
	}
}

func TestDoubleFlushReported(t *testing.T) {
	c := New()
	c.Record(op(trace.KindWrite, 0x10, 8), 0)
	c.Record(op(trace.KindFlush, 0x10, 8), 0)
	c.Record(op(trace.KindFlush, 0x10, 8), 0)
	if CountKind(c.Issues(), IssueDoubleFlush) != 1 {
		t.Fatalf("issues = %v", c.Issues())
	}
}

func TestCleanFlushReported(t *testing.T) {
	c := New()
	c.Record(op(trace.KindFlush, 0x500, 64), 0)
	if CountKind(c.Issues(), IssueCleanFlush) != 1 {
		t.Fatalf("issues = %v", c.Issues())
	}
}

func TestTxUnloggedStoreReported(t *testing.T) {
	c := New()
	c.Record(op(trace.KindTxBegin, 0, 0), 0)
	c.Record(op(trace.KindTxAdd, 0x100, 64), 0)
	c.Record(op(trace.KindWrite, 0x100, 8), 0) // logged: fine
	c.Record(op(trace.KindWrite, 0x200, 8), 0) // unlogged
	c.Record(op(trace.KindTxEnd, 0, 0), 0)
	if CountKind(c.Issues(), IssueNoLog) != 1 {
		t.Fatalf("issues = %v", c.Issues())
	}
}

func TestExcludeSuppresses(t *testing.T) {
	c := New()
	c.Record(op(trace.KindExclude, 0x100, 64), 0)
	c.Record(op(trace.KindTxBegin, 0, 0), 0)
	c.Record(op(trace.KindWrite, 0x100, 8), 0)
	c.Record(op(trace.KindTxEnd, 0, 0), 0)
	c.Record(op(trace.KindFlush, 0x100, 8), 0)
	c.Record(op(trace.KindFlush, 0x100, 8), 0)
	c.Record(op(trace.KindFence, 0, 0), 0)
	if len(c.Issues()) != 0 {
		t.Fatalf("excluded range produced issues: %v", c.Issues())
	}
}

func TestNTStorePersistsAtFence(t *testing.T) {
	c := New()
	c.Record(op(trace.KindWriteNT, 0x10, 8), 0)
	c.Record(op(trace.KindFence, 0, 0), 0)
	if issues := c.Finish(); len(issues) != 0 {
		t.Fatalf("issues = %v", issues)
	}
}

// TestAgreesWithPMTestOnWorkloads: pmemcheck and PMTest must agree on
// clean vs buggy verdicts for the PMDK workloads they both support.
func TestAgreesWithPMTestOnWorkloads(t *testing.T) {
	run := func(bugs whisper.BugSet) []Issue {
		c := New()
		s, err := whisper.NewCTree(pmem.New(1<<24, c), bugs)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 50; i++ {
			if err := s.Insert(i*3, []byte{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Finish()
	}
	if issues := run(nil); len(issues) != 0 {
		t.Fatalf("clean ctree flagged by pmemcheck: %v", issues[:min(3, len(issues))])
	}
	buggy := run(whisper.BugSet{whisper.BugCTreeSkipParentLog: true})
	if CountKind(buggy, IssueNoLog) == 0 {
		t.Fatalf("pmemcheck missed the unlogged store: %v", buggy)
	}
}

func TestTrackedBytesGrowsPerByte(t *testing.T) {
	c := New()
	c.Record(op(trace.KindWrite, 0, 4096), 0)
	if c.TrackedBytes() != 4096 {
		t.Fatalf("TrackedBytes = %d", c.TrackedBytes())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
