package bugdb

import (
	"testing"

	"pmtest/internal/core"
)

// TestTable5Counts verifies the catalog matches the paper's Table 5
// composition exactly: 4 ordering, 6 writeback, 2 redundant-writeback,
// 19 backup, 7 completion, 4 duplicated-log synthetic bugs — 42 total —
// plus 3 known and 3 new (Table 6).
func TestTable5Counts(t *testing.T) {
	all := Catalog()
	syn := ByOrigin(all, OriginSynthetic)
	want := map[Category]int{
		CatOrdering:      4,
		CatWriteback:     6,
		CatPerfWriteback: 2,
		CatBackup:        19,
		CatCompletion:    7,
		CatPerfLog:       4,
	}
	got := map[Category]int{}
	for _, b := range syn {
		got[b.Category]++
	}
	for cat, n := range want {
		if got[cat] != n {
			t.Errorf("%s: %d synthetic bugs, want %d", cat, got[cat], n)
		}
	}
	if len(syn) != 42 {
		t.Errorf("synthetic bugs = %d, want 42", len(syn))
	}
	if n := len(ByOrigin(all, OriginKnown)); n != 3 {
		t.Errorf("known bugs = %d, want 3", n)
	}
	if n := len(ByOrigin(all, OriginNew)); n != 3 {
		t.Errorf("new bugs = %d, want 3", n)
	}
	if len(syn)+3 != 45 {
		t.Errorf("synthetic+reproduced = %d, want 45 (paper headline)", len(syn)+3)
	}
	// IDs must be unique.
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.ID] {
			t.Errorf("duplicate bug id %q", b.ID)
		}
		seen[b.ID] = true
	}
}

// TestAllBugsDetected is the paper's §6.3 result: PMTest reports every
// synthetic and reproduced bug in the catalog.
func TestAllBugsDetected(t *testing.T) {
	for _, b := range Catalog() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			t.Parallel()
			reports, err := b.Execute()
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if !b.Detected(reports) {
				var found string
				for _, r := range reports {
					if !r.Clean() {
						found += r.Summary()
					}
				}
				t.Fatalf("%s (%s, %s) not detected as %s; findings:\n%s",
					b.ID, b.Workload, b.PaperRef, b.Expect, found)
			}
			// Severity sanity: FAIL bugs must produce at least one FAIL,
			// WARN bugs at least one WARN.
			fails, warns := 0, 0
			for _, r := range reports {
				fails += r.Fails()
				warns += r.Warns()
			}
			if b.Severity == core.SeverityFail && fails == 0 {
				t.Fatalf("crash-consistency bug produced no FAIL")
			}
			if b.Severity == core.SeverityWarn && warns == 0 {
				t.Fatalf("performance bug produced no WARN")
			}
		})
	}
}

// TestCleanBaselinesProduceNoFindings guards against false positives: the
// same workloads with no bug injected are clean.
func TestCleanBaselinesProduceNoFindings(t *testing.T) {
	baselines := map[string]func() ([]core.Report, error){
		"ctree":     runStore(mkCTree, nil, noPoolBugs, ascending, 30, 128),
		"btree":     runStore(mkBTree, nil, noPoolBugs, zigzag, 60, 128),
		"rbtree":    runStore(mkRBTree, nil, noPoolBugs, ascending, 60, 128),
		"hmtx":      runStore(mkHMTx, nil, noPoolBugs, updateHeavy, 40, 128),
		"hmll":      runStore(mkHMLL, nil, noPoolBugs, updateHeavy, 40, 128),
		"redis":     runRedis(noPoolBugs, 30),
		"memcached": runMemcached(noRegionBugs, 30),
		"pmfs":      runPMFS(noFSBugs, pmfsWriteWorkload),
	}
	for name, run := range baselines {
		t.Run(name, func(t *testing.T) {
			reports, err := run()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				if !r.Clean() {
					t.Fatalf("clean %s produced findings: %s", name, r.Summary())
				}
			}
		})
	}
}
