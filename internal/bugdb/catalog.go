package bugdb

import (
	"pmtest/internal/core"
	"pmtest/internal/mnemosyne"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
	"pmtest/internal/pmfs"
	"pmtest/internal/whisper"
)

// Catalog returns every catalog entry: the 42 synthetic bugs of Table 5
// (4 ordering + 6 writeback + 2 redundant-writeback + 19 backup +
// 7 completion + 4 duplicated-log), the 3 known bugs reproduced from
// commit history and the 3 new bugs of Table 6 / Fig. 13 — the paper's
// 45 synthetic/reproduced detections plus the 3 new finds.
func Catalog() []Bug {
	var bugs []Bug
	add := func(b Bug) {
		b.LintRule = LintRuleForCategory(b.Category)
		bugs = append(bugs, b)
	}

	// --- Ordering (4) -------------------------------------------------------
	add(Bug{
		ID: "ord-1-hmll-backup-barrier", Category: CatOrdering, Origin: OriginSynthetic,
		Workload: "HashMap (w/o TX)", PaperRef: "Table 5; Fig. 1a",
		Description: "missing persist_barrier between backup creation and its valid flag",
		Expect:      core.CodeOrderViolation, Severity: core.SeverityFail,
		run: runStore(mkHMLL, whisper.BugSet{whisper.BugHMLLSkipBackupBarrier: true},
			pmdk.Bugs{}, updateHeavy, 40, 128),
	})
	add(Bug{
		ID: "ord-2-hmll-valid-before-value", Category: CatOrdering, Origin: OriginSynthetic,
		Workload: "HashMap (w/o TX)", PaperRef: "Table 5",
		Description: "slot valid flag persisted before the value it guards",
		Expect:      core.CodeOrderViolation, Severity: core.SeverityFail,
		run: runStore(mkHMLL, whisper.BugSet{whisper.BugHMLLValidBeforeValue: true},
			pmdk.Bugs{}, ascending, 40, 128),
	})
	add(Bug{
		ID: "ord-3-pmdk-log-entry-fence", Category: CatOrdering, Origin: OriginSynthetic,
		Workload: "C-Tree", PaperRef: "Table 5",
		Description: "missing fence between undo-log entry and its publication",
		Expect:      core.CodeOrderViolation, Severity: core.SeverityFail,
		run: runStore(mkCTree, nil, pmdk.Bugs{SkipLogEntryFence: true}, ascending, 30, 128),
	})
	add(Bug{
		ID: "ord-4-mnemosyne-log-flush", Category: CatOrdering, Origin: OriginSynthetic,
		Workload: "Memcached", PaperRef: "Table 5",
		Description: "redo-log entries not written back before the commit seal",
		Expect:      core.CodeOrderViolation, Severity: core.SeverityFail,
		run: runMemcached(mnemosyne.Bugs{SkipLogFlush: true}, 30),
	})

	// --- Writeback (6) ------------------------------------------------------
	add(Bug{
		ID: "wb-1-hmll-update-flush", Category: CatWriteback, Origin: OriginSynthetic,
		Workload: "HashMap (w/o TX)", PaperRef: "Table 5",
		Description: "slot update never written back",
		Expect:      core.CodeNotPersisted, Severity: core.SeverityFail,
		run: runStore(mkHMLL, whisper.BugSet{whisper.BugHMLLSkipUpdateFlush: true},
			pmdk.Bugs{}, ascending, 40, 128),
	})
	add(Bug{
		ID: "wb-2-hmll-update-fence", Category: CatWriteback, Origin: OriginSynthetic,
		Workload: "HashMap (w/o TX)", PaperRef: "Table 5",
		Description: "slot update flushed but never fenced before the valid flag",
		Expect:      core.CodeOrderViolation, Severity: core.SeverityFail,
		run: runStore(mkHMLL, whisper.BugSet{whisper.BugHMLLSkipUpdateFence: true},
			pmdk.Bugs{}, ascending, 40, 128),
	})
	add(Bug{
		ID: "wb-3-pmdk-log-entry-flush", Category: CatWriteback, Origin: OriginSynthetic,
		Workload: "B-Tree", PaperRef: "Table 5",
		Description: "undo-log entry never written back before publication",
		Expect:      core.CodeOrderViolation, Severity: core.SeverityFail,
		run: runStore(mkBTree, nil, pmdk.Bugs{SkipLogEntryFlush: true}, ascending, 30, 128),
	})
	add(Bug{
		ID: "wb-4-mnemosyne-apply-flush", Category: CatWriteback, Origin: OriginSynthetic,
		Workload: "Memcached", PaperRef: "Table 5",
		Description: "in-place updates not written back before redo-log truncation",
		Expect:      core.CodeNotPersisted, Severity: core.SeverityFail,
		run: runMemcached(mnemosyne.Bugs{SkipApplyFlush: true}, 30),
	})
	add(Bug{
		ID: "wb-5-pmfs-data-flush", Category: CatWriteback, Origin: OriginSynthetic,
		Workload: "PMFS", PaperRef: "Table 5",
		Description: "file data never written back before fsync returns",
		Expect:      core.CodeNotPersisted, Severity: core.SeverityFail,
		run: runPMFS(pmfs.Bugs{SkipDataFlush: true}, pmfsWriteWorkload),
	})
	add(Bug{
		ID: "wb-6-pmfs-inode-flush", Category: CatWriteback, Origin: OriginSynthetic,
		Workload: "PMFS", PaperRef: "Table 5",
		Description: "journaled metadata modified in place without writeback",
		Expect:      core.CodeNotPersisted, Severity: core.SeverityFail,
		run: runPMFS(pmfs.Bugs{SkipInodeFlush: true}, pmfsWriteWorkload),
	})

	// --- Performance: redundant writeback (2) -------------------------------
	add(Bug{
		ID: "pwb-1-hmll-double-flush", Category: CatPerfWriteback, Origin: OriginSynthetic,
		Workload: "HashMap (w/o TX)", PaperRef: "Table 5",
		Description: "same slot written back twice",
		Expect:      core.CodeDuplicateWriteback, Severity: core.SeverityWarn,
		run: runStore(mkHMLL, whisper.BugSet{whisper.BugHMLLDoubleSlotFlush: true},
			pmdk.Bugs{}, ascending, 40, 128),
	})
	add(Bug{
		ID: "pwb-2-hmll-flush-wrong-slot", Category: CatPerfWriteback, Origin: OriginSynthetic,
		Workload: "HashMap (w/o TX)", PaperRef: "Table 5",
		Description: "unmodified neighbouring slot written back",
		Expect:      core.CodeUnnecessaryWriteback, Severity: core.SeverityWarn,
		run: runStore(mkHMLL, whisper.BugSet{whisper.BugHMLLFlushWrongSlot: true},
			pmdk.Bugs{}, ascending, 40, 128),
	})

	// --- Backup: missing TX_ADD (19) ----------------------------------------
	backup := func(id, workload, desc string,
		mk func(d *pmem.Device, b whisper.BugSet) (whisper.Store, error),
		bug string, pattern keyPattern, n, valSize int) {
		add(Bug{
			ID: id, Category: CatBackup, Origin: OriginSynthetic,
			Workload: workload, PaperRef: "Table 5; Fig. 1b",
			Description: desc,
			Expect:      core.CodeMissingBackup, Severity: core.SeverityFail,
			run: runStore(mk, whisper.BugSet{bug: true}, pmdk.Bugs{}, pattern, n, valSize),
		})
	}
	backup("bk-1-ctree-root", "C-Tree", "root pointer updated without TX_ADD",
		mkCTree, whisper.BugCTreeSkipRootLog, ascending, 30, 64)
	backup("bk-2-ctree-parent-asc", "C-Tree", "parent child-pointer updated without TX_ADD (ascending keys)",
		mkCTree, whisper.BugCTreeSkipParentLog, ascending, 30, 64)
	backup("bk-3-ctree-parent-desc", "C-Tree", "parent child-pointer updated without TX_ADD (descending keys)",
		mkCTree, whisper.BugCTreeSkipParentLog, descending, 30, 64)
	backup("bk-4-ctree-parent-zigzag", "C-Tree", "parent child-pointer updated without TX_ADD (alternating keys)",
		mkCTree, whisper.BugCTreeSkipParentLog, zigzag, 30, 64)
	backup("bk-5-ctree-value", "C-Tree", "value pointer overwritten without TX_ADD",
		mkCTree, whisper.BugCTreeSkipValueLog, updateHeavy, 40, 64)
	backup("bk-6-btree-insert", "B-Tree", "leaf node modified without TX_ADD (insert_item)",
		mkBTree, whisper.BugBTreeSkipInsertLog, ascending, 30, 64)
	backup("bk-7-btree-insert-random", "B-Tree", "leaf node modified without TX_ADD (zigzag keys)",
		mkBTree, whisper.BugBTreeSkipInsertLog, zigzag, 30, 64)
	backup("bk-8-btree-root", "B-Tree", "root pointer updated without TX_ADD",
		mkBTree, whisper.BugBTreeSkipRootLog, ascending, 30, 64)
	backup("bk-9-btree-split", "B-Tree", "split source node shrunk without TX_ADD",
		mkBTree, whisper.BugBTreeSkipSplitLog, ascending, 60, 64)
	backup("bk-10-btree-split-parent", "B-Tree", "split parent modified without TX_ADD",
		mkBTree, whisper.BugBTreeSkipParentLog, ascending, 60, 64)
	backup("bk-11-rbtree-node", "RB-Tree", "tree node modified without TX_ADD",
		mkRBTree, whisper.BugRBTreeSkipNodeLog, ascending, 30, 64)
	backup("bk-12-rbtree-node-zigzag", "RB-Tree", "tree node modified without TX_ADD (alternating keys)",
		mkRBTree, whisper.BugRBTreeSkipNodeLog, zigzag, 30, 64)
	backup("bk-13-rbtree-root", "RB-Tree", "root pointer updated without TX_ADD",
		mkRBTree, whisper.BugRBTreeSkipRootLog, ascending, 30, 64)
	backup("bk-14-rbtree-uncle", "RB-Tree", "recoloured uncle modified without TX_ADD",
		mkRBTree, whisper.BugRBTreeSkipUncleLog, ascending, 60, 64)
	backup("bk-15-hmtx-bucket", "HashMap (w/ TX)", "bucket head updated without TX_ADD",
		mkHMTx, whisper.BugHMTxSkipBucketLog, ascending, 30, 64)
	backup("bk-16-hmtx-bucket-desc", "HashMap (w/ TX)", "bucket head updated without TX_ADD (descending keys)",
		mkHMTx, whisper.BugHMTxSkipBucketLog, descending, 30, 64)
	backup("bk-17-hmtx-value", "HashMap (w/ TX)", "chained value overwritten without TX_ADD",
		mkHMTx, whisper.BugHMTxSkipValueLog, updateHeavy, 40, 64)
	backup("bk-18-ctree-value-large", "C-Tree", "large value overwritten without TX_ADD (4 KiB values)",
		mkCTree, whisper.BugCTreeSkipValueLog, updateHeavy, 30, 4096)
	backup("bk-19-btree-split-deep", "B-Tree", "deep split source shrunk without TX_ADD (many levels)",
		mkBTree, whisper.BugBTreeSkipSplitLog, zigzag, 120, 64)

	// --- Completion: incomplete transactions (7) ----------------------------
	completion := func(id, workload string,
		mk func(d *pmem.Device, b whisper.BugSet) (whisper.Store, error), pattern keyPattern) {
		add(Bug{
			ID: id, Category: CatCompletion, Origin: OriginSynthetic,
			Workload: workload, PaperRef: "Table 5",
			Description: "transaction updates never written back at commit",
			Expect:      core.CodeIncompleteTx, Severity: core.SeverityFail,
			run: runStore(mk, nil, pmdk.Bugs{SkipCommitFlush: true}, pattern, 30, 64),
		})
	}
	completion("cp-1-ctree-commit-flush", "C-Tree", mkCTree, ascending)
	completion("cp-2-btree-commit-flush", "B-Tree", mkBTree, ascending)
	completion("cp-3-rbtree-commit-flush", "RB-Tree", mkRBTree, ascending)
	completion("cp-4-hmtx-commit-flush", "HashMap (w/ TX)", mkHMTx, ascending)
	add(Bug{
		ID: "cp-5-redis-commit-flush", Category: CatCompletion, Origin: OriginSynthetic,
		Workload: "Redis", PaperRef: "Table 5",
		Description: "transaction updates never written back at commit (Redis)",
		Expect:      core.CodeIncompleteTx, Severity: core.SeverityFail,
		run: runRedis(pmdk.Bugs{SkipCommitFlush: true}, 30),
	})
	add(Bug{
		ID: "cp-6-pmdk-commit-fence", Category: CatCompletion, Origin: OriginSynthetic,
		Workload: "C-Tree", PaperRef: "Table 5",
		Description: "log invalidated without fencing the flushed updates",
		Expect:      core.CodeNotPersisted, Severity: core.SeverityFail,
		run: runStore(mkCTree, nil, pmdk.Bugs{SkipCommitFence: true}, ascending, 30, 64),
	})
	add(Bug{
		ID: "cp-7-mnemosyne-seal-fence", Category: CatCompletion, Origin: OriginSynthetic,
		Workload: "Memcached", PaperRef: "Table 5",
		Description: "commit seal not durable when the transaction reports success",
		Expect:      core.CodeNotPersisted, Severity: core.SeverityFail,
		run: runMemcached(mnemosyne.Bugs{SkipSealFence: true}, 30),
	})

	// --- Performance: duplicated log (4) ------------------------------------
	perfLog := func(id, workload string,
		mk func(d *pmem.Device, b whisper.BugSet) (whisper.Store, error), bug string, pattern keyPattern, n int) {
		add(Bug{
			ID: id, Category: CatPerfLog, Origin: OriginSynthetic,
			Workload: workload, PaperRef: "Table 5",
			Description: "same persistent object logged more than once",
			Expect:      core.CodeDuplicateLog, Severity: core.SeverityWarn,
			run: runStore(mk, whisper.BugSet{bug: true}, pmdk.Bugs{}, pattern, n, 64),
		})
	}
	perfLog("pl-1-ctree-double-root", "C-Tree", mkCTree, whisper.BugCTreeDoubleRootLog, ascending, 20)
	perfLog("pl-2-btree-double-insert", "B-Tree", mkBTree, whisper.BugBTreeDoubleInsertLog, ascending, 20)
	perfLog("pl-3-rbtree-double-node", "RB-Tree", mkRBTree, whisper.BugRBTreeDoubleNodeLog, ascending, 20)
	perfLog("pl-4-hmtx-double-bucket", "HashMap (w/ TX)", mkHMTx, whisper.BugHMTxDoubleBucketLog, ascending, 20)

	// --- Table 6: known bugs reproduced from commit history (3) --------------
	add(Bug{
		ID: "known-1-pmfs-xips-double-flush", Category: CatPerfWriteback, Origin: OriginKnown,
		Workload: "PMFS", PaperRef: "Table 6; xips.c:207,262",
		Description: "the same persistent buffer is flushed twice in the XIP write path",
		Expect:      core.CodeDuplicateWriteback, Severity: core.SeverityWarn,
		run: runPMFS(pmfs.Bugs{DoubleFlushData: true}, pmfsWriteWorkload),
	})
	add(Bug{
		ID: "known-2-pmfs-files-unmapped-flush", Category: CatPerfWriteback, Origin: OriginKnown,
		Workload: "PMFS", PaperRef: "Table 6; files.c:232",
		Description: "an unmapped (never written) buffer is flushed",
		Expect:      core.CodeUnnecessaryWriteback, Severity: core.SeverityWarn,
		run: runPMFS(pmfs.Bugs{FlushUnmapped: true}, pmfsWriteWorkload),
	})
	add(Bug{
		ID: "known-3-pmdk-rbtree-missing-log", Category: CatBackup, Origin: OriginKnown,
		Workload: "RB-Tree", PaperRef: "Table 6; rbtree_map.c:379",
		Description: "a tree node is modified without logging it",
		Expect:      core.CodeMissingBackup, Severity: core.SeverityFail,
		run: runStore(mkRBTree, whisper.BugSet{whisper.BugRBTreeSkipNodeLog: true},
			pmdk.Bugs{}, descending, 40, 64),
	})

	// --- Table 6: new bugs found by PMTest (3, Fig. 13) ----------------------
	add(Bug{
		ID: "new-1-pmfs-journal-double-flush", Category: CatPerfWriteback, Origin: OriginNew,
		Workload: "PMFS", PaperRef: "Table 6; journal.c:632; Fig. 13a",
		Description: "committing a journal transaction re-flushes already-flushed log entries",
		Expect:      core.CodeDuplicateWriteback, Severity: core.SeverityWarn,
		run: runPMFS(pmfs.Bugs{DoubleFlushCommit: true}, pmfsWriteWorkload),
	})
	add(Bug{
		ID: "new-2-pmdk-btree-split-missing-log", Category: CatBackup, Origin: OriginNew,
		Workload: "B-Tree", PaperRef: "Table 6; btree_map.c:201; Fig. 13b",
		Description: "create_split_node modifies the source node without logging it",
		Expect:      core.CodeMissingBackup, Severity: core.SeverityFail,
		run: runStore(mkBTree, whisper.BugSet{whisper.BugBTreeSkipSplitLog: true},
			pmdk.Bugs{}, ascending, 80, 64),
	})
	add(Bug{
		ID: "new-3-pmdk-btree-double-log", Category: CatPerfLog, Origin: OriginNew,
		Workload: "B-Tree", PaperRef: "Table 6; btree_map.c:367; Fig. 13c",
		Description: "the rotate/insert path logs a node insert_item already logged",
		Expect:      core.CodeDuplicateLog, Severity: core.SeverityWarn,
		run: runStore(mkBTree, whisper.BugSet{whisper.BugBTreeDoubleInsertLog: true},
			pmdk.Bugs{}, zigzag, 40, 64),
	})

	// --- Extension workloads (beyond the paper's 45) -------------------------
	add(Bug{
		ID: "ext-1-echo-entry-flush", Category: CatOrdering, Origin: OriginExtension,
		Workload: "Echo (WAL)", PaperRef: "extension",
		Description: "WAL record not persisted before the commit pointer covers it",
		Expect:      core.CodeOrderViolation, Severity: core.SeverityFail,
		run: runEcho(whisper.BugSet{whisper.BugEchoSkipEntryFlush: true}, 30),
	})
	add(Bug{
		ID: "ext-2-echo-commit-fence", Category: CatCompletion, Origin: OriginExtension,
		Workload: "Echo (WAL)", PaperRef: "extension",
		Description: "commit pointer not durable when Set returns",
		Expect:      core.CodeNotPersisted, Severity: core.SeverityFail,
		run: runEcho(whisper.BugSet{whisper.BugEchoSkipCommitFence: true}, 30),
	})

	return bugs
}

// ByOrigin filters the catalog.
func ByOrigin(bugs []Bug, o Origin) []Bug {
	var out []Bug
	for _, b := range bugs {
		if b.Origin == o {
			out = append(out, b)
		}
	}
	return out
}

// ByCategory filters the catalog.
func ByCategory(bugs []Bug, c Category) []Bug {
	var out []Bug
	for _, b := range bugs {
		if b.Category == c {
			out = append(out, b)
		}
	}
	return out
}
