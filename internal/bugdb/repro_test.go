package bugdb

import (
	"strings"
	"testing"

	"pmtest/internal/core"
	"pmtest/internal/trace"
)

func sampleRepro() Repro {
	return Repro{
		ID: "campaign/test/drop-flush@0", Workload: "test", FaultClass: "drop-flush",
		Seed: 1, Site: 0, Code: core.CodeNotPersisted,
		Ops: []trace.Op{
			{Kind: trace.KindWrite, Addr: 0, Size: 8},
			{Kind: trace.KindIsPersist, Addr: 0, Size: 8},
		},
		OrigOps: 10, ImageHash: "deadbeef", StatesExplored: 4,
	}
}

func TestReproReplayReproduces(t *testing.T) {
	r := sampleRepro()
	if !r.Reproduces(nil) {
		t.Fatalf("minimized trace does not reproduce %s: %v", r.Code, r.Replay(nil).Diags)
	}
	// A repaired trace must stop reproducing.
	fixed := r
	fixed.Ops = []trace.Op{
		{Kind: trace.KindWrite, Addr: 0, Size: 8},
		{Kind: trace.KindFlush, Addr: 0, Size: 8},
		{Kind: trace.KindFence},
		{Kind: trace.KindIsPersist, Addr: 0, Size: 8},
	}
	if fixed.Reproduces(nil) {
		t.Fatal("repaired trace still reproduces")
	}
}

func TestFaultClassCategory(t *testing.T) {
	cases := map[string]Category{
		"drop-flush":   CatWriteback,
		"delay-flush":  CatWriteback,
		"drop-fence":   CatOrdering,
		"weaken-fence": CatOrdering,
		"torn-store":   CatCompletion,
		"evict":        "", // legal hardware behaviour, not a bug class
	}
	for class, want := range cases {
		if got := FaultClassCategory(class); got != want {
			t.Errorf("FaultClassCategory(%q) = %q, want %q", class, got, want)
		}
	}
}

func TestReproDB(t *testing.T) {
	var db ReproDB
	b := sampleRepro()
	b.ID = "campaign/test/z@9"
	db.Add(b)
	db.Add(sampleRepro())
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	all := db.All()
	if all[0].ID != "campaign/test/drop-flush@0" {
		t.Fatalf("All not sorted by ID: %v", []string{all[0].ID, all[1].ID})
	}
	if s := db.Summary(); !strings.Contains(s, "drop-flush → not-persisted") {
		t.Fatalf("Summary missing detail:\n%s", s)
	}
}
