// Package bugdb is the synthetic/reproduced bug catalog of the paper's
// evaluation (§6.3, Tables 5 and 6): 42 systematically created bugs in
// the WHISPER workloads spanning the six classes of Table 5, the 3 known
// bugs reproduced from the PMFS/PMDK commit histories, and the 3 new bugs
// PMTest found (Fig. 13). Every entry is executable: Execute runs the
// workload with the bug injected under full checker instrumentation and
// returns the engine's reports, so one test sweep validates the paper's
// headline claim that all 45 synthetic/reproduced bugs are detected.
package bugdb

import (
	"bytes"
	"fmt"
	"time"

	"pmtest/internal/core"
	"pmtest/internal/mnemosyne"
	"pmtest/internal/obs"
	"pmtest/internal/pmdk"
	"pmtest/internal/pmem"
	"pmtest/internal/pmfs"
	"pmtest/internal/trace"
	"pmtest/internal/whisper"
)

// Category is the bug class of paper Table 5.
type Category string

// Table 5 bug classes.
const (
	CatOrdering      Category = "ordering"       // missing/misplaced ordering enforcement
	CatWriteback     Category = "writeback"      // missing/misplaced writeback operations
	CatPerfWriteback Category = "perf-writeback" // redundant writebacks
	CatBackup        Category = "backup"         // missing/misplaced TX_ADD backups
	CatCompletion    Category = "completion"     // incomplete transactions
	CatPerfLog       Category = "perf-log"       // duplicated undo-log entries
)

// Origin distinguishes Table 5 synthetic bugs from Table 6's reproduced
// and newly found ones.
type Origin string

// Bug origins.
const (
	OriginSynthetic Origin = "synthetic" // Table 5
	OriginKnown     Origin = "known"     // Table 6, reproduced from commit history
	OriginNew       Origin = "new"       // Table 6, found by PMTest
	// OriginExtension marks bugs in workloads this reproduction adds
	// beyond the paper (they do not count toward the paper's 45).
	OriginExtension Origin = "extension"
)

// Bug is one executable catalog entry.
type Bug struct {
	// ID is the unique catalog identifier.
	ID string
	// Category is the Table 5 class.
	Category Category
	// Origin marks synthetic vs known vs new.
	Origin Origin
	// Workload names the program the bug lives in.
	Workload string
	// Description explains the defect.
	Description string
	// PaperRef cites the paper table/figure (and file:line for Table 6).
	PaperRef string
	// Expect is the diagnostic code PMTest must report.
	Expect core.Code
	// Severity is the expected severity (FAIL for crash-consistency bugs,
	// WARN for performance bugs).
	Severity core.Severity
	// LintRule names the pmlint rule (internal/lint) that targets this
	// bug's class statically, or "" when no static rule applies (the
	// duplicate-log class needs runtime undo-log state).
	LintRule string

	run func() ([]core.Report, error)
}

// LintRuleForCategory maps a Table 5 bug class to the pmlint rule that
// flags it statically ("" when the class has no static counterpart).
func LintRuleForCategory(c Category) string {
	switch c {
	case CatOrdering:
		return "missedfence"
	case CatWriteback:
		return "missedflush"
	case CatPerfWriteback:
		return "doubleflush"
	case CatBackup:
		return "txnolog"
	case CatCompletion:
		return "checkermisuse"
	}
	return ""
}

// Execute runs the buggy workload under checker instrumentation and
// returns the per-section reports.
func (b Bug) Execute() ([]core.Report, error) { return b.run() }

// Detected reports whether the expected diagnostic appears in reports.
func (b Bug) Detected(reports []core.Report) bool {
	return core.CountCode(reports, b.Expect) > 0
}

const devSize = 1 << 24

// checkObs, when set, receives a TraceChecked event for every section the
// catalog checks. The catalog checks synchronously (no engine), so this
// is its only observer seam; cmd/repro points it at the flight recorder
// so Table 5/6 sweeps produce checker spans too.
var checkObs obs.Observer

// ObserveChecks installs (or, with nil, removes) the observer notified
// of every section checked by catalog runs. Not safe to change while
// runs are in flight.
func ObserveChecks(o obs.Observer) { checkObs = o }

// check validates one section and notifies the observer, if any. All
// catalog run helpers funnel through it.
func check(ops []trace.Op) core.Report {
	tr := &trace.Trace{Ops: append([]trace.Op(nil), ops...)}
	start := time.Now()
	rep := core.CheckTrace(core.X86{}, tr)
	if checkObs != nil {
		checkObs.TraceChecked(core.ReportEvent(tr, rep, 0, 0, time.Since(start)))
	}
	return rep
}

// recorder buffers ops (one section at a time).
type recorder struct{ ops []trace.Op }

func (r *recorder) Record(op trace.Op, _ int) { r.ops = append(r.ops, op) }

// keyPattern generates the key for insert i, shaping which code paths
// (fresh insert, update, split, rotation) the run exercises.
type keyPattern func(i int) uint64

var (
	ascending   = func(i int) uint64 { return uint64(i) * 17 }
	descending  = func(i int) uint64 { return uint64(4000 - i*13) }
	updateHeavy = func(i int) uint64 { return uint64(i%12) * 29 }
	zigzag      = func(i int) uint64 {
		if i%2 == 0 {
			return uint64(i) * 7
		}
		return uint64(100000 - i*11)
	}
)

// runStore drives a microbenchmark store with per-insert checking.
func runStore(mk func(dev *pmem.Device, bugs whisper.BugSet) (whisper.Store, error),
	bugs whisper.BugSet, pool pmdk.Bugs, pattern keyPattern, n, valSize int) func() ([]core.Report, error) {
	return func() ([]core.Report, error) {
		rec := &recorder{}
		s, err := mk(pmem.New(devSize, rec), bugs)
		if err != nil {
			return nil, err
		}
		type pooled interface{ Pool() *pmdk.Pool }
		if p, ok := s.(pooled); ok {
			p.Pool().SetBugs(pool)
			p.Pool().SetAnnotations(true)
		}
		s.(whisper.Checkered).SetCheckers(true)
		val := bytes.Repeat([]byte{0x5A}, valSize)
		var reports []core.Report
		for i := 0; i < n; i++ {
			rec.ops = rec.ops[:0]
			if err := s.Insert(pattern(i), val); err != nil {
				return nil, fmt.Errorf("insert %d: %w", i, err)
			}
			reports = append(reports, check(rec.ops))
		}
		return reports, nil
	}
}

func mkCTree(d *pmem.Device, b whisper.BugSet) (whisper.Store, error) { return whisper.NewCTree(d, b) }
func mkBTree(d *pmem.Device, b whisper.BugSet) (whisper.Store, error) { return whisper.NewBTree(d, b) }
func mkRBTree(d *pmem.Device, b whisper.BugSet) (whisper.Store, error) {
	return whisper.NewRBTree(d, b)
}
func mkHMTx(d *pmem.Device, b whisper.BugSet) (whisper.Store, error) {
	return whisper.NewHashmapTX(d, 256, b)
}
func mkHMLL(d *pmem.Device, b whisper.BugSet) (whisper.Store, error) {
	return whisper.NewHashmapLL(d, 1024, 4096, b)
}

// runRedis drives the Redis workload with pool-level bugs.
func runRedis(pool pmdk.Bugs, n int) func() ([]core.Report, error) {
	return func() ([]core.Report, error) {
		rec := &recorder{}
		r, err := whisper.NewRedis(pmem.New(devSize, rec), 256, 1<<30)
		if err != nil {
			return nil, err
		}
		r.Pool().SetBugs(pool)
		r.Pool().SetAnnotations(true)
		r.SetCheckers(true)
		var reports []core.Report
		for i := 0; i < n; i++ {
			rec.ops = rec.ops[:0]
			if err := r.Set(uint64(i)*3, []byte("redis-value")); err != nil {
				return nil, err
			}
			reports = append(reports, check(rec.ops))
		}
		return reports, nil
	}
}

// runMemcached drives one memcached shard with region-level bugs.
func runMemcached(region mnemosyne.Bugs, n int) func() ([]core.Report, error) {
	return func() ([]core.Report, error) {
		rec := &recorder{}
		devs := []*pmem.Device{pmem.New(whisper.MemcachedShardSpace(2048, 256), rec)}
		m, err := whisper.NewMemcached(devs, 2048, 256)
		if err != nil {
			return nil, err
		}
		m.Region(0).SetBugs(region)
		m.SetCheckers(true)
		rec.ops = rec.ops[:0]
		var reports []core.Report
		m.SetSectionHook(0, func() {
			if len(rec.ops) > 0 {
				reports = append(reports, check(rec.ops))
				rec.ops = rec.ops[:0]
			}
		})
		for i := 0; i < n; i++ {
			if err := m.Set(uint64(i), []byte("memcached-value")); err != nil {
				return nil, err
			}
		}
		return reports, nil
	}
}

// runPMFS drives the file system with FS-level bugs.
func runPMFS(bugs pmfs.Bugs, ops func(fs *pmfs.FS) error) func() ([]core.Report, error) {
	return func() ([]core.Report, error) {
		rec := &recorder{}
		fs, err := pmfs.Mkfs(pmem.New(devSize, rec), 64, 128)
		if err != nil {
			return nil, err
		}
		fs.SetBugs(bugs)
		fs.SetAnnotations(true)
		rec.ops = rec.ops[:0]
		var reports []core.Report
		fs.SetSectionHook(func() {
			if len(rec.ops) > 0 {
				reports = append(reports, check(rec.ops))
				rec.ops = rec.ops[:0]
			}
		})
		if err := ops(fs); err != nil {
			return nil, err
		}
		return reports, nil
	}
}

// runEcho drives the WAL key-value store with per-op checking.
func runEcho(bugs whisper.BugSet, n int) func() ([]core.Report, error) {
	return func() ([]core.Report, error) {
		rec := &recorder{}
		e, err := whisper.NewEcho(pmem.New(devSize, rec), 1<<20, bugs)
		if err != nil {
			return nil, err
		}
		e.SetCheckers(true)
		var reports []core.Report
		for i := 0; i < n; i++ {
			rec.ops = rec.ops[:0]
			if err := e.Set(uint64(i), []byte("echo-value")); err != nil {
				return nil, err
			}
			reports = append(reports, check(rec.ops))
		}
		return reports, nil
	}
}

func pmfsWriteWorkload(fs *pmfs.FS) error {
	ino, err := fs.CreateFile("table")
	if err != nil {
		return err
	}
	buf := bytes.Repeat([]byte{7}, 1024)
	for i := uint64(0); i < 8; i++ {
		if err := fs.WriteFile(ino, i*512, buf); err != nil {
			return err
		}
	}
	return fs.Fsync(ino)
}

// Zero-valued bug sets for the clean baselines (tests and the harness).
var (
	noPoolBugs   = pmdk.Bugs{}
	noRegionBugs = mnemosyne.Bugs{}
	noFSBugs     = pmfs.Bugs{}
)
