package bugdb

// This file extends the catalog beyond the paper's hand-written bugs:
// fault-injection campaigns (internal/faultinject) deposit the bugs they
// *find and demonstrate* here as minimized, replayable reproducers. Where
// a catalog Bug re-runs a whole workload with a source-level defect
// switched on, a Repro is the delta-debugged trace itself — replaying it
// through the checking rules must reproduce the verdict bit-for-bit, from
// any process, with no workload or device required.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pmtest/internal/core"
	"pmtest/internal/trace"
)

// Repro is one minimized reproducer discovered by a fault-injection
// campaign: the smallest op subsequence of the faulted trace section that
// still triggers the diagnostic, plus the crash-state evidence that the
// flagged bug is real (a concrete durable state whose recovery failed).
type Repro struct {
	// ID is the campaign-assigned identifier,
	// e.g. "campaign/ctree/drop-flush@3".
	ID string `json:"id"`
	// Workload names the campaign target the fault was injected into.
	Workload string `json:"workload"`
	// FaultClass is the injected fault taxonomy name
	// (faultinject.Class.String()).
	FaultClass string `json:"fault_class"`
	// Seed and Site make the finding reproducible: re-running the
	// campaign with this seed re-injects the same fault at the same
	// primitive occurrence.
	Seed int64 `json:"seed"`
	Site int   `json:"site"`
	// Code is the diagnostic the engine reported and the minimized trace
	// must still reproduce.
	Code core.Code `json:"code"`
	// Ops is the minimized trace section.
	Ops []trace.Op `json:"ops"`
	// OrigOps is the length of the un-minimized faulted section.
	OrigOps int `json:"orig_ops"`
	// ImageHash identifies the concrete crash state whose recovery
	// failed (hex sha256 prefix), tying the diagnostic to ground truth.
	ImageHash string `json:"image_hash"`
	// StatesExplored counts crash states validated while searching for
	// the failing one.
	StatesExplored uint64 `json:"states_explored"`
}

// Replay runs the minimized trace through the checking rules and returns
// the report. Rules defaults to X86 when nil.
func (r Repro) Replay(rules core.RuleSet) core.Report {
	if rules == nil {
		rules = core.X86{}
	}
	return core.CheckTrace(rules, &trace.Trace{Ops: r.Ops})
}

// Reproduces reports whether replaying the minimized trace still yields
// the recorded diagnostic code.
func (r Repro) Reproduces(rules core.RuleSet) bool {
	return r.Replay(rules).HasCode(r.Code)
}

// Category maps the reproducer's fault class onto the paper's Table 5 bug
// classes, so campaign findings slot into the same taxonomy as the
// hand-written catalog.
func (r Repro) Category() Category { return FaultClassCategory(r.FaultClass) }

// FaultClassCategory maps a faultinject class name to the Table 5
// category it most resembles ("" for classes that model legal hardware
// behaviour rather than bugs).
func FaultClassCategory(class string) Category {
	switch class {
	case "drop-flush", "delay-flush":
		return CatWriteback
	case "drop-fence", "weaken-fence":
		return CatOrdering
	case "torn-store":
		return CatCompletion
	}
	return ""
}

// String renders a one-line summary of the reproducer.
func (r Repro) String() string {
	return fmt.Sprintf("%s: %s → %s, %d ops (from %d), failing state %s",
		r.ID, r.FaultClass, r.Code, len(r.Ops), r.OrigOps, r.ImageHash)
}

// ReproDB collects the reproducers of one campaign run. It is safe for
// concurrent use (campaign workers may add from several goroutines).
type ReproDB struct {
	mu     sync.Mutex
	repros []Repro
}

// Add records one reproducer.
func (db *ReproDB) Add(r Repro) {
	db.mu.Lock()
	db.repros = append(db.repros, r)
	db.mu.Unlock()
}

// Len returns the number of recorded reproducers.
func (db *ReproDB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.repros)
}

// All returns the reproducers sorted by ID.
func (db *ReproDB) All() []Repro {
	db.mu.Lock()
	out := append([]Repro(nil), db.repros...)
	db.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Summary renders one line per reproducer.
func (db *ReproDB) Summary() string {
	var b strings.Builder
	for _, r := range db.All() {
		fmt.Fprintf(&b, "%s\n", r)
	}
	return b.String()
}
