package bugdb

import (
	"testing"

	"pmtest/internal/lint"
)

// TestLintRuleCoverage ties the static and dynamic halves of the
// framework together: every populated LintRule names a registered rule
// and matches its category's canonical rule, and every pmlint rule
// targets a bug category with at least one executable catalog entry.
// (Several rules can share a category — the interprocedural rules
// crossflush/recoveryread are the cross-function faces of writeback,
// redundantflush of perf-writeback — so coverage is per category, not
// per rule name.)
func TestLintRuleCoverage(t *testing.T) {
	registered := map[string]bool{}
	for _, r := range lint.Rules() {
		registered[r.Name] = true
	}

	byCategory := map[string]int{}
	for _, b := range Catalog() {
		byCategory[string(b.Category)]++
		if b.LintRule == "" {
			if b.Category != CatPerfLog {
				t.Errorf("bug %s (category %s) has no lint rule", b.ID, b.Category)
			}
			continue
		}
		if !registered[b.LintRule] {
			t.Errorf("bug %s names unregistered lint rule %q", b.ID, b.LintRule)
		}
		if want := LintRuleForCategory(b.Category); b.LintRule != want {
			t.Errorf("bug %s: LintRule %q, want %q for category %s", b.ID, b.LintRule, want, b.Category)
		}
	}
	for _, r := range lint.Rules() {
		if byCategory[r.BugDB] == 0 {
			t.Errorf("lint rule %s targets category %s with no catalog entry", r.Name, r.BugDB)
		}
	}
}

// TestSelfCheckMatchesCatalog: for every catalog category with a static
// rule, the rule's canonical known-bad snippet actually trips it — the
// probe bughunt -lint relies on.
func TestSelfCheckMatchesCatalog(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Catalog() {
		if b.LintRule == "" || seen[b.LintRule] {
			continue
		}
		seen[b.LintRule] = true
		if !lint.SelfCheck(b.LintRule) {
			t.Errorf("lint.SelfCheck(%q) = false for category %s", b.LintRule, b.Category)
		}
	}
}
