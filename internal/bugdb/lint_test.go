package bugdb

import (
	"testing"

	"pmtest/internal/lint"
)

// TestLintRuleCoverage ties the static and dynamic halves of the
// framework together: every pmlint rule targets at least one executable
// catalog entry, every populated LintRule names a registered rule, and
// the per-category mapping is total except for the duplicate-log class
// (which needs runtime undo-log state to detect).
func TestLintRuleCoverage(t *testing.T) {
	registered := map[string]bool{}
	for _, r := range lint.Rules() {
		registered[r.Name] = true
	}

	byRule := map[string]int{}
	for _, b := range Catalog() {
		if b.LintRule == "" {
			if b.Category != CatPerfLog {
				t.Errorf("bug %s (category %s) has no lint rule", b.ID, b.Category)
			}
			continue
		}
		if !registered[b.LintRule] {
			t.Errorf("bug %s names unregistered lint rule %q", b.ID, b.LintRule)
		}
		if want := LintRuleForCategory(b.Category); b.LintRule != want {
			t.Errorf("bug %s: LintRule %q, want %q for category %s", b.ID, b.LintRule, want, b.Category)
		}
		byRule[b.LintRule]++
	}
	for name := range registered {
		if byRule[name] == 0 {
			t.Errorf("lint rule %s maps to no catalog entry", name)
		}
	}
}

// TestSelfCheckMatchesCatalog: for every catalog category with a static
// rule, the rule's canonical known-bad snippet actually trips it — the
// probe bughunt -lint relies on.
func TestSelfCheckMatchesCatalog(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Catalog() {
		if b.LintRule == "" || seen[b.LintRule] {
			continue
		}
		seen[b.LintRule] = true
		if !lint.SelfCheck(b.LintRule) {
			t.Errorf("lint.SelfCheck(%q) = false for category %s", b.LintRule, b.Category)
		}
	}
}
