// Package yat reimplements the testing approach of Yat, the exhaustive
// crash-consistency validator the paper contrasts PMTest with (§2.2):
// record a trace of PM operations, then replay it, and at every point a
// crash could occur, materialize EVERY reachable durable state (each
// subset of not-yet-persisted cache lines may or may not have landed) and
// run the application's recovery validator against it.
//
// The state space is exponential in the number of dirty lines at each
// crash point — the paper quotes more than five years for a 100k-op PMFS
// trace — so Run takes explicit budgets and reports both what it tested
// and the size of the full space it would have had to explore. That
// number is the motivation for PMTest's interval inference, and the
// harness prints it alongside the Fig. 10 results.
package yat

import (
	"fmt"

	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// Limits bounds an exhaustive run.
type Limits struct {
	// MaxStatesPerPoint caps the crash states enumerated at each op
	// boundary (0 = 256).
	MaxStatesPerPoint int
	// MaxTotalStates caps the total states validated (0 = 1<<20).
	MaxTotalStates int
}

func (l Limits) withDefaults() Limits {
	if l.MaxStatesPerPoint == 0 {
		l.MaxStatesPerPoint = 256
	}
	if l.MaxTotalStates == 0 {
		l.MaxTotalStates = 1 << 20
	}
	return l
}

// Violation is a crash state whose recovery failed.
type Violation struct {
	// OpIndex is the trace position after which the crash occurred.
	OpIndex int
	// Err is the validator's explanation.
	Err error
}

func (v Violation) String() string {
	return fmt.Sprintf("crash after op %d: %v", v.OpIndex, v.Err)
}

// Result summarizes an exhaustive run.
type Result struct {
	// Points is the number of crash points replayed (one per op).
	Points int
	// StatesTested is the number of crash states validated.
	StatesTested int
	// StateSpace is the size of the FULL crash-state space (sum over
	// points of 2^dirtyLines), whether or not it was all tested.
	StateSpace float64
	// Truncated reports that budgets cut enumeration short.
	Truncated bool
	// Violations lists failing crash states (possibly capped).
	Violations []Violation
}

// Ok reports whether no violation was found.
func (r Result) Ok() bool { return len(r.Violations) == 0 }

// Run replays ops from the initial durable image and validates every
// reachable crash state within limits. validate receives a scratch image
// it may read freely (copy to retain).
func Run(initial []byte, ops []trace.Op, validate func(img []byte) error, lim Limits) Result {
	lim = lim.withDefaults()
	dev := pmem.FromImage(initial, nil)
	res := Result{}
	for i, op := range ops {
		applyOp(dev, op)
		if op.Kind.IsChecker() || op.Kind == trace.KindTxBegin ||
			op.Kind == trace.KindTxEnd || op.Kind == trace.KindTxAdd {
			continue // library events; no new durable state
		}
		res.Points++
		res.StateSpace += dev.CrashStateCount()
		budget := lim.MaxStatesPerPoint
		if rem := lim.MaxTotalStates - res.StatesTested; rem < budget {
			budget = rem
		}
		if budget <= 0 {
			res.Truncated = true
			continue
		}
		complete := dev.EnumerateCrashStates(budget, func(img []byte) bool {
			res.StatesTested++
			if err := validate(img); err != nil {
				res.Violations = append(res.Violations, Violation{OpIndex: i, Err: err})
				return len(res.Violations) < 16 // cap reporting
			}
			return true
		})
		if !complete {
			res.Truncated = true
		}
	}
	return res
}

// applyOp executes one traced PM operation against the replay device.
//
//pmlint:ignore crossflush the interpreter replays one traced op per call; pairing lives in the trace, not here
func applyOp(dev *pmem.Device, op trace.Op) {
	switch op.Kind {
	case trace.KindWrite:
		// The trace records addresses and sizes but not data; replay
		// writes a deterministic marker pattern. Callers that need real
		// data replay should use RunWithData.
		dev.Store(op.Addr, marker(op))
	case trace.KindWriteNT:
		dev.StoreNT(op.Addr, marker(op))
	case trace.KindFlush:
		dev.CLWB(op.Addr, op.Size)
	case trace.KindFence, trace.KindOFence, trace.KindDFence:
		dev.SFence()
	}
}

func marker(op trace.Op) []byte {
	b := make([]byte, op.Size)
	for i := range b {
		b[i] = byte(op.Addr+uint64(i)) ^ 0xA5
	}
	return b
}

// DataOp pairs a traced op with the data its write carried, for replays
// that must reproduce exact contents (RunWithData).
type DataOp struct {
	Op   trace.Op
	Data []byte
}

// RecordingDevice wraps a pmem.Device so every mutation is captured with
// its data, producing the DataOps RunWithData replays. It is how a Yat
// harness hooks a live workload.
type RecordingDevice struct {
	*pmem.Device
	Ops []DataOp
}

// NewRecordingDevice wraps dev.
func NewRecordingDevice(dev *pmem.Device) *RecordingDevice {
	return &RecordingDevice{Device: dev}
}

// Store records and performs a store.
func (r *RecordingDevice) Store(addr uint64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	r.Ops = append(r.Ops, DataOp{
		Op:   trace.Op{Kind: trace.KindWrite, Addr: addr, Size: uint64(len(data))},
		Data: cp,
	})
	r.Device.Store(addr, data)
}

// CLWB records and performs a writeback.
func (r *RecordingDevice) CLWB(addr, size uint64) {
	r.Ops = append(r.Ops, DataOp{Op: trace.Op{Kind: trace.KindFlush, Addr: addr, Size: size}})
	r.Device.CLWB(addr, size)
}

// SFence records and performs a fence.
func (r *RecordingDevice) SFence() {
	r.Ops = append(r.Ops, DataOp{Op: trace.Op{Kind: trace.KindFence}})
	r.Device.SFence()
}

// RunWithData is Run for traces that carry write data.
//
//pmlint:ignore missedflush,missedfence the interpreter replays one traced op per iteration; pairing lives in the trace, not here
func RunWithData(initial []byte, ops []DataOp, validate func(img []byte) error, lim Limits) Result {
	lim = lim.withDefaults()
	dev := pmem.FromImage(initial, nil)
	res := Result{}
	for i, dop := range ops {
		switch dop.Op.Kind {
		case trace.KindWrite:
			dev.Store(dop.Op.Addr, dop.Data)
		case trace.KindWriteNT:
			dev.StoreNT(dop.Op.Addr, dop.Data)
		case trace.KindFlush:
			dev.CLWB(dop.Op.Addr, dop.Op.Size)
		case trace.KindFence, trace.KindOFence, trace.KindDFence:
			dev.SFence()
		default:
			continue
		}
		res.Points++
		res.StateSpace += dev.CrashStateCount()
		budget := lim.MaxStatesPerPoint
		if rem := lim.MaxTotalStates - res.StatesTested; rem < budget {
			budget = rem
		}
		if budget <= 0 {
			res.Truncated = true
			continue
		}
		complete := dev.EnumerateCrashStates(budget, func(img []byte) bool {
			res.StatesTested++
			if err := validate(img); err != nil {
				res.Violations = append(res.Violations, Violation{OpIndex: i, Err: err})
				return len(res.Violations) < 16
			}
			return true
		})
		if !complete {
			res.Truncated = true
		}
	}
	return res
}

// EstimateStateSpace computes the full crash-state count for a trace
// without validating anything — the "more than five years" number.
func EstimateStateSpace(initial []byte, ops []trace.Op) float64 {
	dev := pmem.FromImage(initial, nil)
	total := 0.0
	for _, op := range ops {
		applyOp(dev, op)
		if !op.Kind.IsChecker() {
			total += dev.CrashStateCount()
		}
	}
	return total
}
