package yat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/mnemosyne"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

func op(k trace.Kind, addr, size uint64) trace.Op {
	return trace.Op{Kind: k, Addr: addr, Size: size}
}

// TestFindsValidFlagBug: the classic unordered data/flag write has a
// crash state where the flag is set but the data is not — Yat must find
// it, and must NOT find one in the correctly ordered version.
func TestFindsValidFlagBug(t *testing.T) {
	initial := make([]byte, 4096)
	validate := func(img []byte) error {
		if img[64] != 0 && img[0] == 0 {
			return errors.New("flag set but data missing")
		}
		return nil
	}
	buggy := []trace.Op{
		op(trace.KindWrite, 0, 8),  // data
		op(trace.KindWrite, 64, 8), // flag — unordered!
		op(trace.KindFlush, 0, 8),
		op(trace.KindFlush, 64, 8),
		op(trace.KindFence, 0, 0),
	}
	res := Run(initial, buggy, validate, Limits{})
	if res.Ok() {
		t.Fatal("Yat missed the unordered flag bug")
	}
	correct := []trace.Op{
		op(trace.KindWrite, 0, 8),
		op(trace.KindFlush, 0, 8),
		op(trace.KindFence, 0, 0),
		op(trace.KindWrite, 64, 8),
		op(trace.KindFlush, 64, 8),
		op(trace.KindFence, 0, 0),
	}
	res = Run(initial, correct, validate, Limits{})
	if !res.Ok() {
		t.Fatalf("correct ordering flagged: %v", res.Violations[0])
	}
	if res.Truncated {
		t.Fatal("tiny trace should not truncate")
	}
}

func TestStateSpaceGrowsExponentially(t *testing.T) {
	initial := make([]byte, 1<<16)
	mkTrace := func(n int) []trace.Op {
		var ops []trace.Op
		for i := 0; i < n; i++ {
			ops = append(ops, op(trace.KindWrite, uint64(i)*64, 8))
		}
		return ops
	}
	s10 := EstimateStateSpace(initial, mkTrace(10))
	s20 := EstimateStateSpace(initial, mkTrace(20))
	if s20 < s10*500 {
		t.Fatalf("state space not exponential: %g vs %g", s10, s20)
	}
}

func TestTruncationReported(t *testing.T) {
	initial := make([]byte, 1<<16)
	var ops []trace.Op
	for i := 0; i < 30; i++ {
		ops = append(ops, op(trace.KindWrite, uint64(i)*64, 8))
	}
	res := Run(initial, ops, func([]byte) error { return nil }, Limits{
		MaxStatesPerPoint: 16, MaxTotalStates: 100,
	})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.StatesTested > 100 {
		t.Fatalf("budget exceeded: %d", res.StatesTested)
	}
}

// TestMidCommitFenceBug uses data-carrying replay to show the pmdk
// SkipCommitFence bug is real: mid-commit there is a crash state where
// the log is cleared but the update is not durable.
func TestMidCommitFenceBug(t *testing.T) {
	// Minimal undo-commit layout, starting AFTER the log is published
	// (so "log invalid + old value" can only mean the commit protocol
	// cleared the log too early):
	//   0x000 log-valid word (1 in the initial image)
	//   0x040 logged old value
	//   0x080 data word (old value 11)
	initial := make([]byte, 4096)
	initial[0x00] = 1  // log published and durable
	initial[0x40] = 11 // old value in the log
	initial[0x80] = 11 // current data

	validate := func(img []byte) error {
		if img[0x80] != 22 && img[0x80] != 11 {
			return errors.New("corrupt value")
		}
		if img[0x00] == 0 && img[0x80] == 11 {
			// Log gone but the committed update never landed: recovery has
			// nothing to redo or undo — the transaction vanished.
			return errors.New("log cleared before update persisted: committed tx lost")
		}
		return nil
	}

	buggy := func(rec *RecordingDevice) {
		rec.Store(0x80, []byte{22}) // in-place update
		rec.CLWB(0x80, 1)
		// BUG: missing fence here (pmdk SkipCommitFence).
		rec.Store(0x00, []byte{0}) // clear the log (commit point)
		rec.CLWB(0x00, 1)
		rec.SFence()
	}
	rec := NewRecordingDevice(pmem.FromImage(initial, nil))
	buggy(rec)
	res := RunWithData(initial, rec.Ops, validate, Limits{})
	if res.Ok() {
		t.Fatal("Yat missed the mid-commit fence bug")
	}

	// Fixed version: fence between the update flush and the log clear.
	rec2 := NewRecordingDevice(pmem.FromImage(initial, nil))
	rec2.Store(0x80, []byte{22})
	rec2.CLWB(0x80, 1)
	rec2.SFence() // the fix
	rec2.Store(0x00, []byte{0})
	rec2.CLWB(0x00, 1)
	rec2.SFence()
	res2 := RunWithData(initial, rec2.Ops, validate, Limits{})
	if !res2.Ok() {
		t.Fatalf("fixed commit flagged: %v", res2.Violations[0])
	}
}

// TestCrossValidatePMTest: on random small traces, PMTest's isPersist
// verdict must agree with exhaustive enumeration — PMTest passes exactly
// when no crash state can lose the final value of the range.
func TestCrossValidatePMTest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const space = 512
		initial := make([]byte, space+pmem.LineSize)
		dev := pmem.FromImage(initial, nil)
		rec := NewRecordingDevice(dev)
		var ops []trace.Op
		next := byte(1)
		target := uint64(rng.Intn(4)) * 64
		for i := 0; i < 12; i++ {
			addr := uint64(rng.Intn(4)) * 64
			switch rng.Intn(3) {
			case 0:
				rec.Store(addr, []byte{next})
				ops = append(ops, op(trace.KindWrite, addr, 1))
				next++
			case 1:
				rec.CLWB(addr, 1)
				ops = append(ops, op(trace.KindFlush, addr, 1))
			case 2:
				rec.SFence()
				ops = append(ops, op(trace.KindFence, 0, 0))
			}
		}
		// Ensure the target was written at least once with a unique value.
		rec.Store(target, []byte{next})
		ops = append(ops, op(trace.KindWrite, target, 1))
		want := next
		if rng.Intn(2) == 0 {
			rec.CLWB(target, 1)
			ops = append(ops, op(trace.KindFlush, target, 1))
		}
		if rng.Intn(2) == 0 {
			rec.SFence()
			ops = append(ops, op(trace.KindFence, 0, 0))
		}

		// PMTest verdict.
		ops = append(ops, trace.Op{Kind: trace.KindIsPersist, Addr: target, Size: 1})
		report := core.CheckTrace(core.X86{}, &trace.Trace{Ops: ops})
		pmtestSaysPersisted := report.Fails() == 0

		// Ground truth: every crash state at the end holds the value.
		lost := false
		dev.EnumerateCrashStates(0, func(img []byte) bool {
			if img[target] != want {
				lost = true
				return false
			}
			return true
		})
		return pmtestSaysPersisted == !lost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{OpIndex: 3, Err: errors.New("boom")}
	if v.String() != "crash after op 3: boom" {
		t.Fatalf("String = %q", v.String())
	}
}

// TestYatOnMnemosyneCommit: full-stack exhaustive check of a real library
// path — the Mnemosyne commit survives every crash state of a small
// transaction.
func TestYatOnMnemosyneCommit(t *testing.T) {
	dev := pmem.New(1<<22, nil)
	r, err := mnemosyne.Create(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	off := r.DataOff()
	initial := dev.Image()

	// Record the transaction's raw op stream by re-running it on a
	// recording device via the region's own device... the region holds
	// its device internally, so replay instead at the op level: run the
	// tx, then validate that from `initial`, at every crash state of the
	// final device, recovery yields old-or-new.
	if err := r.Durable(func(w *mnemosyne.TxWriter) error {
		return w.Write64(off, 777)
	}); err != nil {
		t.Fatal(err)
	}
	_ = initial
	checked := 0
	dev.EnumerateCrashStates(4096, func(img []byte) bool {
		checked++
		r2, _, err := mnemosyne.Open(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		if got := r2.Device().Load64(off); got != 777 {
			t.Fatalf("committed value lost in crash state: %d", got)
		}
		return true
	})
	if checked == 0 {
		t.Fatal("no crash states enumerated")
	}
}
