package yat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/core"
	"pmtest/internal/pmem"
	"pmtest/internal/trace"
)

// TestCrossValidateOrdering: soundness of isOrderedBefore against
// exhaustive enumeration. If PMTest says "A is ordered before B", then at
// EVERY crash point after both final writes, any crash state containing
// B's final value must also contain A's final value — there is no
// reachable durable state that observed B without A.
func TestCrossValidateOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const lines = 4
		initial := make([]byte, lines*pmem.LineSize+pmem.LineSize)
		a := uint64(0)
		b := uint64(pmem.LineSize)

		// Random prefix over OTHER lines only: A and B are each written
		// exactly once, so their marker values unambiguously identify the
		// final writes in crash images.
		var ops []trace.Op
		emit := func(op trace.Op) { ops = append(ops, op) }
		for i := 0; i < 10; i++ {
			addr := uint64(2+rng.Intn(lines-2)) * pmem.LineSize
			switch rng.Intn(3) {
			case 0:
				emit(trace.Op{Kind: trace.KindWrite, Addr: addr, Size: 1})
			case 1:
				emit(trace.Op{Kind: trace.KindFlush, Addr: addr, Size: 1})
			case 2:
				emit(trace.Op{Kind: trace.KindFence})
			}
		}
		// Final writes to A then B, with a random amount of ordering
		// machinery between them.
		emit(trace.Op{Kind: trace.KindWrite, Addr: a, Size: 1})
		if rng.Intn(2) == 0 {
			emit(trace.Op{Kind: trace.KindFlush, Addr: a, Size: 1})
		}
		if rng.Intn(2) == 0 {
			emit(trace.Op{Kind: trace.KindFence})
		}
		emit(trace.Op{Kind: trace.KindWrite, Addr: b, Size: 1})
		emit(trace.Op{Kind: trace.KindFlush, Addr: b, Size: 1})
		emit(trace.Op{Kind: trace.KindFence})

		// PMTest verdict.
		check := append(append([]trace.Op(nil), ops...),
			trace.Op{Kind: trace.KindIsOrderedBefore, Addr: a, Size: 1, Addr2: b, Size2: 1})
		verdictOrdered := core.CheckTrace(core.X86{}, &trace.Trace{Ops: check}).Fails() == 0

		// Ground truth replay. Values: deterministic markers from applyOp.
		dev := pmem.FromImage(initial, nil)
		finalWriteSeen := 0
		implicationHolds := true
		var wantA, wantB byte
		for _, op := range ops {
			applyOp(dev, op)
			if op.Kind == trace.KindWrite {
				if op.Addr == a {
					wantA = marker(op)[0]
				}
				if op.Addr == b {
					wantB = marker(op)[0]
					finalWriteSeen++
				}
			}
			if wantA == 0 || wantB == 0 {
				continue // both finals not written yet
			}
			dev.EnumerateCrashStates(0, func(img []byte) bool {
				if img[b] == wantB && img[a] != wantA {
					implicationHolds = false
					return false
				}
				return true
			})
			if !implicationHolds {
				break
			}
		}
		_ = finalWriteSeen
		if verdictOrdered && !implicationHolds {
			// PMTest said ordered, but a crash state saw B without A:
			// soundness violation.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestTearLinesSampling: with 8-byte tearing enabled, a line can persist
// partially — crash states may contain half-updated lines, which the
// default line-atomic mode never produces.
func TestTearLinesSampling(t *testing.T) {
	d := pmem.New(4096, nil)
	full := make([]byte, pmem.LineSize)
	for i := range full {
		full[i] = 0xFF
	}
	d.Store(0, full)
	rng := rand.New(rand.NewSource(2))
	torn := false
	for i := 0; i < 200 && !torn; i++ {
		img := d.SampleCrash(rng, pmem.CrashOptions{TearLines: true})
		zeros, ones := 0, 0
		for _, v := range img[:pmem.LineSize] {
			if v == 0 {
				zeros++
			} else {
				ones++
			}
		}
		if zeros > 0 && ones > 0 {
			torn = true
		}
	}
	if !torn {
		t.Fatal("tearing mode never produced a partially persisted line")
	}
	// Line-atomic mode must never tear.
	for i := 0; i < 100; i++ {
		img := d.SampleCrash(rng, pmem.CrashOptions{})
		first := img[0]
		for _, v := range img[:pmem.LineSize] {
			if v != first {
				t.Fatal("line-atomic mode produced a torn line")
			}
		}
	}
}
