// Package pmem simulates a byte-addressable persistent memory device
// behind a volatile CPU cache, substituting for the NVDIMM hardware of the
// paper's testbed (Table 3).
//
// The device exposes exactly the primitives the paper instruments — store,
// clwb-style writeback, sfence — and models their persistence semantics:
// a store lands in a volatile cache line; a writeback marks the line
// pending; a fence makes pending lines durable. Because the cache is
// volatile, ANY dirty line may also persist spontaneously at any moment
// (hardware eviction), which is precisely the reordering that makes crash
// consistency hard. Crash-state sampling (crash.go) exploits that: a crash
// may durably apply any subset of the dirty lines.
//
// Every operation is also emitted to an attached trace.Sink, which is how
// the PMTest tracker and the baseline checkers observe execution.
package pmem

import (
	"encoding/binary"
	"fmt"

	"pmtest/internal/trace"
)

// LineSize is the cache-line granularity of writebacks and persistence.
const LineSize = 64

// FaultHook intercepts device primitives before they take effect; it is
// the seam the fault-injection layer (internal/faultinject) attaches to.
// A suppressed primitive neither changes device state nor records a trace
// op — exactly as if the program had never issued it — which keeps the
// trace the checking engine sees consistent with the durable states a
// crash can produce.
//
// The hook runs synchronously on the program thread; implementations may
// call back into the Device (e.g. to re-issue a deferred primitive from
// AfterFence) but are responsible for avoiding unbounded recursion.
type FaultHook interface {
	// BeforeStore is consulted before a store of data at addr. It returns
	// how many leading bytes of data to execute: len(data) passes the
	// store through, 0 drops it entirely, and 0 < n < len(data) tears it —
	// only the prefix executes (the hook may re-issue the tail later).
	BeforeStore(addr uint64, data []byte) int
	// BeforeFlush is consulted before a clwb; returning false drops it.
	BeforeFlush(addr, size uint64) bool
	// BeforeFence is consulted before an sfence; returning false drops it.
	BeforeFence() bool
	// AfterFence fires after an sfence executed (it does not fire for a
	// fence BeforeFence suppressed), so deferred effects can be released
	// on the far side of the ordering point.
	AfterFence()
}

// line is one dirty cache line: the volatile content of the full line and
// whether a writeback has been issued for it since its last store.
type line struct {
	data         [LineSize]byte
	flushPending bool
}

// Device is a simulated PM device. It is not safe for concurrent use; the
// workloads shard PM regions per thread, mirroring WHISPER's per-thread
// transactions (paper §7.4: inter-thread PM dependencies are rare).
type Device struct {
	persisted []byte
	cache     map[uint64]*line
	sink      trace.Sink
	hook      FaultHook

	// stats for the benchmark harness
	stores  uint64
	flushes uint64
	fences  uint64
}

// New creates a device of the given size with all bytes zero and durable.
func New(size uint64, sink trace.Sink) *Device {
	if sink == nil {
		sink = trace.Discard
	}
	return &Device{
		persisted: make([]byte, size),
		cache:     make(map[uint64]*line),
		sink:      sink,
	}
}

// FromImage creates a device whose durable contents are a crash image
// (typically produced by SampleCrash); used by recovery tests.
func FromImage(img []byte, sink trace.Sink) *Device {
	if sink == nil {
		sink = trace.Discard
	}
	cp := make([]byte, len(img))
	copy(cp, img)
	return &Device{persisted: cp, cache: make(map[uint64]*line), sink: sink}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return uint64(len(d.persisted)) }

// SetSink replaces the attached operation sink and returns the previous
// one. Passing nil detaches (operations are discarded).
func (d *Device) SetSink(s trace.Sink) trace.Sink {
	old := d.sink
	if s == nil {
		s = trace.Discard
	}
	d.sink = s
	return old
}

// SetFaultHook attaches (or, with nil, detaches) a fault-injection hook
// and returns the previous one. With no hook attached the primitive paths
// are identical to the unhooked ones.
func (d *Device) SetFaultHook(h FaultHook) FaultHook {
	old := d.hook
	d.hook = h
	return old
}

// Stats returns cumulative operation counts (stores, writebacks, fences).
func (d *Device) Stats() (stores, flushes, fences uint64) {
	return d.stores, d.flushes, d.fences
}

func (d *Device) check(addr, size uint64) {
	if addr+size > uint64(len(d.persisted)) || addr+size < addr {
		panic(fmt.Sprintf("pmem: access [0x%x,0x%x) out of range (device size 0x%x)",
			addr, addr+size, len(d.persisted)))
	}
}

func (d *Device) lineFor(base uint64) *line {
	ln := d.cache[base]
	if ln == nil {
		ln = &line{}
		copy(ln.data[:], d.persisted[base:base+LineSize])
		d.cache[base] = ln
	}
	return ln
}

// Store writes data at addr through the volatile cache and records a
// write op. The data is NOT durable until written back and fenced.
func (d *Device) Store(addr uint64, data []byte) {
	d.storeInternal(addr, data, trace.KindWrite, 1)
}

// StoreSkip is Store with extra caller frames skipped when attributing the
// source site; instrumented libraries use it so diagnostics point at their
// caller.
func (d *Device) StoreSkip(addr uint64, data []byte, skip int) {
	d.storeInternal(addr, data, trace.KindWrite, skip+1)
}

// StoreNT performs a non-temporal store: the data bypasses the cache and
// becomes durable at the next fence without an explicit writeback.
func (d *Device) StoreNT(addr uint64, data []byte) {
	d.storeInternal(addr, data, trace.KindWriteNT, 1)
}

func (d *Device) storeInternal(addr uint64, data []byte, kind trace.Kind, skip int) {
	size := uint64(len(data))
	if size == 0 {
		return
	}
	d.check(addr, size)
	if d.hook != nil {
		n := d.hook.BeforeStore(addr, data)
		if n <= 0 {
			return
		}
		if uint64(n) < size {
			data = data[:n]
			size = uint64(n)
		}
	}
	d.stores++
	off := uint64(0)
	for off < size {
		a := addr + off
		base := a &^ (LineSize - 1)
		ln := d.lineFor(base)
		n := copy(ln.data[a-base:], data[off:])
		// A new store invalidates any pending writeback for the line: the
		// earlier clwb is not guaranteed to cover the new data.
		ln.flushPending = kind == trace.KindWriteNT
		off += uint64(n)
	}
	d.sink.Record(trace.Op{Kind: kind, Addr: addr, Size: size}, skip+1)
}

// CLWB issues a cache writeback for every line overlapping
// [addr, addr+size). The writeback completes (data becomes durable) at
// the next SFence.
func (d *Device) CLWB(addr, size uint64) { d.clwbInternal(addr, size, 1) }

// CLWBSkip is CLWB with extra caller frames skipped for site attribution.
func (d *Device) CLWBSkip(addr, size uint64, skip int) { d.clwbInternal(addr, size, skip+1) }

func (d *Device) clwbInternal(addr, size uint64, skip int) {
	if size == 0 {
		return
	}
	d.check(addr, size)
	if d.hook != nil && !d.hook.BeforeFlush(addr, size) {
		return
	}
	d.flushes++
	for base := addr &^ (LineSize - 1); base < addr+size; base += LineSize {
		if ln := d.cache[base]; ln != nil {
			ln.flushPending = true
		}
	}
	d.sink.Record(trace.Op{Kind: trace.KindFlush, Addr: addr, Size: size}, skip+1)
}

// SFence completes all pending writebacks: their lines become durable and
// leave the dirty set.
func (d *Device) SFence() { d.sfenceInternal(1) }

// SFenceSkip is SFence with extra caller frames skipped.
func (d *Device) SFenceSkip(skip int) { d.sfenceInternal(skip + 1) }

func (d *Device) sfenceInternal(skip int) {
	if d.hook != nil && !d.hook.BeforeFence() {
		return
	}
	d.fences++
	for base, ln := range d.cache {
		if ln.flushPending {
			copy(d.persisted[base:base+LineSize], ln.data[:])
			delete(d.cache, base)
		}
	}
	d.sink.Record(trace.Op{Kind: trace.KindFence}, skip+1)
	if d.hook != nil {
		d.hook.AfterFence()
	}
}

// PersistBarrier is the paper's persist_barrier(): clwb of the range
// followed by sfence.
func (d *Device) PersistBarrier(addr, size uint64) {
	d.clwbInternal(addr, size, 1)
	d.sfenceInternal(1)
}

// RecordOp emits a library-level operation (e.g. a transaction event)
// into the device's current sink, so instrumented libraries need not hold
// their own sink reference.
func (d *Device) RecordOp(op trace.Op, callerSkip int) {
	d.sink.Record(op, callerSkip+1)
}

// Load reads len(buf) bytes at addr into buf, observing volatile cache
// contents (program semantics, not durable state).
func (d *Device) Load(addr uint64, buf []byte) {
	size := uint64(len(buf))
	if size == 0 {
		return
	}
	d.check(addr, size)
	off := uint64(0)
	for off < size {
		a := addr + off
		base := a &^ (LineSize - 1)
		var n int
		if ln := d.cache[base]; ln != nil {
			n = copy(buf[off:], ln.data[a-base:])
		} else {
			end := base + LineSize
			if end > addr+size {
				end = addr + size
			}
			n = copy(buf[off:], d.persisted[a:end])
		}
		off += uint64(n)
	}
}

// --- Typed helpers (little-endian, like the x86 target) --------------------

// Store64 writes a uint64 at addr.
func (d *Device) Store64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.storeInternal(addr, b[:], trace.KindWrite, 1)
}

// Load64 reads a uint64 at addr.
func (d *Device) Load64(addr uint64) uint64 {
	var b [8]byte
	d.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Store32 writes a uint32 at addr.
func (d *Device) Store32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	d.storeInternal(addr, b[:], trace.KindWrite, 1)
}

// Load32 reads a uint32 at addr.
func (d *Device) Load32(addr uint64) uint32 {
	var b [4]byte
	d.Load(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Store8 writes one byte at addr.
func (d *Device) Store8(addr uint64, v byte) {
	d.storeInternal(addr, []byte{v}, trace.KindWrite, 1)
}

// Load8 reads one byte at addr.
func (d *Device) Load8(addr uint64) byte {
	var b [1]byte
	d.Load(addr, b[:])
	return b[0]
}

// LoadBytes reads size bytes at addr into a fresh slice.
func (d *Device) LoadBytes(addr, size uint64) []byte {
	buf := make([]byte, size)
	d.Load(addr, buf)
	return buf
}

// DirtyLines returns the number of cache lines whose content is not yet
// guaranteed durable.
func (d *Device) DirtyLines() int { return len(d.cache) }

// DirtyBases returns the base addresses of the dirty cache lines in
// ascending order — the deterministic iteration order crash sampling and
// fault injection depend on.
func (d *Device) DirtyBases() []uint64 { return d.dirtyBases() }

// EvictLine models a spontaneous hardware eviction of one dirty line: its
// content becomes durable immediately and the line leaves the cache. This
// is always legal behaviour (any dirty line may be evicted at any moment),
// so it emits no trace op. It returns false if base is not a dirty line.
func (d *Device) EvictLine(base uint64) bool {
	ln := d.cache[base]
	if ln == nil {
		return false
	}
	copy(d.persisted[base:base+LineSize], ln.data[:])
	delete(d.cache, base)
	return true
}

// DrainAll makes every cached line durable — a clean shutdown. It emits
// no trace ops (it models power-down completion, not program behaviour).
func (d *Device) DrainAll() {
	for base, ln := range d.cache {
		copy(d.persisted[base:base+LineSize], ln.data[:])
		delete(d.cache, base)
	}
}
