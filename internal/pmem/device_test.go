package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pmtest/internal/trace"
)

// sinkRec captures emitted ops for assertions.
type sinkRec struct{ ops []trace.Op }

func (s *sinkRec) Record(op trace.Op, _ int) { s.ops = append(s.ops, op) }

func TestStoreLoadRoundTrip(t *testing.T) {
	d := New(4096, nil)
	d.Store(100, []byte("hello persistent world"))
	got := d.LoadBytes(100, 22)
	if string(got) != "hello persistent world" {
		t.Fatalf("Load = %q", got)
	}
}

func TestStoreCrossesLineBoundary(t *testing.T) {
	d := New(4096, nil)
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	d.Store(60, data) // spans 4 lines starting mid-line
	if got := d.LoadBytes(60, 200); !bytes.Equal(got, data) {
		t.Fatalf("cross-line round trip failed")
	}
	// [60,260) touches lines at 0, 64, 128, 192 and 256.
	if d.DirtyLines() != 5 {
		t.Fatalf("DirtyLines = %d, want 5", d.DirtyLines())
	}
}

func TestStoreNotDurableUntilFence(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{0xAA})
	if img := d.Image(); img[0] != 0 {
		t.Fatal("store visible in durable image before writeback+fence")
	}
	d.CLWB(0, 1)
	if img := d.Image(); img[0] != 0 {
		t.Fatal("clwb alone must not persist")
	}
	d.SFence()
	if img := d.Image(); img[0] != 0xAA {
		t.Fatal("store not durable after clwb+sfence")
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("DirtyLines = %d after full persist, want 0", d.DirtyLines())
	}
}

func TestStoreAfterCLWBInvalidatesPending(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{1})
	d.CLWB(0, 1)
	d.Store(0, []byte{2}) // invalidates the pending writeback
	d.SFence()
	if img := d.Image(); img[0] != 0 {
		t.Fatalf("image[0] = %d; store after clwb must not be persisted by the old clwb", img[0])
	}
	d.CLWB(0, 1)
	d.SFence()
	if img := d.Image(); img[0] != 2 {
		t.Fatalf("image[0] = %d, want 2", img[0])
	}
}

func TestStoreNTPersistsAtFence(t *testing.T) {
	d := New(4096, nil)
	d.StoreNT(128, []byte{7})
	d.SFence()
	if img := d.Image(); img[128] != 7 {
		t.Fatal("non-temporal store must persist at the next fence")
	}
}

func TestPersistBarrier(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{9})
	d.PersistBarrier(0, 1)
	if img := d.Image(); img[0] != 9 {
		t.Fatal("persist_barrier must make the store durable")
	}
}

func TestTypedHelpers(t *testing.T) {
	d := New(4096, nil)
	d.Store64(8, 0xDEADBEEFCAFE)
	d.Store32(100, 0x12345678)
	d.Store8(200, 0xFF)
	if d.Load64(8) != 0xDEADBEEFCAFE {
		t.Fatal("Load64 mismatch")
	}
	if d.Load32(100) != 0x12345678 {
		t.Fatal("Load32 mismatch")
	}
	if d.Load8(200) != 0xFF {
		t.Fatal("Load8 mismatch")
	}
}

func TestOpsEmittedToSink(t *testing.T) {
	s := &sinkRec{}
	d := New(4096, s)
	d.Store(0, []byte{1, 2, 3})
	d.CLWB(0, 3)
	d.SFence()
	want := []trace.Kind{trace.KindWrite, trace.KindFlush, trace.KindFence}
	if len(s.ops) != len(want) {
		t.Fatalf("ops = %v", s.ops)
	}
	for i, k := range want {
		if s.ops[i].Kind != k {
			t.Fatalf("op %d = %v, want %v", i, s.ops[i].Kind, k)
		}
	}
	if s.ops[0].Addr != 0 || s.ops[0].Size != 3 {
		t.Fatalf("write op range = [%d,%d)", s.ops[0].Addr, s.ops[0].Addr+s.ops[0].Size)
	}
}

func TestSetSinkSwaps(t *testing.T) {
	s1, s2 := &sinkRec{}, &sinkRec{}
	d := New(4096, s1)
	d.Store(0, []byte{1})
	old := d.SetSink(s2)
	if old != trace.Sink(s1) {
		t.Fatal("SetSink did not return previous sink")
	}
	d.Store(1, []byte{2})
	if len(s1.ops) != 1 || len(s2.ops) != 1 {
		t.Fatalf("sink routing wrong: %d / %d", len(s1.ops), len(s2.ops))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(64, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range store")
		}
	}()
	d.Store(60, []byte{1, 2, 3, 4, 5, 6, 7, 8})
}

func TestSampleCrashSubsetsOfDirty(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{1})
	d.Store(64, []byte{2})
	d.Store(128, []byte{3})
	rng := rand.New(rand.NewSource(42))
	seen0, seen1 := false, false
	for i := 0; i < 64; i++ {
		img := d.SampleCrash(rng, CrashOptions{})
		for j, addr := range []uint64{0, 64, 128} {
			v := img[addr]
			if v == 0 {
				seen0 = true
			} else if v == byte(j+1) {
				seen1 = true
			} else {
				t.Fatalf("impossible crash value %d at line %d", v, j)
			}
		}
	}
	if !seen0 || !seen1 {
		t.Fatal("sampling never produced both persisted and unpersisted lines")
	}
}

func TestEnumerateCrashStates(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{1})
	d.Store(64, []byte{2})
	var states [][2]byte
	ok := d.EnumerateCrashStates(0, func(img []byte) bool {
		states = append(states, [2]byte{img[0], img[64]})
		return true
	})
	if !ok {
		t.Fatal("enumeration unexpectedly hit limit")
	}
	if len(states) != 4 {
		t.Fatalf("states = %d, want 4", len(states))
	}
	want := map[[2]byte]bool{{0, 0}: true, {1, 0}: true, {0, 2}: true, {1, 2}: true}
	for _, s := range states {
		if !want[s] {
			t.Fatalf("unexpected state %v", s)
		}
		delete(want, s)
	}
	if len(want) != 0 {
		t.Fatalf("missing states: %v", want)
	}
}

func TestEnumerateLimit(t *testing.T) {
	d := New(4096, nil)
	for i := uint64(0); i < 5; i++ {
		d.Store(i*64, []byte{byte(i + 1)})
	}
	n := 0
	ok := d.EnumerateCrashStates(10, func([]byte) bool { n++; return true })
	if ok || n != 10 {
		t.Fatalf("limit: ok=%v n=%d, want false/10", ok, n)
	}
}

func TestCrashStateCount(t *testing.T) {
	d := New(4096, nil)
	for i := uint64(0); i < 10; i++ {
		d.Store(i*64, []byte{1})
	}
	if got := d.CrashStateCount(); got != 1024 {
		t.Fatalf("CrashStateCount = %v, want 1024", got)
	}
}

func TestRecoveryCheckFindsBrokenState(t *testing.T) {
	// Classic valid-flag bug: set valid=1 and data without ordering; a
	// crash state with valid=1 but data=0 must be found.
	d := New(4096, nil)
	d.Store(0, []byte{42}) // data
	d.Store(64, []byte{1}) // valid flag (separate line, unordered!)
	_, err := d.RecoveryCheck(rand.New(rand.NewSource(1)), 32, CrashOptions{}, func(img []byte) error {
		if img[64] == 1 && img[0] != 42 {
			return errString("valid flag set but data missing")
		}
		return nil
	})
	if err == nil {
		t.Fatal("RecoveryCheck missed the inconsistent crash state")
	}
}

func TestRecoveryCheckPassesWhenOrdered(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{42})
	d.PersistBarrier(0, 1) // data durable before flag is written
	d.Store(64, []byte{1})
	distinct, err := d.RecoveryCheck(rand.New(rand.NewSource(1)), 64, CrashOptions{}, func(img []byte) error {
		if img[64] == 1 && img[0] != 42 {
			return errString("valid flag set but data missing")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("correctly ordered program failed recovery: %v", err)
	}
	// One dirty line → only two possible states, however many samples were
	// requested.
	if distinct != 2 {
		t.Fatalf("distinct = %d, want 2 (one dirty line)", distinct)
	}
}

func TestFromImageIsolation(t *testing.T) {
	d := New(128, nil)
	d.Store(0, []byte{5})
	d.PersistBarrier(0, 1)
	img := d.Image()
	d2 := FromImage(img, nil)
	d2.Store(0, []byte{9})
	d2.PersistBarrier(0, 1)
	if img[0] != 5 {
		t.Fatal("FromImage must copy the image")
	}
	if d.Load8(0) != 5 {
		t.Fatal("original device affected by clone")
	}
}

func TestDrainAll(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{1})
	d.Store(64, []byte{2})
	d.DrainAll()
	img := d.Image()
	if img[0] != 1 || img[64] != 2 {
		t.Fatal("DrainAll must persist everything")
	}
	if d.DirtyLines() != 0 {
		t.Fatal("DrainAll left dirty lines")
	}
}

type errString string

func (e errString) Error() string { return string(e) }

// TestQuickLoadSeesLatestStore: Load must always observe program order
// regardless of persistence operations interleaved.
func TestQuickLoadSeesLatestStore(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(1024, nil)
		shadow := make([]byte, 1024)
		for i := 0; i < int(n); i++ {
			addr := uint64(rng.Intn(1000))
			switch rng.Intn(4) {
			case 0, 1:
				v := byte(rng.Intn(256))
				d.Store(addr, []byte{v})
				shadow[addr] = v
			case 2:
				d.CLWB(addr, 8)
			case 3:
				d.SFence()
			}
		}
		for a := 0; a < 1024; a++ {
			if d.Load8(uint64(a)) != shadow[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashStatesRespectPersistence: a fully persisted store appears
// in every crash state; a never-flushed store appears only with its line.
func TestQuickCrashStatesRespectPersistence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(1024, nil)
		d.Store(0, []byte{111})
		d.PersistBarrier(0, 1)
		d.Store(512, []byte{222}) // never flushed
		for i := 0; i < 16; i++ {
			img := d.SampleCrash(rng, CrashOptions{})
			if img[0] != 111 {
				return false // persisted data must survive every crash
			}
			if img[512] != 0 && img[512] != 222 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
