package pmem

import (
	"testing"

	"pmtest/internal/trace"
)

// Additional device coverage: stats, zero-length ops, sink passthrough.

func TestStatsCount(t *testing.T) {
	d := New(4096, nil)
	d.Store(0, []byte{1})
	d.Store(64, []byte{2})
	d.CLWB(0, 128)
	d.SFence()
	stores, flushes, fences := d.Stats()
	if stores != 2 || flushes != 1 || fences != 1 {
		t.Fatalf("Stats = %d, %d, %d", stores, flushes, fences)
	}
}

func TestZeroLengthOpsNoTraceNoEffect(t *testing.T) {
	s := &sinkRec{}
	d := New(4096, s)
	d.Store(10, nil)
	d.CLWB(10, 0)
	d.Load(10, nil)
	if len(s.ops) != 0 {
		t.Fatalf("zero-length ops emitted %d trace entries", len(s.ops))
	}
	if d.DirtyLines() != 0 {
		t.Fatal("zero-length store dirtied a line")
	}
}

func TestRecordOpForwardsToSink(t *testing.T) {
	s := &sinkRec{}
	d := New(64, s)
	d.RecordOp(trace.Op{Kind: trace.KindTxBegin}, 0)
	if len(s.ops) != 1 || s.ops[0].Kind != trace.KindTxBegin {
		t.Fatalf("ops = %v", s.ops)
	}
}

func TestImageIsACopy(t *testing.T) {
	d := New(64, nil)
	d.Store(0, []byte{1})
	d.PersistBarrier(0, 1)
	img := d.Image()
	img[0] = 99
	if d.Load8(0) != 1 {
		t.Fatal("Image aliases device memory")
	}
}

func TestLoadStraddlesCachedAndDurable(t *testing.T) {
	d := New(4096, nil)
	// First line durable, second line only cached.
	d.Store(0, []byte{1, 2, 3, 4})
	d.PersistBarrier(0, 4)
	d.Store(64, []byte{5, 6})
	buf := make([]byte, 128)
	d.Load(0, buf)
	if buf[0] != 1 || buf[64] != 5 {
		t.Fatalf("straddling load wrong: %v %v", buf[0], buf[64])
	}
}
