package pmem

import (
	"crypto/sha256"
	"math/rand"
	"sort"
)

// This file provides ground truth for PMTest's verdicts: because the
// simulator knows exactly which lines are dirty, it can materialize every
// durable state a power failure could leave behind. A crash-consistency
// bug flagged by PMTest is *demonstrated* by finding a crash state whose
// recovery fails; a clean program must recover from all of them.

// CrashOptions controls crash-state generation.
type CrashOptions struct {
	// TearLines allows a dirty line to persist partially, at 8-byte
	// granularity — x86 guarantees only 8-byte atomicity for persists.
	// When false, lines persist atomically (the common simplification,
	// also made by Yat).
	TearLines bool
}

// Image returns a copy of the current durable contents — the state after
// an instant crash in which no dirty line managed to persist.
func (d *Device) Image() []byte {
	img := make([]byte, len(d.persisted))
	copy(img, d.persisted)
	return img
}

// SampleCrash returns one possible durable state after a crash at this
// moment: the persisted image plus a random subset of the dirty lines
// (hardware may have evicted any of them before the failure). Dirty lines
// are visited in ascending address order, so the same seed produces the
// same crash state — iterating the cache map directly would let Go's
// randomized map order break seed reproducibility.
func (d *Device) SampleCrash(rng *rand.Rand, opt CrashOptions) []byte {
	img := d.Image()
	for _, base := range d.dirtyBases() {
		ln := d.cache[base]
		if !opt.TearLines {
			if rng.Intn(2) == 1 {
				copy(img[base:base+LineSize], ln.data[:])
			}
			continue
		}
		for off := uint64(0); off < LineSize; off += 8 {
			if rng.Intn(2) == 1 {
				copy(img[base+off:base+off+8], ln.data[off:off+8])
			}
		}
	}
	return img
}

// dirtyBases returns the dirty line addresses in ascending order, for
// deterministic enumeration.
func (d *Device) dirtyBases() []uint64 {
	bases := make([]uint64, 0, len(d.cache))
	for b := range d.cache {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases
}

// CrashStateCount returns how many distinct crash states exist at this
// moment under line-atomic persistence (2^dirty). This is the state-space
// size an exhaustive tool like Yat must explore (§2.2); it is reported,
// not iterated, when it exceeds limits.
func (d *Device) CrashStateCount() float64 {
	n := len(d.cache)
	count := 1.0
	for i := 0; i < n; i++ {
		count *= 2
	}
	return count
}

// EnumerateCrashStates calls visit with every possible durable state at
// this moment (line-atomic persistence), up to limit states; it returns
// false if the state space exceeded the limit (visit still saw the first
// `limit` states). The image passed to visit is reused across calls —
// copy it to retain.
func (d *Device) EnumerateCrashStates(limit int, visit func(img []byte) bool) bool {
	bases := d.dirtyBases()
	if len(bases) > 62 {
		// 2^63 states: enumeration is hopeless, exactly the paper's point
		// about exhaustive testing.
		return false
	}
	img := d.Image()
	n := uint64(0)
	for mask := uint64(0); mask < (uint64(1) << uint(len(bases))); mask++ {
		if limit > 0 && n >= uint64(limit) {
			return false
		}
		// Build the image for this subset.
		copy(img, d.persisted)
		for i, base := range bases {
			if mask&(1<<uint(i)) != 0 {
				ln := d.cache[base]
				copy(img[base:base+LineSize], ln.data[:])
			}
		}
		n++
		if !visit(img) {
			return true
		}
	}
	return true
}

// RecoveryCheck runs validate against up to samples random crash states
// (plus the no-eviction and all-evicted extremes). It returns how many
// *distinct* states were actually tested — deduplicated by image hash, so
// a small dirty set that keeps re-sampling the same image is visible to
// the caller — and the first validation error, or nil if every distinct
// state recovers. validate receives a private copy of the image.
func (d *Device) RecoveryCheck(rng *rand.Rand, samples int, opt CrashOptions,
	validate func(img []byte) error) (distinct int, err error) {
	states := make([][]byte, 0, samples+2)
	states = append(states, d.Image())
	// All dirty lines persisted.
	all := d.Image()
	for _, base := range d.dirtyBases() {
		copy(all[base:base+LineSize], d.cache[base].data[:])
	}
	states = append(states, all)
	for i := 0; i < samples; i++ {
		states = append(states, d.SampleCrash(rng, opt))
	}
	seen := make(map[[sha256.Size]byte]bool, len(states))
	for _, img := range states {
		h := sha256.Sum256(img)
		if seen[h] {
			continue
		}
		seen[h] = true
		distinct++
		if err := validate(img); err != nil {
			return distinct, err
		}
	}
	return distinct, nil
}
