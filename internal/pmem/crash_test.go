package pmem

import (
	"bytes"
	"math/rand"
	"testing"

	"pmtest/internal/trace"
)

// TestSampleCrashSeedReproducible: the same seed must produce the same
// crash state, byte for byte. SampleCrash iterates the dirty set in
// address order; iterating the cache map directly would let Go's
// randomized map iteration consume the rng in a different order per run.
func TestSampleCrashSeedReproducible(t *testing.T) {
	mkDev := func() *Device {
		d := New(1<<14, nil)
		// Enough dirty lines that a map-order shuffle would almost surely
		// permute the coin flips.
		for i := uint64(0); i < 40; i++ {
			d.Store(i*128, []byte{byte(i), byte(i + 1), byte(i + 2)})
		}
		return d
	}
	for _, opt := range []CrashOptions{{}, {TearLines: true}} {
		a := mkDev().SampleCrash(rand.New(rand.NewSource(7)), opt)
		b := mkDev().SampleCrash(rand.New(rand.NewSource(7)), opt)
		if !bytes.Equal(a, b) {
			t.Fatalf("TearLines=%v: same seed produced different crash states", opt.TearLines)
		}
	}
}

// TestEnumerateLimitSemantics pins the limit contract: visit sees at most
// `limit` states, the return value reports whether the space was covered,
// and limit==space is a complete enumeration.
func TestEnumerateLimitSemantics(t *testing.T) {
	mk := func() *Device {
		d := New(1024, nil)
		for i := uint64(0); i < 3; i++ { // 2^3 = 8 states
			d.Store(i*64, []byte{byte(i + 1)})
		}
		return d
	}
	cases := []struct {
		limit        int
		wantN        int
		wantComplete bool
	}{
		{limit: 4, wantN: 4, wantComplete: false},
		{limit: 8, wantN: 8, wantComplete: true}, // exactly the state count
		{limit: 9, wantN: 8, wantComplete: true},
		{limit: 0, wantN: 8, wantComplete: true}, // 0 = unlimited
	}
	for _, tc := range cases {
		n := 0
		complete := mk().EnumerateCrashStates(tc.limit, func([]byte) bool {
			n++
			return true
		})
		if n != tc.wantN || complete != tc.wantComplete {
			t.Fatalf("limit %d: visited %d complete=%v, want %d/%v",
				tc.limit, n, complete, tc.wantN, tc.wantComplete)
		}
	}
}

// TestEnumerateEarlyStop: visit returning false stops the enumeration
// immediately, and the early stop still reports complete=true (the caller
// chose to stop; the space did not overflow).
func TestEnumerateEarlyStop(t *testing.T) {
	d := New(1024, nil)
	for i := uint64(0); i < 4; i++ { // 16 states
		d.Store(i*64, []byte{1})
	}
	n := 0
	complete := d.EnumerateCrashStates(0, func([]byte) bool {
		n++
		return n < 3
	})
	if n != 3 || !complete {
		t.Fatalf("early stop: visited %d complete=%v, want 3/true", n, complete)
	}
}

// TestTearLinesGranularity is the hand-computed torn-store case of the
// issue: one dirty line whose every byte differs from the durable
// contents. Under TearLines each 8-byte word must persist atomically —
// entirely old or entirely new — and a mixed outcome must be reachable,
// so the tear granularity is exactly 8 bytes, never finer or line-wide.
func TestTearLinesGranularity(t *testing.T) {
	// Durable contents: 0x11 everywhere. Cached line: 0x22 everywhere.
	d := New(LineSize, nil)
	old := bytes.Repeat([]byte{0x11}, LineSize)
	d.Store(0, old)
	d.PersistBarrier(0, LineSize)
	d.Store(0, bytes.Repeat([]byte{0x22}, LineSize))

	sawOld, sawNew := false, false
	for seed := int64(0); seed < 32; seed++ {
		img := d.SampleCrash(rand.New(rand.NewSource(seed)), CrashOptions{TearLines: true})
		for w := 0; w < LineSize; w += 8 {
			word := img[w : w+8]
			switch {
			case bytes.Equal(word, old[:8]):
				sawOld = true
			case bytes.Equal(word, bytes.Repeat([]byte{0x22}, 8)):
				sawNew = true
			default:
				t.Fatalf("seed %d: word at %d torn inside 8-byte granularity: % x", seed, w, word)
			}
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("32 seeds never produced a torn mix (old=%v new=%v)", sawOld, sawNew)
	}

	// Hand-computed spot check: with source 1, rand.Intn(2) begins
	// 1,1,0,... so under the fixed ascending word order the first two
	// words persist new and the third stays old.
	img := d.SampleCrash(rand.New(rand.NewSource(1)), CrashOptions{TearLines: true})
	want := rand.New(rand.NewSource(1))
	for w := 0; w < LineSize; w += 8 {
		expect := byte(0x11)
		if want.Intn(2) == 1 {
			expect = 0x22
		}
		if img[w] != expect {
			t.Fatalf("seed 1: word %d = %#x, want %#x", w/8, img[w], expect)
		}
	}
}

// TestRecoveryCheckReportsDistinctStates: dedupe by image hash means a
// tiny dirty set cannot silently re-test the same image over and over.
func TestRecoveryCheckReportsDistinctStates(t *testing.T) {
	d := New(1024, nil)
	d.Store(0, []byte{9})
	d.Store(64, []byte{8}) // two dirty lines → 4 possible states
	validations := 0
	distinct, err := d.RecoveryCheck(rand.New(rand.NewSource(3)), 100, CrashOptions{},
		func([]byte) error { validations++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if distinct != 4 {
		t.Fatalf("distinct = %d, want 4", distinct)
	}
	if validations != distinct {
		t.Fatalf("validate ran %d times for %d distinct states", validations, distinct)
	}
}

func TestEvictLine(t *testing.T) {
	var ops []trace.Op
	d := New(1024, recSink{&ops})
	d.Store(64, []byte{7})
	if d.EvictLine(0) {
		t.Fatal("evicted a clean line")
	}
	nOps := len(ops)
	if !d.EvictLine(64) {
		t.Fatal("failed to evict the dirty line")
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("line still dirty after eviction")
	}
	if d.Image()[64] != 7 {
		t.Fatal("evicted content not durable")
	}
	if len(ops) != nOps {
		t.Fatal("eviction emitted a trace op; hardware evictions are invisible")
	}
	// A later store to the evicted line re-dirties it from durable state.
	d.Store(65, []byte{8})
	if got := d.LoadBytes(64, 2); got[0] != 7 || got[1] != 8 {
		t.Fatalf("post-eviction store lost data: % x", got)
	}
}

type recSink struct{ ops *[]trace.Op }

func (r recSink) Record(op trace.Op, _ int) { *r.ops = append(*r.ops, op) }

// hookFuncs adapts closures to FaultHook for tests.
type hookFuncs struct {
	store func(addr uint64, data []byte) int
	flush func(addr, size uint64) bool
	fence func() bool
	after func()
}

func (h hookFuncs) BeforeStore(addr uint64, data []byte) int {
	if h.store == nil {
		return len(data)
	}
	return h.store(addr, data)
}
func (h hookFuncs) BeforeFlush(addr, size uint64) bool { return h.flush == nil || h.flush(addr, size) }
func (h hookFuncs) BeforeFence() bool                  { return h.fence == nil || h.fence() }
func (h hookFuncs) AfterFence() {
	if h.after != nil {
		h.after()
	}
}

// TestFaultHookSuppression: a suppressed primitive leaves no trace op and
// no device-state change, keeping trace and crash semantics consistent.
func TestFaultHookSuppression(t *testing.T) {
	var ops []trace.Op
	d := New(1024, recSink{&ops})
	d.SetFaultHook(hookFuncs{flush: func(uint64, uint64) bool { return false }})
	d.Store(0, []byte{1})
	d.CLWB(0, 1)
	d.SFence()
	if d.Image()[0] != 0 {
		t.Fatal("dropped clwb still persisted the line")
	}
	for _, op := range ops {
		if op.Kind == trace.KindFlush {
			t.Fatal("dropped clwb was recorded in the trace")
		}
	}

	ops = ops[:0]
	d2 := New(1024, recSink{&ops})
	afterFired := false
	d2.SetFaultHook(hookFuncs{fence: func() bool { return false }, after: func() { afterFired = true }})
	d2.Store(0, []byte{1})
	d2.CLWB(0, 1)
	d2.SFence()
	if d2.Image()[0] != 0 {
		t.Fatal("dropped fence still persisted")
	}
	if afterFired {
		t.Fatal("AfterFence fired for a suppressed fence")
	}
	for _, op := range ops {
		if op.Kind == trace.KindFence {
			t.Fatal("dropped fence was recorded in the trace")
		}
	}
}

// TestFaultHookTearsStore: BeforeStore returning a prefix length executes
// (and records) only the prefix.
func TestFaultHookTearsStore(t *testing.T) {
	var ops []trace.Op
	d := New(1024, recSink{&ops})
	d.SetFaultHook(hookFuncs{store: func(addr uint64, data []byte) int { return 8 }})
	d.Store(0, bytes.Repeat([]byte{0x33}, 16))
	got := d.LoadBytes(0, 16)
	if !bytes.Equal(got[:8], bytes.Repeat([]byte{0x33}, 8)) || got[8] != 0 {
		t.Fatalf("torn store applied wrong bytes: % x", got)
	}
	if len(ops) != 1 || ops[0].Kind != trace.KindWrite || ops[0].Size != 8 {
		t.Fatalf("torn store recorded %v, want one 8-byte write", ops)
	}
}

// TestFaultHookAfterFenceReissue: a hook may re-issue a deferred primitive
// from AfterFence; the re-issued op lands after the fence in the trace.
func TestFaultHookAfterFenceReissue(t *testing.T) {
	var ops []trace.Op
	d := New(1024, recSink{&ops})
	h := &reissueHook{}
	h.d = d
	d.SetFaultHook(h)
	d.Store(0, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	d.CLWB(0, 16)
	d.SFence()
	var kinds []trace.Kind
	for _, op := range ops {
		kinds = append(kinds, op.Kind)
	}
	want := []trace.Kind{trace.KindWrite, trace.KindFlush, trace.KindFence, trace.KindWrite}
	if len(kinds) != len(want) {
		t.Fatalf("ops %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("ops %v, want %v", kinds, want)
		}
	}
	// The deferred tail is volatile again: dirty line after the fence.
	if d.DirtyLines() != 1 {
		t.Fatalf("deferred tail should re-dirty its line (dirty=%d)", d.DirtyLines())
	}
}

// reissueHook tears the first large store and re-issues the tail after
// the next fence (the torn-store fault shape used by faultinject).
type reissueHook struct {
	d        *Device
	deferred []byte
	addr     uint64
	passthru bool
	done     bool
}

func (h *reissueHook) BeforeStore(addr uint64, data []byte) int {
	if h.passthru || h.done || len(data) < 16 {
		return len(data)
	}
	h.done = true
	h.addr = addr + 8
	h.deferred = append([]byte(nil), data[8:]...)
	return 8
}
func (h *reissueHook) BeforeFlush(addr, size uint64) bool { return true }
func (h *reissueHook) BeforeFence() bool                  { return true }
func (h *reissueHook) AfterFence() {
	if h.deferred != nil {
		h.passthru = true
		h.d.Store(h.addr, h.deferred)
		h.passthru = false
		h.deferred = nil
	}
}
