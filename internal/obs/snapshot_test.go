package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// randHist builds a histogram from n seeded random observations and
// returns both the histogram snapshot and the raw durations observed.
func randHist(rng *rand.Rand, n int) (HistSnapshot, []time.Duration) {
	var h Histogram
	durs := make([]time.Duration, n)
	for i := range durs {
		// Exponent spread covers every bucket including the unbounded
		// last one; the jitter lands observations mid-bucket.
		d := time.Duration(1<<uint(rng.Intn(36))) + time.Duration(rng.Intn(1000))
		durs[i] = d
		h.Observe(d)
	}
	return h.Snapshot(), durs
}

// TestMergeHistExact is the central exactness property: merging the
// snapshots of k histograms is bit-identical to one histogram that
// observed every sample itself — buckets, count, sum, and the quantiles
// recomputed from them.
func TestMergeHistExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var whole Histogram
		parts := make([]HistSnapshot, 1+rng.Intn(4))
		for i := range parts {
			snap, durs := randHist(rng, rng.Intn(200))
			parts[i] = snap
			for _, d := range durs {
				whole.Observe(d)
			}
		}
		merged, err := MergeHist(parts...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := whole.Snapshot(); !reflect.DeepEqual(merged, want) {
			t.Fatalf("trial %d: merge not exact:\n got %+v\nwant %+v", trial, merged, want)
		}
	}
}

// TestMergeHistCommutative checks merge order does not matter.
func TestMergeHistCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		a, _ := randHist(rng, rng.Intn(300))
		b, _ := randHist(rng, rng.Intn(300))
		ab, err := MergeHist(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := MergeHist(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge(a,b) != merge(b,a):\n %+v\n %+v", trial, ab, ba)
		}
	}
}

// TestMergeHistAssociative checks grouping does not matter:
// merge(merge(a,b),c) == merge(a,merge(b,c)) == merge(a,b,c).
func TestMergeHistAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		a, _ := randHist(rng, rng.Intn(200))
		b, _ := randHist(rng, rng.Intn(200))
		c, _ := randHist(rng, rng.Intn(200))
		ab, err := MergeHist(a, b)
		if err != nil {
			t.Fatal(err)
		}
		left, err := MergeHist(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := MergeHist(b, c)
		if err != nil {
			t.Fatal(err)
		}
		right, err := MergeHist(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := MergeHist(a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(left, right) || !reflect.DeepEqual(left, flat) {
			t.Fatalf("trial %d: associativity broken:\n left  %+v\n right %+v\n flat  %+v",
				trial, left, right, flat)
		}
	}
}

// TestMergeHistSurvivesJSON checks exactness holds for snapshots that
// crossed the wire — the compacted cumulative bucket encoding must be
// losslessly reconstructible after a JSON round trip.
func TestMergeHistSurvivesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var whole Histogram
	parts := make([]HistSnapshot, 3)
	for i := range parts {
		snap, durs := randHist(rng, 150)
		for _, d := range durs {
			whole.Observe(d)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var back HistSnapshot
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		parts[i] = back
	}
	merged, err := MergeHist(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if want := whole.Snapshot(); !reflect.DeepEqual(merged, want) {
		t.Fatalf("post-JSON merge not exact:\n got %+v\nwant %+v", merged, want)
	}
}

func TestMergeHistRejectsMalformed(t *testing.T) {
	good, _ := randHist(rand.New(rand.NewSource(1)), 50)
	cases := map[string]HistSnapshot{
		"foreign bound": {Count: 1, Buckets: []HistBucket{{Le: 300, Count: 1}}},
		"out of order": {Count: 2, Buckets: []HistBucket{
			{Le: histBound(3), Count: 1}, {Le: histBound(1), Count: 2}}},
		"decreasing cumulative": {Count: 1, Buckets: []HistBucket{
			{Le: histBound(1), Count: 5}, {Le: histBound(2), Count: 3}}},
		"count mismatch": {Count: 9, Buckets: []HistBucket{{Le: histBound(1), Count: 1}}},
	}
	for name, bad := range cases {
		if _, err := MergeHist(good, bad); err == nil {
			t.Errorf("%s: merge accepted a malformed histogram", name)
		}
	}
}

// sampleNode builds a NodeSnapshot with distinctive values for merge
// assertions.
func sampleNode(source string, seed int64) NodeSnapshot {
	rng := rand.New(rand.NewSource(seed))
	m := NewMetrics(4)
	for i := 0; i < 20; i++ {
		m.TraceSubmitted(i, 0, 8)
		m.TraceDequeued(i, 0, time.Duration(rng.Intn(5000)))
		m.TraceChecked(TraceEvent{TraceID: i, Ops: 8, Fails: i % 2,
			CheckDur: time.Duration(rng.Intn(100000))})
	}
	src := &SnapshotSource{Source: source, Metrics: m}
	n := src.Capture()
	dur, _ := randHist(rng, 40)
	n.Flight = &FlightSummary{Categories: []FlightCategorySummary{
		{Category: "engine", Spans: 10, Errs: int(seed), MaxDur: time.Duration(seed) * time.Millisecond, Dur: dur},
	}}
	return n
}

func TestNodeSnapshotSchemaRoundTrip(t *testing.T) {
	n := sampleNode("node-a", 3)
	if n.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("Capture stamped schema %d, want %d", n.SchemaVersion, SnapshotSchemaVersion)
	}
	if n.GoVersion == "" || n.CapturedAt.IsZero() {
		t.Fatalf("missing provenance: %+v", n)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back NodeSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// The document must survive the wire losslessly enough to merge
	// identically: a collector working from decoded JSON gets the same
	// fleet view as one handed in-process snapshots.
	direct, err := Merge(n, sampleNode("node-b", 5))
	if err != nil {
		t.Fatal(err)
	}
	viaWire, err := Merge(back, sampleNode("node-b", 5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Metrics.CheckDur, viaWire.Metrics.CheckDur) ||
		direct.Metrics.TracesChecked != viaWire.Metrics.TracesChecked {
		t.Fatalf("wire round trip changed the merge:\n direct %+v\n wire   %+v",
			direct.Metrics, viaWire.Metrics)
	}
}

func TestMergeSumsAndProvenance(t *testing.T) {
	a, b := sampleNode("node-a", 3), sampleNode("node-b", 5)
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.SchemaVersion != SnapshotSchemaVersion || merged.Partial {
		t.Fatalf("header wrong: %+v", merged)
	}
	if got, want := merged.Metrics.TracesChecked, a.Metrics.TracesChecked+b.Metrics.TracesChecked; got != want {
		t.Errorf("TracesChecked = %d, want %d", got, want)
	}
	if got, want := merged.Metrics.DiagsBySeverity["FAIL"],
		a.Metrics.DiagsBySeverity["FAIL"]+b.Metrics.DiagsBySeverity["FAIL"]; got != want {
		t.Errorf("FAIL diags = %d, want %d", got, want)
	}
	wantUp := a.Metrics.Uptime
	if b.Metrics.Uptime > wantUp {
		wantUp = b.Metrics.Uptime
	}
	if merged.Metrics.Uptime != wantUp {
		t.Errorf("Uptime = %v, want max %v", merged.Metrics.Uptime, wantUp)
	}
	if len(merged.Sources) != 2 || merged.Sources[0].Source != "node-a" || merged.Sources[1].Source != "node-b" {
		t.Fatalf("sources = %+v", merged.Sources)
	}
	if merged.Sources[0].TracesChecked != a.Metrics.TracesChecked {
		t.Errorf("per-source headline lost: %+v", merged.Sources[0])
	}
	// Flight tallies merge by category name.
	if merged.Flight == nil || len(merged.Flight.Categories) != 1 {
		t.Fatalf("flight = %+v", merged.Flight)
	}
	if c := merged.Flight.Categories[0]; c.Spans != 20 || c.Errs != 8 || c.MaxDur != 5*time.Millisecond {
		t.Errorf("flight category = %+v", c)
	}
	// The per-category duration histogram merges alongside the tallies.
	if c := merged.Flight.Categories[0]; c.Dur.Count != a.Flight.Categories[0].Dur.Count+b.Flight.Categories[0].Dur.Count {
		t.Errorf("flight Dur count = %d, want %d", c.Dur.Count,
			a.Flight.Categories[0].Dur.Count+b.Flight.Categories[0].Dur.Count)
	}
	// GC pause histograms merge exactly too (runtime side).
	if merged.Runtime.GCPause.Count != a.Runtime.GCPause.Count+b.Runtime.GCPause.Count {
		t.Errorf("GC pause count = %d, want %d",
			merged.Runtime.GCPause.Count, a.Runtime.GCPause.Count+b.Runtime.GCPause.Count)
	}
}

// TestMergeFlightDurExact extends the central exactness property to
// the per-category span duration histograms: a fleet merge of k nodes'
// flight summaries carries the same Dur histogram as one node that
// recorded every span itself — so pmtop's fleet p99 is a real quantile,
// not an average of averages.
func TestMergeFlightDurExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		var whole Histogram
		nodes := make([]NodeSnapshot, 1+rng.Intn(3))
		for i := range nodes {
			snap, durs := randHist(rng, rng.Intn(150))
			for _, d := range durs {
				whole.Observe(d)
			}
			nodes[i] = sampleNode("n", int64(trial*10+i+1))
			nodes[i].Flight.Categories[0].Dur = snap
		}
		merged, err := Merge(nodes...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, want := merged.Flight.Categories[0].Dur, whole.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: flight Dur merge not exact:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestMergeFlightDurOldNode pins compatibility: a snapshot from a node
// built before the Dur field existed (zero-value histogram) merges
// cleanly, contributing nothing to the fleet histogram.
func TestMergeFlightDurOldNode(t *testing.T) {
	newNode := sampleNode("new", 3)
	oldNode := sampleNode("old", 5)
	oldNode.Flight.Categories[0].Dur = HistSnapshot{}
	merged, err := Merge(newNode, oldNode)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Flight.Categories[0].Dur, newNode.Flight.Categories[0].Dur; !reflect.DeepEqual(got, want) {
		t.Fatalf("old-node merge changed the histogram:\n got %+v\nwant %+v", got, want)
	}
}

func TestMergeRejectsSchemaMismatch(t *testing.T) {
	a, b := sampleNode("node-a", 3), sampleNode("node-b", 5)
	b.SchemaVersion = SnapshotSchemaVersion + 1
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merge accepted a schema-version mismatch")
	}
}

func TestMergeRecentTracesCapped(t *testing.T) {
	nodes := make([]NodeSnapshot, 0, mergedRecentCap)
	for i := 0; i < mergedRecentCap; i++ {
		nodes = append(nodes, sampleNode("n", int64(i+1)))
	}
	merged, err := Merge(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Metrics.RecentTraces) > mergedRecentCap {
		t.Fatalf("recent traces = %d, want <= %d", len(merged.Metrics.RecentTraces), mergedRecentCap)
	}
}

// TestSnapshotBuildAllocCeiling pins the allocation cost of building one
// node's snapshot document: it runs on every scrape, so it must stay
// bounded no matter how much traffic the registry has absorbed.
func TestSnapshotBuildAllocCeiling(t *testing.T) {
	m := NewMetrics(64)
	for i := 0; i < 4096; i++ {
		m.TraceSubmitted(i, i%8, 16)
		m.TraceDequeued(i, i%4, time.Duration(i))
		m.TraceChecked(TraceEvent{TraceID: i, Worker: i % 4, Ops: 16, Fails: i % 3,
			Codes:    map[string]int{"NOT_PERSISTED": 1},
			CheckDur: time.Duration(i) * 37})
	}
	src := &SnapshotSource{Source: "alloc-test", Metrics: m}
	// Measured ~18 allocs; the ceiling leaves headroom for Go-version
	// noise while still catching any per-bucket or per-event regression.
	const ceiling = 64
	if got := testing.AllocsPerRun(50, func() { _ = src.Capture() }); got > ceiling {
		t.Fatalf("snapshot build allocates %.0f/op, ceiling %d", got, ceiling)
	}
}

func TestCaptureRuntimeSane(t *testing.T) {
	r := CaptureRuntime()
	if r.Goroutines <= 0 {
		t.Errorf("goroutines = %d", r.Goroutines)
	}
	if r.HeapBytes == 0 || r.TotalAllocBytes == 0 {
		t.Errorf("heap accounting zero: %+v", r)
	}
	// The rebucketed GC pause histogram must satisfy the same invariants
	// MergeHist validates — proven by merging it with itself.
	if _, err := MergeHist(r.GCPause, r.GCPause); err != nil {
		t.Errorf("GC pause histogram does not merge: %v", err)
	}
}
