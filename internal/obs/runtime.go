package obs

import (
	"fmt"
	"runtime/metrics"
	"time"
)

// RuntimeSnapshot is the process-health section of a node snapshot,
// polled from runtime/metrics at capture time: is this node leaking
// memory, piling up goroutines, or stalling in GC? All fields are
// mergeable: counters and gauges sum across nodes (a fleet total) and
// the GC pause histogram merges bucket-exactly like every other
// histogram in the schema.
type RuntimeSnapshot struct {
	Goroutines  int    `json:"goroutines"`
	HeapBytes   uint64 `json:"heap_bytes"`
	HeapObjects uint64 `json:"heap_objects"`
	// TotalAllocBytes is cumulative allocation since process start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	GCCycles        uint64 `json:"gc_cycles"`
	// GCPause is the stop-the-world pause distribution, rebucketed from
	// runtime/metrics' native histogram into the schema's fixed
	// exponential layout (each native bucket lands at its lower bound,
	// so cross-node merging stays exact; sub-bucket placement is
	// conservative). Sum is estimated the same way.
	GCPause HistSnapshot `json:"gc_pause"`
}

// runtimeSampleNames are the runtime/metrics series the collector polls.
// All five exist since Go 1.16; Read leaves unknown names as KindBad,
// which capture treats as zero rather than failing.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/objects:objects",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// CaptureRuntime polls runtime/metrics once and returns the process
// health section. It is cheap enough to run per scrape (microseconds, a
// handful of allocations).
func CaptureRuntime() RuntimeSnapshot {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	u64 := func(i int) uint64 {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			return samples[i].Value.Uint64()
		default:
			return 0
		}
	}
	rs := RuntimeSnapshot{
		Goroutines:      int(u64(0)),
		HeapBytes:       u64(1),
		HeapObjects:     u64(2),
		TotalAllocBytes: u64(3),
		GCCycles:        u64(4),
	}
	if samples[5].Value.Kind() == metrics.KindFloat64Histogram {
		rs.GCPause = rebucket(samples[5].Value.Float64Histogram())
	}
	return rs
}

// rebucket converts a runtime/metrics histogram (float64 second bounds)
// into the schema's fixed exponential duration buckets. Every native
// bucket's count is attributed to its lower bound — a deterministic,
// conservative placement; once in the fixed layout, cross-node merges
// are exact.
func rebucket(h *metrics.Float64Histogram) HistSnapshot {
	var counts [histBuckets]uint64
	var sum time.Duration
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo := h.Buckets[i]
		if lo < 0 { // the first bucket's bound can be -Inf
			lo = 0
		}
		d := time.Duration(lo * float64(time.Second))
		idx := 0
		for idx < histBuckets-1 && d >= histBound(idx) {
			idx++
		}
		counts[idx] += c
		sum += time.Duration(c) * d
	}
	return histFromCounts(&counts, sum)
}

// mergeRuntime folds one node's runtime section into the accumulator:
// everything sums (fleet totals) and the pause histogram merges exactly.
func mergeRuntime(acc *RuntimeSnapshot, r RuntimeSnapshot) error {
	gp, err := MergeHist(acc.GCPause, r.GCPause)
	if err != nil {
		return fmt.Errorf("gc pause histogram: %w", err)
	}
	acc.GCPause = gp
	acc.Goroutines += r.Goroutines
	acc.HeapBytes += r.HeapBytes
	acc.HeapObjects += r.HeapObjects
	acc.TotalAllocBytes += r.TotalAllocBytes
	acc.GCCycles += r.GCCycles
	return nil
}
