package collect

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pmtest/internal/obs"
)

// node spins up one fake /obs/v1/snapshot endpoint serving the given
// document.
func node(t *testing.T, source string, traces uint64) *httptest.Server {
	t.Helper()
	m := obs.NewMetrics(8)
	m.TracesChecked.Add(traces)
	src := &obs.SnapshotSource{Source: source, Metrics: m}
	mux := http.NewServeMux()
	mux.Handle("/obs/v1/snapshot", obs.SnapshotHandler(src))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestSnapshotURL(t *testing.T) {
	cases := map[string]string{
		"host:8081":                       "http://host:8081/obs/v1/snapshot",
		"http://host:8081":                "http://host:8081/obs/v1/snapshot",
		"https://host":                    "https://host/obs/v1/snapshot",
		"http://host:8081/custom/metrics": "http://host:8081/custom/metrics",
	}
	for in, want := range cases {
		if got := SnapshotURL(in); got != want {
			t.Errorf("SnapshotURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCollectAllUp(t *testing.T) {
	a, b := node(t, "alpha", 10), node(t, "beta", 32)
	merged, err := Collect(context.Background(), []string{a.URL, b.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Partial {
		t.Fatalf("all nodes up but partial: %+v", merged.Sources)
	}
	if merged.Metrics.TracesChecked != 42 {
		t.Errorf("TracesChecked = %d, want 42", merged.Metrics.TracesChecked)
	}
	if len(merged.Sources) != 2 || merged.Sources[0].Source != "alpha" || merged.Sources[1].Source != "beta" {
		t.Errorf("sources = %+v", merged.Sources)
	}
}

// TestCollectPartialFailure is the acceptance scenario: three endpoints,
// one down and one slow past the per-node timeout — the collection still
// returns a merged snapshot built from the healthy node, flagged partial,
// with a per-node error row for each failure.
func TestCollectPartialFailure(t *testing.T) {
	healthy := node(t, "healthy", 7)

	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // stall well past the collector's timeout, but unblock on client abort
		case <-time.After(30 * time.Second):
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	start := time.Now()
	merged, err := Collect(context.Background(),
		[]string{healthy.URL, slow.URL, deadURL},
		Options{Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("collection took %v; the slow node must only cost its own timeout", elapsed)
	}
	if !merged.Partial {
		t.Fatal("two nodes failed but Partial is false")
	}
	if merged.Metrics.TracesChecked != 7 {
		t.Errorf("merged metrics = %d traces, want the healthy node's 7", merged.Metrics.TracesChecked)
	}
	var errRows int
	for _, s := range merged.Sources {
		if s.Err != "" {
			errRows++
		}
	}
	if len(merged.Sources) != 3 || errRows != 2 {
		t.Fatalf("want 3 source rows with 2 errors, got %+v", merged.Sources)
	}
	// Provenance keeps caller order: healthy first, then the failures.
	if merged.Sources[0].Source != "healthy" || merged.Sources[0].Err != "" {
		t.Errorf("healthy row = %+v", merged.Sources[0])
	}
}

func TestCollectSchemaMismatchIsPerNode(t *testing.T) {
	good := node(t, "good", 3)
	rogue := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(obs.NodeSnapshot{
			SchemaVersion: obs.SnapshotSchemaVersion + 1, Source: "rogue",
		})
	}))
	defer rogue.Close()

	merged, err := Collect(context.Background(), []string{good.URL, rogue.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Partial {
		t.Fatal("schema mismatch must mark the merge partial")
	}
	var rogueErr string
	for _, s := range merged.Sources {
		if s.Err != "" {
			rogueErr = s.Err
		}
	}
	if !strings.Contains(rogueErr, "schema_version") {
		t.Errorf("rogue error = %q, want a schema_version complaint", rogueErr)
	}
	if merged.Metrics.TracesChecked != 3 {
		t.Errorf("merged metrics = %d, want the good node's 3", merged.Metrics.TracesChecked)
	}
}

func TestCollectNoNodes(t *testing.T) {
	if _, err := Collect(context.Background(), nil, Options{}); err == nil {
		t.Fatal("empty node list must error")
	}
}

func TestCollectAllDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	merged, err := Collect(context.Background(), []string{url}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Partial || len(merged.Sources) != 1 || merged.Sources[0].Err == "" {
		t.Fatalf("all-down merge = %+v", merged)
	}
	if merged.SchemaVersion != obs.SnapshotSchemaVersion {
		t.Errorf("schema version = %d", merged.SchemaVersion)
	}
}
