// Package collect is the aggregation client of the observability plane:
// it polls N /obs/v1/snapshot endpoints concurrently, tolerates slow and
// dead nodes, and merges whatever arrived into one fleet snapshot with
// per-node provenance — the DistributedTraceCollector pattern (fan out,
// capture errors per node, merge partial results) applied to metrics.
//
// cmd/pmtop is the interactive consumer; the future pmtestd coordinator
// reuses the same client for its federated /obs endpoint.
package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"pmtest/internal/obs"
)

// DefaultTimeout bounds each node poll when Options.Timeout is zero.
const DefaultTimeout = 2 * time.Second

// maxSnapshotBytes bounds one node's response; a document beyond it is a
// misbehaving node, reported as a per-node error.
const maxSnapshotBytes = 16 << 20

// Options configures a collection pass.
type Options struct {
	// Timeout bounds each node's poll independently — one slow node
	// costs its own slot, never the whole pass (default DefaultTimeout).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject one); the default
	// is a plain &http.Client{} with per-request context deadlines.
	Client *http.Client
}

// SnapshotURL normalizes a node spec into the full snapshot endpoint:
// "host:8081" → "http://host:8081/obs/v1/snapshot"; explicit http(s)
// URLs keep their scheme and gain the path unless they already carry
// one.
func SnapshotURL(node string) string {
	u := node
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	// Only append the well-known path when the spec is scheme://host[:port].
	rest := u[strings.Index(u, "://")+3:]
	if !strings.Contains(rest, "/") {
		u += "/obs/v1/snapshot"
	}
	return u
}

// Fetch retrieves and validates one node's snapshot document.
func Fetch(ctx context.Context, client *http.Client, node string) (obs.NodeSnapshot, error) {
	var snap obs.NodeSnapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, SnapshotURL(node), nil)
	if err != nil {
		return snap, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return snap, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxSnapshotBytes)).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode snapshot: %w", err)
	}
	if snap.SchemaVersion != obs.SnapshotSchemaVersion {
		return snap, fmt.Errorf("schema_version %d, this collector speaks %d",
			snap.SchemaVersion, obs.SnapshotSchemaVersion)
	}
	if snap.Source == "" {
		snap.Source = node
	}
	return snap, nil
}

// fetchResult carries one node's outcome back from its goroutine.
type fetchResult struct {
	idx  int
	node string
	snap obs.NodeSnapshot
	err  error
}

// Collect polls every node concurrently and merges the successful
// snapshots. Nodes that are down, slow past the per-node timeout, or
// speaking a different schema become error rows in Sources and set
// Partial; they never fail the pass — a fleet dashboard that dies when
// one node does is useless exactly when it is needed. Collect only
// errors when nodes is empty.
func Collect(ctx context.Context, nodes []string, opt Options) (obs.MergedSnapshot, error) {
	if len(nodes) == 0 {
		return obs.MergedSnapshot{}, fmt.Errorf("collect: no nodes to poll")
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}

	results := make(chan fetchResult, len(nodes))
	for i, node := range nodes {
		go func(i int, node string) {
			nodeCtx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			snap, err := Fetch(nodeCtx, client, node)
			results <- fetchResult{idx: i, node: node, snap: snap, err: err}
		}(i, node)
	}
	fetched := make([]fetchResult, 0, len(nodes))
	for range nodes {
		fetched = append(fetched, <-results)
	}
	// Stable output: provenance rows follow the caller's node order, not
	// goroutine completion order.
	sort.Slice(fetched, func(i, j int) bool { return fetched[i].idx < fetched[j].idx })

	var good []obs.NodeSnapshot
	var failed []obs.SourceStatus
	for _, r := range fetched {
		if r.err != nil {
			failed = append(failed, obs.SourceStatus{Source: r.node, Err: r.err.Error()})
			continue
		}
		good = append(good, r.snap)
	}
	merged, err := obs.Merge(good...)
	if err != nil {
		// Merge rejects a document Fetch accepted — a node stamping the
		// right schema version while shipping foreign histogram buckets.
		// Degrade node by node: keep the snapshots that merge cleanly,
		// turn the rest into per-source errors rather than aborting.
		accepted := good[:0:0]
		for _, n := range good {
			m2, err2 := obs.Merge(append(accepted, n)...)
			if err2 != nil {
				failed = append(failed, obs.SourceStatus{Source: n.Source, Err: err2.Error()})
				continue
			}
			accepted = append(accepted, n)
			merged = m2
		}
		if len(accepted) == 0 {
			merged = obs.MergedSnapshot{SchemaVersion: obs.SnapshotSchemaVersion}
		}
	}
	merged.Sources = append(merged.Sources, failed...)
	merged.Partial = len(failed) > 0
	return merged, nil
}
