package obs

import "sync"

// ring is a fixed-capacity overwrite-oldest buffer holding the most
// recent values added. It is safe for concurrent use; the lock is held
// only for an index update and one copy per add, so the cost per event
// is far below the cost of checking a trace.
type ring[T any] struct {
	mu  sync.Mutex
	buf []T // fully allocated at construction
	cur int // index of the next write; reads walk backwards from it
	n   int // number of live values (<= len(buf))
}

func newRing[T any](capacity int) *ring[T] {
	if capacity <= 0 {
		capacity = 1
	}
	return &ring[T]{buf: make([]T, capacity)}
}

// add stores v, evicting the oldest value once the ring is full.
func (r *ring[T]) add(v T) {
	r.mu.Lock()
	r.buf[r.cur] = v
	if r.n < len(r.buf) {
		r.n++
	}
	r.cur++
	if r.cur == len(r.buf) {
		r.cur = 0
	}
	r.mu.Unlock()
}

// len returns the number of live values.
func (r *ring[T]) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// snapshot returns the live values, newest first.
func (r *ring[T]) snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		j := r.cur - 1 - i
		if j < 0 {
			j += len(r.buf)
		}
		out[i] = r.buf[j]
	}
	return out
}
