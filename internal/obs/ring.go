package obs

import "sync"

// Ring is a fixed-capacity overwrite-oldest buffer holding the most
// recent values added. It is safe for concurrent use; the lock is held
// only for an index update and one copy per add, so the cost per event
// is far below the cost of checking a trace. Metrics uses it for the
// recent-trace ring; the flight recorder keeps one per span category.
type Ring[T any] struct {
	mu  sync.Mutex
	buf []T // fully allocated at construction
	cur int // index of the next write; reads walk backwards from it
	n   int // number of live values (<= len(buf))
}

// NewRing returns a ring holding the most recent capacity values
// (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Add stores v, evicting the oldest value once the ring is full.
func (r *Ring[T]) Add(v T) {
	r.mu.Lock()
	r.buf[r.cur] = v
	if r.n < len(r.buf) {
		r.n++
	}
	r.cur++
	if r.cur == len(r.buf) {
		r.cur = 0
	}
	r.mu.Unlock()
}

// Len returns the number of live values.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Do calls fn for each live value, newest first, stopping early when fn
// returns false. Unlike Snapshot it does not copy the buffer, so
// filtering a large ring allocates nothing. fn runs with the ring lock
// held: it must be quick and must not call back into the ring.
func (r *Ring[T]) Do(fn func(T) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		j := r.cur - 1 - i
		if j < 0 {
			j += len(r.buf)
		}
		if !fn(r.buf[j]) {
			return
		}
	}
}

// Snapshot returns the live values, newest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		j := r.cur - 1 - i
		if j < 0 {
			j += len(r.buf)
		}
		out[i] = r.buf[j]
	}
	return out
}
