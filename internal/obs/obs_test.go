package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Load())
	}
	c.Add(3)
	c.Add(4)
	if c.Load() != 7 {
		t.Fatalf("counter = %d, want 7", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.Mean != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations of 1µs, 10 of 1ms: p50 must land near 1µs, p99
	// in the 1ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	if s.P50 < 512*time.Nanosecond || s.P50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", s.P50)
	}
	if s.P99 < 512*time.Microsecond || s.P99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms", s.P99)
	}
	wantMean := (100*time.Microsecond + 10*time.Millisecond) / 110
	if s.Mean != wantMean {
		t.Errorf("mean = %v, want %v", s.Mean, wantMean)
	}
	// Cumulative buckets must end at the total count with an unbounded
	// final bucket.
	if n := len(s.Buckets); n == 0 || s.Buckets[n-1].Le != 0 || s.Buckets[n-1].Count != 110 {
		t.Errorf("final bucket = %+v, want +Inf cumulative 110", s.Buckets)
	}
}

func TestHistogramNegativeAndHuge(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)     // clamped to 0
	h.Observe(30 * time.Second) // beyond the last bound → overflow bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	s := h.Snapshot()
	if s.Buckets[len(s.Buckets)-1].Count != 2 {
		t.Fatalf("overflow bucket missing: %+v", s.Buckets)
	}
}

func TestRing(t *testing.T) {
	r := newRing[int](3)
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring snapshot = %v, want empty", got)
	}
	r.add(1)
	r.add(2)
	if got := r.snapshot(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("snapshot = %v, want [2 1]", got)
	}
	r.add(3)
	r.add(4) // evicts 1
	got := r.snapshot()
	if len(got) != 3 || got[0] != 4 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("snapshot = %v, want [4 3 2]", got)
	}
	if r.len() != 3 {
		t.Fatalf("len = %d, want 3", r.len())
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := newRing[int](0) // clamped to 1
	r.add(7)
	r.add(8)
	if got := r.snapshot(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("snapshot = %v, want [8]", got)
	}
}

func TestMetricsObserver(t *testing.T) {
	m := NewMetrics(4)
	m.TraceSubmitted(0, 0, 10)
	m.TraceSubmitted(1, 1, 20)
	m.TraceDequeued(0, 0, time.Microsecond)
	m.TraceDequeued(1, 1, 2*time.Microsecond)
	m.TraceChecked(TraceEvent{
		TraceID: 0, Worker: 0, Ops: 10, TrackedOps: 8,
		Fails: 1, Warns: 2, Infos: 1,
		Codes:     map[string]int{"not-persisted": 1, "duplicate-writeback": 2},
		QueueWait: time.Microsecond, CheckDur: 5 * time.Microsecond,
	})
	m.TraceChecked(TraceEvent{TraceID: 1, Worker: 1, Ops: 20, TrackedOps: 20,
		CheckDur: 10 * time.Microsecond})
	m.SubmitStalled(0, time.Millisecond)

	s := m.Snapshot()
	if s.TracesSubmitted != 2 || s.TracesDequeued != 2 || s.TracesChecked != 2 {
		t.Fatalf("lifecycle counters wrong: %+v", s)
	}
	if s.OpsSubmitted != 30 || s.OpsChecked != 30 {
		t.Fatalf("op counters = %d/%d, want 30/30", s.OpsSubmitted, s.OpsChecked)
	}
	if s.DiagsBySeverity["FAIL"] != 1 || s.DiagsBySeverity["WARN"] != 2 || s.DiagsBySeverity["INFO"] != 1 {
		t.Fatalf("severity tallies wrong: %v", s.DiagsBySeverity)
	}
	if s.DiagsByCode["not-persisted"] != 1 || s.DiagsByCode["duplicate-writeback"] != 2 {
		t.Fatalf("code tallies wrong: %v", s.DiagsByCode)
	}
	if len(s.PerWorkerChecked) != 2 || s.PerWorkerChecked[0] != 1 || s.PerWorkerChecked[1] != 1 {
		t.Fatalf("per-worker counts wrong: %v", s.PerWorkerChecked)
	}
	if s.BackpressureStalls != 1 || s.BackpressureStall != time.Millisecond {
		t.Fatalf("stall accounting wrong: %d %v", s.BackpressureStalls, s.BackpressureStall)
	}
	if len(s.RecentTraces) != 2 || s.RecentTraces[0].TraceID != 1 {
		t.Fatalf("recent ring wrong: %+v", s.RecentTraces)
	}
	if s.QueueWait.Count != 2 || s.CheckDur.Count != 2 {
		t.Fatalf("histogram counts wrong: %d %d", s.QueueWait.Count, s.CheckDur.Count)
	}
	if s.OpsPerSec <= 0 {
		t.Fatalf("ops/s = %v, want > 0", s.OpsPerSec)
	}
}

func TestMetricsQueueDepthFn(t *testing.T) {
	m := NewMetrics(1)
	m.SetQueueDepthFn(func() []int { return []int{3, 0} })
	s := m.Snapshot()
	if len(s.QueueDepths) != 2 || s.QueueDepths[0] != 3 {
		t.Fatalf("queue depths = %v, want [3 0]", s.QueueDepths)
	}
	// Nil receiver must be a no-op, both for the setter and Snapshot.
	var nilM *Metrics
	nilM.SetQueueDepthFn(func() []int { return nil })
	if s := nilM.Snapshot(); s.TracesChecked != 0 {
		t.Fatalf("nil Metrics snapshot not zero: %+v", s)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live observers must be nil")
	}
	a, b := NewMetrics(1), NewMetrics(1)
	if Multi(a, nil) != Observer(a) {
		t.Fatal("Multi of one observer must return it unwrapped")
	}
	fan := Multi(a, b)
	fan.TraceSubmitted(0, 0, 5)
	fan.TraceDequeued(0, 0, time.Microsecond)
	fan.TraceChecked(TraceEvent{Ops: 5})
	fan.(StallObserver).SubmitStalled(0, time.Microsecond)
	for _, m := range []*Metrics{a, b} {
		if m.TracesSubmitted.Load() != 1 || m.TracesChecked.Load() != 1 ||
			m.BackpressureStalls.Load() != 1 {
			t.Fatalf("fan-out missed an observer: %+v", m.Snapshot())
		}
	}
}

func TestSnapshotFormat(t *testing.T) {
	m := NewMetrics(4)
	m.TraceSubmitted(0, 0, 10)
	m.TraceChecked(TraceEvent{Ops: 10, Fails: 1, Codes: map[string]int{"not-persisted": 1},
		CheckDur: time.Microsecond})
	m.SectionsShipped.Add(1)
	m.OpsRecorded.Add(10)
	m.BytesEncoded.Add(123)
	m.SubmitStalled(0, time.Millisecond)
	m.SharingTracesFed.Add(2)
	m.CampaignSchedules.Add(3)
	m.FaultsInjected.Add(3)
	m.CrashStatesExplored.Add(40)
	m.CrashStatesPossible.Add(64)
	m.RecoveryFailures.Add(2)
	m.CampaignDeadlineHits.Add(1)
	out := m.Snapshot().Format()
	for _, want := range []string{
		"observability snapshot", "checked 1", "ops/s", "p50", "p99",
		"FAIL 1", "not-persisted", "encoded 123B", "backpressure", "sharing",
		"campaign 3 schedules", "explored 40 of 64 possible",
		"2 recovery failures", "1 deadline expiries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	// The empty snapshot must render without panicking.
	if out := (Snapshot{}).Format(); !strings.Contains(out, "diags    none") {
		t.Errorf("empty Format() = %q", out)
	}
}
