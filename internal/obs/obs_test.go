package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Load())
	}
	c.Add(3)
	c.Add(4)
	if c.Load() != 7 {
		t.Fatalf("counter = %d, want 7", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.Mean != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations of 1µs, 10 of 1ms: p50 must land near 1µs, p99
	// in the 1ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	if s.P50 < 512*time.Nanosecond || s.P50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", s.P50)
	}
	if s.P99 < 512*time.Microsecond || s.P99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms", s.P99)
	}
	wantMean := (100*time.Microsecond + 10*time.Millisecond) / 110
	if s.Mean != wantMean {
		t.Errorf("mean = %v, want %v", s.Mean, wantMean)
	}
	// Cumulative buckets must end at the total count with an unbounded
	// final bucket.
	if n := len(s.Buckets); n == 0 || s.Buckets[n-1].Le != 0 || s.Buckets[n-1].Count != 110 {
		t.Errorf("final bucket = %+v, want +Inf cumulative 110", s.Buckets)
	}
}

func TestHistogramNegativeAndHuge(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)     // clamped to 0
	h.Observe(30 * time.Second) // beyond the last bound → overflow bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	s := h.Snapshot()
	if s.Buckets[len(s.Buckets)-1].Count != 2 {
		t.Fatalf("overflow bucket missing: %+v", s.Buckets)
	}
}

// TestHistogramOverflowQuantiles pins the open-bucket interpolation:
// the last bucket has no upper bound and quantile() assumes one more
// doubling, so observations far beyond the final bound (256<<24 ns ≈
// 4.29s) yield quantiles clamped into [lastBound, 2*lastBound] — large
// but finite, never the raw 30s outlier.
func TestHistogramOverflowQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 4; i++ {
		h.Observe(30 * time.Second) // all land in the overflow bucket
	}
	s := h.Snapshot()
	lo := histBound(histBuckets - 2) // inclusive lower bound of the open bucket
	hi := 2 * lo
	for _, q := range []struct {
		name string
		v    time.Duration
	}{{"p50", s.P50}, {"p90", s.P90}, {"p99", s.P99}} {
		if q.v < lo || q.v > hi {
			t.Errorf("%s = %v, want within open-bucket range [%v, %v]", q.name, q.v, lo, hi)
		}
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotonic: p50=%v p90=%v p99=%v", s.P50, s.P90, s.P99)
	}
	// The mean uses the exact sum, so unlike the quantiles it reports
	// the true 30s.
	if s.Mean != 30*time.Second {
		t.Errorf("mean = %v, want 30s", s.Mean)
	}
	// Mixed case: half tiny, half overflow — p50 stays in the first
	// bucket, p99 moves to the open one.
	var m Histogram
	for i := 0; i < 50; i++ {
		m.Observe(100 * time.Nanosecond)
	}
	for i := 0; i < 50; i++ {
		m.Observe(time.Minute)
	}
	ms := m.Snapshot()
	// rank 50 exhausts exactly the first bucket, so interpolation lands
	// on its upper edge.
	if ms.P50 > histBound(0) {
		t.Errorf("mixed p50 = %v, want within first bucket (<= %v)", ms.P50, histBound(0))
	}
	if ms.P99 < lo || ms.P99 > hi {
		t.Errorf("mixed p99 = %v, want in open bucket [%v, %v]", ms.P99, lo, hi)
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring snapshot = %v, want empty", got)
	}
	r.Add(1)
	r.Add(2)
	if got := r.Snapshot(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("snapshot = %v, want [2 1]", got)
	}
	r.Add(3)
	r.Add(4) // evicts 1
	got := r.Snapshot()
	if len(got) != 3 || got[0] != 4 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("snapshot = %v, want [4 3 2]", got)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := NewRing[int](0) // clamped to 1
	r.Add(7)
	r.Add(8)
	if got := r.Snapshot(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("snapshot = %v, want [8]", got)
	}
}

func TestRingDo(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 5; i++ { // ring holds [5 4 3]
		r.Add(i)
	}
	var seen []int
	r.Do(func(v int) bool {
		seen = append(seen, v)
		return true
	})
	if len(seen) != 3 || seen[0] != 5 || seen[1] != 4 || seen[2] != 3 {
		t.Fatalf("Do order = %v, want [5 4 3]", seen)
	}
	// Early stop: fn returning false halts the walk.
	seen = seen[:0]
	r.Do(func(v int) bool {
		seen = append(seen, v)
		return false
	})
	if len(seen) != 1 || seen[0] != 5 {
		t.Fatalf("Do with early stop = %v, want [5]", seen)
	}
	// Allocation-free filtering is the point of Do over Snapshot.
	if allocs := testing.AllocsPerRun(100, func() {
		r.Do(func(int) bool { return true })
	}); allocs != 0 {
		t.Fatalf("Do allocates %v per run, want 0", allocs)
	}
}

func TestMetricsObserver(t *testing.T) {
	m := NewMetrics(4)
	m.TraceSubmitted(0, 0, 10)
	m.TraceSubmitted(1, 1, 20)
	m.TraceDequeued(0, 0, time.Microsecond)
	m.TraceDequeued(1, 1, 2*time.Microsecond)
	m.TraceChecked(TraceEvent{
		TraceID: 0, Worker: 0, Ops: 10, TrackedOps: 8,
		Fails: 1, Warns: 2, Infos: 1,
		Codes:     map[string]int{"not-persisted": 1, "duplicate-writeback": 2},
		QueueWait: time.Microsecond, CheckDur: 5 * time.Microsecond,
	})
	m.TraceChecked(TraceEvent{TraceID: 1, Worker: 1, Ops: 20, TrackedOps: 20,
		CheckDur: 10 * time.Microsecond})
	m.SubmitStalled(0, time.Millisecond)

	s := m.Snapshot()
	if s.TracesSubmitted != 2 || s.TracesDequeued != 2 || s.TracesChecked != 2 {
		t.Fatalf("lifecycle counters wrong: %+v", s)
	}
	if s.OpsSubmitted != 30 || s.OpsChecked != 30 {
		t.Fatalf("op counters = %d/%d, want 30/30", s.OpsSubmitted, s.OpsChecked)
	}
	if s.DiagsBySeverity["FAIL"] != 1 || s.DiagsBySeverity["WARN"] != 2 || s.DiagsBySeverity["INFO"] != 1 {
		t.Fatalf("severity tallies wrong: %v", s.DiagsBySeverity)
	}
	if s.DiagsByCode["not-persisted"] != 1 || s.DiagsByCode["duplicate-writeback"] != 2 {
		t.Fatalf("code tallies wrong: %v", s.DiagsByCode)
	}
	if len(s.PerWorkerChecked) != 2 || s.PerWorkerChecked[0] != 1 || s.PerWorkerChecked[1] != 1 {
		t.Fatalf("per-worker counts wrong: %v", s.PerWorkerChecked)
	}
	if s.BackpressureStalls != 1 || s.BackpressureStall != time.Millisecond {
		t.Fatalf("stall accounting wrong: %d %v", s.BackpressureStalls, s.BackpressureStall)
	}
	if len(s.RecentTraces) != 2 || s.RecentTraces[0].TraceID != 1 {
		t.Fatalf("recent ring wrong: %+v", s.RecentTraces)
	}
	if s.QueueWait.Count != 2 || s.CheckDur.Count != 2 {
		t.Fatalf("histogram counts wrong: %d %d", s.QueueWait.Count, s.CheckDur.Count)
	}
	if s.OpsPerSec <= 0 {
		t.Fatalf("ops/s = %v, want > 0", s.OpsPerSec)
	}
}

func TestMetricsQueueDepthFn(t *testing.T) {
	m := NewMetrics(1)
	m.SetQueueDepthFn(func() []int { return []int{3, 0} })
	s := m.Snapshot()
	if len(s.QueueDepths) != 2 || s.QueueDepths[0] != 3 {
		t.Fatalf("queue depths = %v, want [3 0]", s.QueueDepths)
	}
	// Nil receiver must be a no-op, both for the setter and Snapshot.
	var nilM *Metrics
	nilM.SetQueueDepthFn(func() []int { return nil })
	if s := nilM.Snapshot(); s.TracesChecked != 0 {
		t.Fatalf("nil Metrics snapshot not zero: %+v", s)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live observers must be nil")
	}
	a, b := NewMetrics(1), NewMetrics(1)
	if Multi(a, nil) != Observer(a) {
		t.Fatal("Multi of one observer must return it unwrapped")
	}
	fan := Multi(a, b)
	fan.TraceSubmitted(0, 0, 5)
	fan.TraceDequeued(0, 0, time.Microsecond)
	fan.TraceChecked(TraceEvent{Ops: 5})
	fan.(StallObserver).SubmitStalled(0, time.Microsecond)
	for _, m := range []*Metrics{a, b} {
		if m.TracesSubmitted.Load() != 1 || m.TracesChecked.Load() != 1 ||
			m.BackpressureStalls.Load() != 1 {
			t.Fatalf("fan-out missed an observer: %+v", m.Snapshot())
		}
	}
}

func TestSnapshotFormat(t *testing.T) {
	m := NewMetrics(4)
	m.TraceSubmitted(0, 0, 10)
	m.TraceChecked(TraceEvent{Ops: 10, Fails: 1, Codes: map[string]int{"not-persisted": 1},
		CheckDur: time.Microsecond})
	m.SectionsShipped.Add(1)
	m.OpsRecorded.Add(10)
	m.BytesEncoded.Add(123)
	m.SubmitStalled(0, time.Millisecond)
	m.SharingTracesFed.Add(2)
	m.CampaignSchedules.Add(3)
	m.FaultsInjected.Add(3)
	m.CrashStatesExplored.Add(40)
	m.CrashStatesPossible.Add(64)
	m.RecoveryFailures.Add(2)
	m.CampaignDeadlineHits.Add(1)
	out := m.Snapshot().Format()
	for _, want := range []string{
		"observability snapshot", "checked 1", "ops/s", "p50", "p99",
		"FAIL 1", "not-persisted", "encoded 123B", "backpressure", "sharing",
		"campaign 3 schedules", "explored 40 of 64 possible",
		"2 recovery failures", "1 deadline expiries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	// The empty snapshot must render without panicking.
	if out := (Snapshot{}).Format(); !strings.Contains(out, "diags    none") {
		t.Errorf("empty Format() = %q", out)
	}
}
