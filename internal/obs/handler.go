package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Handler serves the registry over HTTP for live introspection. The
// default response is Prometheus text exposition (scrapeable by any
// Prometheus-compatible collector); `?format=json` or an
// `Accept: application/json` header returns the full Snapshot as JSON,
// including the recent-trace ring.
func Handler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(m.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, m.Snapshot())
	})
}

func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// writeProm renders the snapshot in Prometheus text format. Durations
// are exported in seconds, per Prometheus convention.
func writeProm(w http.ResponseWriter, s Snapshot) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter("pmtest_traces_submitted_total", "Trace sections handed to the checking engine.", s.TracesSubmitted)
	counter("pmtest_traces_dequeued_total", "Trace sections picked up by checking workers.", s.TracesDequeued)
	counter("pmtest_traces_checked_total", "Trace sections fully checked.", s.TracesChecked)
	counter("pmtest_ops_submitted_total", "PM operations contained in submitted traces.", s.OpsSubmitted)
	counter("pmtest_ops_checked_total", "PM operations walked by the checker.", s.OpsChecked)
	counter("pmtest_sections_shipped_total", "SendTrace calls that shipped a section.", s.SectionsShipped)
	counter("pmtest_ops_recorded_total", "Operations recorded into shipped sections.", s.OpsRecorded)
	counter("pmtest_bytes_encoded_total", "Bytes serialized via Config.RecordTo.", s.BytesEncoded)
	counter("pmtest_encode_errors_total", "RecordTo encode failures.", s.EncodeErrors)
	counter("pmtest_backpressure_stalls_total", "Submit calls that blocked on a full worker queue.", s.BackpressureStalls)
	fmt.Fprintf(w, "# HELP pmtest_backpressure_stall_seconds_total Total time Submit spent blocked on full queues.\n")
	fmt.Fprintf(w, "# TYPE pmtest_backpressure_stall_seconds_total counter\n")
	fmt.Fprintf(w, "pmtest_backpressure_stall_seconds_total %g\n", s.BackpressureStall.Seconds())
	counter("pmtest_sharing_traces_fed_total", "Traces fed to the sharing analyzer.", s.SharingTracesFed)
	counter("pmtest_sharing_writes_tracked_total", "PM writes tracked by the sharing analyzer.", s.SharingWritesTracked)
	counter("pmtest_campaign_schedules_total", "Fault-injection schedules executed.", s.CampaignSchedules)
	counter("pmtest_faults_injected_total", "Faults injected into workload runs.", s.FaultsInjected)
	counter("pmtest_crash_states_explored_total", "Crash states materialized and validated.", s.CrashStatesExplored)
	counter("pmtest_crash_states_possible_total", "Crash states the explored dirty sets could produce (clamped per probe).", s.CrashStatesPossible)
	counter("pmtest_recovery_failures_total", "Crash states whose recovery failed (demonstrated bugs).", s.RecoveryFailures)
	counter("pmtest_campaign_deadline_hits_total", "Campaigns cut short by their deadline.", s.CampaignDeadlineHits)
	counter("pmtest_dist_sections_sent_total", "Sections acknowledged by remote checker nodes.", s.DistSectionsSent)
	counter("pmtest_dist_retries_total", "Distributed-checking RPC attempts beyond the first.", s.DistRetries)
	counter("pmtest_dist_failovers_total", "Checking sessions re-established on another node.", s.DistFailovers)
	counter("pmtest_dist_breaker_opens_total", "Per-node circuit breaker closed-to-open transitions.", s.DistBreakerOpens)
	counter("pmtest_dist_sections_dropped_total", "Sections dropped on client buffer overflow.", s.DistSectionsDropped)
	counter("pmtest_dist_fallbacks_total", "Sessions degraded to a local in-process engine.", s.DistFallbacks)
	counter("pmtest_dist_rpc_errors_total", "Failed distributed-checking RPC attempts.", s.DistRPCErrors)
	fmt.Fprintf(w, "# HELP pmtest_dist_buffered_bytes Encoded section bytes currently buffered unacknowledged.\n")
	fmt.Fprintf(w, "# TYPE pmtest_dist_buffered_bytes gauge\n")
	fmt.Fprintf(w, "pmtest_dist_buffered_bytes %d\n", s.DistBufferedBytes)

	if len(s.DiagsBySeverity) > 0 {
		fmt.Fprintf(w, "# HELP pmtest_diagnostics_total Diagnostics reported, by severity.\n# TYPE pmtest_diagnostics_total counter\n")
		for _, sev := range sortedKeys(s.DiagsBySeverity) {
			fmt.Fprintf(w, "pmtest_diagnostics_total{severity=%q} %d\n", sev, s.DiagsBySeverity[sev])
		}
	}
	if len(s.DiagsByCode) > 0 {
		fmt.Fprintf(w, "# HELP pmtest_diagnostics_code_total Diagnostics reported, by code.\n# TYPE pmtest_diagnostics_code_total counter\n")
		for _, code := range sortedKeys(s.DiagsByCode) {
			fmt.Fprintf(w, "pmtest_diagnostics_code_total{code=%q} %d\n", code, s.DiagsByCode[code])
		}
	}

	writePromHist(w, "pmtest_queue_wait_seconds", "Time from Submit to worker dequeue.", s.QueueWait)
	writePromHist(w, "pmtest_check_duration_seconds", "Time a worker spent checking one trace.", s.CheckDur)
	if s.DistRTT.Count > 0 {
		writePromHist(w, "pmtest_dist_rtt_seconds", "End-to-end remote check latency per section (submit to report ack).", s.DistRTT)
	}

	if len(s.PerWorkerChecked) > 0 {
		fmt.Fprintf(w, "# HELP pmtest_worker_traces_checked_total Traces checked, by worker.\n# TYPE pmtest_worker_traces_checked_total counter\n")
		for i, n := range s.PerWorkerChecked {
			fmt.Fprintf(w, "pmtest_worker_traces_checked_total{worker=\"%d\"} %d\n", i, n)
		}
	}
	if len(s.QueueDepths) > 0 {
		fmt.Fprintf(w, "# HELP pmtest_worker_queue_depth Traces currently queued, by worker.\n# TYPE pmtest_worker_queue_depth gauge\n")
		for i, d := range s.QueueDepths {
			fmt.Fprintf(w, "pmtest_worker_queue_depth{worker=\"%d\"} %d\n", i, d)
		}
	}
	fmt.Fprintf(w, "# HELP pmtest_uptime_seconds Time since the metrics registry was created.\n# TYPE pmtest_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pmtest_uptime_seconds %g\n", s.Uptime.Seconds())
}

func writePromHist(w http.ResponseWriter, name, help string, h HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, b := range h.Buckets {
		le := "+Inf"
		if b.Le != 0 {
			le = fmt.Sprintf("%g", b.Le.Seconds())
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count)
	}
	if n := len(h.Buckets); n == 0 || h.Buckets[n-1].Le != 0 {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	}
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum.Seconds(), name, h.Count)
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
