package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// SnapshotSchemaVersion identifies the /obs/v1/snapshot document layout.
// It is the durable contract between nodes and collectors: Merge and the
// collect package refuse documents carrying a different version rather
// than silently mis-summing renamed fields. Bump it on any change to the
// meaning or bucketing of an existing field; adding new optional fields
// is compatible and does not bump it.
const SnapshotSchemaVersion = 1

// NodeSnapshot is the self-describing observability document one node
// serves at /obs/v1/snapshot: schema stamp, node identity, full metrics
// snapshot (with complete histogram buckets, so merging is exact), the
// process's runtime health, and a flight-recorder span summary.
type NodeSnapshot struct {
	SchemaVersion int       `json:"schema_version"`
	Source        string    `json:"source"`
	Role          string    `json:"role,omitempty"`
	CapturedAt    time.Time `json:"captured_at"`
	GoVersion     string    `json:"go_version,omitempty"`

	Metrics Snapshot        `json:"metrics"`
	Runtime RuntimeSnapshot `json:"runtime"`
	Flight  *FlightSummary  `json:"flight,omitempty"`
}

// FlightSummary condenses a flight.Recorder's rings into mergeable
// per-category tallies; it lives here (not in internal/flight) so the
// snapshot schema has no dependency on the recorder implementation.
type FlightSummary struct {
	Categories []FlightCategorySummary `json:"categories,omitempty"`
}

// FlightCategorySummary tallies one span category's ring.
type FlightCategorySummary struct {
	Category string `json:"category"`
	// Spans is the number of spans resident in the ring (bounded by the
	// ring capacity, so it is a recency window, not a lifetime total).
	Spans int `json:"spans"`
	// Errs counts resident spans marked failed.
	Errs int `json:"errs"`
	// MaxDur is the longest resident span.
	MaxDur time.Duration `json:"max_dur_ns"`
	// Dur is the duration histogram over the resident spans (the fixed
	// Histogram buckets, merged bucket-exactly across nodes). An
	// all-zero value means the node predates the field — optional, so
	// it rides on schema version 1.
	Dur HistSnapshot `json:"dur,omitempty"`
}

// SourceStatus is the per-node provenance row of a merged snapshot: one
// entry per polled node, including the ones that failed, so a dashboard
// can always answer "which node is missing and why".
type SourceStatus struct {
	Source     string    `json:"source"`
	Role       string    `json:"role,omitempty"`
	Err        string    `json:"err,omitempty"`
	CapturedAt time.Time `json:"captured_at"`

	// Headline per-node figures, so the merged document alone can rank
	// nodes without refetching.
	Uptime        time.Duration `json:"uptime_ns,omitempty"`
	TracesChecked uint64        `json:"traces_checked,omitempty"`
	OpsPerSec     float64       `json:"ops_per_sec,omitempty"`
	Fails         uint64        `json:"fails,omitempty"`
	Goroutines    int           `json:"goroutines,omitempty"`
	HeapBytes     uint64        `json:"heap_bytes,omitempty"`
	QueuedTraces  int           `json:"queued_traces,omitempty"`
}

// MergedSnapshot is the fleet view: the same schema-stamped shape a
// single node serves, plus per-source provenance and a partial flag.
// Counters sum, histograms merge bucket-exactly, gauges aggregate as
// documented on Merge.
type MergedSnapshot struct {
	SchemaVersion int            `json:"schema_version"`
	Partial       bool           `json:"partial"`
	Sources       []SourceStatus `json:"sources"`

	Metrics Snapshot        `json:"metrics"`
	Runtime RuntimeSnapshot `json:"runtime"`
	Flight  *FlightSummary  `json:"flight,omitempty"`
}

// mergedRecentCap bounds the recent-trace ring of a merged snapshot.
const mergedRecentCap = 64

// --- Exact histogram merging ------------------------------------------------

// bucketIndex maps a serialized bucket bound back to its index in the
// fixed exponential layout. Le == 0 is the unbounded last bucket.
func bucketIndex(le time.Duration) (int, bool) {
	if le == 0 {
		return histBuckets - 1, true
	}
	for i := 0; i < histBuckets-1; i++ {
		if histBound(i) == le {
			return i, true
		}
	}
	return 0, false
}

// bucketCounts reconstructs the raw per-bucket counts from the snapshot's
// cumulative (and zero-compacted) bucket list. The compaction is
// lossless: skipped buckets held zero observations, and the cumulative
// counts pin every listed bucket exactly, so reconstruction is exact.
func (h HistSnapshot) bucketCounts() (*[histBuckets]uint64, error) {
	var counts [histBuckets]uint64
	var prevCum uint64
	prevIdx := -1
	for _, b := range h.Buckets {
		i, ok := bucketIndex(b.Le)
		if !ok {
			return nil, fmt.Errorf("obs: histogram bucket bound %v not in the fixed layout", b.Le)
		}
		if i <= prevIdx {
			return nil, fmt.Errorf("obs: histogram buckets out of order at bound %v", b.Le)
		}
		if b.Count < prevCum {
			return nil, fmt.Errorf("obs: histogram cumulative count decreases at bound %v", b.Le)
		}
		counts[i] = b.Count - prevCum
		prevCum = b.Count
		prevIdx = i
	}
	if prevCum != h.Count {
		return nil, fmt.Errorf("obs: histogram bucket sum %d != count %d", prevCum, h.Count)
	}
	return &counts, nil
}

// MergeHist merges histogram snapshots bucket-exactly: per-bucket counts
// add, sums add, and quantiles are recomputed from the merged buckets —
// the merge of N nodes is bit-identical to one histogram that observed
// every sample (commutative and associative, property-tested). It errors
// if any input's buckets do not fit the fixed layout (a node speaking a
// different schema).
func MergeHist(hs ...HistSnapshot) (HistSnapshot, error) {
	var counts [histBuckets]uint64
	var sum time.Duration
	for _, h := range hs {
		c, err := h.bucketCounts()
		if err != nil {
			return HistSnapshot{}, err
		}
		for i, v := range c {
			counts[i] += v
		}
		sum += h.Sum
	}
	return histFromCounts(&counts, sum), nil
}

// --- Snapshot merging -------------------------------------------------------

// mergeCodeMaps key-wise sums b into a (allocating a only when needed).
func mergeCodeMaps(a, b map[string]uint64) map[string]uint64 {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		a = make(map[string]uint64, len(b))
	}
	for k, v := range b {
		a[k] += v
	}
	return a
}

// mergeMetrics folds node metrics into the accumulator: counters and
// code maps sum, histograms merge exactly, uptime keeps the longest-
// running node, and throughput sums (fleet ops/sec). Per-worker and
// queue-depth detail stays per-node (see SourceStatus.QueuedTraces);
// recent traces interleave up to mergedRecentCap.
func mergeMetrics(acc *Snapshot, s Snapshot) error {
	qw, err := MergeHist(acc.QueueWait, s.QueueWait)
	if err != nil {
		return err
	}
	cd, err := MergeHist(acc.CheckDur, s.CheckDur)
	if err != nil {
		return err
	}
	rtt, err := MergeHist(acc.DistRTT, s.DistRTT)
	if err != nil {
		return err
	}
	acc.QueueWait, acc.CheckDur, acc.DistRTT = qw, cd, rtt

	if s.Uptime > acc.Uptime {
		acc.Uptime = s.Uptime
	}
	acc.TracesSubmitted += s.TracesSubmitted
	acc.TracesDequeued += s.TracesDequeued
	acc.TracesChecked += s.TracesChecked
	acc.OpsSubmitted += s.OpsSubmitted
	acc.OpsChecked += s.OpsChecked
	acc.OpsPerSec += s.OpsPerSec
	acc.BackpressureStalls += s.BackpressureStalls
	acc.BackpressureStall += s.BackpressureStall
	acc.SectionsShipped += s.SectionsShipped
	acc.OpsRecorded += s.OpsRecorded
	acc.BytesEncoded += s.BytesEncoded
	acc.EncodeErrors += s.EncodeErrors
	acc.SharingTracesFed += s.SharingTracesFed
	acc.SharingWritesTracked += s.SharingWritesTracked
	acc.CampaignSchedules += s.CampaignSchedules
	acc.FaultsInjected += s.FaultsInjected
	acc.CrashStatesExplored += s.CrashStatesExplored
	acc.CrashStatesPossible += s.CrashStatesPossible
	acc.RecoveryFailures += s.RecoveryFailures
	acc.CampaignDeadlineHits += s.CampaignDeadlineHits
	acc.DistSectionsSent += s.DistSectionsSent
	acc.DistRetries += s.DistRetries
	acc.DistFailovers += s.DistFailovers
	acc.DistBreakerOpens += s.DistBreakerOpens
	acc.DistSectionsDropped += s.DistSectionsDropped
	acc.DistFallbacks += s.DistFallbacks
	acc.DistRPCErrors += s.DistRPCErrors
	acc.DistBufferedBytes += s.DistBufferedBytes
	if s.DistBufferedPeak > acc.DistBufferedPeak {
		acc.DistBufferedPeak = s.DistBufferedPeak
	}
	acc.DiagsBySeverity = mergeCodeMaps(acc.DiagsBySeverity, s.DiagsBySeverity)
	acc.DiagsByCode = mergeCodeMaps(acc.DiagsByCode, s.DiagsByCode)

	acc.Resources.StatePoolGets += s.Resources.StatePoolGets
	acc.Resources.StatePoolMisses += s.Resources.StatePoolMisses
	acc.Resources.ShadowIntervalsLive += s.Resources.ShadowIntervalsLive
	if s.Resources.ShadowIntervalsMax > acc.Resources.ShadowIntervalsMax {
		acc.Resources.ShadowIntervalsMax = s.Resources.ShadowIntervalsMax
	}
	acc.Resources.GCRetiredIntervals += s.Resources.GCRetiredIntervals
	if g := acc.Resources.StatePoolGets; g > 0 {
		acc.Resources.StatePoolHitRate = float64(g-acc.Resources.StatePoolMisses) / float64(g)
	}

	if n := mergedRecentCap - len(acc.RecentTraces); n > 0 {
		if len(s.RecentTraces) < n {
			n = len(s.RecentTraces)
		}
		acc.RecentTraces = append(acc.RecentTraces, s.RecentTraces[:n]...)
	}
	return nil
}

// mergeFlight folds per-category span tallies by category name.
// Counts sum, MaxDur keeps the fleet maximum, and the duration
// histograms merge bucket-exactly — so the fleet's per-category span
// p99 is computed over the union of resident spans, not averaged per
// node. Errors only on a histogram outside the fixed bucket layout.
func mergeFlight(acc *FlightSummary, f *FlightSummary) (*FlightSummary, error) {
	if f == nil {
		return acc, nil
	}
	if acc == nil {
		acc = &FlightSummary{}
	}
	for _, c := range f.Categories {
		found := false
		for i := range acc.Categories {
			if acc.Categories[i].Category == c.Category {
				dur, err := MergeHist(acc.Categories[i].Dur, c.Dur)
				if err != nil {
					return acc, fmt.Errorf("flight category %q: %w", c.Category, err)
				}
				acc.Categories[i].Spans += c.Spans
				acc.Categories[i].Errs += c.Errs
				if c.MaxDur > acc.Categories[i].MaxDur {
					acc.Categories[i].MaxDur = c.MaxDur
				}
				acc.Categories[i].Dur = dur
				found = true
				break
			}
		}
		if !found {
			if _, err := c.Dur.bucketCounts(); err != nil {
				return acc, fmt.Errorf("flight category %q: %w", c.Category, err)
			}
			acc.Categories = append(acc.Categories, c)
		}
	}
	return acc, nil
}

// sourceStatus builds the provenance row for one successfully fetched
// node snapshot.
func sourceStatus(n NodeSnapshot) SourceStatus {
	st := SourceStatus{
		Source:        n.Source,
		Role:          n.Role,
		CapturedAt:    n.CapturedAt,
		Uptime:        n.Metrics.Uptime,
		TracesChecked: n.Metrics.TracesChecked,
		OpsPerSec:     n.Metrics.OpsPerSec,
		Fails:         n.Metrics.DiagsBySeverity["FAIL"],
		Goroutines:    n.Runtime.Goroutines,
		HeapBytes:     n.Runtime.HeapBytes,
	}
	for _, d := range n.Metrics.QueueDepths {
		st.QueuedTraces += d
	}
	return st
}

// Merge combines node snapshots into one fleet document with per-source
// provenance. Counters sum; histograms (check latency, queue wait, GC
// pauses) merge bucket-exactly, so fleet quantiles are computed over the
// union of samples, not averaged per node. It errors on a schema-version
// mismatch or a histogram that does not fit the fixed bucket layout —
// callers handling per-node degradation (the collect package) convert
// that into a per-source error instead of aborting the merge.
func Merge(snaps ...NodeSnapshot) (MergedSnapshot, error) {
	out := MergedSnapshot{SchemaVersion: SnapshotSchemaVersion}
	for i, n := range snaps {
		if n.SchemaVersion != SnapshotSchemaVersion {
			return MergedSnapshot{}, fmt.Errorf("obs: snapshot %q has schema_version %d, this merge speaks %d",
				n.Source, n.SchemaVersion, SnapshotSchemaVersion)
		}
		if err := mergeMetrics(&out.Metrics, n.Metrics); err != nil {
			return MergedSnapshot{}, fmt.Errorf("obs: snapshot %q: %w", n.Source, err)
		}
		if err := mergeRuntime(&out.Runtime, n.Runtime); err != nil {
			return MergedSnapshot{}, fmt.Errorf("obs: snapshot %q: %w", n.Source, err)
		}
		fl, err := mergeFlight(out.Flight, n.Flight)
		if err != nil {
			return MergedSnapshot{}, fmt.Errorf("obs: snapshot %q: %w", n.Source, err)
		}
		out.Flight = fl
		out.Sources = append(out.Sources, sourceStatus(snaps[i]))
	}
	return out, nil
}

// --- Node-side capture and serving -----------------------------------------

// SnapshotSource assembles the NodeSnapshot one node serves: its
// identity, its metrics registry, and optional providers for flight
// summaries. The zero value is usable (an all-zero snapshot).
type SnapshotSource struct {
	// Source is the node's self-reported identity (host:port or a
	// label); collectors fall back to the polled address when empty.
	Source string
	// Role labels what kind of process this node is ("pmtestd",
	// "workload", ...); fleet views use it to group nodes.
	Role    string
	Metrics *Metrics
	// StatsFn overrides Metrics.Snapshot when set — the session wires
	// (*pmtest.Session).Stats here so the document includes live queue
	// depths and deferred errors even when they bypass the registry.
	StatsFn func() Snapshot
	// FlightFn supplies the span summary (flight.Summarize(rec)).
	FlightFn func() *FlightSummary
}

// Capture assembles the node's current snapshot document.
func (s *SnapshotSource) Capture() NodeSnapshot {
	n := NodeSnapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Source:        s.Source,
		Role:          s.Role,
		CapturedAt:    time.Now().UTC(),
		GoVersion:     runtime.Version(),
		Runtime:       CaptureRuntime(),
	}
	switch {
	case s.StatsFn != nil:
		n.Metrics = s.StatsFn()
	case s.Metrics != nil:
		n.Metrics = s.Metrics.Snapshot()
	}
	if s.FlightFn != nil {
		n.Flight = s.FlightFn()
	}
	return n
}

// SnapshotHandler serves the versioned snapshot document as JSON — mount
// it at /obs/v1/snapshot beside the Prometheus Handler.
func SnapshotHandler(src *SnapshotSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(src.Capture())
	})
}
