package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testMetrics() *Metrics {
	m := NewMetrics(8)
	m.TraceSubmitted(0, 0, 12)
	m.TraceDequeued(0, 0, time.Microsecond)
	m.TraceChecked(TraceEvent{
		TraceID: 0, Worker: 0, Ops: 12, TrackedOps: 10,
		Fails: 1, Warns: 1,
		Codes:     map[string]int{"not-persisted": 1, "duplicate-writeback": 1},
		QueueWait: time.Microsecond, CheckDur: 3 * time.Microsecond,
	})
	m.SubmitStalled(0, time.Millisecond)
	m.SectionsShipped.Add(1)
	m.BytesEncoded.Add(99)
	m.SetQueueDepthFn(func() []int { return []int{2} })
	return m
}

func TestHandlerPrometheus(t *testing.T) {
	h := Handler(testMetrics())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"pmtest_traces_submitted_total 1",
		"pmtest_traces_checked_total 1",
		"pmtest_ops_checked_total 12",
		`pmtest_diagnostics_total{severity="FAIL"} 1`,
		`pmtest_diagnostics_code_total{code="not-persisted"} 1`,
		"pmtest_check_duration_seconds_bucket",
		`pmtest_check_duration_seconds_bucket{le="+Inf"} 1`,
		"pmtest_check_duration_seconds_count 1",
		"pmtest_queue_wait_seconds_sum",
		`pmtest_worker_traces_checked_total{worker="0"} 1`,
		`pmtest_worker_queue_depth{worker="0"} 2`,
		"pmtest_backpressure_stalls_total 1",
		"pmtest_backpressure_stall_seconds_total 0.001",
		"pmtest_bytes_encoded_total 99",
		"pmtest_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Every HELP line must pair with a TYPE line for the same metric.
	if strings.Count(body, "# HELP") != strings.Count(body, "# TYPE") {
		t.Error("unbalanced HELP/TYPE lines")
	}
}

func TestHandlerJSON(t *testing.T) {
	h := Handler(testMetrics())
	do := func(target, accept string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		r := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		h.ServeHTTP(rec, r)
		return rec
	}
	for _, req := range []*httptest.ResponseRecorder{
		do("/metrics?format=json", ""),
		do("/metrics", "application/json"),
	} {
		if ct := req.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q, want application/json", ct)
		}
		var s Snapshot
		if err := json.Unmarshal(req.Body.Bytes(), &s); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if s.TracesChecked != 1 || s.OpsChecked != 12 {
			t.Fatalf("JSON snapshot wrong: %+v", s)
		}
		if len(s.RecentTraces) != 1 || s.RecentTraces[0].Codes["not-persisted"] != 1 {
			t.Fatalf("recent traces not serialized: %+v", s.RecentTraces)
		}
		if s.QueueDepths[0] != 2 {
			t.Fatalf("queue depths not serialized: %+v", s.QueueDepths)
		}
	}
}

// TestHandlerContentNegotiation pins the negotiation edges: JSON is
// selected by ?format=json OR by any Accept header mentioning
// application/json (including multi-type lists with q-values);
// everything else gets Prometheus text.
func TestHandlerContentNegotiation(t *testing.T) {
	h := Handler(testMetrics())
	do := func(target, accept string) string {
		rec := httptest.NewRecorder()
		r := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		h.ServeHTTP(rec, r)
		return rec.Header().Get("Content-Type")
	}
	cases := []struct {
		target, accept string
		wantJSON       bool
	}{
		{"/metrics", "", false},
		{"/metrics", "*/*", false},
		{"/metrics", "text/plain", false},
		{"/metrics", "application/xml", false},
		{"/metrics", "application/json", true},
		// A browser-style list still negotiates JSON when it appears.
		{"/metrics", "text/html,application/json;q=0.9,*/*;q=0.8", true},
		// The query parameter wins regardless of Accept.
		{"/metrics?format=json", "text/plain", true},
		// Other format values fall back to text.
		{"/metrics?format=prometheus", "", false},
	}
	for _, c := range cases {
		ct := do(c.target, c.accept)
		gotJSON := ct == "application/json"
		if gotJSON != c.wantJSON {
			t.Errorf("GET %s Accept=%q: content type %q, want JSON=%v",
				c.target, c.accept, ct, c.wantJSON)
		}
	}
}
