// Package obs is the observability layer of the PMTest reproduction:
// lock-cheap counters and latency histograms for the checking engine,
// a pluggable Observer interface for per-trace lifecycle events, and a
// bounded ring of recent trace events for live introspection.
//
// The paper's headline claim is speed (Fig. 8/10): checking-engine
// throughput, worker scaling and tracking overhead. This package makes
// those quantities visible on a live run — every hook is nil-safe and
// costs nothing when no observer is installed, so the instrumented hot
// path stays as fast as the uninstrumented one.
//
// The package depends only on the trace data types (for the span ranges
// a section carries), never on the engine; the engine reports events in
// plain ints, strings and durations.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmtest/internal/trace"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic signed level — a quantity that rises and falls,
// like the bytes currently buffered by a distributed checking session.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is higher — a high-water mark.
func (g *Gauge) SetMax(v int64) {
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// --- Latency histogram -----------------------------------------------------

// histBuckets is the number of fixed exponential buckets. Bucket i
// counts observations with d < histBound(i); the last bucket is
// unbounded. Bounds run 256ns, 512ns, ... ~8.6s — wide enough for a
// single-op check through a multi-second stall.
const histBuckets = 26

// histBound returns the exclusive upper bound of bucket i in
// nanoseconds (the last bucket has no bound).
func histBound(i int) time.Duration { return time.Duration(256 << uint(i)) }

// Histogram is a fixed-bucket latency histogram with atomic buckets:
// Observe is one atomic add per bucket plus two for count/sum, no
// locks, no allocation.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < histBuckets-1 && d >= histBound(i) {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistSnapshot is a point-in-time view of a Histogram.
type HistSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	// Buckets holds the cumulative count of observations below each
	// bound, Prometheus-style ("le").
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one cumulative histogram bucket.
type HistBucket struct {
	Le    time.Duration `json:"le_ns"` // upper bound; 0 means +Inf
	Count uint64        `json:"count"` // observations <= Le
}

// Snapshot captures the histogram, computing quantiles by linear
// interpolation inside the owning bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	return histFromCounts(&counts, time.Duration(h.sum.Load()))
}

// histFromCounts builds the snapshot representation from raw per-bucket
// counts — shared by live Histogram capture and by MergeHist, so a
// merged histogram is indistinguishable from one observed on a single
// node.
func histFromCounts(counts *[histBuckets]uint64, sum time.Duration) HistSnapshot {
	var total uint64
	for _, c := range counts {
		total += c
	}
	s := HistSnapshot{Count: total, Sum: sum}
	if total == 0 {
		return s
	}
	s.Mean = s.Sum / time.Duration(total)
	s.P50 = quantile(counts, total, 0.50)
	s.P90 = quantile(counts, total, 0.90)
	s.P99 = quantile(counts, total, 0.99)
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if c == 0 && i != histBuckets-1 {
			continue // keep the snapshot compact; cumulative count is preserved
		}
		le := histBound(i)
		if i == histBuckets-1 {
			le = 0 // +Inf
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: cum})
	}
	return s
}

// quantile interpolates the q-th quantile from bucket counts.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) time.Duration {
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = histBound(i - 1)
		}
		hi := histBound(i)
		if i == histBuckets-1 {
			hi = 2 * lo // open-ended: assume one more doubling
		}
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += float64(c)
	}
	return histBound(histBuckets - 1)
}

// --- Observer --------------------------------------------------------------

// TraceEvent describes the full checked lifecycle of one trace section.
// The engine emits one per trace via Observer.TraceChecked; Metrics
// keeps the most recent ones in a ring for live introspection.
type TraceEvent struct {
	TraceID int `json:"trace_id"`
	Thread  int `json:"thread"`
	Worker  int `json:"worker"`
	// Ops is the number of operations in the trace; TrackedOps excludes
	// checker annotations.
	Ops        int `json:"ops"`
	TrackedOps int `json:"tracked_ops"`
	// Diagnostic counts by severity and by code.
	Fails int            `json:"fails"`
	Warns int            `json:"warns"`
	Infos int            `json:"infos"`
	Codes map[string]int `json:"codes,omitempty"`
	// QueueWait is the time between Submit and a worker dequeuing the
	// trace; CheckDur is the time spent checking it.
	QueueWait time.Duration `json:"queue_wait_ns"`
	CheckDur  time.Duration `json:"check_dur_ns"`
	// SpanID and TxSpans carry the section's flight-recorder identity
	// through the engine (zero/nil when no recorder is attached): SpanID
	// is the section span, TxSpans the transaction spans with the op
	// ranges they cover, so a span-building observer can parent checker
	// findings under the transaction that contains the guilty op.
	SpanID  uint64            `json:"span_id,omitempty"`
	TxSpans []trace.SpanRange `json:"tx_spans,omitempty"`
	// RemoteSession/RemoteSpan carry the originating client's correlation
	// identity when this trace arrived over the distributed checking
	// tier: the client's session ID and the client-side section span ID
	// propagated in the section request headers. Zero when the trace was
	// recorded in-process. Span-building observers tag node-side spans
	// with them, which is what lets a coordinator stitch client and node
	// timelines together.
	RemoteSession string `json:"remote_session,omitempty"`
	RemoteSpan    uint64 `json:"remote_span,omitempty"`
	// Diags details each diagnostic of a non-clean trace (nil for clean
	// traces, keeping the common path allocation-free).
	Diags []DiagInfo `json:"diags,omitempty"`
	// StripeDurs is the per-stripe checking time when the trace went
	// through the sharded checker with timing enabled (nil otherwise).
	StripeDurs []time.Duration `json:"stripe_durs_ns,omitempty"`
}

// DiagInfo is the observer-facing view of one engine diagnostic: enough
// to annotate a span or a log line without importing the engine package.
type DiagInfo struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	// OpIndex is the index of the op the finding is anchored at.
	OpIndex int    `json:"op_index"`
	Message string `json:"message"`
	Site    string `json:"site,omitempty"`
}

// Observer receives per-trace lifecycle events from the checking
// engine. Implementations must be safe for concurrent use: Submitted
// fires on the program thread, Dequeued/Checked on worker goroutines.
type Observer interface {
	// TraceSubmitted fires when the program hands a trace to the engine.
	TraceSubmitted(traceID, thread, ops int)
	// TraceDequeued fires when a worker picks the trace off its queue.
	TraceDequeued(traceID, worker int, queueWait time.Duration)
	// TraceChecked fires when checking of the trace completes.
	TraceChecked(ev TraceEvent)
}

// StallObserver is an optional extension of Observer for engine
// backpressure: SubmitStalled fires when Submit blocked on a full
// worker queue for the given duration.
type StallObserver interface {
	SubmitStalled(worker int, d time.Duration)
}

// Multi fans events out to several observers. Nil entries are skipped;
// Multi returns nil when none remain, so the engine's "no observer"
// fast path still applies.
func Multi(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) TraceSubmitted(id, thread, ops int) {
	for _, o := range m {
		o.TraceSubmitted(id, thread, ops)
	}
}

func (m multi) TraceDequeued(id, worker int, wait time.Duration) {
	for _, o := range m {
		o.TraceDequeued(id, worker, wait)
	}
}

func (m multi) TraceChecked(ev TraceEvent) {
	for _, o := range m {
		o.TraceChecked(ev)
	}
}

func (m multi) SubmitStalled(worker int, d time.Duration) {
	for _, o := range m {
		if so, ok := o.(StallObserver); ok {
			so.SubmitStalled(worker, d)
		}
	}
}

// --- Metrics registry ------------------------------------------------------

// Metrics is the standard Observer: an atomic-counter registry with
// latency histograms and a ring of recent trace events. One Metrics
// instance serves one session (or one engine) and can be shared with
// an HTTP Handler for live scraping.
type Metrics struct {
	start time.Time

	// Engine lifecycle.
	TracesSubmitted Counter
	TracesDequeued  Counter
	TracesChecked   Counter
	OpsSubmitted    Counter // ops contained in submitted traces
	OpsChecked      Counter // ops walked by the checker (or tracker)

	// Diagnostics by severity.
	DiagsFail Counter
	DiagsWarn Counter
	DiagsInfo Counter

	// Engine latencies and backpressure.
	QueueWait              Histogram
	CheckDur               Histogram
	BackpressureStalls     Counter
	BackpressureStallNanos Counter

	// Session-side tracking (filled by pmtest.Session).
	SectionsShipped Counter // SendTrace calls that shipped a section
	OpsRecorded     Counter // ops recorded into shipped sections
	BytesEncoded    Counter // bytes serialized via Config.RecordTo
	EncodeErrors    Counter // RecordTo encode failures

	// Sharing-analyzer activity.
	SharingTracesFed     Counter
	SharingWritesTracked Counter

	// Fault-injection campaign activity (filled by internal/faultinject).
	// CrashStatesExplored counts the crash states actually materialized
	// and validated; CrashStatesPossible counts the states each probe's
	// dirty set could have produced (clamped per probe so a huge 2^d does
	// not saturate the counter) — together they give the campaign's
	// explicit "explored N of M states" accounting.
	CampaignSchedules    Counter
	FaultsInjected       Counter
	CrashStatesExplored  Counter
	CrashStatesPossible  Counter
	RecoveryFailures     Counter
	CampaignDeadlineHits Counter

	// Distributed checking tier (filled by internal/dist). Every
	// degradation the client tier performs is counted here so "the tier
	// silently dropped work" is impossible by construction: retries,
	// failovers, breaker trips, overflow drops and local-engine
	// fallbacks each have their own counter, and the live buffer level
	// is a gauge with a high-water mark.
	DistSectionsSent    Counter // sections acknowledged (report received)
	DistRetries         Counter // RPC attempts beyond the first
	DistFailovers       Counter // sessions re-established on another node
	DistBreakerOpens    Counter // circuit-breaker closed→open transitions
	DistSectionsDropped Counter // sections dropped on buffer overflow
	DistFallbacks       Counter // sessions degraded to a local engine
	DistRPCErrors       Counter // failed RPC attempts (any cause)
	DistBufferedBytes   Gauge   // encoded bytes currently buffered unacked
	DistBufferedPeak    Gauge   // high-water mark of DistBufferedBytes
	// DistRTT observes end-to-end check latency per section: from
	// Submit on the program side to the report-carrying ack.
	DistRTT Histogram

	mu            sync.Mutex
	codes         map[string]uint64
	perWorker     []uint64
	recent        *Ring[TraceEvent]
	queueDepthFn  func() []int
	resourceFn    func() Resources
	stripeDepthFn func() []int64
}

// Resources is per-process resource accounting for the checking tier:
// how well the core.State pool is recycling shadow memory, and how many
// live shadow-memory intervals the checker is carrying. The session
// wires the callback to the engine's gauges via SetResourceFn.
type Resources struct {
	// StatePoolGets / StatePoolMisses count checking-state pool
	// traffic; a miss allocates a fresh State (four interval trees).
	StatePoolGets   uint64 `json:"state_pool_gets"`
	StatePoolMisses uint64 `json:"state_pool_misses"`
	// StatePoolHitRate is gets-that-hit / gets (0 when no traffic).
	StatePoolHitRate float64 `json:"state_pool_hit_rate"`
	// ShadowIntervalsLive is the interval count of the most recently
	// checked trace's shadow memory; ShadowIntervalsMax is the high
	// water mark — the "is this session's shadow memory growing?" gauge.
	ShadowIntervalsLive uint64 `json:"shadow_intervals_live"`
	ShadowIntervalsMax  uint64 `json:"shadow_intervals_max"`
	// GCRetiredIntervals counts shadow-memory segments retired by the
	// sharded checker's epoch GC (0 unless Config.EpochGC is on).
	GCRetiredIntervals uint64 `json:"gc_retired_intervals"`
}

// NewMetrics returns an empty registry keeping the last recentN trace
// events (default 64 if recentN <= 0).
func NewMetrics(recentN int) *Metrics {
	if recentN <= 0 {
		recentN = 64
	}
	return &Metrics{
		start:  time.Now(),
		codes:  make(map[string]uint64),
		recent: NewRing[TraceEvent](recentN),
	}
}

// SetQueueDepthFn installs a callback reporting the engine's live
// per-worker queue depths; the session wires it to the engine.
func (m *Metrics) SetQueueDepthFn(fn func() []int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.queueDepthFn = fn
	m.mu.Unlock()
}

// SetStripeDepthFn installs a callback reporting the engine's live
// per-address-stripe op depths (sharded checking only).
func (m *Metrics) SetStripeDepthFn(fn func() []int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stripeDepthFn = fn
	m.mu.Unlock()
}

// SetResourceFn installs a callback reporting checking-tier resource
// accounting (state-pool hit rates, live shadow-memory intervals); the
// session wires it to the engine.
func (m *Metrics) SetResourceFn(fn func() Resources) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.resourceFn = fn
	m.mu.Unlock()
}

// TraceSubmitted implements Observer.
func (m *Metrics) TraceSubmitted(id, thread, ops int) {
	m.TracesSubmitted.Add(1)
	m.OpsSubmitted.Add(uint64(ops))
}

// TraceDequeued implements Observer.
func (m *Metrics) TraceDequeued(id, worker int, wait time.Duration) {
	m.TracesDequeued.Add(1)
	m.QueueWait.Observe(wait)
}

// TraceChecked implements Observer.
func (m *Metrics) TraceChecked(ev TraceEvent) {
	m.TracesChecked.Add(1)
	m.OpsChecked.Add(uint64(ev.Ops))
	m.DiagsFail.Add(uint64(ev.Fails))
	m.DiagsWarn.Add(uint64(ev.Warns))
	m.DiagsInfo.Add(uint64(ev.Infos))
	m.CheckDur.Observe(ev.CheckDur)
	m.mu.Lock()
	for code, n := range ev.Codes {
		m.codes[code] += uint64(n)
	}
	for len(m.perWorker) <= ev.Worker {
		m.perWorker = append(m.perWorker, 0)
	}
	m.perWorker[ev.Worker]++
	m.mu.Unlock()
	m.recent.Add(ev)
}

// SubmitStalled implements StallObserver.
func (m *Metrics) SubmitStalled(worker int, d time.Duration) {
	m.BackpressureStalls.Add(1)
	m.BackpressureStallNanos.Add(uint64(d))
}

// --- Snapshot --------------------------------------------------------------

// Snapshot is a point-in-time view of every metric, the type returned
// by (*pmtest.Session).Stats and serialized by the HTTP handler.
type Snapshot struct {
	Uptime time.Duration `json:"uptime_ns"`

	TracesSubmitted uint64 `json:"traces_submitted"`
	TracesDequeued  uint64 `json:"traces_dequeued"`
	TracesChecked   uint64 `json:"traces_checked"`
	OpsSubmitted    uint64 `json:"ops_submitted"`
	OpsChecked      uint64 `json:"ops_checked"`
	// OpsPerSec is checked-operation throughput since the registry was
	// created — the y-axis of the paper's Fig. 8-style plots.
	OpsPerSec float64 `json:"ops_per_sec"`

	DiagsBySeverity map[string]uint64 `json:"diags_by_severity,omitempty"`
	DiagsByCode     map[string]uint64 `json:"diags_by_code,omitempty"`

	QueueWait          HistSnapshot  `json:"queue_wait"`
	CheckDur           HistSnapshot  `json:"check_dur"`
	BackpressureStalls uint64        `json:"backpressure_stalls"`
	BackpressureStall  time.Duration `json:"backpressure_stall_ns"`

	SectionsShipped uint64 `json:"sections_shipped"`
	OpsRecorded     uint64 `json:"ops_recorded"`
	BytesEncoded    uint64 `json:"bytes_encoded"`
	EncodeErrors    uint64 `json:"encode_errors"`

	SharingTracesFed     uint64 `json:"sharing_traces_fed"`
	SharingWritesTracked uint64 `json:"sharing_writes_tracked"`

	CampaignSchedules    uint64 `json:"campaign_schedules,omitempty"`
	FaultsInjected       uint64 `json:"faults_injected,omitempty"`
	CrashStatesExplored  uint64 `json:"crash_states_explored,omitempty"`
	CrashStatesPossible  uint64 `json:"crash_states_possible,omitempty"`
	RecoveryFailures     uint64 `json:"recovery_failures,omitempty"`
	CampaignDeadlineHits uint64 `json:"campaign_deadline_hits,omitempty"`

	DistSectionsSent    uint64       `json:"dist_sections_sent,omitempty"`
	DistRetries         uint64       `json:"dist_retries,omitempty"`
	DistFailovers       uint64       `json:"dist_failovers,omitempty"`
	DistBreakerOpens    uint64       `json:"dist_breaker_opens,omitempty"`
	DistSectionsDropped uint64       `json:"dist_sections_dropped,omitempty"`
	DistFallbacks       uint64       `json:"dist_fallbacks,omitempty"`
	DistRPCErrors       uint64       `json:"dist_rpc_errors,omitempty"`
	DistBufferedBytes   int64        `json:"dist_buffered_bytes,omitempty"`
	DistBufferedPeak    int64        `json:"dist_buffered_peak,omitempty"`
	DistRTT             HistSnapshot `json:"dist_rtt"`

	PerWorkerChecked []uint64 `json:"per_worker_checked,omitempty"`
	QueueDepths      []int    `json:"queue_depths,omitempty"`
	// StripeDepths is the live per-address-stripe op assignment of the
	// sharded checker (empty when checking serially).
	StripeDepths []int64 `json:"stripe_depths,omitempty"`

	// Resources carries state-pool and shadow-memory accounting (zero
	// unless SetResourceFn was wired, as (*pmtest.Session).Stats does).
	Resources Resources `json:"resources"`

	RecentTraces []TraceEvent `json:"recent_traces,omitempty"`

	// Err is the session's stored deferred error, if any (e.g. a
	// RecordTo encode failure).
	Err string `json:"err,omitempty"`
}

// Snapshot captures all metrics. Safe to call concurrently with
// observation; counters are read individually, so the view is only
// approximately consistent — fine for monitoring.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Uptime:               time.Since(m.start),
		TracesSubmitted:      m.TracesSubmitted.Load(),
		TracesDequeued:       m.TracesDequeued.Load(),
		TracesChecked:        m.TracesChecked.Load(),
		OpsSubmitted:         m.OpsSubmitted.Load(),
		OpsChecked:           m.OpsChecked.Load(),
		QueueWait:            m.QueueWait.Snapshot(),
		CheckDur:             m.CheckDur.Snapshot(),
		BackpressureStalls:   m.BackpressureStalls.Load(),
		BackpressureStall:    time.Duration(m.BackpressureStallNanos.Load()),
		SectionsShipped:      m.SectionsShipped.Load(),
		OpsRecorded:          m.OpsRecorded.Load(),
		BytesEncoded:         m.BytesEncoded.Load(),
		EncodeErrors:         m.EncodeErrors.Load(),
		SharingTracesFed:     m.SharingTracesFed.Load(),
		SharingWritesTracked: m.SharingWritesTracked.Load(),
		CampaignSchedules:    m.CampaignSchedules.Load(),
		FaultsInjected:       m.FaultsInjected.Load(),
		CrashStatesExplored:  m.CrashStatesExplored.Load(),
		CrashStatesPossible:  m.CrashStatesPossible.Load(),
		RecoveryFailures:     m.RecoveryFailures.Load(),
		CampaignDeadlineHits: m.CampaignDeadlineHits.Load(),
		DistSectionsSent:     m.DistSectionsSent.Load(),
		DistRetries:          m.DistRetries.Load(),
		DistFailovers:        m.DistFailovers.Load(),
		DistBreakerOpens:     m.DistBreakerOpens.Load(),
		DistSectionsDropped:  m.DistSectionsDropped.Load(),
		DistFallbacks:        m.DistFallbacks.Load(),
		DistRPCErrors:        m.DistRPCErrors.Load(),
		DistBufferedBytes:    m.DistBufferedBytes.Load(),
		DistBufferedPeak:     m.DistBufferedPeak.Load(),
		DistRTT:              m.DistRTT.Snapshot(),
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.OpsPerSec = float64(s.OpsChecked) / secs
	}
	s.DiagsBySeverity = map[string]uint64{}
	if v := m.DiagsFail.Load(); v > 0 {
		s.DiagsBySeverity["FAIL"] = v
	}
	if v := m.DiagsWarn.Load(); v > 0 {
		s.DiagsBySeverity["WARN"] = v
	}
	if v := m.DiagsInfo.Load(); v > 0 {
		s.DiagsBySeverity["INFO"] = v
	}
	m.mu.Lock()
	if len(m.codes) > 0 {
		s.DiagsByCode = make(map[string]uint64, len(m.codes))
		for k, v := range m.codes {
			s.DiagsByCode[k] = v
		}
	}
	s.PerWorkerChecked = append([]uint64(nil), m.perWorker...)
	fn := m.queueDepthFn
	rfn := m.resourceFn
	sfn := m.stripeDepthFn
	m.mu.Unlock()
	if fn != nil {
		s.QueueDepths = fn()
	}
	if sfn != nil {
		s.StripeDepths = sfn()
	}
	if rfn != nil {
		s.Resources = rfn()
	}
	s.RecentTraces = m.recent.Snapshot()
	return s
}

// Format renders the snapshot as the human-readable report printed by
// the -stats flag of cmd/repro and cmd/pmtrace: throughput, latency
// quantiles and the diagnostic histogram.
func (s Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== observability snapshot (uptime %v) ==\n", s.Uptime.Round(time.Millisecond))
	fmt.Fprintf(&b, "traces   submitted %d, checked %d", s.TracesSubmitted, s.TracesChecked)
	if s.SectionsShipped > 0 {
		fmt.Fprintf(&b, " (sections shipped %d)", s.SectionsShipped)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "ops      checked %d (%.0f ops/s)", s.OpsChecked, s.OpsPerSec)
	if s.OpsRecorded > 0 {
		fmt.Fprintf(&b, ", recorded %d", s.OpsRecorded)
	}
	if s.BytesEncoded > 0 {
		fmt.Fprintf(&b, ", encoded %dB", s.BytesEncoded)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "latency  check p50 %v / p99 %v (mean %v), queue wait p50 %v / p99 %v\n",
		s.CheckDur.P50, s.CheckDur.P99, s.CheckDur.Mean, s.QueueWait.P50, s.QueueWait.P99)
	if s.BackpressureStalls > 0 {
		fmt.Fprintf(&b, "backpressure %d stalls, %v total\n", s.BackpressureStalls, s.BackpressureStall)
	}
	if len(s.PerWorkerChecked) > 0 {
		fmt.Fprintf(&b, "workers  ")
		for i, n := range s.PerWorkerChecked {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "w%d=%d", i, n)
			if i < len(s.QueueDepths) {
				fmt.Fprintf(&b, " (queued %d)", s.QueueDepths[i])
			}
		}
		b.WriteByte('\n')
	}
	total := uint64(0)
	for _, v := range s.DiagsBySeverity {
		total += v
	}
	if total == 0 {
		fmt.Fprintf(&b, "diags    none\n")
	} else {
		fmt.Fprintf(&b, "diags    FAIL %d, WARN %d, INFO %d\n",
			s.DiagsBySeverity["FAIL"], s.DiagsBySeverity["WARN"], s.DiagsBySeverity["INFO"])
		codes := make([]string, 0, len(s.DiagsByCode))
		for c := range s.DiagsByCode {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "  %-24s %d\n", c, s.DiagsByCode[c])
		}
	}
	if s.SharingTracesFed > 0 {
		fmt.Fprintf(&b, "sharing  %d traces fed, %d writes tracked\n",
			s.SharingTracesFed, s.SharingWritesTracked)
	}
	if s.CampaignSchedules > 0 {
		fmt.Fprintf(&b, "campaign %d schedules, %d faults injected, crash states explored %d of %d possible, %d recovery failures",
			s.CampaignSchedules, s.FaultsInjected,
			s.CrashStatesExplored, s.CrashStatesPossible, s.RecoveryFailures)
		if s.CampaignDeadlineHits > 0 {
			fmt.Fprintf(&b, ", %d deadline expiries", s.CampaignDeadlineHits)
		}
		b.WriteByte('\n')
	}
	if s.DistSectionsSent > 0 || s.DistRetries > 0 || s.DistFailovers > 0 || s.DistFallbacks > 0 {
		fmt.Fprintf(&b, "dist     sent %d (retries %d, failovers %d, breaker opens %d), buffered %dB (peak %dB)",
			s.DistSectionsSent, s.DistRetries, s.DistFailovers, s.DistBreakerOpens,
			s.DistBufferedBytes, s.DistBufferedPeak)
		if s.DistSectionsDropped > 0 || s.DistFallbacks > 0 {
			fmt.Fprintf(&b, ", dropped %d, local fallbacks %d", s.DistSectionsDropped, s.DistFallbacks)
		}
		fmt.Fprintf(&b, "\n         rtt p50 %v / p99 %v over %d sections\n",
			s.DistRTT.P50, s.DistRTT.P99, s.DistRTT.Count)
	}
	if s.EncodeErrors > 0 || s.Err != "" {
		fmt.Fprintf(&b, "errors   encode failures %d: %s\n", s.EncodeErrors, s.Err)
	}
	return b.String()
}
