package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogOptions is the structured-logging flag set shared by the CLIs
// (repro, crashmc, pmbench, pmtop): one -log-level and one -log-json
// flag, the same names and semantics everywhere. Register it on a
// FlagSet (or flag.CommandLine) and build the logger after Parse.
type LogOptions struct {
	Level string
	JSON  bool
}

// RegisterFlags installs -log-level and -log-json on fs.
func (o *LogOptions) RegisterFlags(fs *flag.FlagSet) {
	if o.Level == "" {
		o.Level = "warn"
	}
	fs.StringVar(&o.Level, "log-level", o.Level,
		"structured log level: debug, info, warn, error (records carry session/trace/span IDs)")
	fs.BoolVar(&o.JSON, "log-json", o.JSON,
		"emit structured logs as JSON lines instead of text")
}

// ParseLevel maps a level name to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger builds the configured logger writing to w (typically
// os.Stderr, keeping stdout clean for the tool's own output).
func (o LogOptions) Logger(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(o.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if o.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h), nil
}
