package pmfs

// Additional file operations: append, truncate and rename. All metadata
// effects go through the undo journal like the core operations, so each
// is failure-atomic.

// Append writes data at the current end of the file.
func (fs *FS) Append(ino uint64, data []byte) error {
	size := fs.dev.Load64(fs.inodeOff(ino) + inSize)
	return fs.WriteFile(ino, size, data)
}

// Truncate shrinks (or logically extends) the named file to newSize.
// Shrinking releases whole blocks past the new end in one journaled
// transaction; extending only moves the size (reads of the gap see
// zeros, as holes).
func (fs *FS) Truncate(name string, newSize uint64) error {
	defer fs.section()
	ino, err := fs.Lookup(name)
	if err != nil {
		return err
	}
	if fs.dev.Load8(fs.inodeOff(ino)+inUsed) == inodeDir {
		return ErrIsADir
	}
	if newSize > NumDirect*BlockSize {
		return ErrFileTooBig
	}
	iOff := fs.inodeOff(ino)
	oldSize := fs.dev.Load64(iOff + inSize)
	if newSize == oldSize {
		return nil
	}

	// Blocks wholly past the new end are released.
	keepBlocks := (newSize + BlockSize - 1) / BlockSize
	var drop []uint64 // block numbers (0-based)
	var dropSlots []uint64
	for b := keepBlocks; b < NumDirect; b++ {
		if ptr := fs.dev.Load64(iOff + inBlocks + b*8); ptr != 0 {
			drop = append(drop, ptr-1)
			dropSlots = append(dropSlots, b)
		}
	}

	tx := fs.beginTx()
	tx.logRange(iOff, InodeSize)
	for _, blk := range drop {
		tx.logRange(fs.bitmap+blk, 1)
	}
	tx.publish()
	tx.modify64(iOff+inSize, newSize)
	for i, blk := range drop {
		tx.modify(fs.bitmap+blk, []byte{0})
		tx.modify64(iOff+inBlocks+dropSlots[i]*8, 0)
	}
	tx.commit()
	return nil
}

// Rename atomically moves a file or directory to newPath (which may be
// in a different directory). The destination must not exist.
func (fs *FS) Rename(oldPath, newPath string) error {
	defer fs.section()
	newDirs, newName := splitPath(newPath)
	if newName == "" {
		return ErrNotFound
	}
	if len(newName) > MaxName {
		return ErrNameTooBig
	}
	newParent, err := fs.resolveDir(newDirs)
	if err != nil {
		return err
	}
	if _, err := fs.lookupIn(newParent, newName); err == nil {
		return ErrExists
	}
	slot, ino, err := fs.lookupSlot(oldPath)
	if err != nil {
		return err
	}
	// Moving a directory under itself would disconnect it into a cycle:
	// refuse when the destination's ancestor chain passes through it.
	if fs.dev.Load8(fs.inodeOff(ino)+inUsed) == inodeDir {
		for cur := newParent; cur != RootIno; {
			if cur == ino {
				return ErrInvalidMove
			}
			next, ok := fs.parentOf(cur)
			if !ok {
				break
			}
			cur = next
		}
	}
	de := fs.dentryOff(slot)
	tx := fs.beginTx()
	// Parent + name change together; the ino word stays, so a crash sees
	// either the old location or the new one.
	tx.logRange(de+deParent, DentrySize-deParent)
	tx.publish()
	rest := make([]byte, DentrySize-deParent)
	putU64(rest[0:8], newParent)
	putU16(rest[8:10], uint16(len(newName)))
	copy(rest[10:], newName)
	tx.modify(de+deParent, rest)
	tx.commit()
	return nil
}
