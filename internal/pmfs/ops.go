package pmfs

import (
	"pmtest/internal/trace"
)

// File operations. Metadata changes (inode table, bitmap, dentries) go
// through the undo journal; file data is written XIP-style in place and
// written back explicitly, before the metadata that references it is
// journaled — the standard "data before metadata" ordering.

// CreateFile allocates an inode and a directory entry for the file at
// path; parent directories must exist.
func (fs *FS) CreateFile(path string) (uint64, error) {
	defer fs.section()
	return fs.createNode(path, inodeFile)
}

// Lookup resolves a slash-separated path to an inode number.
func (fs *FS) Lookup(path string) (uint64, error) {
	dirs, name := splitPath(path)
	if name == "" {
		return RootIno, nil
	}
	parent, err := fs.resolveDir(dirs)
	if err != nil {
		return 0, err
	}
	return fs.lookupIn(parent, name)
}

// WriteFile writes data at byte offset off of inode ino, allocating
// blocks as needed. Data is persisted before the metadata transaction
// that makes it reachable.
func (fs *FS) WriteFile(ino uint64, off uint64, data []byte) error {
	defer fs.section()
	end := off + uint64(len(data))
	if end > NumDirect*BlockSize {
		return ErrFileTooBig
	}
	iOff := fs.inodeOff(ino)
	if fs.dev.Load8(iOff+inUsed) != 1 {
		return ErrNotFound
	}

	// Phase 1: ensure blocks exist; stage new allocations volatilely.
	firstBlk := off / BlockSize
	lastBlk := (end - 1) / BlockSize
	type allocation struct {
		slot uint64 // inode block-pointer index
		blk  uint64 // block number (0-based in data area)
	}
	var newAllocs []allocation
	taken := map[uint64]bool{}
	for b := firstBlk; b <= lastBlk; b++ {
		if fs.dev.Load64(iOff+inBlocks+b*8) != 0 {
			continue
		}
		blk, ok := fs.findFreeBlock(taken)
		if !ok {
			return ErrNoSpace
		}
		taken[blk] = true
		newAllocs = append(newAllocs, allocation{slot: b, blk: blk})
	}
	blkAddr := func(b uint64) uint64 {
		ptr := fs.dev.Load64(iOff + inBlocks + b*8)
		if ptr != 0 {
			return fs.dataOff + (ptr-1)*BlockSize
		}
		for _, a := range newAllocs {
			if a.slot == b {
				return fs.dataOff + a.blk*BlockSize
			}
		}
		panic("pmfs: unallocated block")
	}

	// Phase 2: write the data in place and persist it (XIP path).
	pos := off
	rem := data
	var chunks []struct{ addr, n uint64 }
	for len(rem) > 0 {
		b := pos / BlockSize
		inBlk := pos % BlockSize
		n := BlockSize - inBlk
		if n > uint64(len(rem)) {
			n = uint64(len(rem))
		}
		addr := blkAddr(b) + inBlk
		fs.dev.StoreSkip(addr, rem[:n], 1) //pmlint:ignore missedflush SkipDataFlush is an injected bug; with it off the chunk is flushed
		if !fs.bugs.SkipDataFlush {
			fs.dev.CLWBSkip(addr, n, 1)
			if fs.bugs.DoubleFlushData {
				// xips.c:207/262 — the same buffer is flushed twice.
				fs.dev.CLWBSkip(addr, n, 1) //pmlint:ignore doubleflush DoubleFlushData is an injected bug
			}
		}
		chunks = append(chunks, struct{ addr, n uint64 }{addr, n})
		pos += n
		rem = rem[n:]
	}
	if fs.bugs.FlushUnmapped {
		// files.c:232 — flushing a buffer that was never written: the
		// block after the written range (possibly unallocated space).
		fs.dev.CLWBSkip(fs.dataOff+fs.nBlocks*BlockSize-BlockSize, BlockSize, 1)
	}
	fs.dev.SFenceSkip(1)
	if fs.annotate {
		for _, c := range chunks {
			fs.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist, Addr: c.addr, Size: c.n}, 1)
		}
	}

	// Phase 3: journaled metadata update (block pointers, bitmap, size).
	needTx := len(newAllocs) > 0 || end > fs.dev.Load64(iOff+inSize)
	if !needTx {
		return nil
	}
	tx := fs.beginTx()
	tx.logRange(iOff, InodeSize)
	for _, a := range newAllocs {
		tx.logRange(fs.bitmap+a.blk, 1)
	}
	tx.publish()
	for _, a := range newAllocs {
		tx.modify(fs.bitmap+a.blk, []byte{1})
		tx.modify64(iOff+inBlocks+a.slot*8, a.blk+1)
	}
	if end > fs.dev.Load64(iOff+inSize) {
		tx.modify64(iOff+inSize, end)
	}
	tx.commit()
	return nil
}

// ReadFile reads len(buf) bytes at offset off of inode ino; it returns
// the number of bytes read (short reads at EOF).
func (fs *FS) ReadFile(ino uint64, off uint64, buf []byte) (int, error) {
	iOff := fs.inodeOff(ino)
	if fs.dev.Load8(iOff+inUsed) != 1 {
		return 0, ErrNotFound
	}
	size := fs.dev.Load64(iOff + inSize)
	if off >= size {
		return 0, nil
	}
	n := size - off
	if n > uint64(len(buf)) {
		n = uint64(len(buf))
	}
	read := uint64(0)
	for read < n {
		pos := off + read
		b := pos / BlockSize
		ptr := fs.dev.Load64(iOff + inBlocks + b*8)
		inBlk := pos % BlockSize
		chunk := BlockSize - inBlk
		if chunk > n-read {
			chunk = n - read
		}
		if ptr == 0 {
			// Hole: zeros.
			for i := uint64(0); i < chunk; i++ {
				buf[read+i] = 0
			}
		} else {
			fs.dev.Load(fs.dataOff+(ptr-1)*BlockSize+inBlk, buf[read:read+chunk])
		}
		read += chunk
	}
	return int(read), nil
}

// Unlink removes a file: its dentry, inode and blocks are released in one
// journaled transaction.
func (fs *FS) Unlink(path string) error {
	defer fs.section()
	slot, ino, err := fs.lookupSlot(path)
	if err != nil {
		return err
	}
	if fs.dev.Load8(fs.inodeOff(ino)+inUsed) == inodeDir {
		return ErrIsADir
	}
	iOff := fs.inodeOff(ino)
	tx := fs.beginTx()
	tx.logRange(fs.dentryOff(slot), 8) // only the ino word must be undone
	tx.logRange(iOff, InodeSize)
	var blks []uint64
	for b := uint64(0); b < NumDirect; b++ {
		if ptr := fs.dev.Load64(iOff + inBlocks + b*8); ptr != 0 {
			blks = append(blks, ptr-1)
			tx.logRange(fs.bitmap+(ptr-1), 1)
		}
	}
	tx.publish()
	tx.modify64(fs.dentryOff(slot), 0)
	zero := make([]byte, InodeSize)
	tx.modify(iOff, zero)
	for _, b := range blks {
		tx.modify(fs.bitmap+b, []byte{0})
	}
	tx.commit()
	return nil
}

// Fsync fences outstanding writebacks for the file and, when annotations
// are on, asserts the file's data is durable.
func (fs *FS) Fsync(ino uint64) error {
	defer fs.section()
	iOff := fs.inodeOff(ino)
	if fs.dev.Load8(iOff+inUsed) != 1 {
		return ErrNotFound
	}
	fs.dev.SFenceSkip(1)
	if fs.annotate {
		size := fs.dev.Load64(iOff + inSize)
		for b := uint64(0); b*BlockSize < size; b++ {
			ptr := fs.dev.Load64(iOff + inBlocks + b*8)
			if ptr == 0 {
				continue
			}
			n := size - b*BlockSize
			if n > BlockSize {
				n = BlockSize
			}
			fs.dev.RecordOp(trace.Op{Kind: trace.KindIsPersist,
				Addr: fs.dataOff + (ptr-1)*BlockSize, Size: n}, 1)
		}
	}
	return nil
}

// Stat returns the size of the named file.
func (fs *FS) Stat(path string) (uint64, error) {
	ino, err := fs.Lookup(path)
	if err != nil {
		return 0, err
	}
	return fs.dev.Load64(fs.inodeOff(ino) + inSize), nil
}

// ListDir returns the entry names in the directory at path ("" or "/"
// for the root).
func (fs *FS) ListDir(path string) ([]string, error) {
	dir := uint64(RootIno)
	if dirs, name := splitPath(path); name != "" {
		parent, err := fs.resolveDir(dirs)
		if err != nil {
			return nil, err
		}
		ino, err := fs.lookupIn(parent, name)
		if err != nil {
			return nil, err
		}
		if fs.dev.Load8(fs.inodeOff(ino)+inUsed) != inodeDir {
			return nil, ErrNotADir
		}
		dir = ino
	}
	var names []string
	for i := uint64(0); i < fs.nDentry; i++ {
		off := fs.dentryOff(i)
		if fs.dev.Load64(off+deIno) == 0 || fs.dev.Load64(off+deParent) != dir {
			continue
		}
		n := getU16(fs.dev.LoadBytes(off+deLen, 2))
		names = append(names, string(fs.dev.LoadBytes(off+deName, uint64(n))))
	}
	return names, nil
}

// lookupSlot resolves a path to its dentry slot and inode.
func (fs *FS) lookupSlot(path string) (slot, ino uint64, err error) {
	dirs, name := splitPath(path)
	if name == "" {
		return 0, 0, ErrNotFound
	}
	parent, err := fs.resolveDir(dirs)
	if err != nil {
		return 0, 0, err
	}
	return fs.lookupSlotIn(parent, name)
}

func (fs *FS) findFreeInode() (uint64, bool) {
	// Inode 0 is reserved (nil) and inode 1 is the root directory.
	for i := uint64(RootIno + 1); i < fs.nInodes; i++ {
		if fs.dev.Load8(fs.inodeOff(i)+inUsed) == 0 {
			return i, true
		}
	}
	return 0, false
}

func (fs *FS) findFreeDentry() (uint64, bool) {
	for i := uint64(0); i < fs.nDentry; i++ {
		if fs.dev.Load64(fs.dentryOff(i)) == 0 {
			return i, true
		}
	}
	return 0, false
}

func (fs *FS) findFreeBlock(staged map[uint64]bool) (uint64, bool) {
	for b := uint64(0); b < fs.nBlocks; b++ {
		if staged[b] {
			continue
		}
		if fs.dev.Load8(fs.bitmap+b) == 0 {
			return b, true
		}
	}
	return 0, false
}

// Usage returns used inode and block counts (for the harness).
func (fs *FS) Usage() (inodes, blocks uint64) {
	for i := uint64(1); i < fs.nInodes; i++ {
		if fs.dev.Load8(fs.inodeOff(i)+inUsed) == 1 {
			inodes++
		}
	}
	for b := uint64(0); b < fs.nBlocks; b++ {
		if fs.dev.Load8(fs.bitmap+b) == 1 {
			blocks++
		}
	}
	return
}
