package pmfs

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pmtest/internal/pmem"
)

func TestMkdirAndNestedCreate(t *testing.T) {
	fs := newFS(t, nil)
	if _, err := fs.Mkdir("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir("a/b"); err != nil {
		t.Fatal(err)
	}
	ino, err := fs.CreateFile("a/b/file")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, 0, []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup("a/b/file")
	if err != nil || got != ino {
		t.Fatalf("Lookup = %d, %v", got, err)
	}
	// Same leaf name in different directories is fine.
	if _, err := fs.CreateFile("file"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateFile("a/file"); err != nil {
		t.Fatal(err)
	}
	// Duplicate within one directory is not.
	if _, err := fs.CreateFile("a/b/file"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestListDirPerDirectory(t *testing.T) {
	fs := newFS(t, nil)
	fs.Mkdir("d1")
	fs.Mkdir("d2")
	fs.CreateFile("d1/x")
	fs.CreateFile("d1/y")
	fs.CreateFile("d2/z")
	fs.CreateFile("top")
	got, err := fs.ListDir("d1")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("ListDir(d1) = %v", got)
	}
	root, _ := fs.ListDir("")
	sort.Strings(root)
	if !reflect.DeepEqual(root, []string{"d1", "d2", "top"}) {
		t.Fatalf("ListDir(root) = %v", root)
	}
	if _, err := fs.ListDir("top"); !errors.Is(err, ErrNotADir) {
		t.Fatalf("ListDir(file) = %v", err)
	}
	if _, err := fs.ListDir("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ListDir(ghost) = %v", err)
	}
}

func TestDirErrors(t *testing.T) {
	fs := newFS(t, nil)
	fs.Mkdir("d")
	fs.CreateFile("f")
	if _, err := fs.CreateFile("f/child"); !errors.Is(err, ErrNotADir) {
		t.Fatalf("create under file: %v", err)
	}
	if _, err := fs.CreateFile("ghost/child"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("create under missing dir: %v", err)
	}
	if err := fs.Unlink("d"); !errors.Is(err, ErrIsADir) {
		t.Fatalf("unlink dir: %v", err)
	}
	if isDir, err := fs.IsDir("d"); err != nil || !isDir {
		t.Fatalf("IsDir(d) = %v, %v", isDir, err)
	}
	if isDir, _ := fs.IsDir("f"); isDir {
		t.Fatal("IsDir(file) true")
	}
	if isDir, err := fs.IsDir("/"); err != nil || !isDir {
		t.Fatalf("IsDir(root) = %v, %v", isDir, err)
	}
}

func TestRmdir(t *testing.T) {
	fs := newFS(t, nil)
	fs.Mkdir("d")
	fs.CreateFile("d/f")
	if err := fs.Rmdir("d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Unlink("d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("d"); !errors.Is(err, ErrNotFound) {
		t.Fatal("directory still resolves after Rmdir")
	}
	if err := fs.Rmdir("d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double rmdir: %v", err)
	}
	// Rmdir of a file is refused.
	fs.CreateFile("plain")
	if err := fs.Rmdir("plain"); !errors.Is(err, ErrNotADir) {
		t.Fatalf("rmdir file: %v", err)
	}
}

func TestRenameAcrossDirectories(t *testing.T) {
	fs := newFS(t, nil)
	fs.Mkdir("src")
	fs.Mkdir("dst")
	ino, _ := fs.CreateFile("src/f")
	fs.WriteFile(ino, 0, []byte("moved"))
	if err := fs.Rename("src/f", "dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("src/f"); !errors.Is(err, ErrNotFound) {
		t.Fatal("source still resolves")
	}
	got, err := fs.Lookup("dst/g")
	if err != nil || got != ino {
		t.Fatalf("Lookup(dst/g) = %d, %v", got, err)
	}
	buf := make([]byte, 5)
	fs.ReadFile(got, 0, buf)
	if string(buf) != "moved" {
		t.Fatalf("data = %q", buf)
	}
}

func TestDirectoryTreeSurvivesRemountAndCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	dev := pmem.New(devSize, nil)
	fs, err := Mkfs(dev, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	fs.Mkdir("a")
	fs.Mkdir("a/b")
	ino, _ := fs.CreateFile("a/b/leaf")
	fs.WriteFile(ino, 0, []byte("nested"))
	for trial := 0; trial < 15; trial++ {
		img := dev.SampleCrash(rng, pmem.CrashOptions{})
		fs2, _, err := Mount(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs2.Lookup("a/b/leaf")
		if err != nil {
			t.Fatalf("trial %d: nested path lost: %v", trial, err)
		}
		buf := make([]byte, 6)
		fs2.ReadFile(got, 0, buf)
		if string(buf) != "nested" {
			t.Fatalf("trial %d: data = %q", trial, buf)
		}
	}
}

// TestCrashDuringMkdirAtomic: an uncommitted mkdir never becomes visible.
func TestCrashDuringMkdirAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 15; trial++ {
		fs := newFS(t, nil)
		ino, _ := fs.findFreeInode()
		slot, _ := fs.findFreeDentry()
		tx := fs.beginTx()
		tx.logRange(fs.inodeOff(ino), InodeSize)
		tx.logRange(fs.dentryOff(slot), DentrySize)
		tx.publish()
		inode := make([]byte, InodeSize)
		inode[inUsed] = inodeDir
		tx.modify(fs.inodeOff(ino), inode)
		de := make([]byte, DentrySize)
		putU64(de[deIno:], ino)
		putU64(de[deParent:], RootIno)
		putU16(de[deLen:], 3)
		copy(de[deName:], "dir")
		tx.modify(fs.dentryOff(slot), de)
		// Crash before commit.
		img := fs.Device().SampleCrash(rng, pmem.CrashOptions{})
		fs2, _, err := Mount(pmem.FromImage(img, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs2.Lookup("dir"); err == nil {
			t.Fatalf("trial %d: uncommitted mkdir visible", trial)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		dirs []string
		name string
	}{
		{"f", nil, "f"},
		{"/f", nil, "f"},
		{"a/b/f", []string{"a", "b"}, "f"},
		{"//a//f", []string{"a"}, "f"},
		{"", nil, ""},
		{"/", nil, ""},
	}
	for _, c := range cases {
		dirs, name := splitPath(c.in)
		if !reflect.DeepEqual(dirs, c.dirs) || name != c.name {
			t.Errorf("splitPath(%q) = %v, %q; want %v, %q", c.in, dirs, name, c.dirs, c.name)
		}
	}
}

func TestRenameDirIntoItselfRefused(t *testing.T) {
	fs := newFS(t, nil)
	fs.Mkdir("a")
	fs.Mkdir("a/b")
	if err := fs.Rename("a", "a/b/c"); !errors.Is(err, ErrInvalidMove) {
		t.Fatalf("rename into own subtree: %v", err)
	}
	// Directory moves that do not create cycles are fine.
	fs.Mkdir("other")
	if err := fs.Rename("a/b", "other/b"); err != nil {
		t.Fatal(err)
	}
	if isDir, err := fs.IsDir("other/b"); err != nil || !isDir {
		t.Fatalf("moved dir missing: %v %v", isDir, err)
	}
}

func TestTruncateDirectoryRefused(t *testing.T) {
	fs := newFS(t, nil)
	fs.Mkdir("d")
	if err := fs.Truncate("d", 0); !errors.Is(err, ErrIsADir) {
		t.Fatalf("truncate dir: %v", err)
	}
}
