// Package pmfs is a PMFS-like persistent-memory file system built on the
// simulated PM device, substituting for Intel's kernel-module PMFS that
// the paper tests (§6.2.2, Table 4, and the bugs of Table 6 / Fig. 13a).
//
// Like the real PMFS it manages metadata crash consistency with an undo
// journal of fixed-size, generation-tagged log entries and performs
// XIP-style in-place data writes with explicit writebacks. The journal
// commit path reproduces both the fixed protocol and — behind Bugs
// switches — the three historical PMFS defects PMTest found or confirmed:
// the redundant commit flush (journal.c:632), the double buffer flush
// (xips.c:207/262) and the unmapped-buffer flush (files.c:232).
//
// The file system is deliberately kernel-module-shaped: a fixed inode
// table, direct block pointers, and a dentry table forming a directory
// hierarchy rooted at inode 1. Traces reach the
// user-space checking engine through the kfifo transport (paper Fig. 9b);
// the FS itself only signals section boundaries via a hook.
package pmfs

import (
	"errors"
	"fmt"

	"pmtest/internal/pmem"
)

// Geometry constants.
const (
	BlockSize   = 4096
	InodeSize   = 128
	DentrySize  = 64
	MaxName     = 46
	NumDirect   = 12 // direct block pointers per inode
	JournalEnts = 64
	LESize      = 64 // journal log entry size, as in PMFS
	LEDataSize  = LESize - 16

	sbOff    = 0
	sbSize   = 512
	magicPM  = 0x504D46532D474F21 // "PMFS-GO!"
	leCommit = 1                  // log entry type: commit record
	leData   = 0                  // log entry type: undo data
)

// Superblock field offsets (within sbOff).
const (
	sbMagic    = 0
	sbNInodes  = 8
	sbNBlocks  = 16
	sbInodeTab = 24
	sbBitmap   = 32
	sbJournal  = 40
	sbData     = 48
	sbGenID    = 56
	sbNLive    = 64 // journal live-entry count: own line, the publish word
	sbNDentry  = 72
	sbDentries = 80
)

// Inode field offsets (within an inode).
const (
	inUsed   = 0
	inSize   = 8
	inBlocks = 16 // NumDirect * 8 bytes
)

// Bugs are fault-injection switches reproducing the paper's PMFS findings
// and the synthetic low-level bug classes of Table 5.
type Bugs struct {
	// DoubleFlushCommit re-flushes the whole journal transaction after the
	// commit log entry is flushed — the new performance bug PMTest found
	// in journal.c:632 (paper Fig. 13a).
	DoubleFlushCommit bool
	// DoubleFlushData flushes a written data buffer twice — the known bug
	// from xips.c:207/262.
	DoubleFlushData bool
	// FlushUnmapped flushes a buffer that was never written — the known
	// bug from files.c:232.
	FlushUnmapped bool
	// SkipLogEntryFlush omits the writeback of undo log entries before
	// publishing them (ordering bug).
	SkipLogEntryFlush bool
	// SkipCommitFence omits the fence after the commit record (ordering
	// bug: the journal may be truncated before updates persist).
	SkipCommitFence bool
	// SkipDataFlush omits the writeback of file data (durability bug:
	// fsync'd data may be lost).
	SkipDataFlush bool
	// SkipInodeFlush omits the writeback of the journaled inode update
	// (writeback bug).
	SkipInodeFlush bool
}

// FS is the mounted file system. Not safe for concurrent use; the paper's
// PMFS tracking is also single-threaded (§4.5).
type FS struct {
	dev *pmem.Device

	nInodes  uint64
	nBlocks  uint64
	inodeTab uint64
	bitmap   uint64
	journal  uint64
	dataOff  uint64
	nDentry  uint64
	dentries uint64

	bugs     Bugs
	annotate bool
	// onSection is invoked after each complete FS operation — the natural
	// trace boundary shipped through the kernel FIFO.
	onSection func()

	// volatile journal state
	leUsed int
}

// Errors returned by FS operations.
var (
	ErrNotPMFS     = errors.New("pmfs: device does not contain a file system")
	ErrExists      = errors.New("pmfs: file exists")
	ErrNotFound    = errors.New("pmfs: file not found")
	ErrNoSpace     = errors.New("pmfs: no space left")
	ErrNameTooBig  = errors.New("pmfs: name too long")
	ErrFileTooBig  = errors.New("pmfs: file too large")
	ErrNotADir     = errors.New("pmfs: not a directory")
	ErrIsADir      = errors.New("pmfs: is a directory")
	ErrNotEmpty    = errors.New("pmfs: directory not empty")
	ErrInvalidMove = errors.New("pmfs: cannot move a directory into itself")
)

// Mkfs formats the device and returns the mounted file system.
func Mkfs(dev *pmem.Device, nInodes, nDentries uint64) (*FS, error) {
	if nInodes == 0 {
		nInodes = 128
	}
	if nDentries == 0 {
		nDentries = 256
	}
	fs := &FS{dev: dev, nInodes: nInodes, nDentry: nDentries}
	fs.inodeTab = sbSize
	fs.bitmap = fs.inodeTab + nInodes*InodeSize
	// One byte per block in the bitmap (byte-granular for simplicity).
	fs.journal = alignUp(fs.bitmap+4096, pmem.LineSize)
	fs.dentries = fs.journal + JournalEnts*LESize
	fs.dataOff = alignUp(fs.dentries+nDentries*DentrySize, BlockSize)
	if dev.Size() <= fs.dataOff+BlockSize {
		return nil, fmt.Errorf("pmfs: device too small (%d bytes)", dev.Size())
	}
	fs.nBlocks = (dev.Size() - fs.dataOff) / BlockSize
	if fs.nBlocks > 4096 {
		fs.nBlocks = 4096 // bitmap byte area bound
	}

	d := dev
	// Zero the whole superblock first so the barrier below never writes
	// back untouched bytes.
	d.Store(sbOff, make([]byte, sbSize))
	d.Store64(sbNInodes, nInodes)
	d.Store64(sbNBlocks, fs.nBlocks)
	d.Store64(sbInodeTab, fs.inodeTab)
	d.Store64(sbBitmap, fs.bitmap)
	d.Store64(sbJournal, fs.journal)
	d.Store64(sbData, fs.dataOff)
	d.Store64(sbGenID, 1)
	d.Store64(sbNLive, 0)
	d.Store64(sbNDentry, nDentries)
	d.Store64(sbDentries, fs.dentries)
	d.PersistBarrier(sbOff, sbSize)
	// Zero the metadata areas durably.
	zero := make([]byte, fs.dataOff-fs.inodeTab)
	d.Store(fs.inodeTab, zero)
	d.PersistBarrier(fs.inodeTab, uint64(len(zero)))
	// The root directory (inode 1) exists from the start.
	d.Store8(fs.inodeOff(RootIno)+inUsed, inodeDir)
	d.PersistBarrier(fs.inodeOff(RootIno), 1)
	d.Store64(sbMagic, magicPM)
	d.PersistBarrier(sbMagic, 8)
	return fs, nil
}

// Mount attaches to a formatted device, running journal recovery if an
// interrupted transaction is found.
func Mount(dev *pmem.Device) (*FS, *RecoveryInfo, error) {
	if dev.Load64(sbMagic) != magicPM {
		return nil, nil, ErrNotPMFS
	}
	fs := &FS{
		dev:      dev,
		nInodes:  dev.Load64(sbNInodes),
		nBlocks:  dev.Load64(sbNBlocks),
		inodeTab: dev.Load64(sbInodeTab),
		bitmap:   dev.Load64(sbBitmap),
		journal:  dev.Load64(sbJournal),
		dataOff:  dev.Load64(sbData),
		nDentry:  dev.Load64(sbNDentry),
		dentries: dev.Load64(sbDentries),
	}
	info := fs.recoverJournal()
	return fs, info, nil
}

// SetBugs installs fault-injection switches.
func (fs *FS) SetBugs(b Bugs) { fs.bugs = b }

// SetAnnotations enables the developer checkers inside the journal and
// data paths (paper §7.2).
func (fs *FS) SetAnnotations(on bool) { fs.annotate = on }

// SetSectionHook registers fn to run after each complete FS operation.
// The harness uses it to cut the trace and push it into the kernel FIFO.
func (fs *FS) SetSectionHook(fn func()) { fs.onSection = fn }

// Device returns the underlying device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

// MetaRange returns the metadata range (superblock through journal and
// dentries) excluded from transaction-level checking; explicit annotation
// checkers still apply to it.
func (fs *FS) MetaRange() (addr, size uint64) { return 0, fs.dataOff }

func (fs *FS) section() {
	if fs.onSection != nil {
		fs.onSection()
	}
}

func (fs *FS) inodeOff(ino uint64) uint64 { return fs.inodeTab + ino*InodeSize }

func (fs *FS) dentryOff(i uint64) uint64 { return fs.dentries + i*DentrySize }

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
