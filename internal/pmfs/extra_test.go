package pmfs

import (
	"bytes"
	"errors"
	"testing"

	"pmtest/internal/pmem"
)

// Extra coverage: capacity limits, maximal files, overwrite semantics,
// fsync, and inode/dentry exhaustion.

func TestMaxSizeFile(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("big")
	data := make([]byte, NumDirect*BlockSize)
	for i := range data {
		data[i] = byte(i / BlockSize)
	}
	if err := fs.WriteFile(ino, 0, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	n, err := fs.ReadFile(ino, 0, buf)
	if err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("max-size round trip failed")
	}
	if _, blocks := fs.Usage(); blocks != NumDirect {
		t.Fatalf("blocks = %d, want %d", blocks, NumDirect)
	}
}

func TestOverwriteDoesNotReallocate(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, make([]byte, BlockSize))
	_, before := fs.Usage()
	fs.WriteFile(ino, 100, []byte("overwrite"))
	_, after := fs.Usage()
	if before != after {
		t.Fatalf("overwrite changed block count: %d → %d", before, after)
	}
	buf := make([]byte, 9)
	fs.ReadFile(ino, 100, buf)
	if string(buf) != "overwrite" {
		t.Fatalf("buf = %q", buf)
	}
}

func TestInodeExhaustion(t *testing.T) {
	dev := pmem.New(devSize, nil)
	fs, err := Mkfs(dev, 4, 16) // inode 0 = nil, 1 = root dir → 2 usable
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := fs.CreateFile(string(rune('a' + i))); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if _, err := fs.CreateFile("overflow"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Unlink frees the inode for reuse.
	if err := fs.Unlink("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateFile("reuse"); err != nil {
		t.Fatalf("reuse after unlink: %v", err)
	}
}

func TestFsyncUnknownInode(t *testing.T) {
	fs := newFS(t, nil)
	if err := fs.Fsync(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatMissing(t *testing.T) {
	fs := newFS(t, nil)
	if _, err := fs.Stat("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryInfoCommittedPath(t *testing.T) {
	// Crash after the commit LE is durable but before sbNLive clears:
	// recovery must recognize the committed transaction and not roll back.
	fs := newFS(t, nil)
	fs.CreateFile("keep")
	tx := fs.beginTx()
	iOff := fs.inodeOff(5)
	tx.logRange(iOff, InodeSize)
	tx.publish()
	inode := make([]byte, InodeSize)
	inode[inUsed] = 1
	tx.modify(iOff, inode)
	// Commit fully (everything durable), then re-publish nLive as if the
	// final clear had not persisted.
	tx.commit()
	fs.dev.Store64(sbNLive, 3) // the LE count before the commit record
	fs.dev.PersistBarrier(sbNLive, 8)
	fs2, info, err := Mount(pmem.FromImage(fs.Device().Image(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Committed || info.RolledBack != 0 {
		t.Fatalf("info = %+v, want committed with no rollback", info)
	}
	if fs2.dev.Load8(fs2.inodeOff(5)+inUsed) != 1 {
		t.Fatal("committed inode update rolled back")
	}
}

func TestWriteExtendsSizeOnly(t *testing.T) {
	fs := newFS(t, nil)
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, make([]byte, 100))
	if size, _ := fs.Stat("f"); size != 100 {
		t.Fatalf("size = %d", size)
	}
	// Writing earlier bytes must not shrink the size.
	fs.WriteFile(ino, 10, []byte{1})
	if size, _ := fs.Stat("f"); size != 100 {
		t.Fatalf("size after inner write = %d", size)
	}
}

func TestSectionHookFiresPerOperation(t *testing.T) {
	fs := newFS(t, nil)
	n := 0
	fs.SetSectionHook(func() { n++ })
	ino, _ := fs.CreateFile("f")
	fs.WriteFile(ino, 0, []byte{1})
	fs.Fsync(ino)
	fs.Unlink("f")
	if n != 4 {
		t.Fatalf("section hook fired %d times, want 4", n)
	}
}
